package hrwle

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServeCLISmoke runs a tiny open-system sweep through the real CLI
// and checks the saturation panels and per-class latency rows appear.
func TestServeCLISmoke(t *testing.T) {
	out := runGo(t, "./cmd/hrwle-serve",
		"-workload", "hashmap", "-requests", "400",
		"-schemes", "RW-LE_OPT,SGL", "-rates", "5e5,5e6", "-q")
	for _, want := range []string{
		"open-system service sweep", "achieved throughput", "drop rate",
		"sojourn p99", "class interactive", "RW-LE_OPT", "SGL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hrwle-serve output missing %q:\n%s", want, out)
		}
	}
}

// TestServeCLIList checks the workload listing.
func TestServeCLIList(t *testing.T) {
	out := runGo(t, "./cmd/hrwle-serve", "-list")
	for _, want := range []string{"hashmap", "kyoto", "tpcc", "RW-LE_OPT"} {
		if !strings.Contains(out, want) {
			t.Errorf("hrwle-serve -list missing %q:\n%s", want, out)
		}
	}
}

// TestServeCLIParallelIdentical runs the same sweep at -j 1 and -j 4 and
// requires byte-identical text and JSON files: worker count must never
// leak into results.
func TestServeCLIParallelIdentical(t *testing.T) {
	dir := t.TempDir()
	run := func(j, suffix string) (txt, js []byte) {
		txtPath := filepath.Join(dir, "serve-"+suffix+".txt")
		jsonPath := filepath.Join(dir, "serve-"+suffix+".json")
		runGo(t, "./cmd/hrwle-serve",
			"-workload", "hashmap", "-requests", "400",
			"-schemes", "RW-LE_OPT,SGL", "-rates", "5e5,5e6",
			"-j", j, "-q", "-o", txtPath, "-json", jsonPath)
		var err error
		if txt, err = os.ReadFile(txtPath); err != nil {
			t.Fatal(err)
		}
		if js, err = os.ReadFile(jsonPath); err != nil {
			t.Fatal(err)
		}
		return txt, js
	}
	txt1, js1 := run("1", "j1")
	txt4, js4 := run("4", "j4")
	if !bytes.Equal(txt1, txt4) {
		t.Error("-j changed hrwle-serve text output")
	}
	if !bytes.Equal(js1, js4) {
		t.Error("-j changed hrwle-serve JSON output")
	}
}
