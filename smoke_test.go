package hrwle

import (
	"testing"

	"hrwle/internal/harness"
	"hrwle/internal/stats"
)

// TestFigureSmoke runs one minimum-scale point of every registered figure:
// fewest threads, first write-ratio, tiny scale. It guards the whole
// figure pipeline — registry wiring, per-figure Point functions, workload
// construction — and checks the reported statistics are self-consistent.
func TestFigureSmoke(t *testing.T) {
	for id, spec := range harness.Registry() {
		id, spec := id, spec
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			if len(spec.Schemes) == 0 || len(spec.Threads) == 0 || len(spec.WritePcts) == 0 {
				t.Fatalf("figure %s has an empty axis: %+v", id, spec)
			}
			threads := spec.Threads[0]
			for _, n := range spec.Threads {
				if n < threads {
					threads = n
				}
			}
			scheme := spec.Schemes[0]
			r := spec.Point(harness.PointCtx{}, scheme, threads, spec.WritePcts[0], 0.01)

			if r.B.Ops <= 0 {
				t.Fatalf("%s/%s: zero ops completed", id, scheme)
			}
			if r.Cycles <= 0 {
				t.Fatalf("%s/%s: zero virtual cycles", id, scheme)
			}
			if r.B.ReadCS+r.B.WriteCS <= 0 {
				t.Fatalf("%s/%s: no critical sections recorded", id, scheme)
			}

			// The breakdown must account for every transaction attempt:
			// each HTM/ROT begin either commits speculatively or aborts
			// (SGL and uninstrumented commits start no transaction).
			spec := r.B.Commits[stats.CommitHTM] + r.B.Commits[stats.CommitROT]
			if got := spec + r.B.TotalAborts(); got != r.B.TxStarts {
				t.Errorf("%s/%s: speculative commits(%d) + aborts(%d) != tx starts(%d)",
					id, scheme, spec, r.B.TotalAborts(), r.B.TxStarts)
			}
			// And every critical section completes on exactly one path.
			if got := r.B.TotalCommits(); got != r.B.ReadCS+r.B.WriteCS {
				t.Errorf("%s/%s: total commits(%d) != critical sections(%d)",
					id, scheme, got, r.B.ReadCS+r.B.WriteCS)
			}
			if ar := r.B.AbortRate(); ar < 0 || ar > 100 {
				t.Errorf("%s/%s: abort rate %f out of range", id, scheme, ar)
			}
		})
	}
}

// TestFigureSmokeDeterministic re-runs one point and requires identical
// virtual-time results: the simulator must stay a pure function of its
// configuration.
func TestFigureSmokeDeterministic(t *testing.T) {
	spec, ok := harness.Registry()["fig3"]
	if !ok {
		t.Skip("fig3 not registered")
	}
	a := spec.Point(harness.PointCtx{}, spec.Schemes[0], 2, spec.WritePcts[0], 0.01)
	b := spec.Point(harness.PointCtx{}, spec.Schemes[0], 2, spec.WritePcts[0], 0.01)
	if a.Cycles != b.Cycles || a.B.Ops != b.B.Ops || a.B.TxStarts != b.B.TxStarts {
		t.Fatalf("figure point is not deterministic: %+v vs %+v", a, b)
	}
}
