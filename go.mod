module hrwle

go 1.23
