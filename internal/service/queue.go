package service

// Queue is the bounded strict-priority dispatch queue shared by the
// service and shard runners. It lives in host
// memory, which is safe because every access happens from a CPU that has
// just passed Sync: the engine only lets a CPU act when it holds the
// global minimum (time, ID), so queue operations are linearized in
// nondecreasing virtual time exactly like a hardware arbiter would see
// them. Arrivals are ingested lazily — pop(now) first admits every
// scheduled arrival with ArriveAt <= now, in schedule order, applying the
// capacity bound (an arrival that finds the queue full is dropped, at its
// own arrival time, before later arrivals are considered) — so the queue
// state at any virtual instant is identical to an eager event-driven
// simulation, without needing an arrival-injector CPU.
type Queue struct {
	reqs    []Request // the full schedule, in arrival order
	next    int       // first schedule entry not yet ingested
	cap     int
	classes int
	fifo    [8][]int // per-class FIFO of request indices (index 0 = highest priority)
	heads   [8]int   // pop cursor per class; fifo[c][heads[c]:] is the live queue
	queued  int
	dropped int64
}

func NewQueue(reqs []Request, capacity, classes int) *Queue {
	return &Queue{reqs: reqs, cap: capacity, classes: classes}
}

// ingest admits every arrival scheduled at or before now.
func (q *Queue) ingest(now int64) {
	for q.next < len(q.reqs) && q.reqs[q.next].ArriveAt <= now {
		i := q.next
		q.next++
		if q.queued >= q.cap {
			q.reqs[i].Dropped = true
			q.dropped++
			continue
		}
		c := q.reqs[i].Class
		q.fifo[c] = append(q.fifo[c], i)
		q.queued++
	}
}

// Pop ingests arrivals up to now and returns the index of the
// highest-priority queued request, or ok=false if the queue is empty at
// this instant.
func (q *Queue) Pop(now int64) (idx int, ok bool) {
	q.ingest(now)
	for c := 0; c < q.classes; c++ {
		if q.heads[c] < len(q.fifo[c]) {
			idx = q.fifo[c][q.heads[c]]
			q.heads[c]++
			q.queued--
			return idx, true
		}
	}
	return 0, false
}

// Drained reports whether every scheduled arrival has been ingested and
// the queue is empty.
func (q *Queue) Drained() bool {
	return q.next == len(q.reqs) && q.queued == 0
}

// NextArrival returns the arrival time of the earliest not-yet-ingested
// request; ok=false when the schedule is exhausted.
func (q *Queue) NextArrival() (t int64, ok bool) {
	if q.next >= len(q.reqs) {
		return 0, false
	}
	return q.reqs[q.next].ArriveAt, true
}
