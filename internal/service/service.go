// Package service generates open-system traffic inside the deterministic
// simulator: requests arrive by a seeded stochastic process whose clock
// advances with virtual time and is *independent of completions*, wait in
// a bounded strict-priority queue, and are served by the simulated CPUs
// against an RW-LE-protected structure (hashmap, Kyoto Cabinet, TPC-C).
//
// Every closed-loop workload in this repository measures throughput: N
// CPUs spin on a structure and the paper's figures report how long the
// fixed work takes. A production service lives by a different metric —
// sojourn-time percentiles versus offered load — and the closed loop
// structurally cannot produce it, because a closed loop's arrival rate
// adapts to its completion rate (a slow server is offered less load, so
// queueing delay never builds). Here the arrival schedule is drawn up
// front from a dedicated seeded stream (machine.Stream), so when service
// slows down the queue actually grows, queue-wait dominates sojourn, and
// the p99-vs-load curve shows the saturation knee that scheme comparisons
// under service load care about.
//
// Determinism: the schedule is a pure function of (Config, Seed); the run
// is a pure function of the schedule and the machine seed. All randomness
// flows from internal/machine/rng.go streams — the simlint determinism
// analyzer enforces this for the whole package.
package service

import (
	"fmt"

	"hrwle/internal/machine"
)

// Process selects the arrival process.
type Process int

const (
	// Poisson arrivals: exponential inter-arrival times at RatePerSec.
	Poisson Process = iota
	// MMPP arrivals: a 2-state Markov-modulated Poisson process — a base
	// state and a burst state whose rate is BurstFactor× higher, with
	// exponential state sojourns. Long-run rate equals RatePerSec, so
	// Poisson and MMPP points at the same offered load are comparable;
	// bursts stress the queue's transient behavior.
	MMPP
)

// String names the process in reports and JSON.
func (p Process) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case MMPP:
		return "mmpp"
	}
	return fmt.Sprintf("process(%d)", int(p))
}

// ParseProcess resolves a process name from the CLI.
func ParseProcess(s string) (Process, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "mmpp":
		return MMPP, nil
	}
	return 0, fmt.Errorf("unknown arrival process %q (poisson|mmpp)", s)
}

// ArrivalConfig parameterizes the arrival process.
type ArrivalConfig struct {
	Process    Process
	RatePerSec float64 // offered load λ, requests per virtual second

	// MMPP shape (ignored by Poisson). Defaults: factor 8, frac 0.1,
	// mean burst sojourn 100k cycles (~28.6 µs at 3.5 GHz).
	BurstFactor     float64 // burst-state rate multiplier over the base state
	BurstFrac       float64 // long-run fraction of time spent bursting
	BurstMeanCycles float64 // mean burst-state sojourn, cycles
}

// Class is one priority class of the request mix. Classes are served in
// strict priority order of their index (0 = highest); within a class the
// queue is FIFO.
type Class struct {
	Name     string
	Share    int  // percent of arrivals belonging to this class
	WritePct int  // percent of this class's requests that mutate
	Work     Dist // pre-CS local compute, cycles (request parsing, app logic)
	// Footprint is the structure work per request: the number of
	// operations performed, each inside its own critical section
	// (hashmap ops, kyoto record/database ops, tpcc transactions).
	Footprint Dist
}

// Config describes one open-system measurement point.
type Config struct {
	Workload string // "hashmap" | "kyoto" | "tpcc"
	Servers  int    // simulated CPUs serving the queue
	QueueCap int    // bound on queued requests; arrivals beyond it are dropped
	Requests int    // arrivals to generate (the open-loop schedule length)
	// WarmupFrac of the earliest arrivals are excluded from the latency
	// quantiles (queue ramp-up from empty biases the steady-state tail
	// optimistically); they still count as served/dropped.
	WarmupFrac float64
	Arrivals   ArrivalConfig
	Classes    []Class
	Seed       uint64
	// DispatchCycles is charged by a server per dequeue (the queue-op
	// cost a real dispatcher would pay).
	DispatchCycles int64

	// Hashmap sizing (ignored by kyoto/tpcc, which size themselves).
	HashBuckets int64
	HashItems   int64

	// Keys, when Universe > 0, gives every request a Zipfian primary key
	// (and possibly a secondary key) drawn from a dedicated stream — the
	// keyed-demand extension the sharded deployment routes on. The zero
	// value disables keyed demand and leaves the schedule bytes of every
	// existing workload untouched.
	Keys KeyConfig
}

// KeyConfig parameterizes keyed demand: which key(s) each request touches.
type KeyConfig struct {
	Universe int     // distinct keys; 0 disables keyed demand
	Skew     float64 // Zipf exponent s over key ranks (0 = uniform)
	// CrossPct is the percent of *write* requests that also touch a
	// second, independently drawn key — the multi-key transactions that
	// may span shards. The secondary draw happens for every request
	// regardless (and is discarded when unused), so changing CrossPct
	// never shifts the primary keys of later requests.
	CrossPct int
}

// DefaultClasses returns the standard 3-class service mix: a
// latency-sensitive interactive class, the bulk standard class, and a
// low-priority batch class with a heavy Pareto work tail.
func DefaultClasses() []Class {
	return []Class{
		{Name: "interactive", Share: 30, WritePct: 5,
			Work: Pareto(600, 2.5), Footprint: Fixed(1)},
		{Name: "standard", Share: 60, WritePct: 20,
			Work: Pareto(1200, 2.0), Footprint: Bimodal(2, 0.9, 8)},
		{Name: "batch", Share: 10, WritePct: 50,
			Work: Pareto(4000, 1.5), Footprint: Pareto(6, 1.8)},
	}
}

// DefaultConfig returns the baseline point configuration for a workload,
// with the arrival rate left to the caller (see harness.ServeSweep for
// the calibrated sweep grids).
func DefaultConfig(workload string) Config {
	return Config{
		Workload:       workload,
		Servers:        8,
		QueueCap:       512,
		Requests:       4000,
		WarmupFrac:     0.1,
		Arrivals:       ArrivalConfig{Process: Poisson},
		Classes:        DefaultClasses(),
		Seed:           1,
		DispatchCycles: 60,
		HashBuckets:    256,
		HashItems:      12,
	}
}

// applyDefaults normalizes a config in place and validates it.
func (c *Config) applyDefaults() error {
	if c.Workload == "" {
		c.Workload = "hashmap"
	}
	if c.Servers <= 0 {
		c.Servers = 8
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 512
	}
	if c.Requests <= 0 {
		c.Requests = 4000
	}
	if c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		return fmt.Errorf("service: WarmupFrac %v outside [0,1)", c.WarmupFrac)
	}
	if c.Arrivals.RatePerSec <= 0 {
		return fmt.Errorf("service: arrival rate must be positive, got %v", c.Arrivals.RatePerSec)
	}
	if c.Arrivals.BurstFactor == 0 {
		c.Arrivals.BurstFactor = 8
	}
	if c.Arrivals.BurstFrac == 0 {
		c.Arrivals.BurstFrac = 0.1
	}
	if c.Arrivals.BurstMeanCycles == 0 {
		c.Arrivals.BurstMeanCycles = 100_000
	}
	if c.Arrivals.BurstFactor < 1 || c.Arrivals.BurstFrac <= 0 || c.Arrivals.BurstFrac >= 1 {
		return fmt.Errorf("service: MMPP shape invalid (factor %v, frac %v)",
			c.Arrivals.BurstFactor, c.Arrivals.BurstFrac)
	}
	if len(c.Classes) == 0 {
		c.Classes = DefaultClasses()
	}
	if len(c.Classes) > 8 {
		return fmt.Errorf("service: %d priority classes (max 8)", len(c.Classes))
	}
	share := 0
	for i := range c.Classes {
		if c.Classes[i].Share <= 0 {
			return fmt.Errorf("service: class %q has non-positive share", c.Classes[i].Name)
		}
		share += c.Classes[i].Share
	}
	if share != 100 {
		return fmt.Errorf("service: class shares sum to %d, want 100", share)
	}
	if c.DispatchCycles <= 0 {
		c.DispatchCycles = 60
	}
	if c.HashBuckets <= 0 {
		c.HashBuckets = 256
	}
	if c.HashItems <= 0 {
		c.HashItems = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Keys.Universe > 0 {
		if c.Keys.Skew < 0 {
			return fmt.Errorf("service: key skew %v negative", c.Keys.Skew)
		}
		if c.Keys.CrossPct < 0 || c.Keys.CrossPct > 100 {
			return fmt.Errorf("service: CrossPct %d outside [0,100]", c.Keys.CrossPct)
		}
	}
	return nil
}

// Normalize applies defaults in place and validates the config. Exported
// for runners outside the package (the shard deployment) that need the
// defaulted values — server count, class list, queue bound — before
// generating the schedule.
func (c *Config) Normalize() error { return c.applyDefaults() }

// Request is one generated arrival: the open-loop schedule entry plus the
// fields the run fills in. The schedule fields (ArriveAt through Seed) are
// fixed before machine.Run starts and never depend on service progress —
// that independence is the open-system property, and tests pin it.
type Request struct {
	ArriveAt  int64  // virtual arrival time (cycles from run start)
	Class     int    // priority class index
	IsWrite   bool   // mutating request
	Work      int64  // pre-CS local compute, cycles
	Footprint int    // keys (hashmap) or ops (kyoto/tpcc)
	Seed      uint64 // per-request parameter stream seed
	Key       int    // Zipfian primary key rank; -1 when keyed demand is off
	Key2      int    // secondary key of a multi-key write; -1 if none

	Dropped   bool
	Server    int   // CPU that served it
	DequeueAt int64 // when a server popped it (queue wait = DequeueAt-ArriveAt)
	DoneAt    int64 // completion (sojourn = DoneAt-ArriveAt)
	Path      int8  // dominant stats.CommitPath of its critical sections; -1 = none
}

// scheduleSeed derives the arrival-schedule stream seed from the machine
// seed; the two streams must be distinct so that adding a draw to one
// cannot perturb the other.
func scheduleSeed(seed uint64) uint64 {
	return seed*0x9e3779b97f4a7c15 + 0x5161736b6f6f70 // "Qask oop"
}

// keySeed derives the keyed-demand stream seed. Keys come from their own
// stream (distinct from both the machine and the arrival schedule) so
// turning keyed demand on or changing the key universe cannot shift the
// arrival times, class mix, or demand draws of any request.
func keySeed(seed uint64) uint64 {
	return seed*0x9e3779b97f4a7c15 + 0x6b65797374726d // "keystrm"
}

// NewScheduleStream returns the stream the schedule generator draws from.
// Exposed so tests can pin schedule bytes independently of GenerateSchedule.
func NewScheduleStream(seed uint64) *machine.Stream {
	return machine.NewStream(scheduleSeed(seed))
}
