package service

import (
	"bytes"
	"encoding/json"
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/rwlock"
)

func sglFactory() rwlock.Factory {
	return func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }
}

func hleFactory() rwlock.Factory {
	return func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }
}

// pointJSON runs a point and returns its metrics serialized to JSON.
func pointJSON(t *testing.T, cfg Config, scheme string, mk rwlock.Factory) []byte {
	t.Helper()
	m, _, err := RunPoint(cfg, scheme, mk, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunPointDeterministic: two runs of the same point produce
// byte-identical JSON — the double-run gate CI enforces end-to-end.
func TestRunPointDeterministic(t *testing.T) {
	for _, wl := range []string{"hashmap", "kyoto", "tpcc"} {
		cfg := testConfig(wl)
		cfg.Requests = 300
		cfg.Arrivals.RatePerSec = 3e5
		a := pointJSON(t, cfg, "SGL", sglFactory())
		b := pointJSON(t, cfg, "SGL", sglFactory())
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two identical runs produced different metrics JSON", wl)
		}
	}
}

// TestRunPointConservation: every generated request is exactly one of
// served or dropped, and completion ordering fields are consistent.
func TestRunPointConservation(t *testing.T) {
	cfg := testConfig("hashmap")
	cfg.Arrivals.RatePerSec = 8e6 // oversaturated: force drops
	cfg.QueueCap = 32
	m, reqs, err := RunPoint(cfg, "SGL", sglFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	served, dropped := int64(0), int64(0)
	for i := range reqs {
		r := &reqs[i]
		if r.Dropped {
			dropped++
			continue
		}
		served++
		if r.DequeueAt < r.ArriveAt {
			t.Fatalf("request %d dequeued at %d before arriving at %d", i, r.DequeueAt, r.ArriveAt)
		}
		if r.DoneAt <= r.DequeueAt {
			t.Fatalf("request %d done at %d not after dequeue at %d", i, r.DoneAt, r.DequeueAt)
		}
	}
	if dropped == 0 {
		t.Fatal("oversaturated tiny-cap point dropped nothing")
	}
	if served != m.Served || dropped != m.Dropped {
		t.Fatalf("metrics disagree with schedule: served %d/%d, dropped %d/%d",
			m.Served, served, m.Dropped, dropped)
	}
	if served+dropped != int64(len(reqs)) {
		t.Fatalf("conservation broken: %d + %d != %d", served, dropped, len(reqs))
	}
}

// TestPriorityOrdering: under saturation the high-priority class must see
// far lower queue wait than the low-priority class.
func TestPriorityOrdering(t *testing.T) {
	cfg := testConfig("hashmap")
	cfg.Requests = 1500
	cfg.Arrivals.RatePerSec = 6e6 // past the SGL knee
	m, _, err := RunPoint(cfg, "SGL", sglFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hi := m.Classes[0].QueueWait.P99Cycles
	lo := m.Classes[len(m.Classes)-1].QueueWait.P99Cycles
	if hi*4 > lo {
		t.Fatalf("priority inversion: interactive p99 wait %.0f vs batch %.0f cycles", hi, lo)
	}
}

// TestSaturationKnee: as offered load crosses the capacity of the scheme,
// achieved throughput flattens while low-load points keep up with offered.
func TestSaturationKnee(t *testing.T) {
	achieved := make([]float64, 0, 3)
	for _, rate := range []float64{4e5, 2.4e6, 9e6} {
		cfg := testConfig("hashmap")
		cfg.Requests = 1500
		cfg.Arrivals.RatePerSec = rate
		m, _, err := RunPoint(cfg, "SGL", sglFactory(), nil)
		if err != nil {
			t.Fatal(err)
		}
		achieved = append(achieved, m.AchievedPerSec)
	}
	if achieved[0] < 4e5*0.95 {
		t.Errorf("below the knee achieved %.0f/s lags offered 400000/s", achieved[0])
	}
	// Past saturation, tripling the offered load must not find much more
	// capacity.
	if achieved[2] > achieved[1]*1.25 {
		t.Errorf("no knee: achieved kept climbing %.0f -> %.0f past saturation", achieved[1], achieved[2])
	}
}

// TestWarmupExcluded: measured counts exclude the warmup prefix but
// served/dropped cover the whole schedule.
func TestWarmupExcluded(t *testing.T) {
	cfg := testConfig("hashmap")
	cfg.WarmupFrac = 0.5
	m, _, err := RunPoint(cfg, "SGL", sglFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var measured, served int64
	for _, c := range m.Classes {
		measured += c.Measured
		served += c.Served
	}
	if served != int64(cfg.Requests) || m.Dropped != 0 {
		t.Fatalf("expected all %d served at low load, got served=%d dropped=%d", cfg.Requests, served, m.Dropped)
	}
	if measured >= served || measured == 0 {
		t.Fatalf("warmup exclusion wrong: measured %d of %d served", measured, served)
	}
}

// TestCommitPathAttribution: under a speculative scheme requests resolve
// to a commit path and the per-path split accounts for the measured set.
func TestCommitPathAttribution(t *testing.T) {
	cfg := testConfig("hashmap")
	m, _, err := RunPoint(cfg, "HLE", hleFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sawPath := false
	for _, c := range m.Classes {
		var byPath int64
		for _, p := range c.ByPath {
			byPath += p.Served
			sawPath = true
		}
		if byPath > c.Measured {
			t.Fatalf("class %s: path split %d exceeds measured %d", c.Class, byPath, c.Measured)
		}
	}
	if !sawPath {
		t.Fatal("no commit-path attribution under HLE")
	}
}

// TestMMPPRun: the bursty process runs end to end and serves everything
// at moderate load.
func TestMMPPRun(t *testing.T) {
	cfg := testConfig("hashmap")
	cfg.Arrivals.Process = MMPP
	cfg.Arrivals.RatePerSec = 1e6
	m, _, err := RunPoint(cfg, "SGL", sglFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served == 0 || m.Process != "mmpp" {
		t.Fatalf("mmpp run broken: served=%d process=%q", m.Served, m.Process)
	}
}
