package service

import (
	"fmt"
	"math"

	"hrwle/internal/machine"
)

// GenerateSchedule draws the complete open-loop arrival schedule for a
// point: arrival times, class assignment, write flag, work and footprint
// demands, and a per-request parameter seed. The schedule is a pure
// function of (Config, Config.Seed) and is fixed before the machine runs,
// so arrivals cannot depend on service progress — the open-system
// property. Requests are returned in nondecreasing ArriveAt order.
func GenerateSchedule(cfg Config) ([]Request, error) {
	c := cfg
	if err := c.applyDefaults(); err != nil {
		return nil, err
	}
	for i := range c.Classes {
		cl := &c.Classes[i]
		if err := cl.Work.check(); err != nil {
			return nil, fmt.Errorf("class %q work: %w", cl.Name, err)
		}
		if err := cl.Footprint.check(); err != nil {
			return nil, fmt.Errorf("class %q footprint: %w", cl.Name, err)
		}
	}
	s := NewScheduleStream(c.Seed)
	times := arrivalTimes(s, c.Arrivals, c.Requests)
	// Cumulative class shares for the percent draw.
	var cum [8]int
	acc := 0
	for i := range c.Classes {
		acc += c.Classes[i].Share
		cum[i] = acc
	}
	reqs := make([]Request, c.Requests)
	for i := range reqs {
		r := &reqs[i]
		r.ArriveAt = times[i]
		// Exactly four main-stream draws per request, independent of any
		// distribution parameter: changing a class's work or footprint
		// distribution must not shift the class/write draws of later
		// requests (part of the open-loop invariant the tests pin).
		p := s.Intn(100)
		for ci := range c.Classes {
			if p < cum[ci] {
				r.Class = ci
				break
			}
		}
		cl := &c.Classes[r.Class]
		r.IsWrite = s.Intn(100) < cl.WritePct
		r.Seed = s.Next()
		// Service demands come from a per-request sub-stream (distinct
		// from r.Seed, which the executor consumes for op parameters).
		demand := machine.NewStream(s.Next())
		r.Work = cl.Work.Sample(demand)
		if fp := cl.Footprint.Sample(demand); fp < 1 {
			r.Footprint = 1
		} else {
			r.Footprint = int(fp)
		}
		r.Path = -1
		r.Key, r.Key2 = -1, -1
	}
	assignKeys(&c, reqs)
	return reqs, nil
}

// assignKeys fills each request's Zipfian key(s) from the dedicated key
// stream. Exactly three key-stream draws per request — the cross-shard
// percent draw and the secondary-key draw happen even when discarded — so
// changing CrossPct (or a request being a read) never shifts the keys of
// later requests.
func assignKeys(c *Config, reqs []Request) {
	if c.Keys.Universe <= 0 {
		return
	}
	z := NewZipf(c.Keys.Universe, c.Keys.Skew)
	ks := machine.NewStream(keySeed(c.Seed))
	for i := range reqs {
		r := &reqs[i]
		r.Key = z.Sample(ks)
		cross := ks.Intn(100) < c.Keys.CrossPct
		k2 := z.Sample(ks)
		if r.IsWrite && cross {
			r.Key2 = k2
		}
	}
}

// arrivalTimes draws n arrival instants (cycles) for the process.
func arrivalTimes(s *machine.Stream, a ArrivalConfig, n int) []int64 {
	times := make([]int64, n)
	switch a.Process {
	case MMPP:
		mmppTimes(s, a, times)
	default:
		poissonTimes(s, a.RatePerSec, times)
	}
	return times
}

// expGap draws an exponential inter-event gap with the given mean cycles.
// The +1 floor keeps virtual time strictly advancing per draw.
func expGap(s *machine.Stream, meanCycles float64) int64 {
	g := int64(-meanCycles*math.Log(1-s.Float64()) + 0.5)
	if g < 1 {
		g = 1
	}
	return g
}

// poissonTimes fills times with a Poisson process of rate ratePerSec.
func poissonTimes(s *machine.Stream, ratePerSec float64, times []int64) {
	meanGap := machine.CyclesPerSecond / ratePerSec
	t := int64(0)
	for i := range times {
		t += expGap(s, meanGap)
		times[i] = t
	}
}

// mmppTimes fills times with a 2-state MMPP. The base-state rate λ0 is
// chosen so the long-run rate equals RatePerSec: with burst factor k and
// burst time-fraction f, λ = λ0·(1−f) + k·λ0·f, so λ0 = λ/(1−f+f·k).
// State sojourns are exponential: mean BurstMeanCycles bursting, and
// Tb·(1−f)/f in the base state so the stationary burst fraction is f.
// Because sojourns are memoryless, redrawing the arrival gap at each
// state switch is an exact simulation of the modulated process.
func mmppTimes(s *machine.Stream, a ArrivalConfig, times []int64) {
	k, f := a.BurstFactor, a.BurstFrac
	rate0 := a.RatePerSec / (1 - f + f*k)
	meanGap0 := machine.CyclesPerSecond / rate0
	meanGapB := meanGap0 / k
	sojournB := a.BurstMeanCycles
	sojournN := sojournB * (1 - f) / f

	t := int64(0)
	burst := false
	switchAt := t + expGap(s, sojournN)
	for i := range times {
		for {
			gap := meanGap0
			if burst {
				gap = meanGapB
			}
			next := t + expGap(s, gap)
			if next <= switchAt {
				t = next
				break
			}
			// The candidate arrival falls past the state switch: advance to
			// the switch, flip state, and redraw (memorylessness).
			t = switchAt
			burst = !burst
			if burst {
				switchAt = t + expGap(s, sojournB)
			} else {
				switchAt = t + expGap(s, sojournN)
			}
		}
		times[i] = t
	}
}
