package service

import (
	"sort"

	"hrwle/internal/obs"
)

// CounterTracks derives the Chrome counter tracks of one completed run
// from its request log: "queue depth" (arrived, not yet dequeued; dropped
// requests never enter the queue) and "in-flight" (dequeued, executing on
// a server, not yet done). Deltas at the same virtual timestamp are
// aggregated into one point per track, so the output is deterministic
// regardless of request order.
func CounterTracks(reqs []Request) []obs.CounterSeries {
	type delta struct{ ts, dq, df int64 }
	ds := make([]delta, 0, 3*len(reqs))
	for i := range reqs {
		r := &reqs[i]
		if r.Dropped {
			continue
		}
		ds = append(ds,
			delta{r.ArriveAt, 1, 0},
			delta{r.DequeueAt, -1, 1},
			delta{r.DoneAt, 0, -1})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].ts < ds[j].ts })
	var q, f int64
	var qs, fs []obs.CounterPoint
	for i := 0; i < len(ds); {
		t := ds[i].ts
		for i < len(ds) && ds[i].ts == t {
			q += ds[i].dq
			f += ds[i].df
			i++
		}
		qs = append(qs, obs.CounterPoint{Ts: t, Value: q})
		fs = append(fs, obs.CounterPoint{Ts: t, Value: f})
	}
	return []obs.CounterSeries{
		{Name: "queue depth", Points: qs},
		{Name: "in-flight requests", Points: fs},
	}
}
