package service

import (
	"fmt"
	"math"
	"sort"

	"hrwle/internal/machine"
)

// Zipf samples ranks in [0, n) with P(k) ∝ 1/(k+1)^s — rank 0 is the
// hottest key. The sampler is exact for every s ≥ 0 (s = 0 degenerates to
// uniform): the normalized CDF is precomputed once and each draw is one
// Float64 plus a binary search. The O(n) table costs 8 bytes per rank,
// which at the multi-million-key universes the shard workload uses is a
// few MB per measurement point — paid once per machine, not per draw.
//
// Rejection-style samplers (as in math/rand's Zipf) need s > 1 and would
// exclude the s = 0.9 sweep point; the table is exact at any exponent and
// keeps the draw count per sample fixed at one, which the determinism
// tests pin.
type Zipf struct {
	n   int
	s   float64
	cdf []float64 // cdf[k] = P(X ≤ k); cdf[n-1] == 1 by construction
}

// NewZipf builds a sampler over ranks [0, n) with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("service: Zipf universe %d (want > 0)", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("service: Zipf exponent %v (want ≥ 0)", s))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // normalization rounding must not leave a reachable gap
	return &Zipf{n: n, s: s, cdf: cdf}
}

// N returns the universe size.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// PMF returns the analytic probability of rank k (tests compare empirical
// frequencies against it).
func (z *Zipf) PMF(k int) float64 {
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Sample draws one rank from the stream: exactly one Float64 per call.
func (z *Zipf) Sample(st *machine.Stream) int {
	u := st.Float64()
	k := sort.SearchFloat64s(z.cdf, u)
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
