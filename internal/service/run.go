package service

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/obs"
	"hrwle/internal/rwlock"
	"hrwle/internal/simsan"
	"hrwle/internal/stats"
)

// RunPoint measures one open-system point: it draws the arrival schedule,
// builds the protected structure under the given lock scheme, serves the
// schedule with cfg.Servers simulated CPUs, and returns the latency
// metrics plus the completed schedule (for tests and traces). observe, if
// non-nil, is called with the machine before the run starts (tracer
// attachment).
func RunPoint(cfg Config, scheme string, mk rwlock.Factory, observe func(*machine.Machine)) (*obs.ServiceMetrics, []Request, error) {
	m, reqs, _, err := runPoint(cfg, scheme, mk, observe, nil, false)
	return m, reqs, err
}

// RunPointSanitized is RunPoint with the simsan happens-before race
// detector attached for the serving phase (population is setup, not
// workload). The returned race report is deterministic for a given
// configuration; the metrics and sim_cycles are identical to an
// unsanitized run — the sanitizer only observes the event stream.
func RunPointSanitized(cfg Config, scheme string, mk rwlock.Factory) (*obs.ServiceMetrics, *simsan.Report, error) {
	m, _, rep, err := runPoint(cfg, scheme, mk, nil, nil, true)
	return m, rep, err
}

// RunPointProfiled is RunPoint with a virtual-time profiler attached: prof
// (when non-nil) is installed as an additional tracer right before the run
// — after structure population, so attribution covers exactly the serving
// phase — Started/Finished around it, and fed the completed request log so
// its timeline carries the queue-depth and sojourn series. The profiler is
// a pure event consumer: metrics and sim_cycles are identical with and
// without it.
func RunPointProfiled(cfg Config, scheme string, mk rwlock.Factory, observe func(*machine.Machine), prof *obs.Profile) (*obs.ServiceMetrics, []Request, error) {
	m, reqs, _, err := runPoint(cfg, scheme, mk, observe, prof, false)
	return m, reqs, err
}

func runPoint(cfg Config, scheme string, mk rwlock.Factory, observe func(*machine.Machine), prof *obs.Profile, sanitize bool) (*obs.ServiceMetrics, []Request, *simsan.Report, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, nil, nil, err
	}
	reqs, err := GenerateSchedule(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	totalOps := int64(0)
	for i := range reqs {
		totalOps += int64(reqs[i].Footprint)
	}
	m := machine.New(machine.Config{
		CPUs:     cfg.Servers,
		MemWords: cfg.memWords(totalOps),
		Seed:     cfg.Seed,
	})
	if observe != nil {
		observe(m)
	}
	sys := htm.NewSystem(m, htm.Config{})
	lock := mk(sys)
	ex, err := newExecutor(&cfg, m, sys, lock, scheme)
	if err != nil {
		return nil, nil, nil, err
	}

	q := NewQueue(reqs, cfg.QueueCap, len(cfg.Classes))
	// Late observers attach after structure population so they cover
	// exactly the serving phase.
	var late machine.MultiTracer
	if prof != nil {
		prof.Start(m.Now(), cfg.Servers)
		late = append(late, prof)
	}
	var san *simsan.Sanitizer
	if sanitize {
		san = simsan.New(simsan.Options{CPUs: cfg.Servers})
		sys.SetTraceAccesses(true)
		late = append(late, san)
	}
	if len(late) > 0 {
		if t := m.Tracer(); t != nil {
			m.SetTracer(append(machine.MultiTracer{t}, late...))
		} else {
			m.SetTracer(late)
		}
	}
	cycles := m.Run(cfg.Servers, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for {
			// Sync makes this CPU the global minimum (time, ID), so the
			// host-side queue below is only ever touched in nondecreasing
			// virtual time — see the queue type comment.
			c.Sync()
			idx, ok := q.Pop(c.Now())
			if !ok {
				if t, more := q.NextArrival(); more {
					c.IdleUntil(t)
					continue
				}
				// Schedule exhausted and queue empty: arrivals are the only
				// source of work, so this server is done.
				return
			}
			r := &q.reqs[idx]
			r.Server = c.ID
			r.DequeueAt = c.Now()
			c.Tick(cfg.DispatchCycles)
			c.Tick(r.Work) // pre-CS local compute (parse, app logic)
			before := th.St.Commits
			ex.exec(r, c, th)
			r.Path = DominantPath(before, th.St.Commits)
			r.DoneAt = c.Now()
		}
	})
	if prof != nil {
		for i := range q.reqs {
			r := &q.reqs[i]
			prof.Timeline.AddRequest(r.Class, r.ArriveAt, r.DequeueAt, r.DoneAt, r.Dropped)
		}
		prof.Finish(m.Now())
	}
	var sanRep *simsan.Report
	if san != nil {
		sanRep = san.Finish()
	}
	b := stats.Merge(sys.Stats(cfg.Servers), cycles)
	return Assemble(&cfg, scheme, q.reqs, cycles, &b), q.reqs, sanRep, nil
}

// DominantPath returns the commit path most of the request's critical
// sections took (ties break toward the smaller path index, i.e. the more
// speculative path); -1 when no critical section committed a path delta.
func DominantPath(before, after [stats.NumCommitPaths]int64) int8 {
	best, bestN := -1, int64(0)
	for i := 0; i < stats.NumCommitPaths; i++ {
		if d := after[i] - before[i]; d > bestN {
			best, bestN = i, d
		}
	}
	return int8(best)
}

// Assemble folds the completed schedule into a ServiceMetrics. Quantiles
// cover measured requests: served, past the warmup prefix of the arrival
// order.
func Assemble(cfg *Config, scheme string, reqs []Request, cycles int64, b *stats.Breakdown) *obs.ServiceMetrics {
	warmup := int(cfg.WarmupFrac * float64(len(reqs)))
	out := &obs.ServiceMetrics{
		Workload:       cfg.Workload,
		Scheme:         scheme,
		Servers:        cfg.Servers,
		QueueCap:       cfg.QueueCap,
		Process:        cfg.Arrivals.Process.String(),
		OfferedPerSec:  cfg.Arrivals.RatePerSec,
		Requests:       int64(len(reqs)),
		MakespanCycles: cycles,
		Breakdown:      obs.NewBreakdown(b),
	}
	if n := len(reqs); n > 0 {
		out.LastArrivalCycles = reqs[n-1].ArriveAt
	}
	type classAcc struct {
		arrivals, served, dropped int64
		wait, svc, sojourn        obs.Samples
		byPath                    [stats.NumCommitPaths]obs.Samples
	}
	accs := make([]classAcc, len(cfg.Classes))
	for i := range reqs {
		r := &reqs[i]
		a := &accs[r.Class]
		a.arrivals++
		if r.Dropped {
			a.dropped++
			out.Dropped++
			continue
		}
		a.served++
		out.Served++
		if i < warmup {
			continue
		}
		a.wait.Add(r.DequeueAt - r.ArriveAt)
		a.svc.Add(r.DoneAt - r.DequeueAt)
		a.sojourn.Add(r.DoneAt - r.ArriveAt)
		if r.Path >= 0 {
			a.byPath[r.Path].Add(r.DoneAt - r.ArriveAt)
		}
	}
	if s := machine.Seconds(cycles); s > 0 {
		out.AchievedPerSec = float64(out.Served) / s
	}
	for ci := range accs {
		a := &accs[ci]
		cm := obs.ClassServiceMetrics{
			Class:     cfg.Classes[ci].Name,
			Priority:  ci,
			Arrivals:  a.arrivals,
			Served:    a.served,
			Dropped:   a.dropped,
			Measured:  a.sojourn.Count(),
			QueueWait: a.wait.JSON(),
			Service:   a.svc.JSON(),
			Sojourn:   a.sojourn.JSON(),
		}
		for p := 0; p < stats.NumCommitPaths; p++ {
			if a.byPath[p].Count() > 0 {
				cm.ByPath = append(cm.ByPath, obs.PathSojourn{
					Path:    stats.CommitPath(p).String(),
					Served:  a.byPath[p].Count(),
					Sojourn: a.byPath[p].JSON(),
				})
			}
		}
		out.Classes = append(out.Classes, cm)
	}
	return out
}
