package service

import (
	"fmt"
	"math"

	"hrwle/internal/machine"
)

// Dist is a non-negative service-demand distribution sampled from a
// deterministic stream. All schedule randomness is drawn at schedule
// generation time, before the machine runs.
type Dist struct {
	kind distKind
	// Mean is the distribution mean (cycles for Work, count for Footprint).
	Mean float64
	// Alpha is the Pareto tail index (heavier tail for smaller alpha;
	// alpha must exceed 1 for the mean to exist).
	Alpha float64
	// SmallProb and Ratio shape the bimodal mix: a sample is small with
	// probability SmallProb, and large samples are Ratio× the small mode.
	SmallProb float64
	Ratio     float64
	// CapFactor bounds Pareto samples at CapFactor×Mean so one schedule
	// draw cannot dominate a whole measurement point (default 50).
	CapFactor float64
}

type distKind int

const (
	distFixed distKind = iota
	distPareto
	distBimodal
)

// Fixed returns the degenerate distribution: every sample is mean.
func Fixed(mean float64) Dist { return Dist{kind: distFixed, Mean: mean} }

// Pareto returns a bounded Pareto distribution with the given mean and
// tail index alpha (> 1). Heavy tails are the defining feature of service
// demand in real systems; alpha in (1, 2) gives infinite variance, the
// regime where tail latency decouples from mean load.
func Pareto(mean, alpha float64) Dist {
	return Dist{kind: distPareto, Mean: mean, Alpha: alpha, CapFactor: 50}
}

// Bimodal returns a two-point mix: small with probability smallProb,
// large = ratio×small otherwise, shaped so the overall mean is mean.
// Models the common "cheap point op vs expensive scan" service split.
func Bimodal(mean, smallProb, ratio float64) Dist {
	return Dist{kind: distBimodal, Mean: mean, SmallProb: smallProb, Ratio: ratio}
}

// check validates the distribution parameters.
func (d Dist) check() error {
	if d.Mean <= 0 {
		return fmt.Errorf("dist mean %v must be positive", d.Mean)
	}
	switch d.kind {
	case distPareto:
		if d.Alpha <= 1 {
			return fmt.Errorf("pareto alpha %v must exceed 1", d.Alpha)
		}
	case distBimodal:
		if d.SmallProb <= 0 || d.SmallProb >= 1 || d.Ratio < 1 {
			return fmt.Errorf("bimodal shape invalid (p=%v, ratio=%v)", d.SmallProb, d.Ratio)
		}
	}
	return nil
}

// String names the distribution for reports.
func (d Dist) String() string {
	switch d.kind {
	case distFixed:
		return fmt.Sprintf("fixed(%g)", d.Mean)
	case distPareto:
		return fmt.Sprintf("pareto(%g,a=%g)", d.Mean, d.Alpha)
	case distBimodal:
		return fmt.Sprintf("bimodal(%g,p=%g,r=%g)", d.Mean, d.SmallProb, d.Ratio)
	}
	return "dist?"
}

// Sample draws one value, rounded to a non-negative integer.
func (d Dist) Sample(s *machine.Stream) int64 {
	var x float64
	switch d.kind {
	case distFixed:
		x = d.Mean
	case distPareto:
		// Inverse-CDF: x = xm * U^(-1/alpha), with the scale xm chosen so
		// the (uncapped) mean is Mean: E[X] = xm*alpha/(alpha-1).
		xm := d.Mean * (d.Alpha - 1) / d.Alpha
		u := 1 - s.Float64() // in (0, 1]
		x = xm * math.Pow(u, -1/d.Alpha)
		cap := d.CapFactor
		if cap <= 0 {
			cap = 50
		}
		if max := cap * d.Mean; x > max {
			x = max
		}
	case distBimodal:
		// small*p + ratio*small*(1-p) = Mean.
		small := d.Mean / (d.SmallProb + (1-d.SmallProb)*d.Ratio)
		if s.Float64() < d.SmallProb {
			x = small
		} else {
			x = d.Ratio * small
		}
	}
	v := int64(x + 0.5)
	if v < 0 {
		v = 0
	}
	return v
}
