package service

import (
	"math"
	"testing"

	"hrwle/internal/machine"
)

// TestZipfDeterministic pins that two samplers built from the same
// parameters, fed by streams with the same seed, produce identical rank
// sequences — the property every shard-sweep determinism gate rests on.
func TestZipfDeterministic(t *testing.T) {
	for _, s := range []float64{0, 0.9, 1.2} {
		a, b := NewZipf(4096, s), NewZipf(4096, s)
		sa, sb := machine.NewStream(42), machine.NewStream(42)
		for i := 0; i < 10_000; i++ {
			ka, kb := a.Sample(sa), b.Sample(sb)
			if ka != kb {
				t.Fatalf("s=%v draw %d: %d vs %d", s, i, ka, kb)
			}
		}
	}
}

// TestZipfSeedSensitivity checks that distinct stream seeds give distinct
// sequences: a sampler that ignored its stream would still pass the
// determinism test.
func TestZipfSeedSensitivity(t *testing.T) {
	z := NewZipf(1<<16, 0.9)
	sa, sb := machine.NewStream(1), machine.NewStream(2)
	same := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if z.Sample(sa) == z.Sample(sb) {
			same++
		}
	}
	// At s=0.9 over 64k ranks, collisions concentrate on the head but two
	// independent streams still disagree on the vast majority of draws.
	if same > draws/2 {
		t.Fatalf("seeds 1 and 2 agreed on %d/%d draws", same, draws)
	}
}

// TestZipfFrequency draws a large sample and compares empirical rank
// frequencies to the analytic pmf within a pinned tolerance band: the top
// ranks (where mass concentrates) must match to a few percent relative
// error, and the total variation distance over the whole support must be
// small. Tolerances have ~3x headroom over the observed error at this
// sample size, so the test fails on a wrong distribution, not on noise.
func TestZipfFrequency(t *testing.T) {
	const (
		n     = 1000
		draws = 400_000
	)
	for _, s := range []float64{0, 0.9, 1.2} {
		z := NewZipf(n, s)
		st := machine.NewStream(7)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Sample(st)]++
		}
		tv := 0.0
		for k := 0; k < n; k++ {
			emp := float64(counts[k]) / draws
			tv += math.Abs(emp - z.PMF(k))
		}
		tv /= 2
		if tv > 0.02 {
			t.Errorf("s=%v: total variation %.4f > 0.02", s, tv)
		}
		for k := 0; k < 10; k++ {
			emp := float64(counts[k]) / draws
			pmf := z.PMF(k)
			// 2% systematic band plus 5 binomial standard errors: tight on
			// the heavy head, sampling-noise-aware on near-uniform tails.
			tol := 0.02*pmf + 5*math.Sqrt(pmf*(1-pmf)/draws)
			if math.Abs(emp-pmf) > tol {
				t.Errorf("s=%v rank %d: empirical %.5f vs pmf %.5f (|err| > %.5f)",
					s, k, emp, pmf, tol)
			}
		}
	}
}

// TestZipfPMFSumsToOne sanity-checks the table normalization.
func TestZipfPMFSumsToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 0.9, 1.2, 2} {
		z := NewZipf(257, s)
		sum := 0.0
		for k := 0; k < z.N(); k++ {
			sum += z.PMF(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%v: pmf sums to %v", s, sum)
		}
	}
}

// TestKeyedScheduleInvariance pins the keyed-demand isolation properties:
// (a) enabling keys does not change any pre-existing schedule field, and
// (b) changing CrossPct changes only which requests carry a secondary key,
// never the primary keys.
func TestKeyedScheduleInvariance(t *testing.T) {
	base := DefaultConfig("hashmap")
	base.Requests = 500
	base.Arrivals.RatePerSec = 1e6

	plain, err := GenerateSchedule(base)
	if err != nil {
		t.Fatal(err)
	}
	keyed := base
	keyed.Keys = KeyConfig{Universe: 1 << 12, Skew: 1.2, CrossPct: 10}
	withKeys, err := GenerateSchedule(keyed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		p, k := plain[i], withKeys[i]
		if p.ArriveAt != k.ArriveAt || p.Class != k.Class || p.IsWrite != k.IsWrite ||
			p.Work != k.Work || p.Footprint != k.Footprint || p.Seed != k.Seed {
			t.Fatalf("request %d: keyed demand perturbed the base schedule", i)
		}
		if p.Key != -1 || p.Key2 != -1 {
			t.Fatalf("request %d: keys assigned with keyed demand off", i)
		}
		if k.Key < 0 || k.Key >= 1<<12 {
			t.Fatalf("request %d: key %d outside universe", i, k.Key)
		}
		if k.Key2 != -1 && !k.IsWrite {
			t.Fatalf("request %d: secondary key on a read", i)
		}
	}

	noCross := keyed
	noCross.Keys.CrossPct = 0
	without, err := GenerateSchedule(noCross)
	if err != nil {
		t.Fatal(err)
	}
	anyCross := false
	for i := range withKeys {
		if withKeys[i].Key != without[i].Key {
			t.Fatalf("request %d: CrossPct shifted primary key %d -> %d",
				i, withKeys[i].Key, without[i].Key)
		}
		if without[i].Key2 != -1 {
			t.Fatalf("request %d: secondary key with CrossPct=0", i)
		}
		if withKeys[i].Key2 != -1 {
			anyCross = true
		}
	}
	if !anyCross {
		t.Fatal("CrossPct=10 produced no multi-key request in 500 arrivals")
	}
}
