package service

import (
	"reflect"
	"testing"
)

// testConfig returns a small, fast point configuration.
func testConfig(workload string) Config {
	cfg := DefaultConfig(workload)
	cfg.Requests = 600
	cfg.Arrivals.RatePerSec = 2e6
	return cfg
}

// TestScheduleDeterministic: the same config yields a byte-identical
// schedule every time — the foundation of every other guarantee here.
func TestScheduleDeterministic(t *testing.T) {
	a, err := GenerateSchedule(testConfig("hashmap"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchedule(testConfig("hashmap"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different schedules")
	}
}

// TestScheduleSeedSensitivity: a different seed changes the schedule (the
// stream is actually used).
func TestScheduleSeedSensitivity(t *testing.T) {
	cfg := testConfig("hashmap")
	a, _ := GenerateSchedule(cfg)
	cfg.Seed = 2
	b, _ := GenerateSchedule(cfg)
	if reflect.DeepEqual(a, b) {
		t.Fatal("seed change did not change the schedule")
	}
}

// TestScheduleSorted: arrival times are nondecreasing and strictly
// positive, and every request has at least one operation.
func TestScheduleSorted(t *testing.T) {
	for _, proc := range []Process{Poisson, MMPP} {
		cfg := testConfig("hashmap")
		cfg.Arrivals.Process = proc
		reqs, err := GenerateSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		prev := int64(0)
		for i, r := range reqs {
			if r.ArriveAt <= 0 || r.ArriveAt < prev {
				t.Fatalf("%s: arrival %d at %d not after %d", proc, i, r.ArriveAt, prev)
			}
			prev = r.ArriveAt
			if r.Footprint < 1 {
				t.Fatalf("%s: request %d has footprint %d", proc, i, r.Footprint)
			}
			if r.Class < 0 || r.Class >= len(cfg.Classes) {
				t.Fatalf("%s: request %d has class %d", proc, i, r.Class)
			}
		}
	}
}

// TestOpenLoopInvariant is the defining property of the open system:
// inflating every service-time parameter must leave the arrival stream
// (times, classes, write flags) untouched. In a closed loop this fails by
// construction — slower service means later arrivals.
func TestOpenLoopInvariant(t *testing.T) {
	base := testConfig("hashmap")
	slow := base
	slow.Classes = DefaultClasses()
	for i := range slow.Classes {
		slow.Classes[i].Work = Fixed(slow.Classes[i].Work.Mean * 100)
	}
	slow.DispatchCycles = base.DispatchCycles * 50

	a, err := GenerateSchedule(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchedule(slow)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ArriveAt != b[i].ArriveAt || a[i].Class != b[i].Class || a[i].IsWrite != b[i].IsWrite {
			t.Fatalf("request %d arrival stream changed under inflated service: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestClassSharesRespected: class assignment follows the configured
// shares within sampling tolerance.
func TestClassSharesRespected(t *testing.T) {
	cfg := testConfig("hashmap")
	cfg.Requests = 20000
	reqs, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var counts [8]int
	for _, r := range reqs {
		counts[r.Class]++
	}
	for i, cl := range cfg.Classes {
		got := 100 * float64(counts[i]) / float64(len(reqs))
		want := float64(cl.Share)
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("class %s: %.1f%% of arrivals, want ~%d%%", cl.Name, got, cl.Share)
		}
	}
}

// TestPoissonRate: the empirical arrival rate matches the configured one.
func TestPoissonRate(t *testing.T) {
	for _, proc := range []Process{Poisson, MMPP} {
		cfg := testConfig("hashmap")
		cfg.Requests = 30000
		cfg.Arrivals.Process = proc
		reqs, err := GenerateSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		span := reqs[len(reqs)-1].ArriveAt
		got := float64(len(reqs)) / (float64(span) / 3.5e9)
		want := cfg.Arrivals.RatePerSec
		// Counting arrivals over an arrival-bounded window length-biases
		// the estimate toward burst states, so MMPP gets a wider band.
		lo, hi := 0.9, 1.1
		if proc == MMPP {
			lo, hi = 0.8, 1.3
		}
		if got < want*lo || got > want*hi {
			t.Errorf("%s: empirical rate %.0f/s, configured %.0f/s", proc, got, want)
		}
	}
}

// TestQueueDropsAndConservation drives the queue directly: every request
// is either served (popped) or dropped, never both, and pops within a
// class come out in arrival order with higher classes first.
func TestQueueDropsAndConservation(t *testing.T) {
	reqs := []Request{
		{ArriveAt: 10, Class: 1},
		{ArriveAt: 20, Class: 0},
		{ArriveAt: 30, Class: 1},
		{ArriveAt: 40, Class: 0}, // arrives when queue is full → dropped
		{ArriveAt: 500, Class: 0},
	}
	q := NewQueue(reqs, 3, 2)

	// At t=45 the first three arrivals fill the cap-3 queue; the fourth is
	// dropped at its own arrival time.
	idx, ok := q.Pop(45)
	if !ok || idx != 1 {
		t.Fatalf("first pop = %d,%v; want the class-0 arrival (1)", idx, ok)
	}
	if !q.reqs[3].Dropped {
		t.Fatal("over-cap arrival was not dropped")
	}
	// Remaining class-1 requests come out FIFO.
	if idx, ok = q.Pop(46); !ok || idx != 0 {
		t.Fatalf("second pop = %d,%v; want 0", idx, ok)
	}
	if idx, ok = q.Pop(47); !ok || idx != 2 {
		t.Fatalf("third pop = %d,%v; want 2", idx, ok)
	}
	if _, ok = q.Pop(48); ok {
		t.Fatal("pop before the last arrival should report empty")
	}
	if next, more := q.NextArrival(); !more || next != 500 {
		t.Fatalf("nextArrival = %d,%v; want 500", next, more)
	}
	if idx, ok = q.Pop(500); !ok || idx != 4 {
		t.Fatalf("final pop = %d,%v; want 4", idx, ok)
	}
	if !q.Drained() {
		t.Fatal("queue not drained after serving everything")
	}
	served := 0
	for i := range q.reqs {
		if !q.reqs[i].Dropped {
			served++
		}
	}
	if served+int(q.dropped) != len(reqs) || q.dropped != 1 {
		t.Fatalf("conservation broken: served %d + dropped %d != %d", served, q.dropped, len(reqs))
	}
}

// TestBadConfigs: invalid configurations are rejected, not defaulted.
func TestBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Arrivals.RatePerSec = 0 },
		func(c *Config) { c.Classes[0].Share = 50 }, // shares no longer sum to 100
		func(c *Config) { c.WarmupFrac = 1.5 },
		func(c *Config) { c.Classes[1].Work = Pareto(100, 0.5) }, // alpha <= 1
		func(c *Config) { c.Arrivals.BurstFrac = 2 },
	}
	for i, mutate := range bad {
		cfg := testConfig("hashmap")
		cfg.Classes = DefaultClasses()
		mutate(&cfg)
		if _, err := GenerateSchedule(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestDistMeans: sampled means land near the configured means.
func TestDistMeans(t *testing.T) {
	dists := []Dist{Fixed(100), Pareto(1000, 2.0), Pareto(1000, 1.5), Bimodal(10, 0.9, 8)}
	for _, d := range dists {
		s := NewScheduleStream(99)
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(s))
		}
		got := sum / n
		// Pareto's cap truncates the tail slightly; allow a wide band.
		if got < d.Mean*0.8 || got > d.Mean*1.2 {
			t.Errorf("%s: sampled mean %.1f, want ~%.1f", d, got, d.Mean)
		}
	}
}
