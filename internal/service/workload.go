package service

import (
	"fmt"

	"hrwle/internal/hashmap"
	"hrwle/internal/htm"
	"hrwle/internal/kyoto"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/tpcc"
)

// executor runs one request's structure work on the serving CPU. A
// request of footprint k performs k operations, each inside its own
// RW-LE-protected critical section; the per-op randomness comes from the
// request's own schedule seed (hashmap) or the serving CPU's stream
// (kyoto, tpcc), so either way the run is a pure function of the seeds.
type executor interface {
	exec(r *Request, c *machine.CPU, th *htm.Thread)
}

// memWords sizes simulated memory for the configured workload; totalOps
// is the summed footprint of the whole schedule (order headroom for tpcc).
func (c *Config) memWords(totalOps int64) int64 {
	switch c.Workload {
	case "kyoto":
		return kyoto.DefaultConfig().MemWords()
	case "tpcc":
		return tpcc.DefaultConfig().MemWords(totalOps)
	default:
		universe := c.HashBuckets * c.HashItems
		// Line-aligned nodes with churn headroom, per-server spare nodes
		// and lock metadata (the RunHashmap sizing plus spare slack).
		return universe*16*3/2 + c.HashBuckets + int64(c.Servers)*64 + 1<<15
	}
}

// newExecutor builds and populates the protected structure. scheme is the
// lock scheme name; kyoto mirrors the Fig. 9 convention of eliding the
// inner slot mutexes only under HLE.
func newExecutor(cfg *Config, m *machine.Machine, sys *htm.System, lock rwlock.Lock, scheme string) (executor, error) {
	switch cfg.Workload {
	case "hashmap":
		return newHashExec(cfg, m, sys, lock), nil
	case "kyoto":
		pol := kyoto.InnerReal
		if scheme == "HLE" {
			pol = kyoto.InnerElide
		}
		db := kyoto.New(m, kyoto.DefaultConfig())
		db.Populate()
		return &stepExec{
			lock:  lock,
			write: &kyoto.Wicked{DB: db, WritePct: 100, Inner: pol},
			read:  &kyoto.Wicked{DB: db, WritePct: 0, Inner: pol},
		}, nil
	case "tpcc":
		db := tpcc.Build(m, tpcc.DefaultConfig())
		return &stepExec{
			lock:  lock,
			write: &tpcc.Workload{DB: db, WritePct: 100},
			read:  &tpcc.Workload{DB: db, WritePct: 0},
		}, nil
	}
	return nil, fmt.Errorf("service: unknown workload %q (hashmap|kyoto|tpcc)", cfg.Workload)
}

// stepper is the shared shape of the kyoto and tpcc closed-loop drivers;
// the service layer reuses them one Step per operation. The write/read
// split (WritePct 100 vs 0) hands the schedule's IsWrite flag the choice
// the drivers normally draw themselves, so the op mix follows the class
// configuration.
type stepper interface {
	Step(lock rwlock.Lock, t *htm.Thread, c *machine.CPU)
}

type stepExec struct {
	lock        rwlock.Lock
	write, read stepper
}

func (e *stepExec) exec(r *Request, c *machine.CPU, th *htm.Thread) {
	d := e.read
	if r.IsWrite {
		d = e.write
	}
	for i := 0; i < r.Footprint; i++ {
		d.Step(e.lock, th, c)
	}
}

// hashSrv is one server's hashmap op state. The critical-section closures
// are hoisted here and communicate through the struct fields: closures
// passed through the rwlock.Lock interface escape, so per-op literals
// would allocate on every operation (the RunHashmap pattern).
type hashSrv struct {
	th    *htm.Thread
	key   uint64
	spare machine.Addr
	used  bool
	gone  machine.Addr

	insertCS, removeCS, lookupCS func()
}

type hashExec struct {
	h        *hashmap.Map
	lock     rwlock.Lock
	universe int
	srv      []hashSrv
}

func newHashExec(cfg *Config, m *machine.Machine, sys *htm.System, lock rwlock.Lock) *hashExec {
	h := hashmap.New(m, cfg.HashBuckets)
	h.Populate(cfg.HashItems)
	e := &hashExec{
		h:        h,
		lock:     lock,
		universe: int(cfg.HashBuckets * cfg.HashItems),
		srv:      make([]hashSrv, cfg.Servers),
	}
	for i := range e.srv {
		v := &e.srv[i]
		v.th = sys.Thread(i)
		v.insertCS = func() { v.used = e.h.Insert(v.th, v.key, v.key, v.spare) }
		v.removeCS = func() { v.gone = e.h.Remove(v.th, v.key) }
		v.lookupCS = func() { e.h.Lookup(v.th, v.key) }
	}
	return e
}

func (e *hashExec) exec(r *Request, c *machine.CPU, th *htm.Thread) {
	// Op parameters come from the request's own stream, fixed at schedule
	// time: the work a request performs does not depend on which server
	// picks it up.
	s := machine.NewStream(r.Seed)
	v := &e.srv[c.ID]
	for i := 0; i < r.Footprint; i++ {
		v.key = uint64(s.Intn(e.universe))
		if r.IsWrite {
			// Insert or remove, 50/50, keeping the population in steady
			// state; spare-node protocol as in RunHashmap.
			if s.Intn(2) == 0 {
				if v.spare == 0 {
					v.spare = e.h.PrepareNode(th)
				}
				v.used = false
				e.lock.Write(th, v.insertCS)
				if v.used {
					v.spare = 0
				}
			} else {
				v.gone = 0
				e.lock.Write(th, v.removeCS)
				if v.gone != 0 {
					e.h.Recycle(th, v.gone)
				}
			}
		} else {
			e.lock.Read(th, v.lookupCS)
		}
		th.St.Ops++
	}
}
