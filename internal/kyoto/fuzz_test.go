package kyoto

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// FuzzKyoto replays an arbitrary byte string as a Get/Set/Remove sequence
// against the simulated Kyoto Cabinet CacheDB (real inner mutexes, one
// simulated CPU) and differentially checks it against a plain Go map, plus
// the DB's own structural invariants (BST shape, LRU lists, counts).
//
// Each byte encodes one operation: low two bits select the operation, the
// rest the key (key space 64 across several slots/buckets so trees grow
// and collide).
func FuzzKyoto(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x05, 0x06, 0x04})
	f.Add([]byte{0x11, 0x91, 0x12, 0xd0, 0x19, 0x1a, 0x91, 0x92})
	f.Add([]byte("sphinx of black quartz, judge my vow"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		cfg := Config{Slots: 2, BucketsPerSlot: 4, Records: 10, KeySpace: 64, Seed: 5}
		m := machine.New(machine.Config{CPUs: 1, MemWords: cfg.MemWords(), Seed: 13})
		sys := htm.NewSystem(m, htm.Config{})
		db := New(m, cfg)
		db.Populate()

		// Populate inserts Records distinct keys drawn deterministically;
		// rebuild the model from the DB's own raw walk before mutating.
		model := map[uint64]uint64{}
		sys.M.Run(1, func(c *machine.CPU) {
			th := sys.Thread(0)
			for k := uint64(0); k < uint64(cfg.KeySpace); k++ {
				if v, ok := db.Get(th, k, InnerReal); ok {
					model[k] = v
				}
			}
			for i, b := range data {
				key := uint64(b >> 2 & 0x3f)
				val := uint64(i)<<8 | uint64(b)
				switch b & 3 {
				case 1: // set (insert or update)
					node := db.PrepareNode(th)
					if !db.Set(th, key, val, node, InnerReal, nil) {
						db.Recycle(th, node)
					}
					model[key] = val
				case 2: // remove
					gone := db.Remove(th, key, InnerReal)
					if _, present := model[key]; present != (gone != 0) {
						t.Errorf("op %d: remove(%d) found=%v but model present=%v", i, key, gone != 0, present)
					}
					db.Recycle(th, gone)
					delete(model, key)
				default: // get
					v, ok := db.Get(th, key, InnerReal)
					mv, mok := model[key]
					if ok != mok || (ok && v != mv) {
						t.Errorf("op %d: get(%d) = (%d,%v), model (%d,%v)", i, key, v, ok, mv, mok)
					}
				}
			}
		})

		if msg := db.CheckTrees(); msg != "" {
			t.Fatalf("structural check: %s", msg)
		}
		if got, want := db.RawCount(), int64(len(model)); got != want {
			t.Fatalf("final count %d, model %d", got, want)
		}
	})
}
