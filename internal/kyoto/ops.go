package kyoto

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// Get returns the value for key and, like CacheDB, moves the record to
// the front of its slot's LRU list — get() is a mutating operation, which
// is why it needs the inner mutex even under the outer READ lock, and why
// same-slot gets conflict when HLE runs them as transactions.
func (db *DB) Get(t *htm.Thread, key uint64, pol InnerPolicy) (uint64, bool) {
	s := db.slotOf(key)
	db.lockSlot(t, s, pol)
	node := db.search(t, key)
	var v uint64
	if node != 0 {
		v = t.Load(node + recValue)
		db.lruTouch(t, s, node)
	}
	db.unlockSlot(t, s, pol)
	return v, node != 0
}

// lruUnlink removes node from slot s's LRU list.
func (db *DB) lruUnlink(t *htm.Thread, s int64, node machine.Addr) {
	prev := machine.Addr(t.Load(node + recPrev))
	next := machine.Addr(t.Load(node + recNext))
	if prev != 0 {
		t.Store(prev+recNext, uint64(next))
	} else {
		t.Store(db.slotAddr(s)+slotLRU, uint64(next))
	}
	if next != 0 {
		t.Store(next+recPrev, uint64(prev))
	} else {
		t.Store(db.slotAddr(s)+slotLRUTl, uint64(prev))
	}
}

// lruPushFront links node at the head of slot s's LRU list.
func (db *DB) lruPushFront(t *htm.Thread, s int64, node machine.Addr) {
	ha := db.slotAddr(s) + slotLRU
	head := t.Load(ha)
	t.Store(node+recPrev, 0)
	t.Store(node+recNext, head)
	if head != 0 {
		t.Store(machine.Addr(head)+recPrev, uint64(node))
	} else {
		t.Store(db.slotAddr(s)+slotLRUTl, uint64(node))
	}
	t.Store(ha, uint64(node))
}

// lruTouch moves node to the front of slot s's LRU list.
func (db *DB) lruTouch(t *htm.Thread, s int64, node machine.Addr) {
	if machine.Addr(t.Load(db.slotAddr(s)+slotLRU)) == node {
		return
	}
	db.lruUnlink(t, s, node)
	db.lruPushFront(t, s, node)
}

// search descends the bucket BST for key.
func (db *DB) search(t *htm.Thread, key uint64) machine.Addr {
	n := t.Load(db.bucketAddr(key))
	for n != 0 {
		a := machine.Addr(n)
		k := t.Load(a + recKey)
		if k == key {
			return a
		}
		if key < k {
			n = t.Load(a + recLeft)
		} else {
			n = t.Load(a + recRight)
		}
	}
	return 0
}

// PrepareNode allocates a record for a subsequent Set (outside critical
// sections; see the allocation discipline in package hashmap).
func (db *DB) PrepareNode(t *htm.Thread) machine.Addr {
	return t.AllocAligned(recWords)
}

// Recycle returns an unused or unlinked record to the allocator (outside
// critical sections only).
func (db *DB) Recycle(t *htm.Thread, node machine.Addr) {
	if node != 0 {
		t.FreeAligned(node, recWords)
	}
}

// Set inserts or updates key→value. It consumes the caller-prepared node
// when it inserts, returning true. Outer-read critical section.
//
// With Config.CapPerSlot set, an insert that would exceed the slot's cap
// first evicts the least-recently-used record (CacheDB's capcnt
// behaviour); *evicted receives the unlinked node for the caller to
// Recycle after the critical section commits.
func (db *DB) Set(t *htm.Thread, key, value uint64, node machine.Addr, pol InnerPolicy, evicted *machine.Addr) bool {
	s := db.slotOf(key)
	db.lockSlot(t, s, pol)
	defer db.unlockSlot(t, s, pol)

	cur := db.bucketAddr(key)
	for {
		child := t.Load(cur)
		if child == 0 {
			sa := db.slotAddr(s)
			if cap := db.Cfg.CapPerSlot; cap > 0 && evicted != nil &&
				t.Load(sa+slotCount) >= uint64(cap) {
				*evicted = db.evictLRU(t, s)
				// The eviction may have restructured this very tree, so
				// the link word found during the first descent can be
				// stale (it may even live inside the evicted node).
				// Re-descend for a fresh insertion point.
				cur = db.bucketAddr(key)
				for {
					c2 := t.Load(cur)
					if c2 == 0 {
						break
					}
					a := machine.Addr(c2)
					if key < t.Load(a+recKey) {
						cur = a + recLeft
					} else {
						cur = a + recRight
					}
				}
			}
			t.Store(node+recKey, key)
			t.Store(node+recValue, value)
			t.Store(node+recLeft, 0)
			t.Store(node+recRight, 0)
			t.Store(cur, uint64(node))
			db.lruPushFront(t, s, node)
			t.Store(sa+slotCount, t.Load(sa+slotCount)+1)
			return true
		}
		a := machine.Addr(child)
		k := t.Load(a + recKey)
		if k == key {
			t.Store(a+recValue, value)
			db.lruTouch(t, s, a)
			return false
		}
		if key < k {
			cur = a + recLeft
		} else {
			cur = a + recRight
		}
	}
}

// evictLRU removes the slot's least-recently-used record from its BST and
// the LRU list, returning the unlinked node (0 if the slot is empty).
// Called with the slot mutex held.
func (db *DB) evictLRU(t *htm.Thread, s int64) machine.Addr {
	tail := machine.Addr(t.Load(db.slotAddr(s) + slotLRUTl))
	if tail == 0 {
		return 0
	}
	key := t.Load(tail + recKey)
	// removeFromTree unlinks by key; the physically removed node may be
	// the in-order successor rather than the tail itself (its payload
	// moves into the tail's node), so the LRU identity is preserved by
	// the same payload-swap convention Remove uses.
	return db.removeLocked(t, s, key)
}

// Remove deletes key and returns the physically unlinked record (0 if the
// key was absent). The caller must Recycle it after the critical section
// commits. Outer-read critical section.
//
// Standard BST deletion: a node with two children swaps in its in-order
// successor's key/value and the successor node is the one unlinked.
func (db *DB) Remove(t *htm.Thread, key uint64, pol InnerPolicy) machine.Addr {
	s := db.slotOf(key)
	db.lockSlot(t, s, pol)
	defer db.unlockSlot(t, s, pol)
	return db.removeLocked(t, s, key)
}

// removeLocked is Remove's body, usable while already holding the slot.
func (db *DB) removeLocked(t *htm.Thread, s int64, key uint64) machine.Addr {
	link := db.bucketAddr(key) // address of the word pointing at `cur`
	cur := machine.Addr(t.Load(link))
	for cur != 0 {
		k := t.Load(cur + recKey)
		if k == key {
			break
		}
		if key < k {
			link = cur + recLeft
		} else {
			link = cur + recRight
		}
		cur = machine.Addr(t.Load(link))
	}
	if cur == 0 {
		return 0
	}

	left := machine.Addr(t.Load(cur + recLeft))
	right := machine.Addr(t.Load(cur + recRight))
	victim := cur
	switch {
	case left == 0:
		t.Store(link, uint64(right))
	case right == 0:
		t.Store(link, uint64(left))
	default:
		// Two children: find the in-order successor (leftmost of the
		// right subtree), move its payload into cur, unlink the
		// successor.
		slink := cur + recRight
		succ := machine.Addr(t.Load(slink))
		for {
			l := machine.Addr(t.Load(succ + recLeft))
			if l == 0 {
				break
			}
			slink = succ + recLeft
			succ = l
		}
		t.Store(cur+recKey, t.Load(succ+recKey))
		t.Store(cur+recValue, t.Load(succ+recValue))
		t.Store(slink, t.Load(succ+recRight))
		victim = succ
	}
	db.lruUnlink(t, s, victim)
	sa := db.slotAddr(s)
	t.Store(sa+slotCount, t.Load(sa+slotCount)-1)
	return victim
}

// Iterate scans a window of `count` buckets starting at `start`, summing
// record values (outer WRITE critical section in Kyoto: the iterator pins
// the whole DB even though each step visits little of it). A full scan is
// Iterate(t, 0, Slots*BucketsPerSlot).
func (db *DB) Iterate(t *htm.Thread, start, count int64) uint64 {
	var sum uint64
	total := db.Cfg.Slots * db.Cfg.BucketsPerSlot
	for i := int64(0); i < count; i++ {
		b := (start + i) % total
		sum += db.treeSum(t, machine.Addr(t.Load(db.buckets+machine.Addr(b))))
	}
	return sum
}

func (db *DB) treeSum(t *htm.Thread, node machine.Addr) uint64 {
	if node == 0 {
		return 0
	}
	return t.Load(node+recValue) +
		db.treeSum(t, machine.Addr(t.Load(node+recLeft))) +
		db.treeSum(t, machine.Addr(t.Load(node+recRight)))
}

// Recount recomputes every slot's record count from its trees and stores
// it (outer WRITE critical section; models Kyoto's maintenance paths).
func (db *DB) Recount(t *htm.Thread) {
	for s := int64(0); s < db.Cfg.Slots; s++ {
		var n uint64
		for b := int64(0); b < db.Cfg.BucketsPerSlot; b++ {
			n += db.treeCount(t, machine.Addr(t.Load(db.buckets+machine.Addr(s*db.Cfg.BucketsPerSlot+b))))
		}
		t.Store(db.slotAddr(s)+slotCount, n)
	}
}

func (db *DB) treeCount(t *htm.Thread, node machine.Addr) uint64 {
	if node == 0 {
		return 0
	}
	return 1 + db.treeCount(t, machine.Addr(t.Load(node+recLeft))) +
		db.treeCount(t, machine.Addr(t.Load(node+recRight)))
}

// ClearBucket removes every record of one bucket (outer WRITE critical
// section; models clear/defrag paths). It appends the unlinked records to
// *freed, which the caller must reset before the critical section body
// and recycle after commit.
func (db *DB) ClearBucket(t *htm.Thread, bucket int64, freed *[]machine.Addr) {
	root := db.buckets + machine.Addr(bucket)
	var collect func(n machine.Addr) uint64
	collect = func(n machine.Addr) uint64 {
		if n == 0 {
			return 0
		}
		c := collect(machine.Addr(t.Load(n+recLeft))) +
			collect(machine.Addr(t.Load(n+recRight))) + 1
		*freed = append(*freed, n)
		return c
	}
	removed := collect(machine.Addr(t.Load(root)))
	if removed == 0 {
		return
	}
	t.Store(root, 0)
	s := bucket / db.Cfg.BucketsPerSlot
	for _, n := range *freed {
		db.lruUnlink(t, s, n)
	}
	sa := db.slotAddr(s)
	t.Store(sa+slotCount, t.Load(sa+slotCount)-removed)
}
