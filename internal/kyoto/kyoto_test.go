package kyoto

import (
	"testing"
	"testing/quick"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

func smallCfg() Config {
	return Config{Slots: 4, BucketsPerSlot: 8, Records: 100, KeySpace: 200, Seed: 3}
}

func newDB(cpus int, seed uint64) (*htm.System, *DB) {
	cfg := smallCfg()
	m := machine.New(machine.Config{CPUs: cpus, MemWords: cfg.MemWords(), Seed: seed})
	sys := htm.NewSystem(m, htm.Config{})
	db := New(m, cfg)
	db.Populate()
	return sys, db
}

func TestPopulateAndTrees(t *testing.T) {
	_, db := newDB(1, 1)
	if msg := db.CheckTrees(); msg != "" {
		t.Fatal(msg)
	}
	if got := db.RawCount(); got != 100 {
		t.Errorf("RawCount = %d, want 100", got)
	}
}

func TestGetSetRemoveSequential(t *testing.T) {
	sys, db := newDB(1, 2)
	model := map[uint64]uint64{}
	for i := int64(0); i < db.Cfg.Records; i++ {
		model[uint64(2*i)] = uint64(2 * i * 3)
	}
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < 600; i++ {
			key := uint64(c.Intn(int(db.Cfg.KeySpace)))
			switch c.Intn(3) {
			case 0:
				v, ok := db.Get(th, key, InnerReal)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("get(%d) = (%d,%v), model (%d,%v)", key, v, ok, mv, mok)
				}
			case 1:
				node := db.PrepareNode(th)
				if !db.Set(th, key, key+1, node, InnerReal, nil) {
					db.Recycle(th, node)
				}
				model[key] = key + 1
			default:
				gone := db.Remove(th, key, InnerReal)
				if _, ok := model[key]; ok != (gone != 0) {
					t.Fatalf("remove(%d) = %v, model has=%v", key, gone != 0, ok)
				}
				db.Recycle(th, gone)
				delete(model, key)
			}
		}
	})
	if msg := db.CheckTrees(); msg != "" {
		t.Fatal(msg)
	}
	if got, want := db.RawCount(), int64(len(model)); got != want {
		t.Errorf("count %d, model %d", got, want)
	}
}

func TestRemoveTwoChildrenProperty(t *testing.T) {
	// Property: removing any key from a random tree preserves BST shape
	// and removes exactly that key.
	check := func(keys []uint8, pick uint8) bool {
		cfg := Config{Slots: 1, BucketsPerSlot: 1, Records: 0, KeySpace: 256, Seed: 1}
		m := machine.New(machine.Config{CPUs: 1, MemWords: cfg.MemWords(), Seed: 9})
		sys := htm.NewSystem(m, htm.Config{})
		db := New(m, cfg)
		present := map[uint64]bool{}
		ok := true
		sys.M.Run(1, func(c *machine.CPU) {
			th := sys.Thread(0)
			for _, k := range keys {
				node := db.PrepareNode(th)
				if !db.Set(th, uint64(k), uint64(k), node, InnerReal, nil) {
					db.Recycle(th, node)
				}
				present[uint64(k)] = true
			}
			key := uint64(pick)
			gone := db.Remove(th, key, InnerReal)
			if (gone != 0) != present[key] {
				ok = false
			}
			delete(present, key)
			for k := range present {
				if _, found := db.Get(th, k, InnerReal); !found {
					ok = false
				}
			}
			if _, found := db.Get(th, key, InnerReal); found {
				ok = false
			}
		})
		return ok && db.CheckTrees() == "" && db.RawCount() == int64(len(present))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIterateAndRecount(t *testing.T) {
	sys, db := newDB(1, 4)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		var want uint64
		for i := int64(0); i < db.Cfg.Records; i++ {
			want += uint64(2 * i * 3)
		}
		if got := db.Iterate(th, 0, db.Cfg.Slots*db.Cfg.BucketsPerSlot); got != want {
			t.Errorf("Iterate sum = %d, want %d", got, want)
		}
		// Corrupt a count, then Recount must repair it.
		sys.M.Poke(db.slotAddr(0)+slotCount, 999)
		db.Recount(th)
		if msg := db.CheckTrees(); msg != "" {
			t.Error(msg)
		}
	})
}

func TestClearBucket(t *testing.T) {
	sys, db := newDB(1, 5)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		before := db.RawCount()
		var freed []machine.Addr
		db.ClearBucket(th, 0, &freed)
		if int64(len(freed)) != before-db.RawCount() {
			t.Errorf("freed %d nodes, tree count dropped by %d", len(freed), before-db.RawCount())
		}
		for _, n := range freed {
			db.Recycle(th, n)
		}
	})
	if msg := db.CheckTrees(); msg != "" {
		t.Fatal(msg)
	}
}

func wickedStress(t *testing.T, mk rwlock.Factory, pol InnerPolicy, writePct int, seed uint64) {
	t.Helper()
	const threads, ops = 8, 60
	sys, db := newDB(threads, seed)
	lock := mk(sys)
	w := &Wicked{DB: db, WritePct: writePct, Inner: pol}
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < ops; i++ {
			w.Step(lock, th, c)
		}
	})
	if msg := db.CheckTrees(); msg != "" {
		t.Fatalf("%s: %s", lock.Name(), msg)
	}
}

func TestWickedRWLE(t *testing.T) {
	for _, w := range []int{1, 10} {
		wickedStress(t, func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }, InnerReal, w, uint64(w))
		wickedStress(t, func(s *htm.System) rwlock.Lock { return core.New(s, core.Pes()) }, InnerReal, w, uint64(w)+40)
	}
}

func TestWickedHLEElidesBothLocks(t *testing.T) {
	wickedStress(t, func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }, InnerElide, 5, 50)
}

func TestWickedPessimisticBaselines(t *testing.T) {
	wickedStress(t, func(s *htm.System) rwlock.Lock { return locks.NewRWL(s) }, InnerReal, 5, 51)
	wickedStress(t, func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }, InnerReal, 5, 52)
	wickedStress(t, func(s *htm.System) rwlock.Lock { return locks.NewBRLock(s) }, InnerReal, 5, 53)
}

func TestCapEvictionLRU(t *testing.T) {
	cfg := Config{Slots: 1, BucketsPerSlot: 4, Records: 0, KeySpace: 64, CapPerSlot: 8, Seed: 3}
	m := machine.New(machine.Config{CPUs: 1, MemWords: cfg.MemWords(), Seed: 7})
	sys := htm.NewSystem(m, htm.Config{})
	db := New(m, cfg)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		// Insert 20 distinct keys into a slot capped at 8: every insert
		// past the cap must evict the least-recently-used record.
		for k := uint64(0); k < 20; k++ {
			node := db.PrepareNode(th)
			var evicted machine.Addr
			if !db.Set(th, k, k, node, InnerReal, &evicted) {
				t.Fatalf("key %d already present", k)
			}
			if k >= 8 && evicted == 0 {
				t.Fatalf("insert %d over cap evicted nothing", k)
			}
			db.Recycle(th, evicted)
		}
		if got := db.RawCount(); got != 8 {
			t.Fatalf("count = %d, want cap 8", got)
		}
		// The survivors must be the 8 most recently inserted keys.
		for k := uint64(12); k < 20; k++ {
			if _, ok := db.Get(th, k, InnerReal); !ok {
				t.Errorf("recent key %d evicted", k)
			}
		}
		for k := uint64(0); k < 12; k++ {
			if _, ok := db.Get(th, k, InnerReal); ok {
				t.Errorf("stale key %d survived", k)
			}
		}
		// Touching an old key via Get must protect it from eviction.
		db.Get(th, 12, InnerReal)
		node := db.PrepareNode(th)
		var evicted machine.Addr
		db.Set(th, 50, 50, node, InnerReal, &evicted)
		db.Recycle(th, evicted)
		if _, ok := db.Get(th, 12, InnerReal); !ok {
			t.Error("recently touched key was evicted")
		}
		if _, ok := db.Get(th, 13, InnerReal); ok {
			t.Error("true LRU victim (13) survived")
		}
	})
	if msg := db.CheckTrees(); msg != "" {
		t.Fatal(msg)
	}
}

func TestCapEvictionConcurrent(t *testing.T) {
	cfg := Config{Slots: 4, BucketsPerSlot: 8, Records: 0, KeySpace: 400, CapPerSlot: 16, Seed: 5}
	m := machine.New(machine.Config{CPUs: 8, MemWords: cfg.MemWords() * 2, Seed: 11})
	sys := htm.NewSystem(m, htm.Config{})
	db := New(m, cfg)
	lock := core.New(sys, core.Opt())
	sys.M.Run(8, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 80; i++ {
			key := uint64(c.Intn(400))
			node := db.PrepareNode(th)
			used := false
			var evicted machine.Addr
			lock.Read(th, func() {
				evicted = 0 // restartable
				used = db.Set(th, key, key, node, InnerReal, &evicted)
			})
			if !used {
				db.Recycle(th, node)
			}
			db.Recycle(th, evicted)
		}
	})
	if msg := db.CheckTrees(); msg != "" {
		t.Fatal(msg)
	}
	if got := db.RawCount(); got > 4*16 {
		t.Errorf("total records %d exceed caps", got)
	}
}

func TestSlotCountsConsistentAfterStress(t *testing.T) {
	sys, db := newDB(4, 60)
	lock := core.New(sys, core.Opt())
	w := &Wicked{DB: db, WritePct: 10, Inner: InnerReal}
	sys.M.Run(4, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 80; i++ {
			w.Step(lock, th, c)
		}
	})
	// CheckTrees already cross-checks per-slot counts against trees.
	if msg := db.CheckTrees(); msg != "" {
		t.Fatal(msg)
	}
}
