// Package kyoto is a port of Kyoto Cabinet's in-memory CacheDB as the
// paper uses it for Fig. 9: the database is split into slots, each slot
// holds hash buckets, and each bucket is a binary search tree of records.
// A single global read-write lock protects the method surface; slot-local
// mutation is additionally guarded by nested per-slot mutexes.
//
// Locking, per the paper:
//
//   - record operations (get/set/remove) acquire the OUTER lock in READ
//     mode plus the slot's INNER mutex — so "readers" of the outer lock do
//     mutate slot-local state, exactly as in Kyoto Cabinet;
//   - database-wide operations (iteration, recount, bucket clearing)
//     acquire the outer lock in WRITE mode and need no inner locks;
//   - RW-LE elides only the outer lock ("this is only possible because
//     RW-LE is aware of the read-write lock semantics") and keeps the
//     inner mutexes real; HLE elides both, turning inner acquisitions into
//     transactional subscriptions.
package kyoto

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// Record node layout (line-aligned). Records live both in their bucket's
// BST and in the slot's LRU list (CacheDB moves a record to the front of
// the LRU on every access — get() is a mutating operation).
const (
	recKey   = 0
	recValue = 1
	recLeft  = 2
	recRight = 3
	recPrev  = 4 // LRU list
	recNext  = 5 // LRU list
	recWords = 6
)

// Per-slot header layout (line-aligned): mutex, record count and LRU head
// share the line, as in the C++ object — the LRU head is the hot word that
// makes same-slot get() transactions conflict under HLE.
const (
	slotMutex = 0
	slotCount = 1
	slotLRU   = 2 // most-recently-used record
	slotLRUTl = 3 // least-recently-used record (eviction victim)
)

// InnerPolicy selects how critical sections treat the per-slot mutexes.
type InnerPolicy int

const (
	// InnerReal acquires slot mutexes with real CAS spin locks (RW-LE,
	// the original locking, BRLock, SGL).
	InnerReal InnerPolicy = iota
	// InnerElide only subscribes the mutex word inside the enclosing
	// hardware transaction (HLE elides both lock levels).
	InnerElide
)

// Config sizes the database.
type Config struct {
	Slots          int64 // Kyoto Cabinet's SLOTNUM is 16
	BucketsPerSlot int64
	Records        int64 // initial population
	KeySpace       int64 // key universe (steady-state size ≈ Records)
	// CapPerSlot, when non-zero, bounds each slot's record count: a Set
	// that would exceed it first evicts the slot's least-recently-used
	// record (CacheDB's capcnt behaviour — the reason the LRU list
	// exists).
	CapPerSlot int64
	Seed       uint64
}

// DefaultConfig matches the wicked-benchmark shape scaled to the
// container (see DESIGN.md).
func DefaultConfig() Config {
	return Config{Slots: 16, BucketsPerSlot: 128, Records: 8192, KeySpace: 16384, Seed: 11}
}

// MemWords estimates the simulated-memory footprint with churn headroom.
func (c Config) MemWords() int64 {
	return c.KeySpace*16*2 + c.Slots*(16+c.BucketsPerSlot) + 1<<14
}

// DB is a CacheDB instance in simulated memory.
type DB struct {
	M       *machine.Machine
	Cfg     Config
	slots   machine.Addr // per-slot headers, one line each
	buckets machine.Addr // slots×bucketsPerSlot BST roots
	lineW   machine.Addr
}

// New allocates the slot headers and bucket arrays.
func New(m *machine.Machine, cfg Config) *DB {
	db := &DB{M: m, Cfg: cfg, lineW: machine.Addr(m.Cfg.LineWords)}
	db.slots = m.AllocRawAligned(cfg.Slots * m.Cfg.LineWords)
	db.buckets = m.AllocRawAligned(cfg.Slots * cfg.BucketsPerSlot)
	return db
}

// hash spreads keys across slots and buckets (Kyoto hashes the key bytes;
// a multiplicative hash is equivalent for our integer keys).
func hash(key uint64) uint64 { return key * 0x9e3779b97f4a7c15 }

func (db *DB) slotOf(key uint64) int64 {
	return int64(hash(key) >> 32 % uint64(db.Cfg.Slots))
}

func (db *DB) slotAddr(s int64) machine.Addr { return db.slots + machine.Addr(s)*db.lineW }

func (db *DB) bucketAddr(key uint64) machine.Addr {
	s := db.slotOf(key)
	b := int64(hash(key) % uint64(db.Cfg.BucketsPerSlot))
	return db.buckets + machine.Addr(s*db.Cfg.BucketsPerSlot+b)
}

// Populate inserts the initial records with raw stores (setup time).
// Every even key in [0, 2*Records) is present initially, so half the
// KeySpace hits.
func (db *DB) Populate() {
	for i := int64(0); i < db.Cfg.Records; i++ {
		key := uint64(2 * i)
		node := db.M.AllocRawAligned(recWords)
		db.M.Poke(node+recKey, key)
		db.M.Poke(node+recValue, key*3)
		db.rawInsert(node)
		sa := db.slotAddr(db.slotOf(key))
		db.M.Poke(sa+slotCount, db.M.Peek(sa+slotCount)+1)
		// Link at the front of the slot's LRU list.
		head := db.M.Peek(sa + slotLRU)
		db.M.Poke(node+recNext, head)
		if head != 0 {
			db.M.Poke(machine.Addr(head)+recPrev, uint64(node))
		} else {
			db.M.Poke(sa+slotLRUTl, uint64(node))
		}
		db.M.Poke(sa+slotLRU, uint64(node))
	}
}

// rawInsert links a node into its bucket BST with raw stores (build time).
func (db *DB) rawInsert(node machine.Addr) {
	m := db.M
	key := m.Peek(node + recKey)
	cur := db.bucketAddr(key) // address of the link word to follow
	for {
		child := m.Peek(cur)
		if child == 0 {
			m.Poke(cur, uint64(node))
			return
		}
		c := machine.Addr(child)
		if key < m.Peek(c+recKey) {
			cur = c + recLeft
		} else {
			cur = c + recRight
		}
	}
}

// lockSlot acquires (or subscribes) the inner mutex of slot s.
func (db *DB) lockSlot(t *htm.Thread, s int64, pol InnerPolicy) {
	mu := db.slotAddr(s) + slotMutex
	if pol == InnerElide {
		// Inside the enclosing transaction: subscribe only. The lock can
		// only be held by a non-speculative owner, whose acquisition will
		// abort us through the subscription.
		if t.Load(mu) != 0 {
			t.Abort(stats.AbortLockBusy)
		}
		return
	}
	t.AwaitAcquirePoll(mu, 64)
}

// unlockSlot releases the inner mutex (no-op when elided).
func (db *DB) unlockSlot(t *htm.Thread, s int64, pol InnerPolicy) {
	if pol == InnerElide {
		return
	}
	t.Store(db.slotAddr(s)+slotMutex, 0)
}

// Count sums the per-slot record counts (outer read, no inner locks —
// Kyoto's count() is approximate in exactly this way).
func (db *DB) Count(t *htm.Thread) uint64 {
	var n uint64
	for s := int64(0); s < db.Cfg.Slots; s++ {
		n += t.Load(db.slotAddr(s) + slotCount)
	}
	return n
}

// RawCount walks every tree raw and returns the true record count (tests).
func (db *DB) RawCount() int64 {
	var n int64
	for i := int64(0); i < db.Cfg.Slots*db.Cfg.BucketsPerSlot; i++ {
		n += db.rawTreeCount(machine.Addr(db.M.Peek(db.buckets + machine.Addr(i))))
	}
	return n
}

func (db *DB) rawTreeCount(node machine.Addr) int64 {
	if node == 0 {
		return 0
	}
	return 1 + db.rawTreeCount(machine.Addr(db.M.Peek(node+recLeft))) +
		db.rawTreeCount(machine.Addr(db.M.Peek(node+recRight)))
}

// CheckTrees verifies BST ordering and key placement in every bucket.
// Returns "" when sound.
func (db *DB) CheckTrees() string {
	for i := int64(0); i < db.Cfg.Slots*db.Cfg.BucketsPerSlot; i++ {
		root := machine.Addr(db.M.Peek(db.buckets + machine.Addr(i)))
		if msg := db.checkTree(root, 0, ^uint64(0), i); msg != "" {
			return msg
		}
	}
	// Per-slot counts must match the trees, and each slot's LRU list must
	// contain exactly the slot's records.
	for s := int64(0); s < db.Cfg.Slots; s++ {
		var n int64
		for b := int64(0); b < db.Cfg.BucketsPerSlot; b++ {
			n += db.rawTreeCount(machine.Addr(db.M.Peek(db.buckets + machine.Addr(s*db.Cfg.BucketsPerSlot+b))))
		}
		if got := db.M.Peek(db.slotAddr(s) + slotCount); int64(got) != n {
			return "slot count out of sync with trees"
		}
		if msg := db.checkLRU(s, n); msg != "" {
			return msg
		}
	}
	return ""
}

// checkLRU validates the doubly-linked LRU list of slot s: length, link
// reciprocity, slot membership of every record, and the tail pointer.
func (db *DB) checkLRU(s, want int64) string {
	m := db.M
	var prev machine.Addr
	n := machine.Addr(m.Peek(db.slotAddr(s) + slotLRU))
	var count int64
	for n != 0 {
		if machine.Addr(m.Peek(n+recPrev)) != prev {
			return "LRU prev link broken"
		}
		if db.slotOf(m.Peek(n+recKey)) != s {
			return "LRU contains record from another slot"
		}
		if count++; count > want {
			return "LRU list longer than slot count (cycle or stale node)"
		}
		prev = n
		n = machine.Addr(m.Peek(n + recNext))
	}
	if count != want {
		return "LRU list shorter than slot count"
	}
	if machine.Addr(m.Peek(db.slotAddr(s)+slotLRUTl)) != prev {
		return "LRU tail pointer does not match walk"
	}
	if db.Cfg.CapPerSlot > 0 && want > db.Cfg.CapPerSlot {
		return "slot exceeds its record cap"
	}
	return ""
}

func (db *DB) checkTree(node machine.Addr, lo, hi uint64, bucket int64) string {
	if node == 0 {
		return ""
	}
	k := db.M.Peek(node + recKey)
	if k < lo || k >= hi {
		return "BST ordering violated"
	}
	s := db.slotOf(k)
	b := int64(hash(k) % uint64(db.Cfg.BucketsPerSlot))
	if s*db.Cfg.BucketsPerSlot+b != bucket {
		return "record in wrong bucket"
	}
	if msg := db.checkTree(machine.Addr(db.M.Peek(node+recLeft)), lo, k, bucket); msg != "" {
		return msg
	}
	return db.checkTree(machine.Addr(db.M.Peek(node+recRight)), k, hi, bucket)
}
