package kyoto

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

// Wicked drives the kcwickedtest-style workload the paper uses for Fig. 9:
// a random mix of record operations (get/set/remove under the outer read
// lock plus the slot mutex) and database-wide operations (iterate /
// recount / bucket clearing under the outer write lock). writePct controls
// the rate of outer write-mode acquisitions — the paper's 10%, 5% and <1%
// mixes.
type Wicked struct {
	DB       *DB
	WritePct int // percentage of outer write-lock acquisitions
	Inner    InnerPolicy
}

// Step performs one operation on behalf of thread t.
func (w *Wicked) Step(lock rwlock.Lock, t *htm.Thread, c *machine.CPU) {
	db := w.DB
	total := db.Cfg.Slots * db.Cfg.BucketsPerSlot
	if c.Intn(100) < w.WritePct {
		switch c.Intn(3) {
		case 0:
			// Iterator step: scan a window of buckets while pinning the
			// whole database.
			start := int64(c.Intn(int(total)))
			lock.Write(t, func() { db.Iterate(t, start, 48) })
		case 1:
			// Status report: read all slot counts under the write lock.
			lock.Write(t, func() { db.Count(t) })
		default:
			bucket := int64(c.Intn(int(total)))
			var freed []machine.Addr
			lock.Write(t, func() {
				freed = freed[:0] // restartable: reset on re-execution
				db.ClearBucket(t, bucket, &freed)
			})
			for _, n := range freed {
				db.Recycle(t, n)
			}
		}
	} else {
		key := uint64(c.Intn(int(db.Cfg.KeySpace)))
		switch c.Intn(4) {
		case 0, 1: // get is the most common record op
			lock.Read(t, func() { db.Get(t, key, w.Inner) })
		case 2:
			node := db.PrepareNode(t)
			used := false
			lock.Read(t, func() { used = db.Set(t, key, key^0xabcd, node, w.Inner, nil) })
			if !used {
				db.Recycle(t, node)
			}
		default:
			var gone machine.Addr
			lock.Read(t, func() { gone = db.Remove(t, key, w.Inner) })
			db.Recycle(t, gone)
		}
	}
	t.St.Ops++
}
