package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, -5} {
		h.Add(v)
	}
	if h.Count != 6 || h.Sum != 10 || h.Max != 4 {
		t.Errorf("count=%d sum=%d max=%d", h.Count, h.Sum, h.Max)
	}
	j := h.JSON()
	want := []HistBucket{
		{LoCycles: 0, Count: 2}, // 0 and the clamped -5
		{LoCycles: 1, Count: 1},
		{LoCycles: 2, Count: 2}, // 2 and 3
		{LoCycles: 4, Count: 1},
	}
	if len(j.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", j.Buckets)
	}
	for i, b := range j.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if got := h.Mean(); got != 10.0/6 {
		t.Errorf("mean = %v", got)
	}
}

// syntheticFeed drives one fixed event sequence into a collector: a write
// span on CPU 0 (doomed once, quiesced 50 cycles, finally ROT), a read span
// on CPU 1, and a CSEnd on CPU 2 whose begin predates the trace.
func syntheticFeed(c *Collector) {
	aux := htm.PackAbortAux(stats.AbortROTConflict, 1)
	c.Event(machine.Event{Kind: machine.EvCSBegin, Time: 100, CPU: 0, Aux: machine.PackCS(true, 0, 0)})
	c.Event(machine.Event{Kind: machine.EvTxDoom, Time: 150, CPU: 0, Addr: 64, Aux: aux})
	c.Event(machine.Event{Kind: machine.EvTxAbort, Time: 160, CPU: 0, Addr: 64, Aux: aux})
	c.Event(machine.Event{Kind: machine.EvQuiesceEnd, Time: 300, CPU: 0, Aux: 50})
	c.Event(machine.Event{Kind: machine.EvCSEnd, Time: 400, CPU: 0,
		Aux: machine.PackCS(true, uint64(stats.CommitROT), 1)})
	c.Event(machine.Event{Kind: machine.EvCSBegin, Time: 0, CPU: 1, Aux: machine.PackCS(false, 0, 0)})
	c.Event(machine.Event{Kind: machine.EvCSEnd, Time: 10, CPU: 1,
		Aux: machine.PackCS(false, uint64(stats.CommitUninstrumented), 0)})
	c.Event(machine.Event{Kind: machine.EvCSEnd, Time: 500, CPU: 2,
		Aux: machine.PackCS(true, uint64(stats.CommitSGL), 3)})
}

func TestCollectorSpansMatrixAndHotAddrs(t *testing.T) {
	c := NewCollector()
	syntheticFeed(c)

	cells := c.Matrix()
	if len(cells) != 1 {
		t.Fatalf("matrix = %+v", cells)
	}
	cell := cells[0]
	if cell.Cause != "ROT conflicts" || cell.Killer != 1 || cell.Victim != 0 || cell.Count != 1 {
		t.Errorf("cell = %+v", cell)
	}

	hot := c.HotAddrs(HotAddrLimit)
	if len(hot) != 1 || hot[0].Addr != 64 || hot[0].Count != 1 {
		t.Errorf("hot addrs = %+v", hot)
	}

	// The partial span on CPU 2 must be dropped: exactly two spans survive,
	// read-side listed before write-side.
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	rd, wr := spans[0], spans[1]
	if rd.Side != "read" || rd.Path != "Uninstrumented" || rd.Count != 1 || rd.Latency.SumCycles != 10 {
		t.Errorf("read span = %+v", rd)
	}
	if wr.Side != "write" || wr.Path != "ROT" || wr.Count != 1 || wr.Retries != 1 ||
		wr.QuiesceCycles != 50 || wr.Latency.SumCycles != 300 {
		t.Errorf("write span = %+v", wr)
	}

	q := c.QuiesceHist()
	if q.Count != 1 || q.SumCycles != 50 {
		t.Errorf("quiesce hist = %+v", q)
	}
}

func TestHotAddrOrderingAndLimit(t *testing.T) {
	c := NewCollector()
	feed := func(addr machine.Addr, n int) {
		for i := 0; i < n; i++ {
			c.Event(machine.Event{Kind: machine.EvTxDoom, Addr: addr,
				Aux: htm.PackAbortAux(stats.AbortConflictTx, 0)})
		}
	}
	feed(96, 2)
	feed(32, 5)
	feed(64, 2) // ties with 96 on count; lower address must win
	feed(0, 9)  // addr 0 = no address; must not be ranked

	hot := c.HotAddrs(2)
	if len(hot) != 2 || hot[0] != (AddrConflicts{Addr: 32, Count: 5}) ||
		hot[1] != (AddrConflicts{Addr: 64, Count: 2}) {
		t.Errorf("hot addrs = %+v", hot)
	}
}

func TestPointJSONDeterministicAndValid(t *testing.T) {
	render := func() []byte {
		c := NewCollector()
		syntheticFeed(c)
		b := &stats.Breakdown{Threads: 3, Cycles: 500, TxStarts: 2, QuiesceWait: 50}
		b.Aborts[stats.AbortROTConflict] = 1
		b.Commits[stats.CommitROT] = 1
		rm := &RunMetrics{Figure: "test", Scheme: "RW-LE_PES",
			Points: []*PointMetrics{c.Point(3, 20, 500, b)}}
		var buf bytes.Buffer
		if err := rm.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("identical feeds produced different JSON")
	}
	var decoded RunMetrics
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Scheme != "RW-LE_PES" || len(decoded.Points) != 1 {
		t.Errorf("round trip lost data: %+v", decoded)
	}
	if decoded.Points[0].Breakdown.QuiesceWait != 50 {
		t.Error("breakdown quiesce_wait_cycles not exported")
	}
}

func TestWriteMatrixAndHistsRender(t *testing.T) {
	c := NewCollector()
	syntheticFeed(c)
	p := c.Point(3, 20, 500, nil)
	var buf bytes.Buffer
	p.WriteMatrix(&buf)
	out := buf.String()
	for _, want := range []string{"ROT conflicts", "addr=64"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("matrix output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	p.WriteHists(&buf)
	for _, want := range []string{"read/Uninstrumented", "write/ROT", "quiescence windows"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("hist output missing %q:\n%s", want, buf.String())
		}
	}

	// An empty point must render gracefully, not panic or divide by zero.
	empty := NewCollector().Point(1, 0, 0, nil)
	buf.Reset()
	empty.WriteMatrix(&buf)
	empty.WriteHists(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("no aborts recorded")) {
		t.Error("empty matrix not reported")
	}
}

func TestWriteChromeTraceValidAndBalanced(t *testing.T) {
	events := []machine.Event{
		{Kind: machine.EvCSBegin, Time: 100, CPU: 0, Aux: machine.PackCS(true, 0, 0)},
		{Kind: machine.EvTxBegin, Time: 110, CPU: 0, Aux: 1},
		{Kind: machine.EvTxDoom, Time: 150, CPU: 0, Addr: 64,
			Aux: htm.PackAbortAux(stats.AbortROTConflict, 1)},
		{Kind: machine.EvTxAbort, Time: 160, CPU: 0, Addr: 64,
			Aux: htm.PackAbortAux(stats.AbortROTConflict, 1)},
		{Kind: machine.EvTxBegin, Time: 170, CPU: 0, Aux: 1},
		{Kind: machine.EvQuiesceStart, Time: 180, CPU: 0},
		{Kind: machine.EvQuiesceEnd, Time: 230, CPU: 0, Aux: 50},
		{Kind: machine.EvTxCommit, Time: 240, CPU: 0, Aux: 2},
		{Kind: machine.EvCSEnd, Time: 250, CPU: 0, Aux: machine.PackCS(true, uint64(stats.CommitROT), 1)},
		{Kind: machine.EvRead, Time: 105, CPU: 1, Addr: 8}, // must be skipped
		{Kind: machine.EvPathSwitch, Time: 165, CPU: 0, Aux: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	begins, ends := 0, 0
	for _, e := range out.TraceEvents {
		switch e["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("unbalanced slices: %d begins, %d ends\n%s", begins, ends, buf.String())
	}
	if begins != 4 { // cs, 2×tx, quiesce
		t.Errorf("begins = %d, want 4", begins)
	}
	if len(out.TraceEvents) != 10 { // all input events minus the EvRead
		t.Errorf("records = %d, want 10 (memory accesses must be skipped)", len(out.TraceEvents))
	}
}

// TestTimelineMultipleSubscribers pins the fan-out contract of
// Timeline.Subscribe: every subscriber sees every window exactly once, in
// index order, with identical contents, and no window is delivered before
// the per-CPU watermark — the minimum last-seen event time across CPUs —
// has passed its end.
func TestTimelineMultipleSubscribers(t *testing.T) {
	const window, cpus, nsubs = 100, 2, 3
	tl := NewTimeline(window, 0)

	// fed[c] mirrors the event feed below: the last time fed to CPU c so
	// far. The delivery callback uses it to check the watermark rule.
	fed := [cpus]int64{}
	finishing := false // Finish force-delivers the tail; exempt from the watermark rule
	got := make([][]TimelineWindow, nsubs)
	for i := 0; i < nsubs; i++ {
		i := i
		tl.Subscribe(func(w TimelineWindow) {
			mark := fed[0]
			if fed[1] < mark {
				mark = fed[1]
			}
			if end := w.StartCycles + window; !finishing && end > mark {
				t.Errorf("subscriber %d: window %d (end %d) delivered at watermark %d", i, w.Index, end, mark)
			}
			if n := len(got[i]); n > 0 && got[i][n-1].Index+1 != w.Index {
				t.Errorf("subscriber %d: window %d after %d (out of order or duplicated)", i, w.Index, got[i][n-1].Index)
			}
			got[i] = append(got[i], w)
		})
	}
	tl.Start(0, cpus)

	emit := func(cpu int, at int64, kind machine.EventKind, aux uint64) {
		fed[cpu] = at
		tl.Event(machine.Event{Kind: kind, CPU: cpu, Time: at, Aux: aux})
	}
	// CPU 0 races ahead through window 2; windows 0 and 1 stay undelivered
	// until CPU 1's stream passes their ends.
	emit(0, 10, machine.EvTxBegin, 0)
	emit(0, 80, machine.EvCSEnd, machine.PackCS(true, uint64(stats.CommitHTM), 1))
	emit(0, 250, machine.EvTxBegin, 0)
	if len(got[0]) != 0 {
		t.Fatalf("window delivered while CPU 1 was silent (watermark at base): %+v", got[0])
	}
	emit(1, 120, machine.EvCSEnd, machine.PackCS(false, uint64(stats.CommitUninstrumented), 0))
	if len(got[0]) != 1 {
		t.Fatalf("CPU 1 at 120 should release exactly window 0, got %d windows", len(got[0]))
	}
	emit(1, 260, machine.EvTxBegin, 0)
	if len(got[0]) != 2 {
		t.Fatalf("both CPUs past 200 should release window 1, got %d windows", len(got[0]))
	}
	finishing = true
	tl.Finish(300)

	rep := tl.Report()
	if len(rep.Windows) != 3 {
		t.Fatalf("report has %d windows, want 3", len(rep.Windows))
	}
	for i := 0; i < nsubs; i++ {
		if len(got[i]) != len(rep.Windows) {
			t.Fatalf("subscriber %d saw %d windows, report has %d", i, len(got[i]), len(rep.Windows))
		}
	}
	// Every subscriber saw the identical stream, equal to the report's
	// event-derived series.
	for i := 1; i < nsubs; i++ {
		if !reflect.DeepEqual(got[0], got[i]) {
			t.Errorf("subscribers 0 and %d diverged:\n%+v\nvs\n%+v", i, got[0], got[i])
		}
	}
	for w, lw := range got[0] {
		fw := rep.Windows[w]
		if lw.TxBegins != fw.TxBegins || lw.CSEnds != fw.CSEnds || lw.CSWrites != fw.CSWrites ||
			!reflect.DeepEqual(lw.Commits, fw.Commits) || !reflect.DeepEqual(lw.Aborts, fw.Aborts) {
			t.Errorf("window %d: live series differs from final report: %+v vs %+v", w, lw, fw)
		}
	}
	// Spot-check the routed contents.
	if got[0][0].TxBegins != 1 || got[0][0].CSEnds != 1 || got[0][0].CSWrites != 1 {
		t.Errorf("window 0 = %+v, want 1 begin / 1 end / 1 write", got[0][0])
	}
	if got[0][1].CSEnds != 1 || got[0][1].CSWrites != 0 {
		t.Errorf("window 1 = %+v, want the CPU-1 read section", got[0][1])
	}
}
