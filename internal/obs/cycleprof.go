package obs

import (
	"fmt"
	"io"

	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// CycleCat is a cycle-attribution category: where one simulated cycle of
// one CPU went. The taxonomy follows the paper's Fig. 5-10 discussion
// (speculation, quiescence, lock waits) plus the open-system queue/idle
// state introduced by the PR 7 service workload.
type CycleCat uint8

const (
	// CatUseful: critical-section work that committed and ran
	// concurrently — a speculative attempt that committed (HTM/ROT) or an
	// uninstrumented read-side section.
	CatUseful CycleCat = iota
	// CatAborted: wasted speculative work — cycles inside hardware
	// transaction attempts that rolled back (including the abort penalty).
	CatAborted
	// CatLockWait: spinning on a lock word — TATAS acquisition, backoff
	// between polls, HLE's wait-until-free, RW-LE readers deferring to a
	// non-speculative writer.
	CatLockWait
	// CatQuiesce: a writer waiting for reader quiescence (the RW-LE
	// synchronize scan), whether or not the enclosing attempt survived.
	CatQuiesce
	// CatFallback: critical-section work serialized under a
	// non-speculative global/writer lock (commit path SGL).
	CatFallback
	// CatApp: application work outside any critical section — op setup,
	// request dispatch, per-op bookkeeping.
	CatApp
	// CatIdle: no work available — an open-system server sleeping until
	// the next arrival, or a finished CPU waiting for stragglers at the
	// end of the run.
	CatIdle

	NumCycleCats = int(CatIdle) + 1
)

var cycleCatNames = [NumCycleCats]string{
	"useful", "aborted-spec", "lock-wait", "quiesce", "fallback", "app-other", "idle",
}

func (c CycleCat) String() string { return cycleCatNames[c] }

// CycleCatNames returns the category names in category order.
func CycleCatNames() []string {
	out := make([]string, NumCycleCats)
	copy(out, cycleCatNames[:])
	return out
}

// cycleSpan is a half-open virtual-time interval [lo, hi) pending
// classification by the outcome of the enclosing attempt or section.
type cycleSpan struct{ lo, hi int64 }

// cycleCPU is one CPU's attribution state machine.
type cycleCPU struct {
	mark    int64 // attribution frontier: cycles before mark are charged
	inCS    bool
	inTx    bool
	quiesce bool
	spec    []cycleSpan // pending speculative segments (outcome unknown)
	cs      []cycleSpan // pending non-speculative CS segments (path unknown)
}

// CycleProf attributes every simulated cycle of every CPU to a CycleCat,
// split into fixed-width virtual-time windows. It implements
// machine.Tracer; install it (via machine.SetTracer or a MultiTracer)
// after setup/populate and call Start with the machine's current time
// right before machine.Run, then Finish with the end time right after.
// Attribution is exact: Report's totals sum to CPUs × (end − base) cycles.
//
// The state machine charges the span since each CPU's last event to the
// innermost active state (quiescence > speculation > critical section >
// application). Speculative segments stay pending until the attempt's
// commit (→ useful) or abort (→ aborted); non-speculative CS segments stay
// pending until EvCSEnd classifies them by final commit path (SGL →
// fallback, otherwise useful). EvLockWait/EvIdle are instant events that
// carve their Aux-cycle extent out of the enclosing segment.
type CycleProf struct {
	window int64
	base   int64
	end    int64
	cpus   int

	per    []cycleCPU
	perCPU [][NumCycleCats]int64
	wins   [][NumCycleCats]int64
}

// NewCycleProf returns a profiler with the given window width in cycles
// (values < 1 collapse to one giant window).
func NewCycleProf(windowCycles int64) *CycleProf {
	if windowCycles < 1 {
		windowCycles = 1 << 62
	}
	return &CycleProf{window: windowCycles}
}

// Start fixes the attribution origin: base is the machine time at which
// machine.Run will start (events before Start are ignored by construction
// because the tracer should be installed at the same moment), cpus the
// number of CPUs the run drives.
func (p *CycleProf) Start(base int64, cpus int) {
	p.base, p.end, p.cpus = base, base, cpus
	p.per = make([]cycleCPU, cpus)
	p.perCPU = make([][NumCycleCats]int64, cpus)
	for i := range p.per {
		p.per[i].mark = base
	}
	p.wins = p.wins[:0]
}

// charge attributes [lo, hi) on cpu id to cat, splitting across windows.
func (p *CycleProf) charge(id int, lo, hi int64, cat CycleCat) {
	if hi <= lo {
		return
	}
	p.perCPU[id][cat] += hi - lo
	for lo < hi {
		w := int((lo - p.base) / p.window)
		for w >= len(p.wins) {
			p.wins = append(p.wins, [NumCycleCats]int64{})
		}
		seg := p.base + int64(w+1)*p.window
		if seg > hi {
			seg = hi
		}
		p.wins[w][cat] += seg - lo
		lo = seg
	}
}

// resolve charges all pending spans to cat and clears the list.
func (p *CycleProf) resolve(id int, spans *[]cycleSpan, cat CycleCat) {
	for _, s := range *spans {
		p.charge(id, s.lo, s.hi, cat)
	}
	*spans = (*spans)[:0]
}

// chargeCur advances cpu id's frontier to t, attributing the span to the
// innermost active state.
func (p *CycleProf) chargeCur(id int, s *cycleCPU, t int64) {
	if t <= s.mark {
		return
	}
	switch {
	case s.quiesce:
		p.charge(id, s.mark, t, CatQuiesce)
	case s.inTx:
		s.spec = append(s.spec, cycleSpan{s.mark, t})
	case s.inCS:
		s.cs = append(s.cs, cycleSpan{s.mark, t})
	default:
		p.charge(id, s.mark, t, CatApp)
	}
	s.mark = t
}

// Event implements machine.Tracer.
func (p *CycleProf) Event(e machine.Event) {
	if e.CPU < 0 || e.CPU >= len(p.per) {
		return
	}
	s := &p.per[e.CPU]
	t := e.Time
	if t < s.mark {
		t = s.mark // defensive: per-CPU clocks are monotonic by contract
	}
	switch e.Kind {
	case machine.EvTxBegin:
		p.chargeCur(e.CPU, s, t)
		s.inTx = true
	case machine.EvTxCommit:
		p.chargeCur(e.CPU, s, t)
		s.inTx = false
		p.resolve(e.CPU, &s.spec, CatUseful)
	case machine.EvTxAbort:
		// The abort penalty is ticked before the event fires, so the
		// pending segment charged here includes it.
		p.chargeCur(e.CPU, s, t)
		s.inTx = false
		p.resolve(e.CPU, &s.spec, CatAborted)
	case machine.EvQuiesceStart:
		p.chargeCur(e.CPU, s, t)
		s.quiesce = true
	case machine.EvQuiesceEnd:
		p.chargeCur(e.CPU, s, t)
		s.quiesce = false
	case machine.EvCSBegin:
		p.chargeCur(e.CPU, s, t)
		s.inCS = true
	case machine.EvCSEnd:
		p.chargeCur(e.CPU, s, t)
		s.inCS = false
		_, path, _ := machine.UnpackCS(e.Aux)
		cat := CatUseful
		if path == uint64(stats.CommitSGL) {
			cat = CatFallback
		}
		p.resolve(e.CPU, &s.cs, cat)
	case machine.EvLockWait:
		// Aux cycles of spin-wait ending at t. Inside a transaction the
		// attempt's outcome classifies the whole span (a wait under
		// speculation is wasted work if the attempt dies), so only carve
		// it out of non-speculative segments.
		if !s.inTx && !s.quiesce {
			lo := t - int64(e.Aux)
			if lo < s.mark {
				lo = s.mark
			}
			p.chargeCur(e.CPU, s, lo)
			p.charge(e.CPU, lo, t, CatLockWait)
			s.mark = t
		} else {
			p.chargeCur(e.CPU, s, t)
		}
	case machine.EvIdle:
		if !s.inTx && !s.quiesce && !s.inCS {
			lo := t - int64(e.Aux)
			if lo < s.mark {
				lo = s.mark
			}
			p.charge(e.CPU, s.mark, lo, CatApp)
			p.charge(e.CPU, lo, t, CatIdle)
			s.mark = t
		} else {
			p.chargeCur(e.CPU, s, t)
		}
	default:
		p.chargeCur(e.CPU, s, t)
	}
}

// Finish closes attribution at the machine's end time: each CPU's tail
// from its last event to end is charged (idle when no state is active —
// the CPU ran out of work and waited for stragglers), and still-pending
// spans are classified conservatively (unfinished speculation is wasted,
// an unfinished CS is unknowable and counts as application work).
func (p *CycleProf) Finish(end int64) {
	if end < p.base {
		end = p.base
	}
	p.end = end
	for id := range p.per {
		s := &p.per[id]
		switch {
		case s.quiesce:
			p.charge(id, s.mark, end, CatQuiesce)
		case s.inTx:
			if end > s.mark {
				s.spec = append(s.spec, cycleSpan{s.mark, end})
			}
		case s.inCS:
			if end > s.mark {
				s.cs = append(s.cs, cycleSpan{s.mark, end})
			}
		default:
			p.charge(id, s.mark, end, CatIdle)
		}
		s.mark = end
		p.resolve(id, &s.spec, CatAborted)
		p.resolve(id, &s.cs, CatApp)
	}
}

// CycleWindow is one fixed-width window of the attribution time series.
type CycleWindow struct {
	StartCycles int64   `json:"start_cycles"` // window start, relative to run base
	Cycles      []int64 `json:"cycles"`       // by category, order = CycleReport.Categories
}

// CycleReport is the exportable attribution result.
type CycleReport struct {
	CPUs         int           `json:"cpus"`
	BaseCycles   int64         `json:"base_cycles"`
	EndCycles    int64         `json:"end_cycles"`
	WindowCycles int64         `json:"window_cycles"`
	Categories   []string      `json:"categories"`
	Totals       []int64       `json:"totals"`       // by category
	TotalCycles  int64         `json:"total_cycles"` // Σ Totals = CPUs × (end − base)
	PerCPU       [][]int64     `json:"per_cpu"`      // [cpu][category]
	Windows      []CycleWindow `json:"windows"`
}

// Report snapshots the attribution (call after Finish).
func (p *CycleProf) Report() *CycleReport {
	r := &CycleReport{
		CPUs:         p.cpus,
		BaseCycles:   p.base,
		EndCycles:    p.end,
		WindowCycles: p.window,
		Categories:   CycleCatNames(),
		Totals:       make([]int64, NumCycleCats),
		PerCPU:       make([][]int64, len(p.perCPU)),
		Windows:      make([]CycleWindow, len(p.wins)),
	}
	for id := range p.perCPU {
		row := make([]int64, NumCycleCats)
		for c := 0; c < NumCycleCats; c++ {
			row[c] = p.perCPU[id][c]
			r.Totals[c] += row[c]
		}
		r.PerCPU[id] = row
	}
	for c := 0; c < NumCycleCats; c++ {
		r.TotalCycles += r.Totals[c]
	}
	for w := range p.wins {
		cells := make([]int64, NumCycleCats)
		copy(cells, p.wins[w][:])
		r.Windows[w] = CycleWindow{StartCycles: int64(w) * p.window, Cycles: cells}
	}
	return r
}

// Conservation returns the attributed cycle sum and the exact expectation
// CPUs × (end − base); they must be equal for a complete run.
func (r *CycleReport) Conservation() (got, want int64) {
	return r.TotalCycles, int64(r.CPUs) * (r.EndCycles - r.BaseCycles)
}

// WriteBreakdown renders the per-category totals as a text panel.
func (r *CycleReport) WriteBreakdown(w io.Writer) {
	fmt.Fprintf(w, "cycle attribution (%d CPUs × %d cycles = %d CPU-cycles)\n",
		r.CPUs, r.EndCycles-r.BaseCycles, r.TotalCycles)
	for c, name := range r.Categories {
		pct := 0.0
		if r.TotalCycles > 0 {
			pct = 100 * float64(r.Totals[c]) / float64(r.TotalCycles)
		}
		fmt.Fprintf(w, "  %-12s %14d %6.2f%% %s\n", name, r.Totals[c], pct, barString(int(pct*0.4)))
	}
}
