package obs_test

// Integration tests exercising the Collector against real RW-LE runs.
// They live in an external test package because internal/core must not
// import internal/obs (observability is strictly downstream of the
// simulated machinery).

import (
	"bytes"
	"testing"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/obs"
	"hrwle/internal/stats"
)

// runContended performs a deterministic contended RW-LE_PES run (writers go
// straight to ROT) and returns the finalized point metrics: CPU 0 writes a
// shared line inside long write sections while CPUs 1..n-1 run read sections
// over the same line, so reader arrivals doom the writer's suspended ROT.
func runContended(t *testing.T, seed uint64) (*obs.PointMetrics, int64) {
	t.Helper()
	const threads = 3
	m := machine.New(machine.Config{CPUs: threads, MemWords: 1 << 16, Seed: seed})
	sys := htm.NewSystem(m, htm.Config{})
	lock := core.New(sys, core.Pes())
	shared := m.AllocRawAligned(4)

	collector := obs.NewCollector()
	m.SetTracer(collector)

	cycles := m.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		if c.ID == 0 {
			for i := 0; i < 10; i++ {
				lock.Write(th, func() {
					th.Store(shared, uint64(i))
					c.Tick(3_000) // linger so readers arrive mid-section
				})
				c.Tick(200)
			}
		} else {
			for i := 0; i < 40; i++ {
				lock.Read(th, func() { th.Load(shared) })
				c.Tick(500)
			}
		}
	})
	return collector.Point(threads, 20, cycles, nil), cycles
}

// TestReaderKillsSuspendedROT is the issue's acceptance scenario: on an
// RW-LE run the abort matrix must contain ROT-conflict cells whose killer
// is a reader CPU and whose victim is the writer (paper Fig. 2 causality —
// the reader arrives while the writer's ROT is suspended or quiescing, and
// the doom materializes at resume).
func TestReaderKillsSuspendedROT(t *testing.T) {
	p, _ := runContended(t, 11)
	found := false
	for _, cell := range p.AbortMatrix {
		if cell.Cause == stats.AbortROTConflict.String() && cell.Killer > 0 && cell.Victim == 0 {
			found = true
		}
		if cell.Victim != 0 && cell.Cause != stats.AbortLockBusy.String() {
			t.Errorf("unexpected speculation abort on a reader CPU: %+v", cell)
		}
	}
	if !found {
		t.Fatalf("no ROT-conflict cell with a reader killer and the writer victim; matrix = %+v",
			p.AbortMatrix)
	}
	if len(p.HotAddrs) == 0 {
		t.Error("contended run produced no conflict hot spots")
	}
}

// TestSpansCoverBothSides checks that the same run yields read-side spans
// (all Uninstrumented) and write-side spans whose counts match the sections
// executed, and that every span's latency histogram is internally coherent.
func TestSpansCoverBothSides(t *testing.T) {
	p, cycles := runContended(t, 11)
	var readN, writeN int64
	for _, s := range p.Spans {
		switch s.Side {
		case "read":
			readN += s.Count
			if s.Path != stats.CommitUninstrumented.String() {
				t.Errorf("read span on path %s", s.Path)
			}
		case "write":
			writeN += s.Count
		}
		var bucketTotal int64
		for _, b := range s.Latency.Buckets {
			bucketTotal += b.Count
		}
		if bucketTotal != s.Count || s.Latency.Count != s.Count {
			t.Errorf("span %s/%s: count %d, hist count %d, bucket total %d",
				s.Side, s.Path, s.Count, s.Latency.Count, bucketTotal)
		}
		if s.Latency.MaxCycles > cycles {
			t.Errorf("span %s/%s: max latency %d exceeds run length %d",
				s.Side, s.Path, s.Latency.MaxCycles, cycles)
		}
	}
	if readN != 80 { // 2 reader CPUs × 40 sections
		t.Errorf("read spans = %d, want 80", readN)
	}
	if writeN != 10 {
		t.Errorf("write spans = %d, want 10", writeN)
	}
	if p.Quiesce.Count == 0 {
		t.Error("RW-LE writers quiesced but no quiescence windows were recorded")
	}
}

// TestMetricsJSONDeterministicAcrossRuns re-runs the same seed end to end
// and requires byte-identical JSON — the property the CI determinism gate
// and EXPERIMENTS.md rely on.
func TestMetricsJSONDeterministicAcrossRuns(t *testing.T) {
	render := func() []byte {
		p, _ := runContended(t, 42)
		rm := &obs.RunMetrics{Figure: "it", Scheme: "RW-LE_PES", Points: []*obs.PointMetrics{p}}
		var buf bytes.Buffer
		if err := rm.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("identical seeds produced different metrics JSON")
	}
}

// TestCollectorDoesNotPerturbRun installs a collector and requires the
// virtual-cycle count to match an untraced run exactly (tracing must be
// zero-cost in virtual time).
func TestCollectorDoesNotPerturbRun(t *testing.T) {
	run := func(trace bool) int64 {
		m := machine.New(machine.Config{CPUs: 2, MemWords: 1 << 16, Seed: 5})
		sys := htm.NewSystem(m, htm.Config{})
		lock := core.New(sys, core.Pes())
		shared := m.AllocRawAligned(4)
		if trace {
			m.SetTracer(obs.NewCollector())
		}
		return m.Run(2, func(c *machine.CPU) {
			th := sys.Thread(c.ID)
			for i := 0; i < 20; i++ {
				if c.ID == 0 {
					lock.Write(th, func() { th.Store(shared, uint64(i)) })
				} else {
					lock.Read(th, func() { th.Load(shared) })
				}
			}
		})
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("collector changed virtual time: %d vs %d cycles", a, b)
	}
}
