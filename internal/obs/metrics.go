package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hrwle/internal/stats"
)

// HotAddrLimit is how many conflict hot-spot addresses a PointMetrics
// retains (the ranking is exact up to this cut).
const HotAddrLimit = 16

// MatrixCell is one abort-attribution entry: killer CPU `Killer` caused
// `Count` aborts of cause `Cause` on victim CPU `Victim`. Killer -1 means
// the abort had no aggressor CPU (capacity, explicit, lock subscription,
// or the VM subsystem).
type MatrixCell struct {
	Cause  string `json:"cause"`
	Killer int    `json:"killer"`
	Victim int    `json:"victim"`
	Count  int64  `json:"count"`

	causeN int // for deterministic legend-order sorting; not exported
}

// AddrConflicts is one conflict hot-spot: a simulated-memory word address
// and how many transaction dooms it caused.
type AddrConflicts struct {
	Addr  int64 `json:"addr"`
	Count int64 `json:"count"`
}

// SpanStats aggregates the critical-section spans that completed on one
// (side, final commit path) combination.
type SpanStats struct {
	Side          string   `json:"side"` // "read" | "write"
	Path          string   `json:"path"` // final stats.CommitPath name
	Count         int64    `json:"count"`
	Retries       int64    `json:"retries"`        // aborted speculative attempts
	QuiesceCycles int64    `json:"quiesce_cycles"` // cycles inside quiescence windows
	Latency       HistJSON `json:"latency"`
}

// Breakdown is the JSON form of stats.Breakdown, with the abort and commit
// arrays keyed by their paper-legend names.
type Breakdown struct {
	Threads     int              `json:"threads"`
	Cycles      int64            `json:"cycles"`
	TxStarts    int64            `json:"tx_starts"`
	Aborts      map[string]int64 `json:"aborts"`
	Commits     map[string]int64 `json:"commits"`
	Ops         int64            `json:"ops"`
	ReadCS      int64            `json:"read_cs"`
	WriteCS     int64            `json:"write_cs"`
	QuiesceWait int64            `json:"quiesce_wait_cycles"`
}

// NewBreakdown converts a stats.Breakdown to its export form.
func NewBreakdown(b *stats.Breakdown) *Breakdown {
	out := &Breakdown{
		Threads:     b.Threads,
		Cycles:      b.Cycles,
		TxStarts:    b.TxStarts,
		Aborts:      make(map[string]int64),
		Commits:     make(map[string]int64),
		Ops:         b.Ops,
		ReadCS:      b.ReadCS,
		WriteCS:     b.WriteCS,
		QuiesceWait: b.QuiesceWait,
	}
	for i, n := range b.Aborts {
		if n > 0 {
			out.Aborts[stats.AbortCause(i).String()] = n
		}
	}
	for i, n := range b.Commits {
		if n > 0 {
			out.Commits[stats.CommitPath(i).String()] = n
		}
	}
	return out
}

// PointMetrics is the telemetry of one measurement point (one machine run).
type PointMetrics struct {
	Threads     int              `json:"threads"`
	WritePct    int              `json:"write_pct"`
	Cycles      int64            `json:"cycles"`
	Breakdown   *Breakdown       `json:"breakdown,omitempty"`
	EventTotals map[string]int64 `json:"event_totals"`
	AbortMatrix []MatrixCell     `json:"abort_matrix"`
	HotAddrs    []AddrConflicts  `json:"hot_addrs"`
	Spans       []SpanStats      `json:"spans"`
	Quiesce     HistJSON         `json:"quiesce_windows"`
	// Adaptive is the self-tuning budget controller's end-of-run state,
	// present only for schemes that run one (e.g. RW-LE_ADAPT).
	Adaptive *AdaptiveState `json:"adaptive,omitempty"`
}

// AdaptiveState is the exportable end-of-run state of a self-tuning
// HTM-budget controller: the budget it converged to and the last decision
// window's HTM win rate in tenths (-1 = no HTM attempted that window).
type AdaptiveState struct {
	Budget    int `json:"budget"`
	WinRate10 int `json:"win_rate_10"`
}

// Point finalizes the collector into a PointMetrics. The breakdown is
// optional (nil when the caller has no stats aggregate).
func (c *Collector) Point(threads, writePct int, cycles int64, b *stats.Breakdown) *PointMetrics {
	p := &PointMetrics{
		Threads:     threads,
		WritePct:    writePct,
		Cycles:      cycles,
		EventTotals: c.EventTotals(),
		AbortMatrix: c.Matrix(),
		HotAddrs:    c.HotAddrs(HotAddrLimit),
		Spans:       c.Spans(),
		Quiesce:     c.QuiesceHist(),
	}
	if b != nil {
		p.Breakdown = NewBreakdown(b)
	}
	return p
}

// RunMetrics is the exportable telemetry of one (figure, scheme) sweep:
// one PointMetrics per measurement point, in figure iteration order.
type RunMetrics struct {
	Figure string          `json:"figure"`
	Scheme string          `json:"scheme"`
	Points []*PointMetrics `json:"points"`
}

// WriteJSON writes the metrics as deterministic, indented JSON: map keys
// are sorted by encoding/json, slices carry explicit orderings, and no
// wall-clock or host state is included, so identical seeds produce
// byte-identical output.
func (r *RunMetrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMatrix renders the abort-attribution matrix as one killer×victim
// grid per abort cause, plus the hot-address ranking. Killer column "env"
// aggregates aborts with no aggressor CPU.
func (p *PointMetrics) WriteMatrix(w io.Writer) {
	byCause := map[string][]MatrixCell{}
	var causes []string
	for _, cell := range p.AbortMatrix {
		if _, ok := byCause[cell.Cause]; !ok {
			causes = append(causes, cell.Cause) // already legend-sorted
		}
		byCause[cell.Cause] = append(byCause[cell.Cause], cell)
	}
	if len(causes) == 0 {
		fmt.Fprintln(w, "no aborts recorded")
		return
	}
	for _, cause := range causes {
		cells := byCause[cause]
		killers, victims := axes(cells)
		total := int64(0)
		for _, c := range cells {
			total += c.Count
		}
		fmt.Fprintf(w, "abort attribution — cause %q (%d aborts), killer → victim:\n", cause, total)
		fmt.Fprintf(w, "%8s", "victim\\k")
		for _, k := range killers {
			fmt.Fprintf(w, " %6s", killerName(k))
		}
		fmt.Fprintln(w)
		grid := map[[2]int]int64{}
		for _, c := range cells {
			grid[[2]int{c.Killer, c.Victim}] += c.Count
		}
		for _, v := range victims {
			fmt.Fprintf(w, "%8d", v)
			for _, k := range killers {
				if n := grid[[2]int{k, v}]; n > 0 {
					fmt.Fprintf(w, " %6d", n)
				} else {
					fmt.Fprintf(w, " %6s", ".")
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	if len(p.HotAddrs) > 0 {
		fmt.Fprintln(w, "conflict hot spots (dooms per word address):")
		for _, h := range p.HotAddrs {
			fmt.Fprintf(w, "  addr=%-10d %6d\n", h.Addr, h.Count)
		}
	}
}

// WriteHists renders the span latency histograms and the quiescence-window
// histogram as text.
func (p *PointMetrics) WriteHists(w io.Writer) {
	if len(p.Spans) == 0 {
		fmt.Fprintln(w, "no critical-section spans recorded")
	}
	for _, s := range p.Spans {
		fmt.Fprintf(w, "cs latency — %s/%s: %d sections, %d retries, %d quiesce cycles, mean %.0f cycles, %s, max %d\n",
			s.Side, s.Path, s.Count, s.Retries, s.QuiesceCycles, mean(s.Latency), quantileLine(s.Latency), s.Latency.MaxCycles)
		writeBuckets(w, s.Latency)
	}
	if p.Quiesce.Count > 0 {
		fmt.Fprintf(w, "quiescence windows: %d, mean %.0f cycles, %s, max %d\n",
			p.Quiesce.Count, mean(p.Quiesce), quantileLine(p.Quiesce), p.Quiesce.MaxCycles)
		writeBuckets(w, p.Quiesce)
	}
}

// quantileLine renders the p50/p99/p999 summary of an exported histogram.
// The quantiles are rebuilt from the log2 buckets (see Hist.Quantile), so
// they carry bucket-interpolation error — good enough for the at-a-glance
// text view; exact tails come from Samples-based reports.
func quantileLine(h HistJSON) string {
	var hist Hist
	hist.Count, hist.Sum, hist.Max = h.Count, h.SumCycles, h.MaxCycles
	for _, b := range h.Buckets {
		hist.Buckets[bucketIdx(b.LoCycles)] = b.Count
	}
	return fmt.Sprintf("p50 %.0f, p99 %.0f, p999 %.0f",
		hist.Quantile(0.50), hist.Quantile(0.99), hist.Quantile(0.999))
}

// bucketIdx inverts bucketLo: the bucket index whose lower bound is lo.
// Unknown bounds (impossible for Hist-produced JSON) map to bucket 0.
func bucketIdx(lo int64) int {
	for i := 0; i < 65; i++ {
		if bucketLo(i) == lo {
			return i
		}
	}
	return 0
}

func mean(h HistJSON) float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumCycles) / float64(h.Count)
}

func writeBuckets(w io.Writer, h HistJSON) {
	var peak int64
	for _, b := range h.Buckets {
		if b.Count > peak {
			peak = b.Count
		}
	}
	for _, b := range h.Buckets {
		bar := int(b.Count * 40 / peak)
		fmt.Fprintf(w, "  >=%-10d %8d %s\n", b.LoCycles, b.Count, barString(bar))
	}
}

func barString(n int) string {
	const full = "########################################"
	if n < 0 {
		n = 0
	}
	if n > len(full) {
		n = len(full)
	}
	return full[:n]
}

// killerName renders a killer CPU id, with -1 shown as the environment.
func killerName(k int) string {
	if k < 0 {
		return "env"
	}
	return fmt.Sprintf("%d", k)
}

// axes extracts the sorted killer and victim id sets of a cell list.
func axes(cells []MatrixCell) (killers, victims []int) {
	ks, vs := map[int]bool{}, map[int]bool{}
	for _, c := range cells {
		ks[c.Killer] = true
		vs[c.Victim] = true
	}
	for k := range ks {
		killers = append(killers, k)
	}
	for v := range vs {
		victims = append(victims, v)
	}
	sort.Ints(killers)
	sort.Ints(victims)
	return killers, victims
}
