// Package obs turns the machine.Tracer event firehose into structured,
// queryable run telemetry: a killer→victim abort-attribution matrix, a
// per-address conflict hot-spot ranking, and per-critical-section span
// latency histograms split by read/write side and final commit path — the
// lens the paper's evaluation (Figs. 5-8) uses to explain performance
// ("who aborts whom, and on which path does each section finally commit").
//
// Everything here is a pure event consumer: installing a Collector never
// changes virtual time, and with no tracer installed the simulation pays
// nothing (machine.CPU.Emit's nil check). All outputs are deterministic —
// identical seeds produce byte-identical metrics JSON.
package obs

import (
	"sort"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// matrixKey identifies one abort-attribution cell.
type matrixKey struct {
	cause  stats.AbortCause
	killer int // CPU id; -1 = VM subsystem / no aggressor
	victim int
}

// spanState tracks one CPU's open critical-section span.
type spanState struct {
	open    bool
	write   bool
	start   int64
	quiesce int64 // quiescence-window cycles inside this span
}

// Collector consumes trace events into run telemetry. It implements
// machine.Tracer and must observe a complete run (install it before
// machine.Run) for span accounting to balance.
type Collector struct {
	eventCounts [machine.NumEventKinds]int64

	matrix map[matrixKey]int64
	addrs  map[machine.Addr]int64

	spans [machine.MaxCPUs]spanState
	// lat[side][path]: span latency histograms; side 0 = read, 1 = write.
	lat [2][stats.NumCommitPaths]Hist
	// retries/quiesceBy[side][path]: aborted attempts and quiescence cycles
	// accumulated by the spans that finally committed on (side, path).
	retries   [2][stats.NumCommitPaths]int64
	quiesceBy [2][stats.NumCommitPaths]int64
	// quiesce: one sample per quiescence window (any path).
	quiesce Hist
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		matrix: make(map[matrixKey]int64),
		addrs:  make(map[machine.Addr]int64),
	}
}

// Event implements machine.Tracer.
func (c *Collector) Event(e machine.Event) {
	c.eventCounts[e.Kind]++
	switch e.Kind {
	case machine.EvTxDoom:
		// One doom per transaction attempt: the conflict occurrence. The
		// hot-spot ranking counts these, attributed to the contended
		// address; VM-subsystem dooms carry no address and are skipped.
		if e.Addr != 0 {
			c.addrs[e.Addr]++
		}
	case machine.EvTxAbort:
		cause, killer := htm.UnpackAbortAux(e.Aux)
		c.matrix[matrixKey{cause, killer, e.CPU}]++
	case machine.EvQuiesceEnd:
		c.quiesce.Add(int64(e.Aux))
		if s := &c.spans[e.CPU]; s.open {
			s.quiesce += int64(e.Aux)
		}
	case machine.EvCSBegin:
		write, _, _ := machine.UnpackCS(e.Aux)
		c.spans[e.CPU] = spanState{open: true, write: write, start: e.Time}
	case machine.EvCSEnd:
		s := &c.spans[e.CPU]
		if !s.open {
			return // trace started mid-section; drop the partial span
		}
		write, path, retries := machine.UnpackCS(e.Aux)
		side := 0
		if write {
			side = 1
		}
		if path >= uint64(stats.NumCommitPaths) {
			path = 0
		}
		c.lat[side][path].Add(e.Time - s.start)
		c.retries[side][path] += int64(retries)
		c.quiesceBy[side][path] += s.quiesce
		*s = spanState{}
	}
}

// TotalEvents returns the number of events the collector has seen.
func (c *Collector) TotalEvents() int64 {
	var n int64
	for _, k := range c.eventCounts {
		n += k
	}
	return n
}

// EventTotals returns per-kind event counts keyed by kind name.
func (c *Collector) EventTotals() map[string]int64 {
	out := make(map[string]int64)
	for k, n := range c.eventCounts {
		if n > 0 {
			out[machine.EventKind(k).String()] = n
		}
	}
	return out
}

// Matrix returns the abort-attribution cells sorted by (cause, killer,
// victim). Killer -1 denotes aborts with no aggressor CPU (capacity,
// explicit, lock-busy and VM-subsystem aborts).
func (c *Collector) Matrix() []MatrixCell {
	cells := make([]MatrixCell, 0, len(c.matrix))
	for k, n := range c.matrix {
		cells = append(cells, MatrixCell{
			Cause:  k.cause.String(),
			causeN: int(k.cause),
			Killer: k.killer,
			Victim: k.victim,
			Count:  n,
		})
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.causeN != b.causeN {
			return a.causeN < b.causeN
		}
		if a.Killer != b.Killer {
			return a.Killer < b.Killer
		}
		return a.Victim < b.Victim
	})
	return cells
}

// HotAddrs returns the top-n conflict addresses by doom count, ties broken
// by address for determinism.
func (c *Collector) HotAddrs(n int) []AddrConflicts {
	out := make([]AddrConflicts, 0, len(c.addrs))
	for a, cnt := range c.addrs {
		out = append(out, AddrConflicts{Addr: int64(a), Count: cnt})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Addr < out[j].Addr
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Spans returns per-(side, final-path) span statistics for every
// combination that completed at least one critical section, in a fixed
// (read-first, path-ordered) order.
func (c *Collector) Spans() []SpanStats {
	var out []SpanStats
	for side := 0; side < 2; side++ {
		name := "read"
		if side == 1 {
			name = "write"
		}
		for p := 0; p < stats.NumCommitPaths; p++ {
			h := &c.lat[side][p]
			if h.Count == 0 {
				continue
			}
			out = append(out, SpanStats{
				Side:          name,
				Path:          stats.CommitPath(p).String(),
				Count:         h.Count,
				Retries:       c.retries[side][p],
				QuiesceCycles: c.quiesceBy[side][p],
				Latency:       h.JSON(),
			})
		}
	}
	return out
}

// QuiesceHist returns the quiescence-window duration histogram.
func (c *Collector) QuiesceHist() HistJSON { return c.quiesce.JSON() }
