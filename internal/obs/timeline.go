package obs

import (
	"sort"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// TimelineWindow is one fixed-width virtual-time window of run telemetry:
// the live signal the adaptive-controller work (ROADMAP item 2) will
// consume, plus the open-system queue/latency series filled in after the
// run from the request log. All per-category slices use the legend orders
// published in TimelineReport (stats commit-path and abort-cause order).
type TimelineWindow struct {
	Index       int   `json:"index"`
	StartCycles int64 `json:"start_cycles"` // relative to run base

	// Event-derived series (available live, via Subscribe).
	TxBegins int64        `json:"tx_begins"`
	Commits  []int64      `json:"commits_by_path"`
	Aborts   []int64      `json:"aborts_by_cause"`
	CSEnds   int64        `json:"cs_ends"`
	CSWrites int64        `json:"cs_writes"`              // write-side critical sections completed
	LockWait int64        `json:"lock_wait_cycles"`       // spin/backoff wait cycles ending this window
	Matrix   []MatrixCell `json:"abort_matrix,omitempty"` // killer→victim deltas this window

	// Request-derived series (open-system runs only; filled by AddRequest
	// before Finish, zero/absent in live subscription callbacks).
	Arrivals      int64     `json:"arrivals"`
	Dequeues      int64     `json:"dequeues"`
	Drops         int64     `json:"drops"`
	Dones         int64     `json:"dones"`
	QueueDepthEnd int64     `json:"queue_depth_end"`
	InFlightEnd   int64     `json:"in_flight_end"`
	SojournP99    []float64 `json:"sojourn_p99_cycles,omitempty"` // per class, of requests done this window
}

// tlWin is the mutable per-window accumulator.
type tlWin struct {
	txBegins int64
	commits  [stats.NumCommitPaths]int64
	aborts   [stats.NumAbortCauses]int64
	csEnds   int64
	csWrites int64
	lockWait int64
	matrix   map[matrixKey]int64

	arrivals, dequeues, drops, dones int64
	sojourn                          []Samples // per class
}

// Timeline buckets trace events (and, for open-system runs, the request
// log) into fixed-width virtual-time windows. It implements
// machine.Tracer. Like CycleProf it is a pure event consumer: installing
// it never changes virtual time, and the report is deterministic.
//
// Subscribe registers a callback that receives each window as soon as it
// can no longer change — when every CPU's event stream has advanced past
// its end (a watermark, not a clock: the simulator delivers events in
// per-CPU time order). This is the shape the future per-shard adaptive
// controller needs: a bounded-delay live signal, not an end-of-run dump.
// Subscription callbacks see only the event-derived fields; the
// request-derived series exist only after Finish.
type Timeline struct {
	window  int64
	base    int64
	end     int64
	classes int
	cpus    int

	wins      []*tlWin
	last      []int64 // per-CPU watermark: time of the last event seen
	seen      []bool  // whether the CPU has emitted at all
	subs      []func(TimelineWindow)
	delivered int // windows already pushed to subscribers
	finished  bool
}

// NewTimeline returns a collector with the given window width in cycles
// (values < 1 collapse to one giant window) and per-class sojourn slots
// for `classes` request classes (0 for closed-loop runs).
func NewTimeline(windowCycles int64, classes int) *Timeline {
	if windowCycles < 1 {
		windowCycles = 1 << 62
	}
	return &Timeline{window: windowCycles, classes: classes}
}

// Subscribe registers a live window consumer. Must be called before Start.
func (tl *Timeline) Subscribe(fn func(TimelineWindow)) {
	tl.subs = append(tl.subs, fn)
}

// Start fixes the window origin at base for a run driving `cpus` CPUs.
func (tl *Timeline) Start(base int64, cpus int) {
	tl.base, tl.end, tl.cpus = base, base, cpus
	tl.last = make([]int64, cpus)
	tl.seen = make([]bool, cpus)
	for i := range tl.last {
		tl.last[i] = base
	}
	tl.wins = tl.wins[:0]
	tl.delivered = 0
	tl.finished = false
}

// win returns the accumulator for the window containing time t.
func (tl *Timeline) win(t int64) *tlWin {
	if t < tl.base {
		t = tl.base
	}
	w := int((t - tl.base) / tl.window)
	for w >= len(tl.wins) {
		tl.wins = append(tl.wins, &tlWin{})
	}
	return tl.wins[w]
}

// Event implements machine.Tracer.
func (tl *Timeline) Event(e machine.Event) {
	tl.accumulate(e)
	if e.CPU >= 0 && e.CPU < len(tl.last) {
		if e.Time > tl.last[e.CPU] {
			tl.last[e.CPU] = e.Time
		}
		tl.seen[e.CPU] = true
		tl.deliver()
	}
}

// accumulate folds one event into its window without touching the
// watermark state. ShardTimelines routes events here directly: it owns a
// single machine-global watermark, so the per-shard timelines must not
// gate delivery on their own (necessarily sparser) event streams.
func (tl *Timeline) accumulate(e machine.Event) {
	switch e.Kind {
	case machine.EvTxBegin:
		tl.win(e.Time).txBegins++
	case machine.EvTxAbort:
		w := tl.win(e.Time)
		cause, killer := htm.UnpackAbortAux(e.Aux)
		w.aborts[cause]++
		if w.matrix == nil {
			w.matrix = make(map[matrixKey]int64)
		}
		w.matrix[matrixKey{cause, killer, e.CPU}]++
	case machine.EvCSEnd:
		w := tl.win(e.Time)
		w.csEnds++
		write, path, _ := machine.UnpackCS(e.Aux)
		if write {
			w.csWrites++
		}
		if path < uint64(stats.NumCommitPaths) {
			w.commits[path]++
		}
	case machine.EvLockWait:
		// The wait occupies [Time-Aux, Time]; attribute it wholly to the
		// window in which it ends (the window split is not worth the cost
		// at controller granularity).
		tl.win(e.Time).lockWait += int64(e.Aux)
	}
}

// watermark is the time below which no CPU can emit further events: the
// minimum last-seen time across CPUs (CPUs that have emitted nothing yet
// hold it at base).
func (tl *Timeline) watermark() int64 {
	w := int64(1)<<62 - 1
	for i, t := range tl.last {
		if !tl.seen[i] {
			t = tl.base
		}
		if t < w {
			w = t
		}
	}
	if len(tl.last) == 0 {
		w = tl.base
	}
	return w
}

// deliver pushes every window that ends at or before the watermark to the
// subscribers, in index order.
func (tl *Timeline) deliver() {
	if len(tl.subs) == 0 {
		return
	}
	mark := tl.watermark()
	for tl.delivered < len(tl.wins) {
		endT := tl.base + int64(tl.delivered+1)*tl.window
		if endT > mark {
			return
		}
		tl.push(tl.delivered)
		tl.delivered++
	}
}

// push converts window w and hands it to every subscriber.
func (tl *Timeline) push(w int) {
	tw := tl.snapshot(w)
	for _, fn := range tl.subs {
		fn(tw)
	}
}

// snapshot converts the accumulator of window w into its exported form
// (without the post-run queue-depth prefix sums — Report adds those).
func (tl *Timeline) snapshot(w int) TimelineWindow {
	src := tl.wins[w]
	tw := TimelineWindow{
		Index:       w,
		StartCycles: int64(w) * tl.window,
		TxBegins:    src.txBegins,
		Commits:     make([]int64, stats.NumCommitPaths),
		Aborts:      make([]int64, stats.NumAbortCauses),
		CSEnds:      src.csEnds,
		CSWrites:    src.csWrites,
		LockWait:    src.lockWait,
		Arrivals:    src.arrivals,
		Dequeues:    src.dequeues,
		Drops:       src.drops,
		Dones:       src.dones,
	}
	copy(tw.Commits, src.commits[:])
	copy(tw.Aborts, src.aborts[:])
	if len(src.matrix) > 0 {
		cells := make([]MatrixCell, 0, len(src.matrix))
		for k, n := range src.matrix {
			cells = append(cells, MatrixCell{
				Cause: k.cause.String(), causeN: int(k.cause),
				Killer: k.killer, Victim: k.victim, Count: n,
			})
		}
		sort.Slice(cells, func(i, j int) bool {
			a, b := cells[i], cells[j]
			if a.causeN != b.causeN {
				return a.causeN < b.causeN
			}
			if a.Killer != b.Killer {
				return a.Killer < b.Killer
			}
			return a.Victim < b.Victim
		})
		tw.Matrix = cells
	}
	if len(src.sojourn) > 0 {
		tw.SojournP99 = make([]float64, len(src.sojourn))
		for c := range src.sojourn {
			tw.SojournP99[c] = src.sojourn[c].Quantile(0.99)
		}
	}
	return tw
}

// Advance delivers (and counts as delivered) every window that ends at or
// before mark, materializing empty windows up to mark so that quiet
// periods still produce subscription ticks. ShardTimelines drives this
// from its machine-global watermark; the timeline's own per-CPU watermark
// only ever lags it, so the shared `delivered` cursor keeps the two
// delivery paths duplicate-free.
func (tl *Timeline) Advance(mark int64) {
	if mark > tl.base {
		tl.win(mark - 1)
	}
	for tl.delivered < len(tl.wins) {
		endT := tl.base + int64(tl.delivered+1)*tl.window
		if endT > mark {
			return
		}
		if len(tl.subs) > 0 {
			tl.push(tl.delivered)
		}
		tl.delivered++
	}
}

// AddRequest folds one request's lifecycle into the windows: arrival (and
// drop) at arrive, dequeue at dequeue, completion and sojourn sample at
// done. Closed-loop exporters call it after the run; the shard runner
// calls it live at completion time, which is safe because the watermark
// can never have passed a completion instant the completing CPU has just
// reached (delivered windows may undercount *arrivals* that happened
// while the request sat queued — the live signal a subscriber sees is the
// done/sojourn series, and Report recomputes every window from scratch).
func (tl *Timeline) AddRequest(class int, arrive, dequeue, done int64, dropped bool) {
	aw := tl.win(arrive)
	aw.arrivals++
	if dropped {
		aw.drops++
		return
	}
	tl.win(dequeue).dequeues++
	dw := tl.win(done)
	dw.dones++
	if class >= 0 && class < tl.classes {
		if dw.sojourn == nil {
			dw.sojourn = make([]Samples, tl.classes)
		}
		dw.sojourn[class].Add(done - arrive)
	}
}

// Finish closes the timeline at the machine's end time, delivering every
// remaining window to the subscribers.
func (tl *Timeline) Finish(end int64) {
	if end < tl.base {
		end = tl.base
	}
	tl.end = end
	tl.finished = true
	// Make sure the window grid covers the whole run even if the tail was
	// event-free.
	if end > tl.base {
		tl.win(end - 1)
	}
	for tl.delivered < len(tl.wins) {
		if len(tl.subs) > 0 {
			tl.push(tl.delivered)
		}
		tl.delivered++
	}
}

// TimelineReport is the exportable time series.
type TimelineReport struct {
	WindowCycles int64            `json:"window_cycles"`
	BaseCycles   int64            `json:"base_cycles"`
	EndCycles    int64            `json:"end_cycles"`
	Classes      int              `json:"classes"`
	CommitPaths  []string         `json:"commit_paths"`
	AbortCauses  []string         `json:"abort_causes"`
	Windows      []TimelineWindow `json:"windows"`
}

// Report snapshots the timeline (call after Finish). Queue depth and
// in-flight counts at each window end are prefix sums over the
// request-derived series: depth = arrivals − drops − dequeues so far,
// in-flight = dequeues − dones so far.
func (tl *Timeline) Report() *TimelineReport {
	r := &TimelineReport{
		WindowCycles: tl.window,
		BaseCycles:   tl.base,
		EndCycles:    tl.end,
		Classes:      tl.classes,
		Windows:      make([]TimelineWindow, len(tl.wins)),
	}
	r.CommitPaths = make([]string, stats.NumCommitPaths)
	for i := range r.CommitPaths {
		r.CommitPaths[i] = stats.CommitPath(i).String()
	}
	r.AbortCauses = make([]string, stats.NumAbortCauses)
	for i := range r.AbortCauses {
		r.AbortCauses[i] = stats.AbortCause(i).String()
	}
	var depth, inFlight int64
	for w := range tl.wins {
		tw := tl.snapshot(w)
		depth += tw.Arrivals - tw.Drops - tw.Dequeues
		inFlight += tw.Dequeues - tw.Dones
		tw.QueueDepthEnd = depth
		tw.InFlightEnd = inFlight
		r.Windows[w] = tw
	}
	return r
}
