package obs

import "hrwle/internal/machine"

// ShardTimelines fans one machine's event stream out into per-shard
// Timelines. The runner tells it which shard each CPU is currently
// working inside (SetShard, a host-side routing table mutated while the
// CPU holds the floor, so it is deterministic like every other host-side
// structure in the service layer); events from unattributed CPUs advance
// time but belong to no shard.
//
// Delivery ordering is the subtle part. A per-shard Timeline's own
// watermark is the minimum over *all* CPUs of the last event routed to
// that shard — and a CPU that rarely visits a shard would hold that
// shard's windows back forever. ShardTimelines therefore keeps a single
// machine-global watermark (the minimum over CPUs of the last event seen
// from each, regardless of shard) and drives every shard's delivery from
// it via Timeline.Advance: once no CPU can emit another event at or
// before a window's end, that window is final for every shard at once.
// Windows are delivered shard-by-shard in shard order at each watermark
// advance, so a controller subscribed to all shards observes a
// deterministic total order.
type ShardTimelines struct {
	Shards []*Timeline

	cur  []int   // per-CPU current shard; -1 = unattributed
	last []int64 // per-CPU global watermark input
	base int64
	mark int64 // cached global watermark (min over last)
}

// NewShardTimelines builds one Timeline per shard, all sharing the window
// width and per-class sojourn layout.
func NewShardTimelines(windowCycles int64, shards, classes int) *ShardTimelines {
	st := &ShardTimelines{Shards: make([]*Timeline, shards)}
	for i := range st.Shards {
		st.Shards[i] = NewTimeline(windowCycles, classes)
	}
	return st
}

// Start fixes the window origin for a run driving `cpus` CPUs. Subscribe
// to the per-shard timelines before calling it.
func (st *ShardTimelines) Start(base int64, cpus int) {
	st.base, st.mark = base, base
	st.cur = make([]int, cpus)
	st.last = make([]int64, cpus)
	for i := range st.cur {
		st.cur[i] = -1
		st.last[i] = base
	}
	for _, tl := range st.Shards {
		tl.Start(base, cpus)
	}
}

// SetShard routes cpu's subsequent events to shard (-1 detaches). Call
// only from the CPU itself while it holds the floor.
func (st *ShardTimelines) SetShard(cpu, shard int) { st.cur[cpu] = shard }

// Event implements machine.Tracer: accumulate into the current shard,
// advance the global watermark, and deliver any windows it finalized.
func (st *ShardTimelines) Event(e machine.Event) {
	if e.CPU < 0 || e.CPU >= len(st.cur) {
		return
	}
	if s := st.cur[e.CPU]; s >= 0 {
		st.Shards[s].accumulate(e)
	}
	if e.Time <= st.last[e.CPU] {
		return
	}
	wasMin := st.last[e.CPU] == st.mark
	st.last[e.CPU] = e.Time
	if !wasMin {
		return // the minimum cannot have moved
	}
	mark := st.last[0]
	for _, t := range st.last[1:] {
		if t < mark {
			mark = t
		}
	}
	if mark > st.mark {
		st.mark = mark
		for _, tl := range st.Shards {
			tl.Advance(mark)
		}
	}
}

// Finish closes every shard timeline at the machine's end time,
// delivering all remaining windows (shard order, window order).
func (st *ShardTimelines) Finish(end int64) {
	for _, tl := range st.Shards {
		tl.Finish(end)
	}
}
