package obs

import (
	"fmt"
	"io"

	"hrwle/internal/machine"
)

// This file defines the export schema of the open-system service workload
// (internal/service): one ServiceMetrics per measurement point of an
// offered-load sweep. Like PointMetrics it is deterministic — a pure
// function of the point's configuration and seed — so sweep JSON can be
// byte-compared across runs and across worker counts.

// PathSojourn splits a class's sojourn distribution by the commit path its
// requests' critical sections finally took (HTM / ROT / SGL /
// Uninstrumented). Under elision pressure the paths separate: requests
// that fell back to the global lock carry a different tail than those
// that committed speculatively.
type PathSojourn struct {
	Path    string        `json:"path"`
	Served  int64         `json:"served"`
	Sojourn QuantilesJSON `json:"sojourn"`
}

// ClassServiceMetrics is the per-priority-class panel of one point.
// Quantiles cover the measured population (served requests past the
// warmup prefix); sojourn = queue wait + service.
type ClassServiceMetrics struct {
	Class     string        `json:"class"`
	Priority  int           `json:"priority"` // 0 = highest
	Arrivals  int64         `json:"arrivals"`
	Served    int64         `json:"served"`
	Dropped   int64         `json:"dropped"`
	Measured  int64         `json:"measured"`
	QueueWait QuantilesJSON `json:"queue_wait"`
	Service   QuantilesJSON `json:"service"`
	Sojourn   QuantilesJSON `json:"sojourn"`
	ByPath    []PathSojourn `json:"by_path,omitempty"`
}

// ServiceMetrics is the telemetry of one open-system measurement point:
// one (workload, scheme, offered load) combination, one machine run.
type ServiceMetrics struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Servers  int    `json:"servers"`
	QueueCap int    `json:"queue_cap"`
	Process  string `json:"process"` // arrival process, e.g. "poisson", "mmpp"

	// OfferedPerSec is the configured arrival rate λ; AchievedPerSec is
	// served requests divided by the makespan. The gap between them (and
	// Dropped) is the saturation signal.
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`

	Requests          int64 `json:"requests"`
	Served            int64 `json:"served"`
	Dropped           int64 `json:"dropped"`
	MakespanCycles    int64 `json:"makespan_cycles"`
	LastArrivalCycles int64 `json:"last_arrival_cycles"`

	Classes []ClassServiceMetrics `json:"classes"`
	// Breakdown carries the scheme-side counters (commit paths, abort
	// causes) of the same run, tying tail latency back to elision
	// behavior.
	Breakdown *Breakdown `json:"breakdown,omitempty"`
}

// Usec renders a cycle quantity as microseconds at the machine clock rate.
func Usec(cycles float64) float64 { return cycles / machine.CyclesPerSecond * 1e6 }

// WriteText renders one point as a compact human-readable block: the
// offered/achieved line, then one latency row per class and per commit
// path. All latencies are microseconds.
func (m *ServiceMetrics) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%s/%s servers=%d cap=%d %s: offered=%.0f/s achieved=%.0f/s served=%d dropped=%d makespan=%.3fs\n",
		m.Workload, m.Scheme, m.Servers, m.QueueCap, m.Process,
		m.OfferedPerSec, m.AchievedPerSec, m.Served, m.Dropped,
		machine.Seconds(m.MakespanCycles))
	for _, c := range m.Classes {
		fmt.Fprintf(w, "  class %-12s arr=%-6d srv=%-6d drop=%-5d sojourn us: p50=%8.1f p99=%8.1f p999=%8.1f max=%8.1f (wait p99=%8.1f svc p99=%8.1f)\n",
			c.Class, c.Arrivals, c.Served, c.Dropped,
			Usec(c.Sojourn.P50Cycles), Usec(c.Sojourn.P99Cycles), Usec(c.Sojourn.P999Cycles), Usec(float64(c.Sojourn.MaxCycles)),
			Usec(c.QueueWait.P99Cycles), Usec(c.Service.P99Cycles))
		for _, p := range c.ByPath {
			fmt.Fprintf(w, "    path %-16s n=%-6d sojourn us: p50=%8.1f p99=%8.1f p999=%8.1f\n",
				p.Path, p.Served,
				Usec(p.Sojourn.P50Cycles), Usec(p.Sojourn.P99Cycles), Usec(p.Sojourn.P999Cycles))
		}
	}
}
