package obs

import "sort"

// Samples records every value it is given, for exact order-statistic
// quantiles. The open-system service workload uses it for sojourn-time
// percentiles, where the log2 Hist's bucket-width error would blur
// exactly the tail behavior under study (a p999 that is off by a power of
// two is not a p999). Memory is one int64 per sample, which is fine for
// the 10^4-10^5 requests of a service sweep point; for unbounded event
// streams use Hist.
//
// The zero value is ready to use. Samples is deterministic: quantiles
// depend only on the multiset of values, never on insertion order.
type Samples struct {
	vals   []int64
	sorted bool
	sum    int64
	max    int64
}

// Add records one value. Negative values are clamped to zero, matching
// Hist's convention.
func (s *Samples) Add(v int64) {
	if v < 0 {
		v = 0
	}
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
	if v > s.max {
		s.max = v
	}
}

// Count returns the number of recorded values.
func (s *Samples) Count() int64 { return int64(len(s.vals)) }

// Mean returns the arithmetic mean of recorded values.
func (s *Samples) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return float64(s.sum) / float64(len(s.vals))
}

// Max returns the largest recorded value.
func (s *Samples) Max() int64 { return s.max }

// Quantile returns the exact q-quantile (0 <= q <= 1) of the recorded
// values, linearly interpolating between adjacent order statistics when
// the continuous rank q*(n-1) falls between them (the "linear" /
// Hyndman-Fan type 7 definition, matching numpy's default). An empty
// recorder returns 0.
func (s *Samples) Quantile(q float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Slice(s.vals, func(i, j int) bool { return s.vals[i] < s.vals[j] })
		s.sorted = true
	}
	if q <= 0 {
		return float64(s.vals[0])
	}
	if q >= 1 {
		return float64(s.vals[n-1])
	}
	rank := q * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return float64(s.vals[n-1])
	}
	return float64(s.vals[lo]) + frac*float64(s.vals[lo+1]-s.vals[lo])
}

// QuantilesJSON is the exported summary of a latency distribution: count,
// mean and the three percentiles the service report plots, all in virtual
// cycles. Produced from a Samples (exact) or a Hist (interpolated).
type QuantilesJSON struct {
	Count      int64   `json:"count"`
	MeanCycles float64 `json:"mean_cycles"`
	P50Cycles  float64 `json:"p50_cycles"`
	P99Cycles  float64 `json:"p99_cycles"`
	P999Cycles float64 `json:"p999_cycles"`
	MaxCycles  int64   `json:"max_cycles"`
}

// JSON summarizes the recorder into its export form.
func (s *Samples) JSON() QuantilesJSON {
	return QuantilesJSON{
		Count:      s.Count(),
		MeanCycles: s.Mean(),
		P50Cycles:  s.Quantile(0.50),
		P99Cycles:  s.Quantile(0.99),
		P999Cycles: s.Quantile(0.999),
		MaxCycles:  s.Max(),
	}
}
