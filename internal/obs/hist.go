package obs

import "math/bits"

// Hist is a log2-bucketed histogram of non-negative cycle counts. Bucket 0
// counts zero values; bucket i (i >= 1) counts values in [2^(i-1), 2^i).
// Log bucketing keeps the histogram tiny and exact-deterministic while
// still resolving the orders-of-magnitude spread between an uncontended
// read section and a quiescence-stalled SGL fallback.
type Hist struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [65]int64
}

// Add records one value. Negative values are clamped to zero (they cannot
// occur for well-formed spans; clamping keeps the histogram total honest if
// they ever do).
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(uint64(v))]++
}

// Mean returns the arithmetic mean of recorded values.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) of the
// recorded values. Within the log2 bucket holding the target rank the
// value is linearly interpolated, so the estimate is exact for empty
// (0), single-sample, and constant histograms, and off by at most the
// bucket width otherwise; the upper edge is clamped to the observed Max.
// For exact order statistics record into a Samples instead.
func (h *Hist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if h.Sum == h.Max*h.Count {
		// All recorded values are equal (single sample or constant
		// stream): every quantile is that value, bucket width regardless.
		return float64(h.Max)
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		return float64(h.Max)
	}
	// Continuous rank in [0, Count-1], the same convention Samples uses.
	rank := q * float64(h.Count-1)
	var below int64 // samples in buckets before the current one
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		hi := float64(below + n - 1) // last rank inside this bucket
		if rank > hi {
			below += n
			continue
		}
		lo := bucketLo(i)
		up := 2 * lo // exclusive upper bound of bucket i
		if i == 0 {
			return 0 // bucket 0 holds exactly the zero values
		}
		if up-1 > h.Max {
			up = h.Max + 1
		}
		if n == 1 || up-1 <= lo {
			return float64(lo)
		}
		// Spread the bucket's n samples evenly across [lo, up-1].
		frac := (rank - float64(below)) / float64(n-1)
		return float64(lo) + frac*float64(up-1-lo)
	}
	return float64(h.Max)
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

// JSON converts the histogram to its export form (non-empty buckets only).
func (h *Hist) JSON() HistJSON {
	out := HistJSON{Count: h.Count, SumCycles: h.Sum, MaxCycles: h.Max}
	for i, n := range h.Buckets {
		if n > 0 {
			out.Buckets = append(out.Buckets, HistBucket{LoCycles: bucketLo(i), Count: n})
		}
	}
	return out
}

// HistJSON is the exported form of a Hist: totals plus the non-empty
// log2 buckets, each identified by its inclusive lower bound in cycles.
type HistJSON struct {
	Count     int64        `json:"count"`
	SumCycles int64        `json:"sum_cycles"`
	MaxCycles int64        `json:"max_cycles"`
	Buckets   []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	LoCycles int64 `json:"lo_cycles"`
	Count    int64 `json:"count"`
}
