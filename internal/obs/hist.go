package obs

import "math/bits"

// Hist is a log2-bucketed histogram of non-negative cycle counts. Bucket 0
// counts zero values; bucket i (i >= 1) counts values in [2^(i-1), 2^i).
// Log bucketing keeps the histogram tiny and exact-deterministic while
// still resolving the orders-of-magnitude spread between an uncontended
// read section and a quiescence-stalled SGL fallback.
type Hist struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [65]int64
}

// Add records one value. Negative values are clamped to zero (they cannot
// occur for well-formed spans; clamping keeps the histogram total honest if
// they ever do).
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(uint64(v))]++
}

// Mean returns the arithmetic mean of recorded values.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

// JSON converts the histogram to its export form (non-empty buckets only).
func (h *Hist) JSON() HistJSON {
	out := HistJSON{Count: h.Count, SumCycles: h.Sum, MaxCycles: h.Max}
	for i, n := range h.Buckets {
		if n > 0 {
			out.Buckets = append(out.Buckets, HistBucket{LoCycles: bucketLo(i), Count: n})
		}
	}
	return out
}

// HistJSON is the exported form of a Hist: totals plus the non-empty
// log2 buckets, each identified by its inclusive lower bound in cycles.
type HistJSON struct {
	Count     int64        `json:"count"`
	SumCycles int64        `json:"sum_cycles"`
	MaxCycles int64        `json:"max_cycles"`
	Buckets   []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	LoCycles int64 `json:"lo_cycles"`
	Count    int64 `json:"count"`
}
