package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"hrwle/internal/machine"
)

// Profile bundles the two virtual-time profiling collectors — per-cycle
// attribution and the windowed telemetry timeline — behind one
// machine.Tracer. Install it (alone or inside a MultiTracer) right before
// machine.Run, bracketed by Start/Finish with the machine's time.
type Profile struct {
	Cycles   *CycleProf
	Timeline *Timeline
}

// NewProfile returns a profile with the given window width in virtual
// cycles and per-class sojourn slots for `classes` request classes (0 for
// closed-loop runs).
func NewProfile(windowCycles int64, classes int) *Profile {
	return &Profile{
		Cycles:   NewCycleProf(windowCycles),
		Timeline: NewTimeline(windowCycles, classes),
	}
}

// Start fixes both collectors' origin. Call with machine.Now() right
// before machine.Run.
func (p *Profile) Start(base int64, cpus int) {
	p.Cycles.Start(base, cpus)
	p.Timeline.Start(base, cpus)
}

// Event implements machine.Tracer.
func (p *Profile) Event(e machine.Event) {
	p.Cycles.Event(e)
	p.Timeline.Event(e)
}

// Finish closes both collectors. Call with machine.Now() right after
// machine.Run returns — and, for open-system runs, after feeding the
// request log to Timeline.AddRequest.
func (p *Profile) Finish(end int64) {
	p.Cycles.Finish(end)
	p.Timeline.Finish(end)
}

// ProfileReport is the exportable result of one profiled point.
type ProfileReport struct {
	Scheme       string          `json:"scheme"`
	Workload     string          `json:"workload"`
	WindowCycles int64           `json:"window_cycles"`
	Service      *ServiceMetrics `json:"service,omitempty"`
	Cycles       *CycleReport    `json:"cycles"`
	Timeline     *TimelineReport `json:"timeline"`
}

// Report snapshots both collectors (call after Finish).
func (p *Profile) Report(scheme, workload string) *ProfileReport {
	return &ProfileReport{
		Scheme:       scheme,
		Workload:     workload,
		WindowCycles: p.Cycles.window,
		Cycles:       p.Cycles.Report(),
		Timeline:     p.Timeline.Report(),
	}
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *ProfileReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// sparkRunes is the 8-level sparkline ramp.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals scaled to the series maximum, downsampling by
// window-averaging when longer than width. An all-zero series renders as
// the lowest ramp level.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width < 1 {
		width = 1
	}
	if len(vals) > width {
		ds := make([]float64, width)
		for i := range ds {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			if hi == lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range vals[lo:hi] {
				sum += v
			}
			ds[i] = sum / float64(hi-lo)
		}
		vals = ds
	}
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		lvl := 0
		if max > 0 && v > 0 {
			lvl = int(v / max * float64(len(sparkRunes)-1))
			if lvl >= len(sparkRunes) {
				lvl = len(sparkRunes) - 1
			}
		}
		out[i] = sparkRunes[lvl]
	}
	return string(out)
}

// sparkPanel prints one labeled sparkline with its peak value.
func sparkPanel(w io.Writer, label string, vals []float64, unit string) {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	fmt.Fprintf(w, "  %-22s %s  peak %.4g%s\n", label, sparkline(vals, 64), max, unit)
}

// WriteText renders the profile as text panels: the cycle-attribution
// breakdown, then sparklines over the windowed series.
func (r *ProfileReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "\n### profile %s / %s (window %d cycles, %d windows)\n",
		r.Scheme, r.Workload, r.WindowCycles, len(r.Timeline.Windows))
	r.Cycles.WriteBreakdown(w)

	wins := r.Timeline.Windows
	if len(wins) == 0 {
		return
	}
	perSec := machine.CyclesPerSecond / float64(r.WindowCycles)
	series := func(f func(tw *TimelineWindow) float64) []float64 {
		out := make([]float64, len(wins))
		for i := range wins {
			out[i] = f(&wins[i])
		}
		return out
	}
	sum := func(v []int64) int64 {
		var s int64
		for _, x := range v {
			s += x
		}
		return s
	}
	fmt.Fprintf(w, "virtual-time series (one cell ≈ %d cycles)\n", r.WindowCycles)
	sparkPanel(w, "throughput (CS/s)", series(func(tw *TimelineWindow) float64 {
		return float64(tw.CSEnds) * perSec
	}), "")
	sparkPanel(w, "aborts/s", series(func(tw *TimelineWindow) float64 {
		return float64(sum(tw.Aborts)) * perSec
	}), "")
	sparkPanel(w, "SGL-commit share %", series(func(tw *TimelineWindow) float64 {
		if tw.CSEnds == 0 {
			return 0
		}
		// Commit-path order is published in the report header; index 2 is
		// the SGL fallback path.
		return 100 * float64(tw.Commits[2]) / float64(tw.CSEnds)
	}), "%")
	if anyRequests(wins) {
		sparkPanel(w, "queue depth (end)", series(func(tw *TimelineWindow) float64 {
			return float64(tw.QueueDepthEnd)
		}), "")
		sparkPanel(w, "in-flight (end)", series(func(tw *TimelineWindow) float64 {
			return float64(tw.InFlightEnd)
		}), "")
		for c := 0; c < r.Timeline.Classes; c++ {
			c := c
			sparkPanel(w, fmt.Sprintf("sojourn p99 us (cls %d)", c),
				series(func(tw *TimelineWindow) float64 {
					if c >= len(tw.SojournP99) {
						return 0
					}
					return Usec(tw.SojournP99[c])
				}), "us")
		}
	}
}

// anyRequests reports whether the request-derived series carry data.
func anyRequests(wins []TimelineWindow) bool {
	for i := range wins {
		if wins[i].Arrivals > 0 {
			return true
		}
	}
	return false
}
