package obs

import (
	"encoding/json"
	"io"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// chromeEvent is one record of the Chrome trace_event format (the JSON
// array flavour understood by Perfetto and chrome://tracing). Virtual
// cycles are reported as microseconds — the absolute unit is meaningless
// for a simulator, the relative timeline is what matters.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// CounterPoint is one sample of a counter track: the counter's value from
// virtual time Ts onward.
type CounterPoint struct {
	Ts    int64
	Value int64
}

// CounterSeries is one named Chrome counter track (ph:"C").
type CounterSeries struct {
	Name   string
	Points []CounterPoint
}

// WriteChromeTrace converts a complete event trace into Chrome
// trace_event JSON: critical sections, transactions, suspended windows and
// quiescence loops become nested duration slices per CPU; dooms,
// path switches, interrupts and page faults become instant markers.
// Memory accesses (read/write/CAS) are omitted — they dominate event
// volume without adding timeline structure; use the hot-address ranking
// for them. Output is deterministic for a deterministic trace, and B/E
// pairs are guaranteed well-nested per tid even when an abort unwinds
// through nested windows.
func WriteChromeTrace(w io.Writer, events []machine.Event) error {
	return WriteChromeTraceCounters(w, events, nil)
}

// WriteChromeTraceCounters is WriteChromeTrace plus counter tracks: each
// CounterSeries becomes a ph:"C" track (e.g. queue depth, in-flight
// requests), appended after the slice events in series order — Perfetto
// orders records by timestamp, so interleaving is unnecessary.
func WriteChromeTraceCounters(w io.Writer, events []machine.Event, counters []CounterSeries) error {
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Chrome's B/E slices must nest properly per tid (an E always closes
	// the innermost open B). The machine's streams are balanced, but an
	// abort unwinding through nested windows can end an outer slice while
	// an inner one is still open (E tx-abort before E quiesce); track the
	// open slices per tid, synthesize closes for inner slices when an outer
	// end arrives, and drop ends whose slice was already closed that way.
	type openSlice struct{ cat, name string }
	open := map[int][]openSlice{} // tid → stack of open slices

	for _, e := range events {
		ce := chromeEvent{Ts: e.Time, Pid: 0, Tid: e.CPU}
		cat := "" // slice category of this record; "" = instant
		switch e.Kind {
		case machine.EvCSBegin:
			write, _, _ := machine.UnpackCS(e.Aux)
			ce.Ph, ce.Name, cat = "B", "cs read", "cs"
			if write {
				ce.Name = "cs write"
			}
		case machine.EvCSEnd:
			write, path, retries := machine.UnpackCS(e.Aux)
			ce.Ph, ce.Name, cat = "E", "cs read", "cs"
			if write {
				ce.Name = "cs write"
			}
			ce.Args = map[string]any{
				"path":    stats.CommitPath(path).String(),
				"retries": retries,
			}
		case machine.EvTxBegin:
			ce.Ph, ce.Name, cat = "B", "tx HTM", "tx"
			if e.Aux == 1 {
				ce.Name = "tx ROT"
			}
		case machine.EvTxCommit:
			ce.Ph, ce.Name, cat = "E", "tx", "tx"
			ce.Args = map[string]any{"outcome": "commit", "dirty_words": e.Aux}
		case machine.EvTxAbort:
			cause, killer := htm.UnpackAbortAux(e.Aux)
			ce.Ph, ce.Name, cat = "E", "tx", "tx"
			ce.Args = map[string]any{
				"outcome": "abort",
				"cause":   cause.String(),
				"killer":  killer,
				"addr":    int64(e.Addr),
			}
		case machine.EvTxSuspend:
			ce.Ph, ce.Name, cat = "B", "suspended", "suspended"
		case machine.EvTxResume:
			ce.Ph, ce.Name, cat = "E", "suspended", "suspended"
		case machine.EvQuiesceStart:
			ce.Ph, ce.Name, cat = "B", "quiesce", "quiesce"
		case machine.EvQuiesceEnd:
			ce.Ph, ce.Name, cat = "E", "quiesce", "quiesce"
			ce.Args = map[string]any{"waited_cycles": e.Aux}
		case machine.EvTxDoom:
			cause, killer := htm.UnpackAbortAux(e.Aux)
			ce.Ph, ce.Name = "i", "doom"
			ce.Args = map[string]any{
				"cause":  cause.String(),
				"killer": killer,
				"addr":   int64(e.Addr),
			}
		case machine.EvPathSwitch:
			ce.Ph, ce.Name = "i", "path-switch"
			ce.Args = map[string]any{"to": pathName(e.Aux)}
		case machine.EvInterrupt:
			ce.Ph, ce.Name = "i", "interrupt"
		case machine.EvPageFault:
			ce.Ph, ce.Name = "i", "page-fault"
			ce.Args = map[string]any{"page": e.Aux}
		case machine.EvLockWait:
			// Complete event covering the wait: it ends at e.Time and
			// lasted Aux cycles.
			ce.Ph, ce.Name = "X", "lock-wait"
			ce.Ts, ce.Dur = e.Time-int64(e.Aux), int64(e.Aux)
			ce.Args = map[string]any{"addr": int64(e.Addr)}
		case machine.EvIdle:
			ce.Ph, ce.Name = "X", "idle"
			ce.Ts, ce.Dur = e.Time-int64(e.Aux), int64(e.Aux)
		default:
			continue // memory accesses: see doc comment
		}
		if cat != "" {
			stack := open[e.CPU]
			if ce.Ph == "B" {
				open[e.CPU] = append(stack, openSlice{cat, ce.Name})
			} else {
				idx := -1
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].cat == cat {
						idx = i
						break
					}
				}
				if idx < 0 {
					continue // slice already closed by an unwind; drop
				}
				for i := len(stack) - 1; i > idx; i-- {
					out.TraceEvents = append(out.TraceEvents, chromeEvent{
						Name: stack[i].name, Ph: "E", Ts: e.Time, Pid: 0, Tid: e.CPU,
						Args: map[string]any{"closed_by": "abort-unwind"},
					})
				}
				open[e.CPU] = stack[:idx]
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	for _, s := range counters {
		for _, pt := range s.Points {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: s.Name, Ph: "C", Ts: pt.Ts, Pid: 0, Tid: 0,
				Args: map[string]any{"value": pt.Value},
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}

// pathName renders a core.Path value carried in a path-switch event
// without importing internal/core (which imports this package's siblings).
func pathName(p uint64) string {
	switch p {
	case 0:
		return "HTM"
	case 1:
		return "ROT"
	default:
		return "NS"
	}
}
