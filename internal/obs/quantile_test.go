package obs

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestSamplesQuantileEmpty: an empty recorder reports zeros everywhere.
func TestSamplesQuantileEmpty(t *testing.T) {
	var s Samples
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
	j := s.JSON()
	if j.Count != 0 || j.MeanCycles != 0 || j.P999Cycles != 0 || j.MaxCycles != 0 {
		t.Errorf("empty JSON not all-zero: %+v", j)
	}
}

// TestSamplesQuantileSingle: one sample is every quantile.
func TestSamplesQuantileSingle(t *testing.T) {
	var s Samples
	s.Add(42)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := s.Quantile(q); !almost(got, 42) {
			t.Errorf("single-sample Quantile(%v) = %v, want 42", q, got)
		}
	}
}

// TestSamplesQuantileInterpolated: ranks between order statistics are
// linearly interpolated (Hyndman-Fan type 7).
func TestSamplesQuantileInterpolated(t *testing.T) {
	var s Samples
	// Insert out of order: quantiles must not depend on insertion order.
	for _, v := range []int64{30, 10, 20, 40} {
		s.Add(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40},
		{0.5, 25},      // rank 1.5 → midpoint of 20 and 30
		{1.0 / 3, 20},  // rank exactly 1
		{0.25, 17.5},   // rank 0.75 → 10 + 0.75*(20-10)
		{0.999, 39.97}, // rank 2.997
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if s.Mean() != 25 || s.Max() != 40 || s.Count() != 4 {
		t.Errorf("summary stats wrong: mean=%v max=%v count=%v", s.Mean(), s.Max(), s.Count())
	}
}

// TestSamplesQuantileExactTail: with 1000 distinct samples the p999 is the
// exact order statistic, not a bucket estimate.
func TestSamplesQuantileExactTail(t *testing.T) {
	var s Samples
	for v := int64(1000); v >= 1; v-- {
		s.Add(v)
	}
	if got := s.Quantile(0.999); !almost(got, 999.001) {
		t.Errorf("p999 of 1..1000 = %v, want 999.001", got)
	}
	if got := s.Quantile(0.5); !almost(got, 500.5) {
		t.Errorf("p50 of 1..1000 = %v, want 500.5", got)
	}
}

// TestSamplesQuantileAllEqual: a degenerate distribution reports the same
// value at every quantile, including both boundaries.
func TestSamplesQuantileAllEqual(t *testing.T) {
	var s Samples
	for i := 0; i < 17; i++ {
		s.Add(7)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 0.999, 1} {
		if got := s.Quantile(q); !almost(got, 7) {
			t.Errorf("all-equal Quantile(%v) = %v, want 7", q, got)
		}
	}
	if s.Mean() != 7 || s.Max() != 7 || s.Count() != 17 {
		t.Errorf("all-equal summary stats wrong: mean=%v max=%v count=%v", s.Mean(), s.Max(), s.Count())
	}
}

// TestSamplesNegativeClamped matches Hist: negatives count as zero.
func TestSamplesNegativeClamped(t *testing.T) {
	var s Samples
	s.Add(-5)
	s.Add(10)
	if got := s.Quantile(0); got != 0 {
		t.Errorf("min after negative add = %v, want 0", got)
	}
}

// TestHistQuantileEmpty: an empty histogram reports zero.
func TestHistQuantileEmpty(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Hist.Quantile(0.5) = %v, want 0", got)
	}
}

// TestHistQuantileSingle: a single sample is recovered exactly (the
// bucket interpolation clamps to Max).
func TestHistQuantileSingle(t *testing.T) {
	var h Hist
	h.Add(100)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); !almost(got, 100) {
			t.Errorf("single-sample Hist.Quantile(%v) = %v, want 100", q, got)
		}
	}
}

// TestHistQuantileZeros: zero values live in bucket 0 and quantiles inside
// it are exactly zero.
func TestHistQuantileZeros(t *testing.T) {
	var h Hist
	for i := 0; i < 9; i++ {
		h.Add(0)
	}
	h.Add(1 << 20)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("median of mostly-zeros = %v, want 0", got)
	}
	if got := h.Quantile(1); !almost(got, 1<<20) {
		t.Errorf("max quantile = %v, want %v", got, 1<<20)
	}
}

// TestHistQuantileAllEqual: when every sample is the same value the bucket
// estimate collapses to it — at q=0, q=1 and everywhere between — because
// the interpolation is clamped to the observed max.
func TestHistQuantileAllEqual(t *testing.T) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Add(300)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got > 300 || got < 256 {
			t.Errorf("all-equal Hist.Quantile(%v) = %v outside bucket [256,300]", q, got)
		}
	}
	if got := h.Quantile(1); !almost(got, 300) {
		t.Errorf("all-equal Hist.Quantile(1) = %v, want observed max 300", got)
	}
	if h.Count != 1000 || h.Sum != 300_000 || h.Max != 300 {
		t.Errorf("all-equal hist totals wrong: count=%d sum=%d max=%d", h.Count, h.Sum, h.Max)
	}
}

// TestHistQuantileInterpolated: within one bucket the estimate moves
// monotonically between the bucket bounds and stays within them.
func TestHistQuantileInterpolated(t *testing.T) {
	var h Hist
	// 100 samples spread across bucket [64, 128).
	for i := 0; i < 100; i++ {
		h.Add(64 + int64(i)*63/99)
	}
	prev := -1.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := h.Quantile(q)
		if got < 64 || got > 127 {
			t.Errorf("Quantile(%v) = %v outside bucket [64,127]", q, got)
		}
		if got < prev {
			t.Errorf("Quantile(%v) = %v not monotone (prev %v)", q, got, prev)
		}
		prev = got
	}
	// The top of the range is clamped to the observed max, not the bucket
	// edge.
	if got, max := h.Quantile(1), float64(h.Max); !almost(got, max) {
		t.Errorf("Quantile(1) = %v, want observed max %v", got, max)
	}
}

// TestHistQuantileMatchesSamplesRoughly: on a broad distribution the
// bucket estimate lands within one bucket width of the exact quantile.
func TestHistQuantileMatchesSamplesRoughly(t *testing.T) {
	var h Hist
	var s Samples
	v := int64(1)
	for i := 0; i < 5000; i++ {
		v = v*6364136223846793005 + 1442695040888963407 // LCG, deterministic
		x := (v >> 33) & 0xffff
		h.Add(x)
		s.Add(x)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := s.Quantile(q)
		est := h.Quantile(q)
		if est < exact/2-1 || est > exact*2+1 {
			t.Errorf("Quantile(%v): bucket estimate %v too far from exact %v", q, est, exact)
		}
	}
}
