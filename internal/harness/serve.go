package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"hrwle/internal/obs"
	"hrwle/internal/service"
)

// ServeSchemes is the default scheme set of the open-system service sweep:
// the paper's contribution, the classic elision baseline, and the
// non-speculative floor.
func ServeSchemes() []string { return []string{"RW-LE_OPT", "HLE", "RWL", "SGL"} }

// ServeSpec describes one hrwle-serve sweep: a base point configuration
// plus the offered-load grid and scheme set swept over it.
type ServeSpec struct {
	Base    service.Config
	Schemes []string
	Rates   []float64 // offered loads, requests per virtual second
}

// ServeWorkloads lists the workloads hrwle-serve can drive, in menu order.
func ServeWorkloads() []string { return []string{"hashmap", "kyoto", "tpcc"} }

// DefaultServeSpec returns the calibrated sweep for a workload: six
// offered-load points chosen to straddle the slowest default scheme's
// saturation knee (see EXPERIMENTS.md for the calibration method), so the
// default sweep always shows both the flat low-load region and the
// post-knee divergence.
func DefaultServeSpec(workload string) (ServeSpec, error) {
	spec := ServeSpec{
		Base:    service.DefaultConfig(workload),
		Schemes: ServeSchemes(),
	}
	switch workload {
	case "hashmap":
		spec.Rates = []float64{4e5, 8e5, 1.5e6, 3e6, 6e6, 1.4e7}
	case "kyoto":
		spec.Rates = []float64{2e5, 4e5, 6e5, 8e5, 1.1e6, 1.6e6}
	case "tpcc":
		spec.Rates = []float64{8e4, 1.5e5, 2.2e5, 3e5, 4.5e5, 7e5}
	default:
		return spec, fmt.Errorf("unknown serve workload %q (hashmap|kyoto|tpcc)", workload)
	}
	return spec, nil
}

// NumPoints returns the sweep's point count.
func (s *ServeSpec) NumPoints() int { return len(s.Schemes) * len(s.Rates) }

// ServeReport is the exportable result of one serve sweep. Points are in
// deterministic scheme-major, rate-minor order regardless of how many
// workers ran the sweep.
type ServeReport struct {
	Workload    string                `json:"workload"`
	Process     string                `json:"process"`
	Servers     int                   `json:"servers"`
	QueueCap    int                   `json:"queue_cap"`
	Requests    int                   `json:"requests"`
	Seed        uint64                `json:"seed"`
	Schemes     []string              `json:"schemes"`
	RatesPerSec []float64             `json:"rates_per_sec"`
	Points      []*obs.ServiceMetrics `json:"points"`
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *ServeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunServe sweeps scheme × offered-load on a bounded worker pool (workers
// <= 1 means serial). Each point builds its own machine from the same
// seed, so the report is bit-identical at any worker count; progress
// lines are emitted as points complete, so only their order varies.
//
//simlint:allow determinism the worker pool parallelizes independent sweep points across host cores; each point runs its own machine from a fixed seed, so the report is identical at any worker count
//simlint:allow abortflow the worker recover propagates point panics across the pool join; the pooled abort signal never reaches it (htm.Thread.Try consumes it inside the simulation) and panicVal is re-panicked verbatim after wg.Wait
func RunServe(spec ServeSpec, workers int, progress io.Writer) (*ServeReport, error) {
	base := spec.Base
	report := &ServeReport{
		Workload:    base.Workload,
		Process:     base.Arrivals.Process.String(),
		Servers:     base.Servers,
		QueueCap:    base.QueueCap,
		Requests:    base.Requests,
		Seed:        base.Seed,
		Schemes:     spec.Schemes,
		RatesPerSec: spec.Rates,
		Points:      make([]*obs.ServiceMetrics, spec.NumPoints()),
	}

	type job struct {
		idx    int
		scheme string
		rate   float64
	}
	jobs := make([]job, 0, spec.NumPoints())
	for _, s := range spec.Schemes {
		for _, rate := range spec.Rates {
			jobs = append(jobs, job{idx: len(jobs), scheme: s, rate: rate})
		}
	}

	var progressMu sync.Mutex
	var errMu sync.Mutex
	var firstErr error
	runJob := func(j job) {
		cfg := base
		cfg.Arrivals.RatePerSec = j.rate
		m, _, err := service.RunPoint(cfg, j.scheme, SchemeFactory(j.scheme), nil)
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("serve point %s@%.0f/s: %w", j.scheme, j.rate, err)
			}
			errMu.Unlock()
			return
		}
		report.Points[j.idx] = m
		if progress != nil {
			progressMu.Lock()
			fmt.Fprintf(progress, "  serve %s %-12s offered=%9.0f/s achieved=%9.0f/s dropped=%d\n",
				base.Workload, j.scheme, m.OfferedPerSec, m.AchievedPerSec, m.Dropped)
			progressMu.Unlock()
		}
	}

	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			runJob(j)
			if firstErr != nil {
				return nil, firstErr
			}
		}
		return report, nil
	}

	// A point that panics must not crash the process from a worker
	// goroutine: capture the first panic and re-raise it on the caller
	// after the pool drains.
	var (
		panicMu  sync.Mutex
		panicVal any
	)
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
					}()
					runJob(j)
				}()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return report, nil
}

// point returns the metrics of (scheme index, rate index).
func (r *ServeReport) point(si, ri int) *obs.ServiceMetrics {
	return r.Points[si*len(r.RatesPerSec)+ri]
}

// WriteText renders the sweep as text: the saturation panels (achieved
// throughput, drop rate, per-class p99 sojourn — offered load down the
// rows, schemes across the columns), then the per-point detail blocks.
func (r *ServeReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# open-system service sweep — %s (%s arrivals, %d servers, queue cap %d, %d requests, seed %d)\n",
		r.Workload, r.Process, r.Servers, r.QueueCap, r.Requests, r.Seed)

	header := func(title string) {
		fmt.Fprintf(w, "\n## %s\n%12s", title, "offered/s")
		for _, s := range r.Schemes {
			fmt.Fprintf(w, " %12s", s)
		}
		fmt.Fprintln(w)
	}
	panel := func(title string, cell func(m *obs.ServiceMetrics) float64, format string) {
		header(title)
		for ri, rate := range r.RatesPerSec {
			fmt.Fprintf(w, "%12.0f", rate)
			for si := range r.Schemes {
				fmt.Fprintf(w, " "+format, cell(r.point(si, ri)))
			}
			fmt.Fprintln(w)
		}
	}

	panel("achieved throughput (req/s)",
		func(m *obs.ServiceMetrics) float64 { return m.AchievedPerSec }, "%12.0f")
	panel("drop rate (% of arrivals)",
		func(m *obs.ServiceMetrics) float64 {
			return 100 * float64(m.Dropped) / float64(m.Requests)
		}, "%12.2f")
	if len(r.Points) > 0 && r.Points[0] != nil {
		for ci := range r.Points[0].Classes {
			ci := ci
			panel(fmt.Sprintf("%s sojourn p99 (us, priority %d)", r.Points[0].Classes[ci].Class, ci),
				func(m *obs.ServiceMetrics) float64 {
					return obs.Usec(m.Classes[ci].Sojourn.P99Cycles)
				}, "%12.1f")
		}
	}

	fmt.Fprintf(w, "\n## per-point detail\n")
	for si := range r.Schemes {
		for ri := range r.RatesPerSec {
			r.point(si, ri).WriteText(w)
		}
	}
}
