//simlint:allow-file determinism this file measures host wall-clock performance of the simulator itself (a meta-benchmark); its timings are reported, never fed back into simulated results

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// BenchScale is the work multiplier of the fixed perf mini-sweep.
const BenchScale = 0.25

// BenchSpec returns the fixed mini-sweep the wall-clock benchmark runs: a
// slice of the Figure 5 configuration (low capacity, high contention —
// the simulator's hottest conflict-detection and quiescence paths) small
// enough for CI but large enough to exercise every scheme family. The
// sweep definition must stay stable across PRs so the recorded numbers in
// results/BENCH_*.json remain comparable.
func BenchSpec() *FigureSpec {
	spec := *Registry()["fig5"]
	spec.Schemes = []string{"RW-LE_OPT", "RW-LE_PES", "HLE", "SGL"}
	spec.Threads = []int{2, 4, 8}
	spec.WritePcts = []int{10, 90}
	return &spec
}

// BenchAllocs reports host allocations per simulated HTM operation,
// measured with testing.AllocsPerRun. The transactions run in the
// machine's fast (Setup) mode so the numbers isolate the HTM layer itself
// — no goroutine handoffs, no timing model.
type BenchAllocs struct {
	HTMCommit float64 `json:"htm_commit"`
	HTMAbort  float64 `json:"htm_abort"`
}

// BenchReport is the wall-clock benchmark result written to
// results/BENCH_PR<n>.json. Simulated-cycle figures are deterministic;
// wall-clock figures depend on the host.
type BenchReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Figure    string   `json:"figure"`
	Schemes   []string `json:"schemes"`
	Threads   []int    `json:"threads"`
	WritePcts []int    `json:"write_pcts"`
	Scale     float64  `json:"scale"`
	Points    int      `json:"points"`

	SimCycles int64 `json:"sim_cycles"`

	SerialWallSec   float64 `json:"serial_wall_sec"`
	ParallelWallSec float64 `json:"parallel_wall_sec"`
	Workers         int     `json:"workers"`
	ParallelSpeedup float64 `json:"parallel_speedup"`

	SimCyclesPerSecSerial   float64 `json:"sim_cycles_per_sec_serial"`
	SimCyclesPerSecParallel float64 `json:"sim_cycles_per_sec_parallel"`
	PointsPerSecSerial      float64 `json:"points_per_sec_serial"`
	PointsPerSecParallel    float64 `json:"points_per_sec_parallel"`

	AllocsPerOp BenchAllocs `json:"allocs_per_op"`

	// Baseline comparison, present when a baseline file was supplied.
	BaselineFile            string  `json:"baseline_file,omitempty"`
	SerialSpeedupVsBaseline float64 `json:"serial_speedup_vs_baseline,omitempty"`
	TotalSpeedupVsBaseline  float64 `json:"total_speedup_vs_baseline,omitempty"`
}

// RunBench runs the fixed mini-sweep serially and on a workers-wide pool
// (best of three each), measures HTM-path allocations, and returns the
// report. baselinePath, if non-empty and readable, is a previous
// BenchReport to compare against (e.g. results/BENCH_SEED.json, recorded
// on the pre-optimization simulator). progress, if non-nil, receives
// human-readable status lines.
func RunBench(workers int, baselinePath string, progress io.Writer) (*BenchReport, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	spec := BenchSpec()
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}

	measure := func(w int) (float64, []Result) {
		best := -1.0
		var res []Result
		for i := 0; i < 3; i++ {
			start := time.Now()
			r := spec.RunParallel(BenchScale, nil, w)
			sec := time.Since(start).Seconds()
			if best < 0 || sec < best {
				best, res = sec, r
			}
		}
		return best, res
	}

	logf("bench: %d-point %s mini-sweep, serial (best of 3)...\n", spec.NumPoints(), spec.ID)
	serialSec, serialRes := measure(1)
	logf("bench: same sweep on %d workers (best of 3)...\n", workers)
	parallelSec, parallelRes := measure(workers)

	var cycles int64
	for i, r := range serialRes {
		cycles += r.Cycles
		if parallelRes[i] != r {
			return nil, fmt.Errorf("bench: parallel sweep diverged from serial at point %d: %+v vs %+v",
				i, parallelRes[i], r)
		}
	}

	rep := &BenchReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),

		Figure:    spec.ID,
		Schemes:   spec.Schemes,
		Threads:   spec.Threads,
		WritePcts: spec.WritePcts,
		Scale:     BenchScale,
		Points:    spec.NumPoints(),

		SimCycles: cycles,

		SerialWallSec:   serialSec,
		ParallelWallSec: parallelSec,
		Workers:         workers,
		ParallelSpeedup: serialSec / parallelSec,

		SimCyclesPerSecSerial:   float64(cycles) / serialSec,
		SimCyclesPerSecParallel: float64(cycles) / parallelSec,
		PointsPerSecSerial:      float64(spec.NumPoints()) / serialSec,
		PointsPerSecParallel:    float64(spec.NumPoints()) / parallelSec,

		AllocsPerOp: measureHTMAllocs(),
	}

	if baselinePath != "" {
		base, err := loadBenchReport(baselinePath)
		if err != nil {
			logf("bench: no baseline comparison (%v)\n", err)
		} else {
			if base.SimCycles != rep.SimCycles {
				// A wall-clock comparison between engines is only honest if
				// both simulated the identical workload: any sim_cycles
				// drift means semantics changed, not just speed.
				return nil, fmt.Errorf("bench: sim_cycles diverged from baseline %s: got %d, want %d (simulation semantics changed — fix the regression or record a new baseline)",
					baselinePath, rep.SimCycles, base.SimCycles)
			}
			rep.BaselineFile = baselinePath
			rep.SerialSpeedupVsBaseline = base.SerialWallSec / rep.SerialWallSec
			rep.TotalSpeedupVsBaseline = base.SerialWallSec / rep.ParallelWallSec
		}
	}
	return rep, nil
}

// WriteJSON writes the report as indented, key-stable JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary returns a short human-readable digest of the report.
func (r *BenchReport) Summary() string {
	s := fmt.Sprintf("bench: %d points, %.0f Mcycles simulated\n"+
		"  serial:   %.3fs wall  (%.1f Mcycles/s, %.1f points/s)\n"+
		"  parallel: %.3fs wall  (-j %d, %.2fx)\n"+
		"  allocs/op: htm commit %.2f, htm abort %.2f",
		r.Points, float64(r.SimCycles)/1e6,
		r.SerialWallSec, r.SimCyclesPerSecSerial/1e6, r.PointsPerSecSerial,
		r.ParallelWallSec, r.Workers, r.ParallelSpeedup,
		r.AllocsPerOp.HTMCommit, r.AllocsPerOp.HTMAbort)
	if r.BaselineFile != "" {
		s += fmt.Sprintf("\n  vs %s: serial %.2fx, serial-baseline-to-parallel %.2fx",
			r.BaselineFile, r.SerialSpeedupVsBaseline, r.TotalSpeedupVsBaseline)
	}
	return s
}

func loadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.SerialWallSec <= 0 {
		return nil, fmt.Errorf("%s: no serial_wall_sec recorded", path)
	}
	return &rep, nil
}

// measureHTMAllocs measures host allocations per committed and per aborted
// transaction. Transactions run in Setup (fast) mode on a prebuilt
// machine, so the measurement isolates the HTM layer: write-set buffering,
// conflict-directory registration, commit publication, rollback and the
// abort unwind. Both paths must report 0 on a healthy simulator.
func measureHTMAllocs() BenchAllocs {
	m := machine.New(machine.Config{CPUs: 1, MemWords: 1 << 16})
	sys := htm.NewSystem(m, htm.Config{})
	th := sys.Thread(0)
	var base machine.Addr
	m.Setup(func(c *machine.CPU) { base = c.AllocAligned(64) })

	commit := func() {
		m.Setup(func(c *machine.CPU) {
			th.Try(false, func() {
				for i := 0; i < 8; i++ {
					a := base + machine.Addr(i)
					th.Store(a, th.Load(a)+1)
				}
			})
		})
	}
	abort := func() {
		m.Setup(func(c *machine.CPU) {
			th.Try(false, func() {
				th.Store(base, 1)
				th.Abort(stats.AbortExplicit)
			})
		})
	}
	// Warm up so one-time growth (write-set tables, stat lazily touched
	// paths) is excluded from the steady-state figure.
	commit()
	abort()
	return BenchAllocs{
		HTMCommit: testing.AllocsPerRun(200, commit),
		HTMAbort:  testing.AllocsPerRun(200, abort),
	}
}
