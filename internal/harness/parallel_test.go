package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestParallelMatchesSerial is the determinism contract of RunParallel:
// the same sweep on a worker pool must return bit-identical Results in the
// same order, and render byte-identical figure output. Only wall-clock
// time may differ.
func TestParallelMatchesSerial(t *testing.T) {
	spec := goldenSpec()
	serial := spec.Run(0.02, nil)
	for _, workers := range []int{2, 4, 16} {
		parallel := spec.RunParallel(0.02, nil, workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Errorf("workers=%d point %d: parallel result diverged\nserial:   %+v\nparallel: %+v",
					workers, i, serial[i], parallel[i])
			}
		}
		var a, b bytes.Buffer
		Print(&a, spec, serial)
		Print(&b, spec, parallel)
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("workers=%d: printed figure differs from serial output", workers)
		}
	}
}

// TestParallelPoolProgress exercises the pool's shared progress writer —
// primarily food for the race detector (go test -race): concurrent points
// reporting through one writer and one result slice.
func TestParallelPoolProgress(t *testing.T) {
	spec := goldenSpec()
	var progress bytes.Buffer
	results := spec.RunParallel(0.02, &progress, 4)
	if n := bytes.Count(progress.Bytes(), []byte("\n")); n != len(results) {
		t.Errorf("progress lines = %d, want one per point (%d)", n, len(results))
	}
}

// TestParallelPanicPropagates checks that a point panicking inside a
// worker goroutine surfaces on the caller (a worker panic would otherwise
// kill the process with no recovery opportunity).
func TestParallelPanicPropagates(t *testing.T) {
	spec := &FigureSpec{
		ID: "boom", Schemes: []string{"A", "B"}, Threads: []int{1, 2}, WritePcts: []int{10},
		Point: func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
			if scheme == "B" && threads == 2 {
				panic("deadline exceeded (test)")
			}
			return Result{Cycles: 1}
		},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in a pooled point did not propagate to the caller")
		}
		if fmt.Sprint(r) != "deadline exceeded (test)" {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	spec.RunParallel(1, nil, 4)
}

// TestParallelMetricsMatchesSerial pins the parallel metrics exporter to
// the serial one: same Results, byte-identical per-scheme JSON files.
func TestParallelMetricsMatchesSerial(t *testing.T) {
	spec := goldenSpec()
	dirS, dirP := t.TempDir(), t.TempDir()

	serial, serialEvents, err := RunWithMetrics(spec, 0.02, nil, dirS, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, parallelEvents, err := RunWithMetrics(spec, 0.02, nil, dirP, 4)
	if err != nil {
		t.Fatal(err)
	}

	for i := range serial {
		if parallel[i] != serial[i] {
			t.Errorf("point %d: parallel metrics run diverged: %+v vs %+v", i, parallel[i], serial[i])
		}
	}
	if serialEvents != parallelEvents {
		t.Errorf("traced event totals differ: serial %d, parallel %d", serialEvents, parallelEvents)
	}
	if serialEvents == 0 {
		t.Error("metrics run traced no events")
	}
	for _, scheme := range spec.Schemes {
		name := MetricsFileName(spec.ID, scheme)
		a, err := os.ReadFile(filepath.Join(dirS, name))
		if err != nil {
			t.Fatalf("serial metrics file missing: %v", err)
		}
		b, err := os.ReadFile(filepath.Join(dirP, name))
		if err != nil {
			t.Fatalf("parallel metrics file missing: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: parallel export differs from serial export", name)
		}
	}
}

// TestBenchSpecShape pins the wall-clock benchmark's sweep definition: the
// recorded numbers in results/BENCH_*.json are only comparable across PRs
// if the sweep itself never drifts.
func TestBenchSpecShape(t *testing.T) {
	spec := BenchSpec()
	if spec.ID != "fig5" {
		t.Errorf("bench sweep figure = %s, want fig5", spec.ID)
	}
	if got, want := spec.NumPoints(), 24; got != want {
		t.Errorf("bench sweep points = %d, want %d", got, want)
	}
	if BenchScale != 0.25 {
		t.Errorf("bench scale = %v, want 0.25", BenchScale)
	}
}
