package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hrwle/internal/machine"
	"hrwle/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure output")

// goldenSpec is a miniature fig5 sweep: small enough to run in CI, rich
// enough to exercise speculation, quiescence and the SGL fallback.
func goldenSpec() *FigureSpec {
	spec := *Registry()["fig5"]
	spec.Threads = []int{2, 4}
	spec.WritePcts = []int{10}
	spec.Schemes = []string{"RW-LE_OPT", "RW-LE_PES", "SGL"}
	return &spec
}

func renderGolden(t *testing.T) ([]byte, []Result) {
	t.Helper()
	spec := goldenSpec()
	results := spec.Run(0.02, nil)
	var buf bytes.Buffer
	Print(&buf, spec, results)
	return buf.Bytes(), results
}

// TestGoldenFigureOutput pins the formatted figure output bit for bit. It
// fails when any change — intended or not — alters simulation results or
// table formatting; regenerate with `go test ./internal/harness -run Golden
// -update` and review the diff.
func TestGoldenFigureOutput(t *testing.T) {
	got, _ := renderGolden(t)
	path := filepath.Join("testdata", "golden_fig5_mini.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("figure output drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestTracingDoesNotChangeResults is the zero-cost guard: the same sweep
// with a Collector observing every machine must print byte-identical output
// and identical cycle counts. Must not run in parallel — the machine
// observer is a package-level slot.
func TestTracingDoesNotChangeResults(t *testing.T) {
	base, baseResults := renderGolden(t)

	installs := 0
	SetMachineObserver(func(m *machine.Machine) {
		installs++
		m.SetTracer(machine.MultiTracer{obs.NewCollector(), &machine.CountTracer{}})
	})
	defer SetMachineObserver(nil)
	traced, tracedResults := renderGolden(t)

	if installs != len(baseResults) {
		t.Errorf("observer installed for %d machines, want %d", installs, len(baseResults))
	}
	if !bytes.Equal(base, traced) {
		t.Errorf("tracing changed figure output\n--- untraced ---\n%s\n--- traced ---\n%s", base, traced)
	}
	for i := range baseResults {
		if baseResults[i].Cycles != tracedResults[i].Cycles {
			t.Errorf("point %d: tracing changed virtual time: %d vs %d cycles",
				i, baseResults[i].Cycles, tracedResults[i].Cycles)
		}
	}
}

// TestRunWithMetricsMatchesPlainRun checks that the metrics exporter
// produces the same Results as a plain sweep, writes one valid JSON file
// per scheme, and that a second export is byte-identical (the determinism
// contract of EXPERIMENTS.md).
func TestRunWithMetricsMatchesPlainRun(t *testing.T) {
	spec := goldenSpec()
	plain := spec.Run(0.02, nil)

	export := func(dir string) []Result {
		results, _, err := RunWithMetrics(spec, 0.02, nil, dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	withMetrics := export(dir1)
	export(dir2)

	if len(withMetrics) != len(plain) {
		t.Fatalf("result counts differ: %d vs %d", len(withMetrics), len(plain))
	}
	for i := range plain {
		if plain[i] != withMetrics[i] {
			t.Errorf("point %d differs with metrics enabled: %+v vs %+v", i, plain[i], withMetrics[i])
		}
	}
	for _, scheme := range spec.Schemes {
		name := MetricsFileName(spec.ID, scheme)
		a, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatalf("metrics file missing: %v", err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: repeated export not byte-identical", name)
		}
	}
}
