package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hrwle/internal/machine"
	"hrwle/internal/obs"
)

// machineObserver, when non-nil, is invoked by every workload runner right
// after it constructs its simulated machine and before the run starts —
// unless the point's PointCtx carries its own Observe hook, which takes
// precedence. Tests and ad-hoc tracing use this package-level slot with
// strictly serial sweeps; parallel sweeps must use PointCtx.Observe.
var machineObserver func(*machine.Machine)

// SetMachineObserver installs (or, with nil, removes) the fallback hook
// called for every machine a workload runner builds.
func SetMachineObserver(fn func(*machine.Machine)) { machineObserver = fn }

// RunWithMetrics sweeps figure f like FigureSpec.RunParallel while
// collecting obs telemetry for every point, then writes one RunMetrics
// JSON per scheme to dir as <figure>-<scheme>.json. It returns the sweep
// results plus the total number of events traced. The files are
// deterministic regardless of workers: identical seeds produce
// byte-identical JSON.
func RunWithMetrics(f *FigureSpec, scale float64, progress io.Writer, dir string, workers int) ([]Result, int64, error) {
	// One collector slot per point: a point may build more than one machine
	// (e.g. fig10's lazily computed baseline) and only the last one built is
	// the measured run, matching the serial exporter's semantics. Slots are
	// written by worker goroutines and read only after the pool drains (the
	// WaitGroup inside runPoints provides the happens-before edge).
	collectors := make([]*obs.Collector, f.NumPoints())
	mkCtx := func(idx int) PointCtx {
		return PointCtx{Observe: func(m *machine.Machine) {
			c := obs.NewCollector()
			collectors[idx] = c
			m.SetTracer(machine.MultiTracer{c})
		}}
	}
	results := f.runPoints(scale, progress, workers, mkCtx)

	var totalEvents int64
	byScheme := map[string]*obs.RunMetrics{}
	for i, r := range results {
		c := collectors[i]
		if c == nil {
			continue // the point's runner does not support observation
		}
		totalEvents += c.TotalEvents()
		rm := byScheme[r.Scheme]
		if rm == nil {
			rm = &obs.RunMetrics{Figure: f.ID, Scheme: r.Scheme}
			byScheme[r.Scheme] = rm
		}
		pm := c.Point(r.Threads, r.WritePct, r.Cycles, &r.B)
		pm.Adaptive = r.Adaptive
		rm.Points = append(rm.Points, pm)
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return results, totalEvents, err
	}
	schemes := make([]string, 0, len(byScheme))
	for s := range byScheme {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, s := range schemes {
		path := filepath.Join(dir, MetricsFileName(f.ID, s))
		w, err := os.Create(path)
		if err != nil {
			return results, totalEvents, err
		}
		err = byScheme[s].WriteJSON(w)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return results, totalEvents, fmt.Errorf("writing %s: %w", path, err)
		}
	}
	return results, totalEvents, nil
}

// MetricsFileName returns the metrics file name for one (figure, scheme)
// pair, with scheme characters outside [A-Za-z0-9._-] mapped to '-' so
// names like "retry=5" stay filesystem-safe.
func MetricsFileName(figure, scheme string) string {
	sanitize := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}
	return strings.Map(sanitize, figure) + "-" + strings.Map(sanitize, scheme) + ".json"
}
