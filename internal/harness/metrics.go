package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hrwle/internal/machine"
	"hrwle/internal/obs"
)

// machineObserver, when non-nil, is invoked by every workload runner right
// after it constructs its simulated machine and before the run starts. The
// metrics exporter uses it to install an obs.Collector per measurement
// point; tests use it to install ad-hoc tracers. Figure sweeps run points
// strictly sequentially, so a single package-level slot suffices.
var machineObserver func(*machine.Machine)

// SetMachineObserver installs (or, with nil, removes) the hook called for
// every machine a workload runner builds.
func SetMachineObserver(fn func(*machine.Machine)) { machineObserver = fn }

// observeMachine is called by every runner after machine.New.
func observeMachine(m *machine.Machine) {
	if machineObserver != nil {
		machineObserver(m)
	}
}

// RunWithMetrics sweeps figure f like FigureSpec.Run while collecting obs
// telemetry for every point, then writes one RunMetrics JSON per scheme to
// dir as <figure>-<scheme>.json. extra tracers, if any, observe every
// point's events too (fanned out through machine.MultiTracer). The files
// are deterministic: identical seeds produce byte-identical JSON.
func RunWithMetrics(f *FigureSpec, scale float64, progress io.Writer, dir string, extra ...machine.Tracer) ([]Result, error) {
	var current *obs.Collector
	SetMachineObserver(func(m *machine.Machine) {
		current = obs.NewCollector()
		ts := machine.MultiTracer{current}
		ts = append(ts, extra...)
		m.SetTracer(ts)
	})
	defer SetMachineObserver(nil)

	byScheme := map[string]*obs.RunMetrics{}
	results := f.runPoints(scale, progress, func(r Result) {
		if current == nil {
			return // the point's runner does not support observation
		}
		rm := byScheme[r.Scheme]
		if rm == nil {
			rm = &obs.RunMetrics{Figure: f.ID, Scheme: r.Scheme}
			byScheme[r.Scheme] = rm
		}
		rm.Points = append(rm.Points, current.Point(r.Threads, r.WritePct, r.Cycles, &r.B))
		current = nil
	})

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return results, err
	}
	schemes := make([]string, 0, len(byScheme))
	for s := range byScheme {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, s := range schemes {
		path := filepath.Join(dir, MetricsFileName(f.ID, s))
		w, err := os.Create(path)
		if err != nil {
			return results, err
		}
		err = byScheme[s].WriteJSON(w)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return results, fmt.Errorf("writing %s: %w", path, err)
		}
	}
	return results, nil
}

// MetricsFileName returns the metrics file name for one (figure, scheme)
// pair, with scheme characters outside [A-Za-z0-9._-] mapped to '-' so
// names like "retry=5" stay filesystem-safe.
func MetricsFileName(figure, scheme string) string {
	sanitize := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}
	return strings.Map(sanitize, figure) + "-" + strings.Map(sanitize, scheme) + ".json"
}
