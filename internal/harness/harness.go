// Package harness defines and drives the paper's experiments: it builds a
// fresh simulated machine per measurement point, instantiates a
// synchronization scheme, runs the workload in virtual time, and collects
// the three panels every figure in the paper reports — execution time (or
// throughput), the abort-cause breakdown, and the commit-path breakdown.
package harness

import (
	"fmt"
	"io"
	"sort"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

// Result is one measurement point.
type Result struct {
	Figure   string
	Scheme   string
	Threads  int
	WritePct int
	Cycles   int64
	B        stats.Breakdown
	// Speedup is set by figures whose first panel is normalized to a
	// baseline (Fig. 10: SGL at one thread).
	Speedup float64
}

// Seconds converts the virtual execution time to seconds.
func (r Result) Seconds() float64 { return machine.Seconds(r.Cycles) }

// Throughput returns application operations per virtual second.
func (r Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.B.Ops) / machine.Seconds(r.Cycles)
}

// SchemeFactory resolves a scheme name to a lock factory. Supported names:
// RW-LE_OPT, RW-LE_PES, RW-LE_FAIR, RW-LE_SPLIT, RW-LE_basic, HLE, BRLock,
// RWL, SGL.
func SchemeFactory(name string) rwlock.Factory {
	switch name {
	case "RW-LE_OPT":
		return func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }
	case "RW-LE_PES":
		return func(s *htm.System) rwlock.Lock { return core.New(s, core.Pes()) }
	case "RW-LE_FAIR":
		return func(s *htm.System) rwlock.Lock {
			o := core.Opt()
			o.Fair = true
			o.Name = "RW-LE_FAIR"
			return core.New(s, o)
		}
	case "RW-LE_SPLIT":
		return func(s *htm.System) rwlock.Lock {
			o := core.Opt()
			o.SplitLocks = true
			o.Name = "RW-LE_SPLIT"
			return core.New(s, o)
		}
	case "RW-LE_basic":
		return func(s *htm.System) rwlock.Lock { return core.NewBasic(s) }
	case "HLE":
		return func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }
	case "BRLock":
		return func(s *htm.System) rwlock.Lock { return locks.NewBRLock(s) }
	case "RWL":
		return func(s *htm.System) rwlock.Lock { return locks.NewRWL(s) }
	case "SGL":
		return func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }
	}
	panic("harness: unknown scheme " + name)
}

// PointFunc produces one measurement point for a figure.
type PointFunc func(scheme string, threads, writePct int, scale float64) Result

// FigureSpec describes one paper figure (or ablation) to regenerate.
type FigureSpec struct {
	ID        string
	Title     string
	Schemes   []string
	Threads   []int
	WritePcts []int
	// TimeLabel names the first panel ("time (s)", "throughput (tx/s)",
	// "speedup vs SGL@1").
	TimeLabel string
	Point     PointFunc
}

// Run sweeps the whole figure and returns all points in a deterministic
// order. progress, if non-nil, receives one line per completed point.
func (f *FigureSpec) Run(scale float64, progress io.Writer) []Result {
	return f.runPoints(scale, progress, nil)
}

// runPoints is the shared sweep loop behind Run and RunWithMetrics.
// onPoint, if non-nil, is called with each completed point in order.
func (f *FigureSpec) runPoints(scale float64, progress io.Writer, onPoint func(Result)) []Result {
	var out []Result
	for _, w := range f.WritePcts {
		for _, n := range f.Threads {
			for _, s := range f.Schemes {
				r := f.Point(s, n, w, scale)
				r.Figure = f.ID
				r.Scheme = s
				r.Threads = n
				r.WritePct = w
				out = append(out, r)
				if onPoint != nil {
					onPoint(r)
				}
				if progress != nil {
					fmt.Fprintf(progress, "  %s w=%d%% n=%d %-12s %.4fs aborts=%4.1f%% ops=%d\n",
						f.ID, w, n, s, r.Seconds(), r.B.AbortRate(), r.B.Ops)
				}
			}
		}
	}
	return out
}

// Print renders the figure's three panels as text tables.
func Print(w io.Writer, f *FigureSpec, results []Result) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	byKey := map[[3]interface{}]Result{}
	for _, r := range results {
		byKey[[3]interface{}{r.WritePct, r.Threads, r.Scheme}] = r
	}

	fmt.Fprintf(w, "\n## %s\n", f.TimeLabel)
	fmt.Fprintf(w, "%4s %7s", "w%", "threads")
	for _, s := range f.Schemes {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, wp := range f.WritePcts {
		for _, n := range f.Threads {
			fmt.Fprintf(w, "%4d %7d", wp, n)
			for _, s := range f.Schemes {
				r := byKey[[3]interface{}{wp, n, s}]
				fmt.Fprintf(w, " %12.5f", panelValue(f, r))
			}
			fmt.Fprintln(w)
		}
	}

	fmt.Fprintf(w, "\n## abort breakdown (%% of tx attempts): %s\n", stats.AbortsHeader())
	for _, wp := range f.WritePcts {
		for _, s := range f.Schemes {
			if !speculative(s) {
				continue
			}
			for _, n := range f.Threads {
				r := byKey[[3]interface{}{wp, n, s}]
				fmt.Fprintf(w, "w=%-3d n=%-3d %-12s total=%5.1f%%  %s\n", wp, n, s, r.B.AbortRate(), r.B.FormatAborts())
			}
		}
	}

	fmt.Fprintf(w, "\n## commit breakdown (%%)\n")
	for _, wp := range f.WritePcts {
		for _, s := range f.Schemes {
			for _, n := range f.Threads {
				r := byKey[[3]interface{}{wp, n, s}]
				fmt.Fprintf(w, "w=%-3d n=%-3d %-12s %s\n", wp, n, s, r.B.FormatCommits())
			}
		}
	}
	fmt.Fprintln(w)
}

// panelValue picks what the first panel plots for this figure.
func panelValue(f *FigureSpec, r Result) float64 {
	switch f.TimeLabel {
	case "throughput (ops/s)":
		return r.Throughput()
	case "speedup vs SGL@1 thread":
		return r.Speedup
	default:
		return r.Seconds()
	}
}

// speculative reports whether a scheme ever starts transactions (pure
// lock schemes have no abort panel).
func speculative(scheme string) bool {
	switch scheme {
	case "SGL", "RWL", "BRLock", "Orig":
		return false
	}
	return true
}

// SortedIDs returns the registered figure IDs in order.
func SortedIDs(figs map[string]*FigureSpec) []string {
	ids := make([]string, 0, len(figs))
	for id := range figs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
