// Package harness defines and drives the paper's experiments: it builds a
// fresh simulated machine per measurement point, instantiates a
// synchronization scheme, runs the workload in virtual time, and collects
// the three panels every figure in the paper reports — execution time (or
// throughput), the abort-cause breakdown, and the commit-path breakdown.
package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/obs"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

// Result is one measurement point.
type Result struct {
	Figure   string
	Scheme   string
	Threads  int
	WritePct int
	Cycles   int64
	B        stats.Breakdown
	// Speedup is set by figures whose first panel is normalized to a
	// baseline (Fig. 10: SGL at one thread).
	Speedup float64
	// Adaptive is the end-of-run state of the scheme's self-tuning budget
	// controller, when it has one (RW-LE_ADAPT); nil otherwise.
	Adaptive *obs.AdaptiveState
}

// Seconds converts the virtual execution time to seconds.
func (r Result) Seconds() float64 { return machine.Seconds(r.Cycles) }

// Throughput returns application operations per virtual second.
func (r Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.B.Ops) / machine.Seconds(r.Cycles)
}

// AllSchemes lists every name SchemeFactory resolves, in menu order.
func AllSchemes() []string {
	return []string{
		"RW-LE_OPT", "RW-LE_PES", "RW-LE_FAIR", "RW-LE_SPLIT", "RW-LE_basic",
		"HLE", "BRLock", "RWL", "SGL",
	}
}

// SchemeFactory resolves a scheme name to a lock factory. Supported names:
// RW-LE_OPT, RW-LE_PES, RW-LE_FAIR, RW-LE_SPLIT, RW-LE_basic, HLE, BRLock,
// RWL, SGL.
func SchemeFactory(name string) rwlock.Factory {
	switch name {
	case "RW-LE_OPT":
		return func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }
	case "RW-LE_PES":
		return func(s *htm.System) rwlock.Lock { return core.New(s, core.Pes()) }
	case "RW-LE_FAIR":
		return func(s *htm.System) rwlock.Lock {
			o := core.Opt()
			o.Fair = true
			o.Name = "RW-LE_FAIR"
			return core.New(s, o)
		}
	case "RW-LE_SPLIT":
		return func(s *htm.System) rwlock.Lock {
			o := core.Opt()
			o.SplitLocks = true
			o.Name = "RW-LE_SPLIT"
			return core.New(s, o)
		}
	case "RW-LE_basic":
		return func(s *htm.System) rwlock.Lock { return core.NewBasic(s) }
	case "HLE":
		return func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }
	case "BRLock":
		return func(s *htm.System) rwlock.Lock { return locks.NewBRLock(s) }
	case "RWL":
		return func(s *htm.System) rwlock.Lock { return locks.NewRWL(s) }
	case "SGL":
		return func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }
	}
	panic("harness: unknown scheme " + name)
}

// PointCtx carries per-point harness context into a measurement point.
// Each point builds its own machine, so points are independent and a sweep
// may run many of them concurrently; anything a point needs from the
// harness must travel through its ctx rather than package-level state.
type PointCtx struct {
	// Observe, if non-nil, receives every machine the point constructs,
	// right after machine.New and before the run starts. The metrics
	// exporter uses it to install one obs.Collector per point.
	Observe func(*machine.Machine)
}

// observe notifies the per-point observer, falling back to the package
// global installed with SetMachineObserver (used by tests and ad-hoc
// tracing, which run sweeps serially).
func (ctx PointCtx) observe(m *machine.Machine) {
	if ctx.Observe != nil {
		ctx.Observe(m)
		return
	}
	if machineObserver != nil {
		machineObserver(m)
	}
}

// PointFunc produces one measurement point for a figure.
type PointFunc func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result

// FigureSpec describes one paper figure (or ablation) to regenerate.
type FigureSpec struct {
	ID        string
	Title     string
	Schemes   []string
	Threads   []int
	WritePcts []int
	// TimeLabel names the first panel ("time (s)", "throughput (tx/s)",
	// "speedup vs SGL@1").
	TimeLabel string
	Point     PointFunc
}

// Run sweeps the whole figure serially and returns all points in a
// deterministic order. progress, if non-nil, receives one line per
// completed point.
func (f *FigureSpec) Run(scale float64, progress io.Writer) []Result {
	return f.runPoints(scale, progress, 1, nil)
}

// RunParallel sweeps the figure on a bounded pool of workers goroutines
// (workers <= 1 means serial). Every point builds its own machine, so
// points are independent; the returned slice is in the same deterministic
// order as Run and contains bit-identical Results — only wall-clock time
// changes. Progress lines are emitted as points complete, so their order
// varies under parallelism.
func (f *FigureSpec) RunParallel(scale float64, progress io.Writer, workers int) []Result {
	return f.runPoints(scale, progress, workers, nil)
}

// pointJob identifies one measurement point of a sweep: its coordinates
// plus its index in the deterministic result order.
type pointJob struct {
	idx      int
	scheme   string
	threads  int
	writePct int
}

// jobs enumerates the sweep's points in deterministic order.
func (f *FigureSpec) jobs() []pointJob {
	out := make([]pointJob, 0, f.NumPoints())
	for _, w := range f.WritePcts {
		for _, n := range f.Threads {
			for _, s := range f.Schemes {
				out = append(out, pointJob{idx: len(out), scheme: s, threads: n, writePct: w})
			}
		}
	}
	return out
}

// NumPoints returns the number of measurement points in the sweep.
func (f *FigureSpec) NumPoints() int {
	return len(f.Schemes) * len(f.Threads) * len(f.WritePcts)
}

// runPoints is the shared sweep loop behind Run, RunParallel and
// RunWithMetrics. mkCtx, if non-nil, supplies the PointCtx for each point
// index (RunWithMetrics uses it to give every point its own collector
// slot, keeping the sweep race-free under parallelism).
//
//simlint:allow determinism the worker pool parallelizes independent sweep points across host cores; each point runs its own machine from a fixed seed, so results are identical at any worker count
//simlint:allow abortflow the worker recover propagates point panics across the pool join; the pooled abort signal never reaches it (htm.Thread.Try consumes it inside the simulation) and panicVal is re-panicked verbatim after wg.Wait
func (f *FigureSpec) runPoints(scale float64, progress io.Writer, workers int, mkCtx func(int) PointCtx) []Result {
	jobs := f.jobs()
	out := make([]Result, len(jobs))
	var progressMu sync.Mutex
	runJob := func(j pointJob) {
		var ctx PointCtx
		if mkCtx != nil {
			ctx = mkCtx(j.idx)
		}
		r := f.Point(ctx, j.scheme, j.threads, j.writePct, scale)
		r.Figure = f.ID
		r.Scheme = j.scheme
		r.Threads = j.threads
		r.WritePct = j.writePct
		out[j.idx] = r
		if progress != nil {
			progressMu.Lock()
			fmt.Fprintf(progress, "  %s w=%d%% n=%d %-12s %.4fs aborts=%4.1f%% ops=%d\n",
				f.ID, j.writePct, j.threads, j.scheme, r.Seconds(), r.B.AbortRate(), r.B.Ops)
			progressMu.Unlock()
		}
	}

	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			runJob(j)
		}
		return out
	}

	// A point that panics (e.g. a simulation hitting its virtual deadline)
	// must not crash the process from a worker goroutine: capture the first
	// panic and re-raise it on the caller after the pool drains.
	var (
		panicMu  sync.Mutex
		panicVal any
	)
	ch := make(chan pointJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
					}()
					runJob(j)
				}()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// pointKey indexes a figure's results by sweep coordinates.
type pointKey struct {
	writePct int
	threads  int
	scheme   string
}

// Print renders the figure's three panels as text tables.
func Print(w io.Writer, f *FigureSpec, results []Result) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	byKey := map[pointKey]Result{}
	for _, r := range results {
		byKey[pointKey{r.WritePct, r.Threads, r.Scheme}] = r
	}

	fmt.Fprintf(w, "\n## %s\n", f.TimeLabel)
	fmt.Fprintf(w, "%4s %7s", "w%", "threads")
	for _, s := range f.Schemes {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, wp := range f.WritePcts {
		for _, n := range f.Threads {
			fmt.Fprintf(w, "%4d %7d", wp, n)
			for _, s := range f.Schemes {
				r := byKey[pointKey{wp, n, s}]
				fmt.Fprintf(w, " %12.5f", panelValue(f, r))
			}
			fmt.Fprintln(w)
		}
	}

	fmt.Fprintf(w, "\n## abort breakdown (%% of tx attempts): %s\n", stats.AbortsHeader())
	for _, wp := range f.WritePcts {
		for _, s := range f.Schemes {
			if !speculative(s) {
				continue
			}
			for _, n := range f.Threads {
				r := byKey[pointKey{wp, n, s}]
				fmt.Fprintf(w, "w=%-3d n=%-3d %-12s total=%5.1f%%  %s\n", wp, n, s, r.B.AbortRate(), r.B.FormatAborts())
			}
		}
	}

	fmt.Fprintf(w, "\n## commit breakdown (%%)\n")
	for _, wp := range f.WritePcts {
		for _, s := range f.Schemes {
			for _, n := range f.Threads {
				r := byKey[pointKey{wp, n, s}]
				fmt.Fprintf(w, "w=%-3d n=%-3d %-12s %s\n", wp, n, s, r.B.FormatCommits())
			}
		}
	}
	fmt.Fprintln(w)
}

// panelValue picks what the first panel plots for this figure.
func panelValue(f *FigureSpec, r Result) float64 {
	switch f.TimeLabel {
	case "throughput (ops/s)":
		return r.Throughput()
	case "speedup vs SGL@1 thread":
		return r.Speedup
	default:
		return r.Seconds()
	}
}

// speculative reports whether a scheme ever starts transactions (pure
// lock schemes have no abort panel).
func speculative(scheme string) bool {
	switch scheme {
	case "SGL", "RWL", "BRLock", "Orig":
		return false
	}
	return true
}

// SortedIDs returns the registered figure IDs in order.
func SortedIDs(figs map[string]*FigureSpec) []string {
	ids := make([]string, 0, len(figs))
	for id := range figs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
