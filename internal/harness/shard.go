package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"hrwle/internal/obs"
	"hrwle/internal/shard"
)

// ShardAdaptive is the scheme name of the per-shard adaptive controller
// in the sharded sweep.
const ShardAdaptive = "adaptive"

// ShardPalette is the adaptive controller's scheme ladder, most
// speculative first. Fixed-scheme points run a single rung of it (or any
// other SchemeFactory name).
func ShardPalette() []shard.Scheme {
	return []shard.Scheme{
		{Name: "RW-LE_OPT", Mk: SchemeFactory("RW-LE_OPT")},
		{Name: "HLE", Mk: SchemeFactory("HLE")},
		{Name: "SGL", Mk: SchemeFactory("SGL")},
	}
}

// ShardSchemes is the default scheme axis: the adaptive controller
// against each of its rungs run fixed.
func ShardSchemes() []string {
	return []string{ShardAdaptive, "RW-LE_OPT", "HLE", "SGL"}
}

// ShardSpec describes one hrwle-shard sweep: a base deployment
// configuration swept over shard count × key skew × scheme.
type ShardSpec struct {
	Base    shard.Config
	Schemes []string
	Shards  []int
	Skews   []float64
}

// DefaultShardSpec returns the calibrated scale-out sweep: 64 serving
// CPUs over a 2M-key store, shard counts from coarse to fine, skews from
// uniform to hot-key, at an offered load just past the weakest fixed
// scheme's high-skew saturation knee (see EXPERIMENTS.md).
func DefaultShardSpec() ShardSpec {
	spec := ShardSpec{
		Base:    shard.DefaultConfig(),
		Schemes: ShardSchemes(),
		Shards:  []int{4, 16, 64},
		Skews:   []float64{0, 0.9, 1.2},
	}
	spec.Base.Arrivals.RatePerSec = 2e7
	return spec
}

// NumPoints returns the sweep's point count.
func (s *ShardSpec) NumPoints() int {
	return len(s.Schemes) * len(s.Shards) * len(s.Skews)
}

// ShardPoint is one sweep point's outcome.
type ShardPoint struct {
	Scheme string        `json:"scheme"`
	Shards int           `json:"shards"`
	Skew   float64       `json:"skew"`
	Result *shard.Result `json:"result"`
}

// ShardReport is the exportable result of one sharded sweep. Points are
// in deterministic scheme-major, shards-then-skew-minor order regardless
// of how many workers ran the sweep.
type ShardReport struct {
	Servers     int           `json:"servers"`
	Requests    int           `json:"requests"`
	QueueCap    int           `json:"queue_cap"`
	Universe    int           `json:"key_universe"`
	CrossPct    int           `json:"cross_pct"`
	RatePerSec  float64       `json:"rate_per_sec"`
	Seed        uint64        `json:"seed"`
	Schemes     []string      `json:"schemes"`
	ShardCounts []int         `json:"shard_counts"`
	Skews       []float64     `json:"skews"`
	Points      []*ShardPoint `json:"points"`
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *ShardReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunShard sweeps scheme × shard count × skew on a bounded worker pool
// (workers <= 1 means serial). Each point builds its own machine from the
// same seed, so the report is bit-identical at any worker count; progress
// lines are emitted as points complete, so only their order varies.
//
//simlint:allow determinism the worker pool parallelizes independent sweep points across host cores; each point runs its own machine from a fixed seed, so the report is identical at any worker count
//simlint:allow abortflow the worker recover propagates point panics across the pool join; the pooled abort signal never reaches it (htm.Thread.Try consumes it inside the simulation) and panicVal is re-panicked verbatim after wg.Wait
func RunShard(spec ShardSpec, workers int, progress io.Writer) (*ShardReport, error) {
	base := spec.Base
	report := &ShardReport{
		Servers:     base.Servers,
		Requests:    base.Requests,
		QueueCap:    base.QueueCap,
		Universe:    base.Keys.Universe,
		CrossPct:    base.Keys.CrossPct,
		RatePerSec:  base.Arrivals.RatePerSec,
		Seed:        base.Seed,
		Schemes:     spec.Schemes,
		ShardCounts: spec.Shards,
		Skews:       spec.Skews,
		Points:      make([]*ShardPoint, spec.NumPoints()),
	}

	type job struct {
		idx    int
		scheme string
		shards int
		skew   float64
	}
	jobs := make([]job, 0, spec.NumPoints())
	for _, s := range spec.Schemes {
		for _, sc := range spec.Shards {
			for _, sk := range spec.Skews {
				jobs = append(jobs, job{idx: len(jobs), scheme: s, shards: sc, skew: sk})
			}
		}
	}

	var progressMu sync.Mutex
	var errMu sync.Mutex
	var firstErr error
	runJob := func(j job) {
		cfg := base
		cfg.Shards = j.shards
		cfg.Keys.Skew = j.skew
		pal := ShardPalette()
		if j.scheme != ShardAdaptive {
			pal = []shard.Scheme{{Name: j.scheme, Mk: SchemeFactory(j.scheme)}}
		}
		res, err := shard.Run(cfg, pal, nil)
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("shard point %s/%d-shards/s=%.1f: %w", j.scheme, j.shards, j.skew, err)
			}
			errMu.Unlock()
			return
		}
		report.Points[j.idx] = &ShardPoint{Scheme: j.scheme, Shards: j.shards, Skew: j.skew, Result: res}
		if progress != nil {
			progressMu.Lock()
			fmt.Fprintf(progress, "  shard %-10s shards=%-3d s=%.1f achieved=%9.0f/s dropped=%-5d switches=%d\n",
				j.scheme, j.shards, j.skew, res.Service.AchievedPerSec, res.Service.Dropped, len(res.Switches))
			progressMu.Unlock()
		}
	}

	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			runJob(j)
			if firstErr != nil {
				return nil, firstErr
			}
		}
		return report, nil
	}

	var (
		panicMu  sync.Mutex
		panicVal any
	)
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
					}()
					runJob(j)
				}()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return report, nil
}

// point returns (scheme index, shard-count index, skew index).
func (r *ShardReport) point(si, ci, ki int) *ShardPoint {
	return r.Points[(si*len(r.ShardCounts)+ci)*len(r.Skews)+ki]
}

// WriteText renders the sweep: the scale-out panels (achieved throughput,
// drop rate, p99 sojourn of the standard class — {shard count, skew} down
// the rows, schemes across the columns), the adaptive settling summary
// (per-shard final schemes, the heterogeneity evidence), and the switch
// traces.
func (r *ShardReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# sharded scale-out sweep — %d servers, %d-key store, %d requests at %.3g/s, cross %d%%, queue cap %d, seed %d\n",
		r.Servers, r.Universe, r.Requests, r.RatePerSec, r.CrossPct, r.QueueCap, r.Seed)

	header := func(title string) {
		fmt.Fprintf(w, "\n## %s\n%8s %6s", title, "shards", "skew")
		for _, s := range r.Schemes {
			fmt.Fprintf(w, " %12s", s)
		}
		fmt.Fprintln(w)
	}
	panel := func(title string, cell func(p *ShardPoint) float64, format string) {
		header(title)
		for ci, sc := range r.ShardCounts {
			for ki, sk := range r.Skews {
				fmt.Fprintf(w, "%8d %6.1f", sc, sk)
				for si := range r.Schemes {
					fmt.Fprintf(w, " "+format, cell(r.point(si, ci, ki)))
				}
				fmt.Fprintln(w)
			}
		}
	}

	panel("achieved throughput (req/s)",
		func(p *ShardPoint) float64 { return p.Result.Service.AchievedPerSec }, "%12.0f")
	panel("drop rate (% of arrivals)",
		func(p *ShardPoint) float64 {
			return 100 * float64(p.Result.Service.Dropped) / float64(p.Result.Service.Requests)
		}, "%12.2f")
	if len(r.Points) > 0 && r.Points[0] != nil {
		for ci := range r.Points[0].Result.Service.Classes {
			ci := ci
			panel(fmt.Sprintf("%s sojourn p99 (us, priority %d)", r.Points[0].Result.Service.Classes[ci].Class, ci),
				func(p *ShardPoint) float64 {
					return obs.Usec(p.Result.Service.Classes[ci].Sojourn.P99Cycles)
				}, "%12.1f")
		}
	}

	fmt.Fprintf(w, "\n## adaptive settling (per-shard final schemes)\n")
	for si, s := range r.Schemes {
		if s != ShardAdaptive {
			continue
		}
		for ci, sc := range r.ShardCounts {
			for ki, sk := range r.Skews {
				p := r.point(si, ci, ki)
				final := map[string]int{}
				for _, sh := range p.Result.Shards {
					final[sh.Final]++
				}
				fmt.Fprintf(w, "  shards=%-3d s=%.1f switches=%-4d final:", sc, sk, len(p.Result.Switches))
				for _, rung := range ShardPalette() {
					if n := final[rung.Name]; n > 0 {
						fmt.Fprintf(w, " %s×%d", rung.Name, n)
					}
				}
				fmt.Fprintln(w)
			}
		}
	}

	fmt.Fprintf(w, "\n## switch traces (adaptive points with switches)\n")
	for si, s := range r.Schemes {
		if s != ShardAdaptive {
			continue
		}
		for ci := range r.ShardCounts {
			for ki := range r.Skews {
				p := r.point(si, ci, ki)
				if len(p.Result.Switches) == 0 {
					continue
				}
				fmt.Fprintf(w, "  shards=%d s=%.1f:\n", p.Shards, p.Skew)
				for _, sw := range p.Result.Switches {
					fmt.Fprintf(w, "    %12d cy  shard %-3d %s -> %s\n", sw.AtCycles, sw.Shard, sw.From, sw.To)
				}
			}
		}
	}

	fmt.Fprintf(w, "\n## per-point detail\n")
	for si := range r.Schemes {
		for ci := range r.ShardCounts {
			for ki := range r.Skews {
				p := r.point(si, ci, ki)
				fmt.Fprintf(w, "\n### %s, %d shards, skew %.1f (cross-shard tx: %d)\n",
					p.Scheme, p.Shards, p.Skew, p.Result.CrossTx)
				p.Result.Service.WriteText(w)
			}
		}
	}
}
