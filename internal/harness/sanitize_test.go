package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"hrwle/internal/service"
)

// serveSanitizeSchemes is every scheme the service workloads can run under:
// the default sweep set plus the remaining RW-LE variants and the
// non-eliding baseline — the sanitizer must hold across all of them.
func serveSanitizeSchemes() []string {
	return []string{
		"RW-LE_OPT", "RW-LE_PES", "RW-LE_FAIR", "RW-LE_SPLIT",
		"HLE", "BRLock", "RWL", "SGL",
	}
}

// kneeRate picks the middle of a workload's calibrated rate grid — the
// grids straddle the saturation knee, so the midpoint is the contended
// regime where speculation, fallback and quiescence all fire.
func kneeRate(t *testing.T, workload string) (service.Config, float64) {
	t.Helper()
	spec, err := DefaultServeSpec(workload)
	if err != nil {
		t.Fatal(err)
	}
	return spec.Base, spec.Rates[len(spec.Rates)/2]
}

// TestServeSanitizerClean race-checks every scheme on every service
// workload at its knee rate: thousands of production-shaped critical
// sections with real reader/writer mixes, suspension windows and fallback
// transitions must produce zero happens-before reports.
func TestServeSanitizerClean(t *testing.T) {
	for _, wl := range ServeWorkloads() {
		base, rate := kneeRate(t, wl)
		base.Requests = 400
		base.Arrivals.RatePerSec = rate
		for _, scheme := range serveSanitizeSchemes() {
			t.Run(fmt.Sprintf("%s/%s", wl, scheme), func(t *testing.T) {
				_, rep, err := service.RunPointSanitized(base, scheme, SchemeFactory(scheme))
				if err != nil {
					t.Fatal(err)
				}
				if rep.Racy() {
					var b bytes.Buffer
					rep.WriteText(&b)
					t.Fatalf("sanitizer reported race(s) on a correct scheme:\n%s", b.String())
				}
				if rep.Events == 0 {
					t.Fatal("sanitizer saw no events — access tracing not enabled?")
				}
			})
		}
	}
}

// TestServeSanitizerZeroCost is the zero-cost-when-disabled guard at the
// service layer: a sanitized run must report byte-identical point metrics
// — including sim_cycles (MakespanCycles) — to a plain run of the same
// configuration, and be deterministic across repeats. The sanitizer is an
// observer; if attaching it ever shifted a single virtual cycle, every
// sanitized result would stop being representative.
func TestServeSanitizerZeroCost(t *testing.T) {
	base, rate := kneeRate(t, "hashmap")
	base.Requests = 400
	base.Arrivals.RatePerSec = rate
	scheme := "RW-LE_OPT"

	plain, _, err := service.RunPoint(base, scheme, SchemeFactory(scheme), nil)
	if err != nil {
		t.Fatal(err)
	}
	san1, rep1, err := service.RunPointSanitized(base, scheme, SchemeFactory(scheme))
	if err != nil {
		t.Fatal(err)
	}
	san2, rep2, err := service.RunPointSanitized(base, scheme, SchemeFactory(scheme))
	if err != nil {
		t.Fatal(err)
	}

	enc := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(enc(plain), enc(san1)) {
		t.Errorf("sanitizer perturbed the point metrics:\nplain     %s\nsanitized %s",
			enc(plain), enc(san1))
	}
	if plain.MakespanCycles != san1.MakespanCycles {
		t.Errorf("sim_cycles drifted: plain %d, sanitized %d",
			plain.MakespanCycles, san1.MakespanCycles)
	}
	if !bytes.Equal(enc(san1), enc(san2)) || !bytes.Equal(enc(rep1), enc(rep2)) {
		t.Error("sanitized run not deterministic across repeats")
	}
}
