package harness

import (
	"sync"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
	"hrwle/internal/tpcc"
)

// RunTPCC measures one Fig. 10 point: the TPC-C mix with writePct% update
// transactions over an in-memory store.
func RunTPCC(ctx PointCtx, threads, writePct, totalOps int, seed uint64, mk rwlock.Factory) Result {
	cfg := tpcc.DefaultConfig()
	m := machine.New(machine.Config{
		CPUs:     threads,
		MemWords: cfg.MemWords(int64(totalOps)),
		Seed:     seed,
	})
	ctx.observe(m)
	sys := htm.NewSystem(m, htm.Config{})
	lock := mk(sys)
	db := tpcc.Build(m, cfg)
	wl := &tpcc.Workload{DB: db, WritePct: writePct}

	opsPerThread := totalOps / threads
	if opsPerThread == 0 {
		opsPerThread = 1
	}
	cycles := m.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			wl.Step(lock, th, c)
		}
	})
	return Result{Cycles: cycles, B: stats.Merge(sys.Stats(threads), cycles)}
}

// tpccFigure reports speedup relative to SGL at one thread (the paper's
// Fig. 10 normalization: absolute throughput collapses by over an order of
// magnitude across the write mixes, hindering visualization).
//
//simlint:allow determinism baselineMu only guards the lazily computed SGL@1 baseline cache under a parallel sweep; the cached value is deterministic (own machine, fixed seed) regardless of which worker computes it
func tpccFigure() *FigureSpec {
	// The SGL@1 baseline is computed lazily once per writePct and shared by
	// every point of the figure. Under a parallel sweep several points may
	// ask for it at once, so the map is mutex-guarded; the computed value is
	// deterministic (own machine, fixed seed), so it does not matter which
	// worker computes it first.
	var baselineMu sync.Mutex
	baseline := map[int]float64{} // writePct → SGL@1 ops/s
	f := &FigureSpec{
		ID:        "fig10",
		Title:     "TPC-C: speedup vs SGL at 1 thread",
		Schemes:   []string{"RW-LE_OPT", "RW-LE_PES", "HLE", "BRLock", "RWL", "SGL"},
		Threads:   []int{1, 4, 8, 16, 32, 64, 80},
		WritePcts: []int{1, 10, 50},
		TimeLabel: "speedup vs SGL@1 thread",
	}
	f.Point = func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
		ops := int(3000 * scale)
		baselineMu.Lock()
		b, ok := baseline[writePct]
		if !ok {
			// The baseline machine reports to this point's observer too (it
			// is replaced by the measured run below, matching the serial
			// exporter's last-machine-wins behavior).
			base := RunTPCC(ctx, 1, writePct, ops, uint64(15000+writePct), SchemeFactory("SGL"))
			b = base.Throughput()
			baseline[writePct] = b
		}
		baselineMu.Unlock()
		r := RunTPCC(ctx, threads, writePct, ops, uint64(15000+threads*13+writePct), SchemeFactory(scheme))
		if b > 0 {
			r.Speedup = r.Throughput() / b
		}
		return r
	}
	return f
}

func init() { registerAppFigure(tpccFigure()) }
