package harness

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
	"hrwle/internal/tpcc"
)

// RunTPCC measures one Fig. 10 point: the TPC-C mix with writePct% update
// transactions over an in-memory store.
func RunTPCC(threads, writePct, totalOps int, seed uint64, mk rwlock.Factory) Result {
	cfg := tpcc.DefaultConfig()
	m := machine.New(machine.Config{
		CPUs:     threads,
		MemWords: cfg.MemWords(int64(totalOps)),
		Seed:     seed,
	})
	observeMachine(m)
	sys := htm.NewSystem(m, htm.Config{})
	lock := mk(sys)
	db := tpcc.Build(m, cfg)
	wl := &tpcc.Workload{DB: db, WritePct: writePct}

	opsPerThread := totalOps / threads
	if opsPerThread == 0 {
		opsPerThread = 1
	}
	cycles := m.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			wl.Step(lock, th, c)
		}
	})
	return Result{Cycles: cycles, B: stats.Merge(sys.Stats(threads), cycles)}
}

// tpccFigure reports speedup relative to SGL at one thread (the paper's
// Fig. 10 normalization: absolute throughput collapses by over an order of
// magnitude across the write mixes, hindering visualization).
func tpccFigure() *FigureSpec {
	baseline := map[int]float64{} // writePct → SGL@1 ops/s
	f := &FigureSpec{
		ID:        "fig10",
		Title:     "TPC-C: speedup vs SGL at 1 thread",
		Schemes:   []string{"RW-LE_OPT", "RW-LE_PES", "HLE", "BRLock", "RWL", "SGL"},
		Threads:   []int{1, 4, 8, 16, 32, 64, 80},
		WritePcts: []int{1, 10, 50},
		TimeLabel: "speedup vs SGL@1 thread",
	}
	f.Point = func(scheme string, threads, writePct int, scale float64) Result {
		ops := int(3000 * scale)
		if _, ok := baseline[writePct]; !ok {
			base := RunTPCC(1, writePct, ops, uint64(15000+writePct), SchemeFactory("SGL"))
			baseline[writePct] = base.Throughput()
		}
		r := RunTPCC(threads, writePct, ops, uint64(15000+threads*13+writePct), SchemeFactory(scheme))
		if b := baseline[writePct]; b > 0 {
			r.Speedup = r.Throughput() / b
		}
		return r
	}
	return f
}

func init() { registerAppFigure(tpccFigure()) }
