package harness

import (
	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/rwlock"
)

// newCoreLock builds an RW-LE variant with explicit budgets; used by the
// fairness and ablation figures.
func newCoreLock(s *htm.System, maxHTM, maxROT int, fair bool, name string) rwlock.Lock {
	return core.New(s, core.Options{MaxHTM: maxHTM, MaxROT: maxROT, Fair: fair, Name: name})
}

// Registry returns every figure this repository can regenerate, keyed by ID.
func Registry() map[string]*FigureSpec {
	figs := map[string]*FigureSpec{}
	for _, f := range SensitivityFigures() {
		figs[f.ID] = f
	}
	for _, f := range []*FigureSpec{FairnessFigure(), RetriesFigure(), SplitFigure()} {
		figs[f.ID] = f
	}
	for _, f := range ApplicationFigures() {
		figs[f.ID] = f
	}
	for _, f := range ExtensionFigures() {
		figs[f.ID] = f
	}
	return figs
}
