package harness

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	figs := Registry()
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "retries", "split"} {
		f, ok := figs[id]
		if !ok {
			t.Fatalf("figure %s missing from registry", id)
		}
		if f.Title == "" || f.Point == nil || len(f.Schemes) == 0 || len(f.Threads) == 0 || len(f.WritePcts) == 0 {
			t.Errorf("figure %s incompletely specified", id)
		}
	}
}

func TestSchemeFactoryNames(t *testing.T) {
	for _, name := range []string{"RW-LE_OPT", "RW-LE_PES", "RW-LE_FAIR", "RW-LE_SPLIT", "RW-LE_basic", "HLE", "BRLock", "RWL", "SGL"} {
		if SchemeFactory(name) == nil {
			t.Errorf("no factory for %s", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown scheme did not panic")
		}
	}()
	SchemeFactory("nope")
}

// TestEveryFigurePointRuns exercises one tiny point of every figure with
// every scheme — an end-to-end integration test of the whole stack.
func TestEveryFigurePointRuns(t *testing.T) {
	figs := Registry()
	for _, id := range SortedIDs(figs) {
		f := figs[id]
		for _, scheme := range f.Schemes {
			r := f.Point(PointCtx{}, scheme, 2, f.WritePcts[0], 0.01)
			if r.Cycles <= 0 {
				t.Errorf("%s/%s: no virtual time elapsed", id, scheme)
			}
			if r.B.Ops <= 0 {
				t.Errorf("%s/%s: no operations completed", id, scheme)
			}
		}
	}
}

func TestPointDeterminism(t *testing.T) {
	f := Registry()["fig3"]
	a := f.Point(PointCtx{}, "RW-LE_OPT", 4, 10, 0.02)
	b := f.Point(PointCtx{}, "RW-LE_OPT", 4, 10, 0.02)
	if a.Cycles != b.Cycles || a.B != b.B {
		t.Errorf("same point differs across runs: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestRunAndPrint(t *testing.T) {
	f := Registry()["fig3"]
	spec := *f
	spec.Threads = []int{2}
	spec.WritePcts = []int{10}
	spec.Schemes = []string{"RW-LE_OPT", "SGL"}
	results := spec.Run(0.01, nil)
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	var sb strings.Builder
	Print(&sb, &spec, results)
	out := sb.String()
	for _, want := range []string{"fig3", "RW-LE_OPT", "SGL", "abort breakdown", "commit breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed figure missing %q", want)
		}
	}
}

func TestRWLEBeatsHLEOnCapacityWorkload(t *testing.T) {
	// The paper's headline claim at one representative point: fig. 3
	// (high capacity, high contention), read-dominated, 8 threads.
	f := Registry()["fig3"]
	rwle := f.Point(PointCtx{}, "RW-LE_OPT", 8, 10, 0.1)
	hle := f.Point(PointCtx{}, "HLE", 8, 10, 0.1)
	if rwle.Cycles >= hle.Cycles {
		t.Errorf("RW-LE (%d cycles) not faster than HLE (%d cycles) on the capacity workload", rwle.Cycles, hle.Cycles)
	}
}

// TestAdaptiveStateExposed pins that the self-tuning scheme's controller
// state reaches the Result (and from there the metrics JSON): an
// RW-LE_ADAPT point reports a budget and win rate, a fixed-budget point
// reports nothing.
func TestAdaptiveStateExposed(t *testing.T) {
	p := HashmapParams{
		Buckets: 1, Items: 200, WritePct: 50,
		Threads: 8, TotalOps: 2000, Seed: 42,
	}
	r := RunHashmap(PointCtx{}, p, extSchemeFactory("RW-LE_ADAPT"))
	if r.Adaptive == nil {
		t.Fatal("RW-LE_ADAPT point has no Adaptive state")
	}
	if r.Adaptive.Budget < 0 || r.Adaptive.Budget > 8 {
		t.Errorf("adaptive budget = %d, outside [0, 8]", r.Adaptive.Budget)
	}
	if r.Adaptive.WinRate10 < -1 || r.Adaptive.WinRate10 > 10 {
		t.Errorf("adaptive win rate = %d tenths, outside [-1, 10]", r.Adaptive.WinRate10)
	}
	if r := RunHashmap(PointCtx{}, p, SchemeFactory("RW-LE_OPT")); r.Adaptive != nil {
		t.Errorf("fixed-budget point reports adaptive state %+v", r.Adaptive)
	}
}
