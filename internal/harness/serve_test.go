package harness

import (
	"bytes"
	"strings"
	"testing"

	"hrwle/internal/service"
)

func tinyServeSpec(t *testing.T) ServeSpec {
	t.Helper()
	spec, err := DefaultServeSpec("hashmap")
	if err != nil {
		t.Fatal(err)
	}
	spec.Base.Requests = 400
	spec.Schemes = []string{"RW-LE_OPT", "SGL"}
	spec.Rates = []float64{5e5, 5e6}
	return spec
}

// TestServeParallelIdentical: the serve sweep report is byte-identical at
// any worker count — point placement is by index, not completion order.
func TestServeParallelIdentical(t *testing.T) {
	serial, err := RunServe(tinyServeSpec(t), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunServe(tinyServeSpec(t), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("worker count changed the serve report")
	}
}

// TestServeReportText: the text report carries the saturation panels and
// per-class rows for every configured scheme.
func TestServeReportText(t *testing.T) {
	rep, err := RunServe(tinyServeSpec(t), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"achieved throughput", "drop rate",
		"interactive sojourn p99", "standard sojourn p99", "batch sojourn p99",
		"RW-LE_OPT", "SGL", "per-point detail",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serve text report missing %q", want)
		}
	}
}

// TestDefaultServeSpecs: every advertised workload has a calibrated
// default grid of at least six rates and validates cleanly.
func TestDefaultServeSpecs(t *testing.T) {
	for _, wl := range ServeWorkloads() {
		spec, err := DefaultServeSpec(wl)
		if err != nil {
			t.Fatal(err)
		}
		if len(spec.Rates) < 6 {
			t.Errorf("%s: default grid has %d rates, want >= 6", wl, len(spec.Rates))
		}
		if len(spec.Schemes) < 3 {
			t.Errorf("%s: default scheme set has %d entries, want >= 3", wl, len(spec.Schemes))
		}
		cfg := spec.Base
		cfg.Arrivals.RatePerSec = spec.Rates[0]
		if _, err := service.GenerateSchedule(cfg); err != nil {
			t.Errorf("%s: default config invalid: %v", wl, err)
		}
	}
	if _, err := DefaultServeSpec("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
