package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"hrwle/internal/obs"
	"hrwle/internal/service"
)

// ProfSpec describes one hrwle-prof run: every scheme profiled against the
// same workload at one offered load, with the virtual-time window width
// both profiling collectors bucket into.
type ProfSpec struct {
	Base         service.Config
	Schemes      []string
	RatePerSec   float64
	WindowCycles int64
}

// DefaultProfWindow is the default profiling window width: ~71 us of
// virtual time, fine enough to resolve MMPP bursts on the default grids
// without drowning the text sparklines.
const DefaultProfWindow = 250_000

// DefaultProfSpec returns the calibrated profile point for a workload: the
// default serve schemes at the sweep grid's saturation-knee load (the
// fourth of the six calibrated rates — the first post-knee point for the
// slowest default scheme, where the schemes' cycle mixes diverge most).
func DefaultProfSpec(workload string) (ProfSpec, error) {
	serve, err := DefaultServeSpec(workload)
	if err != nil {
		return ProfSpec{}, err
	}
	return ProfSpec{
		Base:         serve.Base,
		Schemes:      serve.Schemes,
		RatePerSec:   serve.Rates[3],
		WindowCycles: DefaultProfWindow,
	}, nil
}

// ProfReport is the exportable result of one profile run. Points are
// index-aligned with Schemes regardless of worker count.
type ProfReport struct {
	Workload     string               `json:"workload"`
	Process      string               `json:"process"`
	Servers      int                  `json:"servers"`
	QueueCap     int                  `json:"queue_cap"`
	Requests     int                  `json:"requests"`
	Seed         uint64               `json:"seed"`
	RatePerSec   float64              `json:"rate_per_sec"`
	WindowCycles int64                `json:"window_cycles"`
	Schemes      []string             `json:"schemes"`
	Points       []*obs.ProfileReport `json:"points"`
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *ProfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunProf profiles every scheme of the spec at the given offered load on a
// bounded worker pool (workers <= 1 means serial). Each point builds its
// own machine from the same seed with its own profiler, so the report is
// bit-identical at any worker count.
//
//simlint:allow determinism the worker pool parallelizes independent profile points across host cores; each point runs its own machine and profiler from a fixed seed, so the report is identical at any worker count
//simlint:allow abortflow the worker recover propagates point panics across the pool join; the pooled abort signal never reaches it (htm.Thread.Try consumes it inside the simulation) and panicVal is re-panicked verbatim after wg.Wait
func RunProf(spec ProfSpec, workers int, progress io.Writer) (*ProfReport, error) {
	base := spec.Base
	if spec.WindowCycles < 1 {
		spec.WindowCycles = DefaultProfWindow
	}
	report := &ProfReport{
		Workload:     base.Workload,
		Process:      base.Arrivals.Process.String(),
		Servers:      base.Servers,
		QueueCap:     base.QueueCap,
		Requests:     base.Requests,
		Seed:         base.Seed,
		RatePerSec:   spec.RatePerSec,
		WindowCycles: spec.WindowCycles,
		Schemes:      spec.Schemes,
		Points:       make([]*obs.ProfileReport, len(spec.Schemes)),
	}

	var progressMu sync.Mutex
	var errMu sync.Mutex
	var firstErr error
	runJob := func(idx int, scheme string) {
		cfg := base
		cfg.Arrivals.RatePerSec = spec.RatePerSec
		prof := obs.NewProfile(spec.WindowCycles, len(cfg.Classes))
		m, _, err := service.RunPointProfiled(cfg, scheme, SchemeFactory(scheme), nil, prof)
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("profile point %s@%.0f/s: %w", scheme, spec.RatePerSec, err)
			}
			errMu.Unlock()
			return
		}
		rep := prof.Report(scheme, cfg.Workload)
		rep.Service = m
		report.Points[idx] = rep
		if progress != nil {
			got, want := rep.Cycles.Conservation()
			progressMu.Lock()
			fmt.Fprintf(progress, "  prof %s %-12s achieved=%9.0f/s windows=%d attributed=%d/%d\n",
				base.Workload, scheme, m.AchievedPerSec, len(rep.Timeline.Windows), got, want)
			progressMu.Unlock()
		}
	}

	if workers > len(spec.Schemes) {
		workers = len(spec.Schemes)
	}
	if workers <= 1 {
		for i, s := range spec.Schemes {
			runJob(i, s)
			if firstErr != nil {
				return nil, firstErr
			}
		}
		return report, nil
	}

	// Same panic discipline as RunServe: capture the first worker panic
	// and re-raise it on the caller after the pool drains.
	var (
		panicMu  sync.Mutex
		panicVal any
	)
	type job struct {
		idx    int
		scheme string
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
					}()
					runJob(j.idx, j.scheme)
				}()
			}
		}()
	}
	for i, s := range spec.Schemes {
		ch <- job{i, s}
	}
	close(ch)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return report, nil
}

// WriteText renders the profile run: a cross-scheme cycle-breakdown
// comparison table (the EXPERIMENTS.md "cycles at the knee" table), then
// the per-scheme attribution and sparkline panels.
func (r *ProfReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# virtual-time profile — %s @ %.0f req/s (%s arrivals, %d servers, queue cap %d, %d requests, seed %d, window %d cycles)\n",
		r.Workload, r.RatePerSec, r.Process, r.Servers, r.QueueCap, r.Requests, r.Seed, r.WindowCycles)

	fmt.Fprintf(w, "\n## cycle breakdown (%% of CPUs × sim_cycles)\n%-14s", "category")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for c := 0; c < obs.NumCycleCats; c++ {
		fmt.Fprintf(w, "%-14s", obs.CycleCat(c).String())
		for _, p := range r.Points {
			pct := 0.0
			if p != nil && p.Cycles.TotalCycles > 0 {
				pct = 100 * float64(p.Cycles.Totals[c]) / float64(p.Cycles.TotalCycles)
			}
			fmt.Fprintf(w, " %11.2f%%", pct)
		}
		fmt.Fprintln(w)
	}

	for _, p := range r.Points {
		if p != nil {
			p.WriteText(w)
		}
	}
}
