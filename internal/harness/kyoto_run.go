package harness

import (
	"hrwle/internal/htm"
	"hrwle/internal/kyoto"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

// kyotoScheme resolves the Fig. 9 scheme set: "Orig" is Kyoto Cabinet's
// original locking (pthread-style outer RWL + real inner mutexes); HLE
// elides both lock levels (inner mutexes become subscriptions); everything
// else elides or implements the outer lock and keeps the inner mutexes
// real.
func kyotoScheme(name string) (rwlock.Factory, kyoto.InnerPolicy) {
	if name == "Orig" {
		return func(s *htm.System) rwlock.Lock { return locks.NewRWL(s) }, kyoto.InnerReal
	}
	pol := kyoto.InnerReal
	if name == "HLE" {
		pol = kyoto.InnerElide
	}
	return SchemeFactory(name), pol
}

// RunKyoto measures one Fig. 9 point of the wicked workload.
func RunKyoto(ctx PointCtx, threads, writePct, totalOps int, seed uint64, scheme string) Result {
	cfg := kyoto.DefaultConfig()
	m := machine.New(machine.Config{
		CPUs:     threads,
		MemWords: cfg.MemWords(),
		Seed:     seed,
	})
	ctx.observe(m)
	sys := htm.NewSystem(m, htm.Config{})
	mk, pol := kyotoScheme(scheme)
	lock := mk(sys)
	db := kyoto.New(m, cfg)
	db.Populate()
	w := &kyoto.Wicked{DB: db, WritePct: writePct, Inner: pol}

	opsPerThread := totalOps / threads
	if opsPerThread == 0 {
		opsPerThread = 1
	}
	cycles := m.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			w.Step(lock, th, c)
		}
	})
	return Result{Cycles: cycles, B: stats.Merge(sys.Stats(threads), cycles)}
}

func kyotoFigure() *FigureSpec {
	f := &FigureSpec{
		ID:        "fig9",
		Title:     "Kyoto Cabinet CacheDB, wicked workload (throughput; w% = outer write-lock rate)",
		Schemes:   []string{"RW-LE_OPT", "RW-LE_PES", "HLE", "BRLock", "Orig", "SGL"},
		Threads:   []int{1, 4, 8, 16, 32, 64},
		WritePcts: []int{1, 5, 10},
		TimeLabel: "throughput (ops/s)",
	}
	f.Point = func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
		return RunKyoto(ctx, threads, writePct, int(6000*scale),
			uint64(12000+threads*13+writePct), scheme)
	}
	return f
}

func init() { registerAppFigure(kyotoFigure()) }
