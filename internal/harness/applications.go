package harness

// ApplicationFigures returns Figs. 8-10 (STMBench7, Kyoto Cabinet, TPC-C).
// The individual runners live next to their applications and are appended
// here as they register.
func ApplicationFigures() []*FigureSpec {
	return appFigures
}

var appFigures []*FigureSpec

func registerAppFigure(f *FigureSpec) { appFigures = append(appFigures, f) }
