package harness

import (
	"hrwle/internal/hashmap"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/obs"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

// HashmapParams configures one point of the §4.1 sensitivity study.
type HashmapParams struct {
	Buckets  int64
	Items    int64 // initial items per bucket
	WritePct int
	Threads  int
	TotalOps int // fixed total work, split across threads (paper plots time)
	Seed     uint64
	Paging   machine.PagingConfig
	HTM      htm.Config
}

// memWords sizes simulated memory for the point: bucket array + node churn
// headroom.
func (p *HashmapParams) memWords() int64 {
	universe := p.Buckets * p.Items
	// Line-aligned nodes: 16 words each; 1.5x headroom for churn and
	// per-thread spare nodes, plus the bucket array and lock metadata.
	return universe*16*3/2 + p.Buckets + int64(p.Threads)*64 + 1<<14
}

// RunHashmap measures one sensitivity point under the given scheme.
func RunHashmap(ctx PointCtx, p HashmapParams, mk rwlock.Factory) Result {
	m := machine.New(machine.Config{
		CPUs:     p.Threads,
		MemWords: p.memWords(),
		Seed:     p.Seed,
		Paging:   p.Paging,
	})
	ctx.observe(m)
	sys := htm.NewSystem(m, p.HTM)
	lock := mk(sys)
	h := hashmap.New(m, p.Buckets)
	h.Populate(p.Items)

	universe := int(p.Buckets * p.Items)
	opsPerThread := p.TotalOps / p.Threads
	if opsPerThread == 0 {
		opsPerThread = 1
	}
	cycles := m.Run(p.Threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		// The critical-section closures are hoisted out of the op loop and
		// communicate through captured locals: closures passed through the
		// rwlock.Lock interface escape, so per-op literals would allocate on
		// every operation of the sweep's hottest loop.
		var spare, gone machine.Addr
		var key uint64
		used := false
		insertCS := func() { used = h.Insert(th, key, key, spare) }
		removeCS := func() { gone = h.Remove(th, key) }
		lookupCS := func() { h.Lookup(th, key) }
		for i := 0; i < opsPerThread; i++ {
			key = uint64(c.Intn(universe))
			if c.Intn(100) < p.WritePct {
				// Write critical section: insert or remove, 50/50, to
				// keep the population in steady state.
				if c.Intn(2) == 0 {
					if spare == 0 {
						spare = h.PrepareNode(th)
					}
					used = false
					lock.Write(th, insertCS)
					if used {
						spare = 0
					}
				} else {
					gone = 0
					lock.Write(th, removeCS)
					if gone != 0 {
						h.Recycle(th, gone)
					}
				}
			} else {
				lock.Read(th, lookupCS)
			}
			th.St.Ops++
		}
	})
	b := stats.Merge(sys.Stats(p.Threads), cycles)
	r := Result{Cycles: cycles, B: b}
	if al, ok := lock.(interface {
		AdaptiveState() (budget, winRate10 int, ok bool)
	}); ok {
		if budget, rate, on := al.AdaptiveState(); on {
			r.Adaptive = &obs.AdaptiveState{Budget: budget, WinRate10: rate}
		}
	}
	return r
}

// sensitivityFigure builds a figure spec for one capacity×contention
// scenario of the paper's §4.1.
func sensitivityFigure(id, title string, buckets, items int64, baseOps int, paging machine.PagingConfig) *FigureSpec {
	return &FigureSpec{
		ID:        id,
		Title:     title,
		Schemes:   []string{"RW-LE_OPT", "RW-LE_PES", "HLE", "BRLock", "RWL", "SGL"},
		Threads:   []int{2, 4, 8, 16, 32, 64, 80},
		WritePcts: []int{1, 10, 90},
		TimeLabel: "execution time (s)",
		Point: func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
			p := HashmapParams{
				Buckets:  buckets,
				Items:    items,
				WritePct: writePct,
				Threads:  threads,
				TotalOps: int(float64(baseOps) * scale),
				Seed:     uint64(1000 + threads*13 + writePct),
				Paging:   paging,
			}
			return RunHashmap(ctx, p, SchemeFactory(scheme))
		},
	}
}

// fig6Paging returns the VM-subsystem stress configuration for the
// low-capacity/low-contention scenario: the residency limit is set below
// the hashmap footprint so demand paging stays active throughout the run,
// reproducing the page-fault aborts the paper attributes to the VM
// subsystem in this scenario.
func fig6Paging(buckets, items int64) machine.PagingConfig {
	footprintPages := (buckets*items*16 + buckets) / 512
	return machine.PagingConfig{
		Enabled:       true,
		PageWords:     512,
		ResidentLimit: footprintPages * 3 / 4,
		TLBEntries:    128,
	}
}

// lowContentionBuckets is the bucket count for the low-contention
// scenarios. The paper uses 100,000 on a 512 GB POWER8; this default is
// scaled to container memory while keeping per-op conflict probability
// negligible (see EXPERIMENTS.md).
const lowContentionBuckets = 4096

// SensitivityFigures returns Figs. 3-6.
func SensitivityFigures() []*FigureSpec {
	return []*FigureSpec{
		sensitivityFigure("fig3", "Hashmap: high capacity, high contention (1 bucket × 200 items)",
			1, 200, 8000, machine.PagingConfig{}),
		sensitivityFigure("fig4", "Hashmap: high capacity, low contention (4096 buckets × 200 items)",
			lowContentionBuckets, 200, 8000, machine.PagingConfig{}),
		sensitivityFigure("fig5", "Hashmap: low capacity, high contention (1 bucket × 50 items)",
			1, 50, 16000, machine.PagingConfig{}),
		sensitivityFigure("fig6", "Hashmap: low capacity, low contention (4096 buckets × 50 items, VM stress)",
			lowContentionBuckets, 50, 16000, fig6Paging(lowContentionBuckets, 50)),
	}
}

// FairnessFigure returns Fig. 7: the fairness stress — the fig. 3 scenario
// with ROTs disabled (stressing the non-speculative fallback, the main
// source of reader starvation), comparing base RW-LE against the fair
// variant of §3.3.
func FairnessFigure() *FigureSpec {
	mkNoROT := func(fair bool, name string) rwlock.Factory {
		return func(s *htm.System) rwlock.Lock {
			return newCoreLock(s, 5, 0, fair, name)
		}
	}
	f := &FigureSpec{
		ID:        "fig7",
		Title:     "Fairness stress: fig. 3 scenario, ROTs disabled (RW-LE vs RW-LE_FAIR)",
		Schemes:   []string{"RW-LE", "RW-LE_FAIR"},
		Threads:   []int{2, 4, 8, 16, 32, 64, 80},
		WritePcts: []int{10, 50, 90},
		TimeLabel: "execution time (s)",
	}
	f.Point = func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
		p := HashmapParams{
			Buckets:  1,
			Items:    200,
			WritePct: writePct,
			Threads:  threads,
			TotalOps: int(8000 * scale),
			Seed:     uint64(7000 + threads*13 + writePct),
		}
		return RunHashmap(ctx, p, mkNoROT(scheme == "RW-LE_FAIR", scheme))
	}
	return f
}

// RetriesFigure returns the §4.1 retry-budget ablation: the paper reports
// that 5 attempts per speculative path is best on average; this sweeps the
// budget on the fig. 4 workload.
func RetriesFigure() *FigureSpec {
	budgets := []int{1, 2, 5, 8, 16}
	schemes := make([]string, len(budgets))
	for i, b := range budgets {
		schemes[i] = schemeForBudget(b)
	}
	f := &FigureSpec{
		ID:        "retries",
		Title:     "Ablation: HTM/ROT retry budget (fig. 4 workload)",
		Schemes:   schemes,
		Threads:   []int{8, 32, 80},
		WritePcts: []int{10},
		TimeLabel: "execution time (s)",
	}
	f.Point = func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
		budget := 0
		for _, b := range budgets {
			if schemeForBudget(b) == scheme {
				budget = b
			}
		}
		p := HashmapParams{
			Buckets: lowContentionBuckets, Items: 200, WritePct: writePct,
			Threads: threads, TotalOps: int(8000 * scale),
			Seed: uint64(9000 + threads*13 + budget),
		}
		return RunHashmap(ctx, p, func(s *htm.System) rwlock.Lock {
			return newCoreLock(s, budget, budget, false, scheme)
		})
	}
	return f
}

func schemeForBudget(b int) string {
	return map[int]string{1: "retry=1", 2: "retry=2", 5: "retry=5", 8: "retry=8", 16: "retry=16"}[b]
}

// SplitFigure returns the §3.3 split-lock ablation: the pseudo-code's
// unified wlock (the default) vs split NS/ROT locks with lazy ROT
// subscription, on the fig. 6 workload whose paging-induced transient
// aborts stress exactly the HTM/ROT interaction the optimization targets.
func SplitFigure() *FigureSpec {
	f := &FigureSpec{
		ID:        "split",
		Title:     "Ablation: unified lock word (default) vs split NS/ROT locks + lazy subscription (fig. 6 workload)",
		Schemes:   []string{"RW-LE_OPT", "RW-LE_SPLIT"},
		Threads:   []int{2, 8, 32, 80},
		WritePcts: []int{10, 90},
		TimeLabel: "execution time (s)",
	}
	f.Point = func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
		p := HashmapParams{
			Buckets: lowContentionBuckets, Items: 50, WritePct: writePct,
			Threads: threads, TotalOps: int(16000 * scale),
			Seed:   uint64(11000 + threads*13 + writePct),
			Paging: fig6Paging(lowContentionBuckets, 50),
		}
		return RunHashmap(ctx, p, SchemeFactory(scheme))
	}
	return f
}
