package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hrwle/internal/obs"
	"hrwle/internal/service"
)

// runPointCatching runs one profiled point, converting a simulation panic
// (e.g. the RW-LE_basic retry-storm watchdog) into a returned value so the
// caller can assert on the diagnostic.
func runPointCatching(cfg service.Config, scheme string, prof *obs.Profile) (m *obs.ServiceMetrics, err error, panicked any) {
	defer func() { panicked = recover() }()
	m, _, err = service.RunPointProfiled(cfg, scheme, SchemeFactory(scheme), nil, prof)
	return
}

// profTestConfig returns a small open-system point for profiler tests.
func profTestConfig(t *testing.T, workload string) (service.Config, float64) {
	t.Helper()
	spec, err := DefaultServeSpec(workload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Base
	cfg.Servers = 4
	cfg.Requests = 150
	return cfg, spec.Rates[3] // the knee rate: contention without full overload
}

// TestCycleConservationAllSchemes pins the tentpole invariant on every
// scheme × workload: the attributed cycles sum exactly to
// CPUs × sim_cycles, per CPU and per window.
//
// RW-LE_basic has no capacity fallback (Algorithm 1), so on workloads
// whose write sections overflow the HTM budget (kyoto, tpcc) the run must
// *fail fast* through the retry-storm watchdog rather than livelock; those
// points assert the diagnostic instead of the conservation invariant.
func TestCycleConservationAllSchemes(t *testing.T) {
	for _, wl := range ServeWorkloads() {
		cfg, rate := profTestConfig(t, wl)
		cfg.Arrivals.RatePerSec = rate
		for _, scheme := range AllSchemes() {
			prof := obs.NewProfile(100_000, len(cfg.Classes))
			m, err, panicked := runPointCatching(cfg, scheme, prof)
			if panicked != nil {
				msg := fmt.Sprint(panicked)
				if scheme == "RW-LE_basic" && strings.Contains(msg, "livelocked") {
					continue // the watchdog fired fast with its diagnostic, as designed
				}
				t.Fatalf("%s/%s: panic: %v", wl, scheme, panicked)
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", wl, scheme, err)
			}
			rep := prof.Report(scheme, wl)
			got, want := rep.Cycles.Conservation()
			if got != want {
				t.Errorf("%s/%s: attributed %d cycles, want CPUs×sim_cycles = %d (diff %d)",
					wl, scheme, got, want, got-want)
			}
			if exp := int64(cfg.Servers) * m.MakespanCycles; want != exp {
				t.Errorf("%s/%s: conservation target %d != servers×makespan %d", wl, scheme, want, exp)
			}
			// Per-CPU rows each cover the full run.
			for id, row := range rep.Cycles.PerCPU {
				var sum int64
				for _, v := range row {
					sum += v
				}
				if sum != m.MakespanCycles {
					t.Errorf("%s/%s: cpu %d attributed %d, want makespan %d", wl, scheme, id, sum, m.MakespanCycles)
				}
			}
			// Window cells sum back to the category totals.
			winSum := make([]int64, obs.NumCycleCats)
			for _, win := range rep.Cycles.Windows {
				for c, v := range win.Cycles {
					winSum[c] += v
				}
			}
			for c := range winSum {
				if winSum[c] != rep.Cycles.Totals[c] {
					t.Errorf("%s/%s: window sum for %s = %d, want total %d",
						wl, scheme, obs.CycleCat(c), winSum[c], rep.Cycles.Totals[c])
				}
			}
			// A served point must attribute some useful work.
			if rep.Cycles.Totals[obs.CatUseful]+rep.Cycles.Totals[obs.CatFallback] == 0 {
				t.Errorf("%s/%s: no useful or fallback cycles attributed", wl, scheme)
			}
		}
	}
}

// TestBasicWatchdogFailsFast pins the retry-storm watchdog: RW-LE_basic
// on a workload whose write sections overflow the HTM budget must die
// quickly with the livelock diagnostic, not spin to the virtual deadline.
func TestBasicWatchdogFailsFast(t *testing.T) {
	cfg, rate := profTestConfig(t, "kyoto")
	cfg.Arrivals.RatePerSec = rate
	prof := obs.NewProfile(100_000, len(cfg.Classes))
	_, _, panicked := runPointCatching(cfg, "RW-LE_basic", prof)
	if panicked == nil {
		t.Fatal("RW-LE_basic survived kyoto; the capacity-livelock watchdog never fired")
	}
	msg := fmt.Sprint(panicked)
	for _, want := range []string{"RW-LE_basic", "livelocked", "persistent aborts", "Algorithm 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("watchdog diagnostic %q missing %q", msg, want)
		}
	}
}

// TestProfilerZeroCost pins the zero-cost guarantee: a profiled point
// reports byte-identical service metrics — including sim_cycles — to the
// same point run bare.
func TestProfilerZeroCost(t *testing.T) {
	for _, wl := range ServeWorkloads() {
		cfg, rate := profTestConfig(t, wl)
		cfg.Arrivals.RatePerSec = rate
		for _, scheme := range []string{"RW-LE_OPT", "HLE", "SGL"} {
			plain, _, err := service.RunPoint(cfg, scheme, SchemeFactory(scheme), nil)
			if err != nil {
				t.Fatal(err)
			}
			prof := obs.NewProfile(250_000, len(cfg.Classes))
			profiled, _, err := service.RunPointProfiled(cfg, scheme, SchemeFactory(scheme), nil, prof)
			if err != nil {
				t.Fatal(err)
			}
			if plain.MakespanCycles != profiled.MakespanCycles {
				t.Errorf("%s/%s: sim_cycles changed under profiling: %d vs %d",
					wl, scheme, plain.MakespanCycles, profiled.MakespanCycles)
			}
			if !reflect.DeepEqual(plain, profiled) {
				t.Errorf("%s/%s: service metrics changed under profiling", wl, scheme)
			}
		}
	}
}

// TestProfilerWindowInvariance pins that the window width only re-buckets
// the series: category totals are identical across window sizes.
func TestProfilerWindowInvariance(t *testing.T) {
	cfg, rate := profTestConfig(t, "hashmap")
	cfg.Arrivals.RatePerSec = rate
	var ref []int64
	for _, window := range []int64{50_000, 250_000, 1 << 62} {
		prof := obs.NewProfile(window, len(cfg.Classes))
		if _, _, err := service.RunPointProfiled(cfg, "RW-LE_OPT", SchemeFactory("RW-LE_OPT"), nil, prof); err != nil {
			t.Fatal(err)
		}
		rep := prof.Report("RW-LE_OPT", "hashmap")
		if ref == nil {
			ref = rep.Cycles.Totals
			continue
		}
		if !reflect.DeepEqual(ref, rep.Cycles.Totals) {
			t.Errorf("window %d: totals %v != reference %v", window, rep.Cycles.Totals, ref)
		}
	}
}

// TestTimelineSubscription pins the live-subscription contract: windows
// arrive in index order, each exactly once, and the subscribed
// event-derived series matches the final report's.
func TestTimelineSubscription(t *testing.T) {
	cfg, rate := profTestConfig(t, "hashmap")
	cfg.Arrivals.RatePerSec = rate
	prof := obs.NewProfile(100_000, len(cfg.Classes))
	var live []obs.TimelineWindow
	prof.Timeline.Subscribe(func(w obs.TimelineWindow) { live = append(live, w) })
	if _, _, err := service.RunPointProfiled(cfg, "RW-LE_OPT", SchemeFactory("RW-LE_OPT"), nil, prof); err != nil {
		t.Fatal(err)
	}
	rep := prof.Report("RW-LE_OPT", "hashmap")
	if len(live) != len(rep.Timeline.Windows) {
		t.Fatalf("subscriber saw %d windows, report has %d", len(live), len(rep.Timeline.Windows))
	}
	for i, w := range live {
		if w.Index != i {
			t.Fatalf("window %d delivered with index %d (out of order or duplicated)", i, w.Index)
		}
		final := rep.Timeline.Windows[i]
		if w.TxBegins != final.TxBegins || w.CSEnds != final.CSEnds ||
			!reflect.DeepEqual(w.Commits, final.Commits) || !reflect.DeepEqual(w.Aborts, final.Aborts) {
			t.Errorf("window %d: live event series differs from final report", i)
		}
	}
}

// TestTimelineQueueAccounting pins the request-derived series: arrivals
// split into drops and dequeues, dones match dequeues, and the depth and
// in-flight prefix sums return to zero at the end of a drained run.
func TestTimelineQueueAccounting(t *testing.T) {
	cfg, rate := profTestConfig(t, "hashmap")
	cfg.Arrivals.RatePerSec = rate
	prof := obs.NewProfile(100_000, len(cfg.Classes))
	if _, _, err := service.RunPointProfiled(cfg, "SGL", SchemeFactory("SGL"), nil, prof); err != nil {
		t.Fatal(err)
	}
	rep := prof.Timeline.Report()
	var arr, deq, drop, done int64
	for _, w := range rep.Windows {
		arr += w.Arrivals
		deq += w.Dequeues
		drop += w.Drops
		done += w.Dones
	}
	if arr != int64(cfg.Requests) {
		t.Errorf("timeline arrivals %d, want %d", arr, cfg.Requests)
	}
	if arr != deq+drop || deq != done {
		t.Errorf("queue flow unbalanced: arrivals=%d dequeues=%d drops=%d dones=%d", arr, deq, drop, done)
	}
	last := rep.Windows[len(rep.Windows)-1]
	if last.QueueDepthEnd != 0 || last.InFlightEnd != 0 {
		t.Errorf("drained run ends with depth=%d in-flight=%d, want 0/0",
			last.QueueDepthEnd, last.InFlightEnd)
	}
}

// TestRunProfDeterministic pins byte-identical reports across runs and
// worker counts.
func TestRunProfDeterministic(t *testing.T) {
	spec, err := DefaultProfSpec("hashmap")
	if err != nil {
		t.Fatal(err)
	}
	spec.Base.Requests = 200
	spec.Base.Servers = 4
	spec.Schemes = []string{"RW-LE_OPT", "HLE", "SGL"}

	render := func(workers int) (string, string) {
		rep, err := RunProf(spec, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		var txt, js bytes.Buffer
		rep.WriteText(&txt)
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	t1, j1 := render(1)
	t2, j2 := render(4)
	if t1 != t2 {
		t.Error("profile text differs between -j1 and -j4")
	}
	if j1 != j2 {
		t.Error("profile JSON differs between -j1 and -j4")
	}
	t3, j3 := render(1)
	if t1 != t3 || j1 != j3 {
		t.Error("profile output differs between identical runs")
	}
}
