package harness

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchCyclesMatchBaseline is the bench regression gate: the 24-point
// bench mini-sweep must simulate exactly the cycle count recorded in the
// committed baseline report. Engine rewrites may only change wall-clock
// speed; any sim_cycles drift is a semantics regression. If a PR changes
// simulation semantics intentionally, it must record a new baseline (run
// `hrwle-bench -bench results/BENCH_PRn.json`) and update the reference
// here alongside the golden results.
func TestBenchCyclesMatchBaseline(t *testing.T) {
	const baseline = "../../results/BENCH_PR7.json"
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("missing committed bench baseline: %v", err)
	}
	var base BenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt bench baseline: %v", err)
	}

	spec := BenchSpec()
	var cycles int64
	for _, w := range spec.WritePcts {
		for _, n := range spec.Threads {
			for _, s := range spec.Schemes {
				r := spec.Point(PointCtx{}, s, n, w, BenchScale)
				cycles += r.Cycles
			}
		}
	}
	if cycles != base.SimCycles {
		t.Fatalf("bench sweep sim_cycles drifted: got %d, want %d (from %s)", cycles, base.SimCycles, baseline)
	}
}
