package harness

import (
	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/rwlock"
)

// extSchemeFactory resolves the extension schemes on top of the standard
// registry.
func extSchemeFactory(name string) rwlock.Factory {
	switch name {
	case "PRWL":
		return func(s *htm.System) rwlock.Lock { return locks.NewPRWL(s) }
	case "HLE-SCM":
		return func(s *htm.System) rwlock.Lock { return locks.NewSCMHLE(s) }
	case "RW-LE_ADAPT":
		return func(s *htm.System) rwlock.Lock {
			o := core.Opt()
			o.Adaptive = true
			o.Name = "RW-LE_ADAPT"
			return core.New(s, o)
		}
	case "RW-LE_EARLY":
		return func(s *htm.System) rwlock.Lock {
			o := core.Opt()
			o.EarlyAbort = true
			o.Name = "RW-LE_EARLY"
			return core.New(s, o)
		}
	}
	return SchemeFactory(name)
}

// extensionFigure builds a hashmap-workload figure over extension schemes.
func extensionFigure(id, title string, schemes []string, buckets, items int64, wpcts []int, baseOps int) *FigureSpec {
	f := &FigureSpec{
		ID:        id,
		Title:     title,
		Schemes:   schemes,
		Threads:   []int{2, 8, 32, 80},
		WritePcts: wpcts,
		TimeLabel: "execution time (s)",
	}
	f.Point = func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
		p := HashmapParams{
			Buckets: buckets, Items: items, WritePct: writePct,
			Threads: threads, TotalOps: int(float64(baseOps) * scale),
			Seed: uint64(20000 + threads*13 + writePct),
		}
		return RunHashmap(ctx, p, extSchemeFactory(scheme))
	}
	return f
}

// ExtensionFigures returns the beyond-the-paper experiments:
//
//   - ext-prwl: the comparison the paper could not run on POWER8 — the
//     passive reader-writer lock (TSO-dependent) against RW-LE, on the
//     low-contention hashmap.
//   - ext-scm: software-assisted conflict management for HLE (related
//     work [2]) on the high-contention hashmap, against plain HLE and
//     RW-LE.
//   - ext-adaptive: the self-tuning HTM-budget controller against the
//     fixed OPT and PES policies, on both a capacity-bound and a
//     capacity-light workload.
//   - ext-early: the tcheck-based early-abort of doomed quiescence.
func ExtensionFigures() []*FigureSpec {
	return []*FigureSpec{
		extensionFigure("ext-prwl",
			"Extension: PRWL vs RW-LE (the TSO-bound comparison the paper skipped)",
			[]string{"RW-LE_OPT", "PRWL", "RWL", "BRLock"},
			lowContentionBuckets, 50, []int{1, 10, 50}, 16000),
		extensionFigure("ext-scm",
			"Extension: software conflict management for HLE (high contention)",
			[]string{"RW-LE_OPT", "HLE", "HLE-SCM", "SGL"},
			1, 50, []int{10, 50, 90}, 16000),
		extensionFigure("ext-adaptive",
			"Extension: self-tuning HTM budget vs fixed OPT/PES (capacity-bound workload)",
			[]string{"RW-LE_OPT", "RW-LE_PES", "RW-LE_ADAPT"},
			1, 200, []int{10, 50, 90}, 8000),
		extensionFigure("ext-early",
			"Extension: tcheck early-abort of doomed quiescence (high contention)",
			[]string{"RW-LE_OPT", "RW-LE_EARLY"},
			1, 200, []int{1, 10, 50}, 8000),
		rcuFigure(),
	}
}
