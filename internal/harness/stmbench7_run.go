package harness

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
	"hrwle/internal/stmbench7"
)

// RunSTMBench7 measures one Fig. 8 point: the 24-operation default mix
// over a medium database, read-only operations under the read lock and
// update operations under the write lock.
func RunSTMBench7(ctx PointCtx, threads, writePct, totalOps int, seed uint64, mk rwlock.Factory) Result {
	cfg := stmbench7.DefaultConfig()
	m := machine.New(machine.Config{
		CPUs:     threads,
		MemWords: cfg.MemWords(),
		Seed:     seed,
	})
	ctx.observe(m)
	sys := htm.NewSystem(m, htm.Config{})
	lock := mk(sys)
	b := stmbench7.Build(m, cfg)
	mix := stmbench7.NewMix(writePct)

	opsPerThread := totalOps / threads
	if opsPerThread == 0 {
		opsPerThread = 1
	}
	cycles := m.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			mix.Step(b, lock, th, c)
		}
	})
	return Result{Cycles: cycles, B: stats.Merge(sys.Stats(threads), cycles)}
}

func stmbench7Figure() *FigureSpec {
	f := &FigureSpec{
		ID:        "fig8",
		Title:     "STMBench7: 24-op default mix, medium DB (throughput)",
		Schemes:   []string{"RW-LE_OPT", "RW-LE_PES", "HLE", "BRLock", "RWL", "SGL"},
		Threads:   []int{2, 4, 8, 16, 32, 64, 80},
		WritePcts: []int{10, 50, 90},
		TimeLabel: "throughput (ops/s)",
	}
	f.Point = func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
		return RunSTMBench7(ctx, threads, writePct, int(4000*scale),
			uint64(8000+threads*13+writePct), SchemeFactory(scheme))
	}
	return f
}

func init() { registerAppFigure(stmbench7Figure()) }
