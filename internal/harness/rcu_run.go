package harness

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rcu"
	"hrwle/internal/stats"
)

// RunRCUHashmap measures the tailored-code RCU hashmap on the sensitivity
// workload, for comparison against lock-based schemes running the
// unmodified hashmap (the paper's §2 point: RCU is the performance
// yardstick that demands per-structure surgery; RW-LE chases it with none).
func RunRCUHashmap(ctx PointCtx, p HashmapParams) Result {
	m := machine.New(machine.Config{
		CPUs:     p.Threads,
		MemWords: p.memWords(),
		Seed:     p.Seed,
		Paging:   p.Paging,
	})
	ctx.observe(m)
	sys := htm.NewSystem(m, p.HTM)
	d := rcu.NewDomain(m)
	h := rcu.NewMap(m, d, p.Buckets)
	h.Populate(p.Items)

	universe := int(p.Buckets * p.Items)
	opsPerThread := p.TotalOps / p.Threads
	if opsPerThread == 0 {
		opsPerThread = 1
	}
	cycles := m.Run(p.Threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			key := uint64(c.Intn(universe))
			if c.Intn(100) < p.WritePct {
				if c.Intn(2) == 0 {
					h.Insert(th, key, key)
				} else {
					h.Remove(th, key)
				}
			} else {
				h.Lookup(th, key)
			}
			th.St.Ops++
		}
	})
	return Result{Cycles: cycles, B: stats.Merge(sys.Stats(p.Threads), cycles)}
}

func rcuFigure() *FigureSpec {
	f := &FigureSpec{
		ID:        "ext-rcu",
		Title:     "Extension: tailored-code RCU hashmap vs unmodified hashmap under RW-LE / RWL",
		Schemes:   []string{"RCU", "RW-LE_OPT", "RW-LE_PES", "RWL"},
		Threads:   []int{2, 8, 32, 80},
		WritePcts: []int{1, 10, 50},
		TimeLabel: "execution time (s)",
	}
	f.Point = func(ctx PointCtx, scheme string, threads, writePct int, scale float64) Result {
		p := HashmapParams{
			Buckets: lowContentionBuckets, Items: 50, WritePct: writePct,
			Threads: threads, TotalOps: int(16000 * scale),
			Seed: uint64(23000 + threads*13 + writePct),
		}
		if scheme == "RCU" {
			return RunRCUHashmap(ctx, p)
		}
		return RunHashmap(ctx, p, SchemeFactory(scheme))
	}
	return f
}
