package rwlock_test

import (
	"testing"

	"hrwle/internal/harness"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

// allSchemes is every name harness.SchemeFactory documents as resolvable.
var allSchemes = []string{
	"RW-LE_OPT", "RW-LE_PES", "RW-LE_FAIR", "RW-LE_SPLIT", "RW-LE_basic",
	"HLE", "BRLock", "RWL", "SGL",
}

// TestFactoryContract instantiates every scheme on a fresh system and
// checks the rwlock.Lock contract: a non-empty stable Name matching the
// scheme, and Read/Write sections that run their bodies with mutual
// exclusion effects visible afterwards.
func TestFactoryContract(t *testing.T) {
	for _, name := range allSchemes {
		name := name
		t.Run(name, func(t *testing.T) {
			f := harness.SchemeFactory(name)
			if f == nil {
				t.Fatalf("SchemeFactory(%q) returned nil factory", name)
			}

			const threads = 2
			m := machine.New(machine.Config{CPUs: threads, MemWords: 1 << 12, Seed: 7})
			sys := htm.NewSystem(m, htm.Config{})
			var lk rwlock.Lock = f(sys)
			if lk == nil {
				t.Fatalf("factory for %q built nil lock", name)
			}
			if lk.Name() != name {
				t.Errorf("Name() = %q, want %q", lk.Name(), name)
			}
			if lk.Name() != lk.Name() {
				t.Errorf("Name() is not stable")
			}

			// Two threads each run write sections incrementing a shared
			// counter and read sections observing it. Reads snapshot into a
			// local inside the section (speculative bodies may re-run; only
			// the committed attempt counts).
			const opsPer = 8
			ctr := m.AllocRawAligned(1)
			reads := make([]uint64, threads)
			m.Run(threads, func(c *machine.CPU) {
				th := sys.Thread(c.ID)
				for op := 0; op < opsPer; op++ {
					lk.Write(th, func() {
						th.Store(ctr, th.Load(ctr)+1)
					})
					var v uint64
					lk.Read(th, func() {
						v = th.Load(ctr)
					})
					reads[c.ID] = v
				}
			})

			if got := m.Peek(ctr); got != threads*opsPer {
				t.Errorf("counter = %d after %d write sections (lost updates)", got, threads*opsPer)
			}
			for id, v := range reads {
				if v == 0 || v > threads*opsPer {
					t.Errorf("thread %d final read %d out of range [1,%d]", id, v, threads*opsPer)
				}
			}
		})
	}
}

// TestFactoryUnknownNamePanics pins the documented behaviour for
// unresolvable scheme names: a panic naming the scheme, not a nil return.
func TestFactoryUnknownNamePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SchemeFactory(\"no-such-scheme\") did not panic")
		}
	}()
	harness.SchemeFactory("no-such-scheme")
}

// TestFactoriesAreIndependent checks that two locks built by the same
// factory on different systems do not share state.
func TestFactoriesAreIndependent(t *testing.T) {
	f := harness.SchemeFactory("RW-LE_OPT")
	mk := func() (rwlock.Lock, *machine.Machine, *htm.System, machine.Addr) {
		m := machine.New(machine.Config{CPUs: 1, MemWords: 1 << 12, Seed: 3})
		sys := htm.NewSystem(m, htm.Config{})
		return f(sys), m, sys, m.AllocRawAligned(1)
	}
	lkA, mA, sysA, ctrA := mk()
	lkB, mB, sysB, ctrB := mk()

	mA.Run(1, func(c *machine.CPU) {
		th := sysA.Thread(c.ID)
		lkA.Write(th, func() { th.Store(ctrA, 41) })
	})
	mB.Run(1, func(c *machine.CPU) {
		th := sysB.Thread(c.ID)
		lkB.Write(th, func() { th.Store(ctrB, 1) })
	})
	if a, b := mA.Peek(ctrA), mB.Peek(ctrB); a != 41 || b != 1 {
		t.Fatalf("locks shared state across systems: a=%d b=%d", a, b)
	}
}
