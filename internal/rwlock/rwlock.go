// Package rwlock defines the read-write lock interface shared by the RW-LE
// algorithm (internal/core) and the baseline synchronization schemes
// (internal/locks). Benchmark applications are written against this
// interface so every scheme runs the identical workload.
//
// Critical sections are expressed as closures because elision schemes may
// execute them speculatively and re-run them after an abort; bodies must
// therefore be restartable (all their effects go through the htm.Thread,
// whose speculative writes are rolled back on abort).
package rwlock

import "hrwle/internal/htm"

// Lock is a read-write lock (possibly elided) for simulated threads.
type Lock interface {
	// Read runs cs as a read-side critical section on thread t.
	Read(t *htm.Thread, cs func())
	// Write runs cs as a write-side critical section on thread t.
	Write(t *htm.Thread, cs func())
	// Name identifies the scheme in reports (e.g. "RW-LE_OPT", "HLE").
	Name() string
}

// Factory builds a lock instance bound to an HTM system; the harness uses
// it to instantiate each scheme on a fresh machine.
type Factory func(sys *htm.System) Lock
