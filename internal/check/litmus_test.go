package check

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// litmusConfig is the enumeration configuration every litmus assertion in
// this file uses. The outcome sets below were calibrated against it; both
// enumeration phases are deterministic, so the sets are exact expectations,
// not samples. Preemptions=3 was also calibrated and produced identical
// sets everywhere, so the cheaper bound is pinned.
func litmusConfig(program, scheme, mutation string) Config {
	return Config{
		Program:       program,
		Scheme:        scheme,
		Mutation:      mutation,
		Threads:       2,
		Ops:           1,
		Preemptions:   2,
		MaxExecutions: 2000,
	}
}

// litmusSchemes is Schemes() plus the non-eliding single-global-lock
// baseline, which the litmus shapes must also classify.
func litmusSchemes() []string { return append(Schemes(), "SGL") }

func sortedOutcomes(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func enumerate(t *testing.T, cfg Config) ([]string, Report) {
	t.Helper()
	outcomes, rep := EnumerateOutcomes(cfg)
	if rep.Violation != nil {
		t.Fatalf("%s/%s mut=%q: unexpected invariant violation: %s",
			cfg.Program, cfg.Scheme, cfg.Mutation, rep.Violation.Desc)
	}
	return sortedOutcomes(outcomes), rep
}

// TestLitmusOutcomeSets pins the exact outcome set every unmutated scheme
// produces on each litmus shape. The sets encode the memory-model
// guarantees the schemes share:
//
//   - litmus-pub: message passing works — the reader may see nothing, the
//     data without the flag, or both, but never the flag without the data
//     ("y=1 x=0" is the forbidden publication reorder).
//   - litmus-agg / litmus-susp: write sections commit as aggregates, so
//     the reader only ever snapshots x=y — no torn states.
//   - litmus-upd: concurrent read-modify-write sections never lose an
//     update; the final count is always exactly 2.
//
// The DFS phase is expected to exhaust the bounded space for the
// reader/writer shapes; litmus-upd's two long write paths exceed the
// bounded-DFS budget under some schemes, so exhaustion is not asserted
// there (the walk phase still supplies both serialization orders).
func TestLitmusOutcomeSets(t *testing.T) {
	want := map[string][]string{
		"litmus-pub":  {"y=0 x=0", "y=0 x=1", "y=1 x=1"},
		"litmus-agg":  {"x=0 y=0", "x=1 y=1"},
		"litmus-susp": {"y=0 x=0", "y=1 x=1"},
		"litmus-upd":  {"x=2"},
		// litmus-sub's two serializations; note the set is the same with
		// the lazy-subscription mutation — the shape is value-blind by
		// design and judged by the sanitizer instead (sanitize_test.go).
		"litmus-sub": {"x=1 y=1", "x=1 y=2"},
	}
	forbidden := map[string]string{
		"litmus-pub":  "y=1 x=0",
		"litmus-agg":  "x=1 y=0",
		"litmus-susp": "y=1 x=0",
		"litmus-upd":  "x=1",
		"litmus-sub":  "x=0 y=2",
	}
	for _, program := range LitmusPrograms() {
		for _, scheme := range litmusSchemes() {
			t.Run(fmt.Sprintf("%s/%s", program, scheme), func(t *testing.T) {
				got, rep := enumerate(t, litmusConfig(program, scheme, ""))
				if !reflect.DeepEqual(got, want[program]) {
					t.Fatalf("outcome set %v, want %v", got, want[program])
				}
				for _, o := range got {
					if o == forbidden[program] {
						t.Fatalf("forbidden outcome %q observed", o)
					}
				}
				if program != "litmus-upd" && program != "litmus-sub" && !rep.Exhausted {
					t.Fatalf("bounded DFS did not exhaust (%d executions)", rep.Executions)
				}
			})
		}
	}
}

// TestLitmusMutationsExpandOutcomes checks that the litmus shapes have
// teeth: each checker-validation mutation, applied to the schemes whose
// code path it weakens, makes a specific extra outcome reachable that the
// unmutated scheme never produces (asserted exactly above).
//
//   - lose-doom-at-resume drops the doomed flag when a speculative reader
//     resumes, so readers that overlapped a writer's suspended quiescence
//     scan commit stale snapshots: torn reads on the aggregate shapes and
//     a lost update when both incrementers run speculatively. RW-LE_PES
//     is immune (its readers never suspend mid-section the same way), as
//     are HLE (aborts instead of suspending), BRLock and SGL (no
//     speculation at all).
//   - skip-rot-quiesce removes the writer's wait for in-flight readers on
//     the pessimistic scheme, which is exactly the window RW-LE_PES's
//     correctness depends on; the optimistic schemes doom readers through
//     conflict detection instead and stay clean.
func TestLitmusMutationsExpandOutcomes(t *testing.T) {
	cases := []struct {
		program, scheme, mutation, extra string
	}{
		{"litmus-agg", "RW-LE_OPT", MutLoseDoomAtResume, "x=0 y=1"},
		{"litmus-agg", "RW-LE_FAIR", MutLoseDoomAtResume, "x=0 y=1"},
		{"litmus-agg", "RW-LE_SPLIT", MutLoseDoomAtResume, "x=0 y=1"},
		{"litmus-agg", "RW-LE_PES", MutSkipROTQuiesce, "x=0 y=1"},
		{"litmus-susp", "RW-LE_OPT", MutLoseDoomAtResume, "y=0 x=1"},
		{"litmus-susp", "RW-LE_FAIR", MutLoseDoomAtResume, "y=0 x=1"},
		{"litmus-susp", "RW-LE_SPLIT", MutLoseDoomAtResume, "y=0 x=1"},
		{"litmus-susp", "RW-LE_PES", MutSkipROTQuiesce, "y=0 x=1"},
		{"litmus-upd", "RW-LE_OPT", MutLoseDoomAtResume, "x=1"},
		{"litmus-upd", "RW-LE_FAIR", MutLoseDoomAtResume, "x=1"},
		{"litmus-upd", "RW-LE_SPLIT", MutLoseDoomAtResume, "x=1"},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%s/%s", tc.program, tc.scheme, tc.mutation), func(t *testing.T) {
			outcomes, _ := EnumerateOutcomes(litmusConfig(tc.program, tc.scheme, tc.mutation))
			if outcomes[tc.extra] == 0 {
				t.Fatalf("mutation failed to surface outcome %q; observed %v",
					tc.extra, sortedOutcomes(outcomes))
			}
		})
	}
}

// TestLitmusMutationImmunity pins the negative space of the table above:
// schemes whose design does not route through a mutation's weakened code
// path keep their exact clean outcome set even with the mutation enabled.
func TestLitmusMutationImmunity(t *testing.T) {
	cases := []struct {
		program, scheme, mutation string
		want                      []string
	}{
		{"litmus-agg", "RW-LE_PES", MutLoseDoomAtResume, []string{"x=0 y=0", "x=1 y=1"}},
		{"litmus-agg", "RW-LE_OPT", MutSkipROTQuiesce, []string{"x=0 y=0", "x=1 y=1"}},
		{"litmus-agg", "HLE", MutLoseDoomAtResume, []string{"x=0 y=0", "x=1 y=1"}},
		{"litmus-upd", "RW-LE_PES", MutLoseDoomAtResume, []string{"x=2"}},
		{"litmus-upd", "BRLock", MutLoseDoomAtResume, []string{"x=2"}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%s/%s", tc.program, tc.scheme, tc.mutation), func(t *testing.T) {
			got, _ := enumerate(t, litmusConfig(tc.program, tc.scheme, tc.mutation))
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("outcome set %v, want %v", got, tc.want)
			}
		})
	}
}
