package check

import (
	"fmt"
	"sort"

	"hrwle/internal/hashmap"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

// A program is a small closed workload over a guarded structure, plus the
// oracle that judges one finished execution. Bodies must be
// schedule-pure: no per-CPU randomness, so an execution is a function of
// the schedule alone. Observations are collected into locals inside the
// critical section and recorded only after the section returns —
// speculative schemes may re-run bodies, and only the final (committed)
// attempt's values are real.
type program struct {
	setup func(ctx *runCtx)
	body  func(ctx *runCtx, th *htm.Thread, c *machine.CPU)
	check func(ctx *runCtx)
}

// runCtx carries one execution's shared structures and host-side logs.
// The logs are appended by whichever CPU holds the token, so they need no
// locking, but their order is append order, not commit order — programs
// that need the serialization order witness it with an in-simulation
// sequence word.
type runCtx struct {
	cfg  Config
	m    *machine.Machine
	sys  *htm.System
	lock rwlock.Lock

	violations []string

	// outcome is the execution's observation label, set by litmus programs
	// (see litmus.go); EnumerateOutcomes collects the set of labels the
	// schedule space can produce.
	outcome string

	// record program state.
	rec    []machine.Addr
	wrotes []uint64

	// hashmap program state.
	hm     *hashmap.Map
	seqA   machine.Addr
	writes []writeRec
	reads  []readRec

	// litmus program state (litmus.go): two words on distinct cache lines
	// and the reader's observed values. litF is litmus-sub's filler block,
	// one word per cache line, sized to overflow the HTM write capacity.
	litX, litY   machine.Addr
	litF         machine.Addr
	litR1, litR2 uint64
}

func (ctx *runCtx) violate(format string, args ...any) {
	ctx.violations = append(ctx.violations, fmt.Sprintf(format, args...))
}

// writers returns how many of the threads act as writers: about half,
// at least one, and always at least one reader when threads > 1.
func (ctx *runCtx) writers() int {
	w := ctx.cfg.Threads / 2
	if w < 1 {
		w = 1
	}
	return w
}

func programFor(name string) program {
	switch name {
	case "record":
		return recordProgram()
	case "hashmap":
		return hashmapProgram()
	}
	if p, ok := litmusProgram(name); ok {
		return p
	}
	panic("check: unknown program " + name)
}

// ---------------------------------------------------------------------------
// record: writers atomically rewrite a multi-line record, readers snapshot
// it. The oracle checks aggregate-store atomicity (no torn snapshots), no
// lost updates (the record value counts committed write sections exactly),
// and per-thread monotonicity.

const recWords = 4

func recordProgram() program {
	return program{
		setup: func(ctx *runCtx) {
			ctx.rec = make([]machine.Addr, recWords)
			for i := range ctx.rec {
				// One word per cache line: the write set spans several
				// lines, so a torn commit is observable between them.
				ctx.rec[i] = ctx.m.AllocRawAligned(1)
			}
		},
		body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
			if c.ID < ctx.writers() {
				for op := 0; op < ctx.cfg.Ops; op++ {
					var wrote uint64
					ctx.lock.Write(th, func() {
						v := th.Load(ctx.rec[0]) + 1
						for _, a := range ctx.rec {
							th.Store(a, v)
						}
						wrote = v
					})
					ctx.wrotes = append(ctx.wrotes, wrote)
				}
				return
			}
			last := uint64(0)
			for op := 0; op < ctx.cfg.Ops; op++ {
				var vals [recWords]uint64
				ctx.lock.Read(th, func() {
					for i, a := range ctx.rec {
						vals[i] = th.Load(a)
					}
				})
				for i := 1; i < recWords; i++ {
					if vals[i] != vals[0] {
						ctx.violate("torn read: thread %d observed partial write set %v", c.ID, vals)
						break
					}
				}
				if vals[0] < last {
					ctx.violate("non-monotonic read: thread %d saw %d after %d", c.ID, vals[0], last)
				}
				last = vals[0]
			}
		},
		check: func(ctx *runCtx) {
			final := ctx.m.Peek(ctx.rec[0])
			for i := 1; i < recWords; i++ {
				if v := ctx.m.Peek(ctx.rec[i]); v != final {
					ctx.violate("torn final state: word %d = %d, word 0 = %d", i, v, final)
				}
			}
			if int(final) != len(ctx.wrotes) {
				ctx.violate("lost update: %d write sections committed but record counts %d", len(ctx.wrotes), final)
			}
			seen := map[uint64]bool{}
			for _, v := range ctx.wrotes {
				if seen[v] {
					ctx.violate("lost update: two write sections both derived value %d", v)
				}
				seen[v] = true
			}
		},
	}
}

// ---------------------------------------------------------------------------
// hashmap: a single-bucket chained map under scripted inserts, removes and
// lookups. Every write section increments an in-simulation sequence word
// inside the same critical section, so commits carry a linearization
// witness: sorting write records by sequence number yields the serialization
// order, and every lookup (which samples the sequence word first) must match
// the sequential reference replayed to exactly that point.

const keySpace = 4

type writeRec struct {
	seq    uint64
	key    uint64
	val    uint64
	insert bool // insert/upsert vs remove
	hit    bool // insert: consumed the node; remove: found the key
}

type readRec struct {
	seq uint64
	key uint64
	val uint64
	ok  bool
}

func hashmapProgram() program {
	return program{
		setup: func(ctx *runCtx) {
			ctx.hm = hashmap.New(ctx.m, 1)
			ctx.hm.Populate(2) // keys 0,1 with values 0,1
			ctx.seqA = ctx.m.AllocRawAligned(1)
		},
		body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
			if c.ID < ctx.writers() {
				for op := 0; op < ctx.cfg.Ops; op++ {
					key := uint64((c.ID + 2*op) % keySpace)
					var seq uint64
					if op%2 == 0 {
						node := ctx.hm.PrepareNode(th)
						var consumed bool
						var val uint64
						ctx.lock.Write(th, func() {
							seq = th.Load(ctx.seqA)
							th.Store(ctx.seqA, seq+1)
							val = 100 + seq
							consumed = ctx.hm.Insert(th, key, val, node)
						})
						ctx.writes = append(ctx.writes, writeRec{seq: seq, key: key, val: val, insert: true, hit: consumed})
						if !consumed {
							ctx.hm.Recycle(th, node)
						}
					} else {
						var removed machine.Addr
						ctx.lock.Write(th, func() {
							seq = th.Load(ctx.seqA)
							th.Store(ctx.seqA, seq+1)
							removed = ctx.hm.Remove(th, key)
						})
						ctx.writes = append(ctx.writes, writeRec{seq: seq, key: key, hit: removed != 0})
						ctx.hm.Recycle(th, removed)
					}
				}
				return
			}
			for op := 0; op < ctx.cfg.Ops; op++ {
				key := uint64((c.ID + op) % keySpace)
				var seq, v uint64
				var ok bool
				ctx.lock.Read(th, func() {
					seq = th.Load(ctx.seqA)
					v, ok = ctx.hm.Lookup(th, key)
				})
				ctx.reads = append(ctx.reads, readRec{seq: seq, key: key, val: v, ok: ok})
			}
		},
		check: checkHashmap,
	}
}

// refState is the sequential reference: key → (value, present).
type refState [keySpace]struct {
	val     uint64
	present bool
}

func checkHashmap(ctx *runCtx) {
	if msg := ctx.hm.CheckChains(); msg != "" {
		ctx.violate("structural: %s", msg)
	}
	n := len(ctx.writes)
	if got := ctx.m.Peek(ctx.seqA); int(got) != n {
		ctx.violate("lost update: %d write sections committed but sequence word is %d", n, got)
	}

	writes := append([]writeRec(nil), ctx.writes...)
	sort.Slice(writes, func(i, j int) bool { return writes[i].seq < writes[j].seq })

	// Replay the sequential reference in serialization order; states[s] is
	// the reference before write s (i.e. after s committed writes).
	states := make([]refState, n+1)
	var st refState
	st[0] = struct {
		val     uint64
		present bool
	}{0, true}
	st[1] = struct {
		val     uint64
		present bool
	}{1, true}
	states[0] = st
	for i, w := range writes {
		if w.seq != uint64(i) {
			ctx.violate("atomicity: write sections observed sequence numbers %v (want 0..%d each once)", seqsOf(writes), n-1)
			return
		}
		k := w.key % keySpace
		if w.insert {
			if w.hit == st[k].present {
				// Insert consumes the node only when the key was absent.
				ctx.violate("linearizability: insert(key %d) at seq %d consumed=%v but reference present=%v",
					w.key, w.seq, w.hit, st[k].present)
			}
			st[k].val, st[k].present = w.val, true
		} else {
			if w.hit != st[k].present {
				ctx.violate("linearizability: remove(key %d) at seq %d found=%v but reference present=%v",
					w.key, w.seq, w.hit, st[k].present)
			}
			st[k].present = false
		}
		states[i+1] = st
	}

	for _, r := range ctx.reads {
		if r.seq > uint64(n) {
			ctx.violate("lookup observed sequence %d beyond the %d committed writes", r.seq, n)
			continue
		}
		want := states[r.seq][r.key%keySpace]
		if r.ok != want.present || (r.ok && r.val != want.val) {
			ctx.violate("linearizability: lookup(key %d) at seq %d returned (%d,%v), reference says (%d,%v)",
				r.key, r.seq, r.val, r.ok, want.val, want.present)
		}
	}

	snap := ctx.hm.Snapshot()
	final := states[n]
	for k := uint64(0); k < keySpace; k++ {
		v, ok := snap[k]
		if ok != final[k].present || (ok && v != final[k].val) {
			ctx.violate("final state: key %d = (%d,%v), reference says (%d,%v)", k, v, ok, final[k].val, final[k].present)
		}
	}
	for k := range snap {
		if k >= keySpace {
			ctx.violate("final state: unexpected key %d in map", k)
		}
	}
}

func seqsOf(writes []writeRec) []uint64 {
	out := make([]uint64, len(writes))
	for i, w := range writes {
		out[i] = w.seq
	}
	return out
}
