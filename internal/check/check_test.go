package check

import (
	"strings"
	"testing"
)

// TestExploreSchemesClean sweeps every scheme × program combination with a
// fixed budget and requires a clean bill: the checker must not report false
// positives on the unmutated implementations.
func TestExploreSchemesClean(t *testing.T) {
	for _, scheme := range Schemes() {
		for _, prog := range Programs() {
			scheme, prog := scheme, prog
			t.Run(scheme+"/"+prog, func(t *testing.T) {
				t.Parallel()
				rep := Explore(Config{Scheme: scheme, Program: prog})
				if rep.Violation != nil {
					t.Fatalf("false positive: %s\nreplay: %s", rep.Violation.Desc, rep.Violation.Token)
				}
				if rep.Executions == 0 || rep.Points == 0 {
					t.Fatalf("explorer did no work: %+v", rep)
				}
			})
		}
	}
}

// TestMutationsDetected validates the checker against the two seeded bugs:
// each mutation must produce a violation within the default budget, and the
// printed replay token must deterministically reproduce it.
func TestMutationsDetected(t *testing.T) {
	cases := []struct {
		scheme, mutation string
	}{
		// Forgetting dooms at resume breaks the HTM fast path, which
		// RW-LE_OPT takes first.
		{"RW-LE_OPT", MutLoseDoomAtResume},
		// Dropping the quiescence barrier breaks the ROT path, which
		// RW-LE_PES takes first.
		{"RW-LE_PES", MutSkipROTQuiesce},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme+"/"+tc.mutation, func(t *testing.T) {
			t.Parallel()
			rep := Explore(Config{Scheme: tc.scheme, Mutation: tc.mutation})
			if rep.Violation == nil {
				t.Fatalf("mutation %s not detected in %d executions", tc.mutation, rep.Executions)
			}
			if !strings.Contains(rep.Violation.Desc, "torn") {
				t.Errorf("expected a torn-read violation, got: %s", rep.Violation.Desc)
			}
			if rep.Violation.Token == "" {
				t.Fatal("violation carries no replay token")
			}

			// The token must round-trip its configuration...
			cfg, err := DecodeToken(rep.Violation.Token)
			if err != nil {
				t.Fatalf("DecodeToken: %v", err)
			}
			if cfg.Scheme != tc.scheme || cfg.Mutation != tc.mutation {
				t.Fatalf("token config mismatch: %+v", cfg)
			}

			// ...and replay must reproduce the identical violation, every time.
			for i := 0; i < 3; i++ {
				r2, err := Replay(rep.Violation.Token)
				if err != nil {
					t.Fatalf("Replay: %v", err)
				}
				if r2.Violation == nil {
					t.Fatalf("replay %d did not reproduce the violation", i)
				}
				if r2.Violation.Desc != rep.Violation.Desc {
					t.Fatalf("replay %d diverged: got %q, want %q", i, r2.Violation.Desc, rep.Violation.Desc)
				}
			}
		})
	}
}

// TestReplayIsDeterministic replays one token twice and requires identical
// reports — decision-point counts included, not just the verdict.
func TestReplayIsDeterministic(t *testing.T) {
	rep := Explore(Config{Scheme: "RW-LE_PES", Mutation: MutSkipROTQuiesce})
	if rep.Violation == nil {
		t.Fatal("seeded mutation not detected")
	}
	a, err := Replay(rep.Violation.Token)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(rep.Violation.Token)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points != b.Points || a.Executions != b.Executions {
		t.Fatalf("replays diverged: %+v vs %+v", a, b)
	}
	if a.Violation == nil || b.Violation == nil || a.Violation.Desc != b.Violation.Desc {
		t.Fatalf("replays disagree on the violation: %+v vs %+v", a.Violation, b.Violation)
	}
}

// TestDFSExhaustsTinyConfig checks that on a genuinely tiny configuration
// the bounded DFS enumerates its whole schedule space and says so.
func TestDFSExhaustsTinyConfig(t *testing.T) {
	rep := Explore(Config{
		Scheme:        "SGL",
		Program:       "record",
		Threads:       2,
		Ops:           1,
		Preemptions:   1,
		MaxExecutions: 100000,
	})
	if rep.Violation != nil {
		t.Fatalf("false positive on SGL: %s", rep.Violation.Desc)
	}
	if !rep.Exhausted {
		t.Fatalf("expected DFS to exhaust the 1-preemption space, ran %d executions", rep.Executions)
	}
}

// TestBadTokens exercises the decoder's error paths.
func TestBadTokens(t *testing.T) {
	for _, tok := range []string{"", "!!!not-base64!!!", "bm90LWpzb24"} {
		if _, err := DecodeToken(tok); err == nil {
			t.Errorf("DecodeToken(%q) accepted garbage", tok)
		}
		if _, err := Replay(tok); err == nil {
			t.Errorf("Replay(%q) accepted garbage", tok)
		}
	}
}

// TestReportString sanity-checks the human-readable summary.
func TestReportString(t *testing.T) {
	rep := Explore(Config{Scheme: "BRLock", Program: "hashmap", MaxExecutions: 50})
	s := rep.String()
	for _, want := range []string{"BRLock", "hashmap", "executions"} {
		if !strings.Contains(s, want) {
			t.Errorf("Report.String() = %q, missing %q", s, want)
		}
	}
}
