package check

import (
	"hrwle/internal/machine"
	"hrwle/internal/simsan"
)

// TraceHook, when non-nil, supplies a fresh tracer for every controlled
// execution the explorer runs. It exists for the engine differential test
// harness (internal/enginediff), which fingerprints the event stream of
// each explored schedule; production explorations leave it nil.
var TraceHook func() machine.Tracer

// runOne executes the configured program once under the given controlled
// schedule and returns the execution's outcome label (litmus programs only,
// "" otherwise) and the first violated invariant ("" if none).
func runOne(cfg Config, sc *ctrl) (outcome, violation string, points int, truncated bool) {
	m, sys, lock := buildSystem(cfg)
	ctx := &runCtx{cfg: cfg, m: m, sys: sys, lock: lock}
	p := programFor(cfg.Program)
	p.setup(ctx)
	var san *simsan.Sanitizer
	if cfg.Sanitize {
		san = simsan.New(simsan.Options{CPUs: cfg.Threads})
		sys.SetTraceAccesses(true)
	}
	var hook machine.Tracer
	if TraceHook != nil {
		hook = TraceHook()
	}
	switch {
	case san != nil && hook != nil:
		m.SetTracer(machine.MultiTracer{san, hook})
	case san != nil:
		m.SetTracer(san)
	case hook != nil:
		m.SetTracer(hook)
	}
	m.SetScheduler(sc)
	m.Run(cfg.Threads, func(c *machine.CPU) {
		p.body(ctx, sys.Thread(c.ID), c)
	})
	p.check(ctx)
	if san != nil {
		rep := san.Finish()
		for _, r := range rep.Races {
			ctx.violate("simsan: %s", r)
		}
	}
	if len(ctx.violations) > 0 {
		violation = ctx.violations[0]
	}
	return ctx.outcome, violation, len(sc.trace), sc.truncated
}

// Explore searches cfg's schedule space for an invariant violation. It
// spends half the budget on preemption-bounded exhaustive DFS around the
// default schedule and the rest on seed-swept random walks, stopping at
// the first violation.
func Explore(cfg Config) Report {
	cfg = cfg.withDefaults()
	rep := Report{Config: cfg}

	dfsBudget := cfg.MaxExecutions / 2
	if v := exploreDFS(cfg, dfsBudget, &rep); v != nil {
		rep.Violation = v
		return rep
	}
	for i := 0; rep.Executions < cfg.MaxExecutions; i++ {
		spec := schedule{Kind: "walk", Seed: cfg.Seed + uint64(i)}
		if v := runRecorded(cfg, spec, &rep); v != nil {
			rep.Violation = v
			return rep
		}
	}
	return rep
}

// runRecorded runs one schedule, accounts it in rep, and wraps any
// violation with its replay token.
func runRecorded(cfg Config, spec schedule, rep *Report) *Violation {
	sc := newCtrl(cfg, spec)
	_, desc, points, truncated := runOne(cfg, sc)
	rep.Executions++
	rep.Points += int64(points)
	if truncated {
		rep.Truncated++
	}
	if desc == "" {
		return nil
	}
	return &Violation{Desc: desc, Token: encodeToken(cfg, spec)}
}

// exploreDFS enumerates schedules that deviate from the default
// minimum-virtual-time policy at up to cfg.Preemptions decision points,
// depth-first, last decision point first. The enumeration is the classic
// stateless-model-checking backtracking walk: run one execution, then bump
// the deepest decision that still has an untried alternative within the
// deviation budget, truncating everything after it.
func exploreDFS(cfg Config, budget int, rep *Report) *Violation {
	prefix := []int{}
	for rep.Executions < budget {
		spec := schedule{Kind: "prefix", Choices: prefix}
		sc := newCtrl(cfg, spec)
		_, desc, points, truncated := runOne(cfg, sc)
		rep.Executions++
		rep.Points += int64(points)
		if truncated {
			rep.Truncated++
		}
		if desc != "" {
			return &Violation{Desc: desc, Token: encodeToken(cfg, spec)}
		}
		prefix = nextPrefix(sc.trace, cfg.Preemptions)
		if prefix == nil {
			rep.Exhausted = true
			return nil
		}
	}
	return nil
}

// nextPrefix computes the DFS successor of the schedule recorded in trace:
// the longest prefix whose last choice can be advanced to its next
// alternative without exceeding the deviation bound. It returns nil when
// the bounded schedule space is exhausted.
func nextPrefix(trace []choicePoint, bound int) []int {
	// dev[i] = deviations from the default policy among trace[0:i].
	dev := make([]int, len(trace)+1)
	for i, p := range trace {
		d := 0
		if p.chosen != p.def {
			d = 1
		}
		dev[i+1] = dev[i] + d
	}
	for i := len(trace) - 1; i >= 0; i-- {
		// Every alternative beyond the current choice is a deviation
		// (the ordering is: default first, then the rest ascending).
		if dev[i]+1 > bound {
			continue
		}
		next := nextAlt(trace[i])
		if next < 0 {
			continue
		}
		out := make([]int, i+1)
		for j := 0; j < i; j++ {
			out[j] = trace[j].chosen
		}
		out[i] = next
		return out
	}
	return nil
}

// nextAlt returns the alternative after p.chosen in the per-point ordering
// (default first, then indices ascending, skipping the default), or -1.
func nextAlt(p choicePoint) int {
	start := 0
	if p.chosen != p.def {
		start = p.chosen + 1
	}
	for a := start; a < p.n; a++ {
		if a != p.def {
			return a
		}
	}
	return -1
}
