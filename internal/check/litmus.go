package check

import (
	"fmt"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// Litmus seeds: tiny fixed-shape programs, in the style of hardware litmus
// tests, that pin down how transactional and non-transactional code is
// allowed to interact under each lock scheme. Unlike the closed programs in
// program.go, a litmus program does not judge itself: every execution
// produces an *outcome label* (the reader's observed values), and
// EnumerateOutcomes exhausts the bounded schedule space to compute the set
// of labels a scheme can produce. The allowed-outcome sets live in
// litmus_test.go; future scheme work inherits both the shapes and the sets.
//
// All shapes run two threads — CPU 0 writes, CPU 1 observes — over two
// words x and y on distinct cache lines, so a torn commit is visible
// between them:
//
//   - litmus-pub (publication): the writer publishes x and then y in two
//     separate write sections; the reader's single read section loads y
//     then x. Seeing the flag (y=1) without the data (x=0) is forbidden.
//   - litmus-agg (aggregate-store visibility): the writer stores x and y
//     inside one write section; the reader loads x then y in one read
//     section. Commits are aggregate, so only x=y snapshots are allowed.
//   - litmus-susp (suspend-window race): litmus-agg with the writer's
//     section widened by private work between the stores and the reader
//     loading in reverse (y then x) — the shape of paper §3 Fig. 2, where
//     the reader's section overlaps the writer's suspended quiescence scan
//     and must either be waited for or doom the speculation.
//   - litmus-upd (lost update): both threads run a read-modify-write
//     section incrementing x; the only allowed final state is x=2.
type litmusSpec struct {
	name string
	body func(ctx *runCtx, th *htm.Thread, c *machine.CPU)
	// label renders the outcome from the reader's observations and the
	// final memory state after all threads finished.
	label func(ctx *runCtx) string
}

// LitmusPrograms returns the litmus program names, runnable through the
// same Config.Program field as the closed programs. They are deliberately
// not part of Programs(): the engine differential harness captures
// Schemes()×Programs() golden traces, while litmus outcome sets are pinned
// by their own exhaustive enumerations in litmus_test.go.
func LitmusPrograms() []string {
	return []string{"litmus-pub", "litmus-agg", "litmus-susp", "litmus-upd"}
}

func litmusSpecs() []litmusSpec {
	return []litmusSpec{
		{
			name: "litmus-pub",
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				switch c.ID {
				case 0:
					ctx.lock.Write(th, func() { th.Store(ctx.litX, 1) })
					ctx.lock.Write(th, func() { th.Store(ctx.litY, 1) })
				case 1:
					var r1, r2 uint64
					ctx.lock.Read(th, func() {
						r1 = th.Load(ctx.litY)
						r2 = th.Load(ctx.litX)
					})
					ctx.litR1, ctx.litR2 = r1, r2
				}
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("y=%d x=%d", ctx.litR1, ctx.litR2)
			},
		},
		{
			name: "litmus-agg",
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				switch c.ID {
				case 0:
					ctx.lock.Write(th, func() {
						th.Store(ctx.litX, 1)
						th.Store(ctx.litY, 1)
					})
				case 1:
					var r1, r2 uint64
					ctx.lock.Read(th, func() {
						r1 = th.Load(ctx.litX)
						r2 = th.Load(ctx.litY)
					})
					ctx.litR1, ctx.litR2 = r1, r2
				}
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("x=%d y=%d", ctx.litR1, ctx.litR2)
			},
		},
		{
			name: "litmus-susp",
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				switch c.ID {
				case 0:
					ctx.lock.Write(th, func() {
						th.Store(ctx.litX, 1)
						// Widen the speculation window so the reader's
						// section can land inside the writer's suspended
						// quiescence scan.
						c.Work(64)
						th.Store(ctx.litY, 1)
					})
				case 1:
					var r1, r2 uint64
					ctx.lock.Read(th, func() {
						r1 = th.Load(ctx.litY)
						r2 = th.Load(ctx.litX)
					})
					ctx.litR1, ctx.litR2 = r1, r2
				}
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("y=%d x=%d", ctx.litR1, ctx.litR2)
			},
		},
		{
			name: "litmus-upd",
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				if c.ID > 1 {
					return
				}
				ctx.lock.Write(th, func() {
					th.Store(ctx.litX, th.Load(ctx.litX)+1)
				})
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("x=%d", ctx.m.Peek(ctx.litX))
			},
		},
	}
}

// litmusProgram resolves a litmus name to a runnable program. The shapes
// are fixed: cfg.Ops is ignored and threads beyond the first two idle.
func litmusProgram(name string) (program, bool) {
	for _, spec := range litmusSpecs() {
		if spec.name != name {
			continue
		}
		spec := spec
		return program{
			setup: func(ctx *runCtx) {
				ctx.litX = ctx.m.AllocRawAligned(1)
				ctx.litY = ctx.m.AllocRawAligned(1)
			},
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				if c.ID > 1 {
					return
				}
				spec.body(ctx, th, c)
			},
			check: func(ctx *runCtx) {
				ctx.outcome = spec.label(ctx)
			},
		}, true
	}
	return program{}, false
}

// EnumerateOutcomes explores cfg's schedule space and returns how often
// each outcome label was observed, instead of stopping at the first
// violation the way Explore does. It first runs the preemption-bounded DFS
// to exhaustion (the report's Exhausted flag states whether the whole
// bounded space was covered), then spends the rest of the execution budget
// on seed-swept burst walks: fine-grained deviations around the default
// schedule cannot reorder whole critical sections (running a long write
// path to completion first deviates at every decision point, blowing any
// preemption bound), but a burst walk favoring one CPU can, which is what
// adds the coarse-grained serialization witnesses to the set. Both phases
// are deterministic, so the returned set is a pure function of cfg.
func EnumerateOutcomes(cfg Config) (map[string]int, Report) {
	cfg = cfg.withDefaults()
	rep := Report{Config: cfg}
	outcomes := map[string]int{}
	record := func(spec schedule) *ctrl {
		sc := newCtrl(cfg, spec)
		out, desc, points, truncated := runOne(cfg, sc)
		rep.Executions++
		rep.Points += int64(points)
		if truncated {
			rep.Truncated++
		}
		outcomes[out]++
		if desc != "" && rep.Violation == nil {
			rep.Violation = &Violation{Desc: desc, Token: encodeToken(cfg, spec)}
		}
		return sc
	}
	prefix := []int{}
	for rep.Executions < cfg.MaxExecutions {
		sc := record(schedule{Kind: "prefix", Choices: prefix})
		prefix = nextPrefix(sc.trace, cfg.Preemptions)
		if prefix == nil {
			rep.Exhausted = true
			break
		}
	}
	for i := 0; rep.Executions < cfg.MaxExecutions; i++ {
		record(schedule{Kind: "walk", Seed: cfg.Seed + uint64(i)})
	}
	return outcomes, rep
}
