package check

import (
	"fmt"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// Litmus seeds: tiny fixed-shape programs, in the style of hardware litmus
// tests, that pin down how transactional and non-transactional code is
// allowed to interact under each lock scheme. Unlike the closed programs in
// program.go, a litmus program does not judge itself: every execution
// produces an *outcome label* (the reader's observed values), and
// EnumerateOutcomes exhausts the bounded schedule space to compute the set
// of labels a scheme can produce. The allowed-outcome sets live in
// litmus_test.go; future scheme work inherits both the shapes and the sets.
//
// All shapes run two threads — CPU 0 writes, CPU 1 observes — over two
// words x and y on distinct cache lines, so a torn commit is visible
// between them:
//
//   - litmus-pub (publication): the writer publishes x and then y in two
//     separate write sections; the reader's single read section loads y
//     then x. Seeing the flag (y=1) without the data (x=0) is forbidden.
//   - litmus-agg (aggregate-store visibility): the writer stores x and y
//     inside one write section; the reader loads x then y in one read
//     section. Commits are aggregate, so only x=y snapshots are allowed.
//   - litmus-susp (suspend-window race): litmus-agg with the writer's
//     section widened by private work between the stores and the reader
//     loading in reverse (y then x) — the shape of paper §3 Fig. 2, where
//     the reader's section overlaps the writer's suspended quiescence scan
//     and must either be waited for or doom the speculation.
//   - litmus-upd (lost update): both threads run a read-modify-write
//     section incrementing x; the only allowed final state is x=2.
//   - litmus-sub (subscription): CPU 0's write section stores x and then a
//     filler block that overflows the HTM (and ROT) write capacity, so the
//     section deterministically falls through to the non-speculative path;
//     CPU 1's write section is a small read-modify-write (y = x+1) that can
//     elide. The value outcomes are the two serializations regardless of
//     subscription discipline — a lazily subscribing CPU 1 that observes
//     CPU 0's mid-section store commits the same y=2 a legal serialization
//     produces. Only the simsan race sanitizer (Config.Sanitize) separates
//     the two, which is the point of the shape: it is the validation
//     program for the unsafe-lazy-subscription mutation.
type litmusSpec struct {
	name string
	// setup optionally allocates extra state after the common x/y words.
	setup func(ctx *runCtx)
	body  func(ctx *runCtx, th *htm.Thread, c *machine.CPU)
	// label renders the outcome from the reader's observations and the
	// final memory state after all threads finished.
	label func(ctx *runCtx) string
}

// LitmusPrograms returns the litmus program names, runnable through the
// same Config.Program field as the closed programs. They are deliberately
// not part of Programs(): the engine differential harness captures
// Schemes()×Programs() golden traces, while litmus outcome sets are pinned
// by their own exhaustive enumerations in litmus_test.go.
func LitmusPrograms() []string {
	return []string{"litmus-pub", "litmus-agg", "litmus-susp", "litmus-upd", "litmus-sub"}
}

// litSubFillLines is litmus-sub's filler size in cache lines. With the
// default 64-line write budget, the filler plus x overflows both the HTM
// and ROT write sets, forcing a persistent capacity abort on each
// speculative path and hence the non-speculative fallback.
const litSubFillLines = 68

// litSubDelay is the virtual-cycle delay at the top of CPU 1's elided
// section, sized to cover CPU 0's full abort-abort-fallback sequence. Under
// the default minimum-virtual-time policy it makes CPU 0 run its whole
// write section — including the fallback store to x — between CPU 1's
// pre-section lock-word check and its load of x, which is exactly the
// window an unsafe lazy subscription fails to close: the default schedule
// itself becomes the race witness, so the sanitizer catches the mutation
// without needing a rare interleaving. (With eager subscription the same
// schedule is clean: CPU 0's fallback acquisition dooms the section, and
// the retry re-subscribes after CPU 0's release.)
const litSubDelay = 16384

func litmusSpecs() []litmusSpec {
	return []litmusSpec{
		{
			name: "litmus-pub",
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				switch c.ID {
				case 0:
					ctx.lock.Write(th, func() { th.Store(ctx.litX, 1) })
					ctx.lock.Write(th, func() { th.Store(ctx.litY, 1) })
				case 1:
					var r1, r2 uint64
					ctx.lock.Read(th, func() {
						r1 = th.Load(ctx.litY)
						r2 = th.Load(ctx.litX)
					})
					ctx.litR1, ctx.litR2 = r1, r2
				}
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("y=%d x=%d", ctx.litR1, ctx.litR2)
			},
		},
		{
			name: "litmus-agg",
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				switch c.ID {
				case 0:
					ctx.lock.Write(th, func() {
						th.Store(ctx.litX, 1)
						th.Store(ctx.litY, 1)
					})
				case 1:
					var r1, r2 uint64
					ctx.lock.Read(th, func() {
						r1 = th.Load(ctx.litX)
						r2 = th.Load(ctx.litY)
					})
					ctx.litR1, ctx.litR2 = r1, r2
				}
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("x=%d y=%d", ctx.litR1, ctx.litR2)
			},
		},
		{
			name: "litmus-susp",
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				switch c.ID {
				case 0:
					ctx.lock.Write(th, func() {
						th.Store(ctx.litX, 1)
						// Widen the speculation window so the reader's
						// section can land inside the writer's suspended
						// quiescence scan.
						c.Work(64)
						th.Store(ctx.litY, 1)
					})
				case 1:
					var r1, r2 uint64
					ctx.lock.Read(th, func() {
						r1 = th.Load(ctx.litY)
						r2 = th.Load(ctx.litX)
					})
					ctx.litR1, ctx.litR2 = r1, r2
				}
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("y=%d x=%d", ctx.litR1, ctx.litR2)
			},
		},
		{
			name: "litmus-upd",
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				if c.ID > 1 {
					return
				}
				ctx.lock.Write(th, func() {
					th.Store(ctx.litX, th.Load(ctx.litX)+1)
				})
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("x=%d", ctx.m.Peek(ctx.litX))
			},
		},
		{
			name: "litmus-sub",
			setup: func(ctx *runCtx) {
				lw := int64(ctx.m.Cfg.LineWords)
				ctx.litF = ctx.m.AllocRawAligned(litSubFillLines * lw)
			},
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				switch c.ID {
				case 0:
					lw := machine.Addr(ctx.m.Cfg.LineWords)
					ctx.lock.Write(th, func() {
						th.Store(ctx.litX, 1)
						// One store per line: overflow the write capacity
						// so the section reaches the NS path. The fillers
						// are never touched by CPU 1, so the only shared
						// data word is x.
						for i := machine.Addr(0); i < litSubFillLines; i++ {
							th.Store(ctx.litF+i*lw, 1)
						}
					})
				case 1:
					ctx.lock.Write(th, func() {
						c.Work(litSubDelay)
						th.Store(ctx.litY, th.Load(ctx.litX)+1)
					})
				}
			},
			label: func(ctx *runCtx) string {
				return fmt.Sprintf("x=%d y=%d", ctx.m.Peek(ctx.litX), ctx.m.Peek(ctx.litY))
			},
		},
	}
}

// litmusProgram resolves a litmus name to a runnable program. The shapes
// are fixed: cfg.Ops is ignored and threads beyond the first two idle.
func litmusProgram(name string) (program, bool) {
	for _, spec := range litmusSpecs() {
		if spec.name != name {
			continue
		}
		spec := spec
		return program{
			setup: func(ctx *runCtx) {
				ctx.litX = ctx.m.AllocRawAligned(1)
				ctx.litY = ctx.m.AllocRawAligned(1)
				if spec.setup != nil {
					spec.setup(ctx)
				}
			},
			body: func(ctx *runCtx, th *htm.Thread, c *machine.CPU) {
				if c.ID > 1 {
					return
				}
				spec.body(ctx, th, c)
			},
			check: func(ctx *runCtx) {
				ctx.outcome = spec.label(ctx)
			},
		}, true
	}
	return program{}, false
}

// EnumerateOutcomes explores cfg's schedule space and returns how often
// each outcome label was observed, instead of stopping at the first
// violation the way Explore does. It runs the preemption-bounded DFS for
// up to half the execution budget (the report's Exhausted flag states
// whether the whole bounded space was covered), then spends the rest on
// seed-swept burst walks: fine-grained deviations around the default
// schedule cannot reorder whole critical sections (running a long write
// path to completion first deviates at every decision point, blowing any
// preemption bound), but a burst walk favoring one CPU can, which is what
// adds the coarse-grained serialization witnesses to the set. Capping the
// DFS phase keeps the walk phase alive even for shapes whose bounded tree
// outgrows any reasonable budget (litmus-sub's delayed reader keeps both
// CPUs runnable across the writer's whole fallback section, multiplying
// the decision points). Both phases are deterministic, so the returned
// set is a pure function of cfg.
func EnumerateOutcomes(cfg Config) (map[string]int, Report) {
	cfg = cfg.withDefaults()
	rep := Report{Config: cfg}
	outcomes := map[string]int{}
	record := func(spec schedule) *ctrl {
		sc := newCtrl(cfg, spec)
		out, desc, points, truncated := runOne(cfg, sc)
		rep.Executions++
		rep.Points += int64(points)
		if truncated {
			rep.Truncated++
		}
		outcomes[out]++
		if desc != "" && rep.Violation == nil {
			rep.Violation = &Violation{Desc: desc, Token: encodeToken(cfg, spec)}
		}
		return sc
	}
	prefix := []int{}
	for rep.Executions < cfg.MaxExecutions/2 {
		sc := record(schedule{Kind: "prefix", Choices: prefix})
		prefix = nextPrefix(sc.trace, cfg.Preemptions)
		if prefix == nil {
			rep.Exhausted = true
			break
		}
	}
	for i := 0; rep.Executions < cfg.MaxExecutions; i++ {
		record(schedule{Kind: "walk", Seed: cfg.Seed + uint64(i)})
	}
	return outcomes, rep
}
