// Package check is a systematic concurrency checker for the
// synchronization schemes in this repository. It drives the deterministic
// machine simulator with a *controlled* scheduler (machine.Scheduler)
// instead of the default minimum-virtual-time policy, enumerating thread
// interleavings of small closed programs and checking every explored
// execution against a sequential reference model plus the RW-LE-specific
// invariants:
//
//   - aggregate-store atomicity of ROT and HTM commits (a reader never
//     observes a partially published write set);
//   - no lost dooms across suspend/resume (a reader arriving during a
//     writer's quiescence loop must kill the suspended speculation —
//     paper §3, Fig. 2);
//   - linearizability of the guarded data structure against a sequential
//     reference, witnessed by a per-lock sequence number.
//
// Two exploration strategies share one schedule representation:
// preemption-bounded exhaustive DFS for tiny configurations, and
// seed-swept random walks for larger ones. Any violating execution is
// summarized as a replay token — a self-contained string that
// deterministically reproduces the exact interleaving (see Replay).
package check

import (
	"fmt"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

// Mutations the checker validates itself against: each re-introduces a
// known-dangerous simplification behind a test-only knob, and the explorer
// must find a violation within the default budget.
const (
	// MutLoseDoomAtResume forgets conflicts recorded while a transaction
	// was suspended (htm.Config.UnsafeLoseDoomAtResume).
	MutLoseDoomAtResume = "lose-doom-at-resume"
	// MutSkipROTQuiesce drops the quiescence barrier on the ROT path
	// (core.Options.UnsafeSkipROTQuiesce).
	MutSkipROTQuiesce = "skip-rot-quiesce"
	// MutLazySubscription reads the lock word only after the HTM critical
	// section body ran (core.Options.UnsafeLazySubscription). Its unsafety
	// is invisible to value-based oracles — the torn observation commits
	// values a legal serialization could also produce — so this mutation is
	// validated by the simsan race sanitizer (Config.Sanitize), not by the
	// invariant oracles.
	MutLazySubscription = "lazy-subscription"
)

// Config selects what to explore and how hard.
type Config struct {
	// Scheme is a name from Schemes() (default RW-LE_OPT).
	Scheme string
	// Program is "record" or "hashmap" (default record).
	Program string
	// Threads is the number of simulated threads (default 3).
	Threads int
	// Ops is the number of critical sections per thread (default 2).
	Ops int
	// Preemptions bounds how far exhaustive DFS may deviate from the
	// default schedule in one execution (default 2).
	Preemptions int
	// MaxExecutions is the total exploration budget across both
	// strategies (default 1500).
	MaxExecutions int
	// WalkPreemptPct is the per-decision probability (%) that a random
	// walk deviates from the default choice (default 30).
	WalkPreemptPct int
	// MaxSteps truncates pathological schedules: after this many decision
	// points one execution falls back to the default policy so it always
	// terminates (default 40000).
	MaxSteps int
	// Mutation optionally enables one of the checker-validation knobs
	// (MutLoseDoomAtResume, MutSkipROTQuiesce, MutLazySubscription).
	Mutation string
	// Seed is the base seed of the random-walk sweep (default 1).
	Seed uint64
	// Sanitize runs the simsan happens-before race detector over every
	// explored execution; a detected race is reported as a violation. The
	// sanitizer observes passively (no virtual time, no extra scheduling
	// points), so the explored schedule space is identical either way.
	// Omitted from violation tokens when off so pre-sanitizer tokens (and
	// golden captures embedding them) keep their exact encoding.
	Sanitize bool `json:",omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Scheme == "" {
		c.Scheme = "RW-LE_OPT"
	}
	if c.Program == "" {
		c.Program = "record"
	}
	if c.Threads <= 0 {
		c.Threads = 3
	}
	if c.Ops <= 0 {
		c.Ops = 2
	}
	if c.Preemptions <= 0 {
		c.Preemptions = 2
	}
	if c.MaxExecutions <= 0 {
		c.MaxExecutions = 1500
	}
	if c.WalkPreemptPct <= 0 {
		c.WalkPreemptPct = 30
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 40000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Schemes returns the scheme names the checker explores by default.
func Schemes() []string {
	return []string{"RW-LE_OPT", "RW-LE_PES", "RW-LE_FAIR", "RW-LE_SPLIT", "HLE", "BRLock"}
}

// Programs returns the closed test programs the checker knows.
func Programs() []string { return []string{"record", "hashmap"} }

// Violation describes one failing execution.
type Violation struct {
	// Desc is a human-readable statement of the broken invariant.
	Desc string
	// Token deterministically replays the violating execution (Replay).
	Token string
}

// Report summarizes one exploration.
type Report struct {
	Config     Config
	Executions int   // executions actually run
	Points     int64 // decision points across all executions
	Truncated  int   // executions that hit MaxSteps and drained
	Exhausted  bool  // DFS enumerated the whole bounded schedule space
	Violation  *Violation
}

func (r Report) String() string {
	s := fmt.Sprintf("%s/%s threads=%d ops=%d: %d executions, %d decision points",
		r.Config.Scheme, r.Config.Program, r.Config.Threads, r.Config.Ops, r.Executions, r.Points)
	if r.Exhausted {
		s += " (schedule space exhausted)"
	}
	if r.Violation != nil {
		s += "\n  VIOLATION: " + r.Violation.Desc + "\n  replay: " + r.Violation.Token
	}
	return s
}

// buildSystem constructs a fresh machine, HTM system and lock instance for
// one execution of cfg. Memory is small and paging is off: the checker
// cares about interleavings, not timing.
func buildSystem(cfg Config) (*machine.Machine, *htm.System, rwlock.Lock) {
	m := machine.New(machine.Config{CPUs: cfg.Threads, MemWords: 1 << 12, Seed: 1})
	hcfg := htm.Config{UnsafeLoseDoomAtResume: cfg.Mutation == MutLoseDoomAtResume}
	sys := htm.NewSystem(m, hcfg)
	return m, sys, buildLock(sys, cfg)
}

// buildLock resolves cfg.Scheme, applying the mutation knobs that live in
// core.Options. It parallels harness.SchemeFactory but needs direct access
// to the options, which the harness factory does not expose.
func buildLock(sys *htm.System, cfg Config) rwlock.Lock {
	rot := cfg.Mutation == MutSkipROTQuiesce
	lazy := cfg.Mutation == MutLazySubscription
	mkCore := func(o core.Options) rwlock.Lock {
		o.UnsafeSkipROTQuiesce = rot
		o.UnsafeLazySubscription = lazy
		return core.New(sys, o)
	}
	switch cfg.Scheme {
	case "RW-LE_OPT":
		return mkCore(core.Opt())
	case "RW-LE_PES":
		return mkCore(core.Pes())
	case "RW-LE_FAIR":
		o := core.Opt()
		o.Fair = true
		o.Name = "RW-LE_FAIR"
		return mkCore(o)
	case "RW-LE_SPLIT":
		o := core.Opt()
		o.SplitLocks = true
		o.Name = "RW-LE_SPLIT"
		return mkCore(o)
	case "HLE":
		return locks.NewHLE(sys)
	case "BRLock":
		return locks.NewBRLock(sys)
	case "RWL":
		return locks.NewRWL(sys)
	case "SGL":
		return locks.NewSGL(sys)
	}
	panic("check: unknown scheme " + cfg.Scheme)
}
