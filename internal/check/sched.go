package check

import "hrwle/internal/machine"

// schedule is the serializable description of one controlled schedule.
// Exactly one of the two forms is meaningful per Kind.
type schedule struct {
	// Kind is "prefix" (DFS: replay Choices, then default policy) or
	// "walk" (seeded random walk).
	Kind string `json:"kind"`
	// Choices are indices into the ID-sorted runnable set, one per
	// decision point, for the prefix form.
	Choices []int `json:"choices,omitempty"`
	// Seed drives the walk form.
	Seed uint64 `json:"seed,omitempty"`
}

// choicePoint records one consulted decision (only points with ≥2 runnable
// CPUs count — forced moves are not decisions).
type choicePoint struct {
	chosen int // index picked, into the ID-sorted runnable slice
	def    int // index the default min-time policy would pick
	n      int // number of runnable CPUs
}

// ctrl is the controlled scheduler: it replays a choice prefix or follows
// a seeded walk, falling back to the default minimum-virtual-time policy
// beyond the prefix — and unconditionally after maxSteps decisions, so
// hostile schedules cannot livelock spin loops (the default policy always
// makes progress: spinning advances a CPU's clock until the lock holder
// becomes the minimum).
type ctrl struct {
	spec       schedule
	rng        splitmix
	preemptPct int
	maxSteps   int

	preferred int // walk mode: CPU ID currently favored (-1 = none)

	trace     []choicePoint
	truncated bool
}

func newCtrl(cfg Config, spec schedule) *ctrl {
	return &ctrl{
		spec:       spec,
		rng:        splitmix{state: spec.Seed},
		preemptPct: cfg.WalkPreemptPct,
		maxSteps:   cfg.MaxSteps,
		preferred:  -1,
	}
}

// Pick implements machine.Scheduler.
func (s *ctrl) Pick(current *machine.CPU, runnable []*machine.CPU) *machine.CPU {
	if len(runnable) == 1 {
		return runnable[0]
	}
	def := minTimeIdx(runnable)
	if s.truncated || len(s.trace) >= s.maxSteps {
		s.truncated = true
		return runnable[def]
	}
	ch := def
	switch s.spec.Kind {
	case "prefix":
		if k := len(s.trace); k < len(s.spec.Choices) {
			if c := s.spec.Choices[k]; c >= 0 && c < len(runnable) {
				ch = c
			}
		}
	case "walk":
		// Burst scheduling: favor one CPU for a geometric run of decisions
		// (mean 100/preemptPct), then re-pick uniformly. Long bursts are
		// what drive a writer's whole suspend-quiesce-resume-commit window
		// inside a reader's critical section, and vice versa — uniform
		// per-step coin flips almost never produce them.
		ch = -1
		if s.preferred >= 0 && int(s.rng.next()%100) >= s.preemptPct {
			for i, c := range runnable {
				if c.ID == s.preferred {
					ch = i
					break
				}
			}
		}
		if ch < 0 {
			ch = int(s.rng.next() % uint64(len(runnable)))
			s.preferred = runnable[ch].ID
		}
	}
	s.trace = append(s.trace, choicePoint{chosen: ch, def: def, n: len(runnable)})
	return runnable[ch]
}

// minTimeIdx returns the index of the CPU the default policy would run:
// smallest virtual clock, smallest ID tie-break (runnable is ID-sorted, so
// the first minimum wins).
func minTimeIdx(runnable []*machine.CPU) int {
	best := 0
	for i := 1; i < len(runnable); i++ {
		if runnable[i].Now() < runnable[best].Now() {
			best = i
		}
	}
	return best
}

// splitmix is a SplitMix64 stream for walk decisions, independent of the
// machine's own RNGs so walk schedules are a pure function of the seed.
type splitmix struct{ state uint64 }

func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
