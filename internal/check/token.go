package check

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
)

// tokenPayload is the self-contained description of one execution: the
// full configuration plus the schedule. Together with the simulator's
// determinism it reproduces a run bit-for-bit.
type tokenPayload struct {
	V     int      `json:"v"`
	Cfg   Config   `json:"cfg"`
	Sched schedule `json:"sched"`
}

// encodeToken serializes a (config, schedule) pair as a replay token.
func encodeToken(cfg Config, spec schedule) string {
	b, err := json.Marshal(tokenPayload{V: 1, Cfg: cfg, Sched: spec})
	if err != nil {
		panic("check: token encode: " + err.Error())
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// DecodeToken parses a replay token back into its configuration (useful
// for reporting what a token contains without running it).
func DecodeToken(token string) (Config, error) {
	p, err := decodeToken(token)
	return p.Cfg, err
}

func decodeToken(token string) (tokenPayload, error) {
	var p tokenPayload
	b, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil {
		return p, fmt.Errorf("check: bad token encoding: %w", err)
	}
	if err := json.Unmarshal(b, &p); err != nil {
		return p, fmt.Errorf("check: bad token payload: %w", err)
	}
	if p.V != 1 {
		return p, fmt.Errorf("check: unsupported token version %d", p.V)
	}
	switch p.Sched.Kind {
	case "prefix", "walk":
	default:
		return p, fmt.Errorf("check: unknown schedule kind %q", p.Sched.Kind)
	}
	return p, nil
}

// Replay deterministically re-executes the single schedule a token
// describes and reports whether the violation reproduces.
func Replay(token string) (Report, error) {
	p, err := decodeToken(token)
	if err != nil {
		return Report{}, err
	}
	cfg := p.Cfg.withDefaults()
	rep := Report{Config: cfg}
	rep.Violation = runRecorded(cfg, p.Sched, &rep)
	return rep, nil
}
