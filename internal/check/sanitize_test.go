package check

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// sanitizeConfig is litmusConfig plus the sanitizer, at a budget sized for
// a clean sweep (no early stop on violation means every execution runs).
func sanitizeConfig(program, scheme, mutation string) Config {
	cfg := litmusConfig(program, scheme, mutation)
	cfg.Sanitize = true
	cfg.MaxExecutions = 400
	return cfg
}

// TestSanitizerCleanLitmus sweeps every litmus shape under every scheme
// with the race sanitizer attached: the synchronization disciplines the
// schemes implement must type-check against the happens-before model with
// zero reports. This is the sanitizer's false-positive guard over the
// trickiest schedules the explorer can produce — including the elided
// sections that commit without ever writing the lock word, which only the
// subscription edge orders.
func TestSanitizerCleanLitmus(t *testing.T) {
	for _, program := range LitmusPrograms() {
		for _, scheme := range litmusSchemes() {
			t.Run(fmt.Sprintf("%s/%s", program, scheme), func(t *testing.T) {
				rep := Explore(sanitizeConfig(program, scheme, ""))
				if rep.Violation != nil {
					t.Fatalf("sanitizer reported a race on a correct scheme: %s",
						rep.Violation.Desc)
				}
			})
		}
	}
}

// TestSanitizerCleanPrograms runs the closed invariant programs — the
// multi-word record and the open-addressing hashmap, whose sections do
// real data-structure work — under the sanitizer. Three threads and the
// full mixed read/write schedule space exercise reader/writer overlap,
// suspension windows and fallback interleavings far beyond the litmus
// shapes.
func TestSanitizerCleanPrograms(t *testing.T) {
	for _, program := range []string{"record", "hashmap"} {
		for _, scheme := range Schemes() {
			t.Run(fmt.Sprintf("%s/%s", program, scheme), func(t *testing.T) {
				rep := Explore(Config{
					Program:       program,
					Scheme:        scheme,
					Sanitize:      true,
					MaxExecutions: 300,
				})
				if rep.Violation != nil {
					t.Fatalf("sanitizer reported a race on a correct scheme: %s",
						rep.Violation.Desc)
				}
			})
		}
	}
}

// TestSanitizerCatchesLazySubscription is the seeded-mutation gate for the
// sanitizer: on every scheme whose writers elide through the HTM path, the
// unsafe-lazy-subscription mutation must be caught on litmus-sub — and on
// the very first explored schedule, because litmus-sub's delayed reader
// makes the default minimum-virtual-time schedule itself the race witness.
// Value oracles cannot see this bug (TestLitmusOutcomeSets pins identical
// outcome sets with and without the mutation); the two-site report below
// is the only signal separating the disciplines.
func TestSanitizerCatchesLazySubscription(t *testing.T) {
	for _, scheme := range []string{"RW-LE_OPT", "RW-LE_FAIR", "RW-LE_SPLIT"} {
		t.Run(scheme, func(t *testing.T) {
			rep := Explore(sanitizeConfig("litmus-sub", scheme, MutLazySubscription))
			if rep.Violation == nil {
				t.Fatalf("lazy-subscription mutation not caught in %d executions",
					rep.Executions)
			}
			desc := rep.Violation.Desc
			if !strings.HasPrefix(desc, "simsan: ") {
				t.Fatalf("violation not attributed to the sanitizer: %s", desc)
			}
			// The report must carry both access sites with CPU, kind and
			// virtual time — that is what makes it actionable.
			for _, site := range []string{"CPU 0 write", "CPU 1 read", "@t="} {
				if !strings.Contains(desc, site) {
					t.Fatalf("report lacks site %q: %s", site, desc)
				}
			}
			if rep.Executions != 1 {
				t.Errorf("expected detection on the default schedule, took %d executions",
					rep.Executions)
			}
			if rep.Violation.Token == "" {
				t.Error("race report carries no replay token")
			}
		})
	}
}

// TestSanitizerLazySubscriptionImmunity pins the mutation's negative
// space: RW-LE_PES starts writers at the ROT path (MaxHTM=0) and the
// non-core schemes never subscribe at all, so the mutated build must stay
// race-free — a sanitizer report here would be a false positive, not a
// catch.
func TestSanitizerLazySubscriptionImmunity(t *testing.T) {
	for _, scheme := range []string{"RW-LE_PES", "HLE", "BRLock", "SGL"} {
		t.Run(scheme, func(t *testing.T) {
			rep := Explore(sanitizeConfig("litmus-sub", scheme, MutLazySubscription))
			if rep.Violation != nil {
				t.Fatalf("immune scheme flagged: %s", rep.Violation.Desc)
			}
		})
	}
}

// TestSanitizerZeroPerturbation proves the sanitizer is a pure observer:
// enumerating the same configuration with and without it must visit the
// identical schedule space (execution and decision-point counts) and
// produce the identical outcome multiset. Any drift would mean attaching
// the tracer changed simulated behavior, invalidating every sanitized
// result.
func TestSanitizerZeroPerturbation(t *testing.T) {
	for _, program := range []string{"litmus-agg", "litmus-sub"} {
		t.Run(program, func(t *testing.T) {
			plain := litmusConfig(program, "RW-LE_OPT", "")
			plain.MaxExecutions = 400
			san := plain
			san.Sanitize = true
			outPlain, repPlain := EnumerateOutcomes(plain)
			outSan, repSan := EnumerateOutcomes(san)
			if !reflect.DeepEqual(outPlain, outSan) {
				t.Fatalf("outcome sets diverged: plain %v, sanitized %v", outPlain, outSan)
			}
			if repPlain.Executions != repSan.Executions || repPlain.Points != repSan.Points ||
				repPlain.Exhausted != repSan.Exhausted || repPlain.Truncated != repSan.Truncated {
				t.Fatalf("schedule space diverged: plain %+v, sanitized %+v", repPlain, repSan)
			}
		})
	}
}
