package enginediff

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the engine golden capture")

const goldenPath = "testdata/engine_golden.json"

// TestEngineEquivalence asserts that the current engine reproduces, bit for
// bit, the capture recorded on the previous engine: every figure point's
// cycles and event stream, every Print table, every checker exploration and
// both seeded-mutation replay tokens. A failure here means the engine
// changed *simulation semantics*, not just its execution machinery.
func TestEngineEquivalence(t *testing.T) {
	got := CaptureAll()

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden capture rewritten: %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden capture (regenerate on a KNOWN-GOOD engine with -update): %v", err)
	}
	var want Capture
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden capture: %v", err)
	}

	if len(got.Figures) != len(want.Figures) {
		t.Fatalf("figure count drifted: got %d, want %d", len(got.Figures), len(want.Figures))
	}
	for i, wf := range want.Figures {
		gf := got.Figures[i]
		if gf.ID != wf.ID {
			t.Fatalf("figure order drifted at %d: got %s, want %s", i, gf.ID, wf.ID)
		}
		if len(gf.Points) != len(wf.Points) {
			t.Errorf("%s: point count drifted: got %d, want %d", gf.ID, len(gf.Points), len(wf.Points))
			continue
		}
		for j, wp := range wf.Points {
			gp := gf.Points[j]
			if gp != wp {
				t.Errorf("%s point %d (%s n=%d w=%d%%) diverged:\n  got  %+v\n  want %+v",
					gf.ID, j, wp.Scheme, wp.Threads, wp.WritePct, gp, wp)
			}
		}
		if gf.Print != wf.Print {
			t.Errorf("%s: Print bytes diverged\n--- got ---\n%s\n--- want ---\n%s", gf.ID, gf.Print, wf.Print)
		}
	}

	if len(got.Explorations) != len(want.Explorations) {
		t.Fatalf("exploration count drifted: got %d, want %d", len(got.Explorations), len(want.Explorations))
	}
	for i, we := range want.Explorations {
		if ge := got.Explorations[i]; ge != we {
			t.Errorf("exploration %s/%s diverged:\n  got  %+v\n  want %+v", we.Scheme, we.Program, ge, we)
		}
	}

	if len(got.Mutations) != len(want.Mutations) {
		t.Fatalf("mutation count drifted: got %d, want %d", len(got.Mutations), len(want.Mutations))
	}
	for i, wm := range want.Mutations {
		if gm := got.Mutations[i]; gm != wm {
			t.Errorf("mutation %s/%s diverged:\n  got  %+v\n  want %+v", wm.Scheme, wm.Mutation, gm, wm)
		}
	}
}

// TestCaptureIsDeterministic guards the harness itself: two captures of the
// mini-sweeps on the same engine must be identical, otherwise a golden
// mismatch could be blamed on the engine when the harness is at fault.
// Figure fig5 alone keeps the double run cheap.
func TestCaptureIsDeterministic(t *testing.T) {
	a, b := captureFigure("fig5"), captureFigure("fig5")
	if a.Print != b.Print || len(a.Points) != len(b.Points) {
		t.Fatal("repeated capture diverged in shape")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d not deterministic:\n  first  %+v\n  second %+v", i, a.Points[i], b.Points[i])
		}
	}
}
