// Package enginediff is the differential equivalence harness that pins the
// simulator engine's observable behavior across engine rewrites. It runs a
// mini version of every figure sweep plus the internal/check DFS and
// random-walk explorations, and folds three kinds of observables into a
// committed golden capture (testdata/engine_golden.json):
//
//   - the complete trace-event stream of every measurement point and every
//     explored schedule, fingerprinted event by event (time, CPU, kind,
//     address, aux — any reordering or value drift changes the hash);
//   - the formatted figure tables (Print bytes);
//   - the checker's reports and violation replay tokens, including the two
//     seeded mutations that must keep producing the identical token.
//
// The capture in testdata was recorded on the goroutine-per-CPU
// token-passing engine immediately before it was replaced by the inline
// coroutine scheduler loop; the test suite asserts the current engine
// reproduces it bit for bit. Regenerate with
// `go test ./internal/enginediff -update` ONLY when an intentional
// simulation-semantics change (never a pure engine change) alters results.
package enginediff

import (
	"bytes"
	"fmt"
	"sort"

	"hrwle/internal/check"
	"hrwle/internal/harness"
	"hrwle/internal/machine"
)

// streamHash folds trace events into an FNV-1a fingerprint as they arrive.
// It retains nothing, so whole-sweep streams cost no memory, and any
// difference in event order, count or content changes the final sum.
type streamHash struct {
	sum    uint64
	events int64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newStreamHash() *streamHash { return &streamHash{sum: fnvOffset} }

func (h *streamHash) word(v uint64) {
	for i := 0; i < 8; i++ {
		h.sum = (h.sum ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
}

// Event implements machine.Tracer.
func (h *streamHash) Event(e machine.Event) {
	h.events++
	h.word(uint64(e.Time))
	h.word(uint64(e.CPU)<<8 | uint64(e.Kind))
	h.word(uint64(e.Addr))
	h.word(e.Aux)
}

func (h *streamHash) hex() string { return fmt.Sprintf("%016x", h.sum) }

// PointCapture is the observable record of one measurement point: the
// virtual-time result plus the event-stream fingerprint of every machine
// the point constructed.
type PointCapture struct {
	Scheme     string `json:"scheme"`
	Threads    int    `json:"threads"`
	WritePct   int    `json:"write_pct"`
	Cycles     int64  `json:"cycles"`
	Ops        int64  `json:"ops"`
	Events     int64  `json:"events"`
	StreamHash string `json:"stream_hash"`
}

// FigureCapture is one figure's mini-sweep: its points plus the formatted
// table exactly as Print renders it.
type FigureCapture struct {
	ID     string         `json:"id"`
	Print  string         `json:"print"`
	Points []PointCapture `json:"points"`
}

// ExploreCapture summarizes one checker exploration, with the event
// streams of all explored schedules folded into one fingerprint.
type ExploreCapture struct {
	Scheme     string `json:"scheme"`
	Program    string `json:"program"`
	Executions int    `json:"executions"`
	Points     int64  `json:"points"`
	Truncated  int    `json:"truncated"`
	Exhausted  bool   `json:"exhausted"`
	StreamHash string `json:"stream_hash"`
}

// MutationCapture records a seeded-mutation exploration: the violation the
// checker must find, its deterministic replay token, and the event-stream
// fingerprint of replaying that token.
type MutationCapture struct {
	Scheme           string `json:"scheme"`
	Mutation         string `json:"mutation"`
	Desc             string `json:"desc"`
	Token            string `json:"token"`
	ReplayStreamHash string `json:"replay_stream_hash"`
}

// Capture is the full golden record.
type Capture struct {
	Figures      []FigureCapture   `json:"figures"`
	Explorations []ExploreCapture  `json:"explorations"`
	Mutations    []MutationCapture `json:"mutations"`
}

// miniScale is the work multiplier of the per-figure mini-sweeps. It
// matches the harness golden test's scale so the sweeps stay CI-cheap.
const miniScale = 0.02

// miniSpec shrinks a figure to a differential mini-sweep: two thread
// counts and at most the two extreme write ratios. The shrink must stay
// stable across PRs — the committed capture encodes its exact points.
func miniSpec(id string) *harness.FigureSpec {
	spec := *harness.Registry()[id]
	spec.Threads = []int{2, 4}
	if len(spec.WritePcts) > 2 {
		spec.WritePcts = []int{spec.WritePcts[0], spec.WritePcts[len(spec.WritePcts)-1]}
	}
	return &spec
}

// exploreBudget bounds the differential explorations: large enough to
// exercise both DFS and random-walk strategies, small enough for CI.
const exploreBudget = 60

// CaptureAll runs every differential workload on the current engine and
// returns the capture.
func CaptureAll() *Capture {
	cap := &Capture{}

	ids := make([]string, 0, len(harness.Registry()))
	for id := range harness.Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cap.Figures = append(cap.Figures, captureFigure(id))
	}

	for _, scheme := range check.Schemes() {
		for _, prog := range check.Programs() {
			cap.Explorations = append(cap.Explorations, captureExplore(scheme, prog))
		}
	}

	cap.Mutations = []MutationCapture{
		captureMutation("RW-LE_OPT", check.MutLoseDoomAtResume),
		captureMutation("RW-LE_PES", check.MutSkipROTQuiesce),
	}
	return cap
}

// captureFigure runs one figure's mini-sweep point by point, in the same
// deterministic order as FigureSpec.Run, hashing each point's event stream.
func captureFigure(id string) FigureCapture {
	spec := miniSpec(id)
	fc := FigureCapture{ID: id}
	var results []harness.Result
	for _, w := range spec.WritePcts {
		for _, n := range spec.Threads {
			for _, s := range spec.Schemes {
				h := newStreamHash()
				ctx := harness.PointCtx{Observe: func(m *machine.Machine) { m.SetTracer(h) }}
				r := spec.Point(ctx, s, n, w, miniScale)
				r.Figure, r.Scheme, r.Threads, r.WritePct = spec.ID, s, n, w
				results = append(results, r)
				fc.Points = append(fc.Points, PointCapture{
					Scheme: s, Threads: n, WritePct: w,
					Cycles: r.Cycles, Ops: r.B.Ops,
					Events: h.events, StreamHash: h.hex(),
				})
			}
		}
	}
	var buf bytes.Buffer
	harness.Print(&buf, spec, results)
	fc.Print = buf.String()
	return fc
}

// captureExplore runs one clean exploration with the trace hook installed,
// folding every execution's events into a single fingerprint.
func captureExplore(scheme, prog string) ExploreCapture {
	h := newStreamHash()
	check.TraceHook = func() machine.Tracer { return h }
	defer func() { check.TraceHook = nil }()

	rep := check.Explore(check.Config{Scheme: scheme, Program: prog, MaxExecutions: exploreBudget})
	ec := ExploreCapture{
		Scheme: scheme, Program: prog,
		Executions: rep.Executions, Points: rep.Points,
		Truncated: rep.Truncated, Exhausted: rep.Exhausted,
		StreamHash: h.hex(),
	}
	if rep.Violation != nil {
		// Clean schemes must stay clean; fold the evidence into the capture
		// so the diff surfaces it instead of silently hashing it.
		ec.StreamHash = "VIOLATION:" + rep.Violation.Desc
	}
	return ec
}

// captureMutation explores a seeded mutation until the checker finds the
// violation, then replays its token under the trace hook.
func captureMutation(scheme, mutation string) MutationCapture {
	rep := check.Explore(check.Config{Scheme: scheme, Mutation: mutation})
	mc := MutationCapture{Scheme: scheme, Mutation: mutation}
	if rep.Violation == nil {
		mc.Desc = "MUTATION NOT DETECTED"
		return mc
	}
	mc.Desc = rep.Violation.Desc
	mc.Token = rep.Violation.Token

	h := newStreamHash()
	check.TraceHook = func() machine.Tracer { return h }
	defer func() { check.TraceHook = nil }()
	if _, err := check.Replay(mc.Token); err != nil {
		mc.ReplayStreamHash = "REPLAY ERROR: " + err.Error()
		return mc
	}
	mc.ReplayStreamHash = h.hex()
	return mc
}
