// Package stats collects the commit-path and abort-cause breakdowns that
// the paper's evaluation figures report. The categories match the figure
// legends of Felber et al. (EuroSys'16) exactly:
//
//	Aborts:  "HTM tx", "HTM non-tx", "HTM capacity", "Lock aborts",
//	         "ROT conflicts", "ROT capacity"
//	Commits: "HTM", "ROT", "SGL", "Uninstrumented"
package stats

import (
	"fmt"
	"strings"
)

// AbortCause classifies why a hardware transaction aborted.
type AbortCause int

const (
	// AbortConflictTx: a regular HTM transaction aborted due to a conflict
	// with another hardware transaction.
	AbortConflictTx AbortCause = iota
	// AbortConflictNonTx: a regular HTM transaction aborted due to a
	// conflict with non-transactional code (a thread acquiring the global
	// lock, an uninstrumented reader, or the VM subsystem: page faults and
	// interrupts).
	AbortConflictNonTx
	// AbortCapacity: a regular HTM transaction exceeded the speculative
	// storage budget.
	AbortCapacity
	// AbortLockBusy: a transaction self-aborted because it found the
	// elided lock busy upon subscription.
	AbortLockBusy
	// AbortROTConflict: a rollback-only transaction aborted due to a
	// conflict (any source).
	AbortROTConflict
	// AbortROTCapacity: a rollback-only transaction exceeded the (write)
	// storage budget.
	AbortROTCapacity
	// AbortExplicit: an explicit user abort not covered above.
	AbortExplicit

	NumAbortCauses = int(AbortExplicit) + 1
)

var abortNames = [...]string{
	"HTM tx", "HTM non-tx", "HTM capacity", "Lock aborts",
	"ROT conflicts", "ROT capacity", "explicit",
}

func (c AbortCause) String() string { return abortNames[c] }

// CommitPath classifies how a critical section ultimately completed.
type CommitPath int

const (
	// CommitHTM: committed as a regular hardware transaction.
	CommitHTM CommitPath = iota
	// CommitROT: committed as a rollback-only transaction.
	CommitROT
	// CommitSGL: executed under the non-speculative global lock.
	CommitSGL
	// CommitUninstrumented: executed with no speculation and no global
	// lock — RW-LE's read-side critical sections.
	CommitUninstrumented

	NumCommitPaths = int(CommitUninstrumented) + 1
)

var commitNames = [...]string{"HTM", "ROT", "SGL", "Uninstrumented"}

func (p CommitPath) String() string { return commitNames[p] }

// Thread accumulates one simulated thread's events. The simulator runs one
// CPU at a time, so plain counters are race-free.
type Thread struct {
	TxStarts    int64 // HTM + ROT begins
	Aborts      [NumAbortCauses]int64
	Commits     [NumCommitPaths]int64
	Ops         int64 // application-level operations completed
	ReadCS      int64 // read-side critical sections entered
	WriteCS     int64 // write-side critical sections entered
	QuiesceWait int64 // cycles spent waiting in RWLE_SYNCHRONIZE
}

// Reset zeroes all counters.
func (t *Thread) Reset() { *t = Thread{} }

// Breakdown is the aggregate of all threads for one run.
type Breakdown struct {
	Threads  int
	Cycles   int64
	TxStarts int64
	Aborts   [NumAbortCauses]int64
	Commits  [NumCommitPaths]int64
	Ops      int64
	ReadCS   int64
	WriteCS  int64
	// QuiesceWait is the total cycles all threads spent draining readers
	// in RWLE_SYNCHRONIZE (summed across threads, so it can exceed Cycles).
	QuiesceWait int64
}

// Merge aggregates per-thread counters into a Breakdown.
func Merge(threads []*Thread, cycles int64) Breakdown {
	b := Breakdown{Threads: len(threads), Cycles: cycles}
	for _, t := range threads {
		b.TxStarts += t.TxStarts
		b.Ops += t.Ops
		b.ReadCS += t.ReadCS
		b.WriteCS += t.WriteCS
		b.QuiesceWait += t.QuiesceWait
		for i := range t.Aborts {
			b.Aborts[i] += t.Aborts[i]
		}
		for i := range t.Commits {
			b.Commits[i] += t.Commits[i]
		}
	}
	return b
}

// TotalAborts returns the number of aborted transactions.
func (b *Breakdown) TotalAborts() int64 {
	var n int64
	for _, v := range b.Aborts {
		n += v
	}
	return n
}

// TotalCommits returns the number of completed critical sections.
func (b *Breakdown) TotalCommits() int64 {
	var n int64
	for _, v := range b.Commits {
		n += v
	}
	return n
}

// AbortRate returns aborted transactions as a percentage of transaction
// attempts (the paper's "Aborts (%)" panel).
func (b *Breakdown) AbortRate() float64 {
	if b.TxStarts == 0 {
		return 0
	}
	return 100 * float64(b.TotalAborts()) / float64(b.TxStarts)
}

// AbortPct returns the share of cause c among transaction attempts.
func (b *Breakdown) AbortPct(c AbortCause) float64 {
	if b.TxStarts == 0 {
		return 0
	}
	return 100 * float64(b.Aborts[c]) / float64(b.TxStarts)
}

// CommitPct returns the share of path p among completed critical sections
// (the paper's "Commits (%)" panel).
func (b *Breakdown) CommitPct(p CommitPath) float64 {
	total := b.TotalCommits()
	if total == 0 {
		return 0
	}
	return 100 * float64(b.Commits[p]) / float64(total)
}

// QuiescePct returns quiescence-wait cycles as a percentage of the total
// CPU cycles available to the run (Threads × Cycles) — the share of machine
// time burned draining readers.
func (b *Breakdown) QuiescePct() float64 {
	total := int64(b.Threads) * b.Cycles
	if total == 0 {
		return 0
	}
	return 100 * float64(b.QuiesceWait) / float64(total)
}

// AbortsHeader returns the column header for FormatAborts.
func AbortsHeader() string {
	cols := make([]string, NumAbortCauses)
	for i := range cols {
		cols[i] = abortNames[i]
	}
	return strings.Join(cols, " | ")
}

// FormatAborts renders the abort breakdown as percentages of attempts.
func (b *Breakdown) FormatAborts() string {
	parts := make([]string, NumAbortCauses)
	for i := 0; i < NumAbortCauses; i++ {
		parts[i] = fmt.Sprintf("%5.1f", b.AbortPct(AbortCause(i)))
	}
	return strings.Join(parts, " ")
}

// FormatCommits renders the commit breakdown as percentages, with the
// quiescence-wait share of machine time appended.
func (b *Breakdown) FormatCommits() string {
	parts := make([]string, NumCommitPaths, NumCommitPaths+1)
	for i := 0; i < NumCommitPaths; i++ {
		parts[i] = fmt.Sprintf("%s=%5.1f%%", commitNames[i], b.CommitPct(CommitPath(i)))
	}
	parts = append(parts, fmt.Sprintf("quiesce=%5.1f%%", b.QuiescePct()))
	return strings.Join(parts, " ")
}
