package stats

import (
	"strings"
	"testing"
)

func TestMergeAndPercentages(t *testing.T) {
	t1 := &Thread{TxStarts: 10, Ops: 5}
	t1.Aborts[AbortCapacity] = 2
	t1.Commits[CommitHTM] = 8
	t2 := &Thread{TxStarts: 10, Ops: 5}
	t2.Aborts[AbortROTConflict] = 3
	t2.Commits[CommitROT] = 7
	t2.Commits[CommitUninstrumented] = 5

	b := Merge([]*Thread{t1, t2}, 1000)
	if b.TxStarts != 20 || b.Ops != 10 || b.Cycles != 1000 {
		t.Errorf("merge wrong: %+v", b)
	}
	if b.TotalAborts() != 5 {
		t.Errorf("TotalAborts = %d", b.TotalAborts())
	}
	if got := b.AbortRate(); got != 25 {
		t.Errorf("AbortRate = %v, want 25", got)
	}
	if got := b.AbortPct(AbortCapacity); got != 10 {
		t.Errorf("AbortPct(capacity) = %v, want 10", got)
	}
	if b.TotalCommits() != 20 {
		t.Errorf("TotalCommits = %d", b.TotalCommits())
	}
	if got := b.CommitPct(CommitHTM); got != 40 {
		t.Errorf("CommitPct(HTM) = %v, want 40", got)
	}
}

func TestZeroSafe(t *testing.T) {
	var b Breakdown
	if b.AbortRate() != 0 || b.CommitPct(CommitHTM) != 0 || b.AbortPct(AbortCapacity) != 0 {
		t.Error("zero breakdown not safe")
	}
}

func TestNamesMatchPaperLegends(t *testing.T) {
	wantAborts := []string{"HTM tx", "HTM non-tx", "HTM capacity", "Lock aborts", "ROT conflicts", "ROT capacity"}
	for i, w := range wantAborts {
		if AbortCause(i).String() != w {
			t.Errorf("abort cause %d = %q, want %q", i, AbortCause(i), w)
		}
	}
	wantCommits := []string{"HTM", "ROT", "SGL", "Uninstrumented"}
	for i, w := range wantCommits {
		if CommitPath(i).String() != w {
			t.Errorf("commit path %d = %q, want %q", i, CommitPath(i), w)
		}
	}
}

func TestFormatters(t *testing.T) {
	var th Thread
	th.TxStarts = 4
	th.Aborts[AbortConflictTx] = 1
	th.Commits[CommitSGL] = 3
	b := Merge([]*Thread{&th}, 10)
	if !strings.Contains(AbortsHeader(), "ROT capacity") {
		t.Error("header incomplete")
	}
	if !strings.Contains(b.FormatAborts(), "25.0") {
		t.Errorf("FormatAborts = %q", b.FormatAborts())
	}
	if !strings.Contains(b.FormatCommits(), "SGL=100.0%") {
		t.Errorf("FormatCommits = %q", b.FormatCommits())
	}
}

func TestReset(t *testing.T) {
	th := Thread{TxStarts: 5}
	th.Reset()
	if th.TxStarts != 0 {
		t.Error("Reset incomplete")
	}
}
