package shard

import (
	"hrwle/internal/obs"
	"hrwle/internal/stats"
)

// sglPath indexes the SGL commit path in TimelineWindow.Commits: the
// fallback commits the controller reads as "speculation gave up".
const sglPath = int(stats.CommitSGL)

// ControllerConfig tunes the per-shard adaptive policy. The controller is
// a promotion of the single-lock adaptive ideas in internal/core/adaptive.go
// to deployment scope: instead of sampling win rates inside one lock's
// write path, it watches each shard's telemetry windows and moves the
// whole shard along the scheme palette.
//
// Three window signals drive the votes:
//
//   - write share (CSWrites/CSEnds, the commit-path mix): decides between
//     the read-optimized rung (RW-LE — uninstrumented reads, expensive
//     quiescing writes) and the symmetric-speculation rung (HLE).
//   - fallback share (SGL-path commits per section): the capacity signal.
//     It votes down exactly when the speculative rung has degenerated
//     into "retry, give up, take the lock anyway" — at that point the
//     plain lock is strictly cheaper. Raw abort pressure deliberately
//     does NOT vote down: at high CPU counts a hot shard can run a
//     visible abort rate whose retries still commit speculatively and
//     out-throughput every lower rung, so aborts alone cannot
//     distinguish "speculation losing" from "speculation winning
//     noisily". Only retries that exhaust their budget are evidence.
//   - abort pressure (aborts per completed section): gates promotion —
//     a shard must be quiet before it climbs toward more speculation.
//
// On the terminal SGL rung aborts are structurally zero, so the
// controller reads lock-wait share: a quiet shard climbs back up
// immediately, and a contended one re-probes the speculative rung on an
// exponential backoff — a contended SGL shard cannot tell "SGL is right"
// from "SGL is the bottleneck" without trying, and a transient storm that
// demoted it must not pin it to the lock forever.
type ControllerConfig struct {
	// MinOps is the fewest completed sections in a window for the window
	// to cast a vote; sparser windows abstain (no signal, no movement).
	MinOps int64
	// StepUpBelow: pressure below this votes to move one rung *up*
	// (more speculative).
	StepUpBelow float64
	// WriteShareDown: on rung 0 (the read-optimized scheme, RW-LE in the
	// standard palette), a write share of completed sections above this
	// votes to step down — RW-LE's uninstrumented read side buys nothing
	// on a write-heavy shard, and its write side (ROT plus reader
	// quiescence) is the palette's most expensive.
	WriteShareDown float64
	// WriteShareUp: on rung 1, stepping up to rung 0 additionally
	// requires the write share below this (a band under WriteShareDown,
	// so the two votes cannot oscillate on a stationary mix).
	WriteShareUp float64
	// FallbackShareDown: SGL-path commit share above this, on a
	// speculative rung, votes to step down — the retry budget is being
	// exhausted and the shard is already running on the lock, plus the
	// wasted speculation on the way there.
	FallbackShareDown float64
	// WaitPerOpBelow: on the SGL rung, lock-wait cycles per section below
	// this votes to step back up.
	WaitPerOpBelow float64
	// ProbeWindows: on a *contended* SGL rung, windows to hold before
	// re-probing speculation. A probe restarts the ladder at rung 0 —
	// the descent that parked the shard on SGL may have been a transient
	// storm, and only a full re-evaluation can find the right rung (the
	// rung directly above SGL can be the palette's worst under exactly
	// the conditions that demoted the shard). The interval doubles after
	// every probe that descends again (up to ProbeBackoffMax) and resets
	// once a probe survives ProbeWindows clean windows.
	ProbeWindows int
	// ProbeBackoffMax caps the probe interval growth.
	ProbeBackoffMax int
	// Smoothing is the EWMA weight of the newest window in the vote
	// signals (pressure, write share, fallback share), in (0, 1]. 1 means
	// no smoothing. Smoothing keeps single-window spikes — one batch of
	// writes, one abort flurry — from bouncing a shard off a scheme that
	// is right on average.
	Smoothing float64
	// Hysteresis is the number of *consecutive identical* votes required
	// before a switch is requested.
	Hysteresis int
	// CooldownWindows suppresses voting for this many windows after a
	// switch request, letting the new scheme's signal stabilize.
	CooldownWindows int
}

// DefaultControllerConfig returns thresholds calibrated on the sharded
// hashmap store (see EXPERIMENTS.md "Sharded scale-out"): roughly, keep
// RW-LE below ~45% writes, keep any speculative rung while under ~35%
// lock fallbacks, and re-probe a contended SGL shard every 8 windows
// with exponential backoff to 64.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		MinOps:            12,
		StepUpBelow:       0.15,
		WriteShareDown:    0.45,
		WriteShareUp:      0.20,
		FallbackShareDown: 0.35,
		WaitPerOpBelow:    150,
		ProbeWindows:      8,
		ProbeBackoffMax:   64,
		Smoothing:         0.35,
		Hysteresis:        2,
		CooldownWindows:   2,
	}
}

// normalize fills zero fields with defaults.
func (c *ControllerConfig) normalize() {
	d := DefaultControllerConfig()
	if c.MinOps <= 0 {
		c.MinOps = d.MinOps
	}
	if c.StepUpBelow <= 0 {
		c.StepUpBelow = d.StepUpBelow
	}
	if c.WriteShareDown <= 0 {
		c.WriteShareDown = d.WriteShareDown
	}
	if c.WriteShareUp <= 0 {
		c.WriteShareUp = d.WriteShareUp
	}
	if c.FallbackShareDown <= 0 {
		c.FallbackShareDown = d.FallbackShareDown
	}
	if c.WaitPerOpBelow <= 0 {
		c.WaitPerOpBelow = d.WaitPerOpBelow
	}
	if c.ProbeWindows <= 0 {
		c.ProbeWindows = d.ProbeWindows
	}
	if c.ProbeBackoffMax < c.ProbeWindows {
		c.ProbeBackoffMax = d.ProbeBackoffMax
		if c.ProbeBackoffMax < c.ProbeWindows {
			c.ProbeBackoffMax = c.ProbeWindows
		}
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		c.Smoothing = d.Smoothing
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = d.Hysteresis
	}
	if c.CooldownWindows < 0 {
		c.CooldownWindows = d.CooldownWindows
	}
}

// ctlShard is one shard's voting state.
type ctlShard struct {
	commanded int // palette rung last requested (not necessarily applied yet)
	votes     int // consecutive identical votes accumulated
	dir       int // direction of the accumulating vote
	cooldown  int // windows to skip before voting again

	sglWins     int // consecutive contended windows spent on the SGL rung
	probeAt     int // current probe interval (0 = not yet initialized)
	cleanStreak int // consecutive clean speculative windows (probe-backoff reset)

	// EWMA state of the speculative-rung vote signals; seeded = false
	// until the first voting window initializes them.
	seeded                bool
	pEWMA, wEWMA, fbkEWMA float64
}

// Controller is the per-shard adaptive policy: it subscribes to each
// shard's timeline, folds every delivered window into a vote, and — after
// Hysteresis consecutive identical votes — requests a scheme switch via
// the setPending callback. It runs entirely inside window-delivery
// callbacks, which ShardTimelines invokes in deterministic virtual-time
// order from under the tracer, so its decisions (and therefore the whole
// run) remain a pure function of the seeds.
//
// Rung semantics follow the standard palette order (most speculative
// first): rung 0 is the read-optimized scheme, middle rungs speculate on
// both sides, the last rung is the plain lock.
type Controller struct {
	cfg        ControllerConfig
	rungs      int
	setPending func(shard, rung int)
	shards     []ctlShard
}

// NewController builds a controller over `rungs` palette entries for
// `shards` shards, all starting on rung 0. setPending is invoked (from
// inside a window callback, i.e. under the tracer with the emitting CPU
// holding the floor) when a switch is requested.
func NewController(cfg ControllerConfig, rungs, shards int, setPending func(shard, rung int)) *Controller {
	cfg.normalize()
	return &Controller{cfg: cfg, rungs: rungs, setPending: setPending,
		shards: make([]ctlShard, shards)}
}

// sglRung is the palette index of the non-speculative terminal rung.
func (c *Controller) sglRung() int { return c.rungs - 1 }

// Observe folds one delivered telemetry window for shard s into its vote.
func (c *Controller) Observe(s int, w obs.TimelineWindow) {
	st := &c.shards[s]
	if st.probeAt == 0 {
		st.probeAt = c.cfg.ProbeWindows
	}
	if st.cooldown > 0 {
		st.cooldown--
		return
	}
	ops := w.CSEnds
	if ops < c.cfg.MinOps {
		return // too sparse to read; hold position, keep accumulated votes
	}

	var dir int
	if st.commanded == c.sglRung() {
		// Terminal rung: aborts are structurally zero, read lock-wait.
		wait := float64(w.LockWait) / float64(ops)
		if wait < c.cfg.WaitPerOpBelow {
			st.sglWins = 0
			dir = -1
		} else {
			// Contended. Hold, but re-probe speculation on backoff: a
			// transient storm that demoted this shard must not pin it here,
			// and only a probe can tell whether SGL is still the right call.
			// The probe restarts the ladder at rung 0 with fresh signal
			// state; the fallback share walks the shard back down if SGL
			// was right.
			st.votes, st.dir = 0, 0
			st.sglWins++
			if st.sglWins >= st.probeAt {
				st.sglWins = 0
				if st.probeAt < c.cfg.ProbeBackoffMax {
					st.probeAt *= 2
					if st.probeAt > c.cfg.ProbeBackoffMax {
						st.probeAt = c.cfg.ProbeBackoffMax
					}
				}
				st.seeded = false
				c.switchTo(st, s, 0)
			}
			return
		}
	} else {
		var aborts int64
		for _, a := range w.Aborts {
			aborts += a
		}
		var fallbacks int64
		if len(w.Commits) > sglPath {
			fallbacks = w.Commits[sglPath]
		}
		a := c.cfg.Smoothing
		if !st.seeded {
			st.seeded = true
			st.pEWMA = float64(aborts) / float64(ops)
			st.fbkEWMA = float64(fallbacks) / float64(ops)
			st.wEWMA = float64(w.CSWrites) / float64(ops)
		} else {
			st.pEWMA += a * (float64(aborts)/float64(ops) - st.pEWMA)
			st.fbkEWMA += a * (float64(fallbacks)/float64(ops) - st.fbkEWMA)
			st.wEWMA += a * (float64(w.CSWrites)/float64(ops) - st.wEWMA)
		}
		pressure, fallbackShare, writeShare := st.pEWMA, st.fbkEWMA, st.wEWMA
		if fallbackShare <= c.cfg.FallbackShareDown {
			st.cleanStreak++
			if st.cleanStreak >= c.cfg.ProbeWindows {
				st.probeAt = c.cfg.ProbeWindows // probe survived; reset backoff
			}
		} else {
			st.cleanStreak = 0
		}
		switch {
		case st.commanded == 1 && writeShare < c.cfg.WriteShareUp:
			// Rung 1 → rung 0 is mix-driven and outranks every other vote,
			// including a fallback storm: on a read-dominated shard, rung-1
			// conflicts (and the retry exhaustion they cause) live in the
			// instrumented read sets that rung 0 does not even have, so the
			// cure for a drowning rung 1 is *up*, not the lock. Abort
			// pressure is deliberately not consulted either — rung-1 noise
			// says nothing about how rung 0 would fare.
			dir = -1
		case fallbackShare > c.cfg.FallbackShareDown:
			// Retry budgets are being exhausted: the shard already runs on
			// the lock most of the time, plus the wasted speculation.
			dir = +1
		case st.commanded == 0 && writeShare > c.cfg.WriteShareDown:
			// The read-optimized rung on a write-heavy shard: its expensive
			// write side dominates even when nothing aborts.
			dir = +1
		case pressure < c.cfg.StepUpBelow && st.commanded > 1:
			dir = -1
		default:
			st.votes, st.dir = 0, 0
			return
		}
	}

	if dir != st.dir {
		st.dir, st.votes = dir, 0
	}
	st.votes++
	if st.votes < c.cfg.Hysteresis {
		return
	}
	st.votes, st.dir = 0, 0
	c.switchTo(st, s, st.commanded+dir)
}

// switchTo clamps and requests a rung change for shard s.
func (c *Controller) switchTo(st *ctlShard, s, target int) {
	if target < 0 {
		target = 0
	}
	if target >= c.rungs {
		target = c.rungs - 1
	}
	if target == st.commanded {
		return
	}
	st.commanded = target
	st.cooldown = c.cfg.CooldownWindows
	st.cleanStreak = 0
	st.seeded = false // the new scheme's signals start fresh
	c.setPending(s, target)
}
