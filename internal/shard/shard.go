// Package shard implements the production-shape scale-out deployment of
// ROADMAP item 2: a sharded KV store over the virtual-time machine at
// 64–256 simulated CPUs. Millions of keys are hash-partitioned across
// 4–64 shards, each shard a chained hashmap protected by its own rwlock
// instance; traffic comes from the open-loop arrival generator with a
// seeded Zipfian hot-key sampler, plus a small fraction of cross-shard
// multi-key transactions executed under ordered two-phase shard
// acquisition (deadlock-free by construction, deterministic like
// everything else in the simulator).
//
// Each shard can run a *different* lock scheme, and can change scheme
// online: the per-shard adaptive controller (controller.go) watches the
// shard's obs.Timeline windows and requests switches, which the
// deployment applies at a safe quiesced boundary — the first instant the
// shard has no critical section in flight and no exclusive (cross-shard)
// holder. Entry to a shard is gated host-side under CPU.Sync(), the same
// linearization argument as the service queue: a CPU only touches the
// gate while it holds the global minimum (time, ID), so gate state
// evolves in nondecreasing virtual time and the run is a pure function
// of the seeds at any host worker count.
package shard

import (
	"fmt"

	"hrwle/internal/hashmap"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/obs"
	"hrwle/internal/rwlock"
	"hrwle/internal/service"
	"hrwle/internal/stats"
)

// Scheme pairs a lock-scheme name with its factory. The harness supplies
// these (from its scheme registry) so this package stays decoupled from
// scheme construction. For adaptive runs the palette is ordered from most
// speculative to least — the controller's escalation ladder walks the
// palette by index (RW-LE → HLE → SGL with the default palette).
type Scheme struct {
	Name string
	Mk   rwlock.Factory
}

// Config describes one sharded measurement point. The embedded
// service.Config supplies the open-system shape (servers, arrivals,
// classes, queue bound, keyed demand via Keys); the shard fields add the
// partitioning and the controller's window geometry.
type Config struct {
	service.Config

	Shards         int   // hash partitions (4–64 in the sweep)
	ItemsPerBucket int64 // initial chain depth per bucket (HTM capacity knob)
	Window         int64 // timeline window width, cycles (controller tick)
	PollCycles     int64 // shard-gate poll interval while blocked

	Ctrl ControllerConfig // thresholds for adaptive runs (palette > 1)
}

// DefaultConfig returns the baseline sharded point: 64 serving CPUs over
// 16 shards of a 2M-key store under the read-dominated mix of
// DefaultClasses. The 50k-cycle window gives the controller tens of
// decision ticks even on short calibration runs (6000 requests at the
// default load span ~10.5M cycles).
func DefaultConfig() Config {
	c := Config{
		Config:         service.DefaultConfig("shardkv"),
		Shards:         16,
		ItemsPerBucket: 8,
		Window:         50_000,
		PollCycles:     40,
		Ctrl:           DefaultControllerConfig(),
	}
	c.Servers = 64
	c.Requests = 6000
	c.QueueCap = 2048
	c.Classes = DefaultClasses()
	c.Keys = service.KeyConfig{Universe: 1 << 21, Skew: 0.9, CrossPct: 4}
	return c
}

// DefaultClasses is the sharded-store request mix: a read-dominated KV
// front-end (GET-heavy interactive and standard tiers, a write-heavy
// batch tier). Read-dominance is where the scheme choice is interesting:
// RW-LE's uninstrumented reads win on quiet shards, while the Zipfian
// hot shard — where writers collide — wants HLE's symmetric speculation
// or, past the thrash point, the plain global lock.
func DefaultClasses() []service.Class {
	return []service.Class{
		{Name: "interactive", Share: 40, WritePct: 2,
			Work: service.Pareto(600, 2.5), Footprint: service.Fixed(1)},
		{Name: "standard", Share: 50, WritePct: 10,
			Work: service.Pareto(1200, 2.0), Footprint: service.Bimodal(2, 0.9, 6)},
		{Name: "batch", Share: 10, WritePct: 60,
			Work: service.Pareto(4000, 1.5), Footprint: service.Pareto(4, 1.8)},
	}
}

// normalize validates and defaults the shard-specific fields (the
// embedded service config normalizes itself).
func (c *Config) normalize() error {
	if err := c.Config.Normalize(); err != nil {
		return err
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.ItemsPerBucket <= 0 {
		c.ItemsPerBucket = 8
	}
	if c.Window <= 0 {
		c.Window = 50_000
	}
	if c.PollCycles <= 0 {
		c.PollCycles = 40
	}
	if c.Keys.Universe <= 0 {
		return fmt.Errorf("shard: keyed demand required (Keys.Universe = %d)", c.Keys.Universe)
	}
	if c.Keys.Universe < c.Shards {
		return fmt.Errorf("shard: universe %d smaller than %d shards", c.Keys.Universe, c.Shards)
	}
	c.Ctrl.normalize()
	return nil
}

// SwitchEvent is one applied scheme switch, in virtual-time order.
type SwitchEvent struct {
	AtCycles int64  `json:"at_cycles"`
	Shard    int    `json:"shard"`
	From     string `json:"from"`
	To       string `json:"to"`
}

// ShardStats summarizes one shard's run.
type ShardStats struct {
	Shard    int    `json:"shard"`
	Ops      int64  `json:"ops"`      // critical sections executed against it
	Writes   int64  `json:"writes"`   // write sections among Ops
	CrossTx  int64  `json:"cross_tx"` // multi-shard transactions it took part in
	Switches int    `json:"switches"` // scheme switches applied
	Final    string `json:"final_scheme"`
}

// Result is one sharded point's outcome.
type Result struct {
	Service  *obs.ServiceMetrics `json:"service"`
	Shards   []ShardStats        `json:"shards"`
	Switches []SwitchEvent       `json:"switches,omitempty"`
	CrossTx  int64               `json:"cross_tx"`
}

// shardState is one shard's host-side gate plus its store. All fields
// below the store handles are mutated only by a CPU that has just passed
// Sync (or while it holds the floor between Syncs, for pure counters).
type shardState struct {
	h        *hashmap.Map
	universe uint64 // keys populated: [0, universe)
	locks    []rwlock.Lock

	active   int // palette index in force
	pending  int // palette index requested; applied at quiesce
	inflight int // critical sections currently inside
	excl     int // CPU holding/reserving exclusive access; -1 none

	ops, writes, crossTx int64
	switches             int
}

// srv is one serving CPU's hoisted critical-section state (closures
// passed through rwlock.Lock escape; per-op literals would allocate).
type srv struct {
	th   *htm.Thread
	h    *hashmap.Map
	key  uint64
	val  uint64
	node machine.Addr
	used bool

	lookupCS, updateCS func()
}

// deployment wires the machine, the shards and the telemetry together.
type deployment struct {
	cfg     *Config
	names   []string
	shards  []shardState
	srvs    []srv
	tl      *obs.ShardTimelines
	reqs    []service.Request
	q       *service.Queue
	sw      []SwitchEvent
	perU    uint64 // per-shard key universe
	nshards uint64
}

// mix64 is the splitmix64 finalizer: the key-routing hash. A plain `mod
// shards` would map the Zipf head (ranks 0,1,2,...) onto distinct shards
// in rank order, hiding exactly the hot-shard imbalance the deployment
// exists to study.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// route maps a global key rank to its shard and its key within the
// shard's populated universe.
func (d *deployment) route(rank int) (shard int, inKey uint64) {
	h := mix64(uint64(rank))
	return int(h % d.nshards), (h / d.nshards) % d.perU
}

// memWords sizes simulated memory: line-aligned nodes for every key,
// bucket-head arrays, lock metadata per shard per palette entry (BRLock-
// style schemes allocate a line per CPU, so budget generously), spare
// nodes, and slack.
func memWords(c *Config, palette int) int64 {
	keys := int64(c.Keys.Universe)
	buckets := keys/c.ItemsPerBucket + int64(c.Shards)*32
	lockW := int64(c.Shards) * int64(palette) * int64(c.Servers+16) * 16
	return keys*16 + buckets + lockW + int64(c.Servers)*32 + 1<<16
}

// Run executes one sharded point. palette must hold at least one scheme;
// with more than one the adaptive controller drives per-shard switching,
// starting every shard on palette[0]. observe, if non-nil, receives the
// machine before the run starts (tracer attachment; the shard timeline
// router is composed with whatever it installs).
func Run(cfg Config, palette []Scheme, observe func(*machine.Machine)) (*Result, error) {
	if len(palette) == 0 {
		return nil, fmt.Errorf("shard: empty scheme palette")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	reqs, err := service.GenerateSchedule(cfg.Config)
	if err != nil {
		return nil, err
	}

	m := machine.New(machine.Config{
		CPUs:     cfg.Servers,
		MemWords: memWords(&cfg, len(palette)),
		Seed:     cfg.Seed,
	})
	if observe != nil {
		observe(m)
	}
	sys := htm.NewSystem(m, htm.Config{})

	d := &deployment{
		cfg:     &cfg,
		shards:  make([]shardState, cfg.Shards),
		srvs:    make([]srv, cfg.Servers),
		reqs:    reqs,
		nshards: uint64(cfg.Shards),
	}
	for _, s := range palette {
		d.names = append(d.names, s.Name)
	}
	buckets := int64(cfg.Keys.Universe/cfg.Shards) / cfg.ItemsPerBucket
	if buckets < 1 {
		buckets = 1
	}
	// perU is the *populated* per-shard universe. Routing reduces keys
	// modulo it, so every mapped key exists in its shard's store and a
	// write is always an in-place update (never a node-consuming insert).
	d.perU = uint64(buckets * cfg.ItemsPerBucket)
	for i := range d.shards {
		sh := &d.shards[i]
		sh.h = hashmap.New(m, buckets)
		sh.h.Populate(cfg.ItemsPerBucket)
		sh.universe = uint64(buckets * cfg.ItemsPerBucket)
		sh.locks = make([]rwlock.Lock, len(palette))
		for j, s := range palette {
			sh.locks[j] = s.Mk(sys)
		}
		sh.excl = -1
	}
	for i := range d.srvs {
		v := &d.srvs[i]
		v.th = sys.Thread(i)
		v.node = v.th.AllocAligned(3) // never consumed: the universe is fully populated
		v.lookupCS = func() { v.h.Lookup(v.th, v.key) }
		v.updateCS = func() { v.used = v.h.Insert(v.th, v.key, v.val, v.node) }
	}

	d.tl = obs.NewShardTimelines(cfg.Window, cfg.Shards, len(cfg.Classes))
	var ctrl *Controller
	if len(palette) > 1 {
		ctrl = NewController(cfg.Ctrl, len(palette), cfg.Shards, func(s, scheme int) {
			d.shards[s].pending = scheme
		})
		for s := range d.shards {
			s := s
			d.tl.Shards[s].Subscribe(func(w obs.TimelineWindow) { ctrl.Observe(s, w) })
		}
	}
	if t := m.Tracer(); t != nil {
		m.SetTracer(machine.MultiTracer{t, d.tl})
	} else {
		m.SetTracer(d.tl)
	}
	d.tl.Start(m.Now(), cfg.Servers)

	d.q = service.NewQueue(reqs, cfg.QueueCap, len(cfg.Classes))
	cycles := m.Run(cfg.Servers, d.serve)

	// Dropped requests never reached a server: attribute them to their
	// primary shard's timeline post-run (served ones were fed live).
	for i := range reqs {
		r := &reqs[i]
		if r.Dropped {
			s, _ := d.route(r.Key)
			d.tl.Shards[s].AddRequest(r.Class, r.ArriveAt, 0, 0, true)
		}
	}
	d.tl.Finish(m.Now())

	b := stats.Merge(sys.Stats(cfg.Servers), cycles)
	label := palette[0].Name
	if len(palette) > 1 {
		label = "adaptive"
	}
	res := &Result{
		Service:  service.Assemble(&cfg.Config, label, reqs, cycles, &b),
		Switches: d.sw,
	}
	for i := range d.shards {
		sh := &d.shards[i]
		res.Shards = append(res.Shards, ShardStats{
			Shard: i, Ops: sh.ops, Writes: sh.writes, CrossTx: sh.crossTx,
			Switches: sh.switches, Final: d.names[sh.active],
		})
		res.CrossTx += sh.crossTx
	}
	res.CrossTx /= 2 // each cross-shard tx was counted by both shards
	return res, nil
}

// serve is the per-CPU server loop: dispatch from the shared queue, route
// by key, execute against the owning shard(s).
func (d *deployment) serve(c *machine.CPU) {
	cfg := d.cfg
	th := d.srvs[c.ID].th
	for {
		c.Sync()
		idx, ok := d.q.Pop(c.Now())
		if !ok {
			if t, more := d.q.NextArrival(); more {
				c.IdleUntil(t)
				continue
			}
			return
		}
		r := &d.reqs[idx]
		r.Server = c.ID
		r.DequeueAt = c.Now()
		c.Tick(cfg.DispatchCycles)
		c.Tick(r.Work)
		before := th.St.Commits
		primary := d.exec(c, th, r)
		r.Path = service.DominantPath(before, th.St.Commits)
		r.DoneAt = c.Now()
		// Live telemetry: safe because the watermark cannot have passed
		// this CPU's current instant (see Timeline.AddRequest).
		d.tl.Shards[primary].AddRequest(r.Class, r.ArriveAt, r.DequeueAt, r.DoneAt, false)
	}
}

// exec runs one request's structure work and returns its primary shard.
func (d *deployment) exec(c *machine.CPU, th *htm.Thread, r *service.Request) int {
	s1, in1 := d.route(r.Key)
	if r.Key2 >= 0 {
		if s2, in2 := d.route(r.Key2); s2 != s1 {
			d.execCross(c, th, r, s1, in1, s2, in2)
			return s1
		}
	}
	d.enter(c, s1)
	sh := &d.shards[s1]
	lock := sh.locks[sh.active]
	d.tl.SetShard(c.ID, s1)
	d.ops(c, th, sh, lock, r, in1)
	if r.Key2 >= 0 {
		// Same-shard multi-key write: one extra update, already atomic
		// under the shard's lock discipline.
		_, in2 := d.route(r.Key2)
		d.op(c, th, sh, lock, true, in2, r.Seed)
	}
	d.tl.SetShard(c.ID, -1)
	d.exit(c, s1)
	return s1
}

// ops performs the request's footprint against one shard: the first op on
// the request's own key, the rest on keys drawn from the request's seed
// stream within the same shard (a scan/batch touching the shard locally).
func (d *deployment) ops(c *machine.CPU, th *htm.Thread, sh *shardState, lock rwlock.Lock, r *service.Request, inKey uint64) {
	s := machine.NewStream(r.Seed)
	for i := 0; i < r.Footprint; i++ {
		k := inKey
		if i > 0 {
			k = uint64(s.Intn(int(sh.universe)))
		}
		d.op(c, th, sh, lock, r.IsWrite, k, s.Next())
	}
}

// op executes one critical section against sh under lock.
func (d *deployment) op(c *machine.CPU, th *htm.Thread, sh *shardState, lock rwlock.Lock, write bool, key uint64, val uint64) {
	v := &d.srvs[c.ID]
	v.h, v.key = sh.h, key
	if write {
		v.val = val
		v.used = false
		lock.Write(th, v.updateCS)
		if v.used {
			// The universe is fully populated and nothing is ever removed,
			// so an update can never consume the spare node.
			panic("shard: update consumed the spare node (key outside populated universe)")
		}
		sh.writes++
	} else {
		lock.Read(th, v.lookupCS)
	}
	sh.ops++
	th.St.Ops++
}

// execCross runs a two-shard transaction: exclusive acquisition of both
// shards in ascending index order (ordered two-phase locking — waits
// cannot cycle, so the protocol is deadlock-free), the primary footprint
// against the first key's shard, one update against the second, then
// release in reverse order. While both shards are held exclusively no
// other CPU is inside either, so the pair of updates is atomic with
// respect to every other request.
func (d *deployment) execCross(c *machine.CPU, th *htm.Thread, r *service.Request, s1 int, in1 uint64, s2 int, in2 uint64) {
	lo, hi := s1, s2
	if lo > hi {
		lo, hi = hi, lo
	}
	d.acquireExcl(c, lo)
	d.acquireExcl(c, hi)

	shA := &d.shards[s1]
	d.tl.SetShard(c.ID, s1)
	d.ops(c, th, shA, shA.locks[shA.active], r, in1)

	shB := &d.shards[s2]
	d.tl.SetShard(c.ID, s2)
	d.op(c, th, shB, shB.locks[shB.active], true, in2, r.Seed)
	d.tl.SetShard(c.ID, -1)

	shA.crossTx++
	shB.crossTx++
	d.releaseExcl(c, hi)
	d.releaseExcl(c, lo)
}

// enter admits one critical section into shard s, applying a pending
// scheme switch first if the shard is quiesced. While a switch is pending
// new entrants are held out, so inflight drains and the switch applies at
// the first safe boundary with bounded delay.
func (d *deployment) enter(c *machine.CPU, s int) {
	sh := &d.shards[s]
	for {
		c.Sync()
		if sh.excl < 0 {
			if sh.pending != sh.active {
				if sh.inflight == 0 {
					d.applySwitch(c, sh, s)
				}
			} else {
				sh.inflight++
				return
			}
		}
		c.Tick(d.cfg.PollCycles)
	}
}

// exit retires one critical section from shard s.
func (d *deployment) exit(c *machine.CPU, s int) {
	c.Sync()
	d.shards[s].inflight--
}

// acquireExcl reserves shard s exclusively for the calling CPU and waits
// for in-flight sections to drain. The reservation blocks new entrants
// immediately, so the drain is bounded by the sections already inside.
func (d *deployment) acquireExcl(c *machine.CPU, s int) {
	sh := &d.shards[s]
	for {
		c.Sync()
		if sh.excl < 0 {
			if sh.pending != sh.active {
				if sh.inflight == 0 {
					d.applySwitch(c, sh, s)
				}
			} else {
				sh.excl = c.ID
				break
			}
		}
		c.Tick(d.cfg.PollCycles)
	}
	for {
		c.Sync()
		if sh.inflight == 0 {
			return
		}
		c.Tick(d.cfg.PollCycles)
	}
}

// releaseExcl releases the exclusive hold on shard s.
func (d *deployment) releaseExcl(c *machine.CPU, s int) {
	c.Sync()
	d.shards[s].excl = -1
}

// applySwitch flips the shard to its pending scheme at a quiesced
// boundary and records the switch in the virtual-time-ordered trace.
func (d *deployment) applySwitch(c *machine.CPU, sh *shardState, s int) {
	from := sh.active
	sh.active = sh.pending
	sh.switches++
	d.sw = append(d.sw, SwitchEvent{
		AtCycles: c.Now(), Shard: s, From: d.names[from], To: d.names[sh.active],
	})
}
