package shard_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/rwlock"
	"hrwle/internal/service"
	"hrwle/internal/shard"
)

// palette returns the standard adaptive ladder: most speculative first.
func palette() []shard.Scheme {
	return []shard.Scheme{
		{Name: "RW-LE_OPT", Mk: func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }},
		{Name: "HLE", Mk: func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }},
		{Name: "SGL", Mk: func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }},
	}
}

func sglOnly() []shard.Scheme {
	return []shard.Scheme{
		{Name: "SGL", Mk: func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }},
	}
}

// testConfig is a small, fast point: 16 servers over 4 shards.
func testConfig() shard.Config {
	c := shard.DefaultConfig()
	c.Servers = 16
	c.Requests = 600
	c.QueueCap = 4096
	c.Shards = 4
	c.Window = 200_000
	c.Keys = service.KeyConfig{Universe: 1 << 14, Skew: 1.2, CrossPct: 6}
	c.Arrivals.RatePerSec = 3e6
	return c
}

func runJSON(t *testing.T, cfg shard.Config, pal []shard.Scheme) (*shard.Result, []byte) {
	t.Helper()
	res, err := shard.Run(cfg, pal, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, b
}

// TestShardDeterministic pins that a full adaptive sharded run — schedule,
// routing, per-shard switching, metrics — is a pure function of the
// config: two runs are byte-identical through JSON.
func TestShardDeterministic(t *testing.T) {
	_, a := runJSON(t, testConfig(), palette())
	_, b := runJSON(t, testConfig(), palette())
	if !bytes.Equal(a, b) {
		t.Fatalf("adaptive shard runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestShardSeedSensitivity guards against a run that ignores its seed.
func TestShardSeedSensitivity(t *testing.T) {
	_, a := runJSON(t, testConfig(), sglOnly())
	cfg := testConfig()
	cfg.Seed = 2
	_, b := runJSON(t, cfg, sglOnly())
	if bytes.Equal(a, b) {
		t.Fatal("seeds 1 and 2 produced identical shard runs")
	}
}

// TestShardOpConservation checks that every served request's footprint
// lands on some shard: total shard ops equal the schedule's served
// footprint plus one extra op per multi-key write, and every generated
// request is served (the queue is unbounded for this config).
func TestShardOpConservation(t *testing.T) {
	cfg := testConfig()
	if err := cfg.Config.Normalize(); err != nil {
		t.Fatal(err)
	}
	reqs, err := service.GenerateSchedule(cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := range reqs {
		want += int64(reqs[i].Footprint)
		if reqs[i].Key2 >= 0 {
			want++
		}
	}

	res, _ := runJSON(t, cfg, sglOnly())
	if res.Service.Dropped != 0 {
		t.Fatalf("%d drops with queue cap %d", res.Service.Dropped, cfg.QueueCap)
	}
	got := int64(0)
	for _, s := range res.Shards {
		got += s.Ops
		if s.Writes > s.Ops {
			t.Fatalf("shard %d: %d writes > %d ops", s.Shard, s.Writes, s.Ops)
		}
	}
	if got != want {
		t.Fatalf("shard ops %d, schedule footprint %d", got, want)
	}
	if res.Service.Served != int64(len(reqs)) {
		t.Fatalf("served %d of %d", res.Service.Served, len(reqs))
	}
}

// TestShardSpread checks the routing hash actually spreads load: with
// 4 shards and thousands of ops, no shard is empty and no shard holds
// more than 90% of the ops (Zipfian skew legitimately concentrates load,
// but rank 0 must not own everything when Universe >> Shards).
func TestShardSpread(t *testing.T) {
	res, _ := runJSON(t, testConfig(), sglOnly())
	total := int64(0)
	for _, s := range res.Shards {
		total += s.Ops
	}
	for _, s := range res.Shards {
		if s.Ops == 0 {
			t.Fatalf("shard %d received no ops", s.Shard)
		}
		if s.Ops*10 > total*9 {
			t.Fatalf("shard %d holds %d of %d ops", s.Shard, s.Ops, total)
		}
	}
}

// TestShardCrossTx checks that multi-key writes happen and are counted
// once each, and that a CrossPct=0 run has none.
func TestShardCrossTx(t *testing.T) {
	res, _ := runJSON(t, testConfig(), sglOnly())
	if res.CrossTx == 0 {
		t.Fatal("CrossPct=6 produced no cross-shard transactions")
	}
	sum := int64(0)
	for _, s := range res.Shards {
		sum += s.CrossTx
	}
	if sum != 2*res.CrossTx {
		t.Fatalf("per-shard cross counts sum to %d, want 2×%d", sum, res.CrossTx)
	}

	cfg := testConfig()
	cfg.Keys.CrossPct = 0
	res0, _ := runJSON(t, cfg, sglOnly())
	if res0.CrossTx != 0 {
		t.Fatalf("CrossPct=0 produced %d cross-shard transactions", res0.CrossTx)
	}
}

// TestShardSwitchTrace validates the adaptive switch trace: virtual-time
// ordered, no self-switches, per-shard chains consistent from palette[0]
// to the reported final scheme, and switch counts matching.
func TestShardSwitchTrace(t *testing.T) {
	pal := palette()
	res, _ := runJSON(t, testConfig(), pal)
	lastT := int64(0)
	cur := make(map[int]string)
	count := make(map[int]int)
	for i := range res.Shards {
		cur[i] = pal[0].Name
	}
	for _, sw := range res.Switches {
		if sw.AtCycles < lastT {
			t.Fatalf("switch trace out of order at %d", sw.AtCycles)
		}
		lastT = sw.AtCycles
		if sw.From == sw.To {
			t.Fatalf("self-switch on shard %d at %d", sw.Shard, sw.AtCycles)
		}
		if cur[sw.Shard] != sw.From {
			t.Fatalf("shard %d switch from %q but was on %q", sw.Shard, sw.From, cur[sw.Shard])
		}
		cur[sw.Shard] = sw.To
		count[sw.Shard]++
	}
	for _, s := range res.Shards {
		if cur[s.Shard] != s.Final {
			t.Fatalf("shard %d trace ends on %q, stats say %q", s.Shard, cur[s.Shard], s.Final)
		}
		if count[s.Shard] != s.Switches {
			t.Fatalf("shard %d: %d trace switches, stats say %d", s.Shard, count[s.Shard], s.Switches)
		}
	}
}

// TestShardFixedNeverSwitches pins that a single-scheme palette cannot
// switch (the controller is not even constructed).
func TestShardFixedNeverSwitches(t *testing.T) {
	res, _ := runJSON(t, testConfig(), sglOnly())
	if len(res.Switches) != 0 {
		t.Fatalf("fixed-scheme run recorded %d switches", len(res.Switches))
	}
	for _, s := range res.Shards {
		if s.Final != "SGL" || s.Switches != 0 {
			t.Fatalf("shard %d: final %q, %d switches", s.Shard, s.Final, s.Switches)
		}
	}
}
