package tpcc

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

// Audit accumulates the host-side ground truth of committed transactions
// so tests can verify TPC-C's consistency conditions afterwards. The
// simulator executes one CPU at a time, so plain counters are race-free;
// they are only updated after a critical section has committed.
type Audit struct {
	NewOrders       int64
	PaymentsAmount  uint64
	Payments        int64
	DeliveredOrders int64
	DeliveredAmount uint64
}

// Workload drives the paper's TPC-C mix: writePct% of transactions are
// updates (New-Order : Payment : Delivery in TPC-C's 45:43:4 relative
// weights) and the rest are read-only (Order-Status : Stock-Level, 50:50).
type Workload struct {
	DB       *DB
	WritePct int
	Audit    Audit
}

// Step runs one transaction on behalf of thread t. All random parameters
// are drawn before entering the critical section so that speculative
// re-executions replay the identical transaction.
func (wl *Workload) Step(lock rwlock.Lock, t *htm.Thread, c *machine.CPU) {
	db := wl.DB
	cfg := db.Cfg
	w := int64(c.Intn(int(cfg.Warehouses)))
	if c.Intn(100) < wl.WritePct {
		switch pick := c.Intn(92); {
		case pick < 45: // New-Order
			p := NewOrderParams{
				W: w,
				D: int64(c.Intn(int(cfg.DistrictsPerWH))),
				C: int64(c.Intn(int(cfg.CustomersPerDist))),
			}
			n := 5 + c.Intn(MaxOrderLines-5+1)
			for l := 0; l < n; l++ {
				supply := w
				if cfg.Warehouses > 1 && c.Intn(100) == 0 { // 1% remote
					supply = int64(c.Intn(int(cfg.Warehouses)))
				}
				p.Lines = append(p.Lines, OrderLineReq{
					Item:    int64(c.Intn(int(cfg.Items))),
					SupplyW: supply,
					Qty:     uint64(1 + c.Intn(10)),
				})
			}
			block := db.PrepareOrderBlock(t)
			lock.Write(t, func() { db.NewOrder(t, p, block) })
			wl.Audit.NewOrders++
		case pick < 88: // Payment (60% select the customer by last name)
			p := PaymentParams{
				W:      w,
				D:      int64(c.Intn(int(cfg.DistrictsPerWH))),
				C:      int64(c.Intn(int(cfg.CustomersPerDist))),
				ByName: -1,
				Amount: uint64(100 + c.Intn(500000)),
			}
			if c.Intn(100) < 60 {
				p.ByName = int64(c.Intn(LastNames))
			}
			lock.Write(t, func() { db.Payment(t, p) })
			wl.Audit.Payments++
			wl.Audit.PaymentsAmount += p.Amount
		default: // Delivery
			carrier := uint64(1 + c.Intn(10))
			var res DeliveryResult
			lock.Write(t, func() { res = db.Delivery(t, w, carrier) })
			wl.Audit.DeliveredOrders += int64(res.Orders)
			wl.Audit.DeliveredAmount += res.Amount
		}
	} else {
		d := int64(c.Intn(int(cfg.DistrictsPerWH)))
		if c.Intn(2) == 0 {
			cid := int64(c.Intn(int(cfg.CustomersPerDist)))
			byName := int64(-1)
			if c.Intn(100) < 60 {
				byName = int64(c.Intn(LastNames))
			}
			lock.Read(t, func() { db.OrderStatus(t, w, d, cid, byName) })
		} else {
			threshold := uint64(10 + c.Intn(11))
			lock.Read(t, func() { db.StockLevel(t, w, d, threshold) })
		}
	}
	t.St.Ops++
}
