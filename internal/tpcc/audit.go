package tpcc

import (
	"fmt"

	"hrwle/internal/machine"
)

// CheckConsistency audits the database against TPC-C's consistency
// conditions plus this port's bookkeeping invariants, given the host-side
// record of committed transactions. It returns "" when consistent.
//
// Conditions checked (numbers per the TPC-C specification §3.3.2):
//
//  1. W_YTD = Σ D_YTD for every warehouse, and Σ W_YTD equals the total
//     amount of committed payments.
//  2. Σ (D_NEXT_O_ID − 1) equals preloaded plus committed orders.
//  3. Every order in a new-order queue is undelivered (no carrier), and
//     the total queue length equals undelivered preloads + new orders −
//     deliveries.
//  4. Balance equation: Σ C_BALANCE = initial − payments + delivered
//     order-line amounts.
func (db *DB) CheckConsistency(a *Audit) string {
	m := db.M
	cfg := db.Cfg

	var whTotal uint64
	for w := int64(0); w < cfg.Warehouses; w++ {
		wytd := m.Peek(db.warehouse(w) + whYTD)
		var dsum uint64
		for d := int64(0); d < cfg.DistrictsPerWH; d++ {
			dsum += m.Peek(db.district(w, d) + diYTD)
		}
		if wytd != dsum {
			return fmt.Sprintf("warehouse %d: W_YTD %d != Σ D_YTD %d", w, wytd, dsum)
		}
		whTotal += wytd
	}
	if whTotal != a.PaymentsAmount {
		return fmt.Sprintf("Σ W_YTD %d != committed payments %d", whTotal, a.PaymentsAmount)
	}

	var orders uint64
	for w := int64(0); w < cfg.Warehouses; w++ {
		for d := int64(0); d < cfg.DistrictsPerWH; d++ {
			orders += m.Peek(db.district(w, d)+diNextOID) - 1
		}
	}
	preload := uint64(cfg.Warehouses * cfg.DistrictsPerWH * cfg.InitialOrdersPerD)
	if orders != preload+uint64(a.NewOrders) {
		return fmt.Sprintf("order ids %d != preload %d + new orders %d", orders, preload, a.NewOrders)
	}

	var queued int64
	for w := int64(0); w < cfg.Warehouses; w++ {
		for d := int64(0); d < cfg.DistrictsPerWH; d++ {
			di := db.district(w, d)
			n := machine.Addr(m.Peek(di + diNOHead))
			var last machine.Addr
			steps := int64(0)
			for n != 0 {
				if m.Peek(n+orCarrier) != 0 {
					return "delivered order still queued"
				}
				if int64(m.Peek(n+orDID)) != d+1 || int64(m.Peek(n+orWID)) != w+1 {
					return "order queued in wrong district"
				}
				if steps++; steps > 1<<22 {
					return "new-order queue cycle"
				}
				last = n
				n = machine.Addr(m.Peek(n + orNextNew))
			}
			tail := machine.Addr(m.Peek(di + diNOTail))
			if tail != last {
				return "queue tail does not match walk"
			}
			queued += steps
		}
	}
	undeliveredPreload := int64(0)
	for w := int64(0); w < cfg.Warehouses; w++ {
		for d := int64(0); d < cfg.DistrictsPerWH; d++ {
			// Preload marks odd order ids undelivered: ids 1..Initial.
			undeliveredPreload += cfg.InitialOrdersPerD / 2
		}
	}
	if queued != undeliveredPreload+a.NewOrders-a.DeliveredOrders {
		return fmt.Sprintf("queued %d != undelivered preload %d + new %d - delivered %d",
			queued, undeliveredPreload, a.NewOrders, a.DeliveredOrders)
	}

	var balances uint64
	for _, cu := range db.customers {
		balances += m.Peek(cu + cuBalance)
	}
	initial := negCents(1000) * uint64(len(db.customers))
	want := initial - a.PaymentsAmount + a.DeliveredAmount
	if balances != want {
		return fmt.Sprintf("Σ balances %d != expected %d", balances, want)
	}
	return ""
}
