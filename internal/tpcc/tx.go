package tpcc

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// Transaction parameter structs are drawn OUTSIDE the critical section so
// that a speculative re-execution replays the identical transaction (the
// critical-section bodies are pure functions of database state + params).

// OrderLineReq is one requested line of a New-Order.
type OrderLineReq struct {
	Item    int64 // 0-based item index
	SupplyW int64 // 0-based supplying warehouse
	Qty     uint64
}

// NewOrderParams parameterizes a New-Order transaction.
type NewOrderParams struct {
	W, D, C int64 // 0-based warehouse, district, customer
	Lines   []OrderLineReq
}

// PrepareOrderBlock allocates the 16-line block (order header + up to 15
// order lines) a New-Order will fill. Allocate outside the critical
// section; recycle with RecycleOrderBlock if the transaction is abandoned.
func (db *DB) PrepareOrderBlock(t *htm.Thread) machine.Addr {
	return t.AllocAligned(orderBlockWords)
}

// RecycleOrderBlock returns an unused order block to the allocator.
func (db *DB) RecycleOrderBlock(t *htm.Thread, block machine.Addr) {
	if block != 0 {
		t.FreeAligned(block, orderBlockWords)
	}
}

// NewOrder executes the New-Order transaction body (write critical
// section): reads warehouse/district/customer and the ordered items'
// stock, updates stock, assigns the next order id, fills the order block,
// and installs it in the district's recent ring, the customer's last-order
// slot and the new-order queue. It returns the order total in cents.
func (db *DB) NewOrder(t *htm.Thread, p NewOrderParams, block machine.Addr) uint64 {
	wh := db.warehouse(p.W)
	di := db.district(p.W, p.D)
	cu := db.customer(p.W, p.D, p.C)

	wtax := t.Load(wh + whTax)
	dtax := t.Load(di + diTax)
	t.Load(cu + cuBalance) // customer discount stand-in

	oid := t.Load(di + diNextOID)
	t.Store(di+diNextOID, oid+1)

	t.Store(block+orID, oid)
	t.Store(block+orCID, uint64(p.C+1))
	t.Store(block+orDID, uint64(p.D+1))
	t.Store(block+orWID, uint64(p.W+1))
	t.Store(block+orCarrier, 0)
	t.Store(block+orOLCnt, uint64(len(p.Lines)))
	t.Store(block+orEntryD, oid)
	t.Store(block+orNextNew, 0)

	var total uint64
	for l, req := range p.Lines {
		price := t.Load(db.item(req.Item) + itPrice)
		st := db.stockOf(req.SupplyW, req.Item)
		qty := t.Load(st + stQty)
		if qty >= req.Qty+10 {
			qty -= req.Qty
		} else {
			qty = qty - req.Qty + 91
		}
		t.Store(st+stQty, qty)
		t.Store(st+stYTD, t.Load(st+stYTD)+req.Qty)
		t.Store(st+stOrderCnt, t.Load(st+stOrderCnt)+1)
		if req.SupplyW != p.W {
			t.Store(st+stRemoteCnt, t.Load(st+stRemoteCnt)+1)
		}
		amount := req.Qty * price
		total += amount
		ol := block + machine.Addr((l+1)*16)
		t.Store(ol+olIID, uint64(req.Item+1))
		t.Store(ol+olSupplyW, uint64(req.SupplyW+1))
		t.Store(ol+olQty, req.Qty)
		t.Store(ol+olAmount, amount)
		t.Store(ol+olDeliveryD, 0)
	}
	total += total * (wtax + dtax) / 10000

	// Recent-order ring (read by Stock-Level).
	idx := t.Load(di + diRingIdx)
	t.Store(di+diRing+machine.Addr(idx%RecentOrders), uint64(block))
	t.Store(di+diRingIdx, idx+1)
	// Customer's last order (read by Order-Status).
	t.Store(cu+cuLastOrder, uint64(block))
	// New-order queue append (consumed by Delivery).
	tail := t.Load(di + diNOTail)
	if tail == 0 {
		t.Store(di+diNOHead, uint64(block))
	} else {
		t.Store(machine.Addr(tail)+orNextNew, uint64(block))
	}
	t.Store(di+diNOTail, uint64(block))
	return total
}

// CustomerByLastName resolves a customer the TPC-C way: read the
// district's index entry for the name and take the middle customer
// (position ⌈n/2⌉, spec §2.5.2.2). Call inside a critical section — the
// index reads are part of the transaction's footprint.
func (db *DB) CustomerByLastName(t *htm.Thread, w, d, name int64) int64 {
	arr := db.nameIndex[(w*db.Cfg.DistrictsPerWH+d)*LastNames+name]
	n := t.Load(arr)
	if n == 0 {
		return 0
	}
	cu := machine.Addr(t.Load(arr + machine.Addr((n+1)/2)))
	return int64(t.Load(cu+cuID)) - 1
}

// PaymentParams parameterizes a Payment transaction.
type PaymentParams struct {
	W, D, C int64
	// ByName, when >= 0, selects the customer through the last-name
	// index inside the critical section (TPC-C: 60% of Payments),
	// overriding C.
	ByName int64
	Amount uint64 // cents
}

// Payment executes the Payment transaction body (write critical section):
// warehouse and district YTD, customer balance/payment counters, and a
// history-ring append.
func (db *DB) Payment(t *htm.Thread, p PaymentParams) {
	wh := db.warehouse(p.W)
	di := db.district(p.W, p.D)
	cid := p.C
	if p.ByName >= 0 {
		cid = db.CustomerByLastName(t, p.W, p.D, p.ByName)
	}
	cu := db.customer(p.W, p.D, cid)

	t.Store(wh+whYTD, t.Load(wh+whYTD)+p.Amount)
	t.Store(di+diYTD, t.Load(di+diYTD)+p.Amount)
	t.Store(cu+cuBalance, t.Load(cu+cuBalance)-p.Amount)
	t.Store(cu+cuYTDPayment, t.Load(cu+cuYTDPayment)+p.Amount)
	t.Store(cu+cuPaymentCnt, t.Load(cu+cuPaymentCnt)+1)

	idx := t.Load(db.histIdx[p.W])
	t.Store(db.histIdx[p.W], idx+1)
	entry := db.history[p.W] + machine.Addr(idx%uint64(db.Cfg.HistoryREntries)*16)
	t.Store(entry+hiCID, uint64(cid+1))
	t.Store(entry+hiDID, uint64(p.D+1))
	t.Store(entry+hiAmount, p.Amount)
	t.Store(entry+hiDate, idx)
}

// OrderStatus executes the Order-Status read-only transaction: the
// customer's balance and last order with all its lines. Returns the number
// of lines read. byName >= 0 selects the customer through the last-name
// index (TPC-C: 60% of Order-Status transactions).
func (db *DB) OrderStatus(t *htm.Thread, w, d, c, byName int64) int {
	if byName >= 0 {
		c = db.CustomerByLastName(t, w, d, byName)
	}
	cu := db.customer(w, d, c)
	t.Load(cu + cuBalance)
	order := machine.Addr(t.Load(cu + cuLastOrder))
	if order == 0 {
		return 0
	}
	t.Load(order + orID)
	t.Load(order + orCarrier)
	t.Load(order + orEntryD)
	n := int(t.Load(order + orOLCnt))
	for l := 0; l < n; l++ {
		ol := order + machine.Addr((l+1)*16)
		t.Load(ol + olIID)
		t.Load(ol + olQty)
		t.Load(ol + olAmount)
		t.Load(ol + olDeliveryD)
	}
	return n
}

// DeliveryResult reports what a Delivery committed, for host-side audit.
type DeliveryResult struct {
	Orders int    // orders delivered (≤ districts)
	Amount uint64 // total credited to customer balances
}

// Delivery executes the Delivery transaction body (write critical
// section): for every district of the warehouse, pop the oldest
// undelivered order, stamp the carrier and delivery dates, and credit the
// customer. This is TPC-C's heavyweight writer: it can touch well over a
// hundred cache lines, exceeding even ROT write capacity, so under RW-LE
// it typically completes on the non-speculative path.
func (db *DB) Delivery(t *htm.Thread, w int64, carrier uint64) DeliveryResult {
	var res DeliveryResult
	for d := int64(0); d < db.Cfg.DistrictsPerWH; d++ {
		di := db.district(w, d)
		head := machine.Addr(t.Load(di + diNOHead))
		if head == 0 {
			continue
		}
		next := t.Load(head + orNextNew)
		t.Store(di+diNOHead, next)
		if next == 0 {
			t.Store(di+diNOTail, 0)
		}
		t.Store(head+orCarrier, carrier)
		n := int(t.Load(head + orOLCnt))
		var sum uint64
		for l := 0; l < n; l++ {
			ol := head + machine.Addr((l+1)*16)
			t.Store(ol+olDeliveryD, carrier)
			sum += t.Load(ol + olAmount)
		}
		cid := int64(t.Load(head+orCID)) - 1
		cu := db.customer(w, d, cid)
		t.Store(cu+cuBalance, t.Load(cu+cuBalance)+sum)
		t.Store(cu+cuDeliveryCnt, t.Load(cu+cuDeliveryCnt)+1)
		res.Orders++
		res.Amount += sum
	}
	return res
}

// StockLevel executes the Stock-Level read-only transaction: scan the
// district's last RecentOrders orders, and count distinct items whose
// stock quantity is below the threshold. With 20 orders × up to 15 lines,
// each with a stock-row read, this is the section that blows the HTM read
// budget for roughly half of HLE's read attempts.
func (db *DB) StockLevel(t *htm.Thread, w, d int64, threshold uint64) int {
	di := db.district(w, d)
	seen := make(map[uint64]bool, 64) // host-local scratch: restartable
	low := 0
	for i := 0; i < RecentOrders; i++ {
		order := machine.Addr(t.Load(di + diRing + machine.Addr(i)))
		if order == 0 {
			continue
		}
		n := int(t.Load(order + orOLCnt))
		for l := 0; l < n; l++ {
			ol := order + machine.Addr((l+1)*16)
			iid := t.Load(ol + olIID)
			if iid == 0 || seen[iid] {
				continue
			}
			seen[iid] = true
			st := db.stockOf(w, int64(iid-1))
			if t.Load(st+stQty) < threshold {
				low++
			}
		}
	}
	return low
}
