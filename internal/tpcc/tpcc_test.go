package tpcc

import (
	"testing"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

func smallCfg() Config {
	return Config{
		Warehouses: 2, DistrictsPerWH: 4, CustomersPerDist: 32,
		Items: 128, HistoryREntries: 64, InitialOrdersPerD: RecentOrders + 4, Seed: 13,
	}
}

func newDB(cpus int, maxOps int64, seed uint64) (*htm.System, *DB) {
	cfg := smallCfg()
	m := machine.New(machine.Config{CPUs: cpus, MemWords: cfg.MemWords(maxOps), Seed: seed})
	sys := htm.NewSystem(m, htm.Config{})
	return sys, Build(m, cfg)
}

func TestBuildConsistent(t *testing.T) {
	_, db := newDB(1, 0, 1)
	var a Audit
	if msg := db.CheckConsistency(&a); msg != "" {
		t.Fatal(msg)
	}
}

func TestNewOrderSequential(t *testing.T) {
	sys, db := newDB(1, 16, 2)
	var a Audit
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < 10; i++ {
			p := NewOrderParams{W: 0, D: int64(i % 4), C: int64(i % 32)}
			for l := 0; l < 7; l++ {
				p.Lines = append(p.Lines, OrderLineReq{Item: int64(l * 3), SupplyW: 0, Qty: 2})
			}
			block := db.PrepareOrderBlock(th)
			total := db.NewOrder(th, p, block)
			if total == 0 {
				t.Error("zero order total")
			}
			a.NewOrders++
		}
	})
	if msg := db.CheckConsistency(&a); msg != "" {
		t.Fatal(msg)
	}
}

func TestPaymentUpdatesYTD(t *testing.T) {
	sys, db := newDB(1, 0, 3)
	var a Audit
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < 20; i++ {
			p := PaymentParams{W: int64(i % 2), D: int64(i % 4), C: int64(i % 32), Amount: uint64(100 * (i + 1))}
			db.Payment(th, p)
			a.Payments++
			a.PaymentsAmount += p.Amount
		}
	})
	if msg := db.CheckConsistency(&a); msg != "" {
		t.Fatal(msg)
	}
}

func TestCustomerByLastName(t *testing.T) {
	sys, db := newDB(1, 0, 9)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for name := int64(0); name < LastNames; name++ {
			cid := db.CustomerByLastName(th, 0, 0, name)
			if lastNameOf(cid) != name {
				t.Fatalf("name %d resolved to customer %d with name %d", name, cid, lastNameOf(cid))
			}
		}
		// The middle-customer rule: with 32 customers over 32 names, each
		// name has exactly one member, so selection is deterministic.
		if got := db.CustomerByLastName(th, 0, 0, 3); got != 3 {
			t.Errorf("single-member name resolved to %d", got)
		}
	})
}

func TestPaymentByLastName(t *testing.T) {
	sys, db := newDB(1, 0, 10)
	var a Audit
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		p := PaymentParams{W: 0, D: 0, C: 0, ByName: 5, Amount: 700}
		db.Payment(th, p)
		a.Payments++
		a.PaymentsAmount += p.Amount
	})
	if msg := db.CheckConsistency(&a); msg != "" {
		t.Fatal(msg)
	}
	// The balance change must have landed on the by-name customer (id 5
	// in the 32/32 configuration), not on C=0.
	cu5 := db.customer(0, 0, 5)
	if sys.M.Peek(cu5+cuPaymentCnt) != 1 {
		t.Error("payment did not reach the by-name customer")
	}
	cu0 := db.customer(0, 0, 0)
	if sys.M.Peek(cu0+cuPaymentCnt) != 0 {
		t.Error("payment also hit the by-id customer")
	}
}

func TestDeliveryDrainsQueue(t *testing.T) {
	sys, db := newDB(1, 0, 4)
	var a Audit
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		// Each warehouse starts with InitialOrdersPerD/2 undelivered per
		// district; each Delivery pops one per district.
		for rep := 0; rep < 20; rep++ {
			for w := int64(0); w < db.Cfg.Warehouses; w++ {
				res := db.Delivery(th, w, 7)
				a.DeliveredOrders += int64(res.Orders)
				a.DeliveredAmount += res.Amount
			}
		}
	})
	if msg := db.CheckConsistency(&a); msg != "" {
		t.Fatal(msg)
	}
	// All queues must now be empty: a further delivery finds nothing.
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		if res := db.Delivery(th, 0, 7); res.Orders != 0 {
			t.Errorf("delivered %d orders from an empty queue", res.Orders)
		}
	})
}

func TestOrderStatusAndStockLevelRead(t *testing.T) {
	sys, db := newDB(1, 0, 5)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		lines := 0
		for cid := int64(0); cid < db.Cfg.CustomersPerDist; cid++ {
			lines += db.OrderStatus(th, 0, 0, cid, -1)
		}
		if lines == 0 {
			t.Error("no customer had a last order after preload")
		}
		before := sys.M.CPU(0).Counters.Writes
		db.StockLevel(th, 0, 0, 200) // threshold above max qty: all low
		db.OrderStatus(th, 0, 0, 0, -1)
		if after := sys.M.CPU(0).Counters.Writes; after != before {
			t.Error("read-only transactions wrote memory")
		}
		if low := db.StockLevel(th, 0, 0, 200); low == 0 {
			t.Error("StockLevel found no items with threshold above max quantity")
		}
		if low := db.StockLevel(th, 0, 0, 0); low != 0 {
			t.Errorf("StockLevel found %d items below impossible threshold", low)
		}
	})
}

func TestStockLevelReadSetExceedsHTMCapacity(t *testing.T) {
	// The paper reports ~45% of TPC-C read sections blow HTM capacity
	// under HLE; Stock-Level is the culprit. Verify it aborts a default
	// 64-line-budget transaction.
	sys, db := newDB(1, 0, 6)
	var st htm.Status
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		st = th.Try(false, func() { db.StockLevel(th, 0, 0, 15) })
	})
	if st.OK {
		t.Skip("small test DB fits; capacity behaviour exercised at benchmark scale")
	}
}

func workloadStress(t *testing.T, mk rwlock.Factory, writePct int, seed uint64) {
	t.Helper()
	const threads, opsPerThread = 8, 30
	sys, db := newDB(threads, threads*opsPerThread, seed)
	lock := mk(sys)
	wl := &Workload{DB: db, WritePct: writePct}
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			wl.Step(lock, th, c)
		}
	})
	if msg := db.CheckConsistency(&wl.Audit); msg != "" {
		t.Fatalf("%s (w=%d%%): %s", lock.Name(), writePct, msg)
	}
}

func TestWorkloadRWLE(t *testing.T) {
	for _, w := range []int{10, 50} {
		workloadStress(t, func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }, w, uint64(w))
		workloadStress(t, func(s *htm.System) rwlock.Lock { return core.New(s, core.Pes()) }, w, uint64(w)+7)
	}
}

func TestWorkloadBaselines(t *testing.T) {
	workloadStress(t, func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }, 50, 20)
	workloadStress(t, func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }, 50, 21)
	workloadStress(t, func(s *htm.System) rwlock.Lock { return locks.NewRWL(s) }, 50, 22)
	workloadStress(t, func(s *htm.System) rwlock.Lock { return locks.NewBRLock(s) }, 50, 23)
}

func TestDeterministicWorkload(t *testing.T) {
	run := func() (Audit, int64) {
		sys, db := newDB(4, 200, 99)
		lock := core.New(sys, core.Opt())
		wl := &Workload{DB: db, WritePct: 30}
		cycles := sys.M.Run(4, func(c *machine.CPU) {
			th := sys.Thread(c.ID)
			for i := 0; i < 25; i++ {
				wl.Step(lock, th, c)
			}
		})
		return wl.Audit, cycles
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Errorf("nondeterministic: %+v/%d vs %+v/%d", a1, c1, a2, c2)
	}
}
