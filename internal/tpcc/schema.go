// Package tpcc ports the TPC-C benchmark to an in-memory store on the
// simulated machine, adapted exactly as the paper describes for Fig. 10:
// read-only transactions (Order-Status, Stock-Level) run as read critical
// sections and update transactions (New-Order, Payment, Delivery) as write
// critical sections under one read-write lock.
//
// The schema follows TPC-C: warehouses → districts → customers, a global
// item catalog, per-warehouse stock, orders with order lines, per-district
// new-order queues, and a payment history ring. Rows are line-aligned
// records in simulated memory; an order and its (up to 15) order lines
// share one 16-line block so New-Order can pre-allocate its storage
// outside the (speculative) critical section.
//
// Stock-Level's scan of the last 20 orders' lines and their stock rows is
// what makes ~half of this workload's read sections exceed HTM capacity —
// the paper reports read sections "fall prey of capacity exceptions in
// about 45% of the cases" under HLE.
package tpcc

import "hrwle/internal/machine"

// Row layouts (word offsets). One cache line per row unless noted.
const (
	// Warehouse.
	whID  = 0
	whTax = 1 // basis points
	whYTD = 2 // cents

	// District (2 lines: header + recent-order ring).
	diID      = 0
	diWID     = 1
	diTax     = 2
	diYTD     = 3
	diNextOID = 4
	diNOHead  = 5 // new-order queue (undelivered orders), FIFO
	diNOTail  = 6
	diRingIdx = 7
	diRing    = 8 // RecentOrders order addresses follow
	// RecentOrders is the length of the district's recent-order ring,
	// read by Stock-Level (TPC-C's "last 20 orders").
	RecentOrders = 20
	diWords      = diRing + RecentOrders

	// Customer.
	cuID          = 0
	cuDID         = 1
	cuWID         = 2
	cuBalance     = 3 // cents (signed, two's complement in a word)
	cuYTDPayment  = 4
	cuPaymentCnt  = 5
	cuDeliveryCnt = 6
	cuLastOrder   = 7

	// Item.
	itID    = 0
	itPrice = 1

	// Stock.
	stIID       = 0
	stWID       = 1
	stQty       = 2
	stYTD       = 3
	stOrderCnt  = 4
	stRemoteCnt = 5

	// Order header (line 0 of an order block).
	orID      = 0
	orCID     = 1
	orDID     = 2
	orWID     = 3
	orCarrier = 4
	orOLCnt   = 5
	orEntryD  = 6
	orNextNew = 7 // new-order queue link

	// Order line (lines 1..15 of an order block).
	olIID       = 0
	olSupplyW   = 1
	olQty       = 2
	olAmount    = 3
	olDeliveryD = 4

	// MaxOrderLines per order (TPC-C: 5..15).
	MaxOrderLines = 15
	// orderBlockWords: header line + 15 order-line lines.
	orderBlockWords = 16 * 16

	// History entry (one line) and per-warehouse ring header.
	hiCID    = 0
	hiDID    = 1
	hiAmount = 2
	hiDate   = 3

	// LastNames is the number of distinct customer last names (TPC-C
	// derives names from a 3-syllable scheme; customers are distributed
	// round-robin here). The per-district last-name index maps a name to
	// the customers bearing it, ordered by id; selection "by last name"
	// picks the middle customer, per the specification.
	LastNames = 32
)

// Config scales the database.
type Config struct {
	Warehouses        int64
	DistrictsPerWH    int64 // TPC-C: 10
	CustomersPerDist  int64 // TPC-C: 3000 (scaled down)
	Items             int64 // TPC-C: 100,000 (scaled down)
	HistoryREntries   int64 // per-warehouse history ring size
	InitialOrdersPerD int64 // preloaded orders per district
	Seed              uint64
}

// DefaultConfig approximates the paper's setup scaled to container memory.
func DefaultConfig() Config {
	return Config{
		Warehouses:        4,
		DistrictsPerWH:    10,
		CustomersPerDist:  256,
		Items:             4096,
		HistoryREntries:   1024,
		InitialOrdersPerD: RecentOrders + 4,
		Seed:              13,
	}
}

// MemWords estimates the footprint, with headroom for orders created
// during a run of maxOps operations.
func (c Config) MemWords(maxOps int64) int64 {
	rows := c.Warehouses*16 + // warehouse lines
		c.Warehouses*c.DistrictsPerWH*48 + // districts (2+ lines)
		c.Warehouses*c.DistrictsPerWH*c.CustomersPerDist*16 +
		c.Items*16 +
		c.Warehouses*c.Items*16 + // stock
		c.Warehouses*(c.HistoryREntries*16+16) +
		(c.Warehouses*c.DistrictsPerWH*c.InitialOrdersPerD+maxOps+64)*orderBlockWords
	return rows + 1<<15
}

// DB is a built TPC-C database.
type DB struct {
	Cfg Config
	M   *machine.Machine

	warehouses []machine.Addr
	districts  []machine.Addr // [w*DistrictsPerWH + d]
	customers  []machine.Addr // [(w*D + d)*CustomersPerDist + c]
	items      []machine.Addr
	stock      []machine.Addr // [w*Items + i]
	history    []machine.Addr // per-warehouse ring base
	histIdx    []machine.Addr // per-warehouse ring cursor word

	// nameIndex[(w*D+d)*LastNames + name] is the address of a word array:
	// [count, custAddr...] — the district's customers with that last
	// name, ordered by customer id. Built once; TPC-C's last-name index
	// is read-only at runtime (customers are never created or renamed).
	nameIndex []machine.Addr
}

// lastNameOf assigns customer c its last name (round-robin, as a stand-in
// for TPC-C's NURand syllable scheme — what matters to the workload is
// the index fan-out, CustomersPerDist/LastNames customers per name).
func lastNameOf(c int64) int64 { return c % LastNames }

func (db *DB) warehouse(w int64) machine.Addr { return db.warehouses[w] }
func (db *DB) district(w, d int64) machine.Addr {
	return db.districts[w*db.Cfg.DistrictsPerWH+d]
}
func (db *DB) customer(w, d, c int64) machine.Addr {
	return db.customers[(w*db.Cfg.DistrictsPerWH+d)*db.Cfg.CustomersPerDist+c]
}
func (db *DB) item(i int64) machine.Addr       { return db.items[i] }
func (db *DB) stockOf(w, i int64) machine.Addr { return db.stock[w*db.Cfg.Items+i] }

// Build constructs and populates the database with raw stores.
func Build(m *machine.Machine, cfg Config) *DB {
	db := &DB{Cfg: cfg, M: m}
	rng := buildRNG{s: cfg.Seed*0x9e3779b97f4a7c15 + 3}

	for w := int64(0); w < cfg.Warehouses; w++ {
		wh := m.AllocRawAligned(3)
		m.Poke(wh+whID, uint64(w+1))
		m.Poke(wh+whTax, uint64(rng.intn(2000)))
		db.warehouses = append(db.warehouses, wh)

		for d := int64(0); d < cfg.DistrictsPerWH; d++ {
			di := m.AllocRawAligned(diWords)
			m.Poke(di+diID, uint64(d+1))
			m.Poke(di+diWID, uint64(w+1))
			m.Poke(di+diTax, uint64(rng.intn(2000)))
			m.Poke(di+diNextOID, 1)
			db.districts = append(db.districts, di)
			for c := int64(0); c < cfg.CustomersPerDist; c++ {
				cu := m.AllocRawAligned(8)
				m.Poke(cu+cuID, uint64(c+1))
				m.Poke(cu+cuDID, uint64(d+1))
				m.Poke(cu+cuWID, uint64(w+1))
				m.Poke(cu+cuBalance, negCents(1000)) // TPC-C: -10.00
				db.customers = append(db.customers, cu)
			}
		}
		hist := m.AllocRawAligned(cfg.HistoryREntries * 16)
		idx := m.AllocRawAligned(1)
		db.history = append(db.history, hist)
		db.histIdx = append(db.histIdx, idx)
	}

	for i := int64(0); i < cfg.Items; i++ {
		it := m.AllocRawAligned(2)
		m.Poke(it+itID, uint64(i+1))
		m.Poke(it+itPrice, uint64(100+rng.intn(9900))) // cents
		db.items = append(db.items, it)
	}
	for w := int64(0); w < cfg.Warehouses; w++ {
		for i := int64(0); i < cfg.Items; i++ {
			st := m.AllocRawAligned(6)
			m.Poke(st+stIID, uint64(i+1))
			m.Poke(st+stWID, uint64(w+1))
			m.Poke(st+stQty, uint64(10+rng.intn(91)))
			db.stock = append(db.stock, st)
		}
	}

	// Per-district customer-by-last-name index.
	for w := int64(0); w < cfg.Warehouses; w++ {
		for d := int64(0); d < cfg.DistrictsPerWH; d++ {
			for name := int64(0); name < LastNames; name++ {
				var members []machine.Addr
				for c := int64(0); c < cfg.CustomersPerDist; c++ {
					if lastNameOf(c) == name {
						members = append(members, db.customer(w, d, c))
					}
				}
				arr := m.AllocRawAligned(int64(len(members)) + 1)
				m.Poke(arr, uint64(len(members)))
				for i, cu := range members {
					m.Poke(arr+machine.Addr(i+1), uint64(cu))
				}
				db.nameIndex = append(db.nameIndex, arr)
			}
		}
	}

	// Preload orders so Stock-Level and Order-Status have history from
	// the start. These are built directly (raw) through the same block
	// layout New-Order uses.
	for w := int64(0); w < cfg.Warehouses; w++ {
		for d := int64(0); d < cfg.DistrictsPerWH; d++ {
			for o := int64(0); o < cfg.InitialOrdersPerD; o++ {
				db.rawPreloadOrder(&rng, w, d)
			}
		}
	}
	return db
}

// rawPreloadOrder builds one populated order block and installs it in the
// district's bookkeeping (next-o-id, recent ring, customer last-order; odd
// preloaded orders stay in the new-order queue as undelivered).
func (db *DB) rawPreloadOrder(rng *buildRNG, w, d int64) {
	m := db.M
	cfg := db.Cfg
	di := db.district(w, d)
	block := m.AllocRawAligned(orderBlockWords)
	oid := m.Peek(di + diNextOID)
	m.Poke(di+diNextOID, oid+1)
	cid := int64(rng.intn(int(cfg.CustomersPerDist)))
	olCnt := 5 + rng.intn(MaxOrderLines-5+1)
	m.Poke(block+orID, oid)
	m.Poke(block+orCID, uint64(cid+1))
	m.Poke(block+orDID, uint64(d+1))
	m.Poke(block+orWID, uint64(w+1))
	m.Poke(block+orOLCnt, uint64(olCnt))
	m.Poke(block+orEntryD, oid)
	delivered := oid%2 == 0
	if delivered {
		m.Poke(block+orCarrier, uint64(1+rng.intn(10)))
	}
	for l := 0; l < olCnt; l++ {
		ol := block + machine.Addr((l+1)*16)
		iid := int64(rng.intn(int(cfg.Items)))
		price := m.Peek(db.item(iid) + itPrice)
		qty := uint64(1 + rng.intn(10))
		m.Poke(ol+olIID, uint64(iid+1))
		m.Poke(ol+olSupplyW, uint64(w+1))
		m.Poke(ol+olQty, qty)
		m.Poke(ol+olAmount, qty*price)
		if delivered {
			m.Poke(ol+olDeliveryD, oid)
		}
	}
	// Recent-order ring.
	idx := m.Peek(di + diRingIdx)
	m.Poke(di+diRing+machine.Addr(idx%RecentOrders), uint64(block))
	m.Poke(di+diRingIdx, idx+1)
	// Customer's last order.
	m.Poke(db.customer(w, d, cid)+cuLastOrder, uint64(block))
	// Undelivered orders join the new-order queue.
	if !delivered {
		tail := m.Peek(di + diNOTail)
		if tail == 0 {
			m.Poke(di+diNOHead, uint64(block))
		} else {
			m.Poke(machine.Addr(tail)+orNextNew, uint64(block))
		}
		m.Poke(di+diNOTail, uint64(block))
	}
}

// negCents encodes a negative cent amount in a word (two's complement).
func negCents(c int64) uint64 { return uint64(-c) }

type buildRNG struct{ s uint64 }

func (r *buildRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
func (r *buildRNG) intn(n int) int { return int(r.next() % uint64(n)) }
