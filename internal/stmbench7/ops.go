package stmbench7

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// Op is one benchmark operation. ReadOnly operations acquire the
// application's read-write lock in read mode, updates in write mode (the
// paper's adaptation of STMBench7 to a lock interface).
//
// Run must be restartable: elision schemes may execute it speculatively
// and re-run it after an abort, so all its effects go through the
// htm.Thread and any scratch state is local to the invocation.
type Op struct {
	Name     string
	ReadOnly bool
	Run      func(b *Bench, t *htm.Thread, c *machine.CPU)
}

// rdPart reads the scalar fields of an atomic part (id, x, y, date).
func rdPart(t *htm.Thread, p machine.Addr) uint64 {
	return t.Load(p+apID) + t.Load(p+apX) + t.Load(p+apY) + t.Load(p+apBuildDate)
}

// indexLookup finds an atomic part by id through the simulated-memory
// index (cost paid inside the critical section, as in the original
// benchmark's B-tree indexes).
func (b *Bench) indexLookup(t *htm.Thread, id uint64) machine.Addr {
	v, ok := b.Index.Lookup(t, id)
	if !ok {
		return 0
	}
	return machine.Addr(v)
}

// randPartID returns a uniformly random valid atomic-part id.
func (b *Bench) randPartID(c *machine.CPU) uint64 {
	return uint64(1 + c.Intn(len(b.AtomicParts)))
}

func (b *Bench) randComposite(c *machine.CPU) machine.Addr {
	return b.CompositeParts[c.Intn(len(b.CompositeParts))]
}

func (b *Bench) randBase(c *machine.CPU) machine.Addr {
	return b.BaseAssemblies[c.Intn(len(b.BaseAssemblies))]
}

// --- Read-only operations ------------------------------------------------

// opQueryParts: Q1-style — k random atomic parts via the index.
func opQueryParts(k int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		var sum uint64
		for i := 0; i < k; i++ {
			if p := b.indexLookup(t, b.randPartID(c)); p != 0 {
				sum += rdPart(t, p)
			}
		}
		t.C.Work(int64(k))
	}
}

// opRecentParts: Q2/Q3-style — sample parts and count recent build dates.
func opRecentParts(sample int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		recent := 0
		for i := 0; i < sample; i++ {
			if p := b.indexLookup(t, b.randPartID(c)); p != 0 {
				if t.Load(p+apBuildDate) > 1800 {
					recent++
				}
			}
		}
		t.C.Work(int64(sample))
	}
}

// opReadDocs: Q4-style — documents of k random composites, reading the
// title and a slice of the text.
func opReadDocs(k, words int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		var sum uint64
		for i := 0; i < k; i++ {
			comp := b.randComposite(c)
			doc := machine.Addr(t.Load(comp + cpDocument))
			sum += t.Load(doc + docTitle)
			text := machine.Addr(t.Load(doc + docTextArr))
			n := int(t.Load(doc + docTextLen))
			for w := 0; w < words && w < n; w++ {
				sum += t.Load(text + machine.Addr(w))
			}
		}
		t.C.Work(int64(k * words))
	}
}

// opScanBases: Q5-style — check base assemblies whose components are newer
// than the assembly.
func opScanBases(k int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		for i := 0; i < k; i++ {
			ba := b.randBase(c)
			bd := t.Load(ba + baBuildDate)
			n := int(t.Load(ba + baNComp))
			for j := 0; j < n; j++ {
				comp := machine.Addr(t.Load(ba + baCompBase + machine.Addr(j)))
				if t.Load(comp+cpBuildDate) > bd {
					t.C.Work(1)
				}
			}
		}
	}
}

// opIterateParts: Q7-style (bounded) — walk the part arrays of k random
// composites, reading every part. This is the capacity-heavy read query.
func opIterateParts(k int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		var sum uint64
		for i := 0; i < k; i++ {
			comp := b.randComposite(c)
			arr := machine.Addr(t.Load(comp + cpPartsArr))
			n := int(t.Load(comp + cpNParts))
			for j := 0; j < n; j++ {
				sum += rdPart(t, machine.Addr(t.Load(arr+machine.Addr(j))))
			}
		}
		t.C.Work(int64(k))
	}
}

// opShortTraversal: ST-style — DFS over one composite's connection graph
// from its root part, bounded by depth.
func opShortTraversal(depth int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		ba := b.randBase(c)
		comp := machine.Addr(t.Load(ba + baCompBase))
		visited := map[machine.Addr]bool{}
		var dfs func(p machine.Addr, d int)
		dfs = func(p machine.Addr, d int) {
			if d == 0 || visited[p] {
				return
			}
			visited[p] = true
			rdPart(t, p)
			n := int(t.Load(p + apNConn))
			for k := 0; k < n; k++ {
				base := p + apConnBase + machine.Addr(k*apConnStep)
				dest := machine.Addr(t.Load(base))
				t.Load(base + 1) // connection length
				dfs(dest, d-1)
			}
		}
		dfs(machine.Addr(t.Load(comp+cpRootPart)), depth)
		t.C.Work(int64(len(visited)))
	}
}

// opAssemblyPath: walk from a base assembly up to the design root.
func opAssemblyPath(b *Bench, t *htm.Thread, c *machine.CPU) {
	a := b.randBase(c)
	var sum uint64
	sum += t.Load(a + baBuildDate)
	a = machine.Addr(t.Load(a + baSuper))
	for a != 0 {
		sum += t.Load(a + caBuildDate)
		a = machine.Addr(t.Load(a + caSuper))
	}
	t.C.Work(4)
}

// opReadManual: OP-style — scan a window of the manual.
func opReadManual(words int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		man := machine.Addr(t.Load(b.Module + modManual))
		text := machine.Addr(t.Load(man + manTextArr))
		n := int(t.Load(man + manTextLen))
		start := c.Intn(n - words)
		var sum uint64
		for w := 0; w < words; w++ {
			sum += t.Load(text + machine.Addr(start+w))
		}
		t.C.Work(int64(words))
	}
}

// --- Update operations ----------------------------------------------------
//
// Every update preserves the benchmark's global invariant Σ(x+y) over all
// atomic parts, and build-date updates increment by exactly 1, so tests
// can audit the final state against per-thread commit counts.

// opSwapXY: OP9/OP15-style — swap x and y of every part of a composite.
func opSwapXY(b *Bench, t *htm.Thread, c *machine.CPU) {
	comp := b.randComposite(c)
	arr := machine.Addr(t.Load(comp + cpPartsArr))
	n := int(t.Load(comp + cpNParts))
	for j := 0; j < n; j++ {
		p := machine.Addr(t.Load(arr + machine.Addr(j)))
		x, y := t.Load(p+apX), t.Load(p+apY)
		t.Store(p+apX, y)
		t.Store(p+apY, x)
	}
	t.C.Work(int64(n))
}

// opShiftXY: OP-style — x+=1, y-=1 on k random parts (sum-preserving).
func opShiftXY(k int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		for i := 0; i < k; i++ {
			if p := b.indexLookup(t, b.randPartID(c)); p != 0 {
				t.Store(p+apX, t.Load(p+apX)+1)
				t.Store(p+apY, t.Load(p+apY)-1)
			}
		}
		t.C.Work(int64(k))
	}
}

// opTouchDates: OP10-style — increment the build date of k random parts.
func opTouchDates(k int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		for i := 0; i < k; i++ {
			if p := b.indexLookup(t, b.randPartID(c)); p != 0 {
				t.Store(p+apBuildDate, t.Load(p+apBuildDate)+1)
			}
		}
		t.C.Work(int64(k))
	}
}

// opUpdateDoc: OP14-style — rewrite a window of a composite's document.
func opUpdateDoc(words int) func(*Bench, *htm.Thread, *machine.CPU) {
	return func(b *Bench, t *htm.Thread, c *machine.CPU) {
		comp := b.randComposite(c)
		doc := machine.Addr(t.Load(comp + cpDocument))
		text := machine.Addr(t.Load(doc + docTextArr))
		n := int(t.Load(doc + docTextLen))
		for w := 0; w < words && w < n; w++ {
			t.Store(text+machine.Addr(w), t.Load(text+machine.Addr(w))^1)
		}
		t.C.Work(int64(words))
	}
}

// opTouchAssembly: increment the build date of a base assembly and its
// composites.
func opTouchAssembly(b *Bench, t *htm.Thread, c *machine.CPU) {
	ba := b.randBase(c)
	t.Store(ba+baBuildDate, t.Load(ba+baBuildDate)+1)
	n := int(t.Load(ba + baNComp))
	for j := 0; j < n; j++ {
		comp := machine.Addr(t.Load(ba + baCompBase + machine.Addr(j)))
		t.Store(comp+cpBuildDate, t.Load(comp+cpBuildDate)+1)
	}
	t.C.Work(int64(n))
}

// opRotateConnLengths: rotate the connection lengths within each part of a
// composite (length-multiset preserving).
func opRotateConnLengths(b *Bench, t *htm.Thread, c *machine.CPU) {
	comp := b.randComposite(c)
	arr := machine.Addr(t.Load(comp + cpPartsArr))
	n := int(t.Load(comp + cpNParts))
	for j := 0; j < n; j++ {
		p := machine.Addr(t.Load(arr + machine.Addr(j)))
		nc := int(t.Load(p + apNConn))
		if nc < 2 {
			continue
		}
		first := t.Load(p + apConnBase + 1)
		for k := 0; k < nc-1; k++ {
			t.Store(p+apConnBase+machine.Addr(k*apConnStep)+1,
				t.Load(p+apConnBase+machine.Addr((k+1)*apConnStep)+1))
		}
		t.Store(p+apConnBase+machine.Addr((nc-1)*apConnStep)+1, first)
	}
	t.C.Work(int64(n))
}

// Ops returns the 24-operation default mix: STMBench7's read-only
// queries/short traversals and its non-structural update operations, in
// several parameterizations (as the original defines ST1..ST9 and
// OP1..OP15 as size variants of a few kernels).
func Ops() []Op {
	return []Op{
		// 14 read-only operations.
		{"Q1-parts4", true, opQueryParts(4)},
		{"Q1-parts10", true, opQueryParts(10)},
		{"Q2-recent20", true, opRecentParts(20)},
		{"Q2-recent60", true, opRecentParts(60)},
		{"Q4-docs5", true, opReadDocs(5, 20)},
		{"Q4-docs10", true, opReadDocs(10, 40)},
		{"Q5-bases10", true, opScanBases(10)},
		{"Q5-bases30", true, opScanBases(30)},
		{"Q7-iter2", true, opIterateParts(2)},
		{"Q7-iter5", true, opIterateParts(5)},
		{"ST-dfs8", true, opShortTraversal(8)},
		{"ST-dfs20", true, opShortTraversal(20)},
		{"OP-path", true, opAssemblyPath},
		{"OP-manual", true, opReadManual(256)},
		// 10 update operations.
		{"OP9-swap", false, opSwapXY},
		{"OP-shift4", false, opShiftXY(4)},
		{"OP-shift10", false, opShiftXY(10)},
		{"OP10-dates4", false, opTouchDates(4)},
		{"OP10-dates10", false, opTouchDates(10)},
		{"OP14-doc10", false, opUpdateDoc(10)},
		{"OP14-doc40", false, opUpdateDoc(40)},
		{"OP-assembly", false, opTouchAssembly},
		{"OP-conns", false, opRotateConnLengths},
		{"OP15-swap", false, opSwapXY},
	}
}

// SplitOps partitions the mix into read-only and update operations.
func SplitOps() (readOnly, updates []Op) {
	for _, op := range Ops() {
		if op.ReadOnly {
			readOnly = append(readOnly, op)
		} else {
			updates = append(updates, op)
		}
	}
	return
}
