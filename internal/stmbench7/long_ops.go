package stmbench7

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// This file implements the operation classes the paper's configuration
// DISABLES ("disabling long traversals and maintenance structural
// modifications") but which belong to a complete STMBench7 port: the
// T1/T2-style whole-hierarchy traversals and the SM-style structural
// modifications. They are exercised by tests and available through
// FullOps for experiments beyond the paper's configuration; NewMix uses
// only the default 24-operation mix.

// walkAssembly recursively visits the assembly tree from complex assembly
// a (complex assemblies carry their level; level-2 assemblies parent the
// base assemblies), applying visit to every composite-part reference of
// every base assembly — shared composites are visited once per reference,
// as STMBench7's traversals do.
func walkAssembly(t *htm.Thread, a machine.Addr, visit func(comp machine.Addr)) {
	level := t.Load(a + caLevel)
	n := int(t.Load(a + caNSub))
	for k := 0; k < n; k++ {
		child := machine.Addr(t.Load(a + caSubBase + machine.Addr(k)))
		if level == 2 {
			// Children are base assemblies.
			nc := int(t.Load(child + baNComp))
			for j := 0; j < nc; j++ {
				visit(machine.Addr(t.Load(child + baCompBase + machine.Addr(j))))
			}
		} else {
			walkAssembly(t, child, visit)
		}
	}
}

// opT1FullTraversal is the T1 long traversal: DFS over the whole design
// hierarchy, visiting every reachable composite's full part graph. Its
// read set spans the entire database — thousands of cache lines — which
// is why the paper disables it: under HLE it is a guaranteed capacity
// abort, and even RW-LE must run it via ROT or the global lock.
func opT1FullTraversal(b *Bench, t *htm.Thread, c *machine.CPU) {
	root := machine.Addr(t.Load(b.Module + modDesignRoot))
	var parts uint64
	walkAssembly(t, root, func(comp machine.Addr) {
		arr := machine.Addr(t.Load(comp + cpPartsArr))
		n := int(t.Load(comp + cpNParts))
		for j := 0; j < n; j++ {
			p := machine.Addr(t.Load(arr + machine.Addr(j)))
			rdPart(t, p)
			parts++
		}
	})
	t.C.Work(int64(parts))
}

// opT2FullUpdate is the T2b-style long update traversal: like T1 but
// swapping x and y of every part it visits (Σ(x+y)-preserving). Composites
// shared by several base assemblies are visited — and swapped — once per
// reference, exactly as STMBench7's T2 does.
func opT2FullUpdate(b *Bench, t *htm.Thread, c *machine.CPU) {
	root := machine.Addr(t.Load(b.Module + modDesignRoot))
	walkAssembly(t, root, func(comp machine.Addr) {
		arr := machine.Addr(t.Load(comp + cpPartsArr))
		n := int(t.Load(comp + cpNParts))
		for j := 0; j < n; j++ {
			p := machine.Addr(t.Load(arr + machine.Addr(j)))
			x, y := t.Load(p+apX), t.Load(p+apY)
			t.Store(p+apX, y)
			t.Store(p+apY, x)
		}
	})
}

// opSMRewireAssembly is an SM6/SM7-style structural modification: a random
// base assembly drops one composite reference and adopts another from the
// shared pool (the entry-point table is immutable host state, so the
// replacement is drawn before any speculation — restartable).
func opSMRewireAssembly(b *Bench, t *htm.Thread, c *machine.CPU) {
	ba := b.randBase(c)
	slot := machine.Addr(c.Intn(b.Cfg.AssmFanout))
	repl := b.randComposite(c)
	t.Store(ba+baCompBase+slot, uint64(repl))
}

// opSMReverseParts is an SM-style in-place reorganization: reverse a
// composite's part array (permutation-preserving, so CheckStructure's
// membership accounting still holds).
func opSMReverseParts(b *Bench, t *htm.Thread, c *machine.CPU) {
	comp := b.randComposite(c)
	arr := machine.Addr(t.Load(comp + cpPartsArr))
	n := int(t.Load(comp + cpNParts))
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		vi := t.Load(arr + machine.Addr(i))
		vj := t.Load(arr + machine.Addr(j))
		t.Store(arr+machine.Addr(i), vj)
		t.Store(arr+machine.Addr(j), vi)
	}
	// Keep the root-part invariant: the root must be a member, and it
	// still is (same multiset); refresh the pointer to the new first slot
	// as the builder convention does.
	t.Store(comp+cpRootPart, t.Load(arr))
}

// opSMRerouteConnection retargets one connection of one random part to
// another part of the same composite (connection-count preserving;
// changes the graph's shape).
func opSMRerouteConnection(b *Bench, t *htm.Thread, c *machine.CPU) {
	comp := b.randComposite(c)
	arr := machine.Addr(t.Load(comp + cpPartsArr))
	n := int(t.Load(comp + cpNParts))
	p := machine.Addr(t.Load(arr + machine.Addr(c.Intn(n))))
	dest := machine.Addr(t.Load(arr + machine.Addr(c.Intn(n))))
	k := c.Intn(int(t.Load(p + apNConn)))
	t.Store(p+apConnBase+machine.Addr(k*apConnStep), uint64(dest))
}

// LongTraversalOps returns the T-class operations (disabled by default).
func LongTraversalOps() []Op {
	return []Op{
		{"T1-full", true, opT1FullTraversal},
		{"T2b-fullswap", false, opT2FullUpdate},
	}
}

// StructuralOps returns the SM-class operations (disabled by default).
func StructuralOps() []Op {
	return []Op{
		{"SM6-rewire", false, opSMRewireAssembly},
		{"SM-reverse", false, opSMReverseParts},
		{"SM-reroute", false, opSMRerouteConnection},
	}
}

// FullOps returns the complete operation set: the default mix plus long
// traversals and structural modifications — the configuration the paper
// does NOT run, provided for completeness and for experiments on
// capacity-extreme workloads.
func FullOps() []Op {
	ops := Ops()
	ops = append(ops, LongTraversalOps()...)
	ops = append(ops, StructuralOps()...)
	return ops
}

// NewFullMix builds a mix over FullOps with the given update ratio.
func NewFullMix(writePct int) *Mix {
	var ro, up []Op
	for _, op := range FullOps() {
		if op.ReadOnly {
			ro = append(ro, op)
		} else {
			up = append(up, op)
		}
	}
	return &Mix{readOnly: ro, updates: up, writePct: writePct}
}
