package stmbench7

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

// Mix drives the benchmark's operation selection: with probability
// writePct an update operation runs under the write lock, otherwise a
// read-only operation runs under the read lock. Within a class, operations
// are drawn uniformly (the benchmark's default mix).
type Mix struct {
	readOnly []Op
	updates  []Op
	writePct int
}

// NewMix builds the default 24-operation mix with the given update ratio.
func NewMix(writePct int) *Mix {
	ro, up := SplitOps()
	return &Mix{readOnly: ro, updates: up, writePct: writePct}
}

// Step executes one operation on behalf of thread t under lock.
func (x *Mix) Step(b *Bench, lock rwlock.Lock, t *htm.Thread, c *machine.CPU) {
	if c.Intn(100) < x.writePct {
		op := x.updates[c.Intn(len(x.updates))]
		lock.Write(t, func() { op.Run(b, t, c) })
	} else {
		op := x.readOnly[c.Intn(len(x.readOnly))]
		lock.Read(t, func() { op.Run(b, t, c) })
	}
	t.St.Ops++
}

// SumXY returns Σ(x+y) over all atomic parts (raw walk; test invariant —
// preserved by every update operation in the mix).
func (b *Bench) SumXY() uint64 {
	var sum uint64
	for _, p := range b.AtomicParts {
		sum += b.M.Peek(p+apX) + b.M.Peek(p+apY)
	}
	return sum
}

// SumConnLengths returns Σ(connection lengths) over all parts (raw walk;
// preserved by opRotateConnLengths and untouched by everything else).
func (b *Bench) SumConnLengths() uint64 {
	var sum uint64
	for _, p := range b.AtomicParts {
		nc := int(b.M.Peek(p + apNConn))
		for k := 0; k < nc; k++ {
			sum += b.M.Peek(p + apConnBase + machine.Addr(k*apConnStep) + 1)
		}
	}
	return sum
}

// CheckStructure validates referential integrity of the object graph:
// every part belongs to its composite, every composite's root part is in
// its own part array, every base assembly links composites, and the
// assembly tree is intact up to the module root. Returns "" if sound.
func (b *Bench) CheckStructure() string {
	m := b.M
	for _, comp := range b.CompositeParts {
		arr := machine.Addr(m.Peek(comp + cpPartsArr))
		n := int(m.Peek(comp + cpNParts))
		if n != b.Cfg.PartsPerComposite {
			return "composite part count corrupted"
		}
		rootSeen := false
		root := m.Peek(comp + cpRootPart)
		for j := 0; j < n; j++ {
			p := machine.Addr(m.Peek(arr + machine.Addr(j)))
			if m.Peek(p+apPartOf) != uint64(comp) {
				return "part does not belong to its composite"
			}
			if uint64(p) == root {
				rootSeen = true
			}
			nc := int(m.Peek(p + apNConn))
			if nc != b.Cfg.ConnsPerPart {
				return "connection count corrupted"
			}
		}
		if !rootSeen {
			return "composite root part not in part array"
		}
		doc := machine.Addr(m.Peek(comp + cpDocument))
		if m.Peek(doc+docPart) != uint64(comp) {
			return "document does not point back to composite"
		}
	}
	for _, ba := range b.BaseAssemblies {
		n := int(m.Peek(ba + baNComp))
		if n != b.Cfg.AssmFanout {
			return "base assembly fanout corrupted"
		}
		// Walk to the root.
		a := machine.Addr(m.Peek(ba + baSuper))
		steps := 0
		for a != 0 {
			if steps++; steps > b.Cfg.AssmLevels {
				return "assembly tree too deep (cycle?)"
			}
			a = machine.Addr(m.Peek(a + caSuper))
		}
		if steps != b.Cfg.AssmLevels-1 {
			return "assembly path length wrong"
		}
	}
	if machine.Addr(m.Peek(b.Module+modDesignRoot)) == 0 {
		return "module lost its design root"
	}
	return ""
}
