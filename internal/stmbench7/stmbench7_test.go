package stmbench7

import (
	"testing"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

func smallConfig() Config {
	return Config{
		AssmLevels: 3, AssmFanout: 3, Composites: 20, PartsPerComposite: 10,
		ConnsPerPart: 3, DocWords: 40, ManualWords: 1024, Seed: 5,
	}
}

func buildSmall(cpus int, seed uint64) (*htm.System, *Bench) {
	cfg := smallConfig()
	m := machine.New(machine.Config{CPUs: cpus, MemWords: cfg.MemWords(), Seed: seed})
	sys := htm.NewSystem(m, htm.Config{})
	return sys, Build(m, cfg)
}

func TestBuildStructure(t *testing.T) {
	_, b := buildSmall(1, 1)
	if msg := b.CheckStructure(); msg != "" {
		t.Fatal(msg)
	}
	if got := len(b.AtomicParts); got != 200 {
		t.Errorf("parts = %d, want 200", got)
	}
	if got := len(b.BaseAssemblies); got != 9 {
		t.Errorf("base assemblies = %d, want 3^2", got)
	}
	if got := len(b.CompositeParts); got != 20 {
		t.Errorf("composites = %d", got)
	}
}

func TestIndexFindsEveryPart(t *testing.T) {
	sys, b := buildSmall(1, 2)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for id := uint64(1); id <= uint64(len(b.AtomicParts)); id++ {
			p := b.indexLookup(th, id)
			if p == 0 {
				t.Fatalf("id %d not in index", id)
			}
			if got := th.Load(p + apID); got != id {
				t.Fatalf("index maps %d to part with id %d", id, got)
			}
		}
		if b.indexLookup(th, 1<<40) != 0 {
			t.Error("bogus id found")
		}
	})
}

func TestDefaultMixHas24Ops(t *testing.T) {
	ops := Ops()
	if len(ops) != 24 {
		t.Fatalf("mix has %d operations, want 24", len(ops))
	}
	ro, up := SplitOps()
	if len(ro)+len(up) != 24 || len(ro) == 0 || len(up) == 0 {
		t.Errorf("split %d/%d", len(ro), len(up))
	}
	seen := map[string]bool{}
	for _, op := range ops {
		if op.Name == "" || op.Run == nil {
			t.Errorf("op %q incomplete", op.Name)
		}
		if seen[op.Name] && op.Name != "OP9-swap" {
			// OP15-swap aliases the swap kernel deliberately.
			t.Errorf("duplicate op name %q", op.Name)
		}
		seen[op.Name] = true
	}
}

func TestEveryOpRunsSequentially(t *testing.T) {
	sys, b := buildSmall(1, 3)
	sumXY := b.SumXY()
	conns := b.SumConnLengths()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for _, op := range Ops() {
			for rep := 0; rep < 3; rep++ {
				op.Run(b, th, c)
			}
		}
	})
	if msg := b.CheckStructure(); msg != "" {
		t.Fatal(msg)
	}
	if got := b.SumXY(); got != sumXY {
		t.Errorf("Σ(x+y) drifted: %d -> %d", sumXY, got)
	}
	if got := b.SumConnLengths(); got != conns {
		t.Errorf("Σ(conn lengths) drifted: %d -> %d", conns, got)
	}
}

func TestReadOnlyOpsDoNotWrite(t *testing.T) {
	sys, b := buildSmall(1, 4)
	ro, _ := SplitOps()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for _, op := range ro {
			before := sys.M.CPU(0).Counters.Writes
			op.Run(b, th, c)
			if after := sys.M.CPU(0).Counters.Writes; after != before {
				t.Errorf("read-only op %s performed %d writes", op.Name, after-before)
			}
		}
	})
}

func concurrentMix(t *testing.T, mk rwlock.Factory, writePct int, seed uint64) {
	t.Helper()
	const threads, opsPerThread = 8, 40
	sys, b := buildSmall(threads, seed)
	lock := mk(sys)
	mix := NewMix(writePct)
	sumXY := b.SumXY()
	conns := b.SumConnLengths()
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			mix.Step(b, lock, th, c)
		}
	})
	if msg := b.CheckStructure(); msg != "" {
		t.Fatalf("%s: %s", lock.Name(), msg)
	}
	if got := b.SumXY(); got != sumXY {
		t.Errorf("%s: Σ(x+y) %d -> %d (lost/torn updates)", lock.Name(), sumXY, got)
	}
	if got := b.SumConnLengths(); got != conns {
		t.Errorf("%s: Σ(conn) %d -> %d", lock.Name(), conns, got)
	}
	var ops int64
	for i := 0; i < threads; i++ {
		ops += sys.Thread(i).St.Ops
	}
	if ops != threads*opsPerThread {
		t.Errorf("%s: ops = %d", lock.Name(), ops)
	}
}

func TestConcurrentMixRWLE(t *testing.T) {
	for _, w := range []int{10, 50, 90} {
		concurrentMix(t, func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }, w, uint64(w))
		concurrentMix(t, func(s *htm.System) rwlock.Lock { return core.New(s, core.Pes()) }, w, uint64(w)+1)
	}
}

func TestConcurrentMixBaselines(t *testing.T) {
	concurrentMix(t, func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }, 50, 30)
	concurrentMix(t, func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }, 50, 31)
	concurrentMix(t, func(s *htm.System) rwlock.Lock { return locks.NewRWL(s) }, 50, 32)
	concurrentMix(t, func(s *htm.System) rwlock.Lock { return locks.NewBRLock(s) }, 50, 33)
}

func TestDeterministicBuild(t *testing.T) {
	_, b1 := buildSmall(1, 9)
	_, b2 := buildSmall(1, 9)
	if b1.SumXY() != b2.SumXY() || b1.SumConnLengths() != b2.SumConnLengths() {
		t.Error("builds with equal seeds differ")
	}
}

func TestMemWordsEstimateSufficient(t *testing.T) {
	cfg := DefaultConfig()
	m := machine.New(machine.Config{CPUs: 1, MemWords: cfg.MemWords(), Seed: 1})
	b := Build(m, cfg)
	if msg := b.CheckStructure(); msg != "" {
		t.Fatal(msg)
	}
	if m.HeapUsed() >= cfg.MemWords() {
		t.Error("estimate too small")
	}
}
