package stmbench7

import (
	"hrwle/internal/hashmap"
	"hrwle/internal/machine"
)

// buildRNG is a private SplitMix64 used only during construction so the
// database layout is a pure function of Config.Seed.
type buildRNG struct{ s uint64 }

func (r *buildRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
func (r *buildRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// Build constructs the database with raw stores (setup time, no virtual
// cycles) and returns the benchmark handle.
func Build(m *machine.Machine, cfg Config) *Bench {
	b := &Bench{Cfg: cfg, M: m}
	rng := buildRNG{s: cfg.Seed*2654435761 + 1}

	// Atomic parts and their per-composite graphs, composites, documents.
	totalParts := cfg.Composites * cfg.PartsPerComposite
	b.AtomicParts = make([]machine.Addr, 0, totalParts)
	b.CompositeParts = make([]machine.Addr, 0, cfg.Composites)
	// Index sized so chains stay short: part lookups are meant to be
	// cheap; the capacity pressure comes from the object graph itself.
	b.Index = hashmap.New(m, int64(totalParts/4+1))

	nextID := uint64(1)
	for c := 0; c < cfg.Composites; c++ {
		comp := m.AllocRawAligned(16)
		parts := make([]machine.Addr, cfg.PartsPerComposite)
		for i := range parts {
			p := m.AllocRawAligned(16)
			id := nextID
			nextID++
			m.Poke(p+apID, id)
			m.Poke(p+apX, uint64(rng.intn(1000)))
			m.Poke(p+apY, uint64(rng.intn(1000)))
			m.Poke(p+apBuildDate, uint64(1000+rng.intn(1000)))
			m.Poke(p+apPartOf, uint64(comp))
			parts[i] = p
			b.AtomicParts = append(b.AtomicParts, p)
			// Index entry (direct construction, like Populate).
			idxNode := m.AllocRawAligned(3)
			m.Poke(idxNode+0, id)
			m.Poke(idxNode+1, uint64(p))
			b.indexBucketLink(idxNode, id)
		}
		// Ring + random chords connection graph: guarantees connectivity
		// from the root part, as STMBench7's builder does.
		for i, p := range parts {
			m.Poke(p+apNConn, uint64(cfg.ConnsPerPart))
			for k := 0; k < cfg.ConnsPerPart; k++ {
				var dest machine.Addr
				if k == 0 {
					dest = parts[(i+1)%len(parts)]
				} else {
					dest = parts[rng.intn(len(parts))]
				}
				base := p + apConnBase + machine.Addr(k*apConnStep)
				m.Poke(base, uint64(dest))
				m.Poke(base+1, uint64(1+rng.intn(100)))
			}
		}
		// Document.
		doc := m.AllocRawAligned(16)
		text := m.AllocRawAligned(int64(cfg.DocWords))
		for w := 0; w < cfg.DocWords; w++ {
			m.Poke(text+machine.Addr(w), rng.next()%65536)
		}
		m.Poke(doc+docID, uint64(c+1))
		m.Poke(doc+docTitle, uint64(c)*2654435761)
		m.Poke(doc+docPart, uint64(comp))
		m.Poke(doc+docTextLen, uint64(cfg.DocWords))
		m.Poke(doc+docTextArr, uint64(text))

		partsArr := m.AllocRawAligned(int64(len(parts)))
		for i, p := range parts {
			m.Poke(partsArr+machine.Addr(i), uint64(p))
		}
		m.Poke(comp+cpID, uint64(c+1))
		m.Poke(comp+cpBuildDate, uint64(1000+rng.intn(1000)))
		m.Poke(comp+cpRootPart, uint64(parts[0]))
		m.Poke(comp+cpDocument, uint64(doc))
		m.Poke(comp+cpNParts, uint64(len(parts)))
		m.Poke(comp+cpPartsArr, uint64(partsArr))
		b.CompositeParts = append(b.CompositeParts, comp)
	}

	// Assembly tree: complex assemblies down to base assemblies.
	root := b.buildAssembly(m, &rng, cfg.AssmLevels, 0)

	// Module and manual.
	manual := m.AllocRawAligned(16)
	mtext := m.AllocRawAligned(int64(cfg.ManualWords))
	for w := 0; w < cfg.ManualWords; w++ {
		m.Poke(mtext+machine.Addr(w), rng.next()%256)
	}
	m.Poke(manual+manID, 1)
	m.Poke(manual+manTextLen, uint64(cfg.ManualWords))
	m.Poke(manual+manTextArr, uint64(mtext))

	mod := m.AllocRawAligned(16)
	m.Poke(mod+modID, 1)
	m.Poke(mod+modDesignRoot, uint64(root))
	m.Poke(mod+modManual, uint64(manual))
	b.Module = mod
	return b
}

// indexBucketLink inserts a prebuilt index node at the head of its chain
// with raw stores (build-time only).
func (b *Bench) indexBucketLink(node machine.Addr, id uint64) {
	m := b.M
	bucketHead := b.Index.RawBucket(id)
	m.Poke(node+2, m.Peek(bucketHead)) // next
	m.Poke(bucketHead, uint64(node))
}

// buildAssembly recursively constructs the assembly tree. Level 1 builds a
// base assembly that references AssmFanout random composite parts
// (composites are shared between base assemblies, as in STMBench7).
func (b *Bench) buildAssembly(m *machine.Machine, rng *buildRNG, level int, super machine.Addr) machine.Addr {
	cfg := b.Cfg
	if level == 1 {
		ba := m.AllocRawAligned(16)
		m.Poke(ba+baID, uint64(len(b.BaseAssemblies)+1))
		m.Poke(ba+baBuildDate, uint64(1000+rng.intn(1000)))
		m.Poke(ba+baSuper, uint64(super))
		m.Poke(ba+baNComp, uint64(cfg.AssmFanout))
		for k := 0; k < cfg.AssmFanout; k++ {
			comp := b.CompositeParts[rng.intn(len(b.CompositeParts))]
			m.Poke(ba+baCompBase+machine.Addr(k), uint64(comp))
		}
		b.BaseAssemblies = append(b.BaseAssemblies, ba)
		return ba
	}
	ca := m.AllocRawAligned(16)
	m.Poke(ca+caID, uint64(level)<<32|rng.next()%1000000)
	m.Poke(ca+caBuildDate, uint64(1000+rng.intn(1000)))
	m.Poke(ca+caSuper, uint64(super))
	m.Poke(ca+caLevel, uint64(level))
	m.Poke(ca+caNSub, uint64(cfg.AssmFanout))
	for k := 0; k < cfg.AssmFanout; k++ {
		sub := b.buildAssembly(m, rng, level-1, ca)
		m.Poke(ca+caSubBase+machine.Addr(k), uint64(sub))
	}
	return ca
}
