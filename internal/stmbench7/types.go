// Package stmbench7 is a port of STMBench7 (Guerraoui, Kapalka, Vitek —
// EuroSys'07), the CAD-application benchmark the paper uses for Fig. 8,
// adapted exactly as the paper describes: the object graph lives behind a
// single read-write lock; read-only operations acquire it in read mode and
// update operations in write mode. Long traversals and structural
// modifications are disabled (the paper's configuration), leaving a
// 24-operation default mix over a medium-size database.
//
// The object graph follows the STMBench7 schema: a module whose design
// root is a tree of complex assemblies; the leaves are base assemblies
// referencing shared composite parts; each composite part owns a document
// and a connected graph of atomic parts; an id index (a hashmap in
// simulated memory) provides direct part access; a manual hangs off the
// module. All objects are cache-line-aligned records in simulated memory,
// so operation footprints translate directly into HTM capacity pressure —
// the paper's explanation for why HLE collapses on this benchmark.
package stmbench7

import (
	"hrwle/internal/hashmap"
	"hrwle/internal/machine"
)

// Word-offset layouts of the simulated-memory records. Each record is
// allocated line-aligned (16 words), like the C++ objects' malloc blocks.
const (
	// AtomicPart: the unit of the per-composite part graph.
	apID        = 0
	apX         = 1
	apY         = 2
	apBuildDate = 3
	apPartOf    = 4 // owning composite part
	apNConn     = 5
	apConnBase  = 6 // 3 connections: (destination, length) pairs
	apConnStep  = 2

	// CompositePart.
	cpID        = 0
	cpBuildDate = 1
	cpRootPart  = 2
	cpDocument  = 3
	cpNParts    = 4
	cpPartsArr  = 5 // address of a word array of atomic-part addresses

	// Document.
	docID      = 0
	docTitle   = 1 // interned title handle
	docPart    = 2
	docTextLen = 3
	docTextArr = 4

	// BaseAssembly.
	baID        = 0
	baBuildDate = 1
	baSuper     = 2
	baNComp     = 3
	baCompBase  = 4 // 3 composite-part addresses

	// ComplexAssembly.
	caID        = 0
	caBuildDate = 1
	caSuper     = 2
	caLevel     = 3
	caNSub      = 4
	caSubBase   = 5 // 3 sub-assembly addresses

	// Module.
	modID         = 0
	modDesignRoot = 1
	modManual     = 2

	// Manual.
	manID      = 0
	manTextLen = 1
	manTextArr = 2
)

// Config sizes the database. Defaults approximate STMBench7's "medium"
// database scaled to container memory (see DESIGN.md).
type Config struct {
	// AssmLevels is the depth of the assembly tree (root complex assembly
	// at level AssmLevels, base assemblies at level 1).
	AssmLevels int
	// AssmFanout is the number of sub-assemblies per complex assembly and
	// composites per base assembly.
	AssmFanout int
	// Composites is the size of the shared composite-part pool.
	Composites int
	// PartsPerComposite is the atomic-part graph size per composite.
	PartsPerComposite int
	// ConnsPerPart is the out-degree of each atomic part.
	ConnsPerPart int
	// DocWords is the document text length in words.
	DocWords int
	// ManualWords is the manual text length in words.
	ManualWords int
	// Seed drives the deterministic construction.
	Seed uint64
}

// DefaultConfig returns the medium-size database used by Fig. 8.
func DefaultConfig() Config {
	return Config{
		AssmLevels:        5,
		AssmFanout:        3,
		Composites:        500,
		PartsPerComposite: 20,
		ConnsPerPart:      3,
		DocWords:          100,
		ManualWords:       8192,
		Seed:              7,
	}
}

// MemWords estimates the simulated-memory footprint of a database built
// with this configuration (with headroom for lock metadata).
func (c Config) MemWords() int64 {
	bases := int64(pow(c.AssmFanout, c.AssmLevels-1))
	complexes := int64(0)
	for l := 0; l < c.AssmLevels-1; l++ {
		complexes += int64(pow(c.AssmFanout, l))
	}
	parts := int64(c.Composites) * int64(c.PartsPerComposite)
	words := parts*16 + // atomic parts
		int64(c.Composites)*(16+int64(c.PartsPerComposite)+16) + // composites + arrays
		int64(c.Composites)*(16+int64(c.DocWords)) + // documents
		bases*16 + complexes*16 +
		int64(c.ManualWords) + 16 +
		parts*16*2 + // id index (hashmap buckets + nodes)
		1<<14
	return words * 2
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// Bench is a built STMBench7 database plus the (immutable) entry-point
// tables the operations draw from.
type Bench struct {
	Cfg    Config
	M      *machine.Machine
	Module machine.Addr

	// Entry points (immutable after build; equivalent to the benchmark's
	// internal indexes of assembly/composite ids).
	BaseAssemblies []machine.Addr
	CompositeParts []machine.Addr
	AtomicParts    []machine.Addr // by id: AtomicParts[id]

	// Index maps atomic-part id → record address inside simulated memory
	// (used by the query operations, so index traversal costs are paid
	// inside critical sections as in the original benchmark). It reuses
	// the chained hashmap substrate.
	Index *hashmap.Map
}

// NumParts returns the number of atomic parts.
func (b *Bench) NumParts() int { return len(b.AtomicParts) }
