package stmbench7

import (
	"testing"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

func TestT1VisitsEveryReference(t *testing.T) {
	sys, b := buildSmall(1, 20)
	// Count composite references in the tree raw.
	wantRefs := int64(len(b.BaseAssemblies) * b.Cfg.AssmFanout)
	var got int64
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		root := machine.Addr(sys.M.Peek(b.Module + modDesignRoot))
		walkAssembly(th, root, func(comp machine.Addr) { got++ })
	})
	if got != wantRefs {
		t.Errorf("walked %d composite references, want %d", got, wantRefs)
	}
}

func TestLongTraversalsPreserveInvariants(t *testing.T) {
	sys, b := buildSmall(1, 21)
	sum := b.SumXY()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		opT1FullTraversal(b, th, c)
		opT2FullUpdate(b, th, c)
		opT2FullUpdate(b, th, c)
	})
	if b.SumXY() != sum {
		t.Error("T2 broke Σ(x+y)")
	}
	if msg := b.CheckStructure(); msg != "" {
		t.Fatal(msg)
	}
}

func TestStructuralModsKeepStructureSound(t *testing.T) {
	sys, b := buildSmall(1, 22)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < 60; i++ {
			switch i % 3 {
			case 0:
				opSMRewireAssembly(b, th, c)
			case 1:
				opSMReverseParts(b, th, c)
			default:
				opSMRerouteConnection(b, th, c)
			}
		}
	})
	if msg := b.CheckStructure(); msg != "" {
		t.Fatal(msg)
	}
}

func TestT1ExceedsHTMCapacity(t *testing.T) {
	// The reason the paper disables long traversals under lock elision:
	// T1's read set spans the whole database.
	sys, b := buildSmall(1, 23)
	var st htm.Status
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		st = th.Try(false, func() { opT1FullTraversal(b, th, c) })
	})
	if st.OK {
		t.Fatal("T1 fit in a hardware transaction; the test database is too small")
	}
	if st.Cause != stats.AbortCapacity {
		t.Errorf("cause = %v, want capacity", st.Cause)
	}
}

func TestFullMixConcurrent(t *testing.T) {
	// The beyond-the-paper configuration: everything enabled, under RW-LE.
	// Long updates exceed ROT write capacity and must land on the
	// non-speculative path without breaking any invariant.
	const threads = 6
	cfg := smallConfig()
	m := machine.New(machine.Config{CPUs: threads, MemWords: cfg.MemWords(), Seed: 24})
	sys := htm.NewSystem(m, htm.Config{})
	b := Build(m, cfg)
	lock := core.New(sys, core.Opt())
	mix := NewFullMix(30)
	sum := b.SumXY()
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 25; i++ {
			mix.Step(b, lock, th, c)
		}
	})
	if b.SumXY() != sum {
		t.Error("Σ(x+y) drifted under the full mix")
	}
	if msg := b.CheckStructure(); msg != "" {
		t.Fatal(msg)
	}
}

func TestFullOpsCount(t *testing.T) {
	if got := len(FullOps()); got != 24+2+3 {
		t.Errorf("FullOps has %d operations, want 29", got)
	}
}
