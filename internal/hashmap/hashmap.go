// Package hashmap implements the synthetic benchmark of the paper's
// sensitivity study (§4.1): a hashmap of l buckets, each a linked list,
// protected by a single read-write lock. Varying l and the initial items
// per bucket controls the probability of HTM capacity exceptions and the
// likelihood of conflicts:
//
//	l=1,     200 items  → high capacity, high contention  (Fig. 3)
//	l=many,  200 items  → high capacity, low contention   (Fig. 4)
//	l=1,      50 items  → low capacity,  high contention  (Fig. 5)
//	l=many,   50 items  → low capacity,  low contention   (Fig. 6)
//
// Nodes are cache-line-aligned (as malloc'd nodes effectively are), so a
// traversal of n nodes occupies n lines of HTM read capacity.
//
// Memory management is abort-safe: critical-section bodies may be executed
// speculatively and re-run, so they must not mutate host-side allocator
// state. Inserts consume a node prepared by the caller outside the
// critical section; removes unlink the node inside the section and report
// it for the caller to free after commit.
package hashmap

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// Node field offsets within a line-aligned node.
const (
	offKey   = 0
	offValue = 1
	offNext  = 2
	// nodeWords is the allocation size; line alignment pads it to a line.
	nodeWords = 3
)

// Map is a fixed-bucket-count chained hashmap in simulated memory.
type Map struct {
	m        *machine.Machine
	buckets  machine.Addr
	nbuckets uint64
}

// New allocates a hashmap with nbuckets chains. The bucket head array is
// allocated raw (setup time).
func New(m *machine.Machine, nbuckets int64) *Map {
	if nbuckets <= 0 {
		panic("hashmap: nbuckets must be positive")
	}
	return &Map{m: m, buckets: m.AllocRawAligned(nbuckets), nbuckets: uint64(nbuckets)}
}

// Buckets returns the number of buckets.
func (h *Map) Buckets() int64 { return int64(h.nbuckets) }

func (h *Map) bucketAddr(key uint64) machine.Addr {
	return h.buckets + machine.Addr(key%h.nbuckets)
}

// Populate fills the map so bucket b contains keys b, b+l, ..., b+(items-1)*l
// (i.e. key k chains in bucket k mod l), linking nodes directly with raw
// stores — O(total items), no traversals, no virtual time. Keys are
// inserted in decreasing i order so that key b+i*l sits at depth items-1-i.
func (h *Map) Populate(items int64) {
	l := int64(h.nbuckets)
	for b := int64(0); b < l; b++ {
		head := uint64(0)
		for i := int64(0); i < items; i++ {
			n := h.m.AllocRawAligned(nodeWords)
			h.m.Poke(n+offKey, uint64(b+i*l))
			h.m.Poke(n+offValue, uint64(i))
			h.m.Poke(n+offNext, head)
			head = uint64(n)
		}
		h.m.Poke(h.buckets+machine.Addr(b), head)
	}
}

// RawBucket returns the address of the bucket-head word for key. It lets
// other packages construct chains directly at build time (raw stores, no
// virtual cycles), the way Populate does internally.
func (h *Map) RawBucket(key uint64) machine.Addr { return h.bucketAddr(key) }

// Lookup searches for key and returns its value. Call inside a read (or
// write) critical section.
func (h *Map) Lookup(t *htm.Thread, key uint64) (uint64, bool) {
	n := t.Load(h.bucketAddr(key))
	for n != 0 {
		a := machine.Addr(n)
		if t.Load(a+offKey) == key {
			return t.Load(a + offValue), true
		}
		n = t.Load(a + offNext)
	}
	return 0, false
}

// PrepareNode allocates (outside any critical section) a node for a
// subsequent Insert. If the insert does not consume it, pass it back via
// Recycle or to another Insert.
func (h *Map) PrepareNode(t *htm.Thread) machine.Addr {
	return t.AllocAligned(nodeWords)
}

// Recycle returns an unused or unlinked node to the allocator. Call only
// outside critical sections (allocator state is not speculative).
func (h *Map) Recycle(t *htm.Thread, node machine.Addr) {
	if node != 0 {
		t.FreeAligned(node, nodeWords)
	}
}

// Insert adds key→value using the caller-provided node, or updates the
// value in place if key is already present. It returns true when node was
// linked into the map (consumed). Call inside a write critical section;
// the traversal reads the whole chain (duplicate check), which is what
// makes write sections capacity-hungry for plain HTM.
func (h *Map) Insert(t *htm.Thread, key, value uint64, node machine.Addr) bool {
	ba := h.bucketAddr(key)
	n := t.Load(ba)
	for n != 0 {
		a := machine.Addr(n)
		if t.Load(a+offKey) == key {
			t.Store(a+offValue, value)
			return false
		}
		n = t.Load(a + offNext)
	}
	t.Store(node+offKey, key)
	t.Store(node+offValue, value)
	t.Store(node+offNext, t.Load(ba))
	t.Store(ba, uint64(node))
	return true
}

// Remove unlinks key and returns the removed node (0 if absent). The
// caller must Recycle the node after the critical section commits — never
// inside it, since a speculative abort would re-run the body.
func (h *Map) Remove(t *htm.Thread, key uint64) machine.Addr {
	ba := h.bucketAddr(key)
	prev := machine.Addr(0) // 0 = head pointer itself
	n := t.Load(ba)
	for n != 0 {
		a := machine.Addr(n)
		if t.Load(a+offKey) == key {
			next := t.Load(a + offNext)
			if prev == 0 {
				t.Store(ba, next)
			} else {
				t.Store(prev+offNext, next)
			}
			return a
		}
		prev = a
		n = t.Load(a + offNext)
	}
	return 0
}

// Size walks the whole map raw (no virtual time) and returns the number of
// nodes. For tests and validation only.
func (h *Map) Size() int64 {
	var total int64
	for b := uint64(0); b < h.nbuckets; b++ {
		n := h.m.Peek(h.buckets + machine.Addr(b))
		for n != 0 {
			total++
			n = h.m.Peek(machine.Addr(n) + offNext)
		}
	}
	return total
}

// Snapshot walks the whole map raw and returns its contents. For tests.
func (h *Map) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for b := uint64(0); b < h.nbuckets; b++ {
		n := h.m.Peek(h.buckets + machine.Addr(b))
		for n != 0 {
			a := machine.Addr(n)
			out[h.m.Peek(a+offKey)] = h.m.Peek(a + offValue)
			n = h.m.Peek(a + offNext)
		}
	}
	return out
}

// CheckChains verifies that every key chains in its home bucket and that
// no chain contains duplicates. It returns a descriptive string on the
// first violation, or "".
func (h *Map) CheckChains() string {
	for b := uint64(0); b < h.nbuckets; b++ {
		seen := map[uint64]bool{}
		n := h.m.Peek(h.buckets + machine.Addr(b))
		steps := int64(0)
		for n != 0 {
			a := machine.Addr(n)
			k := h.m.Peek(a + offKey)
			if k%h.nbuckets != b {
				return "key in wrong bucket"
			}
			if seen[k] {
				return "duplicate key in chain"
			}
			seen[k] = true
			if steps++; steps > 1<<24 {
				return "cycle in chain"
			}
			n = h.m.Peek(a + offNext)
		}
	}
	return ""
}
