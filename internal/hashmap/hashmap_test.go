package hashmap

import (
	"testing"
	"testing/quick"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

func newSys(cpus int, memWords int64, seed uint64) *htm.System {
	m := machine.New(machine.Config{CPUs: cpus, MemWords: memWords, Seed: seed})
	return htm.NewSystem(m, htm.Config{})
}

func TestPopulate(t *testing.T) {
	sys := newSys(1, 1<<20, 1)
	h := New(sys.M, 8)
	h.Populate(25)
	if got := h.Size(); got != 200 {
		t.Errorf("Size = %d, want 200", got)
	}
	if msg := h.CheckChains(); msg != "" {
		t.Error(msg)
	}
	snap := h.Snapshot()
	for k := uint64(0); k < 200; k++ {
		if _, ok := snap[k]; !ok {
			t.Fatalf("key %d missing after populate", k)
		}
	}
}

func TestSequentialOpsMatchModel(t *testing.T) {
	sys := newSys(1, 1<<20, 2)
	h := New(sys.M, 4)
	model := map[uint64]uint64{}
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < 500; i++ {
			key := uint64(c.Intn(40))
			switch c.Intn(3) {
			case 0: // insert/update
				val := c.Rand64()
				node := h.PrepareNode(th)
				if !h.Insert(th, key, val, node) {
					h.Recycle(th, node)
				}
				model[key] = val
			case 1: // remove
				if n := h.Remove(th, key); n != 0 {
					h.Recycle(th, n)
					if _, ok := model[key]; !ok {
						t.Fatalf("removed key %d not in model", key)
					}
				} else if _, ok := model[key]; ok {
					t.Fatalf("failed to remove present key %d", key)
				}
				delete(model, key)
			default: // lookup
				v, ok := h.Lookup(th, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("lookup(%d) = (%d,%v), model (%d,%v)", key, v, ok, mv, mok)
				}
			}
		}
	})
	if msg := h.CheckChains(); msg != "" {
		t.Error(msg)
	}
	snap := h.Snapshot()
	if len(snap) != len(model) {
		t.Errorf("size %d, model %d", len(snap), len(model))
	}
	for k, v := range model {
		if snap[k] != v {
			t.Errorf("key %d = %d, model %d", k, snap[k], v)
		}
	}
}

func TestOpSequenceProperty(t *testing.T) {
	// Property: any op sequence leaves the map equal to a Go map model.
	type op struct {
		Kind byte
		Key  uint8
		Val  uint8
	}
	check := func(ops []op) bool {
		sys := newSys(1, 1<<20, 3)
		h := New(sys.M, 3)
		model := map[uint64]uint64{}
		good := true
		sys.M.Run(1, func(c *machine.CPU) {
			th := sys.Thread(0)
			for _, o := range ops {
				key, val := uint64(o.Key%16), uint64(o.Val)
				switch o.Kind % 3 {
				case 0:
					node := h.PrepareNode(th)
					if !h.Insert(th, key, val, node) {
						h.Recycle(th, node)
					}
					model[key] = val
				case 1:
					if n := h.Remove(th, key); n != 0 {
						h.Recycle(th, n)
					}
					delete(model, key)
				default:
					v, ok := h.Lookup(th, key)
					mv, mok := model[key]
					if ok != mok || (ok && v != mv) {
						good = false
					}
				}
			}
		})
		if h.CheckChains() != "" {
			return false
		}
		snap := h.Snapshot()
		if len(snap) != len(model) {
			return false
		}
		for k, v := range model {
			if snap[k] != v {
				return false
			}
		}
		return good
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// concurrentStress runs the benchmark op mix under a lock scheme and
// verifies structural invariants and the key-population balance afterwards.
func concurrentStress(t *testing.T, mk rwlock.Factory, seed uint64) {
	t.Helper()
	const threads, buckets, items, iters = 8, 4, 12, 120
	sys := newSys(threads, 1<<21, seed)
	lock := mk(sys)
	h := New(sys.M, buckets)
	h.Populate(items)
	universe := uint64(buckets * items)
	inserted := make([]int64, threads)
	removed := make([]int64, threads)
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		var spare machine.Addr
		for i := 0; i < iters; i++ {
			key := uint64(c.Intn(int(universe)))
			if c.Intn(100) < 30 { // write CS
				if c.Intn(2) == 0 {
					if spare == 0 {
						spare = h.PrepareNode(th)
					}
					used := false
					lock.Write(th, func() { used = h.Insert(th, key, key*7, spare) })
					if used {
						inserted[c.ID]++
						spare = 0
					}
				} else {
					var gone machine.Addr
					lock.Write(th, func() { gone = h.Remove(th, key) })
					if gone != 0 {
						removed[c.ID]++
						h.Recycle(th, gone)
					}
				}
			} else {
				lock.Read(th, func() { h.Lookup(th, key) })
			}
		}
	})
	if msg := h.CheckChains(); msg != "" {
		t.Fatalf("%s: %s", lock.Name(), msg)
	}
	var ins, rem int64
	for i := 0; i < threads; i++ {
		ins += inserted[i]
		rem += removed[i]
	}
	want := int64(buckets*items) + ins - rem
	if got := h.Size(); got != want {
		t.Errorf("%s: size %d, want %d (+%d inserted, -%d removed)", lock.Name(), got, want, ins, rem)
	}
}

func TestConcurrentStressRWLE(t *testing.T) {
	concurrentStress(t, func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }, 10)
	concurrentStress(t, func(s *htm.System) rwlock.Lock { return core.New(s, core.Pes()) }, 11)
}

func TestConcurrentStressBaselines(t *testing.T) {
	concurrentStress(t, func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }, 12)
	concurrentStress(t, func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }, 13)
	concurrentStress(t, func(s *htm.System) rwlock.Lock { return locks.NewRWL(s) }, 14)
	concurrentStress(t, func(s *htm.System) rwlock.Lock { return locks.NewBRLock(s) }, 15)
}

func TestSingleBucketHighContention(t *testing.T) {
	// The Fig. 3/5 configuration: one bucket, every op collides.
	concurrentStressSingle := func(mk rwlock.Factory, seed uint64) {
		sys := newSys(4, 1<<21, seed)
		lock := mk(sys)
		h := New(sys.M, 1)
		h.Populate(30)
		sys.M.Run(4, func(c *machine.CPU) {
			th := sys.Thread(c.ID)
			var spare machine.Addr
			for i := 0; i < 40; i++ {
				key := uint64(c.Intn(30))
				if c.Intn(2) == 0 {
					if spare == 0 {
						spare = h.PrepareNode(th)
					}
					used := false
					lock.Write(th, func() { used = h.Insert(th, key, 1, spare) })
					if used {
						spare = 0
					}
				} else {
					lock.Read(th, func() { h.Lookup(th, key) })
				}
			}
		})
		if msg := h.CheckChains(); msg != "" {
			t.Fatalf("%s single-bucket: %s", lock.Name(), msg)
		}
	}
	concurrentStressSingle(func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }, 20)
	concurrentStressSingle(func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }, 21)
}
