package hashmap_test

import (
	"testing"

	"hrwle/internal/core"
	"hrwle/internal/hashmap"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// FuzzHashmap replays an arbitrary byte string as an operation sequence —
// through the simulated hashmap under an RW-LE_OPT elided lock on one
// simulated CPU — and differentially checks every return value and the
// final contents against a plain Go map.
//
// Each input byte encodes one operation: the low two bits select
// lookup/insert/remove, the rest select the key (small key space so
// operations collide often).
func FuzzHashmap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x05, 0x02, 0x01})
	f.Add([]byte{0x11, 0x11, 0x12, 0x10, 0x19, 0x1a})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		m := machine.New(machine.Config{CPUs: 1, MemWords: 1 << 14, Seed: 11})
		sys := htm.NewSystem(m, htm.Config{})
		hm := hashmap.New(m, 2)
		lk := core.New(sys, core.Opt())
		model := map[uint64]uint64{}

		m.Run(1, func(c *machine.CPU) {
			th := sys.Thread(0)
			for i, b := range data {
				key := uint64(b >> 2 & 0x7)
				val := uint64(i)<<8 | uint64(b)
				switch b & 3 {
				case 1: // insert / update
					node := hm.PrepareNode(th)
					var consumed bool
					lk.Write(th, func() { consumed = hm.Insert(th, key, val, node) })
					if !consumed {
						hm.Recycle(th, node)
					}
					_, present := model[key]
					if consumed == present {
						t.Errorf("op %d: insert(%d) consumed=%v but model present=%v", i, key, consumed, present)
					}
					model[key] = val
				case 2: // remove
					var gone machine.Addr
					lk.Write(th, func() { gone = hm.Remove(th, key) })
					hm.Recycle(th, gone)
					if _, present := model[key]; present != (gone != 0) {
						t.Errorf("op %d: remove(%d) found=%v but model present=%v", i, key, gone != 0, present)
					}
					delete(model, key)
				default: // lookup
					var v uint64
					var ok bool
					lk.Read(th, func() { v, ok = hm.Lookup(th, key) })
					mv, mok := model[key]
					if ok != mok || (ok && v != mv) {
						t.Errorf("op %d: lookup(%d) = (%d,%v), model (%d,%v)", i, key, v, ok, mv, mok)
					}
				}
			}
		})

		if msg := hm.CheckChains(); msg != "" {
			t.Fatalf("structural check: %s", msg)
		}
		snap := hm.Snapshot()
		if len(snap) != len(model) {
			t.Fatalf("final size %d, model %d", len(snap), len(model))
		}
		for k, v := range model {
			if sv, ok := snap[k]; !ok || sv != v {
				t.Errorf("final: key %d = (%d,%v), model %d", k, sv, ok, v)
			}
		}
	})
}
