package machine

import "fmt"

// arena is a simple dynamic allocator over simulated memory: a bump pointer
// plus exact-size free lists. It lives outside simulated memory (its own
// bookkeeping costs are charged as a flat Alloc cost), which keeps it out
// of the coherence and conflict-detection picture — the experiments are
// about the applications' accesses, not the allocator's.
type arena struct {
	next      Addr
	limit     Addr
	lineWords int64
	free      map[int64][]Addr
}

func (a *arena) init(memWords, lineWords int64) {
	// Reserve line 0 so that Addr 0 can serve as nil and so the first
	// allocation never shares a line with the nil address.
	a.next = Addr(lineWords)
	a.limit = Addr(memWords)
	a.lineWords = lineWords
	a.free = make(map[int64][]Addr)
}

func (a *arena) alloc(n int64, lineAligned bool) Addr {
	if n <= 0 {
		panic("machine: Alloc with non-positive size")
	}
	if lineAligned {
		// Round the size up to whole lines so line-aligned blocks never
		// share a cache line and can be recycled by size class.
		n = (n + a.lineWords - 1) &^ (a.lineWords - 1)
	}
	key := n
	if lineAligned {
		key = -n // aligned blocks use a separate size-class namespace
	}
	if lst := a.free[key]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[key] = lst[:len(lst)-1]
		return addr
	}
	p := a.next
	if lineAligned {
		p = Addr((int64(p) + a.lineWords - 1) &^ (a.lineWords - 1))
	}
	if p+Addr(n) > a.limit {
		panic(fmt.Sprintf("machine: simulated memory exhausted (%d words requested, %d free)", n, a.limit-a.next))
	}
	a.next = p + Addr(n)
	return p
}

func (a *arena) release(addr Addr, n int64, lineAligned bool) {
	key := n
	if lineAligned {
		n = (n + a.lineWords - 1) &^ (a.lineWords - 1)
		key = -n
	}
	a.free[key] = append(a.free[key], addr)
}

// allocWords allocates and zeroes n words of simulated memory.
func (m *Machine) allocWords(n int64, aligned bool) Addr {
	addr := m.alloc.alloc(n, aligned)
	size := n
	if aligned {
		size = (n + m.Cfg.LineWords - 1) &^ (m.Cfg.LineWords - 1)
	}
	for i := Addr(0); i < Addr(size); i++ {
		m.words[addr+i] = 0
	}
	return addr
}

func (m *Machine) freeWords(addr Addr, n int64, aligned bool) {
	// Blocks are recycled within the namespace they were allocated from,
	// so callers must pass the original size AND whether the block came
	// from the aligned allocator — the size classes differ (aligned
	// blocks are rounded up to whole lines).
	m.alloc.release(addr, n, aligned)
}

// AllocRaw allocates n words without charging any CPU time. Intended for
// Setup-phase population.
func (m *Machine) AllocRaw(n int64) Addr { return m.allocWords(n, false) }

// AllocRawAligned allocates n line-aligned words without charging CPU time.
func (m *Machine) AllocRawAligned(n int64) Addr { return m.allocWords(n, true) }

// HeapUsed reports how many words have been claimed from the bump pointer.
func (m *Machine) HeapUsed() int64 { return int64(m.alloc.next) }
