package machine

// cpuHeap is a binary min-heap of runnable CPUs ordered by virtual time,
// with CPU ID as the tie-breaker so scheduling is deterministic. Each CPU
// caches its heap index for O(log n) key updates.
type cpuHeap struct{ cpus []*CPU }

func (h *cpuHeap) len() int { return len(h.cpus) }

func (h *cpuHeap) less(i, j int) bool {
	a, b := h.cpus[i], h.cpus[j]
	if a.now != b.now {
		return a.now < b.now
	}
	return a.ID < b.ID
}

func (h *cpuHeap) swap(i, j int) {
	h.cpus[i], h.cpus[j] = h.cpus[j], h.cpus[i]
	h.cpus[i].heapIdx = i
	h.cpus[j].heapIdx = j
}

func (h *cpuHeap) push(c *CPU) {
	c.heapIdx = len(h.cpus)
	h.cpus = append(h.cpus, c)
	h.up(c.heapIdx)
}

// min returns the CPU with the smallest virtual time without removing it.
func (h *cpuHeap) min() *CPU {
	if len(h.cpus) == 0 {
		return nil
	}
	return h.cpus[0]
}

// remove deletes CPU c from the heap.
func (h *cpuHeap) remove(c *CPU) {
	i := c.heapIdx
	last := len(h.cpus) - 1
	if i != last {
		h.swap(i, last)
	}
	h.cpus = h.cpus[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	c.heapIdx = -1
}

// fix restores heap order after c's virtual time changed. Virtual clocks
// are monotonic within a Run, so c's key can only have grown since its
// last placement and sifting down suffices.
func (h *cpuHeap) fix(c *CPU) {
	h.down(c.heapIdx)
}

func (h *cpuHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *cpuHeap) down(i int) {
	n := len(h.cpus)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
}
