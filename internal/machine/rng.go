// This file is the canonical randomness source of the whole simulator.
// Each CPU owns a SplitMix64 stream seeded deterministically from the
// machine seed and the CPU ID, exposed as machine.CPU.Intn, CPU.Float64
// and CPU.Rand64; every simulated run is a pure function of the machine
// seed. Simulator packages must draw randomness only from here — the
// simlint determinism analyzer rejects math/rand and points violators at
// this file.

package machine

// rng is a SplitMix64 pseudo-random generator. Each CPU owns one stream,
// seeded deterministically from the machine seed and the CPU ID, so every
// simulation is bit-for-bit reproducible.
type rng struct{ state uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{state: seed}
}

// Next returns the next 64 pseudo-random bits.
func (r *rng) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("machine: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Stream is a standalone, CPU-independent SplitMix64 stream for
// deterministic pre-run generation: arrival schedules, workload traces, or
// any randomness that must be fixed before machine.Run starts and must not
// consume (or depend on) any CPU's per-run stream. Like the per-CPU
// streams, a Stream is a pure function of its seed, so everything derived
// from it is bit-for-bit reproducible.
type Stream struct{ rng }

// NewStream returns a stream seeded with seed (0 is remapped like the
// per-CPU streams).
func NewStream(seed uint64) *Stream { return &Stream{newRNG(seed)} }
