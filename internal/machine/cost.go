package machine

// CostModel holds the virtual-cycle costs charged by the simulator for the
// micro-operations that dominate synchronization performance. The defaults
// are order-of-magnitude figures for a POWER8-class SMT8 machine clocked at
// 3.5 GHz; they are deliberately coarse — the experiments in this repository
// depend on the *ratios* (hit vs. miss vs. line transfer vs. tx overhead),
// not on absolute latencies.
type CostModel struct {
	// L1Hit is the cost of a load that hits a line this CPU already owns
	// or shares.
	L1Hit int64
	// ReadMiss is the cost of a load whose line was last written by
	// another CPU (coherence read miss).
	ReadMiss int64
	// WriteHit is the cost of a store to a line this CPU owns exclusively.
	WriteHit int64
	// WriteMiss is the cost of a store that must obtain the line in
	// exclusive state (upgrade or remote fetch).
	WriteMiss int64
	// LineTransfer is the duration for which a store reserves the cache
	// line; it is what serializes hot-line ping-pong between CPUs.
	LineTransfer int64
	// CAS is the extra cost of a compare-and-swap beyond the store path.
	CAS int64
	// Fence is the cost of a memory barrier.
	Fence int64
	// TxBegin / TxCommit are the costs of starting and committing a
	// regular hardware transaction.
	TxBegin  int64
	TxCommit int64
	// ROTBegin / ROTCommit are the (cheaper) costs for rollback-only
	// transactions, which elide the begin/commit barriers.
	ROTBegin  int64
	ROTCommit int64
	// Suspend / Resume are the costs of tsuspend/tresume.
	Suspend int64
	Resume  int64
	// AbortPenalty is the fixed cost of taking an abort (discarding the
	// speculative state and transferring control to the failure handler).
	AbortPenalty int64
	// TLBWalk is the cost of a TLB miss serviced by a page-table walk.
	TLBWalk int64
	// PageFault is the cost of a page fault serviced by the (simulated)
	// operating system.
	PageFault int64
	// Interrupt is the cost of fielding a timer interrupt.
	Interrupt int64
	// SpinIter is the cost of one iteration of a spin-wait loop beyond
	// the loads it performs (pipeline + branch overhead).
	SpinIter int64
	// SpinJitter is the maximum extra random delay added to each spin
	// iteration. Real machines have timing noise; a perfectly
	// deterministic simulator without it can phase-lock two spin loops so
	// that a lock releaser and a waiter sample each other in resonance
	// forever.
	SpinJitter int64
	// Alloc is the cost of one dynamic allocation from the simulated heap.
	Alloc int64
	// Work is the cost of one unit of non-memory computation (ALU work
	// between memory accesses of a critical section body).
	Work int64
}

// DefaultCosts returns the calibrated default cost model. See DESIGN.md §5.
func DefaultCosts() CostModel {
	return CostModel{
		L1Hit:        3,
		ReadMiss:     90,
		WriteHit:     4,
		WriteMiss:    120,
		LineTransfer: 60,
		CAS:          30,
		Fence:        12,
		TxBegin:      60,
		TxCommit:     60,
		ROTBegin:     30,
		ROTCommit:    30,
		Suspend:      60,
		Resume:       60,
		AbortPenalty: 150,
		TLBWalk:      80,
		PageFault:    2500,
		Interrupt:    1200,
		SpinIter:     10,
		SpinJitter:   15,
		Alloc:        40,
		Work:         2,
	}
}

// CyclesPerSecond is the implied clock rate used to convert virtual cycles
// to seconds when printing results (3.5 GHz, as on the paper's POWER8).
const CyclesPerSecond = 3.5e9

// Seconds converts a virtual-cycle count to seconds at CyclesPerSecond.
func Seconds(cycles int64) float64 { return float64(cycles) / CyclesPerSecond }
