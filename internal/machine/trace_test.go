package machine

import "testing"

func TestRingTracerWraps(t *testing.T) {
	r := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		r.Event(Event{Time: int64(i)})
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, e := range evs {
		if e.Time != int64(6+i) {
			t.Errorf("event %d time %d, want %d (oldest-first order)", i, e.Time, 6+i)
		}
	}
}

func TestTracerReceivesMachineEvents(t *testing.T) {
	m := New(testConfig(2))
	var ct CountTracer
	m.SetTracer(&ct)
	m.Run(2, func(c *CPU) {
		c.Write(Addr(64+c.ID*16), 1)
		c.Read(Addr(64 + c.ID*16))
		c.CAS(256, 0, uint64(c.ID))
	})
	if ct.Counts[EvWrite] != 2 || ct.Counts[EvRead] != 2 || ct.Counts[EvCAS] != 2 {
		t.Errorf("counts = w:%d r:%d cas:%d", ct.Counts[EvWrite], ct.Counts[EvRead], ct.Counts[EvCAS])
	}
}

func TestTracerPageFaults(t *testing.T) {
	cfg := testConfig(1)
	cfg.Paging = PagingConfig{Enabled: true, PageWords: 64, ResidentLimit: 2, TLBEntries: 2}
	m := New(cfg)
	var ct CountTracer
	m.SetTracer(&ct)
	m.Run(1, func(c *CPU) {
		for p := int64(0); p < 8; p++ {
			c.Read(Addr(p * 64))
		}
	})
	if ct.Counts[EvPageFault] < 8 {
		t.Errorf("page-fault events = %d, want >= 8", ct.Counts[EvPageFault])
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	// Emit with no tracer installed must be a no-op (and not panic).
	m := New(testConfig(1))
	m.Run(1, func(c *CPU) {
		c.Emit(EvRead, 0, 0)
		c.Write(64, 1)
	})
}

func TestEventKindNames(t *testing.T) {
	for k := 0; k < NumEventKinds; k++ {
		if EventKind(k).String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if len(eventNames) != NumEventKinds {
		t.Errorf("eventNames has %d entries, want %d", len(eventNames), NumEventKinds)
	}
}

// TestRingTracerWraparoundOrdering drives the ring through several
// eviction cycles and checks Events() keeps strict arrival order with the
// oldest retained event first, at every fill level.
func TestRingTracerWraparoundOrdering(t *testing.T) {
	for _, cap := range []int{1, 3, 4} {
		for n := 0; n <= 3*cap; n++ {
			r := NewRingTracer(cap)
			for i := 0; i < n; i++ {
				r.Event(Event{Time: int64(i)})
			}
			evs := r.Events()
			want := n
			if want > cap {
				want = cap
			}
			if len(evs) != want {
				t.Fatalf("cap=%d n=%d: retained %d events, want %d", cap, n, len(evs), want)
			}
			for i, e := range evs {
				if wantT := int64(n - want + i); e.Time != wantT {
					t.Fatalf("cap=%d n=%d: event %d has time %d, want %d", cap, n, i, e.Time, wantT)
				}
			}
		}
	}
}

// TestCountTracerMatchesRingTotal fans one event stream into a CountTracer
// and a (smaller) RingTracer via MultiTracer: the per-kind tallies must sum
// to exactly the ring's eviction-inclusive total.
func TestCountTracerMatchesRingTotal(t *testing.T) {
	ring := NewRingTracer(8)
	counts := &CountTracer{}
	mt := MultiTracer{counts, nil, ring} // nil entries must be skipped
	for i := 0; i < 100; i++ {
		mt.Event(Event{Kind: EventKind(i % NumEventKinds), Time: int64(i)})
	}
	if counts.Total() != ring.Total() {
		t.Errorf("CountTracer.Total = %d, RingTracer.Total = %d", counts.Total(), ring.Total())
	}
	if ring.Total() != 100 {
		t.Errorf("ring total = %d, want 100", ring.Total())
	}
	if len(ring.Events()) != 8 {
		t.Errorf("ring retained %d, want 8", len(ring.Events()))
	}
}

func TestLogTracerKeepsEverything(t *testing.T) {
	log := &LogTracer{}
	for i := 0; i < 1000; i++ {
		log.Event(Event{Time: int64(i)})
	}
	if len(log.Events) != 1000 {
		t.Fatalf("retained %d events", len(log.Events))
	}
	if log.Events[999].Time != 999 {
		t.Error("arrival order lost")
	}
}

func TestPackCSRoundTrip(t *testing.T) {
	for _, write := range []bool{false, true} {
		for path := uint64(0); path < 4; path++ {
			for _, retries := range []uint64{0, 1, 7, 1000} {
				w, p, r := UnpackCS(PackCS(write, path, retries))
				if w != write || p != path || r != retries {
					t.Errorf("roundtrip(%v,%d,%d) = (%v,%d,%d)", write, path, retries, w, p, r)
				}
			}
		}
	}
}
