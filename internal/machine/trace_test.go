package machine

import "testing"

func TestRingTracerWraps(t *testing.T) {
	r := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		r.Event(Event{Time: int64(i)})
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, e := range evs {
		if e.Time != int64(6+i) {
			t.Errorf("event %d time %d, want %d (oldest-first order)", i, e.Time, 6+i)
		}
	}
}

func TestTracerReceivesMachineEvents(t *testing.T) {
	m := New(testConfig(2))
	var ct CountTracer
	m.SetTracer(&ct)
	m.Run(2, func(c *CPU) {
		c.Write(Addr(64+c.ID*16), 1)
		c.Read(Addr(64 + c.ID*16))
		c.CAS(256, 0, uint64(c.ID))
	})
	if ct.Counts[EvWrite] != 2 || ct.Counts[EvRead] != 2 || ct.Counts[EvCAS] != 2 {
		t.Errorf("counts = w:%d r:%d cas:%d", ct.Counts[EvWrite], ct.Counts[EvRead], ct.Counts[EvCAS])
	}
}

func TestTracerPageFaults(t *testing.T) {
	cfg := testConfig(1)
	cfg.Paging = PagingConfig{Enabled: true, PageWords: 64, ResidentLimit: 2, TLBEntries: 2}
	m := New(cfg)
	var ct CountTracer
	m.SetTracer(&ct)
	m.Run(1, func(c *CPU) {
		for p := int64(0); p < 8; p++ {
			c.Read(Addr(p * 64))
		}
	})
	if ct.Counts[EvPageFault] < 8 {
		t.Errorf("page-fault events = %d, want >= 8", ct.Counts[EvPageFault])
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	// Emit with no tracer installed must be a no-op (and not panic).
	m := New(testConfig(1))
	m.Run(1, func(c *CPU) {
		c.Emit(EvRead, 0, 0)
		c.Write(64, 1)
	})
}

func TestEventKindNames(t *testing.T) {
	for k := EvRead; k <= EvPathSwitch; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
