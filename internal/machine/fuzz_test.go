package machine_test

import (
	"errors"
	"testing"

	"hrwle/internal/machine"
)

// This file cross-checks the inline scheduler loop against a naive
// reference interpreter. Random small programs — private work, fences,
// loads, stores, CASes, spin-yields, engine-stepped waits (Await) and body
// panics — run on the real engine under both the default minimum-time
// policy and seeded random controlled schedulers; the reference interpreter
// replays the same programs with the cost model applied longhand, one
// visible action at a time, with none of the engine's machinery (no
// coroutines, no wake thresholds, no heap, no waiter stepping). Event
// streams, final memory, per-CPU clocks and counters, elapsed virtual time
// and — under controlled schedulers — the exact number of Pick calls must
// all agree.

// fuzzOpKind enumerates the program ops the fuzzer generates.
type fuzzOpKind uint8

const (
	opWork  fuzzOpKind = iota // private ALU work, no scheduling point
	opFence                   // private barrier cost, no scheduling point
	opSpin                    // SpinFor: clock advance + one scheduling point
	opRead
	opWrite
	opCAS
	opAwait // engine-stepped bounded wait for mem[a] != 0
	opPanic // body panic unwinding to Run
)

type fuzzOp struct {
	kind   fuzzOpKind
	a      machine.Addr
	v1, v2 uint64
	n      int
}

// fuzzAddrs is the address pool: three words on one cache line, one on a
// neighboring line, and four on widely separated lines (LineWords = 16).
var fuzzAddrs = [8]machine.Addr{64, 65, 72, 80, 256, 512, 1024, 2048}

// errInjected is the body-panic payload; Run must re-raise it verbatim
// after draining the remaining CPUs.
var errInjected = errors.New("fuzz: injected body panic")

// awaitPollCap bounds the poll escalation of the fuzz waiter.
const awaitPollCap = 8

// fuzzCosts is the default cost model with spin jitter removed: the
// reference interpreter then needs no model of the per-CPU random streams,
// and every run is a closed-form function of the programs and the schedule.
func fuzzCosts() machine.CostModel {
	c := machine.DefaultCosts()
	c.SpinJitter = 0
	return c
}

// fuzzWait waits until mem[a] != 0, giving up after max loads so that every
// program terminates under every schedule. Step performs exactly one
// visible access (the load); the poll escalation between loads is private.
type fuzzWait struct {
	a        machine.Addr
	max      int
	attempts int
	poll     int
}

func (w *fuzzWait) Step(c *machine.CPU) bool {
	v := c.Read(w.a)
	w.attempts++
	if v != 0 || w.attempts >= w.max {
		return true
	}
	c.SpinFor(w.poll)
	if w.poll < awaitPollCap {
		w.poll *= 2
	}
	return false
}

// runFuzzBody interprets one CPU's program on the real engine.
func runFuzzBody(c *machine.CPU, ops []fuzzOp) {
	for _, o := range ops {
		switch o.kind {
		case opWork:
			c.Work(int64(o.n))
		case opFence:
			c.Fence()
		case opSpin:
			c.SpinFor(o.n)
		case opRead:
			c.Read(o.a)
		case opWrite:
			c.Write(o.a, o.v1)
		case opCAS:
			c.CAS(o.a, o.v1, o.v2)
		case opAwait:
			c.Await(&fuzzWait{a: o.a, max: o.n, poll: 1})
		case opPanic:
			panic(errInjected)
		}
	}
}

// xrng is a tiny xorshift64* generator. The controlled scheduler and the
// reference interpreter each own one seeded identically; they stay in
// lockstep exactly when the engine presents the same choice points in the
// same order, which is part of what the comparison verifies.
type xrng uint64

func (r *xrng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = xrng(x)
	return x * 2685821657736338717
}

// randSched picks uniformly among the runnable CPUs at every scheduling
// point, counting its Pick calls.
type randSched struct {
	rng   xrng
	picks int
}

func (s *randSched) Pick(current *machine.CPU, runnable []*machine.CPU) *machine.CPU {
	s.picks++
	return runnable[int(s.rng.next()%uint64(len(runnable)))]
}

// --------------------------------------------------------------------------
// Reference interpreter.

type refLine struct {
	exclUntil int64
	owner     int
	sharers   uint8 // bitmask; at most 4 CPUs in fuzz programs
}

type refCPUState int

const (
	refRunning   refCPUState = iota
	refAfterSpin             // an await step just spun: one empty scheduling point is due before the next load
)

type refCPU struct {
	id    int
	clock int64
	ops   []fuzzOp
	pc    int

	state    refCPUState
	awaiting bool
	attempts int
	poll     int

	// pending is the action to perform when this CPU next gets the floor:
	// it stopped at a scheduling point with the action not yet done.
	pending    bool
	pendingOp  fuzzOp
	pendingNil bool // the scheduling point carries no action (spin/await-gap)

	done                 bool
	reads, writes, cases int64
}

type refEngine struct {
	costs  machine.CostModel
	words  map[machine.Addr]uint64
	lines  map[int64]*refLine
	cpus   []*refCPU
	events []machine.Event

	// policy selects the next CPU; nil current means run start or a CPU
	// just finished. For the default engine it is minimum packed (time, ID);
	// for controlled runs it mirrors randSched draw-for-draw.
	policy func(current *refCPU, runnable []*refCPU) *refCPU
	picks  int

	panicked bool
}

func newRefEngine(ncpu int, progs [][]fuzzOp) *refEngine {
	e := &refEngine{
		costs: fuzzCosts(),
		words: map[machine.Addr]uint64{},
		lines: map[int64]*refLine{},
	}
	for i := 0; i < ncpu; i++ {
		e.cpus = append(e.cpus, &refCPU{id: i, ops: progs[i], poll: 1})
	}
	return e
}

func (e *refEngine) line(a machine.Addr) *refLine {
	idx := int64(a) >> 4 // LineWords = 16
	l := e.lines[idx]
	if l == nil {
		l = &refLine{owner: -1}
		e.lines[idx] = l
	}
	return l
}

func (e *refEngine) emit(c *refCPU, k machine.EventKind, a machine.Addr, aux uint64) {
	e.events = append(e.events, machine.Event{Time: c.clock, CPU: c.id, Kind: k, Addr: a, Aux: aux})
}

func (e *refEngine) accessRead(c *refCPU, a machine.Addr) uint64 {
	l := e.line(a)
	t0 := c.clock
	if l.exclUntil > t0 {
		t0 = l.exclUntil
	}
	cost := e.costs.L1Hit
	if l.owner != c.id && l.sharers&(1<<uint(c.id)) == 0 {
		cost = e.costs.ReadMiss
		l.sharers |= 1 << uint(c.id)
	}
	c.clock = t0 + cost
	c.reads++
	v := e.words[a]
	e.emit(c, machine.EvRead, a, v)
	return v
}

// accessWriteTiming charges the exclusive-acquisition cost of a store or
// CAS without moving data.
func (e *refEngine) accessWriteTiming(c *refCPU, a machine.Addr) {
	c.writes++ // AccessWrite counts CASes as writes too
	l := e.line(a)
	t0 := c.clock
	if l.exclUntil > t0 {
		t0 = l.exclUntil
	}
	if l.owner == c.id && l.sharers == 1<<uint(c.id) {
		c.clock = t0 + e.costs.WriteHit
		return
	}
	l.owner = c.id
	l.sharers = 1 << uint(c.id)
	l.exclUntil = t0 + e.costs.LineTransfer
	c.clock = t0 + e.costs.WriteMiss
}

// perform executes the action pending at c's current scheduling point.
func (e *refEngine) perform(c *refCPU) {
	if c.pendingNil {
		return
	}
	o := c.pendingOp
	switch o.kind {
	case opRead:
		e.accessRead(c, o.a)
		c.pc++
	case opWrite:
		e.accessWriteTiming(c, o.a)
		e.words[o.a] = o.v1
		e.emit(c, machine.EvWrite, o.a, o.v1)
		c.pc++
	case opCAS:
		e.accessWriteTiming(c, o.a)
		c.clock += e.costs.CAS
		c.cases++
		e.emit(c, machine.EvCAS, o.a, o.v2)
		if e.words[o.a] == o.v1 {
			e.words[o.a] = o.v2
		}
		c.pc++
	case opAwait:
		v := e.accessRead(c, o.a)
		c.attempts++
		if v != 0 || c.attempts >= o.n {
			c.awaiting = false
			c.pc++
			return
		}
		// The waiter spins before its next load: the clock advance is
		// private, but the spin ends in a scheduling point of its own,
		// then the next load opens with another one.
		c.clock += int64(c.poll) * e.costs.SpinIter
		if c.poll < awaitPollCap {
			c.poll *= 2
		}
		c.state = refAfterSpin
	}
}

// advance runs c up to its next scheduling point, applying private ops to
// its clock, and stages the pending action. It returns false when the body
// finished (or panicked), with no scheduling point to offer.
func (e *refEngine) advance(c *refCPU) bool {
	if c.state == refAfterSpin {
		// The empty scheduling point at the end of the await's spin.
		c.state = refRunning
		c.pending, c.pendingNil = true, true
		return true
	}
	for c.pc < len(c.ops) {
		o := c.ops[c.pc]
		switch o.kind {
		case opWork:
			c.clock += int64(o.n) * e.costs.Work
			c.pc++
		case opFence:
			c.clock += e.costs.Fence
			c.pc++
		case opSpin:
			c.clock += int64(o.n) * e.costs.SpinIter
			c.pc++
			c.pending, c.pendingNil = true, true
			return true
		case opRead, opWrite, opCAS:
			c.pending, c.pendingNil, c.pendingOp = true, false, o
			return true
		case opAwait:
			if !c.awaiting {
				c.awaiting, c.attempts, c.poll = true, 0, 1
			}
			c.pending, c.pendingNil, c.pendingOp = true, false, o
			return true
		case opPanic:
			e.panicked = true
			return false
		}
	}
	return false
}

func (e *refEngine) runnable() []*refCPU {
	out := make([]*refCPU, 0, len(e.cpus))
	for _, c := range e.cpus {
		if !c.done {
			out = append(out, c)
		}
	}
	return out
}

func (e *refEngine) pick(current *refCPU) *refCPU {
	r := e.runnable()
	if len(r) == 0 {
		return nil
	}
	e.picks++
	return e.policy(current, r)
}

// run interprets all programs to completion under the installed policy,
// mirroring the engine's control transfers: a CPU holds the floor from one
// scheduling point to the next; the policy is consulted at every point, at
// run start, and whenever a CPU finishes.
func (e *refEngine) run() {
	cur := e.pick(nil)
	for cur != nil {
		if cur.pending {
			cur.pending = false
			e.perform(cur)
		}
		if !e.advance(cur) {
			cur.done = true
			cur = e.pick(nil)
			continue
		}
		cur = e.pick(cur)
	}
}

// minTimePolicy mirrors the default engine schedule: the runnable CPU with
// the smallest (virtual time, ID).
func minTimePolicy(_ *refCPU, runnable []*refCPU) *refCPU {
	best := runnable[0]
	for _, c := range runnable[1:] {
		if c.clock < best.clock || (c.clock == best.clock && c.id < best.id) {
			best = c
		}
	}
	return best
}

// --------------------------------------------------------------------------
// Differential check.

// checkEngineVsReference runs the programs on the real engine and the
// reference interpreter under one scheduling policy (schedSeed 0 = default
// minimum-time, otherwise a random controlled scheduler with that seed) and
// fails the test on any observable divergence.
func checkEngineVsReference(t *testing.T, ncpu int, progs [][]fuzzOp, schedSeed uint64) {
	t.Helper()

	m := machine.New(machine.Config{CPUs: ncpu, MemWords: 1 << 12, Seed: 7, Costs: fuzzCosts()})
	tr := &machine.LogTracer{}
	m.SetTracer(tr)
	var sched *randSched
	if schedSeed != 0 {
		sched = &randSched{rng: xrng(schedSeed)}
		m.SetScheduler(sched)
	}

	var elapsed int64
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		elapsed = m.Run(ncpu, func(c *machine.CPU) { runFuzzBody(c, progs[c.ID]) })
	}()

	ref := newRefEngine(ncpu, progs)
	if schedSeed == 0 {
		ref.policy = minTimePolicy
	} else {
		rng := xrng(schedSeed)
		ref.policy = func(_ *refCPU, runnable []*refCPU) *refCPU {
			return runnable[int(rng.next()%uint64(len(runnable)))]
		}
	}
	ref.run()

	if ref.panicked {
		if recovered != errInjected {
			t.Fatalf("seed %d: reference panicked, engine recovered %v", schedSeed, recovered)
		}
	} else if recovered != nil {
		t.Fatalf("seed %d: engine panicked unexpectedly: %v", schedSeed, recovered)
	}

	got, want := tr.Events, ref.events
	if len(got) != len(want) {
		t.Fatalf("seed %d: engine emitted %d events, reference %d\nengine: %v\nreference: %v",
			schedSeed, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("seed %d: event %d diverged: engine %+v, reference %+v", schedSeed, i, got[i], want[i])
		}
	}

	var maxClock int64
	for i, rc := range ref.cpus {
		c := m.CPU(i)
		if c.Now() != rc.clock {
			t.Errorf("seed %d: CPU %d final clock %d, reference %d", schedSeed, i, c.Now(), rc.clock)
		}
		if rc.clock > maxClock {
			maxClock = rc.clock
		}
		cnt := c.Counters
		if cnt.Reads != rc.reads || cnt.Writes != rc.writes || cnt.CASes != rc.cases {
			t.Errorf("seed %d: CPU %d counters (r%d w%d c%d), reference (r%d w%d c%d)",
				schedSeed, i, cnt.Reads, cnt.Writes, cnt.CASes, rc.reads, rc.writes, rc.cases)
		}
	}
	if !ref.panicked && elapsed != maxClock {
		t.Errorf("seed %d: Run returned %d elapsed cycles, reference max clock %d", schedSeed, elapsed, maxClock)
	}
	for _, a := range fuzzAddrs {
		if m.Peek(a) != ref.words[a] {
			t.Errorf("seed %d: final mem[%d] = %d, reference %d", schedSeed, a, m.Peek(a), ref.words[a])
		}
	}
	if sched != nil && sched.picks != ref.picks {
		t.Errorf("seed %d: engine made %d scheduler picks, reference %d", schedSeed, sched.picks, ref.picks)
	}
}

// checkAllPolicies exercises one program set under the default schedule and
// two seeded random schedules.
func checkAllPolicies(t *testing.T, ncpu int, progs [][]fuzzOp) {
	t.Helper()
	for _, seed := range []uint64{0, 1, 0x9e3779b97f4a7c15} {
		checkEngineVsReference(t, ncpu, progs, seed)
	}
}

// --------------------------------------------------------------------------
// Program generation from fuzz input.

type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *byteReader) more() bool { return r.pos < len(r.data) }

// parseFuzzPrograms decodes an arbitrary byte string into 2–4 small CPU
// programs; every input is valid. Ops are dealt round-robin so the threads'
// programs interleave whatever structure the fuzzer discovers. At most one
// body panic is generated per program set, keeping Run's re-raised error
// unambiguous.
func parseFuzzPrograms(data []byte) (ncpu int, progs [][]fuzzOp) {
	r := &byteReader{data: data}
	ncpu = 2 + int(r.next())%3
	progs = make([][]fuzzOp, ncpu)
	addrOf := func(b byte) machine.Addr { return fuzzAddrs[int(b)%len(fuzzAddrs)] }
	cpu, total, panicUsed := 0, 0, false
	for r.more() && total < 64 {
		sel := r.next()
		var o fuzzOp
		switch sel % 8 {
		case 0:
			o = fuzzOp{kind: opWork, n: 1 + int(sel>>4)}
		case 1:
			o = fuzzOp{kind: opFence}
		case 2:
			o = fuzzOp{kind: opRead, a: addrOf(r.next())}
		case 3:
			o = fuzzOp{kind: opWrite, a: addrOf(r.next()), v1: uint64(r.next()) % 4}
		case 4:
			o = fuzzOp{kind: opCAS, a: addrOf(r.next()), v1: uint64(r.next()) % 3, v2: 1 + uint64(r.next())%3}
		case 5:
			o = fuzzOp{kind: opAwait, a: addrOf(r.next()), n: 2 + int(sel>>4)%6}
		case 6:
			o = fuzzOp{kind: opSpin, n: 1 + int(sel>>4)}
		case 7:
			if !panicUsed && sel>>4 >= 8 {
				o = fuzzOp{kind: opPanic}
				panicUsed = true
			} else {
				o = fuzzOp{kind: opWork, n: 1 + int(sel>>4)}
			}
		}
		progs[cpu] = append(progs[cpu], o)
		cpu = (cpu + 1) % ncpu
		total++
	}
	return ncpu, progs
}

// FuzzEngine generates random small programs and cross-checks the inline
// scheduler loop against the reference interpreter under the default and
// two seeded random schedules.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x02, 0x01, 0x03, 0x02, 0x00})                         // reads and writes on shared addrs
	f.Add([]byte{0x01, 0x25, 0x04, 0x13, 0x04, 0x01, 0x0c, 0x75, 0x04})       // awaits racing writes
	f.Add([]byte{0x02, 0x04, 0x01, 0x02, 0x0c, 0x04, 0x02, 0x01, 0x03, 0x14}) // CAS contention, same line
	f.Add([]byte{0x00, 0xf7, 0x55, 0x04, 0x03, 0x04, 0x02, 0x26, 0x10})       // body panic while a peer awaits
	f.Add([]byte{0x01, 0x46, 0x16, 0x00, 0x31, 0x26, 0x36, 0x04, 0x04, 0x04}) // spin-heavy interleavings

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		ncpu, progs := parseFuzzPrograms(data)
		checkAllPolicies(t, ncpu, progs)
	})
}

// TestEngineMatchesReference pins the shapes the fuzzer must cover even if
// the corpus drifts: await/release handoff, CAS contention on one line,
// hot-line ping-pong, a body panic draining past a parked waiter, and an
// await that exhausts its attempt budget.
func TestEngineMatchesReference(t *testing.T) {
	w := func(k fuzzOpKind, a machine.Addr, v1, v2 uint64, n int) fuzzOp {
		return fuzzOp{kind: k, a: a, v1: v1, v2: v2, n: n}
	}
	cases := []struct {
		name  string
		ncpu  int
		progs [][]fuzzOp
	}{
		{"await-release", 2, [][]fuzzOp{
			{w(opWork, 0, 0, 0, 20), w(opWrite, 256, 1, 0, 0)},
			{w(opAwait, 256, 0, 0, 6), w(opRead, 64, 0, 0, 0)},
		}},
		{"await-timeout", 2, [][]fuzzOp{
			{w(opRead, 512, 0, 0, 0)},
			{w(opAwait, 1024, 0, 0, 4), w(opWrite, 512, 3, 0, 0)},
		}},
		{"cas-contention", 3, [][]fuzzOp{
			{w(opCAS, 64, 0, 1, 0), w(opCAS, 64, 1, 2, 0)},
			{w(opCAS, 64, 0, 2, 0), w(opRead, 64, 0, 0, 0)},
			{w(opCAS, 64, 0, 3, 0), w(opWrite, 65, 1, 0, 0)},
		}},
		{"same-line-pingpong", 2, [][]fuzzOp{
			{w(opWrite, 64, 1, 0, 0), w(opRead, 65, 0, 0, 0), w(opWrite, 72, 2, 0, 0)},
			{w(opWrite, 65, 2, 0, 0), w(opRead, 72, 0, 0, 0), w(opWrite, 64, 3, 0, 0)},
		}},
		{"panic-drains-waiter", 3, [][]fuzzOp{
			{w(opWork, 0, 0, 0, 8), w(opPanic, 0, 0, 0, 0)},
			{w(opAwait, 2048, 0, 0, 5), w(opWrite, 80, 1, 0, 0)},
			{w(opSpin, 0, 0, 0, 12), w(opRead, 80, 0, 0, 0)},
		}},
		{"mixed-private-work", 4, [][]fuzzOp{
			{w(opWork, 0, 0, 0, 3), w(opFence, 0, 0, 0, 0), w(opWrite, 256, 2, 0, 0)},
			{w(opSpin, 0, 0, 0, 2), w(opAwait, 256, 0, 0, 7)},
			{w(opRead, 256, 0, 0, 0), w(opWork, 0, 0, 0, 50), w(opRead, 256, 0, 0, 0)},
			{w(opFence, 0, 0, 0, 0)},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { checkAllPolicies(t, tc.ncpu, tc.progs) })
	}
}
