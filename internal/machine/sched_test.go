package machine

import "testing"

// minTimeSched reimplements the default policy (smallest virtual clock,
// CPU ID tie-break) through the Scheduler hook.
type minTimeSched struct{ picks int }

func (s *minTimeSched) Pick(current *CPU, runnable []*CPU) *CPU {
	s.picks++
	best := runnable[0]
	for _, c := range runnable[1:] {
		if c.now < best.now || (c.now == best.now && c.ID < best.ID) {
			best = c
		}
	}
	return best
}

// rrSched runs CPUs round-robin by ID regardless of virtual time — a
// deliberately unrealistic schedule that must still be a legal
// interleaving.
type rrSched struct{ last int }

func (s *rrSched) Pick(current *CPU, runnable []*CPU) *CPU {
	for _, c := range runnable {
		if c.ID > s.last {
			s.last = c.ID
			return c
		}
	}
	s.last = runnable[0].ID
	return runnable[0]
}

// contendedRun has every thread hammer a shared counter word with CAS
// loops plus some private traffic, and returns (final counter, elapsed).
func contendedRun(m *Machine, threads, opsPer int) (uint64, int64) {
	ctr := m.AllocRawAligned(1)
	priv := make([]Addr, threads)
	for i := range priv {
		priv[i] = m.AllocRawAligned(1)
	}
	elapsed := m.Run(threads, func(c *CPU) {
		for i := 0; i < opsPer; i++ {
			for {
				v := c.Read(ctr)
				if c.CAS(ctr, v, v+1) {
					break
				}
				c.Spin()
			}
			c.Write(priv[c.ID], uint64(i))
			c.Tick(int64(c.Intn(50)))
		}
	})
	return m.Peek(ctr), elapsed
}

// TestDefaultSchedulerBitForBit: an explicit Scheduler implementing the
// min-time policy must reproduce the nil-scheduler run exactly — same
// result, same virtual time. This is the guarantee that lets the check
// package hook scheduling without perturbing the paper's figures.
func TestDefaultSchedulerBitForBit(t *testing.T) {
	cfg := Config{CPUs: 6, MemWords: 1 << 14, Seed: 77}

	m1 := New(cfg)
	v1, t1 := contendedRun(m1, 6, 40)

	m2 := New(cfg)
	sched := &minTimeSched{}
	m2.SetScheduler(sched)
	v2, t2 := contendedRun(m2, 6, 40)

	if v1 != v2 || t1 != t2 {
		t.Fatalf("explicit min-time scheduler diverged from default: (%d,%d) vs (%d,%d)", v1, t1, v2, t2)
	}
	if sched.picks == 0 {
		t.Fatal("scheduler was never consulted")
	}
	if v1 != 6*40 {
		t.Fatalf("counter = %d, want %d", v1, 6*40)
	}
}

// TestControlledSchedulerIsLegalAndDeterministic: a time-ignoring
// round-robin schedule must still complete every CPU's work with correct
// shared-memory results, and identical runs must be identical.
func TestControlledSchedulerIsLegalAndDeterministic(t *testing.T) {
	run := func() (uint64, int64) {
		m := New(Config{CPUs: 4, MemWords: 1 << 14, Seed: 5})
		m.SetScheduler(&rrSched{last: -1})
		return contendedRun(m, 4, 30)
	}
	v1, t1 := run()
	v2, t2 := run()
	if v1 != 4*30 {
		t.Fatalf("counter = %d, want %d (round-robin schedule lost updates)", v1, 4*30)
	}
	if v1 != v2 || t1 != t2 {
		t.Fatalf("controlled schedule not deterministic: (%d,%d) vs (%d,%d)", v1, t1, v2, t2)
	}
}

// TestSchedulerSeesSortedRunnable: Pick's runnable slice is sorted by CPU
// ID — the canonical order controlled explorers index their choices by.
func TestSchedulerSeesSortedRunnable(t *testing.T) {
	m := New(Config{CPUs: 5, MemWords: 1 << 14, Seed: 3})
	bad := false
	m.SetScheduler(schedFunc(func(current *CPU, runnable []*CPU) *CPU {
		for i := 1; i < len(runnable); i++ {
			if runnable[i-1].ID >= runnable[i].ID {
				bad = true
			}
		}
		return runnable[0]
	}))
	contendedRun(m, 5, 10)
	if bad {
		t.Fatal("runnable slice was not sorted by CPU ID")
	}
}

type schedFunc func(*CPU, []*CPU) *CPU

func (f schedFunc) Pick(c *CPU, r []*CPU) *CPU { return f(c, r) }
