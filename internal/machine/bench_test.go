package machine

import "testing"

// BenchmarkSchedulerHandoff measures the wall cost of one virtual-time
// token handoff between two CPUs — the simulator's innermost loop.
func BenchmarkSchedulerHandoff(b *testing.B) {
	m := New(Config{CPUs: 2, MemWords: 1 << 12, Seed: 1, Deadline: 1 << 62})
	iters := b.N/2 + 1
	b.ResetTimer()
	m.Run(2, func(c *CPU) {
		for i := 0; i < iters; i++ {
			c.Tick(1)
			c.Sync()
		}
	})
}

// BenchmarkUncontendedWrite measures a private-line store (hit path).
func BenchmarkUncontendedWrite(b *testing.B) {
	m := New(Config{CPUs: 1, MemWords: 1 << 12, Seed: 1, Deadline: 1 << 62})
	b.ResetTimer()
	m.Run(1, func(c *CPU) {
		for i := 0; i < b.N; i++ {
			c.Write(64, uint64(i))
		}
	})
}

// BenchmarkContendedLine measures hot-line ping-pong between 8 CPUs.
func BenchmarkContendedLine(b *testing.B) {
	m := New(Config{CPUs: 8, MemWords: 1 << 12, Seed: 1, Deadline: 1 << 62})
	iters := b.N/8 + 1
	b.ResetTimer()
	m.Run(8, func(c *CPU) {
		for i := 0; i < iters; i++ {
			c.Write(64, uint64(i))
		}
	})
}

// BenchmarkPagedRead measures the TLB/paging path.
func BenchmarkPagedRead(b *testing.B) {
	m := New(Config{
		CPUs: 1, MemWords: 1 << 16, Seed: 1, Deadline: 1 << 62,
		Paging: PagingConfig{Enabled: true, PageWords: 512, TLBEntries: 16},
	})
	b.ResetTimer()
	m.Run(1, func(c *CPU) {
		for i := 0; i < b.N; i++ {
			c.Read(Addr((i * 512) % (1 << 15)))
		}
	})
}
