package machine

// EventKind classifies trace events emitted by the simulator and the
// layers above it (the htm and core packages emit through the same sink so
// a trace interleaves hardware and algorithm activity in virtual-time
// order).
type EventKind uint8

const (
	// Machine-level events.
	EvRead EventKind = iota
	EvWrite
	EvCAS
	EvPageFault
	EvInterrupt
	// HTM-level events (emitted by internal/htm).
	EvTxBegin
	EvTxCommit
	EvTxAbort
	EvTxSuspend
	EvTxResume
	EvTxDoom
	// Algorithm-level events (emitted by internal/core).
	EvQuiesceStart
	EvQuiesceEnd
	EvPathSwitch
	// Critical-section span events (emitted by internal/core): one
	// begin/end pair per outermost critical section, bracketing every
	// speculative attempt, retry and fallback inside it. Aux is encoded
	// with PackCS/UnpackCS.
	EvCSBegin
	EvCSEnd
	// Profiler-support events. EvLockWait is an instant event emitted
	// after a spin/backoff wait completes: Addr is the polled word and
	// Aux the virtual cycles spent waiting (the wait occupies
	// [Time-Aux, Time]). EvIdle is emitted by CPU.IdleUntil with Aux =
	// the cycles the CPU slept with no work to do.
	EvLockWait
	EvIdle
	// Allocator events (emitted by internal/htm, only while per-access
	// tracing is on — the race sanitizer models the free→alloc handoff of
	// a recycled block as a synchronization edge). Addr is the block base,
	// Aux the requested word count.
	EvAlloc
	EvFree

	NumEventKinds = int(EvFree) + 1
)

var eventNames = [...]string{
	"read", "write", "cas", "page-fault", "interrupt",
	"tx-begin", "tx-commit", "tx-abort", "tx-suspend", "tx-resume", "tx-doom",
	"quiesce-start", "quiesce-end", "path-switch",
	"cs-begin", "cs-end",
	"lock-wait", "idle",
	"alloc", "free",
}

func (k EventKind) String() string { return eventNames[k] }

// Event is one trace record. Addr and Aux are event-specific: memory
// events carry the address and value; tx-abort carries the abort cause in
// Aux; path-switch carries the new path index.
type Event struct {
	Time int64
	CPU  int
	Kind EventKind
	Addr Addr
	Aux  uint64
}

// Tracer receives every event when tracing is enabled. Implementations
// must not call back into the machine.
type Tracer interface {
	Event(e Event)
}

// SetTracer installs (or, with nil, removes) the event sink. Tracing slows
// the simulation down; it does not change virtual time.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// Tracer returns the installed event sink, or nil. Callers that want to
// add a sink without displacing an existing one wrap both in MultiTracer.
func (m *Machine) Tracer() Tracer { return m.tracer }

// Emit sends an event to the tracer, if any, stamping the CPU and time.
// Layers above the machine use it to contribute their own events.
func (c *CPU) Emit(kind EventKind, a Addr, aux uint64) {
	if t := c.m.tracer; t != nil {
		t.Event(Event{Time: c.now, CPU: c.ID, Kind: kind, Addr: a, Aux: aux})
	}
}

// RingTracer is a fixed-capacity in-memory tracer that keeps the most
// recent events.
type RingTracer struct {
	buf   []Event
	next  int
	total int64
}

// NewRingTracer creates a tracer holding up to n events.
func NewRingTracer(n int) *RingTracer { return &RingTracer{buf: make([]Event, 0, n)} }

// Event implements Tracer.
func (r *RingTracer) Event(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were observed (including evicted ones).
func (r *RingTracer) Total() int64 { return r.total }

// Events returns the retained events in arrival order.
func (r *RingTracer) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// CountTracer tallies events by kind (cheap enough to leave on).
type CountTracer struct {
	Counts [len(eventNames)]int64
}

// Event implements Tracer.
func (c *CountTracer) Event(e Event) { c.Counts[e.Kind]++ }

// Total returns the number of events observed across all kinds.
func (c *CountTracer) Total() int64 {
	var n int64
	for _, v := range c.Counts {
		n += v
	}
	return n
}

// LogTracer retains every event in arrival order, unbounded. Use it when a
// complete trace is needed (e.g. for the Chrome trace exporter); prefer
// RingTracer when only the tail matters.
type LogTracer struct {
	Events []Event
}

// Event implements Tracer.
func (l *LogTracer) Event(e Event) { l.Events = append(l.Events, e) }

// MultiTracer fans each event out to every listed tracer, in order. Nil
// entries are skipped, so optional consumers can be composed without
// branching at the installation site.
type MultiTracer []Tracer

// Event implements Tracer.
func (m MultiTracer) Event(e Event) {
	for _, t := range m {
		if t != nil {
			t.Event(e)
		}
	}
}

// PackCS encodes the Aux payload of EvCSBegin/EvCSEnd events: bit 0 is the
// side (1 = write), bits 8-15 carry the final commit path (stats.CommitPath;
// meaningful on EvCSEnd only) and bits 16+ the number of aborted speculative
// attempts inside the section.
func PackCS(write bool, path uint64, retries uint64) uint64 {
	aux := path<<8 | retries<<16
	if write {
		aux |= 1
	}
	return aux
}

// UnpackCS decodes an Aux payload produced by PackCS.
func UnpackCS(aux uint64) (write bool, path uint64, retries uint64) {
	return aux&1 != 0, aux >> 8 & 0xff, aux >> 16
}
