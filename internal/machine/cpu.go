package machine

import (
	"fmt"
	"iter"
)

// Counters aggregates per-CPU machine-level event counts for one Run.
type Counters struct {
	Reads      int64
	Writes     int64
	CASes      int64
	TLBMisses  int64
	PageFaults int64
	Interrupts int64
}

// CPU is one simulated hardware thread. All methods must be called from
// inside this CPU's body (see Machine.Run); the scheduler loop guarantees
// that only one CPU executes at a time.
type CPU struct {
	m   *Machine
	ID  int
	now int64

	// resume/stop/yield are the coroutine in which this CPU's body runs
	// for the current Run: the scheduler loop calls resume to give the CPU
	// the floor, Sync calls yield to park and hand control back, and stop
	// tears a still-parked coroutine down (abnormal exits only).
	resume  func() (struct{}, bool)
	stop    func()
	yield   func(struct{}) bool
	heapIdx int
	rng     rng
	fast    bool

	// wake is this CPU's fast-path scheduling threshold: Sync keeps the
	// floor without any heap work while the CPU's packed (time, ID) key
	// stays below it. The scheduler loop refreshes it on every resume
	// under the default scheduler (see Machine.refreshWake); it is pinned
	// to minWake — forcing every Sync through syncSlow — under controlled
	// schedulers, which must observe every scheduling point. idKey is the
	// CPU's constant contribution to the packed key.
	wake  int64
	idKey int64

	// waiter, when non-nil, is the engine-stepped wait this CPU is parked
	// in: the scheduler loop (or a running CPU's syncSlow) calls its Step
	// at each of this CPU's turns instead of resuming the coroutine. See
	// Await. stepErr carries a panic raised inside an engine-side step
	// back onto this CPU's own stack, where Await re-raises it.
	waiter  Waiter
	stepErr any

	tlb           []int64
	nextInterrupt int64
	streamRun     int64

	// OnInterrupt, if non-nil, is invoked when a timer interrupt is
	// delivered to this CPU. The HTM layer uses it to doom the in-flight
	// transaction (interrupts discard speculative state on real hardware).
	OnInterrupt func()
	// OnPageFault, if non-nil, is invoked when a memory access by this CPU
	// page-faults. The HTM layer uses it to doom the in-flight transaction.
	OnPageFault func()

	Counters Counters
}

// newCPU builds one CPU.
func newCPU(m *Machine, id int) *CPU {
	return &CPU{m: m, ID: id, heapIdx: -1, idKey: int64(id)}
}

// Scheduling keys pack a CPU's (virtual time, ID) pair into one int64 —
// now<<clockIDBits | ID — so the Sync fast path is a single comparison.
// MaxCPUs = 256 makes the ID field exactly clockIDBits wide, and virtual
// clocks stay far below 2^55 cycles (the deadline caps them at 1e14), so
// the shift cannot overflow.
const clockIDBits = 8

// minWake is a wake threshold below every valid key: it forces the next
// Sync through syncSlow.
const minWake = -1 << 62

// maxWake is a wake threshold above every valid key: it disables parking
// entirely, which is how Waiter steps run their single visible action
// without handing the floor away mid-step.
const maxWake = 1<<63 - 1

// runStopped is the panic payload Sync uses to unwind a body whose
// coroutine is being torn down (release after an abnormal Run exit). The
// seq root swallows exactly this value; everything else — including the
// HTM abort signal, which htm.Thread.Try always consumes inside the body —
// propagates to the scheduler loop unchanged.
type runStoppedSignal struct{}

var runStopped any = runStoppedSignal{}

// spawn creates the coroutine in which this CPU's body will run. The body
// does not start executing until the scheduler loop's first resume.
//
// A panic unwinding out of the body is captured here, at the coroutine's
// root, and recorded in the machine's runErr (first one wins); the
// coroutine then finishes normally so the scheduler loop can run the
// remaining CPUs to completion before Run re-raises it. Capturing at the
// root rather than around every resume keeps the per-handoff path free of
// defer/recover setup.
//
//simlint:allow abortflow the seq-root recover records CPU-body panics in runErr for Run to re-panic verbatim after the loop drains; an HTM abort signal can never reach it (htm.Thread.Try consumes it inside the body), and the engine's own teardown sentinel is deliberately swallowed
func (c *CPU) spawn(body func(*CPU)) {
	c.resume, c.stop = iter.Pull(func(yield func(struct{}) bool) {
		c.yield = yield
		defer func() {
			c.yield = nil
			if r := recover(); r != nil && r != runStopped && c.m.runErr == nil {
				c.m.runErr = r
			}
		}()
		body(c)
	})
}

// park returns control to the scheduler loop and blocks until this CPU is
// resumed. If the coroutine is being torn down instead, it unwinds the
// body with the teardown sentinel.
func (c *CPU) park() {
	if !c.yield(struct{}{}) {
		panic(runStopped)
	}
}

// release tears down this CPU's coroutine after a Run. It is a no-op for
// coroutines whose bodies already finished (the normal case).
func (c *CPU) release() {
	if c.stop != nil {
		c.stop()
		c.stop, c.resume = nil, nil
	}
}

func (c *CPU) beginRun(base int64) {
	c.now = base
	c.wake = minWake
	c.waiter = nil
	c.stepErr = nil
	c.rng = newRNG(c.m.Cfg.Seed*0x9e3779b97f4a7c15 + uint64(c.ID)*0xbf58476d1ce4e5b9 + 1)
	c.Counters = Counters{}
	if len(c.tlb) != c.m.Cfg.Paging.TLBEntries {
		c.tlb = make([]int64, c.m.Cfg.Paging.TLBEntries)
	}
	for i := range c.tlb {
		c.tlb[i] = -1
	}
	c.nextInterrupt = 0
	c.scheduleInterrupt()
}

func (c *CPU) scheduleInterrupt() {
	mean := c.m.Cfg.Paging.InterruptMean
	if mean <= 0 {
		c.nextInterrupt = 1<<63 - 1
		return
	}
	// Uniform in [0.5, 1.5) * mean: jittered periodic timer.
	c.nextInterrupt = c.now + mean/2 + int64(c.rng.Next()%uint64(mean))
}

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// Now returns this CPU's virtual clock.
func (c *CPU) Now() int64 { return c.now }

// Costs returns the machine's cost model.
func (c *CPU) Costs() *CostModel { return &c.m.Cfg.Costs }

// Intn returns a deterministic pseudo-random int in [0, n).
func (c *CPU) Intn(n int) int { return c.rng.Intn(n) }

// Float64 returns a deterministic pseudo-random float64 in [0, 1).
func (c *CPU) Float64() float64 { return c.rng.Float64() }

// Rand64 returns 64 deterministic pseudo-random bits.
func (c *CPU) Rand64() uint64 { return c.rng.Next() }

// Tick advances this CPU's virtual clock by n cycles of local computation.
func (c *CPU) Tick(n int64) { c.now += n }

// Work charges n units of ALU work (n * Costs.Work cycles).
func (c *CPU) Work(n int64) { c.now += n * c.m.Cfg.Costs.Work }

// Sync blocks until this CPU is the scheduler's minimum-time CPU. Every
// globally visible action must happen between a Sync and the next clock
// advance so that actions are linearized in virtual-time order.
//
// The fast path — all other runnable CPUs are parked with frozen clocks,
// so this CPU keeps the floor iff it is still (time, ID)-ahead of the
// cached best of them — is small enough to inline into the access
// functions; everything else lives in syncSlow. The wake threshold is
// clamped to the deadline (see refreshWake), so the livelock check also
// rides on the same comparison.
func (c *CPU) Sync() {
	if c.now<<clockIDBits|c.idKey < c.wake {
		return
	}
	c.syncSlow()
}

// syncSlow is Sync off the fast path: this CPU is no longer the minimum
// (or a controlled scheduler is installed, which must see every scheduling
// point), so repair the heap, pick a successor and park. The heap is
// repaired lazily here rather than at every clock advance; parked CPUs'
// clocks are frozen, so only this CPU's position can be stale.
func (c *CPU) syncSlow() {
	if c.fast {
		// Setup-mode accesses land here whenever the stale wake threshold
		// fails the comparison; scheduling is a no-op in fast mode.
		return
	}
	m := c.m
	if c.now > m.Cfg.Deadline {
		panic(fmt.Sprintf("machine: CPU %d exceeded virtual deadline (%d cycles): livelock?", c.ID, m.Cfg.Deadline))
	}
	if m.sched == nil {
		// The fast-path test failing means another runnable CPU is
		// strictly (time, ID)-ahead, so after the heap repair the minimum
		// cannot be this CPU. If the CPUs due before us are engine-stepped
		// waiters, run their steps right here — no coroutine switch — and
		// re-check; park only when a CPU that needs its own stack (or a
		// waiter whose wait just completed) is due.
		m.heap.fix(c)
		for {
			next := m.heap.min()
			if next == c {
				// Every CPU that was due was a waiter we stepped past
				// us: we are the minimum again and keep the floor.
				m.refreshWake(c)
				return
			}
			if next.waiter != nil && !m.stepWaiter(next) {
				m.heap.fix(next)
				continue
			}
			m.next = next
			c.park()
			return
		}
	}
	m.heap.fix(c)
	next := m.pickNext(c)
	if next == c {
		return
	}
	m.next = next
	c.park()
}

// IdleUntil advances this CPU's virtual clock to time t — a no-op when t
// is in the past — and reschedules. It models a CPU idling for an
// externally timed event, e.g. an open-system server waiting for the next
// request arrival: no work is charged, no memory is touched, and other
// CPUs run in the meantime. Unlike Spin it burns no spin-loop cost, so an
// idle server does not perturb the coherence or cost model.
func (c *CPU) IdleUntil(t int64) {
	if t > c.now {
		idled := t - c.now
		c.now = t
		// Stamp the slept span for the profiler: Aux cycles ending now.
		c.Emit(EvIdle, 0, uint64(idled))
	}
	c.Sync()
}

// Spin charges one spin-loop iteration (plus seeded jitter — see
// CostModel.SpinJitter) and reschedules. Call it inside busy-wait loops so
// that waiting advances virtual time.
func (c *CPU) Spin() {
	c.SpinFor(1)
}

// SpinFor charges n spin-loop iterations as a single scheduling step.
// Waiters polling a slow-changing condition should escalate n (bounded)
// instead of calling Spin per iteration: the virtual time is the same, but
// the simulation takes one event instead of n, which is what keeps
// 80-thread contention scenarios tractable in wall time.
func (c *CPU) SpinFor(n int) {
	if n < 1 {
		n = 1
	}
	c.now += int64(n) * c.m.Cfg.Costs.SpinIter
	if j := c.m.Cfg.Costs.SpinJitter; j > 0 {
		c.now += int64(c.rng.Next() % uint64(int64(n)*j))
	}
	c.Sync()
}

// Waiter is a resumable wait executed by the scheduler loop on behalf of
// a parked CPU — the spin-wait loops of the lock layers expressed as small
// state machines instead of loops on a coroutine stack. Step runs at the
// CPU's scheduling turn and must perform AT MOST ONE globally visible
// action (one timed memory access) plus any private work (clock advances,
// rng draws, local predicate evaluation); it returns true when the wait is
// over. Because a step is the unit of scheduling, everything inside it is
// atomic in virtual time — which is exactly the atomicity the open-coded
// loop had between one access's Sync and the next, so results and event
// streams are bit-identical to running the same code on the coroutine.
//
// A Step may panic (e.g. an HTM load that dooms-and-aborts its own
// transaction); the panic is re-raised from Await on the waiting CPU's own
// stack, exactly where the open-coded loop would have raised it.
type Waiter interface {
	Step(c *CPU) bool
}

// Await runs w to completion at this CPU's scheduling turns. While the CPU
// stays the minimum, steps run inline right here; once another CPU is due,
// the CPU parks with the waiter installed and the engine steps it from the
// scheduler loop — no coroutine switches — until a step reports the wait
// is over. A long poll loop therefore costs two host context switches in
// total instead of two per iteration.
//
// Fast mode has no scheduling, and controlled schedulers must observe
// every scheduling point with the same choice sets as the open-coded loop,
// so both run the steps on this coroutine with Sync behaving normally.
func (c *CPU) Await(w Waiter) {
	m := c.m
	if c.fast || m.sched != nil {
		for !w.Step(c) {
		}
		return
	}
	c.Sync()
	// We hold the floor: parking is disabled during a step, so each step
	// performs its single visible action at exactly the virtual time the
	// open-coded loop would have. The saved threshold stays valid while
	// we run — every other runnable CPU's clock is frozen.
	saved := c.wake
	c.wake = maxWake
	//simlint:allow abortflow a step may abort its own transaction (a quiescence-scan load dooming the enclosing ROT); the recover restores the wake threshold the panic would otherwise skip past, then re-panics verbatim for htm.Thread.Try
	defer func() {
		if r := recover(); r != nil {
			c.wake = saved
			panic(r)
		}
	}()
	for {
		if w.Step(c) {
			c.wake = saved
			return
		}
		if c.now<<clockIDBits|c.idKey < saved {
			continue
		}
		break
	}
	c.waiter = w
	m.heap.fix(c)
	m.next = m.heap.min()
	c.park()
	if r := c.stepErr; r != nil {
		c.stepErr = nil
		panic(r)
	}
}

// preAccess delivers any pending timer interrupt and walks the TLB/page
// tables for address a. It may invoke the OnInterrupt/OnPageFault hooks.
func (c *CPU) preAccess(a Addr) {
	if !c.fast && (c.now >= c.nextInterrupt || c.m.pager.enabled) {
		c.preAccessSlow(a)
	}
}

// preAccessSlow handles the non-trivial preAccess cases: a due timer
// interrupt, or any access while paging is enabled (TLB and page walks).
func (c *CPU) preAccessSlow(a Addr) {
	if c.now >= c.nextInterrupt {
		c.now += c.m.Cfg.Costs.Interrupt
		c.Counters.Interrupts++
		c.Emit(EvInterrupt, a, 0)
		c.scheduleInterrupt()
		if c.OnInterrupt != nil {
			c.OnInterrupt()
		}
	}
	pg := &c.m.pager
	if !pg.enabled {
		return
	}
	page := int64(a) / pg.pageWords
	slot := page % int64(len(c.tlb))
	if c.tlb[slot] == page {
		return
	}
	c.Counters.TLBMisses++
	c.now += c.m.Cfg.Costs.TLBWalk
	if !pg.pages[page].resident {
		c.Counters.PageFaults++
		c.now += c.m.Cfg.Costs.PageFault
		c.Emit(EvPageFault, a, uint64(page))
		pg.makeResident(c.m, page)
		if c.OnPageFault != nil {
			c.OnPageFault()
		}
	}
	pg.pages[page].referenced = true
	c.tlb[slot] = page
}

// AccessRead charges the coherence cost of reading address a (without
// transferring data). It is split out so the HTM layer can interpose
// conflict detection between timing and the data movement.
func (c *CPU) AccessRead(a Addr) {
	c.Sync()
	c.preAccess(a)
	c.Counters.Reads++
	c.streamRun = 0
	if c.fast {
		return
	}
	l := &c.m.lines[c.m.LineOf(a)]
	t0 := c.now
	if l.exclUntil > t0 {
		t0 = l.exclUntil
	}
	cost := c.m.Cfg.Costs.L1Hit
	if int(l.owner) != c.ID && !l.isSharer(c.ID) {
		cost = c.m.Cfg.Costs.ReadMiss
		l.addSharer(c.ID)
	}
	c.now = t0 + cost
}

// AccessReadStream charges the coherence cost of reading address a as part
// of a *streaming scan of independent addresses* (an array sweep such as
// RW-LE's quiescence scan over per-thread clock lines). Out-of-order
// hardware overlaps such misses (memory-level parallelism), so consecutive
// stream misses after the first are charged ReadMiss/MLP. Dependent loads
// (pointer chasing) must use AccessRead, which pays full latency — the
// distinction is the caller's responsibility because only the program
// knows its address dependencies.
func (c *CPU) AccessReadStream(a Addr) {
	c.Sync()
	c.preAccess(a)
	c.Counters.Reads++
	if c.fast {
		return
	}
	l := &c.m.lines[c.m.LineOf(a)]
	t0 := c.now
	if l.exclUntil > t0 {
		t0 = l.exclUntil
	}
	cost := c.m.Cfg.Costs.L1Hit
	if int(l.owner) != c.ID && !l.isSharer(c.ID) {
		cost = c.m.Cfg.Costs.ReadMiss
		if c.streamRun > 0 {
			cost /= mlpOverlap
		}
		c.streamRun++
		l.addSharer(c.ID)
	}
	c.now = t0 + cost
}

// mlpOverlap is the miss-overlap factor applied to streaming scans.
const mlpOverlap = 4

// AccessWrite charges the coherence cost of writing address a: obtaining
// the line in exclusive state and reserving it for the transfer window.
func (c *CPU) AccessWrite(a Addr) {
	c.Sync()
	c.preAccess(a)
	c.Counters.Writes++
	c.streamRun = 0
	if c.fast {
		return
	}
	l := &c.m.lines[c.m.LineOf(a)]
	t0 := c.now
	if l.exclUntil > t0 {
		t0 = l.exclUntil
	}
	if int(l.owner) == c.ID && l.onlySharer(c.ID) {
		c.now = t0 + c.m.Cfg.Costs.WriteHit
		return
	}
	l.setExclusive(c.ID)
	l.exclUntil = t0 + c.m.Cfg.Costs.LineTransfer
	c.now = t0 + c.m.Cfg.Costs.WriteMiss
}

// Read performs a timed, coherent, non-transactional read of word a.
// It does not consult the HTM conflict directory; use the htm package for
// accesses that must interact with speculating transactions.
func (c *CPU) Read(a Addr) uint64 {
	c.AccessRead(a)
	v := c.m.words[a]
	c.Emit(EvRead, a, v)
	return v
}

// Write performs a timed, coherent, non-transactional write of word a.
func (c *CPU) Write(a Addr, v uint64) {
	c.AccessWrite(a)
	c.m.words[a] = v
	c.Emit(EvWrite, a, v)
}

// CAS performs a timed compare-and-swap on word a and reports whether it
// succeeded. Like Read/Write it bypasses the HTM conflict directory.
func (c *CPU) CAS(a Addr, old, new uint64) bool {
	c.AccessWrite(a)
	c.now += c.m.Cfg.Costs.CAS
	c.Counters.CASes++
	c.Emit(EvCAS, a, new)
	if c.m.words[a] != old {
		return false
	}
	c.m.words[a] = new
	return true
}

// Fence charges the cost of a memory barrier. Ordering itself is implicit:
// the simulator is sequentially consistent.
func (c *CPU) Fence() { c.now += c.m.Cfg.Costs.Fence }

// Alloc allocates n words of simulated memory, charging allocation cost.
// The memory is zeroed.
func (c *CPU) Alloc(n int64) Addr {
	c.now += c.m.Cfg.Costs.Alloc
	return c.m.allocWords(n, false)
}

// AllocAligned allocates n words starting on a cache-line boundary,
// charging allocation cost. The memory is zeroed.
func (c *CPU) AllocAligned(n int64) Addr {
	c.now += c.m.Cfg.Costs.Alloc
	return c.m.allocWords(n, true)
}

// Free returns a block previously obtained from Alloc (NOT AllocAligned)
// with the same size to the allocator.
func (c *CPU) Free(a Addr, n int64) {
	c.now += c.m.Cfg.Costs.Alloc / 2
	c.m.freeWords(a, n, false)
}

// FreeAligned returns a block previously obtained from AllocAligned with
// the same requested size to the allocator. Aligned blocks live in their
// own (line-rounded) size classes, so they must be released through this
// call — releasing them through Free strands them in a class no aligned
// allocation ever searches.
func (c *CPU) FreeAligned(a Addr, n int64) {
	c.now += c.m.Cfg.Costs.Alloc / 2
	c.m.freeWords(a, n, true)
}
