package machine

import "fmt"

// Counters aggregates per-CPU machine-level event counts for one Run.
type Counters struct {
	Reads      int64
	Writes     int64
	CASes      int64
	TLBMisses  int64
	PageFaults int64
	Interrupts int64
}

// CPU is one simulated hardware thread. All methods must be called from the
// goroutine running this CPU's body (see Machine.Run); the scheduler
// guarantees that only one CPU executes at a time.
type CPU struct {
	m   *Machine
	ID  int
	now int64

	token   chan struct{}
	heapIdx int
	rng     rng
	fast    bool

	tlb           []int64
	nextInterrupt int64
	streamRun     int64

	// OnInterrupt, if non-nil, is invoked when a timer interrupt is
	// delivered to this CPU. The HTM layer uses it to doom the in-flight
	// transaction (interrupts discard speculative state on real hardware).
	OnInterrupt func()
	// OnPageFault, if non-nil, is invoked when a memory access by this CPU
	// page-faults. The HTM layer uses it to doom the in-flight transaction.
	OnPageFault func()

	Counters Counters
}

// newCPU builds one CPU and its token slot.
//
//simlint:allow determinism the token channel is the engine's handoff primitive: capacity one, exactly one token in flight, recipients chosen by the virtual-time heap
func newCPU(m *Machine, id int) *CPU {
	c := &CPU{
		m:       m,
		ID:      id,
		token:   make(chan struct{}, 1),
		heapIdx: -1,
	}
	return c
}

func (c *CPU) beginRun(base int64) {
	c.now = base
	c.rng = newRNG(c.m.Cfg.Seed*0x9e3779b97f4a7c15 + uint64(c.ID)*0xbf58476d1ce4e5b9 + 1)
	c.Counters = Counters{}
	if len(c.tlb) != c.m.Cfg.Paging.TLBEntries {
		c.tlb = make([]int64, c.m.Cfg.Paging.TLBEntries)
	}
	for i := range c.tlb {
		c.tlb[i] = -1
	}
	c.nextInterrupt = 0
	c.scheduleInterrupt()
}

func (c *CPU) scheduleInterrupt() {
	mean := c.m.Cfg.Paging.InterruptMean
	if mean <= 0 {
		c.nextInterrupt = 1<<63 - 1
		return
	}
	// Uniform in [0.5, 1.5) * mean: jittered periodic timer.
	c.nextInterrupt = c.now + mean/2 + int64(c.rng.Next()%uint64(mean))
}

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// Now returns this CPU's virtual clock.
func (c *CPU) Now() int64 { return c.now }

// Costs returns the machine's cost model.
func (c *CPU) Costs() *CostModel { return &c.m.Cfg.Costs }

// Intn returns a deterministic pseudo-random int in [0, n).
func (c *CPU) Intn(n int) int { return c.rng.Intn(n) }

// Float64 returns a deterministic pseudo-random float64 in [0, 1).
func (c *CPU) Float64() float64 { return c.rng.Float64() }

// Rand64 returns 64 deterministic pseudo-random bits.
func (c *CPU) Rand64() uint64 { return c.rng.Next() }

// Tick advances this CPU's virtual clock by n cycles of local computation.
func (c *CPU) Tick(n int64) { c.now += n }

// Work charges n units of ALU work (n * Costs.Work cycles).
func (c *CPU) Work(n int64) { c.now += n * c.m.Cfg.Costs.Work }

// Sync blocks until this CPU is the scheduler's minimum-time CPU. Every
// globally visible action must happen between a Sync and the next clock
// advance so that actions are linearized in virtual-time order.
//
//simlint:allow determinism the token receive parks this goroutine until the deterministic scheduler hands it the token; it is the engine's one blessed channel receive
func (c *CPU) Sync() {
	if c.fast {
		return
	}
	m := c.m
	if c.now > m.Cfg.Deadline {
		panic(fmt.Sprintf("machine: CPU %d exceeded virtual deadline (%d cycles): livelock?", c.ID, m.Cfg.Deadline))
	}
	// Fast path: all other runnable CPUs are blocked with frozen clocks, so
	// this CPU keeps the token iff it is still (time, ID)-ahead of the
	// cached best of them. No heap access needed; the heap is repaired
	// lazily on the next token handoff. Controlled schedulers must see
	// every scheduling point, so they always take the slow path.
	if m.sched == nil && (c.now < m.wakeTime || (c.now == m.wakeTime && c.ID < m.wakeID)) {
		return
	}
	m.heap.fix(c)
	next := m.pickNext(c)
	if next == c {
		return
	}
	m.grantToken(next)
	<-c.token
}

// Spin charges one spin-loop iteration (plus seeded jitter — see
// CostModel.SpinJitter) and reschedules. Call it inside busy-wait loops so
// that waiting advances virtual time.
func (c *CPU) Spin() {
	c.SpinFor(1)
}

// SpinFor charges n spin-loop iterations as a single scheduling step.
// Waiters polling a slow-changing condition should escalate n (bounded)
// instead of calling Spin per iteration: the virtual time is the same, but
// the simulation takes one event instead of n, which is what keeps
// 80-thread contention scenarios tractable in wall time.
func (c *CPU) SpinFor(n int) {
	if n < 1 {
		n = 1
	}
	c.now += int64(n) * c.m.Cfg.Costs.SpinIter
	if j := c.m.Cfg.Costs.SpinJitter; j > 0 {
		c.now += int64(c.rng.Next() % uint64(int64(n)*j))
	}
	c.Sync()
}

// preAccess delivers any pending timer interrupt and walks the TLB/page
// tables for address a. It may invoke the OnInterrupt/OnPageFault hooks.
func (c *CPU) preAccess(a Addr) {
	if c.fast {
		return
	}
	if c.now >= c.nextInterrupt {
		c.now += c.m.Cfg.Costs.Interrupt
		c.Counters.Interrupts++
		c.Emit(EvInterrupt, a, 0)
		c.scheduleInterrupt()
		if c.OnInterrupt != nil {
			c.OnInterrupt()
		}
	}
	pg := &c.m.pager
	if !pg.enabled {
		return
	}
	page := int64(a) / pg.pageWords
	slot := page % int64(len(c.tlb))
	if c.tlb[slot] == page {
		return
	}
	c.Counters.TLBMisses++
	c.now += c.m.Cfg.Costs.TLBWalk
	if !pg.pages[page].resident {
		c.Counters.PageFaults++
		c.now += c.m.Cfg.Costs.PageFault
		c.Emit(EvPageFault, a, uint64(page))
		pg.makeResident(c.m, page)
		if c.OnPageFault != nil {
			c.OnPageFault()
		}
	}
	pg.pages[page].referenced = true
	c.tlb[slot] = page
}

// AccessRead charges the coherence cost of reading address a (without
// transferring data). It is split out so the HTM layer can interpose
// conflict detection between timing and the data movement.
func (c *CPU) AccessRead(a Addr) {
	c.Sync()
	c.preAccess(a)
	c.Counters.Reads++
	c.streamRun = 0
	if c.fast {
		return
	}
	l := &c.m.lines[c.m.LineOf(a)]
	t0 := c.now
	if l.exclUntil > t0 {
		t0 = l.exclUntil
	}
	cost := c.m.Cfg.Costs.L1Hit
	if int(l.owner) != c.ID && !l.isSharer(c.ID) {
		cost = c.m.Cfg.Costs.ReadMiss
		l.addSharer(c.ID)
	}
	c.now = t0 + cost
}

// AccessReadStream charges the coherence cost of reading address a as part
// of a *streaming scan of independent addresses* (an array sweep such as
// RW-LE's quiescence scan over per-thread clock lines). Out-of-order
// hardware overlaps such misses (memory-level parallelism), so consecutive
// stream misses after the first are charged ReadMiss/MLP. Dependent loads
// (pointer chasing) must use AccessRead, which pays full latency — the
// distinction is the caller's responsibility because only the program
// knows its address dependencies.
func (c *CPU) AccessReadStream(a Addr) {
	c.Sync()
	c.preAccess(a)
	c.Counters.Reads++
	if c.fast {
		return
	}
	l := &c.m.lines[c.m.LineOf(a)]
	t0 := c.now
	if l.exclUntil > t0 {
		t0 = l.exclUntil
	}
	cost := c.m.Cfg.Costs.L1Hit
	if int(l.owner) != c.ID && !l.isSharer(c.ID) {
		cost = c.m.Cfg.Costs.ReadMiss
		if c.streamRun > 0 {
			cost /= mlpOverlap
		}
		c.streamRun++
		l.addSharer(c.ID)
	}
	c.now = t0 + cost
}

// mlpOverlap is the miss-overlap factor applied to streaming scans.
const mlpOverlap = 4

// AccessWrite charges the coherence cost of writing address a: obtaining
// the line in exclusive state and reserving it for the transfer window.
func (c *CPU) AccessWrite(a Addr) {
	c.Sync()
	c.preAccess(a)
	c.Counters.Writes++
	c.streamRun = 0
	if c.fast {
		return
	}
	l := &c.m.lines[c.m.LineOf(a)]
	t0 := c.now
	if l.exclUntil > t0 {
		t0 = l.exclUntil
	}
	if int(l.owner) == c.ID && l.onlySharer(c.ID) {
		c.now = t0 + c.m.Cfg.Costs.WriteHit
		return
	}
	l.setExclusive(c.ID)
	l.exclUntil = t0 + c.m.Cfg.Costs.LineTransfer
	c.now = t0 + c.m.Cfg.Costs.WriteMiss
}

// Read performs a timed, coherent, non-transactional read of word a.
// It does not consult the HTM conflict directory; use the htm package for
// accesses that must interact with speculating transactions.
func (c *CPU) Read(a Addr) uint64 {
	c.AccessRead(a)
	v := c.m.words[a]
	c.Emit(EvRead, a, v)
	return v
}

// Write performs a timed, coherent, non-transactional write of word a.
func (c *CPU) Write(a Addr, v uint64) {
	c.AccessWrite(a)
	c.m.words[a] = v
	c.Emit(EvWrite, a, v)
}

// CAS performs a timed compare-and-swap on word a and reports whether it
// succeeded. Like Read/Write it bypasses the HTM conflict directory.
func (c *CPU) CAS(a Addr, old, new uint64) bool {
	c.AccessWrite(a)
	c.now += c.m.Cfg.Costs.CAS
	c.Counters.CASes++
	c.Emit(EvCAS, a, new)
	if c.m.words[a] != old {
		return false
	}
	c.m.words[a] = new
	return true
}

// Fence charges the cost of a memory barrier. Ordering itself is implicit:
// the simulator is sequentially consistent.
func (c *CPU) Fence() { c.now += c.m.Cfg.Costs.Fence }

// Alloc allocates n words of simulated memory, charging allocation cost.
// The memory is zeroed.
func (c *CPU) Alloc(n int64) Addr {
	c.now += c.m.Cfg.Costs.Alloc
	return c.m.allocWords(n, false)
}

// AllocAligned allocates n words starting on a cache-line boundary,
// charging allocation cost. The memory is zeroed.
func (c *CPU) AllocAligned(n int64) Addr {
	c.now += c.m.Cfg.Costs.Alloc
	return c.m.allocWords(n, true)
}

// Free returns a block previously obtained from Alloc (NOT AllocAligned)
// with the same size to the allocator.
func (c *CPU) Free(a Addr, n int64) {
	c.now += c.m.Cfg.Costs.Alloc / 2
	c.m.freeWords(a, n, false)
}

// FreeAligned returns a block previously obtained from AllocAligned with
// the same requested size to the allocator. Aligned blocks live in their
// own (line-rounded) size classes, so they must be released through this
// call — releasing them through Free strands them in a class no aligned
// allocation ever searches.
func (c *CPU) FreeAligned(a Addr, n int64) {
	c.now += c.m.Cfg.Costs.Alloc / 2
	c.m.freeWords(a, n, true)
}
