package machine

// pageState is the per-page virtual-memory bookkeeping.
type pageState struct {
	resident   bool
	referenced bool
}

// pager implements demand paging with a residency limit and CLOCK eviction.
// The model is deliberately small: what matters to the experiments is that
// (a) working sets beyond the residency limit fault continuously and
// (b) faults abort in-flight hardware transactions.
type pager struct {
	enabled       bool
	pageWords     int64
	residentLimit int64
	pages         []pageState
	residentCount int64
	hand          int64
}

func (p *pager) init(cfg Config) {
	p.enabled = cfg.Paging.Enabled
	p.pageWords = cfg.Paging.PageWords
	p.residentLimit = cfg.Paging.ResidentLimit
	if !p.enabled {
		return
	}
	n := (cfg.MemWords + p.pageWords - 1) / p.pageWords
	p.pages = make([]pageState, n)
}

// makeResident brings page in and, if the residency limit is exceeded,
// evicts a victim chosen by the CLOCK algorithm (with TLB shootdown).
func (p *pager) makeResident(m *Machine, page int64) {
	if p.pages[page].resident {
		return
	}
	p.pages[page].resident = true
	p.residentCount++
	if p.residentLimit <= 0 {
		return
	}
	for p.residentCount > p.residentLimit {
		victim := p.clockVictim(page)
		if victim < 0 {
			return
		}
		p.pages[victim].resident = false
		p.residentCount--
		shootdown(m, victim)
	}
}

// clockVictim advances the clock hand, clearing reference bits, until it
// finds an unreferenced resident page other than keep.
func (p *pager) clockVictim(keep int64) int64 {
	n := int64(len(p.pages))
	for sweep := int64(0); sweep < 2*n; sweep++ {
		i := p.hand
		p.hand = (p.hand + 1) % n
		st := &p.pages[i]
		if !st.resident || i == keep {
			continue
		}
		if st.referenced {
			st.referenced = false
			continue
		}
		return i
	}
	return -1
}

// shootdown invalidates any TLB entry for page on every CPU.
func shootdown(m *Machine, page int64) {
	for _, c := range m.cpus {
		if len(c.tlb) == 0 {
			continue
		}
		slot := page % int64(len(c.tlb))
		if c.tlb[slot] == page {
			c.tlb[slot] = -1
		}
	}
}

// ResetPaging evicts every resident page and clears all TLBs, modelling a
// cold start. It may only be called outside Run.
func (m *Machine) ResetPaging() {
	p := &m.pager
	if !p.enabled {
		return
	}
	for i := range p.pages {
		p.pages[i] = pageState{}
	}
	p.residentCount = 0
	p.hand = 0
	for _, c := range m.cpus {
		for i := range c.tlb {
			c.tlb[i] = -1
		}
	}
}

// ResidentPages returns the number of currently resident pages.
func (m *Machine) ResidentPages() int64 { return m.pager.residentCount }
