package machine

// Scheduler chooses which runnable CPU receives the execution token at each
// scheduling point (a Sync/Spin yield, the start of Run, or a CPU
// finishing). The default — a nil scheduler — always runs the CPU with the
// smallest virtual clock, which is what makes virtual-time measurements
// meaningful; that path is untouched by this hook, so default simulations
// are bit-for-bit identical with and without it.
//
// Controlled schedulers (internal/check) override the choice to explore
// thread interleavings systematically. Under a controlled scheduler every
// execution is still a legal sequentially consistent interleaving — exactly
// one CPU runs at a time and all shared state is mutated in token order —
// but virtual-time figures are meaningless, since a CPU may be chosen while
// its clock is ahead of its peers.
type Scheduler interface {
	// Pick returns the CPU to run next. runnable is non-empty and sorted
	// by CPU ID; current is the CPU yielding the token, or nil at run
	// start and when a CPU just finished. The returned CPU must be one of
	// runnable. Pick is called from the token-holding goroutine, so it may
	// not call back into the machine.
	Pick(current *CPU, runnable []*CPU) *CPU
}

// SetScheduler installs (or, with nil, removes) a controlled scheduler.
// It must not be called while Run is in progress.
func (m *Machine) SetScheduler(s Scheduler) { m.sched = s }

// runnableByID returns the runnable CPUs sorted by ID in a scratch buffer
// that is reused across calls (valid until the next scheduling point).
func (m *Machine) runnableByID() []*CPU {
	m.schedScratch = m.schedScratch[:0]
	m.schedScratch = append(m.schedScratch, m.heap.cpus...)
	s := m.schedScratch
	for i := 1; i < len(s); i++ { // insertion sort: n is small and nearly sorted
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// pickNext resolves the next CPU to run: the heap minimum by default, or
// the controlled scheduler's choice when one is installed. It returns nil
// when no CPU is runnable.
func (m *Machine) pickNext(current *CPU) *CPU {
	if m.heap.len() == 0 {
		return nil
	}
	if m.sched == nil {
		return m.heap.min()
	}
	next := m.sched.Pick(current, m.runnableByID())
	if next == nil || next.heapIdx < 0 {
		panic("machine: Scheduler.Pick returned a CPU that is not runnable")
	}
	return next
}
