// Package machine implements a deterministic discrete-event simulator of a
// shared-memory multiprocessor. It is the substrate on which the rest of
// this repository — a software POWER8-style HTM, the RW-LE lock-elision
// algorithm, the baseline locks, and the benchmark applications — executes.
//
// Each simulated hardware thread (CPU) runs as a goroutine, but exactly one
// CPU executes at any moment: a token is passed between goroutines so that
// the CPU with the smallest virtual clock always runs next. All shared
// simulator state is therefore mutated race-free and every run is
// bit-for-bit reproducible from its seed, regardless of how many physical
// cores the host has.
//
// The simulator models the parts of the memory system that synchronization
// performance depends on:
//
//   - a flat, word-addressed memory with a line-granular coherence timing
//     model (hit/miss costs, exclusive-line transfer reservations that
//     serialize hot-line ping-pong);
//   - an optional virtual-memory model (per-CPU TLBs, demand paging with a
//     residency limit and CLOCK eviction, timer interrupts) whose faults
//     and interrupts abort hardware transactions, as on real hardware;
//   - a simple dynamic allocator over the simulated memory.
package machine

import (
	"fmt"
	"sync"
)

// Addr is a word address in simulated memory. Words are 64 bits wide.
// Address 0 is reserved as the nil address.
type Addr int64

// MaxCPUs is the maximum number of simulated hardware threads.
const MaxCPUs = 128

// PagingConfig configures the simulated virtual-memory subsystem.
type PagingConfig struct {
	// Enabled turns on TLB/paging simulation. When false, memory accesses
	// pay only coherence costs.
	Enabled bool
	// PageWords is the page size in words (default 512 = 4 KiB).
	PageWords int64
	// ResidentLimit caps the number of simultaneously resident pages;
	// 0 means unlimited (no page-fault thrashing).
	ResidentLimit int64
	// TLBEntries is the number of per-CPU direct-mapped TLB entries
	// (default 128).
	TLBEntries int
	// InterruptMean, when non-zero, delivers a timer interrupt to each CPU
	// on average every InterruptMean cycles. Interrupts abort in-flight
	// hardware transactions (via the CPU's OnInterrupt hook).
	InterruptMean int64
}

// Config configures a simulated machine.
type Config struct {
	// CPUs is the number of simulated hardware threads (1..MaxCPUs).
	CPUs int
	// MemWords is the size of simulated memory in 64-bit words.
	MemWords int64
	// LineWords is the cache-line size in words (default 16 = 128 B,
	// matching POWER8).
	LineWords int64
	// Seed seeds all per-CPU random streams.
	Seed uint64
	// Costs is the virtual-cycle cost model; zero value means DefaultCosts.
	Costs CostModel
	// Paging configures the VM subsystem.
	Paging PagingConfig
	// Deadline aborts the simulation (panic) if any CPU's virtual clock
	// exceeds it; it catches livelocks. 0 means 1e14 cycles.
	Deadline int64
}

func (cfg *Config) applyDefaults() {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	if cfg.CPUs > MaxCPUs {
		panic(fmt.Sprintf("machine: %d CPUs exceeds MaxCPUs=%d", cfg.CPUs, MaxCPUs))
	}
	if cfg.MemWords <= 0 {
		cfg.MemWords = 1 << 20
	}
	if cfg.LineWords == 0 {
		cfg.LineWords = 16
	}
	if cfg.LineWords&(cfg.LineWords-1) != 0 {
		panic("machine: LineWords must be a power of two")
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Paging.PageWords == 0 {
		cfg.Paging.PageWords = 512
	}
	if cfg.Paging.TLBEntries == 0 {
		cfg.Paging.TLBEntries = 128
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 1e14
	}
}

// line holds per-cache-line coherence state: the time until which the line
// is reserved by an exclusive transfer, the last exclusive owner, and a
// bitmap of CPUs that have read the line since the last write.
type line struct {
	exclUntil int64
	owner     int32
	sharers   [2]uint64
}

func (l *line) isSharer(id int) bool { return l.sharers[id>>6]&(1<<(uint(id)&63)) != 0 }
func (l *line) addSharer(id int)     { l.sharers[id>>6] |= 1 << (uint(id) & 63) }
func (l *line) setExclusive(id int) {
	l.owner = int32(id)
	l.sharers = [2]uint64{}
	l.addSharer(id)
}
func (l *line) onlySharer(id int) bool {
	var want [2]uint64
	want[id>>6] = 1 << (uint(id) & 63)
	return l.sharers == want
}

// Machine is a simulated shared-memory multiprocessor.
type Machine struct {
	Cfg       Config
	words     []uint64
	lines     []line
	cpus      []*CPU
	heap      cpuHeap
	pager     pager
	alloc     arena
	baseTime  int64
	lineShift uint

	tracer Tracer
	sched  Scheduler

	schedScratch []*CPU

	// wakeTime/wakeID cache the scheduling threshold for the CPU that
	// currently holds the execution token: the smallest (virtual time, ID)
	// among all *other* runnable CPUs. While one CPU runs, every other
	// runnable CPU is blocked on its token channel with a frozen clock, so
	// the cache stays valid until the next token grant. Sync uses it to
	// answer "am I still the minimum?" with one comparison instead of a
	// heap fix + pick. Only maintained under the default scheduler
	// (sched == nil); controlled schedulers take the slow path always.
	wakeTime int64
	wakeID   int

	runErr any
	//simlint:allow determinism runOnce serializes whole Run invocations from the host side; it never orders simulated events
	runOnce sync.Mutex
}

// New creates a machine with the given configuration.
func New(cfg Config) *Machine {
	cfg.applyDefaults()
	m := &Machine{Cfg: cfg}
	for s := int64(1); s < cfg.LineWords; s <<= 1 {
		m.lineShift++
	}
	nLines := (cfg.MemWords + cfg.LineWords - 1) >> m.lineShift
	m.words = make([]uint64, cfg.MemWords)
	m.lines = make([]line, nLines)
	for i := range m.lines {
		m.lines[i].owner = -1
	}
	m.pager.init(cfg)
	m.alloc.init(cfg.MemWords, cfg.LineWords)
	m.cpus = make([]*CPU, cfg.CPUs)
	for i := range m.cpus {
		m.cpus[i] = newCPU(m, i)
	}
	return m
}

// NumLines returns the number of cache lines covering simulated memory.
// Layers above (e.g. the HTM conflict directory) size their per-line
// metadata from it.
func (m *Machine) NumLines() int { return len(m.lines) }

// LineOf returns the cache-line index of address a.
func (m *Machine) LineOf(a Addr) int64 { return int64(a) >> m.lineShift }

// Peek reads a word of simulated memory without charging time. It must only
// be called by the token-holding CPU or outside Run.
func (m *Machine) Peek(a Addr) uint64 { return m.words[a] }

// Poke writes a word of simulated memory without charging time. It must
// only be called by the token-holding CPU or outside Run.
func (m *Machine) Poke(a Addr, v uint64) { m.words[a] = v }

// CPU returns the simulated CPU with the given ID.
func (m *Machine) CPU(id int) *CPU { return m.cpus[id] }

// Now returns the current global virtual time (the maximum over all CPUs).
func (m *Machine) Now() int64 {
	t := m.baseTime
	for _, c := range m.cpus {
		if c.now > t {
			t = c.now
		}
	}
	return t
}

// Setup runs body on CPU 0 in fast mode: no virtual time is charged, no
// paging or interrupts fire, and no scheduling happens. Use it to populate
// data structures through the same code paths the measured run uses.
func (m *Machine) Setup(body func(*CPU)) {
	c := m.cpus[0]
	c.fast = true
	defer func() { c.fast = false }()
	body(c)
}

// Run executes body on CPUs 0..threads-1 concurrently in virtual time and
// returns the elapsed virtual cycles (the time at which the last CPU
// finished, minus the start time). Virtual time is monotonic across
// successive Runs on the same machine.
//
//simlint:allow determinism this is the virtual-time token-passing engine itself: exactly one goroutine holds the token at any instant, so host scheduling never orders simulated events
//simlint:allow abortflow the worker recover propagates CPU-body panics across the join; the pooled abort signal never reaches it (htm.Thread.Try consumes it inside the body) and runErr is re-panicked verbatim after wg.Wait
func (m *Machine) Run(threads int, body func(*CPU)) int64 {
	if threads <= 0 || threads > len(m.cpus) {
		panic(fmt.Sprintf("machine: Run with %d threads (have %d CPUs)", threads, len(m.cpus)))
	}
	m.runOnce.Lock()
	defer m.runOnce.Unlock()

	base := m.Now()
	m.baseTime = base
	m.heap = cpuHeap{}
	m.runErr = nil
	done := make(chan struct{})
	var wg sync.WaitGroup

	active := m.cpus[:threads]
	for _, c := range active {
		c.beginRun(base)
		m.heap.push(c)
	}
	for _, c := range active {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if m.runErr == nil {
						m.runErr = r
					}
				}
				m.finishCPU(c, done)
			}()
			<-c.token
			body(c)
		}(c)
	}
	// Hand the token to the first CPU.
	m.grantToken(m.pickNext(nil))
	<-done
	wg.Wait()
	if m.runErr != nil {
		panic(m.runErr)
	}
	end := m.Now()
	return end - base
}

// finishCPU removes c from the scheduler and passes the token on (or
// signals completion if c was the last runnable CPU).
func (m *Machine) finishCPU(c *CPU, done chan struct{}) {
	if c.heapIdx >= 0 {
		m.heap.remove(c)
	}
	if next := m.pickNext(nil); next != nil {
		m.grantToken(next)
	} else {
		close(done)
	}
}

// grantToken refreshes the Sync fast-path cache for the CPU about to run
// and hands it the execution token. The refresh must happen before the
// send: once the token is delivered the recipient may immediately consult
// the cache from its own goroutine.
//
//simlint:allow determinism the token handoff is the engine's one blessed channel send; the recipient is chosen by the deterministic virtual-time heap, not by host scheduling
func (m *Machine) grantToken(next *CPU) {
	if m.sched == nil {
		m.refreshWake(next)
	}
	next.token <- struct{}{}
}

// refreshWake recomputes the wakeTime/wakeID threshold for next, the CPU
// about to receive the token. Under the default scheduler next is the heap
// root, so the minimum among the other runnable CPUs is the smaller of the
// root's two children.
func (m *Machine) refreshWake(next *CPU) {
	h := &m.heap
	if len(h.cpus) <= 1 {
		// No other runnable CPU: next keeps the token until it finishes.
		m.wakeTime = 1<<63 - 1
		m.wakeID = int(^uint(0) >> 1)
		return
	}
	best := h.cpus[1]
	if len(h.cpus) > 2 && h.less(2, 1) {
		best = h.cpus[2]
	}
	m.wakeTime, m.wakeID = best.now, best.ID
}
