// Package machine implements a deterministic discrete-event simulator of a
// shared-memory multiprocessor. It is the substrate on which the rest of
// this repository — a software POWER8-style HTM, the RW-LE lock-elision
// algorithm, the baseline locks, and the benchmark applications — executes.
//
// Each simulated hardware thread (CPU) runs as a resumable coroutine
// driven by one inline scheduler loop on the caller's goroutine (Run).
// Exactly one CPU executes at any moment: when a CPU's virtual clock
// passes another runnable CPU's, it parks itself and the loop resumes the
// CPU with the smallest (time, ID). A park/resume is a direct coroutine
// switch (iter.Pull), not a channel handoff through the runtime scheduler,
// which is what makes the simulator's innermost loop cheap. All shared
// simulator state is mutated from whichever coroutine holds the floor, so
// every run is race-free and bit-for-bit reproducible from its seed,
// regardless of how many physical cores the host has.
//
// The simulator models the parts of the memory system that synchronization
// performance depends on:
//
//   - a flat, word-addressed memory with a line-granular coherence timing
//     model (hit/miss costs, exclusive-line transfer reservations that
//     serialize hot-line ping-pong);
//   - an optional virtual-memory model (per-CPU TLBs, demand paging with a
//     residency limit and CLOCK eviction, timer interrupts) whose faults
//     and interrupts abort hardware transactions, as on real hardware;
//   - a simple dynamic allocator over the simulated memory.
package machine

import (
	"fmt"
	"sync"
)

// Addr is a word address in simulated memory. Words are 64 bits wide.
// Address 0 is reserved as the nil address.
type Addr int64

// MaxCPUs is the maximum number of simulated hardware threads.
const MaxCPUs = 256

// PagingConfig configures the simulated virtual-memory subsystem.
type PagingConfig struct {
	// Enabled turns on TLB/paging simulation. When false, memory accesses
	// pay only coherence costs.
	Enabled bool
	// PageWords is the page size in words (default 512 = 4 KiB).
	PageWords int64
	// ResidentLimit caps the number of simultaneously resident pages;
	// 0 means unlimited (no page-fault thrashing).
	ResidentLimit int64
	// TLBEntries is the number of per-CPU direct-mapped TLB entries
	// (default 128).
	TLBEntries int
	// InterruptMean, when non-zero, delivers a timer interrupt to each CPU
	// on average every InterruptMean cycles. Interrupts abort in-flight
	// hardware transactions (via the CPU's OnInterrupt hook).
	InterruptMean int64
}

// Config configures a simulated machine.
type Config struct {
	// CPUs is the number of simulated hardware threads (1..MaxCPUs).
	CPUs int
	// MemWords is the size of simulated memory in 64-bit words.
	MemWords int64
	// LineWords is the cache-line size in words (default 16 = 128 B,
	// matching POWER8).
	LineWords int64
	// Seed seeds all per-CPU random streams.
	Seed uint64
	// Costs is the virtual-cycle cost model; zero value means DefaultCosts.
	Costs CostModel
	// Paging configures the VM subsystem.
	Paging PagingConfig
	// Deadline aborts the simulation (panic) if any CPU's virtual clock
	// exceeds it; it catches livelocks. 0 means 1e14 cycles.
	Deadline int64
}

func (cfg *Config) applyDefaults() {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	if cfg.CPUs > MaxCPUs {
		panic(fmt.Sprintf("machine: %d CPUs exceeds MaxCPUs=%d", cfg.CPUs, MaxCPUs))
	}
	if cfg.MemWords <= 0 {
		cfg.MemWords = 1 << 20
	}
	if cfg.LineWords == 0 {
		cfg.LineWords = 16
	}
	if cfg.LineWords&(cfg.LineWords-1) != 0 {
		panic("machine: LineWords must be a power of two")
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Paging.PageWords == 0 {
		cfg.Paging.PageWords = 512
	}
	if cfg.Paging.TLBEntries == 0 {
		cfg.Paging.TLBEntries = 128
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 1e14
	}
}

// line holds per-cache-line coherence state: the time until which the line
// is reserved by an exclusive transfer, the last exclusive owner, and a
// bitmap of CPUs that have read the line since the last write.
type line struct {
	exclUntil int64
	owner     int32
	sharers   [4]uint64
}

func (l *line) isSharer(id int) bool { return l.sharers[id>>6]&(1<<(uint(id)&63)) != 0 }
func (l *line) addSharer(id int)     { l.sharers[id>>6] |= 1 << (uint(id) & 63) }
func (l *line) setExclusive(id int) {
	l.owner = int32(id)
	l.sharers = [4]uint64{}
	l.addSharer(id)
}
func (l *line) onlySharer(id int) bool {
	var want [4]uint64
	want[id>>6] = 1 << (uint(id) & 63)
	return l.sharers == want
}

// Machine is a simulated shared-memory multiprocessor.
type Machine struct {
	Cfg       Config
	words     []uint64
	lines     []line
	cpus      []*CPU
	heap      cpuHeap
	pager     pager
	alloc     arena
	baseTime  int64
	lineShift uint

	tracer Tracer
	sched  Scheduler

	schedScratch []*CPU

	// next is the successor chosen by the parking CPU's Sync, read by the
	// scheduler loop right after the park returns control to it.
	next *CPU

	runErr any
	//simlint:allow determinism runOnce serializes whole Run invocations from the host side; it never orders simulated events
	runOnce sync.Mutex
}

// New creates a machine with the given configuration.
func New(cfg Config) *Machine {
	cfg.applyDefaults()
	m := &Machine{Cfg: cfg}
	for s := int64(1); s < cfg.LineWords; s <<= 1 {
		m.lineShift++
	}
	nLines := (cfg.MemWords + cfg.LineWords - 1) >> m.lineShift
	m.words = make([]uint64, cfg.MemWords)
	m.lines = make([]line, nLines)
	for i := range m.lines {
		m.lines[i].owner = -1
	}
	m.pager.init(cfg)
	m.alloc.init(cfg.MemWords, cfg.LineWords)
	m.cpus = make([]*CPU, cfg.CPUs)
	for i := range m.cpus {
		m.cpus[i] = newCPU(m, i)
	}
	return m
}

// NumLines returns the number of cache lines covering simulated memory.
// Layers above (e.g. the HTM conflict directory) size their per-line
// metadata from it.
func (m *Machine) NumLines() int { return len(m.lines) }

// LineOf returns the cache-line index of address a.
func (m *Machine) LineOf(a Addr) int64 { return int64(a) >> m.lineShift }

// Peek reads a word of simulated memory without charging time. It must only
// be called by the token-holding CPU or outside Run.
func (m *Machine) Peek(a Addr) uint64 { return m.words[a] }

// Poke writes a word of simulated memory without charging time. It must
// only be called by the token-holding CPU or outside Run.
func (m *Machine) Poke(a Addr, v uint64) { m.words[a] = v }

// CPU returns the simulated CPU with the given ID.
func (m *Machine) CPU(id int) *CPU { return m.cpus[id] }

// Now returns the current global virtual time (the maximum over all CPUs).
func (m *Machine) Now() int64 {
	t := m.baseTime
	for _, c := range m.cpus {
		if c.now > t {
			t = c.now
		}
	}
	return t
}

// Setup runs body on CPU 0 in fast mode: no virtual time is charged, no
// paging or interrupts fire, and no scheduling happens. Use it to populate
// data structures through the same code paths the measured run uses.
func (m *Machine) Setup(body func(*CPU)) {
	c := m.cpus[0]
	c.fast = true
	defer func() { c.fast = false }()
	body(c)
}

// Run executes body on CPUs 0..threads-1 concurrently in virtual time and
// returns the elapsed virtual cycles (the time at which the last CPU
// finished, minus the start time). Virtual time is monotonic across
// successive Runs on the same machine.
//
// Run is the inline scheduler loop: it resumes one CPU coroutine at a
// time, always the scheduler's choice (minimum (time, ID) by default, the
// controlled Scheduler's pick otherwise). A resumed CPU executes until its
// Sync parks it — having first recorded its successor in m.next — or until
// its body returns or panics. A body panic is captured at the coroutine
// root (see spawn), recorded in runErr, and re-raised here once the
// remaining CPUs have run to completion, exactly as the previous
// goroutine-per-CPU engine behaved.
//
//simlint:allow determinism the runOnce mutex only rejects concurrent host callers of Run on one machine; all simulated events run on this single goroutine, ordered by the virtual-time heap, so host scheduling never orders them
func (m *Machine) Run(threads int, body func(*CPU)) int64 {
	if threads <= 0 || threads > len(m.cpus) {
		panic(fmt.Sprintf("machine: Run with %d threads (have %d CPUs)", threads, len(m.cpus)))
	}
	m.runOnce.Lock()
	defer m.runOnce.Unlock()

	base := m.Now()
	m.baseTime = base
	m.heap = cpuHeap{}
	m.runErr = nil

	active := m.cpus[:threads]
	for _, c := range active {
		c.beginRun(base)
		m.heap.push(c)
		c.spawn(body)
	}
	// Release still-parked coroutines if the loop exits abnormally (e.g. a
	// controlled scheduler violating its contract); on a normal exit every
	// coroutine has already finished and release is a no-op.
	defer func() {
		for _, c := range active {
			c.release()
		}
	}()

	cur := m.pickNext(nil)
	for cur != nil {
		if cur.waiter != nil {
			// An engine-stepped wait: run one step in place of a resume.
			// Only when the wait completes (or its step panicked, with
			// the panic stashed for Await to re-raise) does the CPU's
			// coroutine get the floor back.
			if !m.stepWaiter(cur) {
				m.heap.fix(cur)
				cur = m.pickNext(nil)
				continue
			}
		}
		if m.sched == nil {
			m.refreshWake(cur)
		}
		if _, parked := cur.resume(); parked {
			// cur parked in Sync after choosing its successor.
			cur = m.next
		} else {
			// cur's body returned or panicked (spawn's seq-root recover
			// turns body panics into normal coroutine exits after
			// recording runErr): retire it and pick fresh.
			if cur.heapIdx >= 0 {
				m.heap.remove(cur)
			}
			cur = m.pickNext(nil)
		}
	}
	if m.runErr != nil {
		panic(m.runErr)
	}
	end := m.Now()
	return end - base
}

// stepWaiter advances c's engine-stepped wait by one step and reports
// whether the wait is over. It owns the two pieces of bookkeeping a step
// cannot do for itself: the livelock deadline check (a waiting CPU's Syncs
// are disabled, so syncSlow never sees it) and the re-routing of a panic
// raised inside a step — both are stashed in c.stepErr and re-raised by
// Await on the waiting CPU's own stack, exactly where the open-coded loop
// would have raised them.
//
//simlint:allow abortflow the recover re-routes a step's panic — including an HTM abort unwinding a doomed transaction — onto the waiting CPU's coroutine, where Await re-panics it verbatim for htm.Thread.Try to consume
func (m *Machine) stepWaiter(c *CPU) (done bool) {
	if c.now > m.Cfg.Deadline {
		c.waiter = nil
		c.stepErr = fmt.Sprintf("machine: CPU %d exceeded virtual deadline (%d cycles): livelock?", c.ID, m.Cfg.Deadline)
		return true
	}
	defer func() {
		if r := recover(); r != nil {
			c.waiter = nil
			c.stepErr = r
			done = true
		}
	}()
	if c.waiter.Step(c) {
		c.waiter = nil
		return true
	}
	return false
}

// refreshWake recomputes the wake threshold of next, the CPU about to be
// resumed: the smallest packed (virtual time, ID) key among all *other*
// runnable CPUs. While next runs, every other runnable CPU is parked in
// its coroutine with a frozen clock, so the threshold stays valid until
// the next resume. Sync compares against it to answer "am I still the
// minimum?" with a single comparison instead of a heap fix + pick. Under
// the default scheduler next is the heap root, so the minimum among the
// others is the smaller of the root's two children.
func (m *Machine) refreshWake(next *CPU) {
	h := &m.heap
	if len(h.cpus) <= 1 {
		// No other runnable CPU: next keeps the floor until it finishes.
		// Clamp the threshold to just past the deadline so a runaway body
		// still falls off the fast path and into syncSlow's livelock check
		// (parked CPUs always have clocks within the deadline — their own
		// Sync checked it before parking — so multi-CPU thresholds never
		// need the clamp).
		next.wake = (m.Cfg.Deadline + 1) << clockIDBits
		return
	}
	best := h.cpus[1]
	if len(h.cpus) > 2 && h.less(2, 1) {
		best = h.cpus[2]
	}
	next.wake = best.now<<clockIDBits | best.idKey
}
