package machine

import "testing"

// TestStreamDeterministic pins the Stream contract: identical seeds yield
// identical sequences, distinct seeds diverge, and seed 0 is remapped
// rather than producing the degenerate all-zero SplitMix64 orbit.
func TestStreamDeterministic(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
	c, d := NewStream(1), NewStream(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds collided on %d of 1000 draws", same)
	}
	z := NewStream(0)
	if z.Next() == 0 && z.Next() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

// TestStreamIndependentOfCPUs checks that draws from a Stream and from
// per-CPU streams never share state: interleaving them changes neither
// sequence.
func TestStreamIndependentOfCPUs(t *testing.T) {
	solo := NewStream(7)
	var want []uint64
	for i := 0; i < 16; i++ {
		want = append(want, solo.Next())
	}

	m := New(Config{CPUs: 2, MemWords: 1 << 12, Seed: 9})
	interleaved := NewStream(7)
	var got []uint64
	m.Run(2, func(c *CPU) {
		for i := 0; i < 4; i++ {
			c.Rand64()
			if c.ID == 0 {
				got = append(got, interleaved.Next(), interleaved.Next())
			}
			c.Tick(10)
		}
	})
	for i, w := range want[:len(got)] {
		if got[i] != w {
			t.Fatalf("stream draw %d perturbed by CPU streams: got %d, want %d", i, got[i], w)
		}
	}
}

// TestIdleUntil checks the open-system idle primitive: the clock jumps
// forward to the target, never backward, and other CPUs run during the
// idle window.
func TestIdleUntil(t *testing.T) {
	m := New(Config{CPUs: 2, MemWords: 1 << 12, Seed: 3})
	var wokeAt, peerDoneAt int64
	m.Run(2, func(c *CPU) {
		if c.ID == 0 {
			c.IdleUntil(10_000)
			wokeAt = c.Now()
			c.IdleUntil(5_000) // in the past: must not rewind
			if c.Now() != wokeAt {
				t.Errorf("IdleUntil rewound the clock: %d after waking at %d", c.Now(), wokeAt)
			}
		} else {
			c.Tick(500)
			c.Sync()
			peerDoneAt = c.Now()
		}
	})
	if wokeAt != 10_000 {
		t.Errorf("idle CPU woke at %d, want 10000", wokeAt)
	}
	if peerDoneAt != 500 {
		t.Errorf("peer CPU finished at %d, want 500 (must run during the idle window)", peerDoneAt)
	}
}
