package machine

import (
	"testing"
	"testing/quick"
)

func testConfig(cpus int) Config {
	return Config{CPUs: cpus, MemWords: 1 << 16, Seed: 42}
}

func TestRunSingleCPU(t *testing.T) {
	m := New(testConfig(1))
	ran := false
	elapsed := m.Run(1, func(c *CPU) {
		ran = true
		c.Write(64, 7)
		if got := c.Read(64); got != 7 {
			t.Errorf("Read = %d, want 7", got)
		}
		c.Tick(100)
	})
	if !ran {
		t.Fatal("body did not run")
	}
	if elapsed <= 100 {
		t.Errorf("elapsed = %d, want > 100", elapsed)
	}
}

func TestRunManyCPUsAllExecute(t *testing.T) {
	const n = 16
	m := New(testConfig(n))
	var ran [n]bool
	m.Run(n, func(c *CPU) {
		ran[c.ID] = true
		for i := 0; i < 10; i++ {
			c.Write(Addr(64+c.ID*16), uint64(i))
		}
	})
	for i, r := range ran {
		if !r {
			t.Errorf("CPU %d did not run", i)
		}
	}
}

func TestVirtualTimeOrdering(t *testing.T) {
	// Two CPUs appending to a shared log must interleave in virtual-time
	// order: CPU 1 ticks far ahead first, so CPU 0's writes come first.
	m := New(testConfig(2))
	var order []int
	m.Run(2, func(c *CPU) {
		if c.ID == 1 {
			c.Tick(1_000_000)
		}
		for i := 0; i < 5; i++ {
			c.Sync()
			order = append(order, c.ID)
			c.Tick(10)
		}
	})
	want := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	if len(order) != len(want) {
		t.Fatalf("order has %d entries, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		m := New(testConfig(8))
		sum := uint64(0)
		elapsed := m.Run(8, func(c *CPU) {
			for i := 0; i < 200; i++ {
				a := Addr(64 + c.Intn(256))
				if c.Intn(2) == 0 {
					c.Write(a, c.Rand64())
				} else {
					sum += c.Read(a)
				}
			}
		})
		return elapsed, sum
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Errorf("runs differ: (%d,%d) vs (%d,%d)", e1, s1, e2, s2)
	}
}

func TestHotLineSerializes(t *testing.T) {
	// N CPUs hammering one line must take ~N times as long as N CPUs
	// writing private lines: the exclusive-transfer reservation serializes.
	const n, iters = 8, 200
	shared := func() int64 {
		m := New(testConfig(n))
		return m.Run(n, func(c *CPU) {
			for i := 0; i < iters; i++ {
				c.Write(64, uint64(i))
			}
		})
	}()
	private := func() int64 {
		m := New(testConfig(n))
		return m.Run(n, func(c *CPU) {
			base := Addr(64 + c.ID*16)
			for i := 0; i < iters; i++ {
				c.Write(base, uint64(i))
			}
		})
	}()
	if shared < 4*private {
		t.Errorf("shared-line run (%d cycles) not sufficiently serialized vs private (%d cycles)", shared, private)
	}
}

func TestSharedReadsScale(t *testing.T) {
	// Concurrent reads of a clean line must not serialize.
	const n, iters = 8, 500
	m := New(testConfig(n))
	m.Poke(64, 99)
	elapsed := m.Run(n, func(c *CPU) {
		for i := 0; i < iters; i++ {
			if c.Read(64) != 99 {
				t.Error("bad read")
			}
		}
	})
	single := New(testConfig(1)).Run(1, func(c *CPU) {
		for i := 0; i < iters; i++ {
			c.Read(64)
		}
	})
	if elapsed > 3*single {
		t.Errorf("read-shared run %d cycles vs single %d: reads serialized", elapsed, single)
	}
}

func TestCAS(t *testing.T) {
	m := New(testConfig(4))
	m.Run(4, func(c *CPU) {
		for i := 0; i < 100; i++ {
			for {
				v := c.Read(64)
				if c.CAS(64, v, v+1) {
					break
				}
				c.Spin()
			}
		}
	})
	if got := m.Peek(64); got != 400 {
		t.Errorf("counter = %d, want 400", got)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	const n = 8
	m := New(testConfig(n))
	const lock, counter = Addr(64), Addr(128)
	m.Run(n, func(c *CPU) {
		for i := 0; i < 50; i++ {
			for {
				if c.Read(lock) == 0 && c.CAS(lock, 0, 1) {
					break
				}
				c.Spin()
			}
			v := c.Read(counter)
			c.Tick(20) // widen the critical section
			c.Write(counter, v+1)
			c.Write(lock, 0)
		}
	})
	if got := m.Peek(counter); got != n*50 {
		t.Errorf("counter = %d, want %d (mutual exclusion violated)", got, n*50)
	}
}

func TestPagingFaultsAndResidencyLimit(t *testing.T) {
	cfg := testConfig(1)
	cfg.Paging = PagingConfig{Enabled: true, PageWords: 64, ResidentLimit: 4, TLBEntries: 2}
	m := New(cfg)
	faults := 0
	m.CPU(0).OnPageFault = func() { faults++ }
	m.Run(1, func(c *CPU) {
		// Touch 16 pages round-robin twice: with 4 resident pages and a
		// tiny TLB this must thrash.
		for rep := 0; rep < 2; rep++ {
			for p := int64(0); p < 16; p++ {
				c.Read(Addr(p * 64))
			}
		}
	})
	if faults < 20 {
		t.Errorf("faults = %d, want >= 20 (thrashing)", faults)
	}
	if got := m.ResidentPages(); got > 4 {
		t.Errorf("resident pages = %d, want <= 4", got)
	}
	if m.CPU(0).Counters.PageFaults != int64(faults) {
		t.Errorf("counter mismatch: %d vs %d", m.CPU(0).Counters.PageFaults, faults)
	}
}

func TestNoPagingNoFaults(t *testing.T) {
	m := New(testConfig(2))
	m.Run(2, func(c *CPU) {
		for p := int64(0); p < 64; p++ {
			c.Read(Addr(p * 64))
		}
	})
	if m.CPU(0).Counters.PageFaults != 0 {
		t.Error("page faults with paging disabled")
	}
}

func TestInterruptsFire(t *testing.T) {
	cfg := testConfig(1)
	cfg.Paging.InterruptMean = 1000
	m := New(cfg)
	hits := 0
	m.CPU(0).OnInterrupt = func() { hits++ }
	m.Run(1, func(c *CPU) {
		for i := 0; i < 1000; i++ {
			c.Read(64)
			c.Tick(50)
		}
	})
	if hits < 10 {
		t.Errorf("interrupts = %d, want >= 10", hits)
	}
}

func TestAllocatorDistinctAndZeroed(t *testing.T) {
	m := New(testConfig(1))
	m.Run(1, func(c *CPU) {
		seen := map[Addr]bool{}
		for i := 0; i < 100; i++ {
			a := c.Alloc(5)
			if seen[a] {
				t.Fatalf("allocator returned duplicate address %d", a)
			}
			seen[a] = true
			for j := Addr(0); j < 5; j++ {
				if m.Peek(a+j) != 0 {
					t.Fatal("allocation not zeroed")
				}
				m.Poke(a+j, 1)
			}
		}
	})
}

func TestAllocatorReuseAfterFree(t *testing.T) {
	m := New(testConfig(1))
	m.Run(1, func(c *CPU) {
		a := c.Alloc(8)
		c.Free(a, 8)
		b := c.Alloc(8)
		if a != b {
			t.Errorf("free block not reused: %d then %d", a, b)
		}
	})
}

func TestAllocatorAlignment(t *testing.T) {
	m := New(testConfig(1))
	lw := m.Cfg.LineWords
	m.Run(1, func(c *CPU) {
		c.Alloc(3) // misalign the bump pointer
		for i := 0; i < 10; i++ {
			a := c.AllocAligned(5)
			if int64(a)%lw != 0 {
				t.Errorf("AllocAligned returned %d, not line aligned", a)
			}
		}
	})
}

func TestAllocatorProperty(t *testing.T) {
	// Property: any interleaving of allocations never yields overlapping
	// live blocks.
	type block struct {
		addr Addr
		n    int64
	}
	check := func(sizes []uint8) bool {
		m := New(testConfig(1))
		var live []block
		for _, s := range sizes {
			n := int64(s%32) + 1
			a := m.AllocRaw(n)
			for _, b := range live {
				if a < b.addr+Addr(b.n) && b.addr < a+Addr(n) {
					return false
				}
			}
			live = append(live, block{a, n})
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMonotonicTimeAcrossRuns(t *testing.T) {
	m := New(testConfig(2))
	m.Run(2, func(c *CPU) { c.Tick(500) })
	start := m.Now()
	if start < 500 {
		t.Fatalf("Now() = %d after first run, want >= 500", start)
	}
	e := m.Run(2, func(c *CPU) { c.Tick(100) })
	if e < 100 || e > 200 {
		t.Errorf("second run elapsed = %d, want ~100", e)
	}
}

func TestSetupFastMode(t *testing.T) {
	m := New(testConfig(4))
	m.Setup(func(c *CPU) {
		for i := 0; i < 1000; i++ {
			c.Write(Addr(64+i), uint64(i))
		}
		if c.Now() != 0 {
			t.Error("setup charged virtual time")
		}
	})
	if m.Peek(100) != 36 {
		t.Errorf("setup write lost: %d", m.Peek(100))
	}
}

func TestDeadlineCatchesLivelock(t *testing.T) {
	cfg := testConfig(1)
	cfg.Deadline = 10_000
	m := New(cfg)
	defer func() {
		if recover() == nil {
			t.Error("expected deadline panic")
		}
	}()
	m.Run(1, func(c *CPU) {
		for {
			c.Spin()
		}
	})
}

func TestPanicInBodyPropagates(t *testing.T) {
	m := New(testConfig(4))
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	m.Run(4, func(c *CPU) {
		if c.ID == 2 {
			panic("boom")
		}
		c.Tick(10)
	})
}

func TestLineOf(t *testing.T) {
	m := New(testConfig(1))
	if m.LineOf(0) != 0 || m.LineOf(15) != 0 || m.LineOf(16) != 1 {
		t.Error("LineOf wrong for 16-word lines")
	}
}

func TestAllocatorAlignedReuse(t *testing.T) {
	// Regression: AllocAligned rounds sizes up to whole lines, so the
	// release must go through FreeAligned to land in the same size class.
	// (A Free(3) of an AllocAligned(3) block used to strand it forever —
	// a leak that exhausted small machines under insert/remove churn.)
	m := New(testConfig(1))
	m.Run(1, func(c *CPU) {
		a := c.AllocAligned(3)
		c.FreeAligned(a, 3)
		b := c.AllocAligned(3)
		if a != b {
			t.Errorf("aligned block not reused: %d then %d", a, b)
		}
		// Steady-state churn must not grow the heap (one block may be
		// bump-allocated on the first iteration while b is still live).
		n0 := c.AllocAligned(3)
		c.FreeAligned(n0, 3)
		heap := m.HeapUsed()
		for i := 0; i < 1000; i++ {
			n := c.AllocAligned(3)
			c.FreeAligned(n, 3)
		}
		if m.HeapUsed() != heap {
			t.Errorf("alloc/free churn grew the heap by %d words", m.HeapUsed()-heap)
		}
	})
}
