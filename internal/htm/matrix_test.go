package htm

import (
	"fmt"
	"testing"
	"testing/quick"

	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// TestConflictMatrix checks every combination of (first accessor kind,
// second accessor kind, access types) on one cache line against the
// requester-wins POWER8 semantics. The first accessor performs its access
// and lingers speculating; the second accessor then hits the same line.
func TestConflictMatrix(t *testing.T) {
	type kind int
	const (
		kHTM kind = iota
		kROT
		kNonTx
	)
	names := map[kind]string{kHTM: "HTM", kROT: "ROT", kNonTx: "nonTx"}

	// expectations: does the FIRST accessor survive?
	type testCase struct {
		firstKind   kind
		firstWrite  bool
		secondKind  kind
		secondWrite bool
		survives    bool
	}
	cases := []testCase{
		// Speculative READER first (only HTM tracks reads).
		{kHTM, false, kHTM, false, true},   // concurrent readers fine
		{kHTM, false, kROT, false, true},   // ROT read does not conflict
		{kHTM, false, kNonTx, false, true}, // non-tx read fine
		{kHTM, false, kHTM, true, false},   // tx write kills tx reader
		{kHTM, false, kROT, true, false},   // ROT write kills tx reader
		{kHTM, false, kNonTx, true, false}, // non-tx write kills tx reader
		// ROT "reader" first: loads are untracked, nothing can kill via reads.
		{kROT, false, kHTM, true, true},
		{kROT, false, kNonTx, true, true},
		// Speculative WRITER first: any second access kills it.
		{kHTM, true, kHTM, false, false},
		{kHTM, true, kHTM, true, false},
		{kHTM, true, kROT, false, false},
		{kHTM, true, kROT, true, false},
		{kHTM, true, kNonTx, false, false},
		{kHTM, true, kNonTx, true, false},
		{kROT, true, kHTM, false, false},
		{kROT, true, kHTM, true, false},
		{kROT, true, kROT, true, false},
		{kROT, true, kNonTx, false, false},
		{kROT, true, kNonTx, true, false},
	}

	for _, tc := range cases {
		name := fmt.Sprintf("%s-%s_then_%s-%s", names[tc.firstKind], rw(tc.firstWrite), names[tc.secondKind], rw(tc.secondWrite))
		t.Run(name, func(t *testing.T) {
			s := newSys(2)
			line := addr(0)
			var st0 Status
			st0.OK = true
			s.M.Run(2, func(c *machine.CPU) {
				th := s.Thread(c.ID)
				if c.ID == 0 {
					if tc.firstKind == kNonTx {
						t.Fatal("first accessor must speculate")
					}
					st0 = th.Try(tc.firstKind == kROT, func() {
						if tc.firstWrite {
							th.Store(line, 1)
						} else {
							th.Load(line)
						}
						c.Tick(10_000) // linger while the second accessor hits
						th.Load(addr(1))
						if tc.firstKind == kROT {
							// ROT loads are no doom-check points for
							// self; force one via a store.
							th.Store(addr(1), 1)
						}
					})
				} else {
					c.Tick(2_000)
					switch tc.secondKind {
					case kNonTx:
						if tc.secondWrite {
							th.Store(line, 2)
						} else {
							th.Load(line)
						}
					default:
						th.Try(tc.secondKind == kROT, func() {
							if tc.secondWrite {
								th.Store(line, 2)
							} else {
								th.Load(line)
							}
						})
					}
				}
			})
			if st0.OK != tc.survives {
				t.Errorf("first accessor survived=%v, want %v (cause %v)", st0.OK, tc.survives, st0.Cause)
			}
		})
	}
}

func rw(w bool) string {
	if w {
		return "W"
	}
	return "R"
}

// TestDirectoryCleanAfterEveryOutcome verifies no speculative registration
// leaks after commits, aborts, and explicit aborts — a leaked reader bit
// or writer pointer would doom future unrelated transactions.
func TestDirectoryCleanAfterEveryOutcome(t *testing.T) {
	s := newSys(2)
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		for i := 0; i < 50; i++ {
			th.Try(c.Intn(2) == 0, func() {
				for j := 0; j < 4; j++ {
					a := addr(c.Intn(6))
					if c.Intn(2) == 0 {
						th.Load(a)
					} else {
						th.Store(a, 1)
					}
				}
				if c.Intn(3) == 0 {
					th.Abort(stats.AbortExplicit)
				}
			})
		}
	})
	// After the run, a fresh transaction touching every line must commit.
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		st := th.Try(false, func() {
			for j := 0; j < 6; j++ {
				th.Store(addr(j), 9)
			}
		})
		if !st.OK {
			t.Errorf("directory left dirty: %+v", st)
		}
	})
}

// TestSerializabilityProperty: concurrent random transactions over a small
// key space; committed increments must equal the final sum (transactions
// each add 1 to a random cell; atomicity means no lost updates).
func TestSerializabilityProperty(t *testing.T) {
	check := func(seed uint16) bool {
		m := machine.New(machine.Config{CPUs: 4, MemWords: 1 << 16, Seed: uint64(seed) + 1})
		s := NewSystem(m, Config{})
		committed := make([]int64, 4)
		s.M.Run(4, func(c *machine.CPU) {
			th := s.Thread(c.ID)
			for i := 0; i < 20; i++ {
				cell := addr(c.Intn(3))
				for attempt := 0; ; attempt++ {
					st := th.Try(false, func() {
						th.Store(cell, th.Load(cell)+1)
					})
					if st.OK {
						committed[c.ID]++
						break
					}
					sh := attempt
					if sh > 8 {
						sh = 8
					}
					c.SpinFor(1 + c.Intn(1<<sh))
				}
			}
		})
		var total, sum int64
		for _, n := range committed {
			total += n
		}
		for j := 0; j < 3; j++ {
			sum += int64(s.M.Peek(addr(j)))
		}
		return total == 80 && sum == total
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestSuspendedStoresSurviveAbort: stores issued while suspended are
// non-transactional and must persist even when the surrounding transaction
// aborts (this is what lets Algorithm 1 release the lock early).
func TestSuspendedStoresSurviveAbort(t *testing.T) {
	s := newSys(2)
	var st Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			st = th.Try(false, func() {
				th.Store(addr(0), 1) // speculative
				th.Suspend()
				th.Store(addr(1), 2) // non-transactional
				c.Tick(10_000)
				th.Resume() // doomed by CPU 1 below
			})
		} else {
			c.Tick(2_000)
			th.Load(addr(0))
		}
	})
	if st.OK {
		t.Fatal("expected abort")
	}
	if s.M.Peek(addr(0)) != 0 {
		t.Error("speculative store leaked")
	}
	if s.M.Peek(addr(1)) != 2 {
		t.Error("suspended (non-transactional) store lost")
	}
}

// TestAbortInsideSuspendIsDeferred: a conflict that lands while suspended
// must not fire during suspended execution, only at Resume.
func TestAbortInsideSuspendIsDeferred(t *testing.T) {
	s := newSys(2)
	progressed := false
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			th.Try(false, func() {
				th.Store(addr(0), 1)
				th.Suspend()
				c.Tick(5_000) // conflict arrives here
				// Suspended execution continues regardless of the doom:
				th.Load(addr(2))
				th.Store(addr(3), 7)
				progressed = true
				th.Resume()
			})
		} else {
			c.Tick(2_000)
			th.Load(addr(0))
		}
	})
	if !progressed {
		t.Error("suspended execution was cut short before Resume")
	}
	if s.M.Peek(addr(3)) != 7 {
		t.Error("suspended store lost")
	}
}

// TestROTvsROTWriteConflict: two ROTs writing the same line must conflict
// (store sets are tracked even for ROTs).
func TestROTvsROTWriteConflict(t *testing.T) {
	s := newSys(2)
	var st0, st1 Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			st0 = th.Try(true, func() {
				th.Store(addr(0), 1)
				c.Tick(10_000)
				th.Store(addr(1), 1)
			})
		} else {
			c.Tick(2_000)
			st1 = th.Try(true, func() { th.Store(addr(0), 2) })
		}
	})
	if st0.OK {
		t.Error("first ROT should lose the write-write race")
	}
	if st0.Cause != stats.AbortROTConflict {
		t.Errorf("cause = %v", st0.Cause)
	}
	if !st1.OK {
		t.Error("second ROT should commit")
	}
}
