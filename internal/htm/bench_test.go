package htm

import (
	"testing"

	"hrwle/internal/machine"
)

func benchSys(cpus int) *System {
	m := machine.New(machine.Config{CPUs: cpus, MemWords: 1 << 16, Seed: 1, Deadline: 1 << 62})
	return NewSystem(m, Config{})
}

// BenchmarkTxCommitSmall measures an uncontended 4-store transaction.
func BenchmarkTxCommitSmall(b *testing.B) {
	s := benchSys(1)
	b.ResetTimer()
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		for i := 0; i < b.N; i++ {
			th.Try(false, func() {
				for j := 0; j < 4; j++ {
					th.Store(addr(j), uint64(i))
				}
			})
		}
	})
}

// BenchmarkROTCommitReadHeavy measures the ROT advantage: 48 untracked
// loads plus one store.
func BenchmarkROTCommitReadHeavy(b *testing.B) {
	s := benchSys(1)
	b.ResetTimer()
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		for i := 0; i < b.N; i++ {
			th.Try(true, func() {
				for j := 0; j < 48; j++ {
					th.Load(addr(j))
				}
				th.Store(addr(0), uint64(i))
			})
		}
	})
}

// BenchmarkNonTxLoad measures the uninstrumented-read fast path (what
// RW-LE readers pay per access).
func BenchmarkNonTxLoad(b *testing.B) {
	s := benchSys(1)
	b.ResetTimer()
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		for i := 0; i < b.N; i++ {
			th.Load(addr(i % 8))
		}
	})
}

// BenchmarkConflictAbort measures the doom/rollback path under constant
// write-write conflicts.
func BenchmarkConflictAbort(b *testing.B) {
	s := benchSys(2)
	iters := b.N/2 + 1
	b.ResetTimer()
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		for i := 0; i < iters; i++ {
			th.Try(false, func() {
				th.Store(addr(0), uint64(i))
				c.Tick(50)
				th.Load(addr(1))
			})
		}
	})
}
