package htm

import (
	"testing"

	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

func newSys(cpus int) *System {
	m := machine.New(machine.Config{CPUs: cpus, MemWords: 1 << 16, Seed: 7})
	return NewSystem(m, Config{})
}

// addr returns the base address of cache line i (16-word lines).
func addr(i int) machine.Addr { return machine.Addr(16 + i*16) }

func TestCommitPublishes(t *testing.T) {
	s := newSys(1)
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		st := th.Try(false, func() {
			th.Store(addr(0), 42)
			if th.Load(addr(0)) != 42 {
				t.Error("tx does not see own store")
			}
		})
		if !st.OK {
			t.Fatalf("commit failed: %+v", st)
		}
	})
	if s.M.Peek(addr(0)) != 42 {
		t.Error("committed store not visible")
	}
}

func TestAbortDiscards(t *testing.T) {
	s := newSys(1)
	s.M.Poke(addr(0), 1)
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		st := th.Try(false, func() {
			th.Store(addr(0), 99)
			th.Abort(stats.AbortExplicit)
		})
		if st.OK {
			t.Error("expected abort")
		}
		if st.Cause != stats.AbortExplicit {
			t.Errorf("cause = %v", st.Cause)
		}
	})
	if s.M.Peek(addr(0)) != 1 {
		t.Error("aborted store leaked to memory")
	}
	if s.Thread(0).InTx() {
		t.Error("still in tx after abort")
	}
}

func TestSpeculativeStoreHiddenAndNonTxReadDoomsWriter(t *testing.T) {
	s := newSys(2)
	s.M.Poke(addr(0), 1)
	var seen uint64
	var st Status
	s.M.Run(2, func(c *machine.CPU) {
		if c.ID == 0 {
			th := s.Thread(0)
			st = th.Try(false, func() {
				th.Store(addr(0), 5)
				c.Tick(10_000) // stay speculative while CPU 1 reads
				th.Load(addr(1))
			})
		} else {
			c.Tick(2_000)
			seen = s.Thread(1).Load(addr(0)) // non-tx read mid-speculation
		}
	})
	if seen != 1 {
		t.Errorf("non-tx reader saw speculative value %d", seen)
	}
	if st.OK {
		t.Error("writer should have been doomed by the non-tx read")
	}
	if st.Cause != stats.AbortConflictNonTx {
		t.Errorf("cause = %v, want HTM non-tx", st.Cause)
	}
}

func TestTxTxWriteWriteConflictRequesterWins(t *testing.T) {
	s := newSys(2)
	var st0, st1 Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			st0 = th.Try(false, func() {
				th.Store(addr(0), 10)
				c.Tick(10_000)
				th.Load(addr(1)) // doom check point
			})
		} else {
			c.Tick(2_000)
			st1 = th.Try(false, func() {
				th.Store(addr(0), 20)
			})
		}
	})
	if st0.OK {
		t.Error("first writer should abort (requester wins)")
	}
	if st0.Cause != stats.AbortConflictTx {
		t.Errorf("cause = %v, want HTM tx", st0.Cause)
	}
	if !st1.OK {
		t.Errorf("second writer should commit: %+v", st1)
	}
	if s.M.Peek(addr(0)) != 20 {
		t.Errorf("memory = %d, want 20", s.M.Peek(addr(0)))
	}
}

func TestTxStoreDoomsTxReader(t *testing.T) {
	s := newSys(2)
	var reader, writer Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			reader = th.Try(false, func() {
				th.Load(addr(0))
				c.Tick(10_000)
				th.Load(addr(1))
			})
		} else {
			c.Tick(2_000)
			writer = th.Try(false, func() { th.Store(addr(0), 9) })
		}
	})
	if reader.OK {
		t.Error("tx reader should be doomed by tx writer")
	}
	if reader.Cause != stats.AbortConflictTx {
		t.Errorf("cause = %v", reader.Cause)
	}
	if !writer.OK {
		t.Error("writer should commit")
	}
}

func TestTxLoadDoomsSpeculativeWriter(t *testing.T) {
	s := newSys(2)
	var writer, reader Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			writer = th.Try(false, func() {
				th.Store(addr(0), 9)
				c.Tick(10_000)
				th.Load(addr(1))
			})
		} else {
			c.Tick(2_000)
			reader = th.Try(false, func() { th.Load(addr(0)) })
		}
	})
	if writer.OK {
		t.Error("speculative writer should be doomed by tx load")
	}
	if !reader.OK {
		t.Error("reader should commit")
	}
}

func TestNonTxStoreDoomsReadersAndWriter(t *testing.T) {
	s := newSys(3)
	var stR, stW Status
	s.M.Run(3, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		switch c.ID {
		case 0:
			stR = th.Try(false, func() {
				th.Load(addr(0))
				c.Tick(10_000)
				th.Load(addr(1))
			})
		case 1:
			stW = th.Try(false, func() {
				th.Store(addr(2), 1)
				c.Tick(10_000)
				th.Load(addr(1))
			})
		case 2:
			c.Tick(2_000)
			th.Store(addr(0), 7) // non-tx: dooms reader
			th.Store(addr(2), 8) // non-tx: dooms writer
		}
	})
	if stR.OK || stR.Cause != stats.AbortConflictNonTx {
		t.Errorf("reader: %+v, want non-tx conflict abort", stR)
	}
	if stW.OK || stW.Cause != stats.AbortConflictNonTx {
		t.Errorf("writer: %+v, want non-tx conflict abort", stW)
	}
	if s.M.Peek(addr(2)) != 8 {
		t.Error("non-tx store lost")
	}
}

func TestROTLoadsUntracked(t *testing.T) {
	// A non-tx store to a location a ROT has read must NOT doom the ROT —
	// ROTs do not track loads. The same scenario as a regular transaction
	// must abort.
	scenario := func(rot bool) Status {
		s := newSys(2)
		var st Status
		s.M.Run(2, func(c *machine.CPU) {
			th := s.Thread(c.ID)
			if c.ID == 0 {
				st = th.Try(rot, func() {
					th.Load(addr(0))
					c.Tick(10_000)
					th.Store(addr(1), 1)
				})
			} else {
				c.Tick(2_000)
				th.Store(addr(0), 7)
			}
		})
		return st
	}
	if st := scenario(true); !st.OK {
		t.Errorf("ROT aborted by store to read location: %+v", st)
	}
	if st := scenario(false); st.OK {
		t.Error("HTM tx survived store to read location")
	}
}

func TestROTStoreConflictsTracked(t *testing.T) {
	s := newSys(2)
	var st Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			st = th.Try(true, func() {
				th.Store(addr(0), 1)
				c.Tick(10_000)
				th.Store(addr(1), 2)
			})
		} else {
			c.Tick(2_000)
			s.Thread(1).Load(addr(0)) // non-tx read of ROT's write set
		}
	})
	if st.OK {
		t.Error("ROT should abort when its write set is read")
	}
	if st.Cause != stats.AbortROTConflict {
		t.Errorf("cause = %v, want ROT conflicts", st.Cause)
	}
}

func TestReadCapacityHTMOnly(t *testing.T) {
	m := machine.New(machine.Config{CPUs: 1, MemWords: 1 << 16, Seed: 7})
	s := NewSystem(m, Config{ReadCapLines: 8, WriteCapLines: 8})
	var stHTM, stROT Status
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		stHTM = th.Try(false, func() {
			for i := 0; i < 20; i++ {
				th.Load(addr(i))
			}
		})
		stROT = th.Try(true, func() {
			for i := 0; i < 20; i++ {
				th.Load(addr(i))
			}
			th.Store(addr(0), 1)
		})
	})
	if stHTM.OK || stHTM.Cause != stats.AbortCapacity || !stHTM.Persistent {
		t.Errorf("HTM: %+v, want persistent capacity abort", stHTM)
	}
	if !stROT.OK {
		t.Errorf("ROT hit read capacity: %+v", stROT)
	}
}

func TestWriteCapacity(t *testing.T) {
	m := machine.New(machine.Config{CPUs: 1, MemWords: 1 << 16, Seed: 7})
	s := NewSystem(m, Config{ReadCapLines: 64, WriteCapLines: 4})
	var stHTM, stROT Status
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		stHTM = th.Try(false, func() {
			for i := 0; i < 10; i++ {
				th.Store(addr(i), 1)
			}
		})
		stROT = th.Try(true, func() {
			for i := 0; i < 10; i++ {
				th.Store(addr(i), 1)
			}
		})
	})
	if stHTM.OK || stHTM.Cause != stats.AbortCapacity {
		t.Errorf("HTM: %+v", stHTM)
	}
	if stROT.OK || stROT.Cause != stats.AbortROTCapacity {
		t.Errorf("ROT: %+v, want ROT capacity", stROT)
	}
}

func TestSameLineCountsOnce(t *testing.T) {
	m := machine.New(machine.Config{CPUs: 1, MemWords: 1 << 16, Seed: 7})
	s := NewSystem(m, Config{ReadCapLines: 2, WriteCapLines: 2})
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		st := th.Try(false, func() {
			for i := 0; i < 100; i++ {
				th.Load(addr(0) + machine.Addr(i%16))
				th.Store(addr(1)+machine.Addr(i%16), 1)
			}
		})
		if !st.OK {
			t.Errorf("same-line accesses tripped capacity: %+v", st)
		}
	})
}

func TestSuspendResumeCleanPath(t *testing.T) {
	s := newSys(1)
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		st := th.Try(false, func() {
			th.Store(addr(0), 5)
			th.Suspend()
			// Non-transactional side effects while suspended hit memory
			// immediately and survive even if the tx later aborts.
			th.Store(addr(1), 77)
			if th.Load(addr(0)) == 5 {
				t.Error("suspended load observed own speculative store")
			}
			th.Resume()
		})
		if !st.OK {
			t.Fatalf("suspend/resume tx failed: %+v", st)
		}
	})
	if s.M.Peek(addr(0)) != 5 || s.M.Peek(addr(1)) != 77 {
		t.Error("stores lost")
	}
}

func TestConflictWhileSuspendedAbortsAtResume(t *testing.T) {
	s := newSys(2)
	var st Status
	resumed := false
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			st = th.Try(false, func() {
				th.Store(addr(0), 5)
				th.Suspend()
				c.Tick(10_000) // reader conflicts during this window
				if !th.Doomed() {
					t.Error("tcheck should report doom while suspended")
				}
				th.Resume()
				resumed = true
			})
		} else {
			c.Tick(2_000)
			th.Load(addr(0)) // non-tx read of suspended writer's write set
		}
	})
	if st.OK {
		t.Error("suspended writer must abort at resume")
	}
	if resumed {
		t.Error("control continued past Resume after doom")
	}
	if s.M.Peek(addr(0)) != 0 {
		t.Error("speculative store leaked")
	}
}

func TestSuspendedWriterCommitsAfterQuietWindow(t *testing.T) {
	s := newSys(2)
	var st Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			st = th.Try(false, func() {
				th.Store(addr(0), 5)
				th.Suspend()
				c.Tick(10_000)
				th.Resume()
			})
		} else {
			c.Tick(2_000)
			th.Load(addr(5)) // unrelated line: no conflict
		}
	})
	if !st.OK {
		t.Errorf("unconflicted suspended writer aborted: %+v", st)
	}
	if s.M.Peek(addr(0)) != 5 {
		t.Error("commit lost")
	}
}

func TestEagerLockSubscription(t *testing.T) {
	// A tx that Loads a lock word is doomed when another thread CASes it.
	s := newSys(2)
	lock := addr(9)
	var st Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			st = th.Try(false, func() {
				if th.Load(lock) != 0 {
					th.Abort(stats.AbortLockBusy)
				}
				c.Tick(10_000)
				th.Load(addr(1))
			})
		} else {
			c.Tick(2_000)
			if !th.CAS(lock, 0, 1) {
				t.Error("CAS failed")
			}
		}
	})
	if st.OK {
		t.Error("subscribed tx must abort when the lock is acquired")
	}
	if st.Cause != stats.AbortConflictNonTx {
		t.Errorf("cause = %v", st.Cause)
	}
}

func TestInterruptAbortsTx(t *testing.T) {
	m := machine.New(machine.Config{
		CPUs: 1, MemWords: 1 << 16, Seed: 7,
		Paging: machine.PagingConfig{InterruptMean: 500},
	})
	s := NewSystem(m, Config{})
	aborted := false
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		for i := 0; i < 20 && !aborted; i++ {
			st := th.Try(false, func() {
				for j := 0; j < 30; j++ {
					th.Load(addr(j))
					c.Tick(100)
				}
			})
			if !st.OK && st.Cause == stats.AbortConflictNonTx {
				aborted = true
			}
		}
	})
	if !aborted {
		t.Error("long transactions never hit a timer interrupt")
	}
}

func TestPageFaultAbortsTx(t *testing.T) {
	m := machine.New(machine.Config{
		CPUs: 1, MemWords: 1 << 16, Seed: 7,
		Paging: machine.PagingConfig{Enabled: true, PageWords: 64, ResidentLimit: 2, TLBEntries: 2},
	})
	s := NewSystem(m, Config{})
	var st Status
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		st = th.Try(false, func() {
			for p := 0; p < 8; p++ {
				th.Load(machine.Addr(p * 64))
			}
		})
	})
	if st.OK || st.Cause != stats.AbortConflictNonTx {
		t.Errorf("tx touching non-resident pages: %+v, want non-tx abort", st)
	}
}

func TestConcurrentCountersSerializable(t *testing.T) {
	const n, iters = 8, 50
	s := newSys(n)
	ctr := addr(3)
	s.M.Run(n, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		for i := 0; i < iters; i++ {
			// Exponential backoff, as any sane HTM retry loop uses:
			// without it this workload livelocks on real hardware too.
			for attempt := 0; ; attempt++ {
				st := th.Try(false, func() {
					v := th.Load(ctr)
					th.Store(ctr, v+1)
				})
				if st.OK {
					break
				}
				shift := attempt
				if shift > 10 {
					shift = 10
				}
				window := 1 << shift
				for k := 0; k < 1+c.Intn(window); k++ {
					c.Spin()
				}
			}
		}
	})
	if got := s.M.Peek(ctr); got != n*iters {
		t.Errorf("counter = %d, want %d (lost updates)", got, n*iters)
	}
}

func TestFigure1MixedSnapshotWithoutQuiescence(t *testing.T) {
	// Reproduce the paper's Figure 1 hazard: a non-transactional reader
	// that reads x before a writer's tx and y after its commit observes a
	// mixed snapshot. This is the anomaly RW-LE's quiescence exists to
	// prevent — the substrate must therefore exhibit it.
	s := newSys(2)
	x, y := addr(0), addr(1)
	var rx, ry uint64
	var st Status
	s.M.Run(2, func(c *machine.CPU) {
		th := s.Thread(c.ID)
		if c.ID == 0 {
			rx = th.Load(x)
			c.Tick(20_000)
			ry = th.Load(y)
		} else {
			c.Tick(2_000)
			st = th.Try(false, func() {
				th.Store(x, 1)
				th.Store(y, 1)
			})
		}
	})
	if !st.OK {
		t.Fatalf("writer aborted: %+v", st)
	}
	if rx != 0 || ry != 1 {
		t.Errorf("expected mixed snapshot (0,1), got (%d,%d)", rx, ry)
	}
}

func TestStatsCounted(t *testing.T) {
	s := newSys(1)
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		th.Try(false, func() { th.Store(addr(0), 1) })
		th.Try(false, func() { th.Abort(stats.AbortExplicit) })
	})
	st := &s.Thread(0).St
	if st.TxStarts != 2 {
		t.Errorf("TxStarts = %d", st.TxStarts)
	}
	if st.Aborts[stats.AbortExplicit] != 1 {
		t.Errorf("aborts = %v", st.Aborts)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, [stats.NumAbortCauses]int64) {
		s := newSys(4)
		var aborts [stats.NumAbortCauses]int64
		el := s.M.Run(4, func(c *machine.CPU) {
			th := s.Thread(c.ID)
			for i := 0; i < 40; i++ {
				th.Try(false, func() {
					a := addr(c.Intn(4))
					th.Store(a, th.Load(a)+1)
				})
			}
		})
		for _, th := range s.Threads() {
			for i, v := range th.St.Aborts {
				aborts[i] += v
			}
		}
		return el, aborts
	}
	e1, a1 := run()
	e2, a2 := run()
	if e1 != e2 || a1 != a2 {
		t.Errorf("nondeterministic: (%d %v) vs (%d %v)", e1, a1, e2, a2)
	}
}
