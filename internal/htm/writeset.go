package htm

import "hrwle/internal/machine"

// writeSet is the transactional store buffer: an open-addressed hash table
// from word address to buffered value. It replaces a Go map on the
// simulator's hottest path — every transactional store and every load that
// might hit the store buffer. Two properties matter:
//
//   - reset is O(1): slots are validated by an epoch stamp, so starting the
//     next transaction is a counter increment instead of a map-clearing
//     loop, and the table stays warm in the host cache across attempts;
//   - insertion order is recorded, so commit publishes stores in program
//     order and the simulation stays deterministic.
//
// The table grows geometrically and never shrinks; a thread's steady-state
// footprint is bounded by the HTM write-capacity budget (WriteCapLines ×
// LineWords words), so the table stops growing after the first few
// transactions.
type writeSet struct {
	addrs []machine.Addr
	vals  []uint64
	stamp []uint32
	order []machine.Addr

	epoch uint32
	shift uint // 64 - log2(len(addrs)), for multiplicative hashing
	n     int
}

const writeSetMinSlots = 256

func (w *writeSet) init() {
	w.addrs = make([]machine.Addr, writeSetMinSlots)
	w.vals = make([]uint64, writeSetMinSlots)
	w.stamp = make([]uint32, writeSetMinSlots)
	w.shift = 64
	for s := 1; s < writeSetMinSlots; s <<= 1 {
		w.shift--
	}
	w.epoch = 1
}

// reset discards all entries in O(1) by advancing the epoch.
func (w *writeSet) reset() {
	w.n = 0
	w.order = w.order[:0]
	w.epoch++
	if w.epoch == 0 { // stamp space wrapped: invalidate every slot the slow way
		for i := range w.stamp {
			w.stamp[i] = 0
		}
		w.epoch = 1
	}
}

func (w *writeSet) slot(a machine.Addr) int {
	return int(uint64(a) * 0x9e3779b97f4a7c15 >> w.shift)
}

// get returns the buffered value for a, if any.
func (w *writeSet) get(a machine.Addr) (uint64, bool) {
	mask := len(w.addrs) - 1
	for i := w.slot(a); ; i = (i + 1) & mask {
		if w.stamp[i] != w.epoch {
			return 0, false
		}
		if w.addrs[i] == a {
			return w.vals[i], true
		}
	}
}

// put buffers the store a←v, appending a to the insertion order on first
// write to that address.
func (w *writeSet) put(a machine.Addr, v uint64) {
	if 2*(w.n+1) > len(w.addrs) {
		w.grow()
	}
	mask := len(w.addrs) - 1
	for i := w.slot(a); ; i = (i + 1) & mask {
		if w.stamp[i] != w.epoch {
			w.stamp[i] = w.epoch
			w.addrs[i] = a
			w.vals[i] = v
			w.n++
			w.order = append(w.order, a)
			return
		}
		if w.addrs[i] == a {
			w.vals[i] = v
			return
		}
	}
}

// grow doubles the table and re-inserts the live entries.
func (w *writeSet) grow() {
	oldAddrs, oldVals, oldStamp := w.addrs, w.vals, w.stamp
	size := 2 * len(oldAddrs)
	w.addrs = make([]machine.Addr, size)
	w.vals = make([]uint64, size)
	w.stamp = make([]uint32, size)
	w.shift--
	mask := size - 1
	for j, st := range oldStamp {
		if st != w.epoch {
			continue
		}
		a := oldAddrs[j]
		i := w.slot(a)
		for w.stamp[i] == w.epoch {
			i = (i + 1) & mask
		}
		w.stamp[i] = w.epoch
		w.addrs[i] = a
		w.vals[i] = oldVals[j]
	}
}
