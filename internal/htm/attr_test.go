package htm

import (
	"testing"

	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

func TestPackAbortAuxRoundTrip(t *testing.T) {
	for cause := stats.AbortCause(0); int(cause) < stats.NumAbortCauses; cause++ {
		for _, killer := range []int{-1, 0, 1, 63, 126} {
			c, k := UnpackAbortAux(PackAbortAux(cause, killer))
			if c != cause || k != killer {
				t.Errorf("roundtrip(%v,%d) = (%v,%d)", cause, killer, c, k)
			}
		}
	}
}

// TestDoomAndAbortCarryKillerAndAddr reproduces the paper's Fig. 2
// causality: an uninstrumented (non-tx) reader arrives at a line the
// speculating writer has stored to, dooming it. Both the EvTxDoom and the
// later EvTxAbort must attribute the reader's CPU as the killer and carry
// the conflicting address.
func TestDoomAndAbortCarryKillerAndAddr(t *testing.T) {
	s := newSys(2)
	s.M.Poke(addr(0), 1)
	log := &machine.LogTracer{}
	s.M.SetTracer(log)
	s.M.Run(2, func(c *machine.CPU) {
		if c.ID == 0 {
			th := s.Thread(0)
			th.Try(false, func() {
				th.Store(addr(0), 5)
				c.Tick(10_000) // stay speculative while CPU 1 reads
				th.Load(addr(1))
			})
		} else {
			c.Tick(2_000)
			s.Thread(1).Load(addr(0)) // non-tx read mid-speculation
		}
	})

	var doom, abort *machine.Event
	for i := range log.Events {
		e := &log.Events[i]
		switch e.Kind {
		case machine.EvTxDoom:
			doom = e
		case machine.EvTxAbort:
			abort = e
		}
	}
	if doom == nil || abort == nil {
		t.Fatalf("missing events: doom=%v abort=%v", doom, abort)
	}
	for name, e := range map[string]*machine.Event{"doom": doom, "abort": abort} {
		cause, killer := UnpackAbortAux(e.Aux)
		if cause != stats.AbortConflictNonTx {
			t.Errorf("%s cause = %v, want non-tx conflict", name, cause)
		}
		if killer != 1 {
			t.Errorf("%s killer = %d, want CPU 1 (the reader)", name, killer)
		}
		if e.Addr != addr(0) {
			t.Errorf("%s addr = %d, want %d", name, e.Addr, addr(0))
		}
		if e.CPU != 0 {
			t.Errorf("%s victim CPU = %d, want 0 (the writer)", name, e.CPU)
		}
	}
	if doom.Time > abort.Time {
		t.Error("doom recorded after the abort it explains")
	}
}

// TestEnvironmentAbortHasNoKiller checks that aborts with no aggressor CPU
// (here an explicit abort) are attributed to killer -1 with no address.
func TestEnvironmentAbortHasNoKiller(t *testing.T) {
	s := newSys(1)
	log := &machine.LogTracer{}
	s.M.SetTracer(log)
	s.M.Run(1, func(c *machine.CPU) {
		th := s.Thread(0)
		th.Try(false, func() {
			th.Store(addr(0), 9)
			th.Abort(stats.AbortExplicit)
		})
	})
	var abort *machine.Event
	for i := range log.Events {
		if log.Events[i].Kind == machine.EvTxAbort {
			abort = &log.Events[i]
		}
	}
	if abort == nil {
		t.Fatal("no abort event")
	}
	cause, killer := UnpackAbortAux(abort.Aux)
	if cause != stats.AbortExplicit {
		t.Errorf("cause = %v, want explicit", cause)
	}
	if killer != -1 {
		t.Errorf("killer = %d, want -1 (no aggressor)", killer)
	}
	if abort.Addr != 0 {
		t.Errorf("addr = %d, want 0", abort.Addr)
	}
}
