// Package htm implements a software model of POWER8 best-effort hardware
// transactional memory on top of the machine simulator, including the two
// micro-architectural features RW-LE depends on:
//
//   - rollback-only transactions (ROTs), which track stores but not loads —
//     no read-set capacity aborts, no read-conflict aborts, and an
//     aggregate (atomic) store appearance at commit;
//   - suspend/resume, which lets a transaction execute non-transactional
//     accesses in the middle of speculation; conflicts arriving while
//     suspended doom the transaction and the abort materializes at resume.
//
// Conflict detection is eager, requester-wins, at cache-line granularity,
// mirroring a coherence-protocol implementation: the thread performing an
// access aborts whichever speculating transaction holds the line in an
// incompatible state. Non-transactional reads are invisible to the
// directory — exactly the property that forces RW-LE's quiescence scheme.
//
// Transactions abort by panicking with an internal signal that Try
// recovers, mimicking hardware's control transfer to the tbegin failure
// handler.
package htm

import (
	"fmt"

	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// Mode is a thread's speculation state.
type Mode int

const (
	// ModeNone: not speculating; accesses are non-transactional.
	ModeNone Mode = iota
	// ModeHTM: inside a regular transaction (loads and stores tracked).
	ModeHTM
	// ModeROT: inside a rollback-only transaction (only stores tracked).
	ModeROT
)

// Status is the outcome of a transaction attempt, the software analogue of
// the POWER8 TEXASR failure code.
type Status struct {
	// OK reports whether the transaction committed.
	OK bool
	// Cause classifies the abort when !OK.
	Cause stats.AbortCause
	// Persistent reports whether retrying the same path is futile
	// (capacity and explicit-persistent aborts).
	Persistent bool
}

// abortSignal is the panic payload used to unwind to Try on abort.
type abortSignal struct {
	cause      stats.AbortCause
	persistent bool
}

// IsAbortSignal reports whether a recovered panic value is the HTM abort
// signal. A recover() on any path that can run inside a transaction must
// use this (or an equivalent type assertion) to classify what it caught
// and re-panic the abort signal rather than swallow it: the signal is how
// speculative execution unwinds to Try, and it carries a pooled payload
// that must not be retained past the handler. The simlint abortflow
// analyzer enforces this discipline.
func IsAbortSignal(r any) bool {
	_, ok := r.(*abortSignal)
	return ok
}

// Config holds the HTM capacity budget.
type Config struct {
	// ReadCapLines is the read-set budget in cache lines (default 64,
	// i.e. 8 KiB of 128 B lines — the POWER8 budget).
	ReadCapLines int
	// WriteCapLines is the write-set budget in cache lines (default 64).
	WriteCapLines int
	// UnsafeLoseDoomAtResume is a checker-validation knob: it models
	// defective hardware that discards conflicts recorded while the
	// transaction was suspended instead of materializing them at resume.
	// RW-LE's safety argument (paper §3, Fig. 2) depends on exactly those
	// dooms, so internal/check must find a violation with this set. Never
	// enable it outside checker self-tests.
	UnsafeLoseDoomAtResume bool
}

func (c *Config) applyDefaults() {
	if c.ReadCapLines == 0 {
		c.ReadCapLines = 64
	}
	if c.WriteCapLines == 0 {
		c.WriteCapLines = 64
	}
}

// dirEntry is the per-cache-line conflict-directory state: at most one
// speculative writer and a bitmap of speculative readers.
type dirEntry struct {
	writer  *Thread
	readers [4]uint64
}

func (e *dirEntry) hasReader(id int) bool { return e.readers[id>>6]&(1<<(uint(id)&63)) != 0 }
func (e *dirEntry) addReader(id int)      { e.readers[id>>6] |= 1 << (uint(id) & 63) }
func (e *dirEntry) delReader(id int)      { e.readers[id>>6] &^= 1 << (uint(id) & 63) }
func (e *dirEntry) anyOtherReader(id int) bool {
	r := e.readers
	r[id>>6] &^= 1 << (uint(id) & 63)
	return r[0]|r[1]|r[2]|r[3] != 0
}

// System is an HTM-capable simulated machine: the machine plus the conflict
// directory and one Thread per CPU.
type System struct {
	M       *machine.Machine
	Cfg     Config
	dir     []dirEntry
	threads []*Thread

	// traceAccesses gates EvRead/EvWrite emission from Thread.Load,
	// LoadStream and Store. Default event streams deliberately omit
	// HTM-level data accesses (they would dominate every trace and golden
	// fingerprint); the simsan race sanitizer needs them, so it flips this
	// on for sanitized runs only. Emission charges no virtual time, so
	// sim_cycles are identical either way.
	traceAccesses bool
}

// NewSystem wraps a machine with HTM support.
func NewSystem(m *machine.Machine, cfg Config) *System {
	cfg.applyDefaults()
	s := &System{M: m, Cfg: cfg}
	s.dir = make([]dirEntry, m.NumLines())
	s.threads = make([]*Thread, m.Cfg.CPUs)
	for i := range s.threads {
		s.threads[i] = newThread(s, m.CPU(i))
	}
	return s
}

// Thread returns the HTM thread bound to CPU id.
func (s *System) Thread(id int) *Thread { return s.threads[id] }

// SetTraceAccesses enables (or disables) EvRead/EvWrite emission from
// Thread.Load/LoadStream/Store, so a tracer sees every HTM-level data
// access. Off by default: the extra events change no timing but would
// change every recorded event stream, so only sanitized runs enable it.
func (s *System) SetTraceAccesses(on bool) { s.traceAccesses = on }

// TraceAccesses reports whether HTM-level data accesses are being emitted.
func (s *System) TraceAccesses() bool { return s.traceAccesses }

// Threads returns all HTM threads.
func (s *System) Threads() []*Thread { return s.threads }

// Stats returns the per-thread stat collectors for the first n threads.
func (s *System) Stats(n int) []*stats.Thread {
	out := make([]*stats.Thread, n)
	for i := 0; i < n; i++ {
		out[i] = &s.threads[i].St
	}
	return out
}

// ResetStats zeroes all per-thread counters.
func (s *System) ResetStats() {
	for _, t := range s.threads {
		t.St.Reset()
	}
}

// Thread is one hardware thread's HTM context.
type Thread struct {
	C  *machine.CPU
	St stats.Thread

	sys        *System
	mode       Mode
	suspended  bool
	doom       stats.AbortCause // pending abort cause; -1 when clean
	doomPers   bool
	doomKiller int          // CPU whose access doomed us; -1 = environment/none
	doomAddr   machine.Addr // address of the dooming access; 0 when unknown

	readLines  []int64
	writeLines []int64
	ws         writeSet

	// sig is the reusable panic payload for abort; aborting with a pointer
	// to it avoids boxing an interface value on every abort.
	sig abortSignal

	// ww and tas are the reusable engine-stepped waiters of wait.go; a
	// thread runs at most one wait at a time, so one of each suffices and
	// installing them in the machine never allocates.
	ww  wordWait
	tas tatasWait
}

func newThread(s *System, c *machine.CPU) *Thread {
	t := &Thread{C: c, sys: s, doom: -1, doomKiller: -1}
	t.ws.init()
	// Interrupts and page faults discard speculative state on real
	// hardware; model both as a non-transactional doom.
	c.OnInterrupt = t.doomFromEnvironment
	c.OnPageFault = t.doomFromEnvironment
	return t
}

// doomFromEnvironment dooms the in-flight transaction because of a
// VM-subsystem event (page fault or timer interrupt).
func (t *Thread) doomFromEnvironment() {
	if t.mode == ModeNone {
		return
	}
	t.setDoom(false, -1, 0)
}

// setDoom records a pending conflict abort. sourceTx tells whether the
// conflicting access came from inside another transaction; killer is the
// CPU that performed it (-1 for VM-subsystem dooms) and a its address, both
// preserved so the eventual abort can be attributed.
//
//simlint:hotpath
func (t *Thread) setDoom(sourceTx bool, killer int, a machine.Addr) {
	if t.doom >= 0 {
		return
	}
	switch {
	case t.mode == ModeROT:
		t.doom = stats.AbortROTConflict
	case sourceTx:
		t.doom = stats.AbortConflictTx
	default:
		t.doom = stats.AbortConflictNonTx
	}
	t.doomPers = false
	t.doomKiller = killer
	t.doomAddr = a
	t.C.Emit(machine.EvTxDoom, a, PackAbortAux(t.doom, killer))
}

// PackAbortAux encodes the Aux payload of EvTxDoom/EvTxAbort events: the
// abort cause in the low byte and the aggressor CPU (+1, so 0 means "none":
// capacity, explicit and VM-subsystem aborts have no killer) in the next.
func PackAbortAux(cause stats.AbortCause, killer int) uint64 {
	return uint64(cause)&0xff | uint64(killer+1)<<8
}

// UnpackAbortAux decodes an Aux payload produced by PackAbortAux; killer is
// -1 when the abort had no aggressor CPU.
func UnpackAbortAux(aux uint64) (cause stats.AbortCause, killer int) {
	return stats.AbortCause(aux & 0xff), int(aux>>8&0xff) - 1
}

// Mode returns the thread's current speculation mode.
func (t *Thread) Mode() Mode { return t.mode }

// Suspended reports whether the thread is inside a suspended transaction.
func (t *Thread) Suspended() bool { return t.suspended }

// InTx reports whether the thread is speculating (suspended or not).
func (t *Thread) InTx() bool { return t.mode != ModeNone }

// Doomed reports whether the in-flight transaction has a pending abort.
// It models the POWER8 tcheck instruction, usable while suspended. It
// synchronizes with the scheduler so that every conflict with an earlier
// virtual timestamp is visible.
func (t *Thread) Doomed() bool {
	t.C.Sync()
	return t.doom >= 0
}

func (t *Thread) checkDoom() {
	if t.doom >= 0 {
		t.abort(t.doom, t.doomPers)
	}
}

// abort rolls back the current transaction and unwinds to Try.
//
//simlint:hotpath
func (t *Thread) abort(cause stats.AbortCause, persistent bool) {
	if t.mode == ModeNone {
		panic("htm: abort outside transaction")
	}
	// Attribute the abort to the recorded doom when that is what fires;
	// capacity/explicit/lock-busy aborts have no aggressor.
	killer, addr := -1, machine.Addr(0)
	if t.doom == cause {
		killer, addr = t.doomKiller, t.doomAddr
	}
	t.rollback()
	t.St.Aborts[cause]++
	t.C.Tick(t.C.Costs().AbortPenalty)
	t.C.Emit(machine.EvTxAbort, addr, PackAbortAux(cause, killer))
	t.sig = abortSignal{cause, persistent}
	panic(&t.sig)
}

// rollback discards speculative state and deregisters from the directory.
//
//simlint:hotpath
func (t *Thread) rollback() {
	for _, l := range t.readLines {
		t.sys.dir[l].delReader(t.C.ID)
	}
	for _, l := range t.writeLines {
		if t.sys.dir[l].writer == t {
			t.sys.dir[l].writer = nil
		}
	}
	t.readLines = t.readLines[:0]
	t.writeLines = t.writeLines[:0]
	t.ws.reset()
	t.mode = ModeNone
	t.suspended = false
	t.doom = -1
	t.doomKiller = -1
	t.doomAddr = 0
}

func (t *Thread) mustBeActive(op string) {
	if t.mode == ModeNone {
		panic(fmt.Sprintf("htm: %s outside transaction", op))
	}
	if t.suspended {
		panic(fmt.Sprintf("htm: %s while suspended", op))
	}
}
