package htm

import (
	"math/bits"

	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// Begin starts a transaction. rot selects a rollback-only transaction.
// Begin never fails in this model (hardware tbegin reports failures of
// *prior* attempts through the handler; here failures surface at the first
// conflicting access or at commit).
//simlint:hotpath
func (t *Thread) Begin(rot bool) {
	if t.mode != ModeNone {
		panic("htm: nested Begin (nesting is not modelled; flatten in the caller)")
	}
	costs := t.C.Costs()
	if rot {
		t.C.Tick(costs.ROTBegin)
		t.mode = ModeROT
	} else {
		t.C.Tick(costs.TxBegin)
		t.mode = ModeHTM
	}
	t.doom = -1
	t.suspended = false
	t.St.TxStarts++
	rotFlag := uint64(0)
	if rot {
		rotFlag = 1
	}
	t.C.Emit(machine.EvTxBegin, 0, rotFlag)
}

// Suspend enters suspended mode (POWER8 tsuspend): subsequent accesses are
// non-transactional, and conflicts against the transaction's footprint are
// deferred to Resume.
func (t *Thread) Suspend() {
	t.mustBeActive("Suspend")
	t.C.Tick(t.C.Costs().Suspend)
	t.suspended = true
	t.C.Emit(machine.EvTxSuspend, 0, 0)
}

// Resume leaves suspended mode (POWER8 tresume). If the transaction was
// doomed while suspended, the abort fires here.
func (t *Thread) Resume() {
	if t.mode == ModeNone || !t.suspended {
		panic("htm: Resume without suspended transaction")
	}
	t.C.Tick(t.C.Costs().Resume)
	// Order every earlier-timestamped access by other CPUs before the
	// resume point so deferred conflicts are observed here.
	t.C.Sync()
	t.suspended = false
	t.C.Emit(machine.EvTxResume, 0, 0)
	if t.sys.Cfg.UnsafeLoseDoomAtResume {
		// Checker-validation mutation: forget conflicts that arrived
		// during suspension (see Config.UnsafeLoseDoomAtResume).
		t.doom = -1
		t.doomPers = false
	}
	t.checkDoom()
}

// Commit attempts to commit the transaction, publishing all buffered
// stores atomically (aggregate store appearance — guaranteed for regular
// transactions and, as the paper verified empirically for POWER8 chips,
// provided for ROTs as well). On a pending conflict the abort fires
// instead.
//
//simlint:hotpath
func (t *Thread) Commit() {
	t.mustBeActive("Commit")
	costs := t.C.Costs()
	if t.mode == ModeROT {
		t.C.Tick(costs.ROTCommit)
	} else {
		t.C.Tick(costs.TxCommit)
	}
	// Publication must happen at a scheduling boundary so it is atomic in
	// virtual time with respect to every other CPU.
	t.C.Sync()
	t.checkDoom()
	m := t.C.Machine()
	for _, a := range t.ws.order {
		v, _ := t.ws.get(a)
		m.Poke(a, v)
	}
	t.C.Emit(machine.EvTxCommit, 0, uint64(len(t.ws.order)))
	t.rollback() // reuses the deregistration path; state is now committed
}

// Abort explicitly aborts the transaction with the given cause (TX_ABORT).
func (t *Thread) Abort(cause stats.AbortCause) {
	t.mustBeActive("Abort")
	t.abort(cause, false)
}

// Try runs fn inside a transaction and commits it when fn returns. It
// returns the outcome; on abort, all speculative effects have been
// discarded. fn may call Suspend/Resume and Abort. This is the software
// analogue of the tbegin failure-handler idiom.
func (t *Thread) Try(rot bool, fn func()) (status Status) {
	t.Begin(rot)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		sig, ok := r.(*abortSignal)
		if !ok {
			if t.mode != ModeNone {
				t.rollback()
			}
			panic(r)
		}
		status = Status{OK: false, Cause: sig.cause, Persistent: sig.persistent}
	}()
	fn()
	t.Commit()
	return Status{OK: true}
}

// dirAt returns the directory entry covering address a.
func (t *Thread) dirAt(a machine.Addr) *dirEntry {
	return &t.sys.dir[t.C.Machine().LineOf(a)]
}

// Load reads word a with semantics determined by the thread's mode:
// tracked transactional read (HTM), untracked read (ROT or suspended), or
// plain non-transactional read. Any speculative writer of the line other
// than t is doomed (requester wins), which is how an uninstrumented RW-LE
// reader kills a conflicting writer.
//
//simlint:hotpath
func (t *Thread) Load(a machine.Addr) uint64 {
	t.C.AccessRead(a)
	v := t.loadData(a)
	if t.sys.traceAccesses {
		t.C.Emit(machine.EvRead, a, v)
	}
	return v
}

// LoadStream reads word a like Load but with streaming-scan timing
// (memory-level parallelism discount; see machine.AccessReadStream). Use it
// only for sweeps over independent addresses — e.g. the quiescence scan of
// per-thread reader clocks — never for pointer chasing.
//
//simlint:hotpath
func (t *Thread) LoadStream(a machine.Addr) uint64 {
	t.C.AccessReadStream(a)
	v := t.loadData(a)
	if t.sys.traceAccesses {
		t.C.Emit(machine.EvRead, a, v)
	}
	return v
}

// loadData performs the conflict-directory and data part of a load, after
// the timing has been charged.
//
//simlint:hotpath
func (t *Thread) loadData(a machine.Addr) uint64 {
	m := t.C.Machine()
	line := m.LineOf(a)
	e := &t.sys.dir[line]

	if t.mode == ModeNone || t.suspended {
		if e.writer != nil && e.writer != t {
			e.writer.setDoom(false, t.C.ID, a)
		}
		// Suspended loads do not observe the transaction's own
		// speculative stores (POWER8: transactional state is not
		// accessed in suspended mode).
		return m.Peek(a)
	}

	t.checkDoom()
	if e.writer != nil && e.writer != t {
		e.writer.setDoom(true, t.C.ID, a)
	}
	if e.writer == t {
		if v, ok := t.ws.get(a); ok {
			return v
		}
		return m.Peek(a)
	}
	if t.mode == ModeHTM && !e.hasReader(t.C.ID) {
		if len(t.readLines) >= t.sys.Cfg.ReadCapLines {
			t.abort(stats.AbortCapacity, true)
		}
		e.addReader(t.C.ID)
		t.readLines = append(t.readLines, line)
	}
	return m.Peek(a)
}

// Store writes word a. Inside a transaction (HTM or ROT) the store is
// buffered and the line is claimed in the directory, dooming any other
// speculating reader or writer of the line. While suspended or outside a
// transaction the store is non-transactional: it dooms every transaction
// speculating on the line and hits memory directly.
//simlint:hotpath
func (t *Thread) Store(a machine.Addr, v uint64) {
	t.C.AccessWrite(a)
	m := t.C.Machine()
	line := m.LineOf(a)
	e := &t.sys.dir[line]

	if t.mode == ModeNone || t.suspended {
		t.doomAllNonTx(e, a)
		m.Poke(a, v)
		if t.sys.traceAccesses {
			t.C.Emit(machine.EvWrite, a, v)
		}
		return
	}

	t.checkDoom()
	if e.writer != nil && e.writer != t {
		e.writer.setDoom(true, t.C.ID, a)
	}
	if e.anyOtherReader(t.C.ID) {
		t.doomReaders(e, true, a)
	}
	if e.writer != t {
		capacity := t.sys.Cfg.WriteCapLines
		if len(t.writeLines) >= capacity {
			if t.mode == ModeROT {
				t.abort(stats.AbortROTCapacity, true)
			}
			t.abort(stats.AbortCapacity, true)
		}
		e.writer = t
		t.writeLines = append(t.writeLines, line)
	}
	t.ws.put(a, v)
	if t.sys.traceAccesses {
		t.C.Emit(machine.EvWrite, a, v)
	}
}

// CAS performs a non-transactional compare-and-swap (usable only outside
// speculation or while suspended), dooming every transaction speculating
// on the line — this is what makes lock acquisition in a fallback path
// abort subscribed transactions.
//
//simlint:hotpath
func (t *Thread) CAS(a machine.Addr, old, new uint64) bool {
	if t.mode != ModeNone && !t.suspended {
		panic("htm: CAS inside active transaction (use Load+Store)")
	}
	e := t.dirAt(a)
	ok := t.C.CAS(a, old, new)
	t.doomAllNonTx(e, a)
	return ok
}

// NonTxStore is an explicitly non-transactional store (valid in suspended
// mode per POWER8 semantics, and trivially outside transactions).
func (t *Thread) NonTxStore(a machine.Addr, v uint64) {
	if t.mode != ModeNone && !t.suspended {
		panic("htm: NonTxStore inside active transaction")
	}
	t.Store(a, v)
}

// Alloc allocates n words of simulated memory. Allocator bookkeeping is
// host-side and NOT speculative: never allocate inside a transactional
// critical section body (aborts would leak or double-use the block) —
// prepare blocks before entering and release them after committing.
//
// While per-access tracing is on, allocation and release emit
// EvAlloc/EvFree so the race sanitizer can model the allocator's internal
// synchronization: a thread recycling a block and the thread that next
// allocates it are ordered through the free list even though they share no
// lock word.
func (t *Thread) Alloc(n int64) machine.Addr {
	a := t.C.Alloc(n)
	if t.sys.traceAccesses {
		t.C.Emit(machine.EvAlloc, a, uint64(n))
	}
	return a
}

// AllocAligned allocates n words on a cache-line boundary. See Alloc for
// the speculation caveat.
func (t *Thread) AllocAligned(n int64) machine.Addr {
	a := t.C.AllocAligned(n)
	if t.sys.traceAccesses {
		t.C.Emit(machine.EvAlloc, a, uint64(n))
	}
	return a
}

// Free releases a block from Alloc. See Alloc for the speculation caveat.
func (t *Thread) Free(a machine.Addr, n int64) {
	if t.sys.traceAccesses {
		t.C.Emit(machine.EvFree, a, uint64(n))
	}
	t.C.Free(a, n)
}

// FreeAligned releases a block from AllocAligned. See Alloc for the
// speculation caveat.
func (t *Thread) FreeAligned(a machine.Addr, n int64) {
	if t.sys.traceAccesses {
		t.C.Emit(machine.EvFree, a, uint64(n))
	}
	t.C.FreeAligned(a, n)
}

// doomAllNonTx dooms the writer and all readers of e due to a
// non-transactional access by t at address a.
func (t *Thread) doomAllNonTx(e *dirEntry, a machine.Addr) {
	if e.writer != nil && e.writer != t {
		e.writer.setDoom(false, t.C.ID, a)
	}
	if e.anyOtherReader(t.C.ID) {
		t.doomReaders(e, false, a)
	}
}

func (t *Thread) doomReaders(e *dirEntry, sourceTx bool, a machine.Addr) {
	for w := 0; w < len(e.readers); w++ {
		mask := e.readers[w]
		for mask != 0 {
			id := w<<6 + bits.TrailingZeros64(mask)
			mask &= mask - 1
			if id == t.C.ID {
				continue
			}
			t.sys.threads[id].setDoom(sourceTx, t.C.ID, a)
		}
	}
}
