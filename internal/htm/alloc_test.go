package htm

import (
	"testing"

	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// allocSys builds a one-CPU machine plus HTM thread and a 64-word line for
// the alloc probes, and warms every lazily-grown structure (write-set
// tables, abort signal) so steady-state measurements start clean.
func allocSys(t *testing.T) (*machine.Machine, *Thread, machine.Addr) {
	t.Helper()
	m := machine.New(machine.Config{CPUs: 1, MemWords: 1 << 16})
	sys := NewSystem(m, Config{})
	th := sys.Thread(0)
	var base machine.Addr
	m.Setup(func(c *machine.CPU) {
		base = c.AllocAligned(64)
		th.Try(false, func() {
			th.Store(base, 1)
			th.Abort(stats.AbortExplicit)
		})
		th.Try(false, func() { th.Store(base, th.Load(base)+1) })
	})
	return m, th, base
}

// assertZeroAllocs measures body with testing.AllocsPerRun and fails if
// the steady-state path allocates. These are the simulator's hottest
// loops: a sweep executes them millions of times, so a single byte per op
// dominates the host-side profile.
func assertZeroAllocs(t *testing.T, name string, body func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, body); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

// TestFastPathsDoNotAllocate pins the transactional read, write, commit
// and abort paths at zero host allocations per operation.
func TestFastPathsDoNotAllocate(t *testing.T) {
	m, th, base := allocSys(t)
	m.Setup(func(c *machine.CPU) {
		assertZeroAllocs(t, "tx read", func() {
			th.Try(false, func() {
				for i := 0; i < 8; i++ {
					th.Load(base + machine.Addr(i))
				}
			})
		})
		assertZeroAllocs(t, "tx write+commit", func() {
			th.Try(false, func() {
				for i := 0; i < 8; i++ {
					a := base + machine.Addr(i)
					th.Store(a, th.Load(a)+1)
				}
			})
		})
		assertZeroAllocs(t, "tx abort", func() {
			th.Try(false, func() {
				th.Store(base, 1)
				th.Abort(stats.AbortExplicit)
			})
		})
		assertZeroAllocs(t, "non-tx load/store", func() {
			th.Store(base, th.Load(base)+1)
		})
	})
}

// TestROTPathDoesNotAllocate covers the read-only-transaction (suspended
// write) path separately: ROT begin/commit takes a different route through
// the lock-word subscription logic.
func TestROTPathDoesNotAllocate(t *testing.T) {
	m, th, base := allocSys(t)
	m.Setup(func(c *machine.CPU) {
		// Warm the ROT path once before measuring.
		th.Try(true, func() { th.Load(base) })
		assertZeroAllocs(t, "rot read+commit", func() {
			th.Try(true, func() {
				for i := 0; i < 8; i++ {
					th.Load(base + machine.Addr(i))
				}
			})
		})
	})
}
