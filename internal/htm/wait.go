package htm

import "hrwle/internal/machine"

// This file provides the shared wait-loop shapes of the lock layers as
// machine.Waiter state machines, so contended spin waits are stepped by the
// scheduler loop instead of round-tripping through a coroutine per poll.
// Each Step performs exactly the visible accesses, clock advances and rng
// draws of one iteration of the open-coded loop it replaces — split into
// one visible access per step — so results and event streams are
// bit-identical. The waiter values live on the Thread and are reused; a
// thread runs at most one wait at a time, and a Step never starts another.

// spinWait is the private inter-poll delay of a wait: an escalating
// deterministic poll (the quiescence-scan idiom) or bounded randomized
// exponential backoff (the contended-acquisition idiom).
type spinWait struct {
	poll     int
	pollCap  int
	random   bool
	shift    uint
	shiftCap uint
}

func (s *spinWait) wait(c *machine.CPU) {
	if s.random {
		c.SpinFor(1 + c.Intn(1<<s.shift))
		if s.shift < s.shiftCap {
			s.shift++
		}
		return
	}
	c.SpinFor(s.poll)
	if s.poll < s.pollCap {
		s.poll *= 2
	}
}

// wordWait polls one word until (Load(a)&mask == want) matches exitEq.
type wordWait struct {
	t      *Thread
	a      machine.Addr
	mask   uint64
	want   uint64
	exitEq bool
	spin   spinWait
}

// Step implements machine.Waiter: one load, then a private spin.
func (w *wordWait) Step(c *machine.CPU) bool {
	if (w.t.Load(w.a)&w.mask == w.want) == w.exitEq {
		return true
	}
	w.spin.wait(c)
	return false
}

// emitLockWait stamps an EvLockWait covering the wait that just finished:
// Addr is the polled word, Aux the cycles spent from start to now. Emitted
// only when time actually passed, so an instant hit stays event-free. The
// emit itself charges nothing, preserving virtual time exactly.
func emitLockWait(t *Thread, a machine.Addr, start int64) {
	if d := t.C.Now() - start; d > 0 {
		t.C.Emit(machine.EvLockWait, a, uint64(d))
	}
}

// AwaitWord parks the calling CPU until Load(a)&mask compares to want as
// exitEq requests, polling with exponential escalation up to pollCap
// cycles per poll.
func (t *Thread) AwaitWord(a machine.Addr, mask, want uint64, exitEq bool, pollCap int) {
	w := &t.ww
	*w = wordWait{t: t, a: a, mask: mask, want: want, exitEq: exitEq,
		spin: spinWait{poll: 1, pollCap: pollCap}}
	start := t.C.Now()
	t.C.Await(w)
	emitLockWait(t, a, start)
}

// AwaitWordBackoff is AwaitWord with randomized exponential backoff between
// polls. It takes and returns the backoff shift so call sites whose backoff
// state outlives one wait (HLE's retry loop) can carry it across calls.
func (t *Thread) AwaitWordBackoff(a machine.Addr, mask, want uint64, exitEq bool, shift, shiftCap uint) uint {
	w := &t.ww
	*w = wordWait{t: t, a: a, mask: mask, want: want, exitEq: exitEq,
		spin: spinWait{random: true, shift: shift, shiftCap: shiftCap}}
	start := t.C.Now()
	t.C.Await(w)
	emitLockWait(t, a, start)
	return w.spin.shift
}

// tatasWait acquires a test-and-test-and-set word lock: load until the word
// reads 0, then CAS it to 1, backing off after a busy load or a lost CAS.
type tatasWait struct {
	t      *Thread
	a      machine.Addr
	casing bool
	spin   spinWait
}

// Step implements machine.Waiter: the load and the CAS of one acquisition
// attempt are separate steps, exactly as they are separate scheduling
// points in the open-coded loop.
func (w *tatasWait) Step(c *machine.CPU) bool {
	if w.casing {
		w.casing = false
		if w.t.CAS(w.a, 0, 1) {
			return true
		}
	} else if w.t.Load(w.a) == 0 {
		w.casing = true
		return false
	}
	w.spin.wait(c)
	return false
}

// AwaitAcquire acquires a TATAS word lock with randomized exponential
// backoff bounded by shiftCap (the internal/locks spin-lock idiom).
func (t *Thread) AwaitAcquire(a machine.Addr, shiftCap uint) {
	w := &t.tas
	*w = tatasWait{t: t, a: a, spin: spinWait{random: true, shiftCap: shiftCap}}
	start := t.C.Now()
	t.C.Await(w)
	emitLockWait(t, a, start)
}

// AwaitAcquirePoll acquires a TATAS word lock with escalating deterministic
// polls bounded by pollCap (the rcu/kyoto mutex idiom).
func (t *Thread) AwaitAcquirePoll(a machine.Addr, pollCap int) {
	w := &t.tas
	*w = tatasWait{t: t, a: a, spin: spinWait{poll: 1, pollCap: pollCap}}
	start := t.C.Now()
	t.C.Await(w)
	emitLockWait(t, a, start)
}
