package rcu

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// Node layout (line-aligned), mirroring the benchmark hashmap's nodes.
const (
	offKey    = 0
	offValue  = 1
	offNext   = 2
	nodeWords = 3
)

// Map is the RCU-protected chained hashmap: the "tailored code" the paper
// contrasts RW-LE against. Readers traverse with no synchronization at
// all; updaters follow the RCU discipline — publish fully-initialized
// nodes with a single pointer store, never reuse unlinked memory before a
// grace period, and copy nodes instead of updating values in place.
type Map struct {
	m        *machine.Machine
	d        *Domain
	buckets  machine.Addr
	nbuckets uint64
}

// NewMap allocates an RCU hashmap with nbuckets chains.
func NewMap(m *machine.Machine, d *Domain, nbuckets int64) *Map {
	return &Map{m: m, d: d, buckets: m.AllocRawAligned(nbuckets), nbuckets: uint64(nbuckets)}
}

// Populate fills the map exactly like the benchmark hashmap's Populate.
func (h *Map) Populate(items int64) {
	l := int64(h.nbuckets)
	for b := int64(0); b < l; b++ {
		head := uint64(0)
		for i := int64(0); i < items; i++ {
			n := h.m.AllocRawAligned(nodeWords)
			h.m.Poke(n+offKey, uint64(b+i*l))
			h.m.Poke(n+offValue, uint64(i))
			h.m.Poke(n+offNext, head)
			head = uint64(n)
		}
		h.m.Poke(h.buckets+machine.Addr(b), head)
	}
}

func (h *Map) bucketAddr(key uint64) machine.Addr {
	return h.buckets + machine.Addr(key%h.nbuckets)
}

// Lookup runs as an RCU read-side critical section and accounts itself as
// an application operation.
func (h *Map) Lookup(t *htm.Thread, key uint64) (val uint64, ok bool) {
	h.d.Read(t, func() {
		n := t.Load(h.bucketAddr(key))
		for n != 0 {
			a := machine.Addr(n)
			if t.Load(a+offKey) == key {
				val, ok = t.Load(a+offValue), true
				return
			}
			n = t.Load(a + offNext)
		}
	})
	return val, ok
}

// Insert adds or updates key→value. Updaters serialize on the domain
// mutex; an in-place value update is forbidden under RCU, so an existing
// node is replaced by a copy (copy-update), and the old node is reclaimed
// after a grace period. This is exactly the tailored surgery the paper
// says RCU demands of every data structure.
func (h *Map) Insert(t *htm.Thread, key, value uint64) {
	t.St.WriteCS++
	h.d.UpdateLock(t)
	var retired machine.Addr

	ba := h.bucketAddr(key)
	prev := machine.Addr(0)
	n := t.Load(ba)
	for n != 0 {
		a := machine.Addr(n)
		if t.Load(a+offKey) == key {
			// Copy-update: build the replacement, splice it in with one
			// pointer store, retire the old node.
			repl := t.AllocAligned(nodeWords)
			t.Store(repl+offKey, key)
			t.Store(repl+offValue, value)
			t.Store(repl+offNext, t.Load(a+offNext))
			if prev == 0 {
				t.Store(ba, uint64(repl))
			} else {
				t.Store(prev+offNext, uint64(repl))
			}
			retired = a
			break
		}
		prev = a
		n = t.Load(a + offNext)
	}
	if n == 0 {
		// Not found: publish a fully initialized node at the head.
		node := t.AllocAligned(nodeWords)
		t.Store(node+offKey, key)
		t.Store(node+offValue, value)
		t.Store(node+offNext, t.Load(ba))
		t.C.Fence() // publication barrier before the linking store
		t.Store(ba, uint64(node))
	}
	h.d.UpdateUnlock(t)
	if retired != 0 {
		h.d.Synchronize(t)
		t.FreeAligned(retired, nodeWords)
	}
	t.St.Commits[stats.CommitSGL]++
}

// Remove unlinks key; the node is reclaimed only after a grace period, so
// concurrent readers still traversing through it stay safe.
func (h *Map) Remove(t *htm.Thread, key uint64) bool {
	t.St.WriteCS++
	h.d.UpdateLock(t)
	ba := h.bucketAddr(key)
	prev := machine.Addr(0)
	n := t.Load(ba)
	var victim machine.Addr
	for n != 0 {
		a := machine.Addr(n)
		if t.Load(a+offKey) == key {
			next := t.Load(a + offNext)
			if prev == 0 {
				t.Store(ba, next)
			} else {
				t.Store(prev+offNext, next)
			}
			victim = a
			break
		}
		prev = a
		n = t.Load(a + offNext)
	}
	h.d.UpdateUnlock(t)
	t.St.Commits[stats.CommitSGL]++
	if victim == 0 {
		return false
	}
	h.d.Synchronize(t)
	t.FreeAligned(victim, nodeWords)
	return true
}

// Snapshot walks the map raw (tests only).
func (h *Map) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for b := uint64(0); b < h.nbuckets; b++ {
		n := h.m.Peek(h.buckets + machine.Addr(b))
		for n != 0 {
			a := machine.Addr(n)
			out[h.m.Peek(a+offKey)] = h.m.Peek(a + offValue)
			n = h.m.Peek(a + offNext)
		}
	}
	return out
}
