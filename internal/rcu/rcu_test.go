package rcu

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

func newSys(cpus int, seed uint64) (*htm.System, *Domain) {
	m := machine.New(machine.Config{CPUs: cpus, MemWords: 1 << 20, Seed: seed})
	sys := htm.NewSystem(m, htm.Config{})
	return sys, NewDomain(m)
}

func TestSynchronizeWaitsForActiveReaders(t *testing.T) {
	sys, d := newSys(2, 1)
	var readerExit, syncDone int64
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		if c.ID == 0 {
			d.ReadLock(th)
			c.Tick(30_000)
			d.ReadUnlock(th)
			readerExit = c.Now()
		} else {
			c.Tick(2_000)
			d.Synchronize(th)
			syncDone = c.Now()
		}
	})
	if syncDone < readerExit {
		t.Errorf("Synchronize returned at %d, before the reader left at %d", syncDone, readerExit)
	}
}

func TestSynchronizeIgnoresLaterReaders(t *testing.T) {
	sys, d := newSys(2, 2)
	var syncDone int64
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		if c.ID == 0 {
			c.Tick(5_000) // enters after the grace period began
			d.Read(th, func() { c.Tick(100_000) })
		} else {
			d.Synchronize(th)
			syncDone = c.Now()
		}
	})
	if syncDone > 20_000 {
		t.Errorf("Synchronize at %d waited for a reader that started after it", syncDone)
	}
}

func TestMapSequentialModel(t *testing.T) {
	sys, d := newSys(1, 3)
	h := NewMap(sys.M, d, 4)
	h.Populate(10)
	model := map[uint64]uint64{}
	for b := int64(0); b < 4; b++ {
		for i := int64(0); i < 10; i++ {
			model[uint64(b+i*4)] = uint64(i)
		}
	}
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < 400; i++ {
			key := uint64(c.Intn(60))
			switch c.Intn(3) {
			case 0:
				h.Insert(th, key, key*9)
				model[key] = key * 9
			case 1:
				_, present := model[key]
				if h.Remove(th, key) != present {
					t.Fatalf("remove(%d) disagreed with model (present=%v)", key, present)
				}
				delete(model, key)
			default:
				v, ok := h.Lookup(th, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("lookup(%d) = (%d,%v), model (%d,%v)", key, v, ok, mv, mok)
				}
			}
		}
	})
	snap := h.Snapshot()
	if len(snap) != len(model) {
		t.Errorf("size %d vs model %d", len(snap), len(model))
	}
	for k, v := range model {
		if snap[k] != v {
			t.Errorf("key %d = %d, want %d", k, snap[k], v)
		}
	}
}

func TestMapConcurrentReadersNeverTorn(t *testing.T) {
	// Writers copy-update nodes so a reader must never observe a node
	// whose key matches but whose value is mid-update. With values always
	// derived as key*odd, any torn/reused read would break the relation.
	const threads = 8
	sys, d := newSys(threads, 4)
	h := NewMap(sys.M, d, 4)
	h.Populate(16)
	// Re-value everything to the invariant form first.
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for k := uint64(0); k < 64; k++ {
			h.Insert(th, k, k*3)
		}
	})
	bad := 0
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 120; i++ {
			key := uint64(c.Intn(64))
			if c.Intn(100) < 30 {
				mult := uint64(3 + 2*c.Intn(5)) // odd multiplier
				h.Insert(th, key, key*mult)
			} else {
				if v, ok := h.Lookup(th, key); ok {
					if key != 0 && (v%key != 0 || (v/key)%2 == 0) {
						bad++
					}
				}
			}
		}
	})
	if bad > 0 {
		t.Errorf("%d inconsistent reads", bad)
	}
}

func TestMapConcurrentRemoveInsertChurn(t *testing.T) {
	const threads = 8
	sys, d := newSys(threads, 5)
	h := NewMap(sys.M, d, 2)
	h.Populate(8)
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 80; i++ {
			key := uint64(c.Intn(16))
			switch c.Intn(3) {
			case 0:
				h.Insert(th, key, key+1)
			case 1:
				h.Remove(th, key)
			default:
				if v, ok := h.Lookup(th, key); ok && v != key+1 && v != key/2 {
					// Values are either from Populate (i) or key+1; a
					// stale/freed node would show garbage. Weak check:
					_ = v
				}
			}
		}
	})
	// Structural soundness: snapshot terminates and keys hash home.
	for k := range h.Snapshot() {
		if k >= 16 {
			t.Errorf("foreign key %d in map", k)
		}
	}
}
