// Package rcu implements Read-Copy-Update over the simulated machine, as a
// comparator for the paper's related-work discussion (§2): RCU and RLU
// "allow both read and write critical sections to execute concurrently...
// Despite being very efficient for read-dominated workloads, both
// techniques require tailored code for each application". RW-LE's pitch is
// getting most of that concurrency *without* modifying the data-structure
// code; this package supplies the tailored-code yardstick (see the
// "ext-rcu" experiment).
//
// The runtime is classic epoch-based RCU: readers bracket their critical
// sections with per-thread clock increments (odd = inside), and a writer's
// Synchronize waits until every reader active at the call has left its
// section. Updaters serialize on a mutex, publish changes with single-word
// pointer stores (atomic in the sequentially consistent simulator, as on
// hardware with release stores), and defer reclamation until after a grace
// period.
package rcu

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// Domain is one RCU domain: a set of reader clocks plus the updater mutex.
type Domain struct {
	nthreads int
	clocks   machine.Addr
	updMutex machine.Addr
	lineW    machine.Addr
}

// NewDomain creates an RCU domain covering every CPU of the machine.
func NewDomain(m *machine.Machine) *Domain {
	return &Domain{
		nthreads: m.Cfg.CPUs,
		clocks:   m.AllocRawAligned(int64(m.Cfg.CPUs) * m.Cfg.LineWords),
		updMutex: m.AllocRawAligned(1),
		lineW:    machine.Addr(m.Cfg.LineWords),
	}
}

func (d *Domain) clockAddr(id int) machine.Addr { return d.clocks + machine.Addr(id)*d.lineW }

// ReadLock enters a read-side critical section (rcu_read_lock).
func (d *Domain) ReadLock(t *htm.Thread) {
	ca := d.clockAddr(t.C.ID)
	t.Store(ca, t.Load(ca)+1)
	t.C.Fence()
}

// ReadUnlock leaves the read-side critical section (rcu_read_unlock).
func (d *Domain) ReadUnlock(t *htm.Thread) {
	ca := d.clockAddr(t.C.ID)
	t.Store(ca, t.Load(ca)+1)
}

// Read runs cs as an RCU read-side critical section and accounts it as an
// uninstrumented commit (the fair comparison to RW-LE's readers).
func (d *Domain) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	d.ReadLock(t)
	cs()
	d.ReadUnlock(t)
	t.St.Commits[stats.CommitUninstrumented]++
}

// UpdateLock serializes updaters (RCU's external update-side lock).
func (d *Domain) UpdateLock(t *htm.Thread) {
	t.AwaitAcquirePoll(d.updMutex, 64)
}

// UpdateUnlock releases the update-side lock.
func (d *Domain) UpdateUnlock(t *htm.Thread) { t.Store(d.updMutex, 0) }

// Synchronize waits for a grace period: every reader inside a critical
// section at the time of the call has left it (synchronize_rcu).
func (d *Domain) Synchronize(t *htm.Thread) {
	snap := make([]uint64, d.nthreads)
	for i := 0; i < d.nthreads; i++ {
		snap[i] = t.LoadStream(d.clockAddr(i))
	}
	for i := 0; i < d.nthreads; i++ {
		if snap[i]&1 == 0 {
			continue
		}
		t.AwaitWord(d.clockAddr(i), ^uint64(0), snap[i], false, 32)
	}
}
