package simlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	PkgPath string
	Dir     string
	GoFiles []string
	Imports []string // module-internal imports only

	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Root marks packages matched by the load patterns (as opposed to
	// module-internal dependencies pulled in for type information and
	// facts). Only root packages surface diagnostics.
	Root bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching patterns (plus
// their module-internal dependencies) in the module rooted at dir, in
// dependency order. The standard library is imported from source, so the
// loader works offline and needs no precompiled export data.
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	listed, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	roots, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	rootSet := make(map[string]bool, len(roots))
	for _, p := range roots {
		rootSet[p.ImportPath] = true
	}

	byPath := make(map[string]*listedPackage)
	var modulePkgs []*listedPackage
	for _, p := range listed {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		byPath[p.ImportPath] = p
		modulePkgs = append(modulePkgs, p)
	}

	order, err := topoSort(modulePkgs, byPath)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	// The source importer type-checks standard-library dependencies from
	// GOROOT source on demand; one instance memoizes across packages.
	std := importer.ForCompiler(fset, "source", nil)
	done := make(map[string]*Package, len(order))

	var out []*Package
	for _, lp := range order {
		pkg, err := typecheck(fset, lp, done, std)
		if err != nil {
			return nil, nil, err
		}
		pkg.Root = rootSet[lp.ImportPath]
		done[lp.ImportPath] = pkg
		out = append(out, pkg)
	}
	return fset, out, nil
}

// goList invokes `go list -json` in dir and decodes the package stream.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// topoSort orders module packages so every package appears after all of
// its module-internal imports.
func topoSort(pkgs []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	const (
		white = iota
		grey
		black
	)
	state := make(map[string]int, len(pkgs))
	var order []*listedPackage
	var visit func(p *listedPackage) error
	visit = func(p *listedPackage) error {
		switch state[p.ImportPath] {
		case grey:
			return fmt.Errorf("import cycle through %s", p.ImportPath)
		case black:
			return nil
		}
		state[p.ImportPath] = grey
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = black
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typecheck parses and type-checks one listed package. Module-internal
// imports are resolved against done (already-checked packages); everything
// else falls through to the standard-library source importer.
func typecheck(fset *token.FileSet, lp *listedPackage, done map[string]*Package, std types.Importer) (*Package, error) {
	var files []*ast.File
	var names []string
	for _, f := range lp.GoFiles {
		path := filepath.Join(lp.Dir, f)
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		names = append(names, path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: chainImporter{done: done, std: std},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	var modImports []string
	for _, imp := range lp.Imports {
		if _, ok := done[imp]; ok {
			modImports = append(modImports, imp)
		}
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		GoFiles:   names,
		Imports:   modImports,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// chainImporter resolves module-internal import paths from the packages
// already type-checked this run and delegates the rest (the standard
// library) to the source importer.
type chainImporter struct {
	done map[string]*Package
	std  types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.done[path]; ok {
		return p.Types, nil
	}
	return c.std.Import(path)
}
