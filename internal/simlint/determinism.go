package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// determinismScope lists the packages whose execution must be bit-for-bit
// reproducible from the machine seed: the simulator core, the layers that
// execute in virtual time on top of it, and the sweep harness whose output
// files are golden-tested. cmd/ and examples/ are presentation-layer and
// exempt.
var determinismScope = map[string]bool{
	"hrwle/internal/machine": true,
	"hrwle/internal/htm":     true,
	"hrwle/internal/core":    true,
	"hrwle/internal/locks":   true,
	"hrwle/internal/rwlock":  true,
	"hrwle/internal/rcu":     true,
	"hrwle/internal/stats":   true,
	"hrwle/internal/obs":     true,
	"hrwle/internal/harness": true,
	"hrwle/internal/service": true,
	"hrwle/internal/shard":   true,
	"hrwle/internal/simsan":  true,
}

// wallClockFuncs are the time-package functions that read the host clock
// or host timers. Pure value manipulation (time.Duration arithmetic) is
// allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// hostEnvFuncs are runtime-package functions whose results depend on the
// host machine.
var hostEnvFuncs = map[string]bool{
	"NumCPU": true, "GOMAXPROCS": true, "Gosched": true, "NumGoroutine": true,
}

const rngHint = "use the per-CPU seeded SplitMix64 stream (machine.CPU.Intn/Float64/Rand64; see internal/machine/rng.go, the sole blessed randomness source) instead of math/rand"

// NewDeterminism returns the determinism analyzer: simulator packages must
// contain no nondeterminism sources — wall clocks, global math/rand,
// goroutine spawns, sync primitives, channel operations, or map iteration
// whose order is not washed out by a subsequent sort. Every run must be a
// pure function of the machine seed.
func NewDeterminism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid nondeterminism sources (wall clock, math/rand, goroutines, sync, unsorted map iteration) in simulator packages",
	}
	a.Run = func(pass *Pass) error {
		if !determinismScope[pass.Pkg.Path()] {
			return nil
		}
		for _, file := range pass.Files {
			checkDeterminismFile(pass, file)
		}
		return nil
	}
	return a
}

func checkDeterminismFile(pass *Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		switch path {
		case "math/rand", "math/rand/v2":
			pass.Report(imp.Pos(), "nondeterministic randomness: %s", rngHint)
		}
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			// Package-level declarations: still scan for forbidden uses
			// (e.g. a package-level sync.Mutex or rand source).
			checkDeterminismNode(pass, decl, nil)
			continue
		}
		if fd.Body == nil {
			continue
		}
		// The sort-after-iteration idiom: collect the positions of calls
		// into package sort within this function, then allow a map range
		// whose loop is followed by such a call — collecting into a slice
		// and sorting it washes out the iteration order.
		var sortCalls []token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := pass.FuncOf(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sort" {
					sortCalls = append(sortCalls, call.Pos())
				}
			}
			return true
		})
		checkDeterminismNode(pass, fd, sortCalls)
	}
}

// checkDeterminismNode reports every nondeterminism source under n.
func checkDeterminismNode(pass *Pass, n ast.Node, sortCalls []token.Pos) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Report(n.Pos(), "goroutine spawn in a simulator package: host scheduling is nondeterministic; simulated concurrency runs on machine.Machine's virtual-time token passing")
		case *ast.SelectStmt:
			pass.Report(n.Pos(), "select in a simulator package: case choice depends on host scheduling")
		case *ast.SendStmt:
			pass.Report(n.Pos(), "channel send in a simulator package: channel synchronization depends on host scheduling")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Report(n.Pos(), "channel receive in a simulator package: channel synchronization depends on host scheduling")
			}
		case *ast.CallExpr:
			checkDeterminismCall(pass, n)
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				if !sortedAfter(n, sortCalls) {
					pass.Report(n.Pos(), "map iteration order is nondeterministic and no sort call follows in this function; iterate a sorted key slice, or sort the collected results before they can reach trace or result output")
				}
			case *types.Chan:
				pass.Report(n.Pos(), "channel range in a simulator package: channel synchronization depends on host scheduling")
			}
		case *ast.Ident:
			checkDeterminismUse(pass, n)
		}
		return true
	})
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && obj.Name() == "make" {
			if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Report(call.Pos(), "channel creation in a simulator package: channel synchronization depends on host scheduling")
				}
			}
		}
	}
}

// checkDeterminismUse flags references to objects from nondeterministic
// packages (time's wall clock, math/rand, sync, sync/atomic, runtime host
// queries).
func checkDeterminismUse(pass *Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if wallClockFuncs[obj.Name()] {
			pass.Report(id.Pos(), "wall-clock time in a simulator package: time.%s depends on the host; the simulation runs in virtual cycles (machine.CPU.Now)", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Report(id.Pos(), "nondeterministic randomness: %s", rngHint)
	case "sync", "sync/atomic":
		pass.Report(id.Pos(), "host synchronization primitive %s.%s in a simulator package: simulator state is single-threaded by the virtual-time token; sync primitives hide real races instead of preventing simulated ones", obj.Pkg().Name(), obj.Name())
	case "runtime":
		if hostEnvFuncs[obj.Name()] {
			pass.Report(id.Pos(), "host-environment query runtime.%s in a simulator package: results vary across machines", obj.Name())
		}
	}
}

// sortedAfter reports whether any recorded sort call appears after the
// range statement ends.
func sortedAfter(rs *ast.RangeStmt, sortCalls []token.Pos) bool {
	for _, p := range sortCalls {
		if p > rs.End() {
			return true
		}
	}
	return false
}
