package simlint

import (
	"go/ast"
	"go/types"
)

const htmPath = "hrwle/internal/htm"

// MayAbortFact marks a function that may panic with the HTM abort signal
// (*htm.abortSignal), directly or through anything it calls. It is
// exported on function objects so reachability propagates across packages.
type MayAbortFact struct{ May bool }

func (*MayAbortFact) AFact() {}

// funcAbortInfo is the per-function summary abortflow builds from syntax.
type funcAbortInfo struct {
	obj          *types.Func
	panicsAbort  bool // contains panic(x) where x is the abort signal
	callsUnknown bool // calls a function value or interface method
	callees      []*types.Func
	classified   bool // has a recover handler that classifies the signal
	mayAbort     bool
}

// NewAbortFlow returns the abortflow analyzer. HTM aborts travel as
// panics carrying a pooled *htm.abortSignal that htm.Thread.Try recovers
// and converts to a Status. Any other recover() on a path that may see
// that panic must classify the recovered value (htm.IsAbortSignal or a
// type assertion against the signal) and re-raise what it does not
// handle; swallowing the signal would silently corrupt the transaction
// protocol. The pooled payload is reused by the next abort on the same
// thread, so a handler must not retain it past its own scope.
func NewAbortFlow() *Analyzer {
	a := &Analyzer{
		Name: "abortflow",
		Doc:  "every recover() reachable from transaction execution must classify-and-rethrow the HTM abort signal and must not retain the pooled payload",
	}
	a.Run = runAbortFlow
	return a
}

func runAbortFlow(pass *Pass) error {
	infos := make(map[*types.Func]*funcAbortInfo)
	var order []*funcAbortInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			info := summarizeAbort(pass, fd, obj)
			infos[obj] = info
			order = append(order, info)
		}
	}

	// Fixpoint over the package-local call graph; callees in imported
	// packages contribute through their exported facts.
	mayAbortCallee := func(fn *types.Func) bool {
		if local, ok := infos[fn]; ok {
			return local.mayAbort
		}
		var fact MayAbortFact
		if pass.ImportObjectFact(fn, &fact) {
			return fact.May
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, info := range order {
			if info.mayAbort || info.classified {
				continue
			}
			may := info.panicsAbort || info.callsUnknown
			for _, c := range info.callees {
				if may {
					break
				}
				may = mayAbortCallee(c)
			}
			if may {
				info.mayAbort = true
				changed = true
			}
		}
	}
	for _, info := range order {
		pass.ExportObjectFact(info.obj, &MayAbortFact{May: info.mayAbort})
	}

	// Check every recover handler whose guarded scope may see the abort
	// signal.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRecoverHandlers(pass, fd.Body, mayAbortCallee)
		}
	}
	return nil
}

// summarizeAbort builds the call/panic summary of one function. Function
// literals created inside the body are attributed to the enclosing
// function (an over-approximation: creating a closure is treated like
// running it).
func summarizeAbort(pass *Pass, fd *ast.FuncDecl, obj *types.Func) *funcAbortInfo {
	info := &funcAbortInfo{obj: obj}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			if lit, ok := n.(*ast.FuncLit); ok && isClassifyingHandlerLit(pass, lit) {
				info.classified = true
			}
			return true
		}
		if isPanicCall(pass, call) {
			if len(call.Args) == 1 && isAbortSignalType(pass.TypesInfo.TypeOf(call.Args[0])) {
				info.panicsAbort = true
			}
			return true
		}
		fn := pass.FuncOf(call)
		switch {
		case fn == nil:
			// A function-value call (e.g. the critical-section callback
			// cs()): anything could run, including aborting code.
			if !isBuiltinOrConversion(pass, call) {
				info.callsUnknown = true
			}
		case isInterfaceMethod(fn):
			info.callsUnknown = true
		default:
			info.callees = append(info.callees, fn)
		}
		return true
	})
	return info
}

// checkRecoverHandlers finds deferred recover handlers under body and
// verifies the classify-and-rethrow and no-retention rules when the
// enclosing function-like scope may see an abort panic.
func checkRecoverHandlers(pass *Pass, body *ast.BlockStmt, mayAbortCallee func(*types.Func) bool) {
	// Walk function-like scopes: the declared body plus every literal.
	var walkScope func(scope ast.Node, scopeBody *ast.BlockStmt)
	walkScope = func(scope ast.Node, scopeBody *ast.BlockStmt) {
		scopeMayAbort := scopeCallsMayAbort(pass, scopeBody, mayAbortCallee)
		ast.Inspect(scopeBody, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walkScope(n, n.Body)
				return false
			case *ast.DeferStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					if rec := findRecover(pass, lit.Body); rec != nil {
						if scopeMayAbort {
							checkHandler(pass, lit, rec)
						}
						checkRetention(pass, lit)
						return false // handler internals handled above
					}
					walkScope(lit, lit.Body)
					return false
				}
			}
			return true
		})
	}
	walkScope(nil, body)
}

// scopeCallsMayAbort reports whether the statements of scopeBody (not
// counting nested function literals, which run on their own schedule)
// contain a call that may panic with the abort signal.
func scopeCallsMayAbort(pass *Pass, scopeBody *ast.BlockStmt, mayAbortCallee func(*types.Func) bool) bool {
	found := false
	ast.Inspect(scopeBody, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.FuncOf(call)
		switch {
		case fn == nil:
			if !isBuiltinOrConversion(pass, call) && !isPanicCall(pass, call) {
				found = true
			}
		case isInterfaceMethod(fn) || mayAbortCallee(fn):
			found = true
		}
		return true
	})
	return found
}

// findRecover returns the recover() call statement-level binding inside a
// deferred handler body, or nil if the handler does not recover.
func findRecover(pass *Pass, body *ast.BlockStmt) *ast.CallExpr {
	var rec *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if rec != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
					rec = call
					return false
				}
			}
		}
		return true
	})
	return rec
}

// checkHandler verifies the classify-and-rethrow discipline of one
// recover handler that can observe the abort signal.
func checkHandler(pass *Pass, lit *ast.FuncLit, rec *ast.CallExpr) {
	recVars := recoveredObjects(pass, lit.Body)
	classifies := isClassifyingHandlerLit(pass, lit)
	rethrows := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPanicCall(pass, call) || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if recVars[pass.TypesInfo.Uses[id]] {
				rethrows = true
			}
		}
		// panic(recover()) directly.
		if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok && inner == rec {
			rethrows = true
		}
		return true
	})
	if !classifies && !rethrows {
		pass.Report(rec.Pos(), "recover() on a transaction-reachable path may swallow the HTM abort signal; classify it (htm.IsAbortSignal or a type assertion against the signal) and re-panic what this handler does not own")
	}
}

// checkRetention verifies that the recovered value (potentially the
// pooled *abortSignal, reused by the thread's next abort) does not escape
// the handler: it must not be assigned to anything declared outside the
// handler body.
func checkRetention(pass *Pass, lit *ast.FuncLit) {
	recVars := recoveredObjects(pass, lit.Body)
	local := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	isRecovered := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && recVars[pass.TypesInfo.Uses[id]]
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isRecovered(rhs) {
				continue
			}
			switch lhs := ast.Unparen(as.Lhs[i]).(type) {
			case *ast.Ident:
				if lhs.Name == "_" || local[pass.TypesInfo.Defs[lhs]] {
					continue
				}
				if obj := pass.TypesInfo.Uses[lhs]; obj != nil && !local[obj] {
					pass.Report(as.Pos(), "recovered abort payload is retained past the handler (assigned to %s): the pooled *abortSignal is reused by the thread's next abort; copy the fields you need instead", lhs.Name)
				}
			default:
				// Field, index or dereference store: escapes the handler.
				pass.Report(as.Pos(), "recovered abort payload is retained past the handler: the pooled *abortSignal is reused by the thread's next abort; copy the fields you need instead")
			}
		}
		return true
	})
}

// recoveredObjects returns the objects bound (directly or by re-binding)
// to recover()'s result inside body.
func recoveredObjects(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			bind := func() {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						out[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
			}
			switch rhs := ast.Unparen(rhs).(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
						bind()
					}
				}
			case *ast.Ident:
				if out[pass.TypesInfo.Uses[rhs]] {
					bind()
				}
			case *ast.TypeAssertExpr:
				if id, ok := ast.Unparen(rhs.X).(*ast.Ident); ok && out[pass.TypesInfo.Uses[id]] {
					bind()
				}
			}
		}
		return true
	})
	return out
}

// isClassifyingHandlerLit reports whether lit is a recover handler that
// classifies the recovered value against the HTM abort signal: a type
// assertion or type-switch case naming the signal type, or a call to
// htm.IsAbortSignal.
func isClassifyingHandlerLit(pass *Pass, lit *ast.FuncLit) bool {
	if findRecover(pass, lit.Body) == nil {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.TypeAssertExpr:
			if n.Type != nil && isAbortSignalType(pass.TypesInfo.TypeOf(n.Type)) {
				found = true
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if t := pass.TypesInfo.TypeOf(e); t != nil && isAbortSignalType(t) {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := pass.FuncOf(n); IsNamed(fn, htmPath, "IsAbortSignal") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isAbortSignalType reports whether t is htm's abortSignal (or a pointer
// to it).
func isAbortSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "abortSignal" && obj.Pkg() != nil && obj.Pkg().Path() == htmPath
}

func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isBuiltinOrConversion reports whether call is a builtin call or a type
// conversion — neither can run user code that aborts.
func isBuiltinOrConversion(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
		if _, isType := pass.TypesInfo.Types[fun]; isType && pass.TypesInfo.Types[fun].IsType() {
			return true
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.TypeName); ok && obj != nil {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.InterfaceType, *ast.StructType, *ast.StarExpr:
		return true
	}
	return false
}

// isInterfaceMethod reports whether fn is declared on an interface (its
// dynamic implementation is unknown).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
