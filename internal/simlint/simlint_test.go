package simlint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// quotedRe extracts the quoted regexp operands of a // want comment.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
}

// runFixture loads the given packages from testdata/src, runs the full
// suite, and compares the diagnostics against the fixtures' // want
// comments (same file, same line, message matching the quoted regexp).
func runFixture(t *testing.T, patterns ...string) *Suite {
	t.Helper()
	fset, pkgs, err := Load(filepath.Join("testdata", "src"), patterns)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	suite := NewSuite()
	diags, err := suite.Run(fset, pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}

	wants := make(map[string][]*wantEntry)
	for _, pkg := range pkgs {
		if !pkg.Root {
			continue
		}
		for _, file := range pkg.Syntax {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, q := range quotedRe.FindAllString(c.Text[idx+len("// want "):], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want operand %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						wants[key] = append(wants[key], &wantEntry{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
	return suite
}

func TestDeterminismFixture(t *testing.T) {
	suite := runFixture(t, "hrwle/internal/locks")
	if suite.Suppressed == 0 {
		t.Errorf("expected the //simlint:allow case to be counted as suppressed")
	}
}

func TestAbortFlowFixture(t *testing.T) {
	suite := runFixture(t, "hrwle/abortfix")
	if suite.Suppressed == 0 {
		t.Errorf("expected the //simlint:allow case to be counted as suppressed")
	}
}

func TestEventPairsFixture(t *testing.T) {
	suite := runFixture(t, "hrwle/evfix")
	if suite.Suppressed == 0 {
		t.Errorf("expected the //simlint:allow case to be counted as suppressed")
	}
}

func TestTxDisciplineFixture(t *testing.T) {
	suite := runFixture(t, "hrwle/txfix")
	if suite.Suppressed == 0 {
		t.Errorf("expected the //simlint:allow case to be counted as suppressed")
	}
}

func TestSyncpointFixture(t *testing.T) {
	suite := runFixture(t, "hrwle/internal/shard")
	if suite.Suppressed == 0 {
		t.Errorf("expected the //simlint:allow case to be counted as suppressed")
	}
}

func TestHotpathFixture(t *testing.T) {
	suite := runFixture(t, "hrwle/hotfix")
	if suite.Suppressed == 0 {
		t.Errorf("expected the //simlint:allow case to be counted as suppressed")
	}
}

// TestDirectiveValidation checks that malformed or unknown //simlint:allow
// directives are themselves diagnosed.
func TestDirectiveValidation(t *testing.T) {
	fset, pkgs, err := Load(filepath.Join("testdata", "src"), []string{"hrwle/badallow"})
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	suite := NewSuite()
	diags, err := suite.Run(fset, pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var malformed, unknown bool
	for _, d := range diags {
		if d.Analyzer != "simlint" {
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d.Message)
			continue
		}
		switch {
		case strings.Contains(d.Message, "malformed"):
			malformed = true
		case strings.Contains(d.Message, "unknown analyzer"):
			unknown = true
		}
	}
	if !malformed {
		t.Errorf("expected a malformed-directive diagnostic")
	}
	if !unknown {
		t.Errorf("expected an unknown-analyzer diagnostic")
	}
}

// TestRepoSelfVet runs the full suite over this repository and requires a
// clean result: the tree must stay vet-clean at all times.
func TestRepoSelfVet(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	fset, pkgs, err := Load(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	suite := NewSuite()
	diags, err := suite.Run(fset, pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
