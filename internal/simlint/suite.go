package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"time"
)

// NewAnalyzers returns fresh instances of the full simlint suite:
// determinism, abortflow, eventpairs, txdiscipline, syncpoint and
// hotpath. Instances carry per-run state and must not be shared between
// Suite runs.
func NewAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(),
		NewAbortFlow(),
		NewEventPairs(),
		NewTxDiscipline(),
		NewSyncpoint(),
		NewHotpath(),
	}
}

// Suite runs a set of analyzers over a loaded module in dependency order,
// applying //simlint:allow suppression.
type Suite struct {
	Analyzers []*Analyzer

	fset      *token.FileSet
	facts     map[types.Object][]Fact
	rootFiles map[string]bool

	allows []allowDirective
	diags  []Diagnostic
	seen   map[string]bool
	spent  []time.Duration

	// Suppressed counts diagnostics silenced by //simlint:allow.
	Suppressed int
}

// AnalyzerTiming is one analyzer's wall time accumulated across every
// package of a Run, in analyzer registration order.
type AnalyzerTiming struct {
	Name   string  `json:"analyzer"`
	Millis float64 `json:"millis"`
}

// Timings returns per-analyzer wall time for the last Run (nil before).
func (s *Suite) Timings() []AnalyzerTiming {
	var out []AnalyzerTiming
	for i, a := range s.Analyzers {
		if i >= len(s.spent) {
			break
		}
		out = append(out, AnalyzerTiming{
			Name:   a.Name,
			Millis: float64(s.spent[i]) / float64(time.Millisecond),
		})
	}
	return out
}

// allowDirective is one parsed //simlint:allow comment.
type allowDirective struct {
	file      string
	analyzer  string
	wholeFile bool
	fromLine  int // inclusive
	toLine    int // inclusive
}

// NewSuite creates a suite. With no analyzers given, the full set from
// NewAnalyzers is used.
func NewSuite(analyzers ...*Analyzer) *Suite {
	if len(analyzers) == 0 {
		analyzers = NewAnalyzers()
	}
	return &Suite{
		Analyzers: analyzers,
		facts:     make(map[types.Object][]Fact),
		seen:      make(map[string]bool),
	}
}

// Run applies every analyzer to every package (packages must be in
// dependency order, as produced by Load) and returns the surviving
// diagnostics sorted by position. Diagnostics are only surfaced for root
// packages; dependency packages are still analyzed so their facts are
// available.
func (s *Suite) Run(fset *token.FileSet, pkgs []*Package) ([]Diagnostic, error) {
	s.fset = fset
	s.rootFiles = make(map[string]bool)
	for _, pkg := range pkgs {
		if pkg.Root {
			for _, f := range pkg.GoFiles {
				s.rootFiles[f] = true
			}
		}
	}
	for _, pkg := range pkgs {
		s.collectAllows(pkg)
	}
	s.spent = make([]time.Duration, len(s.Analyzers))
	for _, pkg := range pkgs {
		for ai, a := range s.Analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				suite:     s,
				pkg:       pkg,
			}
			t0 := time.Now()
			err := a.Run(pass)
			s.spent[ai] += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(s.diags, func(i, j int) bool {
		pi, pj := fset.Position(s.diags[i].Pos), fset.Position(s.diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return s.diags[i].Analyzer < s.diags[j].Analyzer
	})
	return s.diags, nil
}

// collectAllows parses the //simlint:allow directives of one package.
// Directives in non-root packages still apply: a dependency annotates its
// own legitimate sites once, for every caller.
func (s *Suite) collectAllows(pkg *Package) {
	names := make(map[string]bool, len(s.Analyzers))
	for _, a := range s.Analyzers {
		names[a.Name] = true
	}
	for _, file := range pkg.Syntax {
		// Map comment groups used as function documentation to the
		// function's line span, so a doc-comment allow covers the body.
		funcSpan := make(map[*ast.CommentGroup][2]int)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcSpan[fd.Doc] = [2]int{
					s.fset.Position(fd.Pos()).Line,
					s.fset.Position(fd.End()).Line,
				}
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, wholeFile := strings.CutPrefix(c.Text, "//simlint:allow-file")
				if !wholeFile {
					var isAllow bool
					text, isAllow = strings.CutPrefix(c.Text, "//simlint:allow")
					if !isAllow {
						continue
					}
				}
				pos := s.fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.reportRaw(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "simlint",
						Message:  "malformed simlint:allow directive: want //simlint:allow <analyzer> <reason>",
					})
					continue
				}
				// Tolerate directives naming analyzers outside the running
				// subset, but reject names no analyzer has ever had.
				if !names[fields[0]] && !knownAnalyzers[fields[0]] {
					s.reportRaw(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "simlint",
						Message:  fmt.Sprintf("simlint:allow names unknown analyzer %q", fields[0]),
					})
					continue
				}
				d := allowDirective{
					file:      pos.Filename,
					analyzer:  fields[0],
					wholeFile: wholeFile,
					fromLine:  pos.Line,
					toLine:    pos.Line + 1,
				}
				if span, ok := funcSpan[cg]; ok {
					d.fromLine, d.toLine = span[0], span[1]
				}
				s.allows = append(s.allows, d)
			}
		}
	}
}

// knownAnalyzers lists every analyzer name that has ever shipped, so a
// directive for an analyzer not in the current run is not flagged as a
// typo.
var knownAnalyzers = map[string]bool{
	"determinism":  true,
	"abortflow":    true,
	"eventpairs":   true,
	"txdiscipline": true,
	"syncpoint":    true,
	"hotpath":      true,
}

// report records a diagnostic unless an allow directive suppresses it or
// an identical diagnostic was already recorded (cross-package analyses can
// reach the same violation through several call sites).
func (s *Suite) report(d Diagnostic) {
	pos := s.fset.Position(d.Pos)
	for _, a := range s.allows {
		if a.analyzer != d.Analyzer || a.file != pos.Filename {
			continue
		}
		if a.wholeFile || (pos.Line >= a.fromLine && pos.Line <= a.toLine) {
			s.Suppressed++
			return
		}
	}
	s.reportRaw(d)
}

func (s *Suite) reportRaw(d Diagnostic) {
	// Only surface diagnostics located in root packages; dependencies are
	// analyzed for their facts, and annotate their own sites when needed.
	if len(s.rootFiles) > 0 && !s.rootFiles[s.fset.Position(d.Pos).Filename] {
		return
	}
	key := fmt.Sprintf("%s|%d|%s", d.Analyzer, d.Pos, d.Message)
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.diags = append(s.diags, d)
}

func (s *Suite) exportFact(obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	t := reflect.TypeOf(fact)
	for i, f := range s.facts[obj] {
		if reflect.TypeOf(f) == t {
			s.facts[obj][i] = fact
			return
		}
	}
	s.facts[obj] = append(s.facts[obj], fact)
}

func (s *Suite) importFact(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	t := reflect.TypeOf(ptr)
	for _, f := range s.facts[obj] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}
