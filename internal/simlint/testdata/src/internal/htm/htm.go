// Package htm is a minimal stub of the simulator's HTM package for the
// simlint fixtures: an abort signal raised by panic, a classifying Try,
// and the transactional memory/allocator surface.
package htm

import "hrwle/internal/machine"

type Status struct{ OK bool }

type abortSignal struct{ cause int }

type Thread struct {
	C   *machine.CPU
	sig abortSignal
}

func (t *Thread) abort() {
	t.sig = abortSignal{cause: 1}
	panic(&t.sig)
}

func (t *Thread) Load(a machine.Addr) uint64 {
	if a == 0 {
		t.abort()
	}
	return 0
}

func (t *Thread) Store(a machine.Addr, v uint64) {
	if a == 0 {
		t.abort()
	}
}

func (t *Thread) Alloc(words int) machine.Addr { return 1 }

func (t *Thread) AllocAligned(words, align int) machine.Addr { return 1 }

func (t *Thread) Free(a machine.Addr) {}

func (t *Thread) FreeAligned(a machine.Addr) {}

// IsAbortSignal reports whether a recovered panic value is the abort
// signal, mirroring the real package's classifier.
func IsAbortSignal(r any) bool {
	_, ok := r.(*abortSignal)
	return ok
}

// Try runs fn speculatively, converting an abort panic into a Status.
func (t *Thread) Try(fn func()) (st Status) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(*abortSignal); !ok {
			panic(r)
		}
		st = Status{OK: false}
	}()
	fn()
	return Status{OK: true}
}
