// Package shard is a syncpoint fixture: miniature server loops over
// host-side gate state, in the good shape (every mutation behind the
// loop's CPU.Sync, directly or through helpers) and the bad shape
// (mutations and helper calls before the loop synchronizes).
package shard

import "hrwle/internal/machine"

type gate struct {
	inflight int
	ops      int64
}

type deploy struct {
	gates []gate
	done  bool
}

// serveGood is the disciplined loop: Sync first, then every mutation —
// including the ones helpers perform — is covered.
func (d *deploy) serveGood(c *machine.CPU) {
	for {
		c.Sync()
		g := &d.gates[0]
		g.inflight++
		d.bump()
		if d.done {
			return
		}
		c.Tick(10)
	}
}

// bump never calls Sync itself; its call sites are all covered.
func (d *deploy) bump() {
	d.gates[0].ops++
}

// serveBad mutates the gate and calls a mutating helper before its first
// Sync: the state changes while another CPU may be earlier in virtual
// time.
func (d *deploy) serveBad(c *machine.CPU) {
	for {
		d.gates[0].inflight++ // want "host state must only change while the CPU holds the virtual-time floor"
		d.steal()
		c.Sync()
		if d.done {
			return
		}
		c.Tick(10)
	}
}

// steal is only ever reached on serveBad's pre-Sync path.
func (d *deploy) steal() {
	d.done = true // want "host state must only change while the CPU holds the virtual-time floor"
}

// Boot wires the loops to the machine; only loops handed to Run are
// traversal roots (host-side setup below mutates freely).
func Boot(m *machine.Machine, d *deploy) {
	d.gates = []gate{{}}
	d.done = false
	m.Run(2, d.serveGood)
	m.Run(2, d.serveBad)
	m.Run(2, d.servePrimed)
	m.Run(2, func(c *machine.CPU) {
		local := 0
		local++          // frame-private: exempt
		d.gates[0].ops++ // want "host state must only change while the CPU holds the virtual-time floor"
		c.Sync()
		d.gates[0].inflight--
		_ = local
	})
}
