package shard

import "hrwle/internal/machine"

// servePrimed reads a warmup counter before the loop synchronizes on
// purpose; the suppression documents why that is safe here.
func (d *deploy) servePrimed(c *machine.CPU) {
	for {
		//simlint:allow syncpoint warmup counter is written by the host before Run starts and only this fixture loop touches it afterwards
		d.gates[0].ops++
		c.Sync()
		if d.done {
			return
		}
		c.Tick(10)
	}
}
