// Package machine is a minimal stub of the simulator's machine package,
// just enough surface for the simlint fixtures to type-check. Its import
// path deliberately matches the real package so the analyzers' path-based
// matching applies.
package machine

type Addr uint64

type EventKind uint8

const (
	EvCSBegin EventKind = iota
	EvCSEnd
	EvQuiesceStart
	EvQuiesceEnd
)

type CPU struct{ ID int }

func (c *CPU) Emit(kind EventKind, a Addr, aux uint64) {}

func (c *CPU) Intn(n int) int { return 0 }

func (c *CPU) Sync() {}

func (c *CPU) Tick(cycles int64) {}

func (c *CPU) Now() int64 { return 0 }

type Machine struct{ mem []uint64 }

func (m *Machine) Run(n int, fn func(*CPU)) int64 { return 0 }

func (m *Machine) Peek(a Addr) uint64 { return m.mem[a] }

func (m *Machine) Poke(a Addr, v uint64) { m.mem[a] = v }

func (m *Machine) AllocRaw(words int) Addr { return 0 }

func (m *Machine) AllocRawAligned(words int) Addr { return 0 }
