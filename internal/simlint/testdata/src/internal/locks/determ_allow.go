package locks

import "time"

// allowedWallClock shows the escape hatch: the function-level directive
// below suppresses the wall-clock diagnostic for the whole body, with a
// mandatory reason.
//
//simlint:allow determinism fixture: progress logging is presentation-only and never feeds simulated results
func allowedWallClock() int64 {
	return time.Now().UnixNano()
}

//simlint:allow-file eventpairs fixture: demonstrates the whole-file form for an analyzer this package never trips
