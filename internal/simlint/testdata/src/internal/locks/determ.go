// Package locks is a simlint fixture: its import path places it inside
// the determinism scope, and each function below exhibits one forbidden
// nondeterminism source.
package locks

import (
	"math/rand" // want "nondeterministic randomness"
	"sort"
	"sync"
	"time"
)

var mu sync.Mutex // want "host synchronization primitive"

func wallClock() int64 {
	return time.Now().UnixNano() // want "wall-clock time in a simulator package"
}

func globalRand() int {
	return rand.Intn(8) // want "nondeterministic randomness"
}

func spawn() {
	go func() {}() // want "goroutine spawn in a simulator package"
}

func channels() {
	ch := make(chan int, 1) // want "channel creation in a simulator package"
	ch <- 1                 // want "channel send in a simulator package"
	<-ch                    // want "channel receive in a simulator package"
}

func unsortedMapIter(m map[int]int) int {
	s := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		s += v
	}
	return s
}

// sortedMapIter is the blessed idiom: collecting into a slice and sorting
// washes out the iteration order, so no diagnostic fires.
func sortedMapIter(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func lockUse() {
	mu.Lock()         // want "host synchronization primitive"
	defer mu.Unlock() // want "host synchronization primitive"
}
