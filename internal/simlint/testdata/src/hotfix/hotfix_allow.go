package hotfix

// tolerated documents a deliberate cold-start allocation inside a marked
// function; the suppression carries the reason.
//
//simlint:hotpath
func (r *ring) tolerated() {
	//simlint:allow hotpath one-time lazy init, executed once before the path becomes hot
	scratch := make([]int, 4)
	_ = scratch
}
