// Package hotfix is a hotpath fixture: one marked function in the
// allocation-free shape and one committing every flagged construct.
package hotfix

import "fmt"

type ring struct {
	buf []int
	n   int
}

// good is the allocation-free shape: self-append into a persistent
// buffer, scalar field updates, constant panic strings.
//
//simlint:hotpath
func (r *ring) good(v int) {
	r.buf = append(r.buf, v)
	r.n++
	if r.n < 0 {
		panic("hotfix: negative count" + "!")
	}
}

//simlint:hotpath
func (r *ring) bad(v int, tag string) {
	f := func() { r.n++ } // want "function literal allocates a closure"
	f()
	defer r.flush()        // want "defer allocates"
	m := make(map[int]int) // want "make allocates"
	_ = m
	s := []int{v} // want "slice literal allocates"
	_ = s
	p := &ring{} // want "composite literal escapes"
	_ = p
	var other []int
	other = append(r.buf, v) // want "append into a slice other than the one being extended"
	_ = other
	fmt.Println(v)              // want "fmt.Println allocates"
	msg := "hotfix: bad " + tag // want "string concatenation allocates"
	_ = msg
}

func (r *ring) flush() {}

// unmarked functions may allocate freely.
func (r *ring) unmarked() {
	_ = make([]int, 8)
}
