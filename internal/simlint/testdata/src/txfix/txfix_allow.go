package txfix

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// allowedRaw is the suppression case: a raw read inside a section the
// author vouches for with a reasoned directive on the preceding line.
func allowedRaw(l *RWLock, t *htm.Thread, m *machine.Machine, a machine.Addr) uint64 {
	var v uint64
	l.Read(t, func() {
		//simlint:allow txdiscipline fixture: diagnostic-only peek validated under a single-threaded schedule
		v = m.Peek(a)
	})
	return v
}
