// Package txfix is a simlint fixture for the txdiscipline analyzer:
// critical-section bodies touching raw simulated state or mutating
// captured host state in non-restartable ways.
package txfix

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// RWLock mimics the rwlock.Lock critical-section surface the analyzer
// keys on: methods named Read/Write of shape func(*htm.Thread, func()).
type RWLock struct{}

func (l *RWLock) Read(t *htm.Thread, cs func()) { cs() }

func (l *RWLock) Write(t *htm.Thread, cs func()) { cs() }

func rawPeekInCS(l *RWLock, t *htm.Thread, m *machine.Machine, a machine.Addr) uint64 {
	var v uint64
	l.Read(t, func() {
		v = m.Peek(a) // want "machine.Peek bypasses HTM conflict detection"
	})
	return v
}

func allocInCS(l *RWLock, t *htm.Thread) {
	l.Write(t, func() {
		t.Alloc(8) // want "not restartable"
	})
}

func capturedMutations(l *RWLock, t *htm.Thread, a machine.Addr) (int, []uint64) {
	count := 0
	var hist []uint64
	idx := map[int]uint64{}
	l.Write(t, func() {
		count++                        // want "increments captured"
		hist = append(hist, t.Load(a)) // want "self-appends to captured"
		idx[1] = t.Load(a)             // want "stores into captured map"
		delete(idx, 1)                 // want "deletes from captured map"
	})
	return count, hist
}

// viaHelper shows transitive checking: the raw access sits in a helper
// the section calls, and is reported at the helper's call site.
func viaHelper(l *RWLock, t *htm.Thread, m *machine.Machine, a machine.Addr) {
	l.Write(t, func() {
		helperPoke(m, a)
	})
}

func helperPoke(m *machine.Machine, a machine.Addr) {
	m.Poke(a, 1) // want "reachable from a critical section via helperPoke"
}

// hoisted shows the ident-bound body form (cs := func(){...}; l.Write(t, cs)).
func hoisted(l *RWLock, t *htm.Thread, m *machine.Machine, a machine.Addr) {
	cs := func() {
		m.Poke(a, 3) // want "machine.Poke"
	}
	l.Write(t, cs)
}

// tryBody checks the (*htm.Thread).Try entry point directly.
func tryBody(t *htm.Thread, m *machine.Machine, a machine.Addr) {
	t.Try(func() {
		m.Poke(a, 2) // want "machine.Poke"
	})
}

// compliant is the blessed shape: all simulated-memory traffic goes
// through the htm.Thread API, and captured state only sees plain
// (restartable) reassignment.
func compliant(l *RWLock, t *htm.Thread, a machine.Addr) uint64 {
	var got uint64
	l.Read(t, func() {
		got = t.Load(a)
	})
	return got
}
