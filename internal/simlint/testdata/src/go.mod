module hrwle

go 1.22
