package evfix

import "hrwle/internal/machine"

// allowedOpenPair is the suppression case: a deliberately half-open pair
// (its End is emitted by a paired helper the analyzer cannot see) vouched
// for with a reasoned directive.
//
//simlint:allow eventpairs fixture: the matching End is emitted by the caller's teardown hook
func allowedOpenPair(c *machine.CPU) {
	c.Emit(machine.EvCSBegin, 0, 0)
}
