// Package evfix is a simlint fixture for the eventpairs analyzer:
// Begin/End trace-event pairing across return paths, loops, deferred
// closers and transaction contexts.
package evfix

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// missingEndOnError forgets the End emission on the early-return path.
func missingEndOnError(c *machine.CPU, fail bool) {
	c.Emit(machine.EvCSBegin, 0, 0) // want "no matching machine.EvCSEnd on some return path"
	if fail {
		return
	}
	c.Emit(machine.EvCSEnd, 0, 0)
}

// loopLeak opens a pair on every iteration without closing it.
func loopLeak(c *machine.CPU, n int) {
	for i := 0; i < n; i++ { // want "still open when the iteration ends"
		c.Emit(machine.EvQuiesceStart, 0, 0)
	}
}

// endOnly closes a pair that was never opened.
func endOnly(c *machine.CPU) {
	c.Emit(machine.EvCSEnd, 0, 0) // want "no open machine.EvCSBegin"
}

// balanced is the straight-line compliant shape, including a closure
// helper bound to a local and called on each return path.
func balanced(c *machine.CPU, alt bool) {
	c.Emit(machine.EvCSBegin, 0, 0)
	done := func() { c.Emit(machine.EvCSEnd, 0, 0) }
	if alt {
		done()
		return
	}
	done()
}

// txStraightLine runs inside a transaction (reachable from a Try literal)
// but closes its pair straight-line: an abort unwind would orphan it.
func txStraightLine(c *machine.CPU) {
	c.Emit(machine.EvQuiesceStart, 0, 0) // want "transaction context"
	c.Emit(machine.EvQuiesceEnd, 0, 0)
}

// txDeferClosed is the compliant transactional shape: the End fires from
// a defer on every unwind, abort included.
func txDeferClosed(c *machine.CPU) {
	c.Emit(machine.EvQuiesceStart, 0, 0)
	defer c.Emit(machine.EvQuiesceEnd, 0, 0)
}

func enterTx(t *htm.Thread, c *machine.CPU) {
	t.Try(func() {
		txStraightLine(c)
		txDeferClosed(c)
	})
}
