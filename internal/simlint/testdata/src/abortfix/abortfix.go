// Package abortfix is a simlint fixture for the abortflow analyzer:
// recover handlers on transaction-reachable paths that swallow or retain
// the pooled abort signal, next to the compliant classify-and-rethrow
// shape.
package abortfix

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

var leaked any

// swallow recovers around an aborting store without classifying what it
// caught: an HTM abort would be silently eaten here.
func swallow(t *htm.Thread, a machine.Addr) {
	defer func() {
		recover() // want "may swallow the HTM abort signal"
	}()
	t.Store(a, 1)
}

// retain re-panics (so it does not swallow) but parks the recovered value
// in a package variable first — retaining the pooled payload.
func retain(t *htm.Thread, a machine.Addr) {
	defer func() {
		r := recover()
		leaked = r // want "retained past the handler"
		panic(r)
	}()
	t.Store(a, 1)
}

// classified is the compliant shape: classify with htm.IsAbortSignal,
// re-panic everything not owned, keep nothing.
func classified(t *htm.Thread, a machine.Addr) (aborted bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if !htm.IsAbortSignal(r) {
			panic(r)
		}
		aborted = true
	}()
	t.Store(a, 1)
	return false
}

// repanics is the other compliant shape: unconditionally re-raising
// whatever was recovered never swallows the signal.
func repanics(t *htm.Thread, a machine.Addr) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(error); ok {
			panic(r)
		}
		panic(r)
	}()
	t.Load(a)
}
