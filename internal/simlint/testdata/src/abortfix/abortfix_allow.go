package abortfix

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// allowedSwallow is the suppression case: a pool-join style handler the
// author vouches for with a reasoned directive.
//
//simlint:allow abortflow fixture: worker-pool join re-panics the first captured value after the pool drains; the abort signal is consumed by Try inside the worker body
func allowedSwallow(t *htm.Thread, a machine.Addr) {
	defer func() {
		recover()
	}()
	t.Store(a, 1)
}
