// Package badallow exercises directive validation: a directive with no
// analyzer and reason, and one naming an analyzer that does not exist.
package badallow

//simlint:allow
func missingFields() {}

//simlint:allow nosuchanalyzer the analyzer name is a typo
func unknownAnalyzer() {}
