package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const machinePkgPath = "hrwle/internal/machine"

// pairEndOf maps a Begin-style trace event constant to its matching End.
// EvTxBegin/EvTxCommit/EvTxAbort are deliberately absent: transaction
// windows legitimately span functions (htm.Thread.Begin emits the open,
// commit/abort paths emit the close) and are checked dynamically by the
// trace verifier instead.
var pairEndOf = map[string]string{
	"EvCSBegin":      "EvCSEnd",
	"EvQuiesceStart": "EvQuiesceEnd",
}

// pairBeginOf is the inverse of pairEndOf.
var pairBeginOf = map[string]string{
	"EvCSEnd":      "EvCSBegin",
	"EvQuiesceEnd": "EvQuiesceStart",
}

// pairKinds lists the Begin constants, for deterministic iteration.
var pairKinds = []string{"EvCSBegin", "EvQuiesceStart"}

// NewEventPairs returns the eventpairs analyzer. Trace consumers
// (obs.CSIntervals, the quiesce-window scanner) reconstruct intervals from
// Begin/End pairs, so a function that emits a Begin must emit the matching
// End on every return path. Additionally, a function reachable from a
// transaction body (a literal passed to (*htm.Thread).Try) must close its
// pairs from a defer: an HTM abort unwinds the stack by panic, skipping
// every straight-line End emission.
func NewEventPairs() *Analyzer {
	a := &Analyzer{
		Name: "eventpairs",
		Doc:  "a function emitting a Begin-style trace event must emit the matching End on all return paths; transaction-reachable emitters must close pairs from a defer",
	}
	a.Run = runEventPairs
	return a
}

func runEventPairs(pass *Pass) error {
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	for _, fd := range decls {
		if emitsPairEvent(pass, fd.Body) {
			w := &epWalker{pass: pass, locals: make(map[types.Object][]emission)}
			st := newEPState()
			w.walkStmt(st, fd.Body)
			if !st.unreachable {
				w.checkBalance(st)
			}
		}
	}
	checkTxContextEmitters(pass, decls)
	return nil
}

// emission is one Emit call of a paired event kind.
type emission struct {
	kind string // the event constant's name, e.g. "EvCSBegin"
	pos  token.Pos
}

// epState is the abstract state of the structured walker: the stack of
// open Begin emissions per pair, and the End credits registered by defers
// (which fire on every exit, including the abort-panic unwind).
type epState struct {
	open        map[string][]token.Pos // Begin kind -> positions of open emissions
	deferred    map[string]int         // Begin kind -> deferred End credits
	unreachable bool
}

func newEPState() *epState {
	return &epState{open: make(map[string][]token.Pos), deferred: make(map[string]int)}
}

func (st *epState) clone() *epState {
	out := newEPState()
	out.unreachable = st.unreachable
	for k, v := range st.open {
		out.open[k] = append([]token.Pos(nil), v...)
	}
	for k, v := range st.deferred {
		out.deferred[k] = v
	}
	return out
}

type epWalker struct {
	pass *Pass
	// locals maps variables bound to function literals (e.g. a done :=
	// func(){ Emit(End) } helper) to the literal's emission effect, so
	// calling the variable is treated as performing those emissions.
	locals map[types.Object][]emission
}

// walkStmt advances st through stmt.
func (w *epWalker) walkStmt(st *epState, stmt ast.Stmt) {
	if st.unreachable || stmt == nil {
		return
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if st.unreachable {
				return
			}
			w.walkStmt(st, inner)
		}
	case *ast.ExprStmt:
		w.applyExpr(st, s.X)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanicCall(w.pass, call) {
			// The pairs an abort-panic leaves open are the business of
			// the deferred handlers, not of this function's return paths.
			st.unreachable = true
		}
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok && i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					obj := w.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = w.pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						w.locals[obj] = w.litEmissions(lit)
						continue
					}
				}
			}
			w.applyExpr(st, rhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if lit, ok := ast.Unparen(v).(*ast.FuncLit); ok && i < len(vs.Names) {
						if obj := w.pass.TypesInfo.Defs[vs.Names[i]]; obj != nil {
							w.locals[obj] = w.litEmissions(lit)
							continue
						}
					}
					w.applyExpr(st, v)
				}
			}
		}
	case *ast.DeferStmt:
		for _, e := range w.callEmissions(s.Call) {
			if begin, ok := pairBeginOf[e.kind]; ok {
				st.deferred[begin]++
			}
			// A Begin emitted from a defer cannot be matched
			// structurally; ignore it here (the End-without-Begin check
			// in the reader catches the orphan at runtime).
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.applyExpr(st, r)
		}
		w.checkBalance(st)
		st.unreachable = true
	case *ast.IfStmt:
		w.walkStmt(st, s.Init)
		w.applyExpr(st, s.Cond)
		thenSt, elseSt := st.clone(), st.clone()
		w.walkStmt(thenSt, s.Body)
		if s.Else != nil {
			w.walkStmt(elseSt, s.Else)
		}
		*st = *w.merge(s.Pos(), thenSt, elseSt)
	case *ast.ForStmt:
		w.walkStmt(st, s.Init)
		w.applyExpr(st, s.Cond)
		body := st.clone()
		w.walkStmt(body, s.Body)
		w.walkStmt(body, s.Post)
		w.checkLoopLeak(s.Pos(), st, body)
		if s.Cond == nil && !hasLoopBreak(s.Body) {
			// for {} with no break: the only exits are returns and
			// panics inside the body, already checked there.
			st.unreachable = true
		}
	case *ast.RangeStmt:
		w.applyExpr(st, s.X)
		body := st.clone()
		w.walkStmt(body, s.Body)
		w.checkLoopLeak(s.Pos(), st, body)
	case *ast.SwitchStmt:
		w.walkStmt(st, s.Init)
		w.applyExpr(st, s.Tag)
		w.walkCases(st, s.Pos(), s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st, s.Init)
		w.walkCases(st, s.Pos(), s.Body)
	case *ast.SelectStmt:
		w.walkCases(st, s.Pos(), s.Body)
	case *ast.BranchStmt:
		if s.Tok != token.FALLTHROUGH {
			st.unreachable = true
		}
	case *ast.LabeledStmt:
		w.walkStmt(st, s.Stmt)
	case *ast.SendStmt:
		w.applyExpr(st, s.Chan)
		w.applyExpr(st, s.Value)
	case *ast.IncDecStmt:
		w.applyExpr(st, s.X)
	case *ast.GoStmt:
		// Spawn effects are not attributed to this function's paths.
	}
}

// walkCases handles the clause list of a switch/type-switch/select.
func (w *epWalker) walkCases(st *epState, pos token.Pos, body *ast.BlockStmt) {
	var outs []*epState
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.applyExpr(st, e)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			stmts = cc.Body
		}
		cs := st.clone()
		for _, inner := range stmts {
			if cs.unreachable {
				break
			}
			w.walkStmt(cs, inner)
		}
		outs = append(outs, cs)
	}
	if !hasDefault || len(outs) == 0 {
		// Without a default, no case may match and the switch falls
		// through with the entry state.
		outs = append(outs, st.clone())
	}
	*st = *w.merge(pos, outs...)
}

// merge joins branch states. Branches that ended (returned, panicked) do
// not contribute. If reachable branches disagree on which pairs are open,
// that is itself a violation: an event pair opened or closed on only some
// branches.
func (w *epWalker) merge(pos token.Pos, states ...*epState) *epState {
	var live []*epState
	for _, s := range states {
		if !s.unreachable {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		out := newEPState()
		out.unreachable = true
		return out
	}
	out := live[0].clone()
	for _, s := range live[1:] {
		for _, b := range pairKinds {
			if len(s.open[b]) != len(out.open[b]) {
				w.pass.Report(pos, "machine.%s pair is open on some branches but not others past this point; emit machine.%s on every branch or none", b, pairEndOf[b])
				if len(s.open[b]) > len(out.open[b]) {
					out.open[b] = append([]token.Pos(nil), s.open[b]...)
				}
			}
			if s.deferred[b] < out.deferred[b] {
				out.deferred[b] = s.deferred[b]
			}
		}
	}
	return out
}

// checkLoopLeak verifies a loop body leaves the open-pair state as it
// found it; otherwise every iteration leaks (or double-closes) a pair.
func (w *epWalker) checkLoopLeak(pos token.Pos, entry, bodyOut *epState) {
	if bodyOut.unreachable {
		return
	}
	for _, b := range pairKinds {
		if len(bodyOut.open[b]) > len(entry.open[b]) {
			w.pass.Report(pos, "machine.%s opened inside this loop is still open when the iteration ends; each iteration must close the pair it opens", b)
		}
	}
}

// checkBalance reports, at their emission sites, Begin events that no End
// (straight-line or deferred) closes on the current path.
func (w *epWalker) checkBalance(st *epState) {
	for _, b := range pairKinds {
		unmatched := len(st.open[b]) - st.deferred[b]
		for i := 0; i < unmatched && i < len(st.open[b]); i++ {
			w.pass.Report(st.open[b][i], "machine.%s emitted here has no matching machine.%s on some return path; emit the End on every path or close the pair from a defer", b, pairEndOf[b])
		}
	}
}

// applyExpr applies the emissions performed while evaluating expr.
func (w *epWalker) applyExpr(st *epState, expr ast.Expr) {
	if expr == nil {
		return
	}
	for _, e := range w.exprEmissions(expr) {
		w.apply(st, e)
	}
}

func (w *epWalker) apply(st *epState, e emission) {
	if _, isBegin := pairEndOf[e.kind]; isBegin {
		st.open[e.kind] = append(st.open[e.kind], e.pos)
		return
	}
	begin := pairBeginOf[e.kind]
	if n := len(st.open[begin]); n > 0 {
		st.open[begin] = st.open[begin][:n-1]
		return
	}
	w.pass.Report(e.pos, "machine.%s emitted with no open machine.%s in this function", e.kind, begin)
}

// exprEmissions collects the paired-event emissions performed by expr,
// not descending into function literals (they run when called, and
// locally-bound literals are inlined at their call sites).
func (w *epWalker) exprEmissions(expr ast.Expr) []emission {
	var out []emission
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			out = append(out, w.callEmissions(call)...)
			return true
		}
		return true
	})
	return out
}

// callEmissions resolves the emissions of a single call: a direct Emit, or
// a call of a locally-bound closure whose effect was recorded.
func (w *epWalker) callEmissions(call *ast.CallExpr) []emission {
	if e, ok := emitKind(w.pass, call); ok {
		return []emission{e}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if eff, ok := w.locals[w.pass.TypesInfo.Uses[fun]]; ok {
			return eff
		}
	case *ast.FuncLit:
		return w.litEmissions(fun)
	}
	return nil
}

// litEmissions collects the direct emissions of a function literal's body
// (used for locally-bound helper closures and deferred closers).
func (w *epWalker) litEmissions(lit *ast.FuncLit) []emission {
	var out []emission
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if e, ok := emitKind(w.pass, call); ok {
				out = append(out, e)
			}
		}
		return true
	})
	return out
}

// emitKind recognizes a call to (*machine.CPU).Emit whose event argument
// is one of the paired constants.
func emitKind(pass *Pass, call *ast.CallExpr) (emission, bool) {
	fn := pass.FuncOf(call)
	if fn == nil || fn.Name() != "Emit" || fn.Pkg() == nil || fn.Pkg().Path() != machinePkgPath {
		return emission{}, false
	}
	if len(call.Args) == 0 {
		return emission{}, false
	}
	var obj types.Object
	switch a := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[a]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[a.Sel]
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != machinePkgPath {
		return emission{}, false
	}
	name := obj.Name()
	if _, ok := pairEndOf[name]; ok {
		return emission{kind: name, pos: call.Pos()}, true
	}
	if _, ok := pairBeginOf[name]; ok {
		return emission{kind: name, pos: call.Pos()}, true
	}
	return emission{}, false
}

// emitsPairEvent is a fast pre-filter: does the body mention Emit with a
// paired constant at all?
func emitsPairEvent(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := emitKind(pass, call); ok {
				found = true
			}
		}
		return true
	})
	return found
}

// hasLoopBreak reports whether body contains a break that exits the loop
// it belongs to (unlabeled breaks inside nested loops, switches and
// selects bind to those constructs instead).
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Stmt, nested bool)
	walkBlock := func(stmts []ast.Stmt, nested bool) {
		for _, s := range stmts {
			walk(s, nested)
		}
	}
	walk = func(n ast.Stmt, nested bool) {
		if found || n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && (!nested || s.Label != nil) {
				found = true
			}
		case *ast.BlockStmt:
			walkBlock(s.List, nested)
		case *ast.IfStmt:
			walk(s.Body, nested)
			walk(s.Else, nested)
		case *ast.LabeledStmt:
			walk(s.Stmt, nested)
		case *ast.ForStmt:
			walk(s.Body, true)
		case *ast.RangeStmt:
			walk(s.Body, true)
		case *ast.SwitchStmt:
			walk(s.Body, true)
		case *ast.TypeSwitchStmt:
			walk(s.Body, true)
		case *ast.SelectStmt:
			walk(s.Body, true)
		}
	}
	walk(body, false)
	return found
}

// checkTxContextEmitters enforces the defer-close rule for functions
// reachable from a transaction body: an HTM abort unwinds by panic, so a
// Begin whose End is emitted straight-line would be orphaned in the trace.
func checkTxContextEmitters(pass *Pass, decls []*ast.FuncDecl) {
	callees := make(map[*types.Func][]*types.Func)
	objOf := make(map[*types.Func]*ast.FuncDecl)
	var txRoots []*types.Func
	for _, fd := range decls {
		obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		objOf[obj] = fd
		// Literal bindings, for t.Try(body) where body := func(){...}.
		bindings := make(map[types.Object]*ast.FuncLit)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for i, rhs := range as.Rhs {
					if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok && i < len(as.Lhs) {
						if id, ok := as.Lhs[i].(*ast.Ident); ok {
							if o := pass.TypesInfo.Defs[id]; o != nil {
								bindings[o] = lit
							}
						}
					}
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := pass.FuncOf(call); fn != nil {
				callees[obj] = append(callees[obj], fn)
				if IsNamed(fn, htmPath, "Try") && len(call.Args) > 0 {
					var lit *ast.FuncLit
					switch a := ast.Unparen(call.Args[0]).(type) {
					case *ast.FuncLit:
						lit = a
					case *ast.Ident:
						lit = bindings[pass.TypesInfo.Uses[a]]
					}
					if lit != nil {
						ast.Inspect(lit, func(n ast.Node) bool {
							if c, ok := n.(*ast.CallExpr); ok {
								if callee := pass.FuncOf(c); callee != nil {
									txRoots = append(txRoots, callee)
								}
							}
							return true
						})
					}
				}
			}
			return true
		})
	}
	// Propagate transaction-context reachability through the package-local
	// call graph.
	txCtx := make(map[*types.Func]bool)
	work := txRoots
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if txCtx[fn] || objOf[fn] == nil {
			continue
		}
		txCtx[fn] = true
		work = append(work, callees[fn]...)
	}
	for fn := range txCtx {
		fd := objOf[fn]
		deferEnds := make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ds, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			collect := func(c *ast.CallExpr) {
				if e, ok := emitKind(pass, c); ok {
					if _, isEnd := pairBeginOf[e.kind]; isEnd {
						deferEnds[e.kind] = true
					}
				}
			}
			if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok {
						collect(c)
					}
					return true
				})
			} else {
				collect(ds.Call)
			}
			return false
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.DeferStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			e, ok := emitKind(pass, call)
			if !ok {
				return true
			}
			if end, isBegin := pairEndOf[e.kind]; isBegin && !deferEnds[end] {
				pass.Report(e.pos, "machine.%s emitted in a transaction context (%s is reachable from a literal passed to (*htm.Thread).Try): an HTM abort unwinds past straight-line End emissions; close the pair with `defer ... Emit(machine.%s, ...)`", e.kind, fn.Name(), end)
			}
			return true
		})
	}
}
