package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TxViol is one raw-state access recorded in a function summary.
type TxViol struct {
	Pos token.Pos
	Msg string
}

// TxSummaryFact summarizes a function for critical-section reachability:
// the violations its body commits directly and the functions it calls.
// Exported for every declared function, so a critical section in one
// package can be checked against helpers defined in another.
type TxSummaryFact struct {
	Viols   []TxViol
	Callees []*types.Func
}

func (*TxSummaryFact) AFact() {}

// NewTxDiscipline returns the txdiscipline analyzer. Critical-section
// bodies run speculatively inside hardware transactions and may re-execute
// after an abort. They must therefore touch simulated memory only through
// the htm.Thread API (Load/Store join the read set and undo log; raw
// machine.Peek/Poke bypass conflict detection), must not allocate or free
// simulated memory (not restartable), and must not perform non-restartable
// mutations of captured host state (a re-execution would apply them twice).
func NewTxDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "txdiscipline",
		Doc:  "critical-section bodies touch simulated memory only via the htm.Thread API and perform no non-restartable mutation of captured state",
	}
	a.Run = runTxDiscipline
	return a
}

func runTxDiscipline(pass *Pass) error {
	// Phase 1: summarize and export every declared function.
	local := make(map[*types.Func]*TxSummaryFact)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sum := summarizeTx(pass, fd.Body)
			local[obj] = sum
			pass.ExportObjectFact(obj, sum)
		}
	}
	// Phase 2: find critical-section sites and check everything reachable.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCSSites(pass, fd, local)
		}
	}
	return nil
}

// summarizeTx records the direct raw-state violations and static callees
// of one function body.
func summarizeTx(pass *Pass, body *ast.BlockStmt) *TxSummaryFact {
	sum := &TxSummaryFact{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.FuncOf(call)
		if fn == nil {
			return true
		}
		sum.Callees = append(sum.Callees, fn)
		if msg := rawAccessMsg(fn); msg != "" {
			sum.Viols = append(sum.Viols, TxViol{Pos: call.Pos(), Msg: msg})
		}
		return true
	})
	return sum
}

// rawAccessMsg classifies a callee as a raw-state access forbidden inside
// critical sections, returning the diagnostic text ("" if benign).
func rawAccessMsg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case machinePkgPath:
		switch fn.Name() {
		case "Peek", "Poke":
			return fmt.Sprintf("machine.%s bypasses HTM conflict detection; inside a critical section simulated memory must go through htm.Thread.Load/Store", fn.Name())
		case "AllocRaw", "AllocRawAligned":
			return fmt.Sprintf("machine.%s allocates simulated memory outside transactional tracking; critical sections must use pre-allocated nodes (PrepareNode-style) handed in from outside", fn.Name())
		}
	case htmPath:
		switch fn.Name() {
		case "Alloc", "AllocAligned", "Free", "FreeAligned":
			return fmt.Sprintf("htm.Thread.%s inside a critical section is not restartable: an abort re-executes the body and the allocation or free happens twice; allocate before the section and Recycle after", fn.Name())
		}
	}
	return ""
}

// checkCSSites finds critical-section entry points in fd — calls to
// Read/Write methods of shape func(*htm.Thread, func()) (the rwlock.Lock
// surface, rcu.Domain.Read) and the body argument of (*htm.Thread).Try —
// and checks the section body plus everything it reaches.
func checkCSSites(pass *Pass, fd *ast.FuncDecl, local map[*types.Func]*TxSummaryFact) {
	// Bindings of local variables to function literals, so hoisted bodies
	// (cs := func(){...}; l.Read(t, cs)) resolve.
	bindings := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for i, rhs := range as.Rhs {
				if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok && i < len(as.Lhs) {
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						if o := pass.TypesInfo.Defs[id]; o != nil {
							bindings[o] = lit
						}
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		argIdx := csBodyArg(pass, call)
		if argIdx < 0 || argIdx >= len(call.Args) {
			return true
		}
		switch a := ast.Unparen(call.Args[argIdx]).(type) {
		case *ast.FuncLit:
			checkCSBody(pass, a, local)
		case *ast.Ident:
			if lit := bindings[pass.TypesInfo.Uses[a]]; lit != nil {
				checkCSBody(pass, lit, local)
			} else if fn, ok := pass.TypesInfo.Uses[a].(*types.Func); ok {
				reachCheck(pass, []*types.Func{fn}, local)
			}
		case *ast.SelectorExpr:
			if fn, ok := pass.TypesInfo.Uses[a.Sel].(*types.Func); ok {
				reachCheck(pass, []*types.Func{fn}, local)
			}
		}
		return true
	})
}

// csBodyArg returns the index of the critical-section body argument of
// call, or -1 if call does not enter a critical section. Matched shapes:
// a method named Read or Write with signature (t *htm.Thread, cs func())
// — concrete or via the rwlock.Lock interface — and (*htm.Thread).Try.
func csBodyArg(pass *Pass, call *ast.CallExpr) int {
	fn := pass.FuncOf(call)
	if fn == nil {
		return -1
	}
	if IsNamed(fn, htmPath, "Try") {
		return 0
	}
	if fn.Name() != "Read" && fn.Name() != "Write" {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 2 {
		return -1
	}
	if !isHTMThreadPtr(sig.Params().At(0).Type()) {
		return -1
	}
	cs, ok := sig.Params().At(1).Type().Underlying().(*types.Signature)
	if !ok || cs.Params().Len() != 0 || cs.Results().Len() != 0 {
		return -1
	}
	return 1
}

func isHTMThreadPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Thread" && obj.Pkg() != nil && obj.Pkg().Path() == htmPath
}

// checkCSBody checks one critical-section literal: direct raw accesses,
// non-restartable mutations of captured variables, and the transitive
// closure of everything it calls.
func checkCSBody(pass *Pass, lit *ast.FuncLit, local map[*types.Func]*TxSummaryFact) {
	var roots []*types.Func
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := pass.FuncOf(n); fn != nil {
				roots = append(roots, fn)
				if msg := rawAccessMsg(fn); msg != "" {
					pass.Report(n.Pos(), "critical section: %s", msg)
				}
			} else if isDeleteBuiltin(pass, n) && len(n.Args) > 0 {
				if mid, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && isCaptured(pass, lit, mid) {
					pass.Report(n.Pos(), "critical section deletes from captured map %q: the body may re-execute after an abort and the entry is already gone; stage the deletion outside the section", mid.Name)
				}
			}
		case *ast.AssignStmt:
			checkCapturedMutation(pass, lit, n)
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && isCaptured(pass, lit, id) {
				pass.Report(n.Pos(), "critical section increments captured %q: an aborted body re-executes and applies the mutation twice; compute into a local and assign once, or move it outside the section", id.Name)
			}
		}
		return true
	})
	reachCheck(pass, roots, local)
}

// checkCapturedMutation flags non-restartable assignment forms whose
// target is captured from the enclosing function. A plain `x = expr`
// reassignment is restartable (re-execution recomputes the same value);
// compound assignment and self-append accumulate, and map stores persist
// across the abort.
func checkCapturedMutation(pass *Pass, lit *ast.FuncLit, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && isCaptured(pass, lit, id) {
				pass.Report(as.Pos(), "critical section compound-assigns captured %q (%s): an aborted body re-executes and applies the mutation twice; compute into a local and assign once", id.Name, as.Tok)
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok && isCaptured(pass, lit, id) {
				if t := pass.TypesInfo.TypeOf(l.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Report(as.Pos(), "critical section stores into captured map %q: map writes are not undone by an abort; stage results in a local and publish after the section commits", id.Name)
					}
				}
			}
		case *ast.Ident:
			// x = append(x, ...) on a captured slice grows on every
			// re-execution.
			if i >= len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !isCaptured(pass, lit, l) {
				continue
			}
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[fid].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
					if src, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok &&
						pass.TypesInfo.Uses[src] == pass.TypesInfo.Uses[l] && len(call.Args) > 1 {
						pass.Report(as.Pos(), "critical section self-appends to captured %q: an aborted body re-executes and appends twice; collect into a pointer-to-slice parameter the caller resets, or reset the slice at the top of the body", l.Name)
					}
				}
			}
		}
	}
}

// isCaptured reports whether id refers to a variable declared outside lit
// (a free variable of the critical-section closure).
func isCaptured(pass *Pass, lit *ast.FuncLit, id *ast.Ident) bool {
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

func isDeleteBuiltin(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "delete"
}

// reachCheck walks the static call graph from roots (using this package's
// summaries and imported facts) and reports every raw-state access a
// critical section can reach.
func reachCheck(pass *Pass, roots []*types.Func, local map[*types.Func]*TxSummaryFact) {
	visited := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case htmPath, machinePkgPath:
				// The trusted implementation layer: htm.Thread.Load/Store
				// legitimately reach the raw machine accessors. Direct raw
				// calls in application code are caught by the caller's own
				// summary before traversal gets here.
				continue
			}
		}
		sum, ok := local[fn]
		if !ok {
			var fact TxSummaryFact
			if !pass.ImportObjectFact(fn, &fact) {
				continue // out-of-module or bodiless: nothing known
			}
			sum = &fact
		}
		for _, v := range sum.Viols {
			pass.Report(v.Pos, "%s (reachable from a critical section via %s)", v.Msg, fn.Name())
		}
		work = append(work, sum.Callees...)
	}
}
