package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewHotpath returns the hotpath analyzer. Functions marked with a
// //simlint:hotpath line in their doc comment — the htm load/store/
// commit/abort paths, pinned at 0 allocs/op since the allocation audit —
// must not contain heap-escaping constructs: function literals (closure
// allocation), make/new, map or slice literals, address-of composite
// literals, defer, fmt calls (interface boxing plus formatting buffers),
// non-constant string concatenation, or append into anything but the
// slice being extended in place. The check is intraprocedural: the marker
// is a statement about the function's own body; callees carry their own
// markers (or not) deliberately.
func NewHotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "//simlint:hotpath-marked functions contain no heap-escaping constructs (closures, make/new, map/slice literals, defer, fmt, non-self append)",
	}
	a.Run = runHotpath
	return a
}

const hotpathMarker = "//simlint:hotpath"

func runHotpath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathMarker(fd) {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
	return nil
}

func hasHotpathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Pre-pass: collect append calls used in the x = append(x, ...) reuse
	// idiom — the one append form allowed on a hot path (it extends a
	// persistent buffer in place; capacity grows once, then steady-state
	// calls are allocation-free under the x = x[:0] reset idiom).
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		if types.ExprString(ast.Unparen(as.Lhs[0])) == types.ExprString(ast.Unparen(call.Args[0])) {
			selfAppend[call] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Report(n.Pos(), "hot path %s: function literal allocates a closure on every call; hoist it to a reused field or a named function", name)
			return false
		case *ast.DeferStmt:
			pass.Report(n.Pos(), "hot path %s: defer allocates a deferred-call record; restructure with explicit calls on each return path", name)
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Report(n.Pos(), "hot path %s: map literal allocates; build the map once at construction time", name)
				case *types.Slice:
					pass.Report(n.Pos(), "hot path %s: slice literal allocates a backing array on every call; reuse a preallocated buffer", name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Report(n.Pos(), "hot path %s: &composite literal escapes to the heap; reuse a field or pass by value", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypesInfo.TypeOf(n); t != nil && isStringType(t) {
					if tv, ok := pass.TypesInfo.Types[ast.Expr(n)]; !ok || tv.Value == nil {
						pass.Report(n.Pos(), "hot path %s: string concatenation allocates; precompute the message or use constants", name)
					}
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, name, n, selfAppend)
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkHotpathCall(pass *Pass, name string, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Report(call.Pos(), "hot path %s: make allocates; preallocate at construction time and reuse", name)
			case "new":
				pass.Report(call.Pos(), "hot path %s: new allocates; reuse a field or a pooled value", name)
			case "append":
				if !selfAppend[call] {
					pass.Report(call.Pos(), "hot path %s: append into a slice other than the one being extended escapes or reallocates; use the x = append(x, ...) reuse idiom on a persistent buffer", name)
				}
			}
			return
		}
	}
	if fn := pass.FuncOf(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Report(call.Pos(), "hot path %s: fmt.%s allocates (interface boxing and formatting buffers); use constant panic strings or precomputed messages", name, fn.Name())
	}
}
