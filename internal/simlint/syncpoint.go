package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// syncpointScope lists the packages whose host-side shared state is
// governed by the Sync discipline: the open-system service runner and the
// sharded deployment keep queue/gate/counter state in host memory, which
// is only sound because every mutation happens on a simulated CPU that has
// passed CPU.Sync (it holds the global minimum (time, ID), so host state
// evolves in nondecreasing virtual time at any host worker count).
var syncpointScope = map[string]bool{
	"hrwle/internal/service": true,
	"hrwle/internal/shard":   true,
}

// SyncViol is one shared-state mutation recorded in a function summary.
type SyncViol struct {
	Pos token.Pos
	Msg string
}

// SyncSummaryFact summarizes a function for the syncpoint traversal: the
// shared-state mutations and scope-package callees that appear BEFORE the
// function's first CPU.Sync call (all of them, if it never calls Sync).
// Anything positioned after a Sync is covered — the CPU holds the floor —
// and a covered call site certifies the callee's whole continuation, so
// covered regions need no summary. Exported for every declared function so
// the shard runner's use of the service queue is checked across packages.
type SyncSummaryFact struct {
	BareMuts    []SyncViol
	BareCallees []*types.Func
}

func (*SyncSummaryFact) AFact() {}

// NewSyncpoint returns the syncpoint analyzer. Host-visible shared state
// in the service and shard runners (the dispatch queue, shard gates,
// per-shard counters) must only be mutated under CPU.Sync coverage: on a
// path, starting from the server loop handed to machine.Machine.Run, that
// has passed a c.Sync() call. The analyzer walks the static call graph
// from each Run loop, following only call edges that appear before the
// caller's first Sync, and reports every shared mutation reachable that
// way — state touched before the loop synchronizes is exactly the
// PR 7/9 invariant violation that breaks run determinism across host
// worker counts. Coverage is per-path and does not expire: a Sync
// anywhere earlier on the call path certifies the continuation (the
// counter-after-critical-section idiom), so intra-function reorders below
// a first Sync are out of scope here and left to the determinism CI diff.
func NewSyncpoint() *Analyzer {
	a := &Analyzer{
		Name: "syncpoint",
		Doc:  "host-side shared state in internal/service and internal/shard is mutated only under CPU.Sync coverage, traced from the machine.Run server loops",
	}
	a.Run = runSyncpoint
	return a
}

func runSyncpoint(pass *Pass) error {
	if !syncpointScope[pass.Pkg.Path()] {
		return nil
	}
	// Phase 1: summarize and export every declared function.
	local := make(map[*types.Func]*SyncSummaryFact)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sum := summarizeSync(pass, fd.Body)
			local[obj] = sum
			pass.ExportObjectFact(obj, sum)
		}
	}
	// Phase 2: traverse from every server loop handed to machine.Run.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !IsNamed(pass.FuncOf(call), machinePkgPath, "Run") || len(call.Args) < 2 {
				return true
			}
			switch loop := ast.Unparen(call.Args[1]).(type) {
			case *ast.FuncLit:
				sum := summarizeSync(pass, loop.Body)
				reachSync(pass, sum, local)
			case *ast.Ident:
				if fn, ok := pass.TypesInfo.Uses[loop].(*types.Func); ok {
					reachSync(pass, &SyncSummaryFact{BareCallees: []*types.Func{fn}}, local)
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[loop.Sel].(*types.Func); ok {
					reachSync(pass, &SyncSummaryFact{BareCallees: []*types.Func{fn}}, local)
				}
			}
			return true
		})
	}
	return nil
}

// summarizeSync records the shared mutations and scope-package callees of
// one body that appear before the body's first CPU.Sync call. Nested
// function literals run on their own schedule (tracer callbacks,
// controller hooks) and are excluded from the enclosing summary.
func summarizeSync(pass *Pass, body *ast.BlockStmt) *SyncSummaryFact {
	firstSync := token.Pos(-1)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if IsNamed(pass.FuncOf(call), machinePkgPath, "Sync") {
				if firstSync < 0 || call.Pos() < firstSync {
					firstSync = call.Pos()
				}
			}
		}
		return true
	})
	bare := func(pos token.Pos) bool { return firstSync < 0 || pos < firstSync }

	sum := &SyncSummaryFact{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn := pass.FuncOf(n)
			if fn == nil || !bare(n.Pos()) {
				return true
			}
			if fn.Pkg() != nil && syncpointScope[fn.Pkg().Path()] {
				sum.BareCallees = append(sum.BareCallees, fn)
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE || !bare(n.Pos()) {
				return true
			}
			for _, lhs := range n.Lhs {
				if name, ok := sharedTarget(pass, lhs); ok {
					sum.BareMuts = append(sum.BareMuts, SyncViol{
						Pos: n.Pos(),
						Msg: "assigns host-side shared state " + name,
					})
				}
			}
		case *ast.IncDecStmt:
			if !bare(n.Pos()) {
				return true
			}
			if name, ok := sharedTarget(pass, n.X); ok {
				sum.BareMuts = append(sum.BareMuts, SyncViol{
					Pos: n.Pos(),
					Msg: "updates host-side shared state " + name,
				})
			}
		}
		return true
	})
	return sum
}

// sharedTarget reports whether an assignment target is host-visible shared
// state: the chain reaches its root through a pointer dereference (field
// of a pointer, explicit *p, slice or map element — all aliasable beyond
// this frame) or roots at a package-level variable. A bare local and a
// field chain inside a local value are frame-private and exempt.
func sharedTarget(pass *Pass, lhs ast.Expr) (string, bool) {
	crossed := false
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			crossed = true
			e = ast.Unparen(x.X)
		case *ast.SelectorExpr:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					crossed = true
				}
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					crossed = true
				}
			}
			e = ast.Unparen(x.X)
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[x].(*types.Var)
			if !ok {
				if v, ok = pass.TypesInfo.Defs[x].(*types.Var); !ok {
					return "", false
				}
			}
			if v.Parent() == pass.Pkg.Scope() {
				return v.Name(), true
			}
			if crossed {
				return v.Name(), true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// reachSync walks bare (pre-Sync) call edges from a server loop's summary
// and reports every shared mutation reachable without passing a Sync.
func reachSync(pass *Pass, root *SyncSummaryFact, local map[*types.Func]*SyncSummaryFact) {
	for _, v := range root.BareMuts {
		pass.Report(v.Pos, "server loop %s before its first CPU.Sync: host state must only change while the CPU holds the virtual-time floor", v.Msg)
	}
	visited := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), root.BareCallees...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		sum, ok := local[fn]
		if !ok {
			var fact SyncSummaryFact
			if !pass.ImportObjectFact(fn, &fact) {
				continue
			}
			sum = &fact
		}
		for _, v := range sum.BareMuts {
			pass.Report(v.Pos, "%s with no CPU.Sync on the path from the server loop (via %s): host state must only change while the CPU holds the virtual-time floor", v.Msg, fn.Name())
		}
		work = append(work, sum.BareCallees...)
	}
}
