// Package simlint is a static-analysis suite that enforces the simulator's
// core protocol invariants at vet time — before a single schedule runs:
//
//   - determinism: the discrete-event simulator packages must be free of
//     nondeterminism sources (wall clocks, global math/rand, goroutines,
//     sync primitives, unordered map iteration that can reach output); the
//     per-CPU SplitMix64 stream (internal/machine/rng.go) is the sole
//     blessed randomness source.
//   - abortflow: HTM aborts travel as panics (htm.Thread.abort panics with
//     a pooled *abortSignal that htm.Thread.Try recovers). Every other
//     recover() on a path that may see that panic must classify and
//     re-raise it, and must not retain the pooled payload past the handler.
//   - eventpairs: trace events come in pairs (EvCSBegin/EvCSEnd,
//     EvQuiesceStart/EvQuiesceEnd); a function emitting a Begin must emit
//     the matching End on every return path, and code that can run inside a
//     transaction must close the pair from a defer so the abort unwind
//     cannot orphan it.
//   - txdiscipline: critical-section bodies execute speculatively and may
//     re-run after an abort, so they must touch simulated memory only
//     through the htm.Thread API — never machine.Peek/Poke or the raw
//     allocator — and must not perform non-restartable mutations of
//     captured host state.
//
// The suite is a self-contained reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, object Facts, an analysistest-style
// fixture runner) on top of the standard library's go/ast and go/types,
// because this repository is intentionally dependency-free. Analyzers are
// written against the familiar shape, so swapping in the real framework
// later is mechanical.
//
// Legitimate violations are suppressed with an escape hatch that demands a
// reason:
//
//	//simlint:allow <analyzer> <reason>       (this line, the next line,
//	                                           or a whole function when in
//	                                           its doc comment)
//	//simlint:allow-file <analyzer> <reason>  (the whole file)
package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package. Packages are visited in
	// dependency order, so facts exported by an imported package's pass
	// are visible here.
	Run func(*Pass) error
}

// Fact is a datum attached to a types.Object by one package's pass and
// visible to passes over packages that import it. Unlike x/tools facts,
// these live only in memory for the duration of one suite run (the whole
// program is analyzed in a single process), so no serialization is needed.
type Fact interface{ AFact() }

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one package, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	suite *Suite
	pkg   *Package
}

// Report records a diagnostic. Diagnostics suppressed by a matching
// //simlint:allow comment are counted but not surfaced.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.suite.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches fact to obj for passes over importing packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.suite.exportFact(obj, fact)
}

// ImportObjectFact copies the fact of ptr's concrete type attached to obj
// into ptr and reports whether one was found. ptr must be a non-nil
// pointer to a concrete Fact type.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.suite.importFact(obj, ptr)
}

// Position resolves a token.Pos against the suite's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// FuncOf resolves the static callee of a call expression: a *types.Func
// for direct calls and method calls (including interface methods), nil for
// calls of function values and conversions.
func (p *Pass) FuncOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsNamed reports whether fn is the function or method name declared in
// the package with import path pkgPath. Methods match on the bare method
// name regardless of receiver.
func IsNamed(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
