package locks

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// SCMHLE is hardware lock elision with software-assisted conflict
// management in the style of Afek, Levy and Morrison (PODC'14), discussed
// in the paper's related work: when a transaction aborts on a *conflict*,
// instead of blindly retrying (and likely colliding again), it acquires an
// auxiliary serialization lock and retries in hardware while holding it.
// Conflicting transactions thereby serialize among themselves but still
// commit in hardware and still run concurrently with non-conflicting
// transactions; only persistent failures (capacity) take the real lock.
type SCMHLE struct {
	lock       machine.Addr // the elided application lock
	aux        machine.Addr // auxiliary serialization lock
	maxRetries int
}

// NewSCMHLE creates an SCM-managed HLE scheme.
func NewSCMHLE(sys *htm.System) *SCMHLE {
	return &SCMHLE{
		lock:       sys.M.AllocRawAligned(1),
		aux:        sys.M.AllocRawAligned(1),
		maxRetries: 5,
	}
}

// Name implements rwlock.Lock.
func (l *SCMHLE) Name() string { return "HLE-SCM" }

// Read implements rwlock.Lock.
func (l *SCMHLE) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	l.elide(t, cs)
}

// Write implements rwlock.Lock.
func (l *SCMHLE) Write(t *htm.Thread, cs func()) {
	t.St.WriteCS++
	l.elide(t, cs)
}

func (l *SCMHLE) elide(t *htm.Thread, cs func()) {
	attempt := func() htm.Status {
		return t.Try(false, func() {
			if t.Load(l.lock) != free {
				t.Abort(stats.AbortLockBusy)
			}
			cs()
		})
	}

	// Fast path: uninstrumented attempts.
	var b backoff
	conflicted := false
	for i := 0; i < l.maxRetries; i++ {
		for t.Load(l.lock) != free {
			b.wait(t)
		}
		st := attempt()
		if st.OK {
			t.St.Commits[stats.CommitHTM]++
			return
		}
		if st.Persistent {
			conflicted = false
			goto fallback
		}
		if st.Cause == stats.AbortConflictTx || st.Cause == stats.AbortConflictNonTx {
			conflicted = true
			break
		}
	}

	// Conflict management: serialize with other conflicters on the
	// auxiliary lock, but stay in hardware (the aux lock is NOT the
	// elided lock; unrelated transactions keep committing concurrently).
	if conflicted {
		spinAcquire(t, l.aux)
		for i := 0; i < l.maxRetries; i++ {
			for t.Load(l.lock) != free {
				b.wait(t)
			}
			st := attempt()
			if st.OK {
				spinRelease(t, l.aux)
				t.St.Commits[stats.CommitHTM]++
				return
			}
			if st.Persistent {
				break
			}
		}
		spinRelease(t, l.aux)
	}

fallback:
	spinAcquire(t, l.lock)
	cs()
	spinRelease(t, l.lock)
	t.St.Commits[stats.CommitSGL]++
}
