package locks

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// PRWL is a passive reader-writer lock in the style of Liu, Zhang and
// Chen (USENIX ATC'14). Readers are "passive": entering and leaving a read
// critical section touches only the thread's own status line — no shared
// counter, no atomic instruction. Writers run a version-based consensus:
// they publish a new version and wait until every reader either is outside
// its critical section or has reported seeing the latest version.
//
// The original design targets total-store-order architectures and was
// therefore excluded from the paper's POWER8 evaluation ("designed for
// total store order architectures, which is not the case of PowerPC").
// This simulator is sequentially consistent, so the comparison the paper
// could not run becomes possible — see the "ext-prwl" experiment.
type PRWL struct {
	version  machine.Addr // global writer version
	wactive  machine.Addr // a writer is inside its critical section
	wmutex   machine.Addr // serializes writers
	statuses machine.Addr // per-thread {active, seenVersion} lines
	n        int
	lineW    machine.Addr

	// waits[i] is thread i's reusable consensus waiter (host-side state,
	// owned by the running thread like RWLE's scratch buffers).
	waits []prwlWait
}

// Per-thread status line layout.
const (
	prwlActive = 0 // 1 while inside a read critical section
	prwlSeen   = 1 // last writer version this reader reported
)

// NewPRWL creates a passive reader-writer lock for every CPU of the
// system.
func NewPRWL(sys *htm.System) *PRWL {
	m := sys.M
	n := m.Cfg.CPUs
	return &PRWL{
		version:  m.AllocRawAligned(1),
		wactive:  m.AllocRawAligned(1),
		wmutex:   m.AllocRawAligned(1),
		statuses: m.AllocRawAligned(int64(n) * m.Cfg.LineWords),
		n:        n,
		lineW:    machine.Addr(m.Cfg.LineWords),
		waits:    make([]prwlWait, n),
	}
}

// prwlWait is the writer's per-reader consensus wait as an engine-stepped
// state machine: the streamed active load and the seen-version load of one
// iteration are separate steps, exactly as they are separate scheduling
// points in the open-coded loop; the escalating poll follows a seen-version
// miss, as it did there.
type prwlWait struct {
	t         *htm.Thread
	active    machine.Addr
	seen      machine.Addr
	ver       uint64
	seenPhase bool
	poll      int
}

// Step implements machine.Waiter.
func (w *prwlWait) Step(c *machine.CPU) bool {
	if w.seenPhase {
		w.seenPhase = false
		if w.t.Load(w.seen) >= w.ver {
			return true
		}
		c.SpinFor(w.poll)
		if w.poll < 16 {
			w.poll *= 2
		}
		return false
	}
	if w.t.LoadStream(w.active) != 1 {
		return true
	}
	w.seenPhase = true
	return false
}

// Name implements rwlock.Lock.
func (l *PRWL) Name() string { return "PRWL" }

func (l *PRWL) status(i int) machine.Addr { return l.statuses + machine.Addr(i)*l.lineW }

// Read implements rwlock.Lock: the passive fast path writes only the
// thread's own status line.
func (l *PRWL) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	st := l.status(t.C.ID)
	for {
		t.Store(st+prwlActive, 1)
		t.C.Fence()
		if t.Load(l.wactive) == 0 {
			break
		}
		// A writer is inside: step back and wait for it to finish.
		t.Store(st+prwlActive, 0)
		poll := 1
		for t.Load(l.wactive) != 0 {
			t.C.SpinFor(poll)
			if poll < 32 {
				poll *= 2
			}
		}
	}
	cs()
	// Leave and report the version we are current with.
	t.Store(st+prwlSeen, t.Load(l.version))
	t.Store(st+prwlActive, 0)
	t.St.Commits[stats.CommitUninstrumented]++
}

// Write implements rwlock.Lock: version-based consensus with every reader.
func (l *PRWL) Write(t *htm.Thread, cs func()) {
	t.St.WriteCS++
	spinAcquire(t, l.wmutex)
	ver := t.Load(l.version) + 1
	t.Store(l.version, ver)
	t.Store(l.wactive, 1)
	t.C.Fence()
	// Wait for each reader to be quiescent: outside its section, or
	// having reported the new version (it entered after our publication
	// and will wait on wactive next time).
	for i := 0; i < l.n; i++ {
		if i == t.C.ID {
			continue
		}
		w := &l.waits[t.C.ID]
		*w = prwlWait{t: t, active: l.status(i) + prwlActive, seen: l.status(i) + prwlSeen, ver: ver, poll: 1}
		t.C.Await(w)
	}
	cs()
	t.Store(l.wactive, 0)
	spinRelease(t, l.wmutex)
	t.St.Commits[stats.CommitSGL]++
}
