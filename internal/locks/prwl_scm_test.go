package locks

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

func TestPRWLConsistency(t *testing.T) {
	for _, wp := range []int{10, 50, 90} {
		consistency(t, func(s *htm.System) rwlock.Lock { return NewPRWL(s) }, 8, 100, wp, uint64(wp)+70)
	}
}

func TestSCMHLEConsistency(t *testing.T) {
	for _, wp := range []int{10, 50, 90} {
		consistency(t, func(s *htm.System) rwlock.Lock { return NewSCMHLE(s) }, 8, 100, wp, uint64(wp)+80)
	}
}

func TestPRWLReadersArePassive(t *testing.T) {
	// An uncontended PRWL read section must touch no shared lock line in
	// write mode — only the thread's own status line (plus the wactive /
	// version reads). Verify by checking other threads' read sections
	// don't slow each other down.
	elapsed := func(threads int) int64 {
		sys := newSys(threads, 44)
		lock := NewPRWL(sys)
		return sys.M.Run(threads, func(c *machine.CPU) {
			th := sys.Thread(c.ID)
			for i := 0; i < 100; i++ {
				lock.Read(th, func() { c.Tick(50) })
			}
		})
	}
	one := elapsed(1)
	eight := elapsed(8)
	if eight > one*2 {
		t.Errorf("8 passive readers took %d cycles vs %d for one: readers contend", eight, one)
	}
}

func TestPRWLWriterWaitsForReader(t *testing.T) {
	sys := newSys(2, 45)
	lock := NewPRWL(sys)
	x := sys.M.AllocRawAligned(1)
	var writerDone, readerDone int64
	torn := false
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		if c.ID == 0 {
			lock.Read(th, func() {
				v := th.Load(x)
				c.Tick(20_000)
				if th.Load(x) != v {
					torn = true
				}
			})
			readerDone = c.Now()
		} else {
			c.Tick(2_000)
			lock.Write(th, func() { th.Store(x, 9) })
			writerDone = c.Now()
		}
	})
	if torn {
		t.Error("reader observed the write mid-section")
	}
	if writerDone < readerDone {
		t.Errorf("writer finished at %d before reader at %d: consensus skipped", writerDone, readerDone)
	}
}

func TestSCMSerializesConflictersButCommitsInHardware(t *testing.T) {
	// All threads increment one counter: pure conflict workload. With
	// SCM, the aux lock serializes them but they still commit via HTM —
	// the SGL share should stay small and no updates may be lost.
	const threads, iters = 8, 40
	sys := newSys(threads, 46)
	lock := NewSCMHLE(sys)
	a := sys.M.AllocRawAligned(1)
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < iters; i++ {
			lock.Write(th, func() { th.Store(a, th.Load(a)+1) })
		}
	})
	if got := sys.M.Peek(a); got != threads*iters {
		t.Fatalf("counter = %d, want %d", got, threads*iters)
	}
	b := stats.Merge(sys.Stats(threads), 0)
	if pct := b.CommitPct(stats.CommitHTM); pct < 60 {
		t.Errorf("HTM commit share %.1f%% under SCM, want most sections in hardware", pct)
	}
}

func TestSCMFallsBackOnCapacity(t *testing.T) {
	m := machine.New(machine.Config{CPUs: 2, MemWords: 1 << 18, Seed: 47})
	sys := htm.NewSystem(m, htm.Config{ReadCapLines: 8, WriteCapLines: 8})
	lock := NewSCMHLE(sys)
	arr := sys.M.AllocRawAligned(32 * 16)
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 5; i++ {
			lock.Read(th, func() {
				for j := 0; j < 32; j++ {
					th.Load(arr + machine.Addr(j*16))
				}
			})
		}
	})
	b := stats.Merge(sys.Stats(2), 0)
	if b.Commits[stats.CommitSGL] != 10 {
		t.Errorf("SGL commits = %d, want 10", b.Commits[stats.CommitSGL])
	}
}

func TestSCMAuxLockReleased(t *testing.T) {
	// After any mix of outcomes the auxiliary lock must be free.
	m := machine.New(machine.Config{CPUs: 4, MemWords: 1 << 18, Seed: 48})
	sys := htm.NewSystem(m, htm.Config{ReadCapLines: 8, WriteCapLines: 8})
	lock := NewSCMHLE(sys)
	arr := sys.M.AllocRawAligned(40 * 16)
	sys.M.Run(4, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 20; i++ {
			n := 2 + c.Intn(30) // some sections fit, some exceed capacity
			lock.Write(th, func() {
				for j := 0; j < n; j++ {
					th.Store(arr+machine.Addr(j*16), uint64(i))
				}
			})
		}
	})
	if sys.M.Peek(lock.aux) != free {
		t.Error("auxiliary lock leaked")
	}
	if sys.M.Peek(lock.lock) != free {
		t.Error("main lock leaked")
	}
}
