// Package locks implements the baseline synchronization schemes the paper
// compares RW-LE against (§4): a plain single global lock (SGL), a
// pthread-style read-write lock (RWL), the big-reader lock (BRLock), and
// Rajwar-Goodman hardware lock elision (HLE) over the same HTM substrate.
//
// All lock metadata lives in simulated memory so acquisition and hand-off
// have honest coherence costs, and — crucially for HLE — so that fallback
// acquisitions conflict with transactions that subscribed the lock word.
package locks

import (
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

const (
	free   uint64 = 0
	locked uint64 = 1
)

// backoff is a bounded randomized exponential backoff, the standard remedy
// for hot-lock crowding (glibc's futex path behaves similarly by parking
// waiters): without it, a cohort of spinners can exclude one contender —
// e.g. a writer trying to re-take the internal mutex to clear its active
// flag — more or less indefinitely.
type backoff struct{ shift uint }

func (b *backoff) wait(t *htm.Thread) {
	t.C.SpinFor(1 + t.C.Intn(1<<b.shift))
	if b.shift < 8 {
		b.shift++
	}
}

// spinAcquire acquires a test-and-test-and-set spin lock at word a with
// randomized exponential backoff. The loop runs as an engine-stepped wait,
// so a contended acquisition costs no coroutine switches per poll.
func spinAcquire(t *htm.Thread, a machine.Addr) {
	t.AwaitAcquire(a, 8)
}

func spinRelease(t *htm.Thread, a machine.Addr) { t.Store(a, free) }

// SGL is a single global mutex: readers and writers alike serialize.
type SGL struct{ lock machine.Addr }

// NewSGL creates a single-global-lock scheme.
func NewSGL(sys *htm.System) *SGL {
	return &SGL{lock: sys.M.AllocRawAligned(1)}
}

// Name implements rwlock.Lock.
func (l *SGL) Name() string { return "SGL" }

// Read implements rwlock.Lock.
func (l *SGL) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	l.enter(t, false, cs)
}

// Write implements rwlock.Lock.
func (l *SGL) Write(t *htm.Thread, cs func()) {
	t.St.WriteCS++
	l.enter(t, true, cs)
}

func (l *SGL) enter(t *htm.Thread, write bool, cs func()) {
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(write, 0, 0))
	spinAcquire(t, l.lock)
	cs()
	spinRelease(t, l.lock)
	t.St.Commits[stats.CommitSGL]++
	t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(write, uint64(stats.CommitSGL), 0))
}

// RWL models the pthread read-write lock: an internal mutex protecting
// reader/writer counters on a shared cache line, with writer preference to
// avoid writer starvation. Every entry and exit takes the internal mutex,
// so the hot line ping-pongs between all participants — the behaviour that
// limits RWL's read scalability in the paper.
type RWL struct {
	// Field layout within one cache line of simulated memory.
	mutex          machine.Addr // internal mutex
	readers        machine.Addr // readers inside the critical section
	writerActive   machine.Addr // 1 while a writer is inside
	writersWaiting machine.Addr // writers queued
}

// NewRWL creates a pthread-style read-write lock.
func NewRWL(sys *htm.System) *RWL {
	base := sys.M.AllocRawAligned(4)
	return &RWL{mutex: base, readers: base + 1, writerActive: base + 2, writersWaiting: base + 3}
}

// Name implements rwlock.Lock.
func (l *RWL) Name() string { return "RWL" }

// Read implements rwlock.Lock.
func (l *RWL) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(false, 0, 0))
	var b backoff
	for {
		spinAcquire(t, l.mutex)
		if t.Load(l.writerActive) == 0 && t.Load(l.writersWaiting) == 0 {
			t.Store(l.readers, t.Load(l.readers)+1)
			spinRelease(t, l.mutex)
			break
		}
		spinRelease(t, l.mutex)
		b.wait(t)
	}
	cs()
	spinAcquire(t, l.mutex)
	t.Store(l.readers, t.Load(l.readers)-1)
	spinRelease(t, l.mutex)
	t.St.Commits[stats.CommitUninstrumented]++
	t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(false, uint64(stats.CommitUninstrumented), 0))
}

// Write implements rwlock.Lock.
func (l *RWL) Write(t *htm.Thread, cs func()) {
	t.St.WriteCS++
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(true, 0, 0))
	spinAcquire(t, l.mutex)
	t.Store(l.writersWaiting, t.Load(l.writersWaiting)+1)
	var b backoff
	for t.Load(l.readers) != 0 || t.Load(l.writerActive) != 0 {
		spinRelease(t, l.mutex)
		b.wait(t)
		spinAcquire(t, l.mutex)
	}
	t.Store(l.writersWaiting, t.Load(l.writersWaiting)-1)
	t.Store(l.writerActive, 1)
	spinRelease(t, l.mutex)
	cs()
	spinAcquire(t, l.mutex)
	t.Store(l.writerActive, 0)
	spinRelease(t, l.mutex)
	t.St.Commits[stats.CommitSGL]++
	t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(true, uint64(stats.CommitSGL), 0))
}

// BRLock is the big-reader lock (once in the Linux kernel): each thread
// owns a private mutex on its own cache line. Readers take only their own
// mutex (cheap, no sharing); writers must take every thread's mutex,
// trading write throughput for read throughput.
type BRLock struct {
	mutexes machine.Addr
	n       int
	lineW   machine.Addr
}

// NewBRLock creates a big-reader lock with one private mutex per CPU.
func NewBRLock(sys *htm.System) *BRLock {
	m := sys.M
	n := m.Cfg.CPUs
	return &BRLock{
		mutexes: m.AllocRawAligned(int64(n) * m.Cfg.LineWords),
		n:       n,
		lineW:   machine.Addr(m.Cfg.LineWords),
	}
}

// Name implements rwlock.Lock.
func (l *BRLock) Name() string { return "BRLock" }

func (l *BRLock) mutexAddr(i int) machine.Addr { return l.mutexes + machine.Addr(i)*l.lineW }

// Read implements rwlock.Lock.
func (l *BRLock) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(false, 0, 0))
	mine := l.mutexAddr(t.C.ID)
	spinAcquire(t, mine)
	cs()
	spinRelease(t, mine)
	t.St.Commits[stats.CommitUninstrumented]++
	t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(false, uint64(stats.CommitUninstrumented), 0))
}

// Write implements rwlock.Lock.
func (l *BRLock) Write(t *htm.Thread, cs func()) {
	t.St.WriteCS++
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(true, 0, 0))
	for i := 0; i < l.n; i++ {
		spinAcquire(t, l.mutexAddr(i))
	}
	cs()
	for i := l.n - 1; i >= 0; i-- {
		spinRelease(t, l.mutexAddr(i))
	}
	t.St.Commits[stats.CommitSGL]++
	t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(true, uint64(stats.CommitSGL), 0))
}

// HLE is Rajwar-Goodman hardware lock elision: read and write critical
// sections alike run as regular hardware transactions that subscribe the
// (elided) global lock; after MaxRetries failed attempts — immediately on
// a persistent failure — the section falls back to acquiring the lock,
// which aborts all concurrent transactions. HLE is oblivious to read-write
// lock semantics: this is exactly the baseline the paper measures.
type HLE struct {
	lock       machine.Addr
	maxRetries int
}

// NewHLE creates an HLE scheme with the paper's retry budget of 5.
func NewHLE(sys *htm.System) *HLE {
	return &HLE{lock: sys.M.AllocRawAligned(1), maxRetries: 5}
}

// NewHLEWithRetries creates an HLE scheme with a custom retry budget.
func NewHLEWithRetries(sys *htm.System, retries int) *HLE {
	return &HLE{lock: sys.M.AllocRawAligned(1), maxRetries: retries}
}

// Name implements rwlock.Lock.
func (l *HLE) Name() string { return "HLE" }

// Read implements rwlock.Lock.
func (l *HLE) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	l.elide(t, false, cs)
}

// Write implements rwlock.Lock.
func (l *HLE) Write(t *htm.Thread, cs func()) {
	t.St.WriteCS++
	l.elide(t, true, cs)
}

func (l *HLE) elide(t *htm.Thread, write bool, cs func()) {
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(write, 0, 0))
	var b backoff
	var failed uint64
	for attempt := 0; attempt < l.maxRetries; attempt++ {
		// Wait for the lock to be free before speculating; starting while
		// it is held guarantees an immediate self-abort. The backoff shift
		// persists across retry attempts, as it did when b was spun inline.
		b.shift = t.AwaitWordBackoff(l.lock, ^uint64(0), free, true, b.shift, 8)
		st := t.Try(false, func() {
			if t.Load(l.lock) != free { // subscribe the elided lock
				t.Abort(stats.AbortLockBusy)
			}
			cs()
		})
		if st.OK {
			t.St.Commits[stats.CommitHTM]++
			t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(write, uint64(stats.CommitHTM), failed))
			return
		}
		failed++
		if st.Persistent {
			break
		}
	}
	// Non-speculative fallback: acquire the original lock, killing all
	// subscribed transactions.
	spinAcquire(t, l.lock)
	cs()
	spinRelease(t, l.lock)
	t.St.Commits[stats.CommitSGL]++
	t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(write, uint64(stats.CommitSGL), failed))
}

// Factories returns the baseline lock factories keyed by scheme name.
func Factories() map[string]rwlock.Factory {
	return map[string]rwlock.Factory{
		"SGL":    func(s *htm.System) rwlock.Lock { return NewSGL(s) },
		"RWL":    func(s *htm.System) rwlock.Lock { return NewRWL(s) },
		"BRLock": func(s *htm.System) rwlock.Lock { return NewBRLock(s) },
		"HLE":    func(s *htm.System) rwlock.Lock { return NewHLE(s) },
	}
}
