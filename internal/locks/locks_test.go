package locks

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

func newSys(cpus int, seed uint64) *htm.System {
	m := machine.New(machine.Config{CPUs: cpus, MemWords: 1 << 18, Seed: seed})
	return htm.NewSystem(m, htm.Config{})
}

// consistency runs the shared torn-snapshot / lost-update stress against a
// baseline scheme.
func consistency(t *testing.T, mk rwlock.Factory, threads, iters, writePct int, seed uint64) {
	t.Helper()
	const k = 5
	sys := newSys(threads, seed)
	lock := mk(sys)
	words := make([]machine.Addr, k)
	for i := range words {
		words[i] = sys.M.AllocRawAligned(1)
	}
	torn, writes := 0, 0
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < iters; i++ {
			if c.Intn(100) < writePct {
				lock.Write(th, func() {
					v := th.Load(words[0]) + 1
					for _, w := range words {
						th.Store(w, v)
					}
				})
				writes++
			} else {
				lock.Read(th, func() {
					v0 := th.Load(words[0])
					for _, w := range words[1:] {
						if th.Load(w) != v0 {
							torn++
						}
					}
				})
			}
			c.Tick(int64(c.Intn(150)))
		}
	})
	if torn > 0 {
		t.Errorf("%s: %d torn snapshots", lock.Name(), torn)
	}
	if got := sys.M.Peek(words[0]); got != uint64(writes) {
		t.Errorf("%s: final = %d, want %d", lock.Name(), got, writes)
	}
}

func TestSGLConsistency(t *testing.T) {
	consistency(t, func(s *htm.System) rwlock.Lock { return NewSGL(s) }, 8, 100, 30, 1)
}

func TestRWLConsistency(t *testing.T) {
	consistency(t, func(s *htm.System) rwlock.Lock { return NewRWL(s) }, 8, 100, 30, 2)
}

func TestBRLockConsistency(t *testing.T) {
	consistency(t, func(s *htm.System) rwlock.Lock { return NewBRLock(s) }, 8, 100, 30, 3)
}

func TestHLEConsistency(t *testing.T) {
	for _, wp := range []int{10, 50, 90} {
		consistency(t, func(s *htm.System) rwlock.Lock { return NewHLE(s) }, 8, 100, wp, uint64(wp))
	}
}

func TestBRLockReadersRunInParallel(t *testing.T) {
	// N readers with long critical sections under BRLock must overlap
	// (each takes only its private mutex); under SGL they serialize.
	elapsed := func(mk rwlock.Factory) int64 {
		sys := newSys(8, 4)
		lock := mk(sys)
		return sys.M.Run(8, func(c *machine.CPU) {
			th := sys.Thread(c.ID)
			lock.Read(th, func() { c.Tick(10_000) })
		})
	}
	br := elapsed(func(s *htm.System) rwlock.Lock { return NewBRLock(s) })
	sgl := elapsed(func(s *htm.System) rwlock.Lock { return NewSGL(s) })
	if br > 2*10_000 {
		t.Errorf("BRLock readers serialized: %d cycles", br)
	}
	if sgl < 8*10_000 {
		t.Errorf("SGL readers overlapped: %d cycles", sgl)
	}
}

func TestBRLockWriteCostScalesWithCPUs(t *testing.T) {
	// A BRLock write must visit every private mutex.
	cost := func(cpus int) int64 {
		sys := newSys(cpus, 5)
		lock := NewBRLock(sys)
		return sys.M.Run(1, func(c *machine.CPU) {
			lock.Write(sys.Thread(0), func() {})
		})
	}
	if c64, c4 := cost(64), cost(4); c64 < 4*c4 {
		t.Errorf("write cost: 64 CPUs %d vs 4 CPUs %d — not scaling with N", c64, c4)
	}
}

func TestRWLWriterPreferenceNoStarvation(t *testing.T) {
	// With readers streaming, a writer must still get in (writersWaiting
	// blocks new readers).
	sys := newSys(4, 6)
	lock := NewRWL(sys)
	a := sys.M.AllocRawAligned(1)
	var writerDone int64
	sys.M.Run(4, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		if c.ID == 0 {
			c.Tick(5_000)
			lock.Write(th, func() { th.Store(a, 1) })
			writerDone = c.Now()
		} else {
			for i := 0; i < 200; i++ {
				lock.Read(th, func() { th.Load(a); c.Tick(500) })
			}
		}
	})
	if sys.M.Peek(a) != 1 {
		t.Fatal("write lost")
	}
	if writerDone == 0 {
		t.Fatal("writer never ran")
	}
}

func TestHLECommitsViaHTMWhenSmall(t *testing.T) {
	sys := newSys(4, 7)
	lock := NewHLE(sys)
	a := sys.M.AllocRawAligned(1)
	sys.M.Run(4, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 30; i++ {
			lock.Read(th, func() { th.Load(a) })
			c.Tick(int64(c.Intn(300)))
		}
	})
	b := stats.Merge(sys.Stats(4), 0)
	if b.Commits[stats.CommitHTM] == 0 {
		t.Error("small read sections never elided")
	}
	if got := b.CommitPct(stats.CommitHTM); got < 90 {
		t.Errorf("HTM commit share = %.1f%%, want > 90%%", got)
	}
}

func TestHLEFallsBackOnCapacity(t *testing.T) {
	m := machine.New(machine.Config{CPUs: 2, MemWords: 1 << 18, Seed: 8})
	sys := htm.NewSystem(m, htm.Config{ReadCapLines: 8, WriteCapLines: 8})
	lock := NewHLE(sys)
	arr := sys.M.AllocRawAligned(32 * 16)
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 5; i++ {
			lock.Read(th, func() {
				for j := 0; j < 32; j++ { // 32 lines > 8 budget
					th.Load(arr + machine.Addr(j*16))
				}
			})
		}
	})
	b := stats.Merge(sys.Stats(2), 0)
	if b.Commits[stats.CommitSGL] != 10 {
		t.Errorf("SGL commits = %d, want 10 (all sections over capacity)", b.Commits[stats.CommitSGL])
	}
	if b.Aborts[stats.AbortCapacity] == 0 {
		t.Error("no capacity aborts recorded")
	}
}

func TestHLEFallbackAbortsConcurrentTxs(t *testing.T) {
	// When one section falls back to the lock, concurrent speculating
	// sections must abort (they subscribed the lock word).
	m := machine.New(machine.Config{CPUs: 4, MemWords: 1 << 18, Seed: 9})
	sys := htm.NewSystem(m, htm.Config{ReadCapLines: 8, WriteCapLines: 8})
	lock := NewHLE(sys)
	big := sys.M.AllocRawAligned(32 * 16)
	small := sys.M.AllocRawAligned(1)
	sys.M.Run(4, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 10; i++ {
			if c.ID == 0 {
				lock.Write(th, func() { // over-capacity: forces fallback
					for j := 0; j < 32; j++ {
						th.Store(big+machine.Addr(j*16), uint64(i))
					}
				})
			} else {
				lock.Read(th, func() { th.Load(small); c.Tick(2_000) })
			}
		}
	})
	b := stats.Merge(sys.Stats(4), 0)
	if b.Aborts[stats.AbortConflictNonTx]+b.Aborts[stats.AbortLockBusy] == 0 {
		t.Errorf("expected lock-driven aborts of readers, got %v", b.Aborts)
	}
}

func TestHLERetryBudgetRespected(t *testing.T) {
	// A section that always conflicts transiently must attempt exactly
	// maxRetries transactions before the fallback.
	m := machine.New(machine.Config{CPUs: 1, MemWords: 1 << 18, Seed: 10, Paging: machine.PagingConfig{Enabled: true, PageWords: 64, ResidentLimit: 2, TLBEntries: 2}})
	sys := htm.NewSystem(m, htm.Config{})
	lock := NewHLEWithRetries(sys, 3)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		lock.Read(th, func() {
			// Touch enough distinct pages that every attempt faults
			// (transient non-tx abort), exhausting the retry budget.
			for p := 0; p < 40; p++ {
				th.Load(machine.Addr(p * 64))
			}
		})
	})
	st := &sys.Thread(0).St
	if st.TxStarts != 3 {
		t.Errorf("TxStarts = %d, want 3", st.TxStarts)
	}
	if st.Commits[stats.CommitSGL] != 1 {
		t.Errorf("commits = %v, want 1 SGL", st.Commits)
	}
}

func TestFactoriesComplete(t *testing.T) {
	fs := Factories()
	for _, name := range []string{"SGL", "RWL", "BRLock", "HLE"} {
		f, ok := fs[name]
		if !ok {
			t.Fatalf("missing factory %s", name)
		}
		sys := newSys(2, 1)
		if got := f(sys).Name(); got != name {
			t.Errorf("factory %s built lock named %s", name, got)
		}
	}
}
