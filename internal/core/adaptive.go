package core

// adaptiveController implements the self-tuning retry policy that the
// paper's related work motivates (Diegues & Romano's workload-oblivious
// tuning of HTM retry budgets [9]): instead of the fixed 5+5 budgets, it
// observes a window of write critical sections and hill-climbs the HTM
// budget between 0 and maxBudget.
//
// The controller is intentionally simple and fully deterministic: every
// window of `window` writer outcomes it compares the fraction of sections
// that committed on the HTM path against two thresholds, growing the
// budget when HTM is paying off and shrinking it when attempts are being
// wasted (capacity-bound workloads converge to the ROT-first behaviour of
// RW-LE_PES; conflict-free workloads converge to long HTM budgets).
//
// State is host-side and mutated only by the token-holding CPU, so it is
// race-free and reproducible.
type adaptiveController struct {
	window    int
	maxBudget int

	budget    int // current MAX-HTM
	samples   int
	htmWins   int
	htmTried  int
	lastDir   int // +1 growing, -1 shrinking (momentum)
	winRate10 int // last window's win rate in tenths, for introspection
}

func newAdaptiveController() *adaptiveController {
	return &adaptiveController{window: 64, maxBudget: 8, budget: 5, lastDir: 1}
}

// Budget returns the current MAX-HTM budget.
func (a *adaptiveController) Budget() int { return a.budget }

// WinRate10 returns the last completed window's HTM win rate in tenths
// (0–10), or -1 if the last window attempted no HTM at all (budget 0).
// Before the first window completes it reports 0.
func (a *adaptiveController) WinRate10() int { return a.winRate10 }

// record feeds one writer outcome: whether the HTM path was attempted at
// all and whether it ultimately committed the section.
func (a *adaptiveController) record(htmTried, htmWon bool) {
	a.samples++
	if htmTried {
		a.htmTried++
		if htmWon {
			a.htmWins++
		}
	}
	if a.samples < a.window {
		return
	}
	rate := -1
	if a.htmTried > 0 {
		rate = 10 * a.htmWins / a.htmTried
	}
	a.winRate10 = rate
	switch {
	case rate < 0:
		// HTM disabled: probe it again occasionally so the controller
		// can escape budget 0 if the workload changed.
		a.budget = 1
		a.lastDir = 1
	case rate >= 7: // ≥70% of attempted sections commit via HTM: grow
		if a.budget < a.maxBudget {
			a.budget++
		}
		a.lastDir = 1
	case rate <= 2: // ≤20%: HTM attempts are wasted work, shrink fast
		a.budget /= 2
		a.lastDir = -1
	default:
		// Mid-range: drift with momentum, one step at a time.
		a.budget += a.lastDir
		if a.budget > a.maxBudget {
			a.budget = a.maxBudget
		}
		if a.budget < 0 {
			a.budget = 0
		}
	}
	a.samples, a.htmWins, a.htmTried = 0, 0, 0
}
