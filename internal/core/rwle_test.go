package core

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

func newSys(cpus int, seed uint64) *htm.System {
	m := machine.New(machine.Config{CPUs: cpus, MemWords: 1 << 18, Seed: seed})
	return htm.NewSystem(m, htm.Config{})
}

// snapshotWorkload runs the canonical consistency stress for a lock scheme:
// writers set K words (on distinct cache lines) to one monotonically
// increasing value; readers assert all K words are equal — the invariant
// the paper's Figure 1 shows is violated without quiescence.
func snapshotWorkload(t *testing.T, mk func(*htm.System) rwlock.Lock, threads, iters, writePct int, seed uint64) {
	t.Helper()
	const k = 6
	sys := newSys(threads, seed)
	lock := mk(sys)
	words := make([]machine.Addr, k)
	for i := range words {
		words[i] = sys.M.AllocRawAligned(1)
	}
	var inconsistencies, writes int
	sys.M.Run(threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < iters; i++ {
			if c.Intn(100) < writePct {
				lock.Write(th, func() {
					v := th.Load(words[0]) + 1
					for _, w := range words {
						th.Store(w, v)
					}
				})
				writes++
			} else {
				lock.Read(th, func() {
					v0 := th.Load(words[0])
					for _, w := range words[1:] {
						if th.Load(w) != v0 {
							inconsistencies++
						}
					}
				})
			}
			c.Tick(int64(c.Intn(200)))
		}
	})
	if inconsistencies > 0 {
		t.Errorf("%s: %d torn snapshots observed", lock.Name(), inconsistencies)
	}
	// Writers must not lose updates: the final value counts committed
	// write sections exactly (each write increments by one, serialized).
	if got := sys.M.Peek(words[0]); got != uint64(writes) {
		t.Errorf("%s: final value %d, want %d (lost or duplicated updates)", lock.Name(), got, writes)
	}
	for _, w := range words[1:] {
		if sys.M.Peek(w) != sys.M.Peek(words[0]) {
			t.Errorf("%s: final state torn", lock.Name())
		}
	}
}

func optLock(s *htm.System) rwlock.Lock { return New(s, Opt()) }
func pesLock(s *htm.System) rwlock.Lock { return New(s, Pes()) }
func fairLock(s *htm.System) rwlock.Lock {
	o := Opt()
	o.Fair = true
	o.Name = "RW-LE_FAIR"
	return New(s, o)
}
func splitLock(s *htm.System) rwlock.Lock { o := Opt(); o.SplitLocks = true; return New(s, o) }
func basicLock(s *htm.System) rwlock.Lock { return NewBasic(s) }

func TestSnapshotConsistencyOpt(t *testing.T) {
	for _, wp := range []int{10, 50, 90} {
		snapshotWorkload(t, optLock, 8, 120, wp, uint64(wp))
	}
}

func TestSnapshotConsistencyPes(t *testing.T) {
	for _, wp := range []int{10, 50, 90} {
		snapshotWorkload(t, pesLock, 8, 120, wp, uint64(wp)+100)
	}
}

func TestSnapshotConsistencyFair(t *testing.T) {
	for _, wp := range []int{10, 50, 90} {
		snapshotWorkload(t, fairLock, 8, 120, wp, uint64(wp)+200)
	}
}

func TestSnapshotConsistencySplitLocks(t *testing.T) {
	for _, wp := range []int{10, 50, 90} {
		snapshotWorkload(t, splitLock, 8, 120, wp, uint64(wp)+300)
	}
}

func TestSnapshotConsistencyBasic(t *testing.T) {
	for _, wp := range []int{10, 50} {
		snapshotWorkload(t, basicLock, 6, 80, wp, uint64(wp)+400)
	}
}

func TestSnapshotConsistencyManyThreads(t *testing.T) {
	snapshotWorkload(t, optLock, 32, 40, 20, 5)
}

func TestSnapshotConsistencyManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := uint64(1); seed <= 8; seed++ {
		snapshotWorkload(t, optLock, 8, 60, 30, seed)
		snapshotWorkload(t, pesLock, 8, 60, 30, seed+50)
	}
}

func TestReadersDoNotBlockOnSpeculativeWriter(t *testing.T) {
	// A reader whose critical section overlaps a (disjoint) speculative
	// writer must finish without waiting: strong reader progress is the
	// point of RW-LE. The writer, by contrast, must quiesce until the
	// reader leaves.
	sys := newSys(2, 1)
	lock := New(sys, Opt())
	x := sys.M.AllocRawAligned(1)
	y := sys.M.AllocRawAligned(1)
	var readerDone, writerDone int64
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		if c.ID == 0 {
			lock.Read(th, func() {
				th.Load(y)
				c.Tick(50_000) // long read CS
			})
			readerDone = c.Now()
		} else {
			c.Tick(5_000) // start mid-read
			lock.Write(th, func() {
				th.Store(x, 1)
			})
			writerDone = c.Now()
		}
	})
	if readerDone > 52_000+5_000 {
		t.Errorf("reader finished at %d: it blocked on the writer", readerDone)
	}
	if writerDone < 50_000 {
		t.Errorf("writer finished at %d, before the reader left at ~50k: quiescence skipped", writerDone)
	}
	if sys.M.Peek(x) != 1 {
		t.Error("write lost")
	}
}

func TestWriterHTMPathUsedWhenSmall(t *testing.T) {
	sys := newSys(4, 2)
	lock := New(sys, Opt())
	a := sys.M.AllocRawAligned(1)
	sys.M.Run(4, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 25; i++ {
			lock.Write(th, func() { th.Store(a, th.Load(a)+1) })
			c.Tick(int64(c.Intn(500)))
		}
	})
	b := stats.Merge(sys.Stats(4), 0)
	if b.Commits[stats.CommitHTM] == 0 {
		t.Error("no HTM commits for small uncontended writes")
	}
	if sys.M.Peek(a) != 100 {
		t.Errorf("counter = %d, want 100", sys.M.Peek(a))
	}
}

func TestWriterFallsBackToROTOnCapacity(t *testing.T) {
	// Critical sections that read far beyond the HTM budget but write
	// little must commit via ROT, not the global lock.
	m := machine.New(machine.Config{CPUs: 2, MemWords: 1 << 18, Seed: 3})
	sys := htm.NewSystem(m, htm.Config{ReadCapLines: 16, WriteCapLines: 64})
	lock := New(sys, Opt())
	arr := sys.M.AllocRawAligned(int64(64) * m.Cfg.LineWords)
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 10; i++ {
			lock.Write(th, func() {
				var s uint64
				for j := int64(0); j < 64; j++ { // 64 lines read > 16 budget
					s += th.Load(arr + machine.Addr(j*16))
				}
				th.Store(arr, s+1)
			})
		}
	})
	b := stats.Merge(sys.Stats(2), 0)
	if b.Commits[stats.CommitROT] == 0 {
		t.Errorf("expected ROT commits, breakdown: %v", b.Commits)
	}
	if b.Commits[stats.CommitSGL] != 0 {
		t.Errorf("fell through to global lock: %v", b.Commits)
	}
	if b.Aborts[stats.AbortCapacity] == 0 {
		t.Error("expected HTM capacity aborts to trigger the fallback")
	}
}

func TestWriterFallsBackToNSOnWriteCapacity(t *testing.T) {
	// Sections that WRITE beyond the budget exceed even ROT capacity and
	// must complete non-speculatively.
	m := machine.New(machine.Config{CPUs: 2, MemWords: 1 << 18, Seed: 3})
	sys := htm.NewSystem(m, htm.Config{ReadCapLines: 16, WriteCapLines: 8})
	lock := New(sys, Opt())
	arr := sys.M.AllocRawAligned(int64(32) * m.Cfg.LineWords)
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 5; i++ {
			lock.Write(th, func() {
				for j := int64(0); j < 32; j++ {
					th.Store(arr+machine.Addr(j*16), uint64(i))
				}
			})
		}
	})
	b := stats.Merge(sys.Stats(2), 0)
	if b.Commits[stats.CommitSGL] != 10 {
		t.Errorf("SGL commits = %d, want 10: %v", b.Commits[stats.CommitSGL], b.Commits)
	}
	if b.Aborts[stats.AbortROTCapacity] == 0 {
		t.Error("expected ROT capacity aborts on the way down")
	}
}

func TestPesNeverUsesHTMPath(t *testing.T) {
	sys := newSys(4, 9)
	lock := New(sys, Pes())
	a := sys.M.AllocRawAligned(1)
	sys.M.Run(4, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 20; i++ {
			lock.Write(th, func() { th.Store(a, th.Load(a)+1) })
		}
	})
	b := stats.Merge(sys.Stats(4), 0)
	if b.Commits[stats.CommitHTM] != 0 {
		t.Errorf("PES variant committed via HTM: %v", b.Commits)
	}
	if b.Commits[stats.CommitROT] == 0 {
		t.Error("PES variant never used ROT")
	}
	if got := sys.M.Peek(a); got != 80 {
		t.Errorf("counter = %d, want 80", got)
	}
}

func TestReaderSeesCommittedWrite(t *testing.T) {
	sys := newSys(2, 4)
	lock := New(sys, Opt())
	a := sys.M.AllocRawAligned(1)
	var seen uint64
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		if c.ID == 0 {
			lock.Write(th, func() { th.Store(a, 42) })
		} else {
			c.Tick(200_000) // well after the writer
			lock.Read(th, func() { seen = th.Load(a) })
		}
	})
	if seen != 42 {
		t.Errorf("reader saw %d, want 42", seen)
	}
}

func TestFairReaderNotStarvedByWriterStream(t *testing.T) {
	// With ROTs disabled (as in the paper's fairness experiment) and a
	// steady stream of NS writers, the fair variant must admit readers in
	// bounded time (after at most the current owner), while counting on
	// version filtering for its quiescence.
	mk := func(fair bool) int64 {
		sys := newSys(4, 11)
		opts := Options{MaxHTM: 0, MaxROT: 0, Fair: fair} // NS-only writers
		lock := New(sys, opts)
		a := sys.M.AllocRawAligned(1)
		var readerEntered int64 = -1
		sys.M.Run(4, func(c *machine.CPU) {
			th := sys.Thread(c.ID)
			if c.ID == 0 {
				c.Tick(1000)
				lock.Read(th, func() {
					readerEntered = c.Now()
					th.Load(a)
				})
			} else {
				for i := 0; i < 40; i++ {
					lock.Write(th, func() {
						th.Store(a, th.Load(a)+1)
						c.Tick(2000) // long write CS
					})
				}
			}
		})
		if sys.M.Peek(a) != 120 {
			t.Errorf("writes lost: %d", sys.M.Peek(a))
		}
		return readerEntered
	}
	fair := mk(true)
	unfair := mk(false)
	if fair < 0 || unfair < 0 {
		t.Fatal("reader never entered")
	}
	if fair > unfair {
		t.Errorf("fair variant admitted reader at %d, unfair at %d: fairness regressed", fair, unfair)
	}
}

func TestQuiesceWaitRecorded(t *testing.T) {
	sys := newSys(2, 6)
	lock := New(sys, Opt())
	x := sys.M.AllocRawAligned(1)
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		if c.ID == 0 {
			lock.Read(th, func() { c.Tick(30_000) })
		} else {
			c.Tick(3_000)
			lock.Write(th, func() { th.Store(x, 1) })
		}
	})
	if sys.Thread(1).St.QuiesceWait < 20_000 {
		t.Errorf("QuiesceWait = %d, want >= 20000", sys.Thread(1).St.QuiesceWait)
	}
}

func TestPathSelector(t *testing.T) {
	cases := []struct {
		name           string
		maxHTM, maxROT int
		events         []bool // persistent flag per failure
		want           []Path // path before each failure, then after all
	}{
		{"opt transient walk", 2, 2, []bool{false, false, false, false},
			[]Path{PathHTM, PathHTM, PathROT, PathROT, PathNS}},
		{"persistent skips retries", 2, 2, []bool{true, true},
			[]Path{PathHTM, PathROT, PathNS}},
		{"pes starts at ROT", 0, 2, []bool{false, false},
			[]Path{PathROT, PathROT, PathNS}},
		{"no speculative paths", 0, 0, nil, []Path{PathNS}},
		{"rot disabled goes straight to NS", 2, 0, []bool{false, true},
			[]Path{PathHTM, PathHTM, PathNS}},
	}
	for _, tc := range cases {
		s := newPathSelector(tc.maxHTM, tc.maxROT)
		for i, persistent := range tc.events {
			if got := s.current(); got != tc.want[i] {
				t.Errorf("%s: step %d path = %v, want %v", tc.name, i, got, tc.want[i])
			}
			s.failed(persistent)
		}
		if got := s.current(); got != tc.want[len(tc.want)-1] {
			t.Errorf("%s: final path = %v, want %v", tc.name, got, tc.want[len(tc.want)-1])
		}
	}
}

func TestDeterministicStats(t *testing.T) {
	run := func() stats.Breakdown {
		sys := newSys(8, 77)
		lock := New(sys, Opt())
		a := sys.M.AllocRawAligned(1)
		cycles := sys.M.Run(8, func(c *machine.CPU) {
			th := sys.Thread(c.ID)
			for i := 0; i < 50; i++ {
				if c.Intn(10) == 0 {
					lock.Write(th, func() { th.Store(a, th.Load(a)+1) })
				} else {
					lock.Read(th, func() { th.Load(a) })
				}
			}
		})
		return stats.Merge(sys.Stats(8), cycles)
	}
	b1, b2 := run(), run()
	if b1 != b2 {
		t.Errorf("nondeterministic stats:\n%+v\n%+v", b1, b2)
	}
}

func TestNameReporting(t *testing.T) {
	sys := newSys(1, 1)
	if got := New(sys, Opt()).Name(); got != "RW-LE_OPT" {
		t.Errorf("Name = %q", got)
	}
	if got := New(sys, Pes()).Name(); got != "RW-LE_PES" {
		t.Errorf("Name = %q", got)
	}
	if got := New(sys, Options{MaxHTM: 1, MaxROT: 2}).Name(); got == "" {
		t.Error("empty default name")
	}
}
