package core

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
)

// TestRealTimeOrdering checks the linearizability obligations of an elided
// read-write lock over a monotonic counter:
//
//  1. a read critical section that STARTS after a write critical section
//     RETURNED must observe that write (real-time order: once Write()
//     returns, the update is durable and visible);
//  2. each thread's observations are monotonic (a reader can never see the
//     counter go backwards);
//  3. two reads by the same thread bracket their session (read-your-writes
//     for writers).
//
// These hold trivially for pessimistic locks; for RW-LE they depend on the
// quiescence protocol committing before RWLE_WRITE_UNLOCK returns.
func TestRealTimeOrdering(t *testing.T) {
	schemes := map[string]func(*htm.System) rwlock.Lock{
		"opt":   optLock,
		"pes":   pesLock,
		"fair":  fairLock,
		"split": splitLock,
	}
	for name, mk := range schemes {
		t.Run(name, func(t *testing.T) {
			const threads = 8
			sys := newSys(threads, 321)
			lock := mk(sys)
			ctr := sys.M.AllocRawAligned(1)

			type obs struct {
				start int64 // virtual time the section was entered (approx: call time)
				val   uint64
			}
			var reads [threads][]obs
			var writeDone []obs // (return time, value written)

			sys.M.Run(threads, func(c *machine.CPU) {
				th := sys.Thread(c.ID)
				lastSeen := uint64(0)
				for i := 0; i < 60; i++ {
					if c.Intn(100) < 25 {
						var wrote uint64
						lock.Write(th, func() {
							wrote = th.Load(ctr) + 1
							th.Store(ctr, wrote)
						})
						// Write() returned: the value is committed.
						writeDone = append(writeDone, obs{c.Now(), wrote})
						if wrote < lastSeen {
							t.Errorf("writer %d saw counter go backwards: %d after %d", c.ID, wrote, lastSeen)
						}
						lastSeen = wrote
					} else {
						start := c.Now()
						var v uint64
						lock.Read(th, func() { v = th.Load(ctr) })
						reads[c.ID] = append(reads[c.ID], obs{start, v})
						if v < lastSeen {
							t.Errorf("thread %d monotonicity violated: read %d after seeing %d", c.ID, v, lastSeen)
						}
						lastSeen = v
					}
					c.Tick(int64(c.Intn(300)))
				}
			})

			// Real-time order: every read that started after a write
			// returned must see at least that write's value.
			for id, robs := range reads {
				for _, r := range robs {
					for _, w := range writeDone {
						if w.start < r.start && r.val < w.val {
							t.Errorf("thread %d: read started at %d returned %d, but write of %d returned at %d",
								id, r.start, r.val, w.val, w.start)
						}
					}
				}
			}
		})
	}
}
