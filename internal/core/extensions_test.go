package core

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

func TestReadNesting(t *testing.T) {
	sys := newSys(2, 30)
	lock := New(sys, Opt())
	a := sys.M.AllocRawAligned(1)
	sys.M.Poke(a, 5)
	var inner, innermost uint64
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		lock.Read(th, func() {
			lock.Read(th, func() {
				inner = th.Load(a)
				lock.Read(th, func() { innermost = th.Load(a) })
			})
		})
	})
	if inner != 5 || innermost != 5 {
		t.Errorf("nested reads got %d/%d", inner, innermost)
	}
	// The clock must be even (fully exited) afterwards.
	if clk := sys.M.Peek(lock.clockAddr(0)); clk%2 != 0 {
		t.Errorf("clock left odd after nested reads: %d", clk)
	}
}

func TestWriteNesting(t *testing.T) {
	sys := newSys(2, 31)
	lock := New(sys, Opt())
	a := sys.M.AllocRawAligned(1)
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		lock.Write(th, func() {
			th.Store(a, 1)
			lock.Write(th, func() { th.Store(a, th.Load(a)+1) })
			lock.Read(th, func() {
				if th.Load(a) != 2 {
					t.Error("nested read inside write saw stale data")
				}
			})
		})
	})
	if sys.M.Peek(a) != 2 {
		t.Errorf("final = %d, want 2", sys.M.Peek(a))
	}
}

func TestWriteInsideReadPanics(t *testing.T) {
	sys := newSys(1, 32)
	lock := New(sys, Opt())
	defer func() {
		if recover() == nil {
			t.Error("lock upgrade did not panic")
		}
	}()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		lock.Read(th, func() {
			lock.Write(th, func() {})
		})
	})
}

func TestNestedSnapshotConsistency(t *testing.T) {
	// The full stress with nested sections sprinkled in.
	sys := newSys(8, 33)
	lock := New(sys, Opt())
	words := make([]machine.Addr, 4)
	for i := range words {
		words[i] = sys.M.AllocRawAligned(1)
	}
	sys.M.Run(8, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 60; i++ {
			if c.Intn(100) < 25 {
				lock.Write(th, func() {
					v := th.Load(words[0]) + 1
					lock.Write(th, func() { // nested
						for _, w := range words {
							th.Store(w, v)
						}
					})
				})
			} else {
				lock.Read(th, func() {
					lock.Read(th, func() { // nested
						v := th.Load(words[0])
						for _, w := range words[1:] {
							if th.Load(w) != v {
								t.Error("torn snapshot in nested read")
							}
						}
					})
				})
			}
		}
	})
}

func TestAdaptiveControllerShrinksOnFailure(t *testing.T) {
	a := newAdaptiveController()
	// 10 windows of pure HTM failure: budget must collapse toward 0.
	for w := 0; w < 10; w++ {
		for i := 0; i < a.window; i++ {
			a.record(true, false)
		}
	}
	if a.Budget() > 1 {
		t.Errorf("budget = %d after sustained HTM failure, want <= 1", a.Budget())
	}
}

func TestAdaptiveControllerGrowsOnSuccess(t *testing.T) {
	a := newAdaptiveController()
	for w := 0; w < 10; w++ {
		for i := 0; i < a.window; i++ {
			a.record(true, true)
		}
	}
	if a.Budget() != a.maxBudget {
		t.Errorf("budget = %d after sustained HTM success, want %d", a.Budget(), a.maxBudget)
	}
}

func TestAdaptiveControllerWinRateExposed(t *testing.T) {
	a := newAdaptiveController()
	// 6 wins out of 8 attempts in an otherwise HTM-free window: the
	// introspection rate must report tenths of the attempted sections.
	for i := 0; i < a.window; i++ {
		a.record(i < 8, i < 6)
	}
	if got := a.WinRate10(); got != 7 {
		t.Errorf("WinRate10() = %d after 6/8 HTM wins, want 7", got)
	}
	// A window with no HTM attempts at all reports the -1 sentinel.
	for i := 0; i < a.window; i++ {
		a.record(false, false)
	}
	if got := a.WinRate10(); got != -1 {
		t.Errorf("WinRate10() = %d after an HTM-free window, want -1", got)
	}
}

func TestAdaptiveControllerRecoversFromZero(t *testing.T) {
	a := newAdaptiveController()
	for w := 0; w < 10; w++ {
		for i := 0; i < a.window; i++ {
			a.record(true, false)
		}
	}
	// With the budget near zero, HTM is no longer attempted; the
	// controller must re-probe rather than stay stuck.
	for w := 0; w < 2; w++ {
		for i := 0; i < a.window; i++ {
			a.record(false, false)
		}
	}
	if a.Budget() < 1 {
		t.Errorf("budget = %d, controller cannot re-probe HTM", a.Budget())
	}
}

func TestAdaptiveConvergesToROTOnCapacityWorkload(t *testing.T) {
	// Critical sections that always exceed the read budget: the adaptive
	// lock should stop attempting HTM and look like RW-LE_PES.
	m := machine.New(machine.Config{CPUs: 2, MemWords: 1 << 18, Seed: 3})
	sys := htm.NewSystem(m, htm.Config{ReadCapLines: 8, WriteCapLines: 64})
	o := Opt()
	o.Adaptive = true
	lock := New(sys, o)
	arr := sys.M.AllocRawAligned(32 * 16)
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 200; i++ {
			lock.Write(th, func() {
				var s uint64
				for j := 0; j < 32; j++ {
					s += th.Load(arr + machine.Addr(j*16))
				}
				th.Store(arr, s+1)
			})
		}
	})
	if got := lock.adapt.Budget(); got > 1 {
		t.Errorf("adaptive budget = %d on a pure-capacity workload, want <= 1", got)
	}
	b := stats.Merge(sys.Stats(2), 0)
	// Early sections may burn HTM attempts, but the steady state must be
	// ROT: far more ROT commits than capacity aborts in the tail.
	if b.Commits[stats.CommitROT] < 300 {
		t.Errorf("ROT commits = %d, adaptation did not converge", b.Commits[stats.CommitROT])
	}
}

func TestAdaptiveKeepsHTMOnCleanWorkload(t *testing.T) {
	sys := newSys(2, 40)
	o := Opt()
	o.Adaptive = true
	lock := New(sys, o)
	// Disjoint per-thread data: small, conflict-free write sections that
	// HTM handles perfectly.
	a0 := sys.M.AllocRawAligned(1)
	a1 := sys.M.AllocRawAligned(1)
	sys.M.Run(2, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		mine := a0
		if c.ID == 1 {
			mine = a1
		}
		for i := 0; i < 200; i++ {
			lock.Write(th, func() { th.Store(mine, th.Load(mine)+1) })
			c.Tick(int64(c.Intn(400)))
		}
	})
	if got := lock.adapt.Budget(); got < 5 {
		t.Errorf("adaptive budget = %d on a clean workload, want >= 5", got)
	}
	b := stats.Merge(sys.Stats(2), 0)
	if b.CommitPct(stats.CommitHTM) < 80 {
		t.Errorf("HTM commit share %.1f%%, want >= 80%%", b.CommitPct(stats.CommitHTM))
	}
}

func TestEarlyAbortCutsQuiescenceShort(t *testing.T) {
	// A writer whose speculation is doomed mid-quiescence by a new reader
	// should, with EarlyAbort, give up before draining a long-running
	// unrelated reader.
	run := func(early bool) int64 {
		sys := newSys(3, 44)
		o := Opt()
		o.EarlyAbort = early
		lock := New(sys, o)
		x := sys.M.AllocRawAligned(1)
		var firstFailure int64
		sys.M.Run(3, func(c *machine.CPU) {
			th := sys.Thread(c.ID)
			switch c.ID {
			case 0: // long reader of unrelated data, drains slowly
				lock.Read(th, func() { c.Tick(80_000) })
			case 1: // writer: enters quiescence while reader 0 is in CS
				c.Tick(2_000)
				lock.Write(th, func() { th.Store(x, 1) })
				if firstFailure == 0 {
					firstFailure = c.Now()
				}
			case 2: // new reader that touches x mid-quiescence: dooms writer
				c.Tick(6_000)
				lock.Read(th, func() { th.Load(x) })
			}
		})
		return firstFailure
	}
	withEarly := run(true)
	without := run(false)
	if withEarly >= without {
		t.Errorf("EarlyAbort finished at %d, plain at %d: no time saved", withEarly, without)
	}
}
