package core

// Path identifies which write-side synchronization path RW-LE is using,
// in fallback order (paper Algorithm 2, function PATH).
type Path int

const (
	// PathHTM: speculative execution as a regular hardware transaction,
	// concurrent with readers and with other HTM writers.
	PathHTM Path = iota
	// PathROT: speculative execution as a rollback-only transaction,
	// concurrent with readers but serialized against other writers.
	PathROT
	// PathNS: non-speculative execution under the global write lock.
	PathNS
)

func (p Path) String() string {
	switch p {
	case PathHTM:
		return "HTM"
	case PathROT:
		return "ROT"
	default:
		return "NS"
	}
}

// pathSelector implements the paper's PATH() function: retry the current
// path until its trial budget is exhausted (a persistent failure exhausts
// it immediately), then fall back HTM → ROT → NS. A budget of zero skips
// the path entirely, which is how the RW-LE_PES variant (ROT first) and
// the ROT-less fairness configuration are expressed.
type pathSelector struct {
	maxHTM, maxROT int
	path           Path
	trials         int
}

// newPathSelector returns a selector positioned at the first enabled path.
func newPathSelector(maxHTM, maxROT int) pathSelector {
	s := pathSelector{maxHTM: maxHTM, maxROT: maxROT}
	switch {
	case maxHTM > 0:
		s.path, s.trials = PathHTM, maxHTM
	case maxROT > 0:
		s.path, s.trials = PathROT, maxROT
	default:
		s.path, s.trials = PathNS, 1
	}
	return s
}

// current returns the path to attempt next.
func (s *pathSelector) current() Path { return s.path }

// failed records an unsuccessful attempt on the current path and advances
// the selector. persistent indicates the abort cause will recur (capacity,
// illegal instruction), making further retries on the same path futile.
func (s *pathSelector) failed(persistent bool) {
	if s.trials > 0 {
		s.trials--
	}
	if persistent {
		s.trials = 0
	}
	if s.trials > 0 {
		return
	}
	switch s.path {
	case PathHTM:
		if s.maxROT > 0 {
			s.path, s.trials = PathROT, s.maxROT
			return
		}
		s.path, s.trials = PathNS, 1
	case PathROT:
		s.path, s.trials = PathNS, 1
	case PathNS:
		// NS always succeeds; stay for robustness.
		s.trials = 1
	}
}
