package core

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

func benchSys(cpus int) *htm.System {
	m := machine.New(machine.Config{CPUs: cpus, MemWords: 1 << 18, Seed: 1, Deadline: 1 << 62})
	return htm.NewSystem(m, htm.Config{})
}

// BenchmarkReadAcquire measures RW-LE's read-side entry+exit: two clock
// increments, one fence, one lock check — the "almost no overhead" claim.
func BenchmarkReadAcquire(b *testing.B) {
	sys := benchSys(1)
	lock := New(sys, Opt())
	b.ResetTimer()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < b.N; i++ {
			lock.Read(th, func() {})
		}
	})
}

// BenchmarkReadAcquireFair measures the fair variant's extra version copy.
func BenchmarkReadAcquireFair(b *testing.B) {
	sys := benchSys(1)
	o := Opt()
	o.Fair = true
	lock := New(sys, o)
	b.ResetTimer()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < b.N; i++ {
			lock.Read(th, func() {})
		}
	})
}

// BenchmarkWriteHTMPath measures an uncontended small write section
// (HTM path incl. suspend + quiescence scan + resume + commit).
func BenchmarkWriteHTMPath(b *testing.B) {
	sys := benchSys(1)
	lock := New(sys, Opt())
	a := sys.M.AllocRawAligned(1)
	b.ResetTimer()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < b.N; i++ {
			lock.Write(th, func() { th.Store(a, uint64(i)) })
		}
	})
}

// BenchmarkWriteROTPath measures the same section forced onto the ROT path
// (pessimistic policy).
func BenchmarkWriteROTPath(b *testing.B) {
	sys := benchSys(1)
	lock := New(sys, Pes())
	a := sys.M.AllocRawAligned(1)
	b.ResetTimer()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < b.N; i++ {
			lock.Write(th, func() { th.Store(a, uint64(i)) })
		}
	})
}

// BenchmarkQuiescenceScan measures RWLE_SYNCHRONIZE against 32 idle
// reader clocks (the per-writer cost that grows with thread count).
func BenchmarkQuiescenceScan(b *testing.B) {
	sys := benchSys(32)
	lock := New(sys, Opt())
	a := sys.M.AllocRawAligned(1)
	b.ResetTimer()
	sys.M.Run(1, func(c *machine.CPU) {
		th := sys.Thread(0)
		for i := 0; i < b.N; i++ {
			lock.Write(th, func() { th.Store(a, uint64(i)) })
		}
	})
}

// BenchmarkReadersScale measures aggregate reader throughput at 8 threads
// (should be ~8x BenchmarkReadAcquire's single-thread rate in virtual
// time; wall time is what testing.B reports).
func BenchmarkReadersScale(b *testing.B) {
	sys := benchSys(8)
	lock := New(sys, Opt())
	iters := b.N/8 + 1
	b.ResetTimer()
	sys.M.Run(8, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < iters; i++ {
			lock.Read(th, func() {})
		}
	})
}
