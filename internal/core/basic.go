package core

import (
	"fmt"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// basicWatchdogLimit is how many consecutive *persistent* aborts (capacity
// or explicit-persistent — retrying the same path is futile by definition)
// one write section tolerates before the blind-retry loop is declared
// livelocked. Conflict aborts reset the count: they are the aborts
// Algorithm 1's blind retry legitimately rides out. The limit only has to
// be comfortably above any plausible run of spurious persistent
// classifications; a genuinely over-capacity section hits it immediately.
const basicWatchdogLimit = 64

// Basic is the paper's Algorithm 1: the didactic HTM-only variant of RW-LE
// with writers serialized by a spin lock and blind retry of failed
// transactions. It has no ROT or non-speculative fallback, so a write
// critical section that persistently exceeds capacity can never complete —
// it exists for exposition and testing; use RWLE (Algorithm 2) for real
// workloads.
type Basic struct {
	sys      *htm.System
	nthreads int
	wlock    machine.Addr
	clocks   machine.Addr
	lineW    machine.Addr
}

// NewBasic creates an Algorithm 1 lock.
func NewBasic(sys *htm.System) *Basic {
	m := sys.M
	return &Basic{
		sys:      sys,
		nthreads: m.Cfg.CPUs,
		wlock:    m.AllocRawAligned(1),
		clocks:   m.AllocRawAligned(int64(m.Cfg.CPUs) * m.Cfg.LineWords),
		lineW:    machine.Addr(m.Cfg.LineWords),
	}
}

// Name implements rwlock.Lock.
func (l *Basic) Name() string { return "RW-LE_basic" }

func (l *Basic) clockAddr(id int) machine.Addr { return l.clocks + machine.Addr(id)*l.lineW }

// Read implements rwlock.Lock (Algorithm 1, RWLE_READ_LOCK/UNLOCK).
func (l *Basic) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(false, 0, 0))
	ca := l.clockAddr(t.C.ID)
	t.Store(ca, t.Load(ca)+1) // enter critical section
	t.C.Fence()               // make sure writers see reader
	cs()
	t.Store(ca, t.Load(ca)+1) // exit critical section
	t.St.Commits[stats.CommitUninstrumented]++
	t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(false, uint64(stats.CommitUninstrumented), 0))
}

// Write implements rwlock.Lock (Algorithm 1, RWLE_WRITE_LOCK/UNLOCK):
// serialize writers on a spin lock, run the section in a transaction, then
// suspend, quiesce, resume and commit. Failed transactions are blindly
// retried.
func (l *Basic) Write(t *htm.Thread, cs func()) {
	t.St.WriteCS++
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(true, 0, 0))
	var retries uint64
	persistentRun := 0
	for {
		spinAcquireWord(t, l.wlock)
		released := false
		st := t.Try(false, func() {
			cs()
			t.Suspend()
			// We can already release the lock: another writer can at
			// worst trigger an abort of the suspended transaction.
			t.Store(l.wlock, 0)
			released = true
			l.synchronize(t)
			t.Resume()
		})
		if st.OK {
			t.St.Commits[stats.CommitHTM]++
			t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(true, uint64(stats.CommitHTM), retries))
			return
		}
		retries++
		// If the abort hit before the suspended (non-transactional)
		// release, the lock is still ours and must be freed; if it hit at
		// resume, the lock was already released and may belong to another
		// writer by now.
		if !released {
			t.Store(l.wlock, 0)
		}
		// Retry-storm watchdog: Algorithm 1 has no fallback, so a section
		// whose aborts are persistent can never complete — fail fast with a
		// diagnostic instead of spinning the simulation to its deadline.
		if st.Persistent {
			persistentRun++
			if persistentRun >= basicWatchdogLimit {
				panic(fmt.Sprintf(
					"core: RW-LE_basic write section on cpu %d livelocked: %d consecutive persistent aborts (last cause %v, %d retries total) — Algorithm 1 has no capacity fallback; run sections that overflow the HTM read/write budget under RW-LE (Algorithm 2) instead",
					t.C.ID, persistentRun, st.Cause, retries))
			}
		} else {
			persistentRun = 0
		}
	}
}

// synchronize is the Algorithm 1 quiescence loop: snapshot all reader
// clocks, then wait for every odd one to change.
func (l *Basic) synchronize(t *htm.Thread) {
	start := t.C.Now()
	t.C.Emit(machine.EvQuiesceStart, 0, 0)
	// Close the window during an abort unwind too (the scan's loads can
	// doom the enclosing speculation) — see RWLE.synchronize.
	defer func() {
		t.St.QuiesceWait += t.C.Now() - start
		t.C.Emit(machine.EvQuiesceEnd, 0, uint64(t.C.Now()-start))
	}()
	snap := make([]uint64, l.nthreads)
	for i := 0; i < l.nthreads; i++ {
		snap[i] = t.LoadStream(l.clockAddr(i))
	}
	for i := 0; i < l.nthreads; i++ {
		if snap[i]&1 == 0 {
			continue
		}
		poll := 1
		for t.Load(l.clockAddr(i)) == snap[i] {
			t.C.SpinFor(poll)
			if poll < 32 {
				poll *= 2
			}
		}
	}
}

// spinAcquireWord acquires a test-and-test-and-set spin lock at word a.
// (Duplicated from internal/locks to avoid an import cycle.)
func spinAcquireWord(t *htm.Thread, a machine.Addr) {
	t.AwaitAcquire(a, 8)
}
