// Package core implements RW-LE, the hardware read-write lock elision
// algorithm of Felber, Issa, Matveev and Romano (EuroSys'16), on top of the
// POWER8-style HTM model in internal/htm.
//
// The algorithm's essence (paper §3):
//
//   - Read-side critical sections execute with no speculation and no lock
//     acquisition at all. Each reader only increments a per-thread clock on
//     entry and exit (odd value = inside the critical section).
//   - Write-side critical sections execute speculatively — first as regular
//     hardware transactions (concurrent writers allowed, the global lock is
//     eagerly subscribed), then as rollback-only transactions (serialized
//     against other writers, but loads are untracked so read-capacity
//     aborts disappear), and finally non-speculatively under the global
//     lock.
//   - Before making its speculative stores visible, a writer waits for all
//     in-flight readers to leave their critical sections (an RCU-style
//     quiescence loop over the reader clocks). An HTM writer runs the loop
//     with the transaction *suspended*; a ROT writer runs it inline, since
//     ROTs do not track loads. Any reader that touches the writer's write
//     set meanwhile dooms the writer, so after quiescence it is safe to
//     commit: the hardware publishes all stores atomically.
//
// Both writer-path policies evaluated in the paper are provided
// (RW-LE_OPT = HTM then ROT, RW-LE_PES = ROT only), as are the fair
// variant of §3.3 and the split-lock optimization that lets ROT and HTM
// writers run concurrently.
package core

import (
	"fmt"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

// Lock states stored in the low two bits of the global lock word. The
// remaining bits hold the version number used by the fair variant.
const (
	lockFree uint64 = 0
	lockNS   uint64 = 1
	lockROT  uint64 = 2

	stateMask uint64 = 3
	verShift         = 2
)

func state(v uint64) uint64   { return v & stateMask }
func version(v uint64) uint64 { return v >> verShift }

// Options selects an RW-LE variant.
type Options struct {
	// MaxHTM is the number of attempts on the regular-transaction path
	// before falling back (the paper uses 5; 0 disables the path, giving
	// the pessimistic variant).
	MaxHTM int
	// MaxROT is the number of attempts on the rollback-only path before
	// falling back to the global lock (the paper uses 5; 0 disables ROTs,
	// as in the fairness experiment).
	MaxROT int
	// Fair enables the §3.3 fair variant: the global lock carries a
	// version number, readers record the version they entered under, and
	// writers wait only for readers that entered before them — so readers
	// cannot be overtaken indefinitely by a stream of writers.
	Fair bool
	// SplitLocks enables the optimization that separates the NS lock from
	// the ROT lock, letting HTM writers subscribe the ROT lock lazily (at
	// commit) and therefore run concurrently with a ROT writer.
	SplitLocks bool
	// Adaptive replaces the fixed MAX-HTM budget with a self-tuning
	// controller (an extension in the spirit of the related work's
	// self-tuning HTM [9]): capacity-bound workloads converge to the
	// pessimistic ROT-first policy, conflict-free ones to long budgets.
	Adaptive bool
	// EarlyAbort makes a suspended HTM writer poll its own doom flag
	// (POWER8 tcheck) during the quiescence loop and stop draining
	// readers once the transaction cannot commit anyway — an extension
	// the paper leaves on the table.
	EarlyAbort bool
	// UnsafeSkipROTQuiesce is a checker-validation knob: it drops the
	// quiescence barrier on the ROT path, committing while readers may
	// still be inside their sections — the exact simplification the paper
	// shows to be unsound. internal/check must find a violation with this
	// set. Never enable it outside checker self-tests.
	UnsafeSkipROTQuiesce bool
	// UnsafeLazySubscription is a sanitizer-validation knob: the HTM
	// writer path reads the global lock word only *after* running the
	// critical section, instead of eagerly subscribing before it (the
	// unsafe lazy-subscription scheme of Dice et al., arXiv 1407.6968).
	// A transaction can then run its whole body concurrently with a
	// non-speculative lock holder and still commit, having observed the
	// holder's unpublished intermediate state. The simsan race sanitizer
	// must flag those accesses. Never enable it outside self-tests.
	UnsafeLazySubscription bool
	// Name overrides the reported scheme name.
	Name string
}

// Opt returns the optimistic writer-path policy evaluated in the paper
// (5 HTM attempts, then 5 ROT attempts, then the global lock), with the
// unified lock word of Algorithm 2. The §3.3 split-lock optimization is
// available via Options.SplitLocks; the "split" ablation in this
// repository found the unified word *faster* under transient-abort storms
// (an HTM writer discovers a ROT's lock eagerly at begin, instead of
// wasting the whole section plus quiescence before the lazy subscription
// fails) — see EXPERIMENTS.md.
func Opt() Options { return Options{MaxHTM: 5, MaxROT: 5, Name: "RW-LE_OPT"} }

// Pes returns the pessimistic policy (writers serialized from the start:
// 5 ROT attempts, then the global lock).
func Pes() Options { return Options{MaxHTM: 0, MaxROT: 5, Name: "RW-LE_PES"} }

// RWLE is one elided read-write lock instance.
type RWLE struct {
	sys  *htm.System
	opts Options

	nthreads int
	wlock    machine.Addr // global lock word (state + version)
	rotLock  machine.Addr // separate ROT lock when SplitLocks
	clocks   machine.Addr // per-thread clock lines
	local    machine.Addr // per-thread local lock copies (fair variant)
	lineW    machine.Addr

	// nesting[i] tracks thread i's critical-section depth so read (and
	// write) sections nest, per the paper's footnote 3. Host-side state,
	// mutated only by the owning (token-holding) thread.
	nesting []nestState
	// snaps[i] is thread i's reusable quiescence-scan snapshot buffer;
	// preallocating it keeps synchronize allocation-free on the writer
	// fast path. Host-side, owned by the token-holding thread like nesting.
	snaps [][]uint64
	// adapt, when Options.Adaptive is set, tunes the HTM budget.
	adapt *adaptiveController

	// acqWaits[i] and syncWaits[i] are thread i's reusable engine-stepped
	// waiters for lock acquisition and quiescence scans — host-side state,
	// owned by the running thread like nesting and snaps.
	acqWaits  []acqWait
	syncWaits []syncWait
}

// nestState tracks one thread's lock recursion.
type nestState struct {
	depth   int
	writing bool
}

// New creates an RW-LE lock on the given HTM system. The lock's metadata
// (global lock word, per-thread reader clocks) lives in simulated memory,
// so subscription, quiescence scans and reader polling have honest
// coherence costs and participate in conflict detection.
func New(sys *htm.System, opts Options) *RWLE {
	if opts.Fair && opts.SplitLocks {
		panic("core: Fair and SplitLocks are mutually exclusive in this implementation")
	}
	m := sys.M
	l := &RWLE{
		sys:      sys,
		opts:     opts,
		nthreads: m.Cfg.CPUs,
		lineW:    machine.Addr(m.Cfg.LineWords),
	}
	l.wlock = m.AllocRawAligned(1)
	if opts.SplitLocks {
		l.rotLock = m.AllocRawAligned(1)
	}
	l.clocks = m.AllocRawAligned(int64(l.nthreads) * m.Cfg.LineWords)
	if opts.Fair {
		l.local = m.AllocRawAligned(int64(l.nthreads) * m.Cfg.LineWords)
	}
	l.nesting = make([]nestState, l.nthreads)
	l.snaps = make([][]uint64, l.nthreads)
	snapBacking := make([]uint64, l.nthreads*l.nthreads)
	for i := range l.snaps {
		l.snaps[i] = snapBacking[i*l.nthreads : (i+1)*l.nthreads]
	}
	if opts.Adaptive {
		l.adapt = newAdaptiveController()
	}
	l.acqWaits = make([]acqWait, l.nthreads)
	l.syncWaits = make([]syncWait, l.nthreads)
	return l
}

// Name implements rwlock.Lock.
func (l *RWLE) Name() string {
	if l.opts.Name != "" {
		return l.opts.Name
	}
	return fmt.Sprintf("RW-LE(htm=%d,rot=%d,fair=%v)", l.opts.MaxHTM, l.opts.MaxROT, l.opts.Fair)
}

// AdaptiveState reports the self-tuning controller's current HTM budget
// and last-window win rate in tenths (see adaptiveController.WinRate10).
// ok is false when the lock runs a fixed budget (Options.Adaptive unset),
// in which case the other values are meaningless.
func (l *RWLE) AdaptiveState() (budget, winRate10 int, ok bool) {
	if l.adapt == nil {
		return 0, 0, false
	}
	return l.adapt.Budget(), l.adapt.WinRate10(), true
}

func (l *RWLE) clockAddr(id int) machine.Addr { return l.clocks + machine.Addr(id)*l.lineW }
func (l *RWLE) localAddr(id int) machine.Addr { return l.local + machine.Addr(id)*l.lineW }

// Read executes cs as a read-side critical section: no lock acquisition,
// no speculation — only the per-thread clock increments (paper Algorithm 2,
// RWLE_READ_LOCK/RWLE_READ_UNLOCK, with the §3.3 fast-path optimization of
// checking the lock after the increment).
func (l *RWLE) Read(t *htm.Thread, cs func()) {
	t.St.ReadCS++
	// Nesting (paper footnote 3): a read section inside another read or
	// write section of the same thread runs directly — the enclosing
	// section's protection covers it.
	ns := &l.nesting[t.C.ID]
	if ns.depth > 0 {
		ns.depth++
		cs()
		ns.depth--
		t.St.Commits[stats.CommitUninstrumented]++
		return
	}
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(false, 0, 0))
	if l.opts.Fair {
		l.readLockFair(t)
	} else {
		l.readLock(t)
	}
	ns.depth = 1
	cs()
	ns.depth = 0
	// RWLE_READ_UNLOCK: leave the critical section (clock becomes even).
	ca := l.clockAddr(t.C.ID)
	t.Store(ca, t.Load(ca)+1)
	t.St.Commits[stats.CommitUninstrumented]++
	t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(false, uint64(stats.CommitUninstrumented), 0))
}

func (l *RWLE) readLock(t *htm.Thread) {
	ca := l.clockAddr(t.C.ID)
	for {
		clk := t.Load(ca)
		t.Store(ca, clk+1) // enter: odd
		t.C.Fence()        // make sure writers see the reader
		if state(t.Load(l.wlock)) != lockNS {
			return
		}
		// A non-speculative writer is (or just went) active: defer to it
		// and retry (paper lines 14-16).
		t.Store(ca, clk+2)
		waitStart := t.C.Now()
		poll := 1
		for state(t.Load(l.wlock)) == lockNS {
			t.C.SpinFor(poll)
			if poll < 32 {
				poll *= 2
			}
		}
		if d := t.C.Now() - waitStart; d > 0 {
			t.C.Emit(machine.EvLockWait, l.wlock, uint64(d))
		}
	}
}

// readLockFair is the §3.3 fair entry: the reader records the lock version
// it entered under and, if the lock is busy, waits only for the *current*
// owner — it cannot be overtaken by a stream of later writers.
func (l *RWLE) readLockFair(t *htm.Thread) {
	ca := l.clockAddr(t.C.ID)
	la := l.localAddr(t.C.ID)
	clk := t.Load(ca)
	t.Store(ca, clk+1) // enter: odd
	t.C.Fence()
	v := t.Load(l.wlock)
	t.Store(la, v) // publish the version we entered under
	t.C.Fence()
	if state(v) != lockNS {
		return
	}
	// Wait for the current owner to release or hand over; readers that
	// entered before a writer's version bump are waited for by that
	// writer, so entering afterwards is safe. The lock word holds nothing
	// but version and state, so "same state and same version" is exactly
	// "word still equals v".
	t.AwaitWord(l.wlock, ^uint64(0), v, false, 8)
}

// Write executes cs as a write-side critical section, attempting the HTM,
// ROT and NS paths in turn under the configured trial budgets (paper
// Algorithm 2, RWLE_WRITE_LOCK/RWLE_WRITE_UNLOCK and PATH).
func (l *RWLE) Write(t *htm.Thread, cs func()) {
	t.St.WriteCS++
	ns := &l.nesting[t.C.ID]
	if ns.depth > 0 {
		if !ns.writing {
			panic("core: write section nested inside a read section (lock upgrade is a deadlock)")
		}
		ns.depth++
		cs()
		ns.depth--
		return
	}
	maxHTM := l.opts.MaxHTM
	if l.adapt != nil {
		maxHTM = l.adapt.Budget()
	}
	sel := newPathSelector(maxHTM, l.opts.MaxROT)
	htmTried := false
	enter := func() { ns.depth, ns.writing = 1, true }
	leave := func() { ns.depth, ns.writing = 0, false }
	t.C.Emit(machine.EvCSBegin, 0, machine.PackCS(true, 0, 0))
	var retries uint64
	done := func(path stats.CommitPath) {
		t.C.Emit(machine.EvCSEnd, 0, machine.PackCS(true, uint64(path), retries))
	}
	for {
		switch sel.current() {
		case PathHTM:
			htmTried = true
			enter()
			st := l.writeHTM(t, cs)
			leave()
			if st.OK {
				t.St.Commits[stats.CommitHTM]++
				l.recordAdapt(htmTried, true)
				done(stats.CommitHTM)
				return
			}
			retries++
			l.pathFail(t, &sel, st.Persistent)
		case PathROT:
			enter()
			st := l.writeROT(t, cs)
			leave()
			if st.OK {
				t.St.Commits[stats.CommitROT]++
				l.recordAdapt(htmTried, false)
				done(stats.CommitROT)
				return
			}
			retries++
			l.pathFail(t, &sel, st.Persistent)
		case PathNS:
			enter()
			l.writeNS(t, cs)
			leave()
			t.St.Commits[stats.CommitSGL]++
			l.recordAdapt(htmTried, false)
			done(stats.CommitSGL)
			return
		}
	}
}

// pathFail records a failed speculative attempt and emits a path-switch
// event when the selector falls back to the next path.
func (l *RWLE) pathFail(t *htm.Thread, sel *pathSelector, persistent bool) {
	was := sel.current()
	sel.failed(persistent)
	if now := sel.current(); now != was {
		t.C.Emit(machine.EvPathSwitch, 0, uint64(now))
	}
}

// recordAdapt feeds the adaptive controller, when enabled.
func (l *RWLE) recordAdapt(htmTried, htmWon bool) {
	if l.adapt != nil {
		l.adapt.record(htmTried, htmWon)
	}
}

// writeHTM attempts the critical section as a regular hardware transaction:
// eager subscription of the global lock, then — at unlock — suspend,
// quiesce readers, resume, commit (paper lines 41-46 and 68-72).
func (l *RWLE) writeHTM(t *htm.Thread, cs func()) htm.Status {
	// Let non-HTM writers finish before starting speculation (line 42).
	t.AwaitWordBackoff(l.wlock, stateMask, lockFree, true, 0, 8)
	return t.Try(false, func() {
		if !l.opts.UnsafeLazySubscription {
			if state(t.Load(l.wlock)) != lockFree { // subscribe (line 44)
				t.Abort(stats.AbortLockBusy)
			}
		}
		cs()
		if l.opts.UnsafeLazySubscription {
			// Sanitizer-validation mutation: subscribe only after the body
			// ran, so the transaction never entered the lock word into its
			// read set while executing — a fallback writer acquiring
			// mid-section goes unnoticed (see Options.UnsafeLazySubscription).
			if state(t.Load(l.wlock)) != lockFree {
				t.Abort(stats.AbortLockBusy)
			}
		}
		if l.opts.SplitLocks {
			// Lazy subscription of the ROT lock: only at commit time, so
			// an HTM writer can overlap a ROT writer's critical section.
			if state(t.Load(l.rotLock)) != lockFree {
				t.Abort(stats.AbortLockBusy)
			}
		}
		t.Suspend()
		l.synchronize(t, false, noVerFilter)
		t.Resume()
		// Try commits on return: the hardware write-back is atomic.
	})
}

// doomedEarly reports whether the EarlyAbort extension should cut the
// quiescence loop short: the suspended transaction is already doomed
// (tcheck), so draining further readers is wasted time — the abort will
// fire at Resume regardless.
func (l *RWLE) doomedEarly(t *htm.Thread) bool {
	return l.opts.EarlyAbort && t.Suspended() && t.Doomed()
}

// writeROT attempts the critical section as a rollback-only transaction.
// ROTs cannot run concurrently with one another (their loads are
// untracked), so the path first acquires the writer lock; readers still
// run concurrently and the quiescence loop runs inline before commit —
// no suspend/resume needed since loads are invisible anyway (lines 47-54
// and 64-67).
func (l *RWLE) writeROT(t *htm.Thread, cs func()) htm.Status {
	lockWord := l.wlock
	if l.opts.SplitLocks {
		lockWord = l.rotLock
	}
	myVer := l.acquire(t, lockWord, lockROT)
	st := t.Try(true, func() {
		cs()
		if !l.opts.UnsafeSkipROTQuiesce {
			// Always drain every in-flight reader here, even in the fair
			// variant. The version filter is only sound where later readers
			// are *blocked* by the lock word (the NS path): a reader that
			// enters under a ROT holder proceeds concurrently, and skipping
			// it would let the commit land mid-section — torn snapshot for
			// any word the reader read before the ROT claimed it (plain
			// reads leave no trace in the conflict directory, so nothing
			// dooms the ROT). Fairness is unaffected: reader overtaking
			// happens on the NS path, which keeps the filter.
			l.synchronize(t, false, noVerFilter)
		}
	})
	// Release the writer lock whether the ROT committed or aborted
	// (paper lines 53 and 67).
	t.Store(lockWord, myVer<<verShift|lockFree)
	return st
}

// writeNS executes the critical section non-speculatively under the global
// lock: acquire, drain readers, run, release (paper lines 55-60 and 62-63).
func (l *RWLE) writeNS(t *htm.Thread, cs func()) {
	myVer := l.acquire(t, l.wlock, lockNS)
	if l.opts.SplitLocks {
		// Serialize against a concurrent ROT writer.
		l.acquire(t, l.rotLock, lockNS)
	}
	l.synchronize(t, true, l.verFilter(myVer))
	cs()
	if l.opts.SplitLocks {
		t.Store(l.rotLock, lockFree)
	}
	t.Store(l.wlock, myVer<<verShift|lockFree)
}

// acquire spins until it installs `to` in the state bits of the lock word,
// bumping the version, and returns the new version (the fair variant uses
// it to skip readers that entered later; others carry it harmlessly). The
// loop runs as an engine-stepped wait.
func (l *RWLE) acquire(t *htm.Thread, word machine.Addr, to uint64) uint64 {
	w := &l.acqWaits[t.C.ID]
	*w = acqWait{t: t, word: word, to: to}
	start := t.C.Now()
	t.C.Await(w)
	if d := t.C.Now() - start; d > 0 {
		t.C.Emit(machine.EvLockWait, word, uint64(d))
	}
	return w.ver
}

// acqWait is the version-bumping lock acquisition as a waiter: the load and
// the CAS of one attempt are separate steps, with bounded randomized
// exponential backoff after a busy load or a lost CAS — without the
// randomization a cohort of deterministic spinners can systematically
// exclude one contender (see internal/locks for the same pattern).
type acqWait struct {
	t      *htm.Thread
	word   machine.Addr
	to     uint64
	v      uint64 // value observed free, the CAS's expected operand
	ver    uint64 // result: the version installed
	casing bool
	shift  uint
}

// Step implements machine.Waiter.
func (w *acqWait) Step(c *machine.CPU) bool {
	t := w.t
	if w.casing {
		w.casing = false
		next := version(w.v) + 1
		if t.CAS(w.word, w.v, next<<verShift|w.to) {
			w.ver = next
			return true
		}
	} else {
		v := t.Load(w.word)
		if state(v) == lockFree {
			w.v = v
			w.casing = true
			return false
		}
	}
	c.SpinFor(1 + c.Intn(1<<w.shift))
	if w.shift < 8 {
		w.shift++
	}
	return false
}

// noVerFilter disables version filtering in synchronize: every in-flight
// reader is drained. HTM-path writers never hold a version, so they always
// use it.
const noVerFilter = ^uint64(0)

// verFilter returns the quiescence version filter for the NS-path writer:
// its own version under the fair variant (safe there because later readers
// are blocked by the lockNS word and never run concurrently), no filtering
// otherwise.
func (l *RWLE) verFilter(myVer uint64) uint64 {
	if l.opts.Fair {
		return myVer
	}
	return noVerFilter
}

// synchronize is the RCU-like quiescence barrier (paper RWLE_SYNCHRONIZE):
// wait until every reader that was inside a critical section when we
// scanned has left it. singlePass applies the §3.3 optimization for the
// NS path, where new readers are blocked by the lock so one traversal
// suffices. In the fair variant, writers that hold a version skip readers
// that entered at or after their own version.
func (l *RWLE) synchronize(t *htm.Thread, singlePass bool, myVer uint64) {
	start := t.C.Now()
	t.C.Emit(machine.EvQuiesceStart, 0, 0)
	// The scan itself can abort the enclosing speculation (a reader bumping
	// its clock dooms the ROT mid-scan, unwinding to Try). Account the
	// window and close the event on that path too, so no waited cycles are
	// lost and quiesce-start/end stay balanced.
	defer func() {
		t.St.QuiesceWait += t.C.Now() - start
		t.C.Emit(machine.EvQuiesceEnd, 0, uint64(t.C.Now()-start))
	}()
	if singlePass {
		for i := 0; i < l.nthreads; i++ {
			l.waitReader(t, i, myVer)
		}
	} else {
		snap := l.snaps[t.C.ID]
		for i := 0; i < l.nthreads; i++ {
			snap[i] = t.LoadStream(l.clockAddr(i))
		}
		for i := 0; i < l.nthreads; i++ {
			if snap[i]&1 == 0 {
				continue
			}
			w := &l.syncWaits[t.C.ID]
			*w = syncWait{l: l, t: t, i: i, snap: snap[i], myVer: myVer, poll: 1, pollCap: 16, checkDoom: l.opts.EarlyAbort}
			t.C.Await(w)
			if w.doomed {
				return
			}
		}
	}
}

// waitReader waits for thread i to leave its current read critical section
// (single-traversal form: re-reads the clock directly).
func (l *RWLE) waitReader(t *htm.Thread, i int, myVer uint64) {
	c := t.LoadStream(l.clockAddr(i))
	if c&1 == 0 {
		return
	}
	w := &l.syncWaits[t.C.ID]
	*w = syncWait{l: l, t: t, i: i, snap: c, myVer: myVer, poll: 1, pollCap: 32}
	t.C.Await(w)
}

// syncWait phases; each phase is one waiter step, mirroring one
// inter-Sync quantum of the open-coded loop.
const (
	syncPhaseClock = iota // poll reader i's clock
	syncPhaseVer          // fair variant: re-evaluate the version filter
	syncPhaseDoom         // EarlyAbort: tcheck the suspended speculation
)

// syncWait waits for reader i to leave the read section it was in when its
// clock was sampled as snap. The clock poll, the (fair-variant) version
// filter's load, and the EarlyAbort doom check are separate steps, exactly
// as they are separate scheduling points in the open-coded loop: the
// version filter must be re-evaluated every iteration (a reader racing its
// version publication against our clock sample would otherwise deadlock
// with us), and `Doomed` is specified to synchronize with the scheduler
// before sampling the flag — inside a step that Sync is a no-op, so the
// step boundary before syncPhaseDoom supplies the synchronization instead.
// A doomed tcheck sets doomed, telling synchronize to stop draining
// readers entirely. checkDoom gates the doom phase on Options.EarlyAbort;
// the Suspended() test rides in the step because doomedEarly
// short-circuits (no tcheck, hence no extra scheduling point) on the
// non-suspending paths.
type syncWait struct {
	l         *RWLE
	t         *htm.Thread
	i         int
	snap      uint64
	myVer     uint64
	poll      int
	pollCap   int
	checkDoom bool
	phase     int
	doomed    bool
}

// Step implements machine.Waiter.
func (w *syncWait) Step(c *machine.CPU) bool {
	t, l := w.t, w.l
	switch w.phase {
	case syncPhaseClock:
		if t.Load(l.clockAddr(w.i)) != w.snap {
			return true
		}
		if w.myVer != noVerFilter {
			w.phase = syncPhaseVer
			return false
		}
		if w.checkDoom && t.Suspended() {
			w.phase = syncPhaseDoom
			return false
		}
	case syncPhaseVer:
		if !l.readerIsOlder(t, w.i, w.myVer) {
			return true
		}
		if w.checkDoom && t.Suspended() {
			w.phase = syncPhaseDoom
			return false
		}
		w.phase = syncPhaseClock
	case syncPhaseDoom:
		if l.doomedEarly(t) {
			w.doomed = true
			return true
		}
		w.phase = syncPhaseClock
	}
	c.SpinFor(w.poll)
	if w.poll < w.pollCap {
		w.poll *= 2
	}
	return false
}

// readerIsOlder reports whether reader i entered under a version strictly
// smaller than ver — i.e. before this writer acquired the lock — and must
// therefore be drained.
func (l *RWLE) readerIsOlder(t *htm.Thread, i int, ver uint64) bool {
	return version(t.Load(l.localAddr(i))) < ver
}
