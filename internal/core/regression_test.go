package core

import (
	"testing"

	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

// TestFairNoDeadlockRegression pins the fix for a deadlock in the fair
// variant: a reader that raced its version publication against an NS
// writer's quiescence scan would wait for the writer's release while the
// writer waited for the reader's clock. The quiescence loop must therefore
// re-evaluate the version filter on every iteration. This seed/schedule
// reproduced the wedge deterministically before the fix.
func TestFairNoDeadlockRegression(t *testing.T) {
	m := machine.New(machine.Config{CPUs: 8, MemWords: 1 << 18, Seed: 210, Deadline: 200_000_000})
	sys := htm.NewSystem(m, htm.Config{})
	o := Opt()
	o.Fair = true
	lock := New(sys, o)
	const k = 6
	words := make([]machine.Addr, k)
	for i := range words {
		words[i] = m.AllocRawAligned(1)
	}
	m.Run(8, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		for i := 0; i < 120; i++ {
			if c.Intn(100) < 10 {
				lock.Write(th, func() {
					v := th.Load(words[0]) + 1
					for _, w := range words {
						th.Store(w, v)
					}
				})
			} else {
				lock.Read(th, func() {
					v0 := th.Load(words[0])
					for _, w := range words[1:] {
						if th.Load(w) != v0 {
							t.Error("torn snapshot")
						}
					}
				})
			}
			c.Tick(int64(c.Intn(200)))
		}
	})
}
