package core
