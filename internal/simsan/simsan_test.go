package simsan

import (
	"strings"
	"testing"

	"hrwle/internal/machine"
)

// Stream-builder helpers: every test constructs a synthetic event stream
// and asserts on the analysis verdict. Times only need to be increasing.

type stream struct {
	t   int64
	evs []machine.Event
}

func (s *stream) at(cpu int, kind machine.EventKind, addr machine.Addr, aux uint64) {
	s.t++
	s.evs = append(s.evs, machine.Event{Time: s.t, CPU: cpu, Kind: kind, Addr: addr, Aux: aux})
}

func (s *stream) read(cpu int, a machine.Addr)  { s.at(cpu, machine.EvRead, a, 0) }
func (s *stream) write(cpu int, a machine.Addr) { s.at(cpu, machine.EvWrite, a, 0) }
func (s *stream) cas(cpu int, a machine.Addr)   { s.at(cpu, machine.EvCAS, a, 0) }
func (s *stream) begin(cpu int)                 { s.at(cpu, machine.EvTxBegin, 0, 0) }
func (s *stream) commit(cpu int)                { s.at(cpu, machine.EvTxCommit, 0, 0) }
func (s *stream) abort(cpu int)                 { s.at(cpu, machine.EvTxAbort, 0, 0) }
func (s *stream) suspend(cpu int)               { s.at(cpu, machine.EvTxSuspend, 0, 0) }
func (s *stream) resume(cpu int)                { s.at(cpu, machine.EvTxResume, 0, 0) }
func (s *stream) qstart(cpu int)                { s.at(cpu, machine.EvQuiesceStart, 0, 0) }
func (s *stream) qend(cpu int)                  { s.at(cpu, machine.EvQuiesceEnd, 0, 0) }

func (s *stream) alloc(cpu int, a machine.Addr, n uint64) { s.at(cpu, machine.EvAlloc, a, n) }
func (s *stream) free(cpu int, a machine.Addr, n uint64)  { s.at(cpu, machine.EvFree, a, n) }

func (s *stream) analyze(cpus int) *Report {
	san := New(Options{CPUs: cpus})
	for _, e := range s.evs {
		san.Event(e)
	}
	return san.Finish()
}

const (
	lockA machine.Addr = 0x100
	dataA machine.Addr = 0x200
	dataB machine.Addr = 0x210
	clkA  machine.Addr = 0x300
)

func wantRaces(t *testing.T, rep *Report, n int, kind string) {
	t.Helper()
	if rep.Total != n {
		t.Fatalf("got %d race(s), want %d: %+v", rep.Total, n, rep.Races)
	}
	if n > 0 && rep.Races[0].Kind != kind {
		t.Fatalf("race kind %q, want %q", rep.Races[0].Kind, kind)
	}
}

func TestPlainWriteReadRace(t *testing.T) {
	var s stream
	s.write(0, dataA)
	s.read(1, dataA)
	rep := s.analyze(2)
	wantRaces(t, rep, 1, "read-after-write")
	r := rep.Races[0]
	if r.Prior.CPU != 0 || r.Second.CPU != 1 || !r.Prior.Write || r.Second.Write {
		t.Fatalf("bad sites: %+v", r)
	}
	if r.PriorClock <= r.SeenClock {
		t.Fatalf("evidence not a clock violation: %+v", r)
	}
}

func TestPlainWriteWriteRace(t *testing.T) {
	var s stream
	s.write(0, dataA)
	s.write(1, dataA)
	wantRaces(t, s.analyze(2), 1, "write-after-write")
}

func TestReadReadNeverRaces(t *testing.T) {
	var s stream
	s.read(0, dataA)
	s.read(1, dataA)
	s.read(2, dataA)
	wantRaces(t, s.analyze(3), 0, "")
}

// A CAS-guarded handoff is ordered: writer releases the lock word, reader's
// acquire joins the writer's clock.
func TestLockOrdering(t *testing.T) {
	var s stream
	s.cas(0, lockA)   // acquire lock
	s.write(0, dataA) // guarded write
	s.write(0, lockA) // release (sync word: classified via the CAS)
	s.read(1, lockA)  // acquire
	s.read(1, dataA)  // ordered read
	s.write(1, dataA) // ordered write
	wantRaces(t, s.analyze(2), 0, "")
}

// Without the release-side join the same accesses race.
func TestNoEdgeWithoutRelease(t *testing.T) {
	var s stream
	s.cas(0, lockA)
	s.write(0, dataA)
	s.read(1, dataA) // reader never touched the lock word
	wantRaces(t, s.analyze(2), 1, "read-after-write")
}

// Committed transactions are atomic blocks: a read of a committed
// transactional publication is not by itself a race (aggregate store), and
// an overwrite of it is ordered by conflict detection (an earlier store
// would have doomed the claim). What DOES race against a commit-published
// write is an unordered prior plain read — the torn-snapshot hazard the
// quiescence protocol exists to prevent.
func TestCommittedTxAtomicPublication(t *testing.T) {
	var s stream
	s.begin(0)
	s.write(0, dataA)
	s.commit(0)
	s.read(1, dataA)  // reads the committed aggregate: allowed
	s.write(1, dataA) // overwrite serialized after the publication: allowed
	wantRaces(t, s.analyze(2), 0, "")

	var s2 stream
	s2.read(1, dataA) // plain read-side section, never drained
	s2.begin(0)
	s2.write(0, dataA)
	s2.commit(0) // publishes mid-section: torn snapshot
	rep := s2.analyze(2)
	wantRaces(t, rep, 1, "write-after-read")
	if rep.Races[0].Second.Ctx != CtxCommit {
		t.Fatalf("second ctx %q, want %q", rep.Races[0].Second.Ctx, CtxCommit)
	}
}

// A transactional write that never commits doesn't order or race anything.
func TestAbortedWritesDiscarded(t *testing.T) {
	var s stream
	s.begin(0)
	s.write(0, dataA)
	s.abort(0)
	s.write(1, dataA)
	s.read(1, dataA)
	wantRaces(t, s.analyze(2), 0, "")
}

// A racy transactional read surfaces only if its transaction commits.
func TestSpeculativeReadVerdictGatedOnCommit(t *testing.T) {
	shape := func(end func(s *stream)) *Report {
		var s stream
		s.write(0, dataA) // unpublished prior write, no edges
		s.begin(1)
		s.read(1, dataA) // races eagerly, verdict pending
		end(&s)
		return s.analyze(2)
	}
	wantRaces(t, shape(func(s *stream) { s.abort(1) }), 0, "")
	rep := shape(func(s *stream) { s.commit(1) })
	wantRaces(t, rep, 1, "read-after-write")
	if rep.Races[0].Second.Ctx != CtxTx {
		t.Fatalf("second ctx %q, want %q", rep.Races[0].Second.Ctx, CtxTx)
	}
	if rep.Races[0].SurfacedAt <= rep.Races[0].Second.Time {
		t.Fatalf("race should surface at commit, after the access: %+v", rep.Races[0])
	}
}

// A plain write landing on a tracked transactional read is ordered by
// conflict detection whichever way the transaction resolves: an aborted
// speculation never happened, an HTM reader would have been doomed by the
// store (so a commit in the stream proves the store serialized after the
// block), and a ROT that commits serializes before the writer. Neither
// shape is a race.
func TestWriteAgainstTxReadOrderedByConflictDetection(t *testing.T) {
	shape := func(end func(s *stream)) *Report {
		var s stream
		s.begin(1)
		s.read(1, dataA)
		s.write(0, dataA) // overwrites the speculative read set
		end(&s)
		return s.analyze(2)
	}
	wantRaces(t, shape(func(s *stream) { s.abort(1) }), 0, "")
	wantRaces(t, shape(func(s *stream) { s.commit(1) }), 0, "")
}

// The unsafe-lazy-subscription shape: the transaction reads data written by
// a non-speculative lock holder mid-section, and only reads the lock word
// after the holder released. The late acquire joins the holder's clock, so
// only the eager read-time check can see the violation.
func TestLazySubscriptionShapeCaught(t *testing.T) {
	var s stream
	s.cas(0, lockA)   // holder acquires
	s.write(0, dataA) // holder's mid-section store
	s.begin(1)
	s.read(1, dataA) // tx reads unpublished intermediate state
	s.write(0, lockA) // holder releases
	s.read(1, lockA)  // lazy subscription: sees the lock free, joins holder
	s.commit(1)       // commits — the eager verdict surfaces
	rep := s.analyze(2)
	wantRaces(t, rep, 1, "read-after-write")

	// Eager subscription on the same interleaving aborts instead of
	// committing (the holder's CAS dooms the subscribed reader), so the
	// realizable stream carries no commit and stays race-free.
	var s2 stream
	s2.cas(0, lockA)
	s2.write(0, dataA)
	s2.begin(1)
	s2.read(1, lockA) // eager subscription
	s2.read(1, dataA)
	s2.abort(1) // doomed by the holder (conflict on the subscribed line)
	s2.write(0, lockA)
	wantRaces(t, s2.analyze(2), 0, "")
}

// The subscription edge: a committed regular transaction that read a sync
// word is ordered before the word's next acquirer — including everything
// the transaction's CPU did BEFORE the block, which conflict detection
// alone cannot order. A ROT's untracked load certifies nothing and grants
// no such edge, so the pre-block plain write stays racy.
func TestSubscriptionEdgeOrdersElidedBlock(t *testing.T) {
	elide := func(rot uint64) *Report {
		var s stream
		s.write(1, dataA) // plain, before the elided block
		s.at(1, machine.EvTxBegin, 0, rot)
		s.read(1, lockA) // subscription (lockA is sync via CPU 0's CAS)
		s.commit(1)
		s.cas(0, lockA)   // next holder acquires
		s.write(0, dataA) // ordered only through the subscription edge
		return s.analyze(2)
	}
	wantRaces(t, elide(0), 0, "")
	rep := elide(1) // ROT: no tracked subscription, no edge
	wantRaces(t, rep, 1, "write-after-write")
}

// Suspended-window accesses are non-transactional: immediate, durable
// across abort, and racy without an ordering edge.
func TestSuspendWindowAccesses(t *testing.T) {
	var s stream
	s.begin(0)
	s.suspend(0)
	s.write(0, dataA) // non-transactional despite the active tx
	s.resume(0)
	s.abort(0) // the suspended write survives the abort
	s.read(1, dataA)
	rep := s.analyze(2)
	wantRaces(t, rep, 1, "read-after-write")
	if rep.Races[0].Prior.Ctx != CtxSuspended {
		t.Fatalf("prior ctx %q, want %q", rep.Races[0].Prior.Ctx, CtxSuspended)
	}
}

// The quiescence protocol's edge: a reader's clock-word store is a release,
// the writer's in-window scan load is an acquire, so draining a reader
// orders the writer's subsequent stores after the reader's section.
func TestQuiesceEdgeOrdersDrainedReader(t *testing.T) {
	var s stream
	s.write(1, clkA) // reader enters (clock odd): release
	s.read(1, dataA) // uninstrumented read-side section
	s.write(1, clkA) // reader exits: release publishes the section
	s.qstart(0)
	s.read(0, clkA) // scan load: acquire (also classifies clkA as sync)
	s.qend(0)
	s.write(0, dataA) // ordered after the drained reader
	wantRaces(t, s.analyze(2), 0, "")

	// The same accesses without a quiescence window: the clock word is
	// just data, nothing synchronizes, and the write races the read.
	var s2 stream
	s2.write(1, clkA)
	s2.read(1, dataA)
	s2.write(1, clkA)
	s2.read(0, clkA)
	s2.write(0, dataA)
	rep := s2.analyze(2)
	if rep.Total == 0 {
		t.Fatal("expected races without the quiescence classification")
	}
}

// The in-transaction quiescence scan (ROT path) acquires immediately, so
// the commit-published stores are ordered after drained readers.
func TestInTxQuiesceAcquire(t *testing.T) {
	var s stream
	s.write(1, clkA) // reader enters
	s.read(1, dataA)
	s.write(1, clkA) // reader exits
	s.begin(0)       // ROT writer
	s.write(0, dataA)
	s.qstart(0)
	s.read(0, clkA) // inline scan, inside the transaction
	s.qend(0)
	s.commit(0) // publication ordered after the reader via the scan acquire
	wantRaces(t, s.analyze(2), 0, "")
}

// Duplicate races collapse; distinct CPU pairs stay distinct.
func TestDedup(t *testing.T) {
	var s stream
	s.write(0, dataA)
	s.read(1, dataA)
	s.read(1, dataA)
	s.read(2, dataA)
	rep := s.analyze(3)
	if rep.Total != 2 || rep.Dups != 1 {
		t.Fatalf("total=%d dups=%d, want 2/1: %+v", rep.Total, rep.Dups, rep.Races)
	}
}

func TestMaxRacesCap(t *testing.T) {
	san := New(Options{CPUs: 8, MaxRaces: 2})
	var s stream
	s.write(0, dataA)
	for c := 1; c < 8; c++ {
		s.read(c, dataA)
	}
	for _, e := range s.evs {
		san.Event(e)
	}
	rep := san.Finish()
	if rep.Total != 7 || len(rep.Races) != 2 {
		t.Fatalf("total=%d kept=%d, want 7/2", rep.Total, len(rep.Races))
	}
}

func TestReportText(t *testing.T) {
	var s stream
	s.write(0, dataA)
	s.read(1, dataA)
	rep := s.analyze(2)
	var b strings.Builder
	rep.WriteText(&b)
	out := b.String()
	for _, frag := range []string{"simsan: 1 race(s)", "read-after-write", "CPU 0 write", "CPU 1 read", "prior epoch"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report text missing %q:\n%s", frag, out)
		}
	}

	var clean stream
	clean.read(0, dataA)
	b.Reset()
	clean.analyze(1).WriteText(&b)
	if !strings.Contains(b.String(), "no races") {
		t.Fatalf("clean report text: %s", b.String())
	}
}

// Two committed transactions conflicting on a data word are ordered by the
// hardware's conflict detection, never by a lock word: no race in either
// the read-write or write-write direction. This is how two elided sections
// interact — neither ever writes the lock they elide.
func TestCommittedTxTxConflictOrdered(t *testing.T) {
	var s stream
	s.begin(0)
	s.begin(1)
	s.read(1, dataA)
	s.commit(1)       // reader tx retires first
	s.write(0, dataA) // buffered
	s.commit(0)       // publishes against CPU 1's committed tx read: exempt
	wantRaces(t, s.analyze(2), 0, "")

	var w stream
	w.begin(0)
	w.begin(1)
	w.write(1, dataA)
	w.commit(1)
	w.write(0, dataA)
	w.commit(0)
	wantRaces(t, w.analyze(2), 0, "")
}

// The tx-tx exemption does not extend to suspended accesses: a suspended
// read conflicting with a later commit-published write has no hardware
// ordering (suspended accesses are untracked) and must still be flagged.
func TestSuspendedReadVsCommitStillRaces(t *testing.T) {
	var s stream
	s.begin(1)
	s.suspend(1)
	s.read(1, dataA)
	s.resume(1)
	s.commit(1)
	s.begin(0)
	s.write(0, dataA)
	s.commit(0)
	wantRaces(t, s.analyze(2), 1, "write-after-read")
}

// A fallback-path store overwriting a committed transaction's read is
// ordered: had the store landed while the reader was still speculating, an
// HTM reader would have been doomed and a ROT serializes before the
// writer. The exemption is exactly the write-after direction; the
// transaction READING the plain holder's unpublished state (lazy
// subscription) races as ever — see TestLazySubscriptionShapeCaught.
func TestPlainWriteVsCommittedTxReadOrdered(t *testing.T) {
	var s stream
	s.begin(1)
	s.read(1, dataA)
	s.commit(1)
	s.write(0, dataA)
	wantRaces(t, s.analyze(2), 0, "")
}

// The allocator is a synchronization channel: a block freed by one CPU and
// allocated by another carries a free→alloc edge and a fresh shadow, so
// its previous life doesn't race its next one. Without the allocator
// events the same accesses race (control).
func TestAllocHandoffOrdersRecycledBlock(t *testing.T) {
	var s stream
	s.write(0, dataA) // old life, owned by CPU 0
	s.read(0, dataA+1)
	s.free(0, dataA, 2)
	s.alloc(1, dataA, 2)
	s.write(1, dataA) // new life, new owner
	s.write(1, dataA+1)
	wantRaces(t, s.analyze(2), 0, "")

	var s2 stream
	s2.write(0, dataA)
	s2.write(1, dataA) // no handoff: unordered overwrite
	wantRaces(t, s2.analyze(2), 1, "write-after-write")
}

// The free bumps the freeing CPU's clock, so a use-after-free through a
// stale pointer — an access AFTER the block was handed off — still races
// with the new owner.
func TestStalePointerAfterFreeStillRaces(t *testing.T) {
	var s stream
	s.free(0, dataA, 2)
	s.alloc(1, dataA, 2)
	s.write(1, dataA)
	s.write(0, dataA) // freer writes through a stale pointer
	wantRaces(t, s.analyze(2), 1, "write-after-write")
}

// A writer's transaction that eagerly reads a reader's MID-SECTION plain
// store, then drains that reader through its own quiescence scan before
// committing, has ordered the whole reader section before its publication:
// the eager verdict was premature and must settle clean at commit. This is
// the RW-LE writer shape over uninstrumented structures (e.g. a store
// iteration reading record words a concurrent reader-side op just wrote
// under an inner mutex the writer never takes).
func TestQuiesceDrainSettlesEagerVerdict(t *testing.T) {
	// ROT shape: inline quiescence between the body and the commit.
	var s stream
	s.write(1, clkA) // reader enters (clock word store = release)
	s.write(1, dataA) // reader's mid-section store
	s.begin(0)
	s.read(0, dataA) // eager verdict: unordered at read time
	s.write(1, clkA) // reader exits, releasing its full section
	s.qstart(0)
	s.read(0, clkA) // drain scan acquires the reader's exit
	s.qend(0)
	s.commit(0)
	wantRaces(t, s.analyze(2), 0, "")

	// HTM shape: the scan runs suspended (writeHTM quiesces inside the
	// transaction's suspend window) — settlement must still apply.
	var s2 stream
	s2.write(1, clkA)
	s2.write(1, dataA)
	s2.begin(0)
	s2.read(0, dataA)
	s2.write(1, clkA)
	s2.suspend(0)
	s2.qstart(0)
	s2.read(0, clkA)
	s2.qend(0)
	s2.resume(0)
	s2.commit(0)
	wantRaces(t, s2.analyze(2), 0, "")
}

// The same late edge acquired through an ORDINARY sync-word load — the lazy
// subscription shape — settles nothing: only quiescence-window acquires
// forgive an eager verdict, so the unsafe-lazy-subscription mutation stays
// detectable even though the holder's release reaches the transaction's
// vector clock before commit.
func TestOrdinaryLateAcquireDoesNotSettleVerdict(t *testing.T) {
	var s stream
	s.at(0, machine.EvLockWait, clkA, 0) // classify clkA as a sync word
	s.write(1, clkA)                     // holder's release path
	s.write(1, dataA)                    // holder's mid-section store
	s.begin(0)
	s.read(0, dataA) // eager verdict: unordered at read time
	s.write(1, clkA) // holder releases
	s.read(0, clkA)  // late subscription load: acquires, but outside quiescence
	s.commit(0)
	wantRaces(t, s.analyze(2), 1, "read-after-write")
}
