package simsan

import "hrwle/internal/machine"

// accCtx is the speculation context of a shadow access.
type accCtx uint8

const (
	ctxPlain accCtx = iota
	ctxSusp
	ctxTx
	ctxCommit
)

func (c accCtx) label() string {
	switch c {
	case ctxSusp:
		return CtxSuspended
	case ctxTx:
		return CtxTx
	case ctxCommit:
		return CtxCommit
	default:
		return CtxPlain
	}
}

// readEntry is one CPU's last read of a word: its epoch (owner clock at the
// read), time and context. pend marks a read of a still-speculating
// transaction — races against it are buffered on the owner and only
// surfaced if that transaction commits.
type readEntry struct {
	has  bool
	pend bool
	ctx  accCtx
	clk  uint64
	time int64
}

// shadow is the per-word FastTrack shadow state: the last write as an epoch
// and the reads adaptively as a single epoch (rCPU >= 0), nothing (-1), or a
// promoted per-CPU table (-2). Transactional reads always promote so that an
// abort can restore exactly one slot.
type shadow struct {
	wCPU  int
	wClk  uint64
	wTime int64
	wCtx  accCtx
	rCPU  int
	rOne  readEntry
	rMany []readEntry
}

// txWrite is a store buffered by an active transaction (first store per
// word; the value is irrelevant to ordering).
type txWrite struct {
	addr machine.Addr
	time int64
}

// readUndo restores one shadow read slot if the owning transaction aborts.
type readUndo struct {
	sh   *shadow
	prev readEntry
}

// txState is one CPU's speculation state during the happens-before pass.
type txState struct {
	active bool
	susp   bool
	rot    bool
	writes []txWrite
	wseen  map[machine.Addr]bool
	undos  []readUndo
	pend   []Race
	// subs are the sync words this transaction read while active and
	// unsuspended (subscriptions). For a regular transaction those loads
	// are conflict-tracked, so a commit certifies the word never changed:
	// the commit releases into each subscribed word, ordering the atomic
	// block before any later acquirer — this is how lock *elision*
	// synchronizes without ever writing the lock. ROT and suspended loads
	// are untracked and certify nothing, so they are not recorded.
	subs []machine.Addr
	// qjoin accumulates only the edges this transaction acquired through
	// its own quiescence scans (sync-word reads between its EvQuiesceStart
	// and EvQuiesceEnd, suspended or not). Pending read verdicts settle
	// against it at commit: quiescence is the algorithm's reader-drain
	// certification, so a reader it drained is wholly ordered before the
	// publication, and an eager verdict against that reader's mid-section
	// store was merely premature. Ordinary late acquires — a lazily
	// subscribing transaction's lock-word load — do not land here, so they
	// cannot retroactively excuse a verdict; nor can quiescence excuse
	// reading a fallback HOLDER's in-progress write section, because a
	// write section never releases into the reader clocks the scan reads.
	qjoin []uint64
}

func (t *txState) subscribe(a machine.Addr) {
	for _, s := range t.subs {
		if s == a {
			return
		}
	}
	t.subs = append(t.subs, a)
}

type analysis struct {
	n       int
	vcs     [][]uint64              // vcs[c] is CPU c's vector clock
	locks   map[machine.Addr][]uint64 // release clocks of sync words
	shadows map[machine.Addr]*shadow
	sync    map[machine.Addr]bool
	inQ     []bool // inside a quiescence window, per CPU
	txs     []txState
	rep     *Report
	dedup   map[raceKey]bool
	maxKeep int
}

type raceKey struct {
	kind   string
	addr   machine.Addr
	prior  int
	second int
}

// analyze runs both passes over one buffered event stream.
func analyze(opt Options, events []machine.Event) *Report {
	n := opt.CPUs
	a := &analysis{
		n:       n,
		vcs:     make([][]uint64, n),
		locks:   make(map[machine.Addr][]uint64),
		shadows: make(map[machine.Addr]*shadow),
		sync:    classifySync(n, events),
		inQ:     make([]bool, n),
		txs:     make([]txState, n),
		rep:     &Report{CPUs: n, Events: int64(len(events))},
		dedup:   make(map[raceKey]bool),
		maxKeep: opt.MaxRaces,
	}
	for c := range a.vcs {
		a.vcs[c] = make([]uint64, n)
		a.vcs[c][c] = 1 // FastTrack: initial epochs are mutually unordered
	}
	for i := range a.txs {
		a.txs[i].wseen = make(map[machine.Addr]bool)
		a.txs[i].qjoin = make([]uint64, n)
	}
	for _, e := range events {
		if e.CPU < 0 || e.CPU >= n {
			continue
		}
		a.step(e)
	}
	// Transactions still active at stream end never committed: their
	// buffered verdicts stay unsurfaced, like an abort.
	return a.rep
}

// classifySync is pass 1: an address is a synchronization word for the whole
// run if it is ever CAS'd, waited on, or read by a CPU inside its own
// quiescence window. Sync words carry acquire/release edges and are exempt
// from data-race checking.
func classifySync(n int, events []machine.Event) map[machine.Addr]bool {
	sync := make(map[machine.Addr]bool)
	inQ := make([]bool, n)
	for _, e := range events {
		if e.CPU < 0 || e.CPU >= n {
			continue
		}
		switch e.Kind {
		case machine.EvQuiesceStart:
			inQ[e.CPU] = true
		case machine.EvQuiesceEnd:
			inQ[e.CPU] = false
		case machine.EvCAS, machine.EvLockWait:
			sync[e.Addr] = true
		case machine.EvRead:
			if inQ[e.CPU] {
				sync[e.Addr] = true
			}
		}
	}
	return sync
}

func (a *analysis) step(e machine.Event) {
	c := e.CPU
	t := &a.txs[c]
	switch e.Kind {
	case machine.EvTxBegin:
		t.active, t.susp, t.rot = true, false, e.Aux&1 != 0
		t.writes = t.writes[:0]
		clear(t.wseen)
		t.undos = t.undos[:0]
		t.pend = t.pend[:0]
		t.subs = t.subs[:0]
		clear(t.qjoin)
	case machine.EvQuiesceStart:
		a.inQ[c] = true
	case machine.EvQuiesceEnd:
		a.inQ[c] = false
	case machine.EvTxSuspend:
		t.susp = true
	case machine.EvTxResume:
		t.susp = false
	case machine.EvTxAbort:
		a.abortTx(c)
	case machine.EvTxCommit:
		a.commitTx(c, e.Time)
	case machine.EvCAS:
		// CAS is acquire + release on the word, regardless of outcome (a
		// failed CAS still read the line exclusively; treating it as a
		// release over-approximates edges only among lock contenders).
		a.acquire(c, e.Addr)
		a.release(c, e.Addr)
		a.vcs[c][c]++
	case machine.EvFree:
		// Returning a block to the allocator is a release on its base: the
		// free list is internally synchronized, so whoever allocates the
		// block next is ordered after everything the freeing CPU did. The
		// bump keeps the freeing CPU's *later* accesses out of the edge —
		// a use-after-free through a stale pointer must still race.
		a.release(c, e.Addr)
		a.vcs[c][c]++
	case machine.EvAlloc:
		// Allocation acquires the block's free-edge (no-op for first-time
		// allocations) and resets its words' shadow state: the memory is
		// fresh, so accesses from its previous life are dead history, not
		// race candidates.
		a.acquire(c, e.Addr)
		for w := e.Addr; w < e.Addr+machine.Addr(e.Aux); w++ {
			delete(a.shadows, w)
		}
	case machine.EvRead:
		if a.sync[e.Addr] {
			// Acquire: applies immediately even inside a transaction —
			// subscription loads and quiescence scans synchronize at their
			// own virtual time, not at commit.
			a.acquire(c, e.Addr)
			if t.active && a.inQ[c] {
				// A quiescence-scan acquire inside this transaction (the
				// HTM path scans suspended, the ROT path inline): record
				// the drained edge for commit-time verdict settlement.
				if l := a.locks[e.Addr]; l != nil {
					for i, v := range l {
						if v > t.qjoin[i] {
							t.qjoin[i] = v
						}
					}
				}
			}
			if t.active && !t.susp && !t.rot {
				t.subscribe(e.Addr)
			}
			return
		}
		a.dataRead(c, e)
	case machine.EvWrite:
		if a.sync[e.Addr] {
			if t.active && !t.susp {
				// Rare: a buffered store to a sync word releases at commit.
				a.bufferWrite(t, e)
				return
			}
			a.release(c, e.Addr)
			a.vcs[c][c]++
			return
		}
		if t.active && !t.susp {
			a.bufferWrite(t, e)
			return
		}
		ctx := ctxPlain
		if t.active {
			ctx = ctxSusp
		}
		sh := a.shadowOf(e.Addr)
		a.checkWrite(sh, e.Addr, c, e.Time, ctx)
		sh.wCPU, sh.wClk, sh.wTime, sh.wCtx = c, a.vcs[c][c], e.Time, ctx
	}
}

// dataRead handles a read of a data word: race-check against the last
// write, then record the read in the shadow. Transactional reads are
// checked eagerly under the read-time vector clock but publish a pending
// entry (undone on abort) and buffer their verdict until commit.
func (a *analysis) dataRead(c int, e machine.Event) {
	t := &a.txs[c]
	sh := a.shadowOf(e.Addr)
	inTx := t.active && !t.susp
	ctx := ctxPlain
	switch {
	case inTx:
		ctx = ctxTx
	case t.active:
		ctx = ctxSusp
	}
	if sh.wCPU >= 0 && sh.wCPU != c && sh.wCtx != ctxCommit && sh.wClk > a.vcs[c][sh.wCPU] {
		// Reading a committed transactional publication is exempt (atomic
		// aggregate store); any other unordered prior write races.
		r := Race{
			Kind:       "read-after-write",
			Addr:       e.Addr,
			Prior:      Access{CPU: sh.wCPU, Time: sh.wTime, Write: true, Ctx: sh.wCtx.label()},
			Second:     Access{CPU: c, Time: e.Time, Ctx: ctx.label()},
			PriorClock: sh.wClk,
			SeenClock:  a.vcs[c][sh.wCPU],
			SurfacedAt: e.Time,
		}
		if inTx {
			t.pend = append(t.pend, r)
		} else {
			a.addRace(r)
		}
	}
	en := readEntry{has: true, pend: inTx, ctx: ctx, clk: a.vcs[c][c], time: e.Time}
	if inTx {
		a.promote(sh)
		t.undos = append(t.undos, readUndo{sh: sh, prev: sh.rMany[c]})
		sh.rMany[c] = en
		return
	}
	if sh.rCPU == -2 {
		sh.rMany[c] = en
		return
	}
	if sh.rCPU < 0 || sh.rCPU == c || sh.rOne.clk <= a.vcs[c][sh.rCPU] {
		// The previous read epoch is ours or ordered before us: collapse to
		// a single epoch (the FastTrack fast path).
		sh.rOne, sh.rCPU = en, c
		return
	}
	a.promote(sh)
	sh.rMany[c] = en
}

// bufferWrite records a transactional store (first store per word wins; the
// transaction publishes at most one ordering event per word at commit).
func (a *analysis) bufferWrite(t *txState, e machine.Event) {
	if t.wseen[e.Addr] {
		return
	}
	t.wseen[e.Addr] = true
	t.writes = append(t.writes, txWrite{addr: e.Addr, time: e.Time})
}

// checkWrite race-checks a write (immediate or commit-published) against
// the shadow's prior write and reads. Races against a pending transactional
// read are buffered on that reader's transaction.
//
// Accesses of a COMMITTED transaction need no vector-clock edge against a
// later write: the hardware's conflict detection orders them by
// construction. A commit-published store (wCtx == ctxCommit) claimed its
// line while speculating, so any unordered conflicting write before the
// commit would have doomed the transaction — the fact that it committed
// proves every conflicting write in the stream serialized after the atomic
// publication. A tracked transactional read (ctx == ctxTx) is ordered the
// same way: a non-transactional store onto an HTM read set dooms the
// reader (so the verdict-carrying commit never happens and the pending
// entry is discarded), and a ROT that commits serializes *before* any
// writer that overwrote its untracked reads — the writer could not have
// observed the ROT's buffered stores without dooming it. Plain and
// suspended accesses get no such hardware ordering and are always checked;
// the converse directions (a transactional READ of an earlier unordered
// plain write — lazy subscription — and a commit-published WRITE over an
// unordered plain access — torn snapshot) stay checked in dataRead and
// the write-epoch comparison below.
func (a *analysis) checkWrite(sh *shadow, addr machine.Addr, c int, time int64, ctx accCtx) {
	if sh.wCtx == ctxCommit {
		// Prior write is a committed transactional publication: any write
		// observed after it serialized after it (see above). Fall through
		// to the read checks — plain or suspended readers still need an
		// ordering edge.
	} else if sh.wCPU >= 0 && sh.wCPU != c && sh.wClk > a.vcs[c][sh.wCPU] {
		a.addRace(Race{
			Kind:       "write-after-write",
			Addr:       addr,
			Prior:      Access{CPU: sh.wCPU, Time: sh.wTime, Write: true, Ctx: sh.wCtx.label()},
			Second:     Access{CPU: c, Time: time, Write: true, Ctx: ctx.label()},
			PriorClock: sh.wClk,
			SeenClock:  a.vcs[c][sh.wCPU],
			SurfacedAt: time,
		})
	}
	if sh.rCPU >= 0 && sh.rCPU != c && sh.rOne.clk > a.vcs[c][sh.rCPU] &&
		sh.rOne.ctx != ctxTx {
		a.readWriteRace(sh.rCPU, sh.rOne, addr, c, time, ctx)
	}
	if sh.rCPU == -2 {
		for j := range sh.rMany {
			en := sh.rMany[j]
			if j == c || !en.has || en.clk <= a.vcs[c][j] {
				continue
			}
			if en.ctx == ctxTx {
				// Tracked transactional read: ordered by conflict detection
				// whichever way its transaction resolves (see above).
				continue
			}
			a.readWriteRace(j, en, addr, c, time, ctx)
		}
	}
}

// readWriteRace files a write-after-read race. The caller has already
// screened out transactional read entries (checkWrite's conflict-detection
// exemption), so the prior read is plain or suspended — immediate and
// durable, never pending.
func (a *analysis) readWriteRace(j int, en readEntry, addr machine.Addr, c int, time int64, ctx accCtx) {
	a.addRace(Race{
		Kind:       "write-after-read",
		Addr:       addr,
		Prior:      Access{CPU: j, Time: en.time, Ctx: en.ctx.label()},
		Second:     Access{CPU: c, Time: time, Write: true, Ctx: ctx.label()},
		PriorClock: en.clk,
		SeenClock:  a.vcs[c][j],
		SurfacedAt: time,
	})
}

// commitTx publishes a transaction atomically: buffered stores are applied
// under the commit-time vector clock, pending read entries settle, buffered
// race verdicts surface, and the commit acts as a release (clock bump).
func (a *analysis) commitTx(c int, time int64) {
	t := &a.txs[c]
	if !t.active {
		return
	}
	for _, w := range t.writes {
		if a.sync[w.addr] {
			a.release(c, w.addr)
			continue
		}
		sh := a.shadowOf(w.addr)
		a.checkWrite(sh, w.addr, c, time, ctxCommit)
		sh.wCPU, sh.wClk, sh.wTime, sh.wCtx = c, a.vcs[c][c], time, ctxCommit
	}
	for _, u := range t.undos {
		if u.sh.rMany[c].pend {
			u.sh.rMany[c].pend = false
		}
	}
	for i := range t.pend {
		// Settle each eager verdict against the edges this transaction
		// acquired through its own quiescence scans: if quiescence drained
		// the prior accessor past the racy epoch, the protocol ordered that
		// whole reader section before this publication and the verdict was
		// merely premature. A lazy subscription gets no such forgiveness —
		// its late lock-word load is not a quiescence acquire, and the
		// fallback holder's section never releases into the reader clocks
		// a quiescence scan reads.
		if t.qjoin[t.pend[i].Prior.CPU] >= t.pend[i].PriorClock {
			continue
		}
		t.pend[i].SurfacedAt = time
		a.addRace(t.pend[i])
	}
	// Subscription edge: the commit proves every subscribed word stayed
	// unchanged throughout the transaction (a conflicting write would have
	// doomed it), so later acquirers of those words — the next lock holder's
	// CAS — are ordered after this atomic block. The verdicts above were
	// taken eagerly at read time, so a lazy subscription still races even
	// though its late load grants this edge to *later* accesses.
	for _, s := range t.subs {
		a.release(c, s)
	}
	a.vcs[c][c]++
	t.active, t.susp = false, false
}

// abortTx discards a transaction: buffered stores and verdicts vanish and
// eagerly published read entries are rolled back (suspended-window effects,
// which were immediate, survive — as on the hardware).
func (a *analysis) abortTx(c int) {
	t := &a.txs[c]
	if !t.active {
		return
	}
	for i := len(t.undos) - 1; i >= 0; i-- {
		t.undos[i].sh.rMany[c] = t.undos[i].prev
	}
	t.active, t.susp = false, false
}

func (a *analysis) shadowOf(addr machine.Addr) *shadow {
	sh := a.shadows[addr]
	if sh == nil {
		sh = &shadow{wCPU: -1, rCPU: -1}
		a.shadows[addr] = sh
	}
	return sh
}

// promote switches a shadow to the per-CPU read table.
func (a *analysis) promote(sh *shadow) {
	if sh.rCPU == -2 {
		return
	}
	if sh.rMany == nil {
		sh.rMany = make([]readEntry, a.n)
	} else {
		for i := range sh.rMany {
			sh.rMany[i] = readEntry{}
		}
	}
	if sh.rCPU >= 0 {
		sh.rMany[sh.rCPU] = sh.rOne
	}
	sh.rCPU = -2
}

// acquire joins a sync word's release clock into CPU c's vector clock.
func (a *analysis) acquire(c int, addr machine.Addr) {
	l := a.locks[addr]
	if l == nil {
		return
	}
	vc := a.vcs[c]
	for i, v := range l {
		if v > vc[i] {
			vc[i] = v
		}
	}
}

// release joins CPU c's vector clock into a sync word's release clock.
func (a *analysis) release(c int, addr machine.Addr) {
	l := a.locks[addr]
	if l == nil {
		l = make([]uint64, a.n)
		a.locks[addr] = l
	}
	for i, v := range a.vcs[c] {
		if v > l[i] {
			l[i] = v
		}
	}
}

// addRace records a race, deduplicating by (kind, addr, CPU pair) and
// capping retention at MaxRaces.
func (a *analysis) addRace(r Race) {
	k := raceKey{kind: r.Kind, addr: r.Addr, prior: r.Prior.CPU, second: r.Second.CPU}
	if a.dedup[k] {
		a.rep.Dups++
		return
	}
	a.dedup[k] = true
	a.rep.Total++
	if len(a.rep.Races) < a.maxKeep {
		a.rep.Races = append(a.rep.Races, r)
	}
}
