package simsan

import (
	"encoding/json"
	"fmt"
	"io"

	"hrwle/internal/machine"
)

// Access context labels; see the package comment for the semantics.
const (
	CtxPlain     = "plain"     // ordinary non-speculative access
	CtxSuspended = "suspended" // inside a suspend window (non-transactional)
	CtxTx        = "tx"        // transactional access of a committed transaction
	CtxCommit    = "tx-commit" // buffered store published at commit
)

// Access is one side of a race: which CPU touched the word, when, and in
// what speculation context.
type Access struct {
	CPU   int    `json:"cpu"`
	Time  int64  `json:"time"`
	Write bool   `json:"write"`
	Ctx   string `json:"ctx"`
}

func (a Access) String() string {
	op := "read"
	if a.Write {
		op = "write"
	}
	return fmt.Sprintf("CPU %d %s @t=%d (%s)", a.CPU, op, a.Time, a.Ctx)
}

// Race is one detected happens-before violation: two accesses to the same
// data word, at least one a write, with no ordering edge between them.
type Race struct {
	// Kind is "read-after-write", "write-after-write" or "write-after-read"
	// (named by stream order: Prior happened first in the interleaving).
	Kind string       `json:"kind"`
	Addr machine.Addr `json:"addr"`
	// Prior is the earlier access (already in the shadow state), Second the
	// one whose check failed.
	Prior  Access `json:"prior"`
	Second Access `json:"second"`
	// PriorClock is Prior.CPU's logical clock at the prior access;
	// SeenClock is Second.CPU's vector-clock entry for Prior.CPU at the
	// check. PriorClock > SeenClock is the vector-clock evidence that no
	// happens-before edge connects the two accesses.
	PriorClock uint64 `json:"prior_clock"`
	SeenClock  uint64 `json:"seen_clock"`
	// SurfacedAt is the virtual time the race became definitive: the check
	// time for immediate accesses, the commit time when either side was
	// speculative (aborted speculation is discarded, so a speculative
	// verdict is pending until its transaction commits).
	SurfacedAt int64 `json:"surfaced_at"`
}

func (r Race) String() string {
	return fmt.Sprintf("%s at %#x: %s vs %s; epoch %d@%d > view %d, surfaced @t=%d",
		r.Kind, uint64(r.Addr), r.Prior, r.Second,
		r.PriorClock, r.Prior.CPU, r.SeenClock, r.SurfacedAt)
}

// Report is the outcome of analyzing one execution.
type Report struct {
	CPUs   int    `json:"cpus"`
	Events int64  `json:"events"`
	Total  int    `json:"total"` // distinct races found
	Dups   int    `json:"dups"`  // suppressed duplicates (same kind/addr/CPU pair)
	Races  []Race `json:"races"` // first MaxRaces distinct races, stream order
}

// Racy reports whether any race was found.
func (r *Report) Racy() bool { return r.Total > 0 }

// WriteText renders the report deterministically for goldens and CI diffs.
func (r *Report) WriteText(w io.Writer) {
	if !r.Racy() {
		fmt.Fprintf(w, "simsan: no races (%d CPUs, %d events)\n", r.CPUs, r.Events)
		return
	}
	fmt.Fprintf(w, "simsan: %d race(s) (%d duplicate(s) suppressed; %d CPUs, %d events)\n",
		r.Total, r.Dups, r.CPUs, r.Events)
	for i, rc := range r.Races {
		fmt.Fprintf(w, "race %d: %s at %#x\n", i+1, rc.Kind, uint64(rc.Addr))
		fmt.Fprintf(w, "  prior:  %s\n", rc.Prior)
		fmt.Fprintf(w, "  second: %s\n", rc.Second)
		fmt.Fprintf(w, "  clock:  prior epoch %d@%d, observer view of CPU %d = %d, surfaced @t=%d\n",
			rc.PriorClock, rc.Prior.CPU, rc.Prior.CPU, rc.SeenClock, rc.SurfacedAt)
	}
	if r.Total > len(r.Races) {
		fmt.Fprintf(w, "... %d further race(s) dropped (MaxRaces)\n", r.Total-len(r.Races))
	}
}

// WriteJSON renders the report as deterministic indented JSON (struct field
// order; races in stream order).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
