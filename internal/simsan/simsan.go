// Package simsan is a happens-before data-race sanitizer for simulated
// executions: a machine.Tracer that buffers the event stream of one run and
// analyzes it with FastTrack-style vector clocks (Flanagan & Freund, PLDI'09),
// adapted to the HTM semantics of internal/htm.
//
// The analysis understands the synchronization idioms of this codebase
// without any annotation, by deriving everything from the stream itself:
//
//   - Synchronization words are classified structurally: any address that is
//     ever CAS'd (EvCAS), waited on (EvLockWait), or read by a CPU inside its
//     own quiescence window (EvQuiesceStart/End) is a sync word for the whole
//     run. Reads of sync words are acquires, writes are releases, CAS is
//     both. That covers lock words, reader clocks, the fair variant's local
//     version copies, and every spin-wait cell — and exempts them from data
//     race checking, which is reserved for data words.
//
//   - Committed transactions are atomic blocks: their stores are buffered and
//     published at EvTxCommit under the commit-time vector clock, and a read
//     that observes a committed transactional write is never racy by itself
//     (the commit is an atomic aggregate publication at a scheduling
//     boundary — this is exactly what lets RW-LE readers overlap a writer's
//     speculation soundly). More generally, a committed transaction's
//     tracked accesses need no vector-clock edge against anything that
//     follows them in the stream: conflict detection supplies the order. A
//     store that lands unordered on a committed publication must have come
//     after the commit (earlier it would have doomed the claim), and a
//     store that overwrites a committed transaction's read serialized after
//     the transaction (an HTM reader would have been doomed; a ROT that
//     commits serializes before any writer of its untracked reads, since
//     that writer never observed the ROT's buffered state). Committed
//     writes still require an ordering edge to any prior plain or suspended
//     access — that is what the quiescence protocol provides, and dropping
//     it (the skip-quiesce mutation) stays detectable.
//
//   - The allocator is a synchronization channel: EvFree releases on the
//     block base and EvAlloc acquires it and resets the block's shadow
//     state, so a record recycled by one CPU and reused by another is
//     ordered through the free list, not flagged against its previous
//     life. The freeing CPU's clock is bumped at the free, so its *later*
//     accesses through a stale pointer still race with the new owner.
//
//   - Transactional reads are checked eagerly, at read time, under the
//     read-time vector clock; the verdict is buffered and surfaced only if
//     the transaction commits (aborted speculation never happened). Eager
//     checking is what catches unsafe lazy subscription: by the time a
//     lazily-subscribing transaction re-reads the lock word, the fallback
//     holder has released it, and a commit-time check would find a spurious
//     edge that the body's reads never had. One class of late edge does
//     settle eager verdicts at commit: acquires the transaction made
//     through its OWN quiescence scans (sync-word reads inside its
//     EvQuiesceStart/End windows, suspended or inline). Quiescence is the
//     algorithm's reader-drain certification — a writer that read a
//     reader's mid-section store and then drained that reader before
//     committing ordered the whole reader section before its publication,
//     so the eager verdict was merely premature. This cannot excuse lazy
//     subscription: the fallback holder's write section never releases
//     into the reader clocks a quiescence scan reads.
//
//   - Committed regular transactions release into every sync word they read
//     while active (their subscriptions): those loads are conflict-tracked,
//     so the commit certifies the word never changed during the block, and
//     the next acquirer of the word — e.g. a fallback writer's CAS — is
//     ordered after the whole atomic block. This is the edge lock *elision*
//     relies on without ever writing the lock word. ROT and suspended loads
//     are untracked and certify nothing, so they grant no such edge.
//
//   - Suspended accesses (between EvTxSuspend and EvTxResume) are
//     non-transactional: immediate, and durable across a later abort,
//     mirroring POWER8 suspend semantics.
//
// Everything else — plain reads and writes, including the uninstrumented
// RW-LE read-side sections — is checked with the classic FastTrack rules:
// a write must happen after every prior access to the word, a read must
// happen after the prior write (unless that write is a committed
// transactional publication, per the atomic-block rule above).
//
// The sanitizer is strictly an observer: it charges no virtual time and
// allocates nothing on the simulated fast path. It does buffer the whole
// event stream (two passes are needed: sync classification must precede the
// happens-before pass), so sanitized runs should be kept to bounded
// horizons. Reports are deterministic: races are found in stream order and
// deduplicated by (kind, address, CPU pair).
package simsan

import "hrwle/internal/machine"

// Options configures a Sanitizer.
type Options struct {
	// CPUs is the number of simulated CPUs in the traced run.
	CPUs int
	// MaxRaces caps how many distinct races are retained in the report
	// (further ones are counted but dropped). Default 64.
	MaxRaces int
}

// Sanitizer buffers one execution's event stream for race analysis. Attach
// it with machine.SetTracer (composing with any other tracer through
// machine.MultiTracer) and enable htm-level access events with
// htm.System.SetTraceAccesses(true); call Finish after the run.
type Sanitizer struct {
	opt    Options
	events []machine.Event
	rep    *Report
}

// New returns a Sanitizer for a run on n CPUs.
func New(opt Options) *Sanitizer {
	if opt.CPUs <= 0 {
		opt.CPUs = 1
	}
	if opt.MaxRaces <= 0 {
		opt.MaxRaces = 64
	}
	return &Sanitizer{opt: opt}
}

// Event implements machine.Tracer.
func (s *Sanitizer) Event(e machine.Event) {
	s.events = append(s.events, e)
}

// Events returns how many events have been buffered.
func (s *Sanitizer) Events() int { return len(s.events) }

// Finish runs the two-pass analysis and returns the race report. The
// report is computed once and cached; the buffered stream is released.
func (s *Sanitizer) Finish() *Report {
	if s.rep == nil {
		s.rep = analyze(s.opt, s.events)
		s.events = nil
	}
	return s.rep
}
