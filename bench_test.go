// Package hrwle's root benchmarks regenerate one representative point of
// every figure in the paper's evaluation (run the full sweeps with
// cmd/hrwle-bench). Because the workload executes in deterministic virtual
// time, each benchmark also reports the simulated metrics the paper plots:
// virtual Mops/s and the abort rate.
package hrwle

import (
	"testing"

	"hrwle/internal/harness"
	"hrwle/internal/machine"
)

// benchPoint runs one figure point per b.N iteration and reports virtual
// throughput and abort rate alongside wall time.
func benchPoint(b *testing.B, fig, scheme string, threads, writePct int, scale float64) {
	b.Helper()
	figs := harness.Registry()
	spec, ok := figs[fig]
	if !ok {
		b.Fatalf("unknown figure %s", fig)
	}
	var last harness.Result
	for i := 0; i < b.N; i++ {
		last = spec.Point(harness.PointCtx{}, scheme, threads, writePct, scale)
	}
	if last.B.Ops > 0 {
		b.ReportMetric(float64(last.B.Ops)/machine.Seconds(last.Cycles)/1e6, "virtual-Mops/s")
	}
	b.ReportMetric(last.B.AbortRate(), "abort%")
}

// Fig. 3 — hashmap, high capacity, high contention.
func BenchmarkFig3_RWLE_OPT(b *testing.B) { benchPoint(b, "fig3", "RW-LE_OPT", 8, 10, 0.05) }
func BenchmarkFig3_RWLE_PES(b *testing.B) { benchPoint(b, "fig3", "RW-LE_PES", 8, 10, 0.05) }
func BenchmarkFig3_HLE(b *testing.B)      { benchPoint(b, "fig3", "HLE", 8, 10, 0.05) }
func BenchmarkFig3_SGL(b *testing.B)      { benchPoint(b, "fig3", "SGL", 8, 10, 0.05) }

// Fig. 4 — hashmap, high capacity, low contention.
func BenchmarkFig4_RWLE_OPT(b *testing.B) { benchPoint(b, "fig4", "RW-LE_OPT", 8, 10, 0.05) }
func BenchmarkFig4_HLE(b *testing.B)      { benchPoint(b, "fig4", "HLE", 8, 10, 0.05) }

// Fig. 5 — hashmap, low capacity, high contention.
func BenchmarkFig5_RWLE_OPT(b *testing.B) { benchPoint(b, "fig5", "RW-LE_OPT", 8, 10, 0.05) }
func BenchmarkFig5_HLE(b *testing.B)      { benchPoint(b, "fig5", "HLE", 8, 10, 0.05) }

// Fig. 6 — hashmap, low capacity, low contention, VM-subsystem stress.
func BenchmarkFig6_RWLE_OPT(b *testing.B) { benchPoint(b, "fig6", "RW-LE_OPT", 8, 10, 0.05) }
func BenchmarkFig6_HLE(b *testing.B)      { benchPoint(b, "fig6", "HLE", 8, 10, 0.05) }

// Fig. 7 — fairness stress (ROTs disabled).
func BenchmarkFig7_RWLE(b *testing.B)      { benchPoint(b, "fig7", "RW-LE", 8, 10, 0.05) }
func BenchmarkFig7_RWLE_FAIR(b *testing.B) { benchPoint(b, "fig7", "RW-LE_FAIR", 8, 10, 0.05) }

// Fig. 8 — STMBench7.
func BenchmarkFig8_RWLE_OPT(b *testing.B) { benchPoint(b, "fig8", "RW-LE_OPT", 8, 10, 0.05) }
func BenchmarkFig8_RWLE_PES(b *testing.B) { benchPoint(b, "fig8", "RW-LE_PES", 8, 10, 0.05) }
func BenchmarkFig8_HLE(b *testing.B)      { benchPoint(b, "fig8", "HLE", 8, 10, 0.05) }
func BenchmarkFig8_RWL(b *testing.B)      { benchPoint(b, "fig8", "RWL", 8, 10, 0.05) }

// Fig. 9 — Kyoto Cabinet wicked workload.
func BenchmarkFig9_RWLE_OPT(b *testing.B) { benchPoint(b, "fig9", "RW-LE_OPT", 8, 5, 0.05) }
func BenchmarkFig9_HLE(b *testing.B)      { benchPoint(b, "fig9", "HLE", 8, 5, 0.05) }
func BenchmarkFig9_Orig(b *testing.B)     { benchPoint(b, "fig9", "Orig", 8, 5, 0.05) }

// Fig. 10 — TPC-C.
func BenchmarkFig10_RWLE_OPT(b *testing.B) { benchPoint(b, "fig10", "RW-LE_OPT", 8, 10, 0.05) }
func BenchmarkFig10_HLE(b *testing.B)      { benchPoint(b, "fig10", "HLE", 8, 10, 0.05) }
func BenchmarkFig10_BRLock(b *testing.B)   { benchPoint(b, "fig10", "BRLock", 8, 10, 0.05) }

// Ablations.
func BenchmarkRetries5(b *testing.B) { benchPoint(b, "retries", "retry=5", 8, 10, 0.05) }
func BenchmarkRetries1(b *testing.B) { benchPoint(b, "retries", "retry=1", 8, 10, 0.05) }
func BenchmarkSplitOff(b *testing.B) { benchPoint(b, "split", "RW-LE_OPT", 8, 10, 0.05) }
func BenchmarkSplitOn(b *testing.B)  { benchPoint(b, "split", "RW-LE_SPLIT", 8, 10, 0.05) }
