// tpcc: a miniature of the paper's Fig. 10 — the TPC-C workload with its
// five transaction profiles under an elided read-write lock, including the
// full consistency audit (W_YTD = Σ D_YTD, order-id accounting, new-order
// queues, and the customer balance equation) after every run.
//
// Run with: go run ./examples/tpcc
package main

import (
	"fmt"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
	"hrwle/internal/tpcc"
)

func run(name string, mk rwlock.Factory, threads, writePct int) {
	cfg := tpcc.DefaultConfig()
	const opsPerThread = 120
	totalOps := int64(threads * opsPerThread)
	m := machine.New(machine.Config{CPUs: threads, MemWords: cfg.MemWords(totalOps), Seed: 21})
	sys := htm.NewSystem(m, htm.Config{})
	lock := mk(sys)
	db := tpcc.Build(m, cfg)
	wl := &tpcc.Workload{DB: db, WritePct: writePct}

	elapsed := m.Run(threads, func(c *machine.CPU) {
		t := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			wl.Step(lock, t, c)
		}
	})
	b := stats.Merge(sys.Stats(threads), elapsed)
	audit := "consistent"
	if msg := db.CheckConsistency(&wl.Audit); msg != "" {
		audit = "VIOLATION: " + msg
	}
	fmt.Printf("%-10s w=%2d%% %2d thr: %7.0f ktx/s  aborts %5.1f%%  %s  [%s]\n",
		name, writePct, threads,
		float64(b.Ops)/machine.Seconds(elapsed)/1e3, b.AbortRate(), b.FormatCommits(), audit)
}

func main() {
	fmt.Println("TPC-C over an in-memory store: read-only transactions under the read")
	fmt.Println("lock, updates (New-Order/Payment/Delivery) under the write lock")
	fmt.Println()
	for _, w := range []int{1, 10, 50} {
		for _, n := range []int{1, 8, 32} {
			run("RW-LE_OPT", func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }, n, w)
			run("HLE", func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }, n, w)
			run("SGL", func(s *htm.System) rwlock.Lock { return locks.NewSGL(s) }, n, w)
		}
		fmt.Println()
	}
}
