// kvstore: a Kyoto-Cabinet-style in-memory store under three
// synchronization schemes — RW-LE, the original read-write lock, and HLE —
// on a read-dominated mix, reproducing the paper's Fig. 9 story in
// miniature: RW-LE's uninstrumented readers beat both the pessimistic
// lock (hot-line ping-pong) and HLE (whose get() transactions conflict on
// the slot LRU heads).
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/kyoto"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
)

func run(name string, mk rwlock.Factory, inner kyoto.InnerPolicy, threads int) {
	cfg := kyoto.DefaultConfig()
	m := machine.New(machine.Config{CPUs: threads, MemWords: cfg.MemWords(), Seed: 7})
	sys := htm.NewSystem(m, htm.Config{})
	lock := mk(sys)
	db := kyoto.New(m, cfg)
	db.Populate()
	w := &kyoto.Wicked{DB: db, WritePct: 2, Inner: inner}

	const opsPerThread = 400
	elapsed := m.Run(threads, func(c *machine.CPU) {
		t := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			w.Step(lock, t, c)
		}
	})
	b := stats.Merge(sys.Stats(threads), elapsed)
	fmt.Printf("%-10s %2d threads: %6.2f Mops/s   aborts %5.1f%%   %s\n",
		name, threads, float64(b.Ops)/machine.Seconds(elapsed)/1e6, b.AbortRate(), b.FormatCommits())
	if msg := db.CheckTrees(); msg != "" {
		fmt.Printf("  !! consistency violation: %s\n", msg)
	}
}

func main() {
	fmt.Println("Kyoto-style kvstore, wicked mix, 2% database-wide write operations")
	for _, n := range []int{1, 8, 16, 32} {
		run("RW-LE", func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }, kyoto.InnerReal, n)
		run("Orig-RWL", func(s *htm.System) rwlock.Lock { return locks.NewRWL(s) }, kyoto.InnerReal, n)
		run("HLE", func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }, kyoto.InnerElide, n)
		fmt.Println()
	}
}
