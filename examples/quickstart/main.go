// Quickstart: elide a read-write lock with RW-LE on the simulated POWER8
// machine and observe the paper's key property — readers run with no
// speculation and no lock traffic, writers speculate and quiesce.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

func main() {
	// 1. A simulated 16-way machine. Everything below runs in
	//    deterministic virtual time; same seed, same result.
	m := machine.New(machine.Config{CPUs: 16, MemWords: 1 << 20, Seed: 42})
	sys := htm.NewSystem(m, htm.Config{}) // POWER8-style HTM: 64-line budgets

	// 2. An RW-LE lock with the paper's optimistic policy: writers try 5
	//    hardware transactions, then 5 rollback-only transactions, then
	//    the global lock.
	lock := core.New(sys, core.Opt())

	// 3. Shared state: an 8-word "record" that writers update atomically
	//    and readers must always see consistent.
	record := make([]machine.Addr, 8)
	for i := range record {
		record[i] = m.AllocRawAligned(1)
	}

	const opsPerThread = 500
	torn := 0
	elapsed := m.Run(16, func(c *machine.CPU) {
		t := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			if c.Intn(100) < 10 { // 10% writers
				lock.Write(t, func() {
					v := t.Load(record[0]) + 1
					for _, w := range record {
						t.Store(w, v)
					}
				})
			} else {
				// The section may re-execute after an abort, so it must not
				// increment the shared counter directly (a retry would count
				// the same snapshot twice). It publishes its verdict with an
				// unconditional plain assignment — restartable — and the
				// counter is bumped outside.
				sawTorn := false
				lock.Read(t, func() {
					tornHere := false
					v := t.Load(record[0])
					for _, w := range record[1:] {
						if t.Load(w) != v {
							tornHere = true // never happens: quiescence forbids it
						}
					}
					sawTorn = tornHere
				})
				if sawTorn {
					torn++
				}
			}
		}
	})

	b := stats.Merge(sys.Stats(16), elapsed)
	totalOps := 16 * opsPerThread
	fmt.Printf("16 threads, %d ops in %.3f ms of virtual time (%.1f Mops/s)\n",
		totalOps, machine.Seconds(elapsed)*1e3,
		float64(totalOps)/machine.Seconds(elapsed)/1e6)
	fmt.Printf("torn snapshots observed: %d\n", torn)
	fmt.Printf("final record value: %d (= committed writes)\n", m.Peek(record[0]))
	fmt.Printf("commit paths: %s\n", b.FormatCommits())
	fmt.Printf("abort rate: %.1f%% of %d transaction attempts\n", b.AbortRate(), b.TxStarts)
}
