// fairness: demonstrates the reader-starvation problem of §3.3 and the
// fair RW-LE variant's fix. ROTs are disabled (as in the paper's Fig. 7
// experiment) so that every writer that fails speculation lands on the
// non-speculative path — the main source of unfairness: base RW-LE lets a
// stream of such writers overtake a waiting reader indefinitely, while the
// fair variant admits the reader after at most the current lock holder.
//
// The demo measures per-reader entry latency under a writer storm.
//
// Run with: go run ./examples/fairness
package main

import (
	"fmt"
	"sort"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
)

func run(fair bool) (p50, p99, max int64) {
	const threads = 16
	m := machine.New(machine.Config{CPUs: threads, MemWords: 1 << 20, Seed: 99})
	sys := htm.NewSystem(m, htm.Config{})
	opts := core.Options{MaxHTM: 0, MaxROT: 0, Fair: fair, Name: "demo"} // NS-only writers
	lock := core.New(sys, opts)
	data := m.AllocRawAligned(8 * 16)

	var latencies []int64
	m.Run(threads, func(c *machine.CPU) {
		t := sys.Thread(c.ID)
		if c.ID < 4 { // four readers sampling entry latency
			for i := 0; i < 60; i++ {
				start := c.Now()
				// Record the entry latency with a plain (restartable)
				// assignment inside the section and append outside it: an
				// aborted speculative read re-executes its body, and a
				// self-append there would record the sample twice.
				var entry int64
				lock.Read(t, func() {
					entry = c.Now() - start
					t.Load(data)
				})
				latencies = append(latencies, entry)
				c.Tick(int64(c.Intn(500)))
			}
		} else { // twelve writers hammering the non-speculative path
			for i := 0; i < 80; i++ {
				lock.Write(t, func() {
					for j := 0; j < 8; j++ {
						t.Store(data+machine.Addr(j*16), uint64(i))
					}
					c.Tick(1500) // long write section
				})
			}
		}
	})
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	n := len(latencies)
	return latencies[n/2], latencies[n*99/100], latencies[n-1]
}

func main() {
	fmt.Println("Reader entry latency under a non-speculative writer storm")
	fmt.Println("(ROTs disabled; 12 writers vs 4 readers; cycles)")
	fmt.Println()
	fmt.Printf("%-10s %10s %10s %10s\n", "variant", "p50", "p99", "max")
	for _, fair := range []bool{false, true} {
		name := "RW-LE"
		if fair {
			name = "RW-LE_FAIR"
		}
		p50, p99, max := run(fair)
		fmt.Printf("%-10s %10d %10d %10d\n", name, p50, p99, max)
	}
	fmt.Println("\nThe fair variant bounds the tail: a reader waits for at most the")
	fmt.Println("current lock owner instead of every writer that arrives after it.")
}
