// cadgraph: the STMBench7 CAD-object-graph workload (the paper's Fig. 8
// application) under RW-LE and HLE, demonstrating why capacity-hungry
// critical sections destroy plain lock elision while RW-LE's rollback-only
// transactions shrug them off: ROTs do not track loads, so only the write
// footprint counts against the hardware budget.
//
// Run with: go run ./examples/cadgraph
package main

import (
	"fmt"

	"hrwle/internal/core"
	"hrwle/internal/htm"
	"hrwle/internal/locks"
	"hrwle/internal/machine"
	"hrwle/internal/rwlock"
	"hrwle/internal/stats"
	"hrwle/internal/stmbench7"
)

func run(name string, mk rwlock.Factory, threads, writePct int) stats.Breakdown {
	cfg := stmbench7.DefaultConfig()
	m := machine.New(machine.Config{CPUs: threads, MemWords: cfg.MemWords(), Seed: 3})
	sys := htm.NewSystem(m, htm.Config{})
	lock := mk(sys)
	b := stmbench7.Build(m, cfg)
	mix := stmbench7.NewMix(writePct)

	sumBefore := b.SumXY()
	const opsPerThread = 150
	elapsed := m.Run(threads, func(c *machine.CPU) {
		t := sys.Thread(c.ID)
		for i := 0; i < opsPerThread; i++ {
			mix.Step(b, lock, t, c)
		}
	})
	bd := stats.Merge(sys.Stats(threads), elapsed)
	fmt.Printf("%-10s w=%2d%% %2d thr: %6.2f Mops/s  aborts %5.1f%%  %s\n",
		name, writePct, threads,
		float64(bd.Ops)/machine.Seconds(elapsed)/1e6, bd.AbortRate(), bd.FormatCommits())
	if msg := b.CheckStructure(); msg != "" {
		fmt.Printf("  !! structure violated: %s\n", msg)
	}
	if b.SumXY() != sumBefore {
		fmt.Println("  !! invariant Σ(x+y) drifted")
	}
	return bd
}

func main() {
	fmt.Println("STMBench7 CAD graph: 24-operation default mix (no long traversals,")
	fmt.Println("no structural modifications), read-write lock around each operation")
	fmt.Println()
	for _, w := range []int{10, 50} {
		for _, n := range []int{4, 16, 48} {
			run("RW-LE_OPT", func(s *htm.System) rwlock.Lock { return core.New(s, core.Opt()) }, n, w)
			run("RW-LE_PES", func(s *htm.System) rwlock.Lock { return core.New(s, core.Pes()) }, n, w)
			run("HLE", func(s *htm.System) rwlock.Lock { return locks.NewHLE(s) }, n, w)
			fmt.Println()
		}
	}
}
