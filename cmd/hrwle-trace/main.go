// Command hrwle-trace runs a small lock-elision scenario with the machine's
// event tracer enabled and prints a virtual-time-ordered trace of
// transaction lifecycle events — begins, dooms, aborts (with cause),
// suspends, quiescence windows, commits — followed by an event summary.
// It is the debugging lens for understanding *why* a scheme behaves the
// way a figure shows.
//
// Usage:
//
//	hrwle-trace [-scheme RW-LE_OPT] [-threads 4] [-ops 30] [-w 20] [-n 120]
package main

import (
	"flag"
	"fmt"

	"hrwle/internal/harness"
	"hrwle/internal/hashmap"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/stats"
)

func main() {
	var (
		scheme  = flag.String("scheme", "RW-LE_OPT", "synchronization scheme (see hrwle-bench -list output)")
		threads = flag.Int("threads", 4, "simulated hardware threads")
		ops     = flag.Int("ops", 30, "operations per thread")
		writes  = flag.Int("w", 20, "write percentage")
		events  = flag.Int("n", 120, "max events to print")
	)
	flag.Parse()

	m := machine.New(machine.Config{CPUs: *threads, MemWords: 1 << 20, Seed: 7})
	sys := htm.NewSystem(m, htm.Config{})
	lock := harness.SchemeFactory(*scheme)(sys)
	h := hashmap.New(m, 4)
	h.Populate(50)

	ring := machine.NewRingTracer(*events)
	counts := &machine.CountTracer{}
	m.SetTracer(tee{ring, counts})

	cycles := m.Run(*threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		var spare machine.Addr
		for i := 0; i < *ops; i++ {
			key := uint64(c.Intn(200))
			if c.Intn(100) < *writes {
				if spare == 0 {
					spare = h.PrepareNode(th)
				}
				used := false
				lock.Write(th, func() { used = h.Insert(th, key, key, spare) })
				if used {
					spare = 0
				}
			} else {
				lock.Read(th, func() { h.Lookup(th, key) })
			}
		}
	})

	fmt.Printf("scheme=%s threads=%d ops/thread=%d w=%d%%  →  %d virtual cycles\n\n",
		lock.Name(), *threads, *ops, *writes, cycles)
	fmt.Printf("%12s %4s %-14s %s\n", "CYCLE", "CPU", "EVENT", "DETAIL")
	for _, e := range ring.Events() {
		fmt.Printf("%12d %4d %-14s %s\n", e.Time, e.CPU, e.Kind, detail(e))
	}

	fmt.Println("\nevent totals:")
	for k, n := range counts.Counts {
		if n > 0 {
			fmt.Printf("  %-14s %8d\n", machine.EventKind(k), n)
		}
	}
	b := stats.Merge(sys.Stats(*threads), cycles)
	fmt.Printf("\naborts: %.1f%% of %d attempts   commits: %s\n",
		b.AbortRate(), b.TxStarts, b.FormatCommits())
}

// tee fans events out to multiple tracers.
type tee struct {
	a, b machine.Tracer
}

func (t tee) Event(e machine.Event) {
	t.a.Event(e)
	t.b.Event(e)
}

func detail(e machine.Event) string {
	switch e.Kind {
	case machine.EvTxBegin:
		if e.Aux == 1 {
			return "ROT"
		}
		return "HTM"
	case machine.EvTxAbort, machine.EvTxDoom:
		return "cause=" + stats.AbortCause(e.Aux).String()
	case machine.EvTxCommit:
		return fmt.Sprintf("%d dirty words", e.Aux)
	case machine.EvQuiesceEnd:
		return fmt.Sprintf("waited %d cycles", e.Aux)
	case machine.EvRead, machine.EvWrite, machine.EvCAS:
		return fmt.Sprintf("addr=%d val=%d", e.Addr, e.Aux)
	case machine.EvPageFault:
		return fmt.Sprintf("page=%d", e.Aux)
	}
	return ""
}
