// Command hrwle-trace runs a small lock-elision scenario with the machine's
// event tracer enabled and prints a virtual-time-ordered trace of
// transaction lifecycle events — begins, dooms, aborts (with cause and
// aggressor CPU), suspends, quiescence windows, commits — followed by an
// event summary. It is the debugging lens for understanding *why* a scheme
// behaves the way a figure shows.
//
// Beyond the raw event dump it exposes the structured telemetry of
// internal/obs:
//
//	-matrix        print the killer→victim abort-attribution matrix and
//	               the conflict hot-address ranking
//	-hist          print per-critical-section latency histograms (split by
//	               read/write side and final commit path) and the
//	               quiescence-window histogram
//	-json FILE     write the full point metrics as deterministic JSON
//	               ("-" for stdout)
//	-chrome FILE   write the complete event trace in Chrome trace_event
//	               format (open in Perfetto or chrome://tracing)
//	-timeline FILE attach the virtual-time profiler and write its windowed
//	               cycle-attribution/telemetry report as JSON (text panels
//	               are printed with the trace); -window sets the bucket
//	               width in virtual cycles
//	-sanitize      attach the simsan happens-before race detector; the race
//	               report is printed after the stats and any race fails the
//	               run (exit 1)
//
// -scheme accepts a comma-separated list; each scheme runs on its own
// simulated machine (concurrently, up to -j at a time) and the traces are
// printed in the order given. -json, -chrome and -timeline require a
// single scheme.
//
// Usage:
//
//	hrwle-trace [-scheme RW-LE_OPT,SGL] [-threads 4] [-ops 30] [-w 20]
//	            [-n 120] [-seed 7] [-j 4] [-matrix] [-hist]
//	            [-json FILE] [-chrome FILE] [-timeline FILE]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"

	"hrwle/internal/harness"
	"hrwle/internal/hashmap"
	"hrwle/internal/htm"
	"hrwle/internal/machine"
	"hrwle/internal/obs"
	"hrwle/internal/simsan"
	"hrwle/internal/stats"
)

// traceOpts carries the per-run knobs shared by every scheme.
type traceOpts struct {
	threads, ops, writes, events int
	seed                         uint64
	matrix, hist, noEvents       bool
	sanitize                     bool
	jsonOut, chrome, timeline    string
	window                       int64
}

func main() {
	var (
		scheme   = flag.String("scheme", "RW-LE_OPT", "synchronization scheme, or a comma-separated list (see hrwle-bench -list output)")
		threads  = flag.Int("threads", 4, "simulated hardware threads")
		ops      = flag.Int("ops", 30, "operations per thread")
		writes   = flag.Int("w", 20, "write percentage")
		events   = flag.Int("n", 120, "max events to print")
		seed     = flag.Uint64("seed", 7, "machine seed (identical seeds give identical runs)")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "schemes to trace concurrently")
		matrix   = flag.Bool("matrix", false, "print the killer→victim abort-attribution matrix")
		hist     = flag.Bool("hist", false, "print per-CS latency and quiescence histograms")
		jsonOut  = flag.String("json", "", "write point metrics JSON to this file ('-' for stdout)")
		chrome   = flag.String("chrome", "", "write a Chrome trace_event file (Perfetto / chrome://tracing)")
		timeline = flag.String("timeline", "", "write the virtual-time profile JSON to this file ('-' for stdout)")
		window   = flag.Int64("window", harness.DefaultProfWindow, "profiling window width in virtual cycles (with -timeline)")
		noEvents = flag.Bool("q", false, "suppress the raw event dump")
		sanitize = flag.Bool("sanitize", false, "attach the simsan happens-before race detector (exit 1 on any race)")
	)
	flag.Parse()

	var schemes []string
	for _, s := range strings.Split(*scheme, ",") {
		if s = strings.TrimSpace(s); s != "" {
			schemes = append(schemes, s)
		}
	}
	if len(schemes) == 0 {
		fatal(fmt.Errorf("no scheme given"))
	}
	if len(schemes) > 1 && (*jsonOut != "" || *chrome != "" || *timeline != "") {
		fatal(fmt.Errorf("-json, -chrome and -timeline require a single -scheme, got %d", len(schemes)))
	}

	opts := traceOpts{
		threads: *threads, ops: *ops, writes: *writes, events: *events,
		seed: *seed, matrix: *matrix, hist: *hist, noEvents: *noEvents,
		sanitize: *sanitize,
		jsonOut: *jsonOut, chrome: *chrome, timeline: *timeline, window: *window,
	}

	// Each scheme traces an independent machine; buffer the reports and
	// print them in the order the schemes were given, regardless of which
	// finishes first.
	bufs := make([]bytes.Buffer, len(schemes))
	errs := make([]error, len(schemes))
	workers := *jobs
	if workers < 1 {
		workers = 1
	}
	if workers > len(schemes) {
		workers = len(schemes)
	}
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = traceScheme(&bufs[i], schemes[i], opts)
			}
		}()
	}
	for i := range schemes {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for i := range schemes {
		if i > 0 {
			fmt.Println(strings.Repeat("=", 72))
		}
		os.Stdout.Write(bufs[i].Bytes())
		if errs[i] != nil {
			fatal(errs[i])
		}
	}
}

// traceScheme runs the scenario under one scheme, writing the full report
// to w. Side-effecting outputs (-json, -chrome files) only occur in
// single-scheme mode, guarded in main.
func traceScheme(w io.Writer, scheme string, o traceOpts) error {
	m := machine.New(machine.Config{CPUs: o.threads, MemWords: 1 << 20, Seed: o.seed})
	sys := htm.NewSystem(m, htm.Config{})
	lock := harness.SchemeFactory(scheme)(sys)
	h := hashmap.New(m, 4)
	h.Populate(50)

	ring := machine.NewRingTracer(o.events)
	counts := &machine.CountTracer{}
	collector := obs.NewCollector()
	tracers := machine.MultiTracer{ring, counts, collector}
	var log *machine.LogTracer
	if o.chrome != "" {
		log = &machine.LogTracer{}
		tracers = append(tracers, log)
	}
	var prof *obs.Profile
	if o.timeline != "" {
		prof = obs.NewProfile(o.window, 0)
		tracers = append(tracers, prof)
	}
	var san *simsan.Sanitizer
	if o.sanitize {
		san = simsan.New(simsan.Options{CPUs: o.threads})
		tracers = append(tracers, san)
		sys.SetTraceAccesses(true)
	}
	m.SetTracer(tracers)
	if prof != nil {
		prof.Start(m.Now(), o.threads)
	}

	cycles := m.Run(o.threads, func(c *machine.CPU) {
		th := sys.Thread(c.ID)
		var spare machine.Addr
		for i := 0; i < o.ops; i++ {
			key := uint64(c.Intn(200))
			if c.Intn(100) < o.writes {
				if spare == 0 {
					spare = h.PrepareNode(th)
				}
				used := false
				lock.Write(th, func() { used = h.Insert(th, key, key, spare) })
				if used {
					spare = 0
				}
			} else {
				lock.Read(th, func() { h.Lookup(th, key) })
			}
		}
	})

	fmt.Fprintf(w, "scheme=%s threads=%d ops/thread=%d w=%d%% seed=%d  →  %d virtual cycles\n\n",
		lock.Name(), o.threads, o.ops, o.writes, o.seed, cycles)
	if !o.noEvents {
		fmt.Fprintf(w, "%12s %4s %-14s %s\n", "CYCLE", "CPU", "EVENT", "DETAIL")
		for _, e := range ring.Events() {
			fmt.Fprintf(w, "%12d %4d %-14s %s\n", e.Time, e.CPU, e.Kind, detail(e))
		}

		fmt.Fprintln(w, "\nevent totals:")
		for k, n := range counts.Counts {
			if n > 0 {
				fmt.Fprintf(w, "  %-14s %8d\n", machine.EventKind(k), n)
			}
		}
	}
	b := stats.Merge(sys.Stats(o.threads), cycles)
	fmt.Fprintf(w, "\naborts: %.1f%% of %d attempts   commits: %s\n",
		b.AbortRate(), b.TxStarts, b.FormatCommits())

	if san != nil {
		rep := san.Finish()
		fmt.Fprintln(w)
		rep.WriteText(w)
		if rep.Racy() {
			return fmt.Errorf("simsan: %d race(s) under %s", rep.Total, lock.Name())
		}
	}

	point := collector.Point(o.threads, o.writes, cycles, &b)
	if o.matrix {
		fmt.Fprintln(w)
		point.WriteMatrix(w)
	}
	if o.hist {
		fmt.Fprintln(w)
		point.WriteHists(w)
	}
	if o.jsonOut != "" {
		rm := &obs.RunMetrics{Figure: "trace", Scheme: lock.Name(), Points: []*obs.PointMetrics{point}}
		if err := writeTo(o.jsonOut, rm.WriteJSON); err != nil {
			return err
		}
	}
	if o.chrome != "" {
		err := writeTo(o.chrome, func(w io.Writer) error { return obs.WriteChromeTrace(w, log.Events) })
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chrome trace: %d events → %s (open in Perfetto or chrome://tracing)\n",
			len(log.Events), o.chrome)
	}
	if prof != nil {
		prof.Finish(m.Now())
		rep := prof.Report(lock.Name(), "hashmap")
		rep.WriteText(w)
		if err := writeTo(o.timeline, rep.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "timeline profile: %d windows → %s\n",
			len(rep.Timeline.Windows), o.timeline)
	}
	return nil
}

// writeTo writes via fn to path, with "-" meaning stdout.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func detail(e machine.Event) string {
	switch e.Kind {
	case machine.EvTxBegin:
		if e.Aux == 1 {
			return "ROT"
		}
		return "HTM"
	case machine.EvTxAbort, machine.EvTxDoom:
		cause, killer := htm.UnpackAbortAux(e.Aux)
		s := "cause=" + cause.String()
		if killer >= 0 {
			s += fmt.Sprintf(" killer=cpu%d addr=%d", killer, e.Addr)
		}
		return s
	case machine.EvTxCommit:
		return fmt.Sprintf("%d dirty words", e.Aux)
	case machine.EvQuiesceEnd:
		return fmt.Sprintf("waited %d cycles", e.Aux)
	case machine.EvCSBegin:
		write, _, _ := machine.UnpackCS(e.Aux)
		return csSide(write)
	case machine.EvCSEnd:
		write, path, retries := machine.UnpackCS(e.Aux)
		return fmt.Sprintf("%s path=%s retries=%d", csSide(write), stats.CommitPath(path), retries)
	case machine.EvPathSwitch:
		return fmt.Sprintf("to=%d", e.Aux)
	case machine.EvRead, machine.EvWrite, machine.EvCAS:
		return fmt.Sprintf("addr=%d val=%d", e.Addr, e.Aux)
	case machine.EvPageFault:
		return fmt.Sprintf("page=%d", e.Aux)
	}
	return ""
}

func csSide(write bool) string {
	if write {
		return "write-side"
	}
	return "read-side"
}
