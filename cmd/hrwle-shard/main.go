// Command hrwle-shard runs the sharded scale-out deployment: a hash-
// partitioned KV store at 64–256 simulated CPUs under open-system load
// with Zipfian hot-key skew and a small fraction of cross-shard
// transactions, sweeping shard count × skew × lock scheme — including
// the per-shard adaptive controller that moves each shard between RW-LE,
// HLE and SGL online at quiesced boundaries.
//
// Usage:
//
//	hrwle-shard -list
//	hrwle-shard [-o shard.txt] [-json shard.json] [-j 8]
//	hrwle-shard -schemes adaptive,SGL -shards 16,64 -skews 0,1.2
//	hrwle-shard -servers 256 -rate 2e7 -requests 12000
//	hrwle-shard -schemes adaptive -shards 16 -skews 1.2 -seed 7
//
// Output is deterministic: the same flags produce byte-identical text
// and JSON at any -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hrwle/internal/harness"
)

func main() {
	var (
		list     = flag.Bool("list", false, "print the default sweep and exit")
		schemes  = flag.String("schemes", "", "comma-separated scheme list (default adaptive,RW-LE_OPT,HLE,SGL)")
		shards   = flag.String("shards", "", "comma-separated shard counts (default 4,16,64)")
		skews    = flag.String("skews", "", "comma-separated Zipf exponents (default 0,0.9,1.2)")
		rate     = flag.Float64("rate", 0, "offered load, req/s (default: calibrated)")
		servers  = flag.Int("servers", 0, "serving CPUs (default 64, max 256)")
		requests = flag.Int("requests", 0, "arrivals per point (default 6000)")
		queueCap = flag.Int("queue-cap", 0, "dispatch queue bound (default 2048)")
		universe = flag.Int("universe", 0, "distinct keys (default 2097152)")
		crossPct = flag.Int("cross", -1, "percent of writes touching a second key (default 4)")
		window   = flag.Int64("window", 0, "controller window width, cycles (default 50000)")
		seed     = flag.Uint64("seed", 0, "schedule and machine seed (default 1)")
		out      = flag.String("o", "", "write the text report to file (default stdout)")
		jsonOut  = flag.String("json", "", "write the ShardReport JSON to file")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "measurement points to run concurrently")
		quiet    = flag.Bool("q", false, "suppress per-point progress")
	)
	flag.Parse()

	spec := harness.DefaultShardSpec()
	if *list {
		fmt.Printf("default sweep: schemes %s × shards %s × skews %s\n",
			strings.Join(spec.Schemes, ","), formatInts(spec.Shards), formatFloats(spec.Skews))
		fmt.Printf("base: %d servers, %d keys, %d requests at %g/s, cross %d%%, queue cap %d\n",
			spec.Base.Servers, spec.Base.Keys.Universe, spec.Base.Requests,
			spec.Base.Arrivals.RatePerSec, spec.Base.Keys.CrossPct, spec.Base.QueueCap)
		return
	}

	var err error
	if *schemes != "" {
		spec.Schemes = strings.Split(*schemes, ",")
	}
	if *shards != "" {
		if spec.Shards, err = parseInts(*shards); err != nil {
			fatal(err)
		}
	}
	if *skews != "" {
		if spec.Skews, err = parseFloats(*skews); err != nil {
			fatal(err)
		}
	}
	if *rate > 0 {
		spec.Base.Arrivals.RatePerSec = *rate
	}
	if *servers > 0 {
		spec.Base.Servers = *servers
	}
	if *requests > 0 {
		spec.Base.Requests = *requests
	}
	if *queueCap > 0 {
		spec.Base.QueueCap = *queueCap
	}
	if *universe > 0 {
		spec.Base.Keys.Universe = *universe
	}
	if *crossPct >= 0 {
		spec.Base.Keys.CrossPct = *crossPct
	}
	if *window > 0 {
		spec.Base.Window = *window
	}
	if *seed != 0 {
		spec.Base.Seed = *seed
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	rep, err := harness.RunShard(spec, *jobs, progress)
	if err != nil {
		fatal(err)
	}
	rep.WriteText(w)
	fmt.Fprintf(os.Stderr, "shard sweep (%d points) done in %.1fs wall\n",
		len(rep.Points), time.Since(start).Seconds())

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "JSON written to %s\n", *jsonOut)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad count %q (want positive integer)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad skew %q (want non-negative exponent)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func formatInts(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func formatFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
