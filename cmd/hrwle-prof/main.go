// Command hrwle-prof runs the virtual-time profiler: one open-system
// measurement point per scheme at a calibrated offered load, with every
// simulated cycle attributed to a category (useful committed work, wasted
// speculation, lock waiting, quiescence, fallback serialization,
// application work, idle) and the windowed telemetry series (throughput,
// abort rate, commit-path mix, queue depth, sojourn p99) rendered as
// sparklines.
//
// The default load is the workload's saturation knee — the point where the
// schemes' cycle mixes diverge most (see EXPERIMENTS.md). Attribution is
// exact: per point, the categories sum to servers × sim_cycles, and the
// profiler never perturbs the simulation (sim_cycles are identical with
// profiling on or off).
//
// Usage:
//
//	hrwle-prof -list
//	hrwle-prof -workload hashmap
//	hrwle-prof -workload all -o results/prof.txt -json results/prof.json
//	hrwle-prof -workload tpcc -schemes all -rate 5e5 -window 1e6
//	hrwle-prof -workload kyoto -servers 4 -requests 1000 -j 8
//
// Output is deterministic: the same flags produce byte-identical text and
// JSON at any -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hrwle/internal/harness"
	"hrwle/internal/service"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to profile (hashmap|kyoto|tpcc|all)")
		list     = flag.Bool("list", false, "list workloads and their default knee loads")
		schemes  = flag.String("schemes", "", "comma-separated scheme list, or 'all' (default RW-LE_OPT,HLE,RWL,SGL)")
		rate     = flag.Float64("rate", 0, "offered load, req/s (default: the workload's saturation knee)")
		window   = flag.Float64("window", 0, "profiling window width in virtual cycles (default 250000)")
		servers  = flag.Int("servers", 0, "serving CPUs (default 8)")
		requests = flag.Int("requests", 0, "arrivals per point (default 4000)")
		queueCap = flag.Int("queue-cap", 0, "dispatch queue bound (default 512)")
		arrivals = flag.String("arrivals", "poisson", "arrival process (poisson|mmpp)")
		seed     = flag.Uint64("seed", 0, "schedule and machine seed (default 1)")
		out      = flag.String("o", "", "write the text report to file (default stdout)")
		jsonOut  = flag.String("json", "", "write the ProfReport JSON to file")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "schemes to profile concurrently")
		quiet    = flag.Bool("q", false, "suppress per-point progress")
	)
	flag.Parse()

	if *list || *workload == "" {
		fmt.Println("available workloads (default knee load, req/s):")
		for _, wl := range harness.ServeWorkloads() {
			spec, _ := harness.DefaultProfSpec(wl)
			fmt.Printf("  %-8s %s\n", wl, strconv.FormatFloat(spec.RatePerSec, 'g', -1, 64))
		}
		fmt.Printf("default schemes: %s\n", strings.Join(harness.ServeSchemes(), ","))
		fmt.Printf("all schemes:     %s\n", strings.Join(harness.AllSchemes(), ","))
		return
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	workloads := []string{*workload}
	if *workload == "all" {
		workloads = harness.ServeWorkloads()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	var jw io.Writer
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		jw = f
	}

	for _, wl := range workloads {
		spec, err := harness.DefaultProfSpec(wl)
		if err != nil {
			fatal(err)
		}
		switch *schemes {
		case "":
		case "all":
			spec.Schemes = harness.AllSchemes()
		default:
			spec.Schemes = strings.Split(*schemes, ",")
		}
		if *rate > 0 {
			spec.RatePerSec = *rate
		}
		if *window > 0 {
			spec.WindowCycles = int64(*window)
		}
		if *servers > 0 {
			spec.Base.Servers = *servers
		}
		if *requests > 0 {
			spec.Base.Requests = *requests
		}
		if *queueCap > 0 {
			spec.Base.QueueCap = *queueCap
		}
		if *seed != 0 {
			spec.Base.Seed = *seed
		}
		spec.Base.Arrivals.Process, err = service.ParseProcess(*arrivals)
		if err != nil {
			fatal(err)
		}

		start := time.Now()
		rep, err := harness.RunProf(spec, *jobs, progress)
		if err != nil {
			fatal(err)
		}
		rep.WriteText(w)
		fmt.Fprintln(w)
		if jw != nil {
			if err := rep.WriteJSON(jw); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "prof %s done in %.1fs wall\n", wl, time.Since(start).Seconds())
	}

	if *jsonOut != "" {
		fmt.Fprintf(os.Stderr, "JSON written to %s\n", *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
