// Command hrwle-check runs the systematic schedule-exploration checker
// (internal/check) against the synchronization schemes in this repository.
//
// Explore one configuration:
//
//	hrwle-check -scheme RW-LE_OPT -program hashmap -budget 5000
//
// Sweep every scheme × program combination:
//
//	hrwle-check -all
//
// Validate the checker against a seeded bug (must find a violation):
//
//	hrwle-check -scheme RW-LE_PES -mutation skip-rot-quiesce
//
// Race-check a litmus shape with the happens-before sanitizer attached
// (litmus program names are accepted wherever closed programs are):
//
//	hrwle-check -sanitize -program litmus-sub -scheme RW-LE_OPT
//
// Deterministically reproduce a reported violation:
//
//	hrwle-check -replay TOKEN
//
// The process exits 1 when any explored configuration yields a violation
// (or a -replay fails to reproduce one), so it can gate CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hrwle/internal/check"
)

func main() {
	var (
		scheme      = flag.String("scheme", "RW-LE_OPT", "scheme to explore: "+strings.Join(check.Schemes(), ", "))
		program     = flag.String("program", "record", "closed test program: "+strings.Join(check.Programs(), ", "))
		threads     = flag.Int("threads", 0, "simulated threads (0 = default)")
		ops         = flag.Int("ops", 0, "critical sections per thread (0 = default)")
		budget      = flag.Int("budget", 0, "total executions to explore (0 = default)")
		preemptions = flag.Int("preemptions", 0, "DFS preemption bound (0 = default)")
		walkPct     = flag.Int("walk-pct", 0, "random-walk preemption probability in percent (0 = default)")
		seed        = flag.Uint64("seed", 0, "base seed for the random-walk sweep (0 = default)")
		mutation    = flag.String("mutation", "", "seeded bug to validate against: "+
			check.MutLoseDoomAtResume+", "+check.MutSkipROTQuiesce+", "+check.MutLazySubscription)
		replay   = flag.String("replay", "", "replay a violation token instead of exploring")
		all      = flag.Bool("all", false, "sweep every scheme × program combination")
		sanitize = flag.Bool("sanitize", false, "attach the simsan happens-before race detector to every explored execution")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	// Validate names up front: buildLock panics on unknown schemes, and a
	// typo'd -mutation would otherwise silently explore unmutated code.
	if !*all && !contains(check.Schemes(), *scheme) {
		fatalf("unknown scheme %q (want one of %s)", *scheme, strings.Join(check.Schemes(), ", "))
	}
	programs := append(check.Programs(), check.LitmusPrograms()...)
	if !contains(programs, *program) {
		fatalf("unknown program %q (want one of %s)", *program, strings.Join(programs, ", "))
	}
	switch *mutation {
	case "", check.MutLoseDoomAtResume, check.MutSkipROTQuiesce, check.MutLazySubscription:
	default:
		fatalf("unknown mutation %q (want %s, %s or %s)",
			*mutation, check.MutLoseDoomAtResume, check.MutSkipROTQuiesce, check.MutLazySubscription)
	}

	base := check.Config{
		Scheme:         *scheme,
		Program:        *program,
		Threads:        *threads,
		Ops:            *ops,
		MaxExecutions:  *budget,
		Preemptions:    *preemptions,
		WalkPreemptPct: *walkPct,
		Seed:           *seed,
		Mutation:       *mutation,
		Sanitize:       *sanitize,
	}

	violations := 0
	if *all {
		// The sweep covers the closed invariant programs always; with the
		// sanitizer attached, the litmus shapes join it — their value
		// outcomes are judged by pinned enumerations in the test suite, but
		// their schedules are exactly the reader/writer interactions worth
		// race-checking.
		sweep := check.Programs()
		if *sanitize {
			sweep = programs
		}
		for _, s := range check.Schemes() {
			for _, p := range sweep {
				cfg := base
				cfg.Scheme, cfg.Program = s, p
				if lit := contains(check.LitmusPrograms(), p); lit {
					// Litmus shapes are two fixed threads with one section
					// each; the defaults for closed programs oversubscribe
					// them.
					cfg.Threads, cfg.Ops = 2, 1
				}
				violations += report(check.Explore(cfg))
			}
		}
	} else {
		violations += report(check.Explore(base))
	}
	if violations > 0 {
		os.Exit(1)
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hrwle-check: "+format+"\n", args...)
	os.Exit(2)
}

// report prints one exploration summary and returns 1 if it found a
// violation.
func report(rep check.Report) int {
	fmt.Println(rep.String())
	if rep.Violation != nil {
		return 1
	}
	return 0
}

// runReplay re-executes a single violation token and returns the process
// exit code: 0 when the violation reproduces, 1 otherwise.
func runReplay(token string) int {
	rep, err := check.Replay(token)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hrwle-check:", err)
		return 1
	}
	fmt.Println(rep.String())
	if rep.Violation == nil {
		fmt.Println("replay: violation did NOT reproduce")
		return 1
	}
	fmt.Println("replay: violation reproduced deterministically")
	return 0
}
