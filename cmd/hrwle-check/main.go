// Command hrwle-check runs the systematic schedule-exploration checker
// (internal/check) against the synchronization schemes in this repository.
//
// Explore one configuration:
//
//	hrwle-check -scheme RW-LE_OPT -program hashmap -budget 5000
//
// Sweep every scheme × program combination:
//
//	hrwle-check -all
//
// Validate the checker against a seeded bug (must find a violation):
//
//	hrwle-check -scheme RW-LE_PES -mutation skip-rot-quiesce
//
// Deterministically reproduce a reported violation:
//
//	hrwle-check -replay TOKEN
//
// The process exits 1 when any explored configuration yields a violation
// (or a -replay fails to reproduce one), so it can gate CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hrwle/internal/check"
)

func main() {
	var (
		scheme      = flag.String("scheme", "RW-LE_OPT", "scheme to explore: "+strings.Join(check.Schemes(), ", "))
		program     = flag.String("program", "record", "closed test program: "+strings.Join(check.Programs(), ", "))
		threads     = flag.Int("threads", 0, "simulated threads (0 = default)")
		ops         = flag.Int("ops", 0, "critical sections per thread (0 = default)")
		budget      = flag.Int("budget", 0, "total executions to explore (0 = default)")
		preemptions = flag.Int("preemptions", 0, "DFS preemption bound (0 = default)")
		walkPct     = flag.Int("walk-pct", 0, "random-walk preemption probability in percent (0 = default)")
		seed        = flag.Uint64("seed", 0, "base seed for the random-walk sweep (0 = default)")
		mutation    = flag.String("mutation", "", "seeded bug to validate against: "+
			check.MutLoseDoomAtResume+", "+check.MutSkipROTQuiesce)
		replay = flag.String("replay", "", "replay a violation token instead of exploring")
		all    = flag.Bool("all", false, "sweep every scheme × program combination")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	// Validate names up front: buildLock panics on unknown schemes, and a
	// typo'd -mutation would otherwise silently explore unmutated code.
	if !*all && !contains(check.Schemes(), *scheme) {
		fatalf("unknown scheme %q (want one of %s)", *scheme, strings.Join(check.Schemes(), ", "))
	}
	if !contains(check.Programs(), *program) {
		fatalf("unknown program %q (want one of %s)", *program, strings.Join(check.Programs(), ", "))
	}
	if *mutation != "" && *mutation != check.MutLoseDoomAtResume && *mutation != check.MutSkipROTQuiesce {
		fatalf("unknown mutation %q (want %s or %s)", *mutation, check.MutLoseDoomAtResume, check.MutSkipROTQuiesce)
	}

	base := check.Config{
		Scheme:         *scheme,
		Program:        *program,
		Threads:        *threads,
		Ops:            *ops,
		MaxExecutions:  *budget,
		Preemptions:    *preemptions,
		WalkPreemptPct: *walkPct,
		Seed:           *seed,
		Mutation:       *mutation,
	}

	violations := 0
	if *all {
		for _, s := range check.Schemes() {
			for _, p := range check.Programs() {
				cfg := base
				cfg.Scheme, cfg.Program = s, p
				violations += report(check.Explore(cfg))
			}
		}
	} else {
		violations += report(check.Explore(base))
	}
	if violations > 0 {
		os.Exit(1)
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hrwle-check: "+format+"\n", args...)
	os.Exit(2)
}

// report prints one exploration summary and returns 1 if it found a
// violation.
func report(rep check.Report) int {
	fmt.Println(rep.String())
	if rep.Violation != nil {
		return 1
	}
	return 0
}

// runReplay re-executes a single violation token and returns the process
// exit code: 0 when the violation reproduces, 1 otherwise.
func runReplay(token string) int {
	rep, err := check.Replay(token)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hrwle-check:", err)
		return 1
	}
	fmt.Println(rep.String())
	if rep.Violation == nil {
		fmt.Println("replay: violation did NOT reproduce")
		return 1
	}
	fmt.Println("replay: violation reproduced deterministically")
	return 0
}
