// Command hrwle-bench regenerates the evaluation figures of "Hardware
// Read-Write Lock Elision" (EuroSys'16) on the simulated POWER8 machine.
//
// Usage:
//
//	hrwle-bench -list
//	hrwle-bench -fig fig3 [-scale 0.25] [-o fig3.txt]
//	hrwle-bench -fig all  [-scale 1] [-j 8]
//	hrwle-bench -fig fig5 -metrics-dir results/metrics   # + RunMetrics JSON
//	hrwle-bench -bench results/BENCH_PR4.json [-bench-baseline results/BENCH_SEED.json]
//
// Each figure prints three panels matching the paper: execution time (or
// throughput), the abort-cause breakdown, and the commit-path breakdown.
// -scale multiplies the amount of work per point (1 = the default recorded
// in EXPERIMENTS.md; smaller is faster and noisier). -j runs that many
// measurement points concurrently (each point is an independent simulated
// machine; results are deterministic and ordered regardless of -j).
//
// -bench skips figure output and instead runs the fixed wall-clock
// mini-sweep, writing a BenchReport JSON (sim cycles/sec, points/sec,
// parallel speedup, HTM-path allocs/op) to the given file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"hrwle/internal/harness"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate (fig3..fig10, retries, split, or 'all')")
		scale      = flag.Float64("scale", 1.0, "work multiplier per measurement point")
		out        = flag.String("o", "", "write results to file (default stdout)")
		list       = flag.Bool("list", false, "list available figures")
		quiet      = flag.Bool("q", false, "suppress per-point progress")
		threads    = flag.String("threads", "", "override thread counts, e.g. 2,8,32")
		metricsDir = flag.String("metrics-dir", "", "collect obs telemetry and write one RunMetrics JSON per (figure, scheme) into this directory (e.g. results/metrics)")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "measurement points to run concurrently")
		bench      = flag.String("bench", "", "run the fixed wall-clock mini-sweep and write a BenchReport JSON to this file")
		benchBase  = flag.String("bench-baseline", "", "prior BenchReport JSON to compare against in -bench mode")
	)
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	if *bench != "" {
		rep, err := harness.RunBench(*jobs, *benchBase, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println(rep.Summary())
		fmt.Printf("report written to %s\n", *bench)
		return
	}

	figs := harness.Registry()
	if *list || *fig == "" {
		fmt.Println("available figures:")
		for _, id := range harness.SortedIDs(figs) {
			fmt.Printf("  %-8s %s\n", id, figs[id].Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var ids []string
	if *fig == "all" {
		ids = harness.SortedIDs(figs)
	} else {
		if _, ok := figs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (use -list)\n", *fig)
			os.Exit(1)
		}
		ids = []string{*fig}
	}

	var totalEvents int64
	for _, id := range ids {
		spec := figs[id]
		if *threads != "" {
			spec.Threads = parseInts(*threads)
		}
		start := time.Now()
		var results []harness.Result
		if *metricsDir != "" {
			var err error
			var events int64
			results, events, err = harness.RunWithMetrics(spec, *scale, progress, *metricsDir, *jobs)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			totalEvents += events
		} else {
			results = spec.RunParallel(*scale, progress, *jobs)
		}
		harness.Print(w, spec, results)
		fmt.Fprintf(os.Stderr, "%s done in %.1fs wall\n", id, time.Since(start).Seconds())
	}
	if *metricsDir != "" {
		fmt.Fprintf(os.Stderr, "metrics JSON written to %s (%d events traced)\n", *metricsDir, totalEvents)
	}
}

func parseInts(s string) []int {
	var out []int
	cur := 0
	have := false
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] >= '0' && s[i] <= '9' {
			cur = cur*10 + int(s[i]-'0')
			have = true
			continue
		}
		if have {
			out = append(out, cur)
		}
		cur, have = 0, false
	}
	return out
}
