// Command hrwle-serve runs the open-system service workload: seeded
// stochastic arrivals dispatched from a bounded priority queue onto an
// RW-LE-protected structure, sweeping offered load across lock schemes
// and reporting sojourn-time percentiles per priority class.
//
// Usage:
//
//	hrwle-serve -list
//	hrwle-serve -workload hashmap [-o serve.txt] [-json serve.json] [-j 8]
//	hrwle-serve -workload all -o results/serve.txt
//	hrwle-serve -workload tpcc -schemes RW-LE_OPT,SGL -rates 1e5,3e5
//	hrwle-serve -workload kyoto -arrivals mmpp -seed 7
//	hrwle-serve -workload hashmap -schemes RW-LE_OPT -rates 3e6 -chrome t.json
//	hrwle-serve -workload hashmap -schemes RW-LE_OPT -rates 3e6 -sanitize
//
// The default rate grids straddle every default scheme's saturation knee
// (see EXPERIMENTS.md). Output is deterministic: the same flags produce
// byte-identical text and JSON at any -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hrwle/internal/harness"
	"hrwle/internal/machine"
	"hrwle/internal/obs"
	"hrwle/internal/service"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to serve (hashmap|kyoto|tpcc|all)")
		list     = flag.Bool("list", false, "list workloads and their default sweeps")
		schemes  = flag.String("schemes", "", "comma-separated scheme list (default RW-LE_OPT,HLE,RWL,SGL)")
		rates    = flag.String("rates", "", "comma-separated offered loads, req/s (default: calibrated per workload)")
		servers  = flag.Int("servers", 0, "serving CPUs (default 8)")
		requests = flag.Int("requests", 0, "arrivals per point (default 4000)")
		queueCap = flag.Int("queue-cap", 0, "dispatch queue bound (default 512)")
		arrivals = flag.String("arrivals", "poisson", "arrival process (poisson|mmpp)")
		seed     = flag.Uint64("seed", 0, "schedule and machine seed (default 1)")
		out      = flag.String("o", "", "write the text report to file (default stdout)")
		jsonOut  = flag.String("json", "", "write the ServeReport JSON to file")
		chrome   = flag.String("chrome", "", "write a Chrome trace of the run (single scheme and rate only)")
		timeline = flag.String("timeline", "", "write the virtual-time profile JSON of the run (single scheme and rate only)")
		sanitize = flag.Bool("sanitize", false, "run one point under the simsan happens-before race detector (single scheme and rate only; exit 1 on any race)")
		window   = flag.Int64("window", harness.DefaultProfWindow, "profiling window width in virtual cycles (with -timeline)")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "measurement points to run concurrently")
		quiet    = flag.Bool("q", false, "suppress per-point progress")
	)
	flag.Parse()

	if *list || *workload == "" {
		fmt.Println("available workloads (default offered-load grids, req/s):")
		for _, wl := range harness.ServeWorkloads() {
			spec, _ := harness.DefaultServeSpec(wl)
			fmt.Printf("  %-8s %s\n", wl, formatRates(spec.Rates))
		}
		fmt.Printf("default schemes: %s\n", strings.Join(harness.ServeSchemes(), ","))
		return
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	workloads := []string{*workload}
	if *workload == "all" {
		workloads = harness.ServeWorkloads()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	var reports []*harness.ServeReport
	for _, wl := range workloads {
		spec, err := harness.DefaultServeSpec(wl)
		if err != nil {
			fatal(err)
		}
		if *schemes != "" {
			spec.Schemes = strings.Split(*schemes, ",")
		}
		if *rates != "" {
			spec.Rates, err = parseRates(*rates)
			if err != nil {
				fatal(err)
			}
		}
		if *servers > 0 {
			spec.Base.Servers = *servers
		}
		if *requests > 0 {
			spec.Base.Requests = *requests
		}
		if *queueCap > 0 {
			spec.Base.QueueCap = *queueCap
		}
		if *seed != 0 {
			spec.Base.Seed = *seed
		}
		spec.Base.Arrivals.Process, err = service.ParseProcess(*arrivals)
		if err != nil {
			fatal(err)
		}

		if *sanitize {
			if len(workloads) != 1 || len(spec.Schemes) != 1 || len(spec.Rates) != 1 {
				fatal(fmt.Errorf("-sanitize needs exactly one workload, one -schemes entry and one -rates entry"))
			}
			if err := sanitizePoint(spec, *jsonOut, w); err != nil {
				fatal(err)
			}
			return
		}

		if *chrome != "" || *timeline != "" {
			if len(workloads) != 1 || len(spec.Schemes) != 1 || len(spec.Rates) != 1 {
				fatal(fmt.Errorf("-chrome/-timeline need exactly one workload, one -schemes entry and one -rates entry"))
			}
			if err := tracePoint(spec, *chrome, *timeline, *window, w); err != nil {
				fatal(err)
			}
			return
		}

		start := time.Now()
		rep, err := harness.RunServe(spec, *jobs, progress)
		if err != nil {
			fatal(err)
		}
		rep.WriteText(w)
		fmt.Fprintln(w)
		reports = append(reports, rep)
		fmt.Fprintf(os.Stderr, "serve %s done in %.1fs wall\n", wl, time.Since(start).Seconds())
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for _, rep := range reports {
			if err := rep.WriteJSON(f); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "JSON written to %s\n", *jsonOut)
	}
}

// sanitizePoint serves the spec's single point with the simsan race
// detector attached, printing the point metrics and the race report (and
// writing the report JSON when -json was given). Any race is an error:
// the serve workloads run production-shaped sections, so a report here is
// either a scheme bug or a sanitizer false positive — both stop the line.
func sanitizePoint(spec harness.ServeSpec, jsonPath string, w io.Writer) error {
	cfg := spec.Base
	cfg.Arrivals.RatePerSec = spec.Rates[0]
	scheme := spec.Schemes[0]
	m, rep, err := service.RunPointSanitized(cfg, scheme, harness.SchemeFactory(scheme))
	if err != nil {
		return err
	}
	m.WriteText(w)
	fmt.Fprintln(w)
	rep.WriteText(w)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "race report JSON written to %s\n", jsonPath)
	}
	if rep.Racy() {
		return fmt.Errorf("simsan: %d race(s) under %s/%s", rep.Total, scheme, cfg.Workload)
	}
	return nil
}

// tracePoint runs the spec's single point with the requested collectors
// attached: a full event log for the Chrome trace (with queue-depth and
// in-flight counter tracks derived from the request log), and/or the
// virtual-time profiler for the timeline JSON and text panels.
func tracePoint(spec harness.ServeSpec, chromePath, timelinePath string, window int64, w io.Writer) error {
	cfg := spec.Base
	cfg.Arrivals.RatePerSec = spec.Rates[0]
	scheme := spec.Schemes[0]
	var observe func(*machine.Machine)
	var log *machine.LogTracer
	if chromePath != "" {
		log = &machine.LogTracer{}
		observe = func(mach *machine.Machine) { mach.SetTracer(log) }
	}
	var prof *obs.Profile
	if timelinePath != "" {
		prof = obs.NewProfile(window, len(cfg.Classes))
	}
	m, reqs, err := service.RunPointProfiled(cfg, scheme, harness.SchemeFactory(scheme), observe, prof)
	if err != nil {
		return err
	}
	m.WriteText(w)
	if prof != nil {
		rep := prof.Report(scheme, cfg.Workload)
		rep.Service = m
		rep.WriteText(w)
		f, err := os.Create(timelinePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "timeline profile (%d windows) written to %s\n",
			len(rep.Timeline.Windows), timelinePath)
	}
	if log != nil {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTraceCounters(f, log.Events, service.CounterTracks(reqs)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "Chrome trace (%d events) written to %s\n", len(log.Events), chromePath)
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q (want positive req/s)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func formatRates(rates []float64) string {
	parts := make([]string, len(rates))
	for i, r := range rates {
		parts[i] = strconv.FormatFloat(r, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
