// Command hrwle-vet runs the simlint static-analysis suite — the
// determinism, abortflow, eventpairs, txdiscipline, syncpoint and hotpath
// analyzers — over the module and exits non-zero if any invariant is
// violated.
//
// Usage:
//
//	go run ./cmd/hrwle-vet ./...
//	go run ./cmd/hrwle-vet -list
//
// Results are cached by the content hash of every .go file in the module,
// so a run over an unchanged tree replays instantly (disable with
// -cache=false; point CI's cache step at -cachedir). The -json report
// carries per-analyzer wall time so the cost of a cache miss is visible;
// cached replays keep the timings of the run that produced them.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"hrwle/internal/simlint"
)

// cacheSchema is bumped whenever analyzer semantics change, invalidating
// every prior cache entry.
const cacheSchema = "simlint-v2"

type jsonDiag struct {
	Position string `json:"position"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type cacheEntry struct {
	Schema      string                   `json:"schema"`
	Diagnostics []jsonDiag               `json:"diagnostics"`
	Suppressed  int                      `json:"suppressed"`
	Timings     []simlint.AnalyzerTiming `json:"timings,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	useCache := flag.Bool("cache", true, "reuse cached results when no .go file changed")
	cacheDir := flag.String("cachedir", "", "cache directory (default <user cache dir>/hrwle-vet)")
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	flag.Parse()
	if *list {
		listAnalyzers()
		os.Exit(0)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns, *jsonOut, *useCache, *cacheDir))
}

// listAnalyzers prints each registered analyzer's name and the first line
// of its doc string.
func listAnalyzers() {
	for _, a := range simlint.NewAnalyzers() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("%-14s %s\n", a.Name, doc)
	}
}

func run(patterns []string, jsonOut, useCache bool, cacheDir string) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hrwle-vet: %v\n", err)
		return 2
	}

	var cachePath string
	if useCache {
		if cacheDir == "" {
			if base, err := os.UserCacheDir(); err == nil {
				cacheDir = filepath.Join(base, "hrwle-vet")
			} else {
				cacheDir = filepath.Join(os.TempDir(), "hrwle-vet")
			}
		}
		key, err := cacheKey(root, patterns)
		if err == nil {
			cachePath = filepath.Join(cacheDir, key+".json")
			if entry, err := readCache(cachePath); err == nil {
				fmt.Fprintln(os.Stderr, "hrwle-vet: cached result (tree unchanged)")
				return emit(entry, jsonOut)
			}
		}
	}

	fset, pkgs, err := simlint.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hrwle-vet: %v\n", err)
		return 2
	}
	suite := simlint.NewSuite()
	diags, err := suite.Run(fset, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hrwle-vet: %v\n", err)
		return 2
	}

	entry := &cacheEntry{Schema: cacheSchema, Suppressed: suite.Suppressed, Timings: suite.Timings()}
	for _, d := range diags {
		entry.Diagnostics = append(entry.Diagnostics, jsonDiag{
			Position: fset.Position(d.Pos).String(),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	if cachePath != "" {
		writeCache(cachePath, entry)
	}
	return emit(entry, jsonOut)
}

// emit prints the result and returns the process exit code.
func emit(entry *cacheEntry, jsonOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(entry)
	} else {
		for _, d := range entry.Diagnostics {
			fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
		}
	}
	if n := len(entry.Diagnostics); n > 0 {
		fmt.Fprintf(os.Stderr, "hrwle-vet: %d violation(s), %d suppressed by //simlint:allow\n", n, entry.Suppressed)
		return 1
	}
	fmt.Fprintf(os.Stderr, "hrwle-vet: ok (%d suppressed by //simlint:allow)\n", entry.Suppressed)
	return 0
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// cacheKey hashes the analysis inputs: the schema version, the Go
// toolchain, the patterns, and the path and content of every .go file
// (plus go.mod/go.sum) in the module tree.
func cacheKey(root string, patterns []string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n", cacheSchema, runtime.Version(), strings.Join(patterns, " "))
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") || name == "go.mod" || name == "go.sum" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, path := range files {
		rel, _ := filepath.Rel(root, path)
		fmt.Fprintf(h, "%s\n", filepath.ToSlash(rel))
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func readCache(path string) (*cacheEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	entry := new(cacheEntry)
	if err := json.Unmarshal(data, entry); err != nil {
		return nil, err
	}
	if entry.Schema != cacheSchema {
		return nil, fmt.Errorf("stale cache schema")
	}
	return entry, nil
}

func writeCache(path string, entry *cacheEntry) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) == nil {
		os.Rename(tmp, path)
	}
}
