package hrwle

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runGo executes `go run pkg args...` from the repo root and returns the
// combined output. Skips the test when no go tool is on PATH (e.g. a
// stripped CI runner executing a prebuilt test binary).
func runGo(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	cmd := exec.Command(goBin, append([]string{"run", pkg}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v failed: %v\n%s", pkg, args, err, out)
	}
	return string(out)
}

// TestBenchCLISmoke regenerates one tiny figure through the real CLI and
// checks the report carries the expected sections and schemes.
func TestBenchCLISmoke(t *testing.T) {
	out := runGo(t, "./cmd/hrwle-bench", "-fig", "fig3", "-scale", "0.01", "-threads", "2", "-q")
	for _, want := range []string{"fig3", "RW-LE_OPT", "abort breakdown", "commit breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("hrwle-bench output missing %q:\n%s", want, out)
		}
	}
}

// TestBenchCLIList checks the figure listing knows every registered figure.
func TestBenchCLIList(t *testing.T) {
	out := runGo(t, "./cmd/hrwle-bench", "-list")
	for _, want := range []string{"fig3", "fig10", "retries", "split"} {
		if !strings.Contains(out, want) {
			t.Errorf("hrwle-bench -list missing %q:\n%s", want, out)
		}
	}
}

// TestBenchCLIParallelIdentical sweeps the same tiny figure at -j 1 and
// -j 8 through the real CLI and requires identical tables: the parallel
// harness must never change virtual-time results.
func TestBenchCLIParallelIdentical(t *testing.T) {
	// Compare the -o files, not process output: stderr carries wall-clock
	// chatter that legitimately differs between runs.
	dir := t.TempDir()
	serialPath := filepath.Join(dir, "serial.txt")
	parallelPath := filepath.Join(dir, "parallel.txt")
	args := []string{"-fig", "fig3", "-scale", "0.01", "-threads", "2,4", "-q"}
	runGo(t, "./cmd/hrwle-bench", append([]string{"-j", "1", "-o", serialPath}, args...)...)
	runGo(t, "./cmd/hrwle-bench", append([]string{"-j", "8", "-o", parallelPath}, args...)...)
	serial, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(parallelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Errorf("-j changed figure output\n--- -j1 ---\n%s\n--- -j8 ---\n%s", serial, parallel)
	}
}

// TestTraceCLIMultiScheme traces two schemes in one invocation and checks
// both reports arrive in the order given.
func TestTraceCLIMultiScheme(t *testing.T) {
	out := runGo(t, "./cmd/hrwle-trace", "-scheme", "RW-LE_OPT,SGL", "-q", "-ops", "5")
	i := strings.Index(out, "scheme=RW-LE_OPT")
	j := strings.Index(out, "scheme=SGL")
	if i < 0 || j < 0 || j < i {
		t.Errorf("multi-scheme trace reports missing or out of order:\n%s", out)
	}
}

// TestCheckCLISmoke runs a tiny exploration through cmd/hrwle-check.
func TestCheckCLISmoke(t *testing.T) {
	out := runGo(t, "./cmd/hrwle-check", "-scheme", "RW-LE_OPT", "-program", "record", "-budget", "200")
	if !strings.Contains(out, "RW-LE_OPT/record") || !strings.Contains(out, "executions") {
		t.Errorf("hrwle-check output unexpected:\n%s", out)
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("unmutated RW-LE_OPT reported a violation:\n%s", out)
	}
}

// TestQuickstartExample keeps the README's quickstart example running.
func TestQuickstartExample(t *testing.T) {
	out := runGo(t, "./examples/quickstart")
	if len(strings.TrimSpace(out)) == 0 {
		t.Error("quickstart example produced no output")
	}
	if strings.Contains(strings.ToLower(out), "panic") {
		t.Errorf("quickstart example panicked:\n%s", out)
	}
}
