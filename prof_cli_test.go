package hrwle

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProfCLISmoke runs a tiny profile point through the real CLI and
// checks the cross-scheme breakdown table and per-scheme panels appear.
func TestProfCLISmoke(t *testing.T) {
	out := runGo(t, "./cmd/hrwle-prof",
		"-workload", "hashmap", "-requests", "300", "-servers", "4",
		"-schemes", "RW-LE_OPT,SGL", "-q")
	for _, want := range []string{
		"virtual-time profile", "cycle breakdown", "useful", "fallback",
		"idle", "cycle attribution", "virtual-time series",
		"throughput (CS/s)", "sojourn p99", "RW-LE_OPT", "SGL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hrwle-prof output missing %q:\n%s", want, out)
		}
	}
}

// TestProfCLIList checks the workload/knee listing.
func TestProfCLIList(t *testing.T) {
	out := runGo(t, "./cmd/hrwle-prof", "-list")
	for _, want := range []string{"hashmap", "kyoto", "tpcc", "RW-LE_OPT", "RW-LE_basic"} {
		if !strings.Contains(out, want) {
			t.Errorf("hrwle-prof -list missing %q:\n%s", want, out)
		}
	}
}

// TestProfCLIParallelIdentical runs the same profile at -j 1 and -j 4 and
// requires byte-identical text and JSON: worker count must never leak into
// the report.
func TestProfCLIParallelIdentical(t *testing.T) {
	dir := t.TempDir()
	run := func(j, suffix string) (txt, js []byte) {
		txtPath := filepath.Join(dir, "prof-"+suffix+".txt")
		jsonPath := filepath.Join(dir, "prof-"+suffix+".json")
		runGo(t, "./cmd/hrwle-prof",
			"-workload", "hashmap", "-requests", "300", "-servers", "4",
			"-schemes", "RW-LE_OPT,HLE,SGL",
			"-j", j, "-q", "-o", txtPath, "-json", jsonPath)
		var err error
		if txt, err = os.ReadFile(txtPath); err != nil {
			t.Fatal(err)
		}
		if js, err = os.ReadFile(jsonPath); err != nil {
			t.Fatal(err)
		}
		return txt, js
	}
	txt1, js1 := run("1", "j1")
	txt4, js4 := run("4", "j4")
	if !bytes.Equal(txt1, txt4) {
		t.Error("-j changed hrwle-prof text output")
	}
	if !bytes.Equal(js1, js4) {
		t.Error("-j changed hrwle-prof JSON output")
	}
}
